file(REMOVE_RECURSE
  "libalgas.a"
)
