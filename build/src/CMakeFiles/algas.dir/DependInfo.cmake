
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/batch_runner.cpp" "src/CMakeFiles/algas.dir/baselines/batch_runner.cpp.o" "gcc" "src/CMakeFiles/algas.dir/baselines/batch_runner.cpp.o.d"
  "/root/repo/src/baselines/ganns_engine.cpp" "src/CMakeFiles/algas.dir/baselines/ganns_engine.cpp.o" "gcc" "src/CMakeFiles/algas.dir/baselines/ganns_engine.cpp.o.d"
  "/root/repo/src/baselines/ivf.cpp" "src/CMakeFiles/algas.dir/baselines/ivf.cpp.o" "gcc" "src/CMakeFiles/algas.dir/baselines/ivf.cpp.o.d"
  "/root/repo/src/baselines/static_engine.cpp" "src/CMakeFiles/algas.dir/baselines/static_engine.cpp.o" "gcc" "src/CMakeFiles/algas.dir/baselines/static_engine.cpp.o.d"
  "/root/repo/src/common/env.cpp" "src/CMakeFiles/algas.dir/common/env.cpp.o" "gcc" "src/CMakeFiles/algas.dir/common/env.cpp.o.d"
  "/root/repo/src/common/stats.cpp" "src/CMakeFiles/algas.dir/common/stats.cpp.o" "gcc" "src/CMakeFiles/algas.dir/common/stats.cpp.o.d"
  "/root/repo/src/common/thread_pool.cpp" "src/CMakeFiles/algas.dir/common/thread_pool.cpp.o" "gcc" "src/CMakeFiles/algas.dir/common/thread_pool.cpp.o.d"
  "/root/repo/src/core/engine.cpp" "src/CMakeFiles/algas.dir/core/engine.cpp.o" "gcc" "src/CMakeFiles/algas.dir/core/engine.cpp.o.d"
  "/root/repo/src/core/query_manager.cpp" "src/CMakeFiles/algas.dir/core/query_manager.cpp.o" "gcc" "src/CMakeFiles/algas.dir/core/query_manager.cpp.o.d"
  "/root/repo/src/core/slot.cpp" "src/CMakeFiles/algas.dir/core/slot.cpp.o" "gcc" "src/CMakeFiles/algas.dir/core/slot.cpp.o.d"
  "/root/repo/src/core/state_sync.cpp" "src/CMakeFiles/algas.dir/core/state_sync.cpp.o" "gcc" "src/CMakeFiles/algas.dir/core/state_sync.cpp.o.d"
  "/root/repo/src/core/tuner.cpp" "src/CMakeFiles/algas.dir/core/tuner.cpp.o" "gcc" "src/CMakeFiles/algas.dir/core/tuner.cpp.o.d"
  "/root/repo/src/dataset/dataset.cpp" "src/CMakeFiles/algas.dir/dataset/dataset.cpp.o" "gcc" "src/CMakeFiles/algas.dir/dataset/dataset.cpp.o.d"
  "/root/repo/src/dataset/ground_truth.cpp" "src/CMakeFiles/algas.dir/dataset/ground_truth.cpp.o" "gcc" "src/CMakeFiles/algas.dir/dataset/ground_truth.cpp.o.d"
  "/root/repo/src/dataset/io.cpp" "src/CMakeFiles/algas.dir/dataset/io.cpp.o" "gcc" "src/CMakeFiles/algas.dir/dataset/io.cpp.o.d"
  "/root/repo/src/dataset/registry.cpp" "src/CMakeFiles/algas.dir/dataset/registry.cpp.o" "gcc" "src/CMakeFiles/algas.dir/dataset/registry.cpp.o.d"
  "/root/repo/src/dataset/synthetic.cpp" "src/CMakeFiles/algas.dir/dataset/synthetic.cpp.o" "gcc" "src/CMakeFiles/algas.dir/dataset/synthetic.cpp.o.d"
  "/root/repo/src/distance/distance.cpp" "src/CMakeFiles/algas.dir/distance/distance.cpp.o" "gcc" "src/CMakeFiles/algas.dir/distance/distance.cpp.o.d"
  "/root/repo/src/graph/builder.cpp" "src/CMakeFiles/algas.dir/graph/builder.cpp.o" "gcc" "src/CMakeFiles/algas.dir/graph/builder.cpp.o.d"
  "/root/repo/src/graph/cagra_builder.cpp" "src/CMakeFiles/algas.dir/graph/cagra_builder.cpp.o" "gcc" "src/CMakeFiles/algas.dir/graph/cagra_builder.cpp.o.d"
  "/root/repo/src/graph/gpu_construction.cpp" "src/CMakeFiles/algas.dir/graph/gpu_construction.cpp.o" "gcc" "src/CMakeFiles/algas.dir/graph/gpu_construction.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/CMakeFiles/algas.dir/graph/graph.cpp.o" "gcc" "src/CMakeFiles/algas.dir/graph/graph.cpp.o.d"
  "/root/repo/src/graph/neighbor_selection.cpp" "src/CMakeFiles/algas.dir/graph/neighbor_selection.cpp.o" "gcc" "src/CMakeFiles/algas.dir/graph/neighbor_selection.cpp.o.d"
  "/root/repo/src/graph/nsw_builder.cpp" "src/CMakeFiles/algas.dir/graph/nsw_builder.cpp.o" "gcc" "src/CMakeFiles/algas.dir/graph/nsw_builder.cpp.o.d"
  "/root/repo/src/metrics/collector.cpp" "src/CMakeFiles/algas.dir/metrics/collector.cpp.o" "gcc" "src/CMakeFiles/algas.dir/metrics/collector.cpp.o.d"
  "/root/repo/src/metrics/recall.cpp" "src/CMakeFiles/algas.dir/metrics/recall.cpp.o" "gcc" "src/CMakeFiles/algas.dir/metrics/recall.cpp.o.d"
  "/root/repo/src/metrics/table.cpp" "src/CMakeFiles/algas.dir/metrics/table.cpp.o" "gcc" "src/CMakeFiles/algas.dir/metrics/table.cpp.o.d"
  "/root/repo/src/search/bitonic.cpp" "src/CMakeFiles/algas.dir/search/bitonic.cpp.o" "gcc" "src/CMakeFiles/algas.dir/search/bitonic.cpp.o.d"
  "/root/repo/src/search/candidate_list.cpp" "src/CMakeFiles/algas.dir/search/candidate_list.cpp.o" "gcc" "src/CMakeFiles/algas.dir/search/candidate_list.cpp.o.d"
  "/root/repo/src/search/greedy.cpp" "src/CMakeFiles/algas.dir/search/greedy.cpp.o" "gcc" "src/CMakeFiles/algas.dir/search/greedy.cpp.o.d"
  "/root/repo/src/search/intra_cta.cpp" "src/CMakeFiles/algas.dir/search/intra_cta.cpp.o" "gcc" "src/CMakeFiles/algas.dir/search/intra_cta.cpp.o.d"
  "/root/repo/src/search/multi_cta.cpp" "src/CMakeFiles/algas.dir/search/multi_cta.cpp.o" "gcc" "src/CMakeFiles/algas.dir/search/multi_cta.cpp.o.d"
  "/root/repo/src/search/topk_merge.cpp" "src/CMakeFiles/algas.dir/search/topk_merge.cpp.o" "gcc" "src/CMakeFiles/algas.dir/search/topk_merge.cpp.o.d"
  "/root/repo/src/simgpu/channel.cpp" "src/CMakeFiles/algas.dir/simgpu/channel.cpp.o" "gcc" "src/CMakeFiles/algas.dir/simgpu/channel.cpp.o.d"
  "/root/repo/src/simgpu/device_props.cpp" "src/CMakeFiles/algas.dir/simgpu/device_props.cpp.o" "gcc" "src/CMakeFiles/algas.dir/simgpu/device_props.cpp.o.d"
  "/root/repo/src/simgpu/shared_memory.cpp" "src/CMakeFiles/algas.dir/simgpu/shared_memory.cpp.o" "gcc" "src/CMakeFiles/algas.dir/simgpu/shared_memory.cpp.o.d"
  "/root/repo/src/simgpu/simulation.cpp" "src/CMakeFiles/algas.dir/simgpu/simulation.cpp.o" "gcc" "src/CMakeFiles/algas.dir/simgpu/simulation.cpp.o.d"
  "/root/repo/src/simgpu/sm_scheduler.cpp" "src/CMakeFiles/algas.dir/simgpu/sm_scheduler.cpp.o" "gcc" "src/CMakeFiles/algas.dir/simgpu/sm_scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
