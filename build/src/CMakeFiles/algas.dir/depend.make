# Empty dependencies file for algas.
# This may be replaced when dependencies are built.
