file(REMOVE_RECURSE
  "CMakeFiles/online_serving.dir/online_serving.cpp.o"
  "CMakeFiles/online_serving.dir/online_serving.cpp.o.d"
  "online_serving"
  "online_serving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_serving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
