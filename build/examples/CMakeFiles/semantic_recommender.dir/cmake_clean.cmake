file(REMOVE_RECURSE
  "CMakeFiles/semantic_recommender.dir/semantic_recommender.cpp.o"
  "CMakeFiles/semantic_recommender.dir/semantic_recommender.cpp.o.d"
  "semantic_recommender"
  "semantic_recommender.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semantic_recommender.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
