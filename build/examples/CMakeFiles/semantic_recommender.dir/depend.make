# Empty dependencies file for semantic_recommender.
# This may be replaced when dependencies are built.
