# Empty dependencies file for bench_fig1_step_distribution.
# This may be replaced when dependencies are built.
