file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_topk.dir/bench_fig12_topk.cpp.o"
  "CMakeFiles/bench_fig12_topk.dir/bench_fig12_topk.cpp.o.d"
  "bench_fig12_topk"
  "bench_fig12_topk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_topk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
