# Empty dependencies file for bench_fig12_topk.
# This may be replaced when dependencies are built.
