file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_sort_percent.dir/bench_fig17_sort_percent.cpp.o"
  "CMakeFiles/bench_fig17_sort_percent.dir/bench_fig17_sort_percent.cpp.o.d"
  "bench_fig17_sort_percent"
  "bench_fig17_sort_percent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_sort_percent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
