# Empty compiler generated dependencies file for bench_fig17_sort_percent.
# This may be replaced when dependencies are built.
