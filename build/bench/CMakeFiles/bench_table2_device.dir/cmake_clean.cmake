file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_device.dir/bench_table2_device.cpp.o"
  "CMakeFiles/bench_table2_device.dir/bench_table2_device.cpp.o.d"
  "bench_table2_device"
  "bench_table2_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
