# Empty dependencies file for bench_fig14_15_batch_sweep.
# This may be replaced when dependencies are built.
