file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_15_batch_sweep.dir/bench_fig14_15_batch_sweep.cpp.o"
  "CMakeFiles/bench_fig14_15_batch_sweep.dir/bench_fig14_15_batch_sweep.cpp.o.d"
  "bench_fig14_15_batch_sweep"
  "bench_fig14_15_batch_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_15_batch_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
