file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_distance_curve.dir/bench_fig7_distance_curve.cpp.o"
  "CMakeFiles/bench_fig7_distance_curve.dir/bench_fig7_distance_curve.cpp.o.d"
  "bench_fig7_distance_curve"
  "bench_fig7_distance_curve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_distance_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
