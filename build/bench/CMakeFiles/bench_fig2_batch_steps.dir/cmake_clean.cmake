file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_batch_steps.dir/bench_fig2_batch_steps.cpp.o"
  "CMakeFiles/bench_fig2_batch_steps.dir/bench_fig2_batch_steps.cpp.o.d"
  "bench_fig2_batch_steps"
  "bench_fig2_batch_steps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_batch_steps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
