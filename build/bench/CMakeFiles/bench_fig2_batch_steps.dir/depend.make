# Empty dependencies file for bench_fig2_batch_steps.
# This may be replaced when dependencies are built.
