file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_11_methods.dir/bench_fig10_11_methods.cpp.o"
  "CMakeFiles/bench_fig10_11_methods.dir/bench_fig10_11_methods.cpp.o.d"
  "bench_fig10_11_methods"
  "bench_fig10_11_methods.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_11_methods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
