# Empty compiler generated dependencies file for bench_fig10_11_methods.
# This may be replaced when dependencies are built.
