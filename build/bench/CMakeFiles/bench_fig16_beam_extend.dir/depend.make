# Empty dependencies file for bench_fig16_beam_extend.
# This may be replaced when dependencies are built.
