file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_beam_extend.dir/bench_fig16_beam_extend.cpp.o"
  "CMakeFiles/bench_fig16_beam_extend.dir/bench_fig16_beam_extend.cpp.o.d"
  "bench_fig16_beam_extend"
  "bench_fig16_beam_extend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_beam_extend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
