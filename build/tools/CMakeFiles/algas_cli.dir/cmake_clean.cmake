file(REMOVE_RECURSE
  "CMakeFiles/algas_cli.dir/algas_cli.cpp.o"
  "CMakeFiles/algas_cli.dir/algas_cli.cpp.o.d"
  "algas_cli"
  "algas_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algas_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
