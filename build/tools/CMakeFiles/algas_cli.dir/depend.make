# Empty dependencies file for algas_cli.
# This may be replaced when dependencies are built.
