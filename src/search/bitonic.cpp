#include "search/bitonic.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "common/types.hpp"

namespace algas::search {

namespace {

inline void compare_exchange(KV& a, KV& b) {
  if (b < a) std::swap(a, b);
}

}  // namespace

void bitonic_sort(std::span<KV> data) {
  const std::size_t n = data.size();
  assert(is_pow2(n) || n == 0);
  if (n <= 1) return;
  // Standard iterative bitonic network. Direction is folded into a single
  // ascending comparator by choosing the partner order per sub-block.
  for (std::size_t block = 2; block <= n; block <<= 1) {
    for (std::size_t stride = block >> 1; stride > 0; stride >>= 1) {
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t partner = i ^ stride;
        if (partner <= i) continue;
        const bool ascending = (i & block) == 0;
        if (ascending) {
          compare_exchange(data[i], data[partner]);
        } else {
          compare_exchange(data[partner], data[i]);
        }
      }
    }
  }
}

void bitonic_merge(std::span<KV> data) {
  const std::size_t n = data.size();
  assert(is_pow2(n) || n == 0);
  if (n <= 1) return;
  for (std::size_t stride = n >> 1; stride > 0; stride >>= 1) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t partner = i ^ stride;
      if (partner > i) compare_exchange(data[i], data[partner]);
    }
  }
}

void merge_sorted_halves(std::span<KV> data) {
  const std::size_t n = data.size();
  assert(is_pow2(n) || n == 0);
  if (n <= 1) return;
  std::reverse(data.begin() + static_cast<std::ptrdiff_t>(n / 2), data.end());
  bitonic_merge(data);
}

bool is_sorted_kv(std::span<const KV> data) {
  for (std::size_t i = 1; i < data.size(); ++i) {
    if (data[i] < data[i - 1]) return false;
  }
  return true;
}

}  // namespace algas::search
