// TopK merging of per-CTA candidate lists.
//
// ALGAS offloads this to the host CPU (§IV-B "GPU-CPU Cooperation"): the T
// sorted lists of a slot live in one contiguous block, the host reads them
// with a single sequential transfer and merges with a bounded priority
// queue. The CAGRA-style baseline instead merges on the GPU with a
// divide-and-conquer network; the *functional* result is identical, so both
// engines call merge_sorted_runs() and differ only in the modeled cost
// (CostModel::host_topk_merge_ns vs gpu_topk_merge_ns).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "search/accept.hpp"
#include "search/kv.hpp"

namespace algas::search {

/// Merge `runs` ascending-sorted runs of length `run_len`, laid out
/// back-to-back in `concat`, into the k best unique-id entries (ascending).
/// Empty entries terminate a run. `accept` is the accept-step predicate
/// (attribute filter, tombstones, or both; pass AcceptPredicate{} for the
/// unfiltered merge): rejected ids are dropped here without consuming one
/// of the k slots — filtered and deleted nodes route traversals but never
/// surface in results. Every call site states its predicate explicitly;
/// there is deliberately no defaulted parameter to fall through.
///
/// Tie-breaking is deterministic and fully specified: output order is
/// ascending (distance, id), and equal-distance entries therefore resolve
/// by id. When the runs carry globally-mapped shard results this makes the
/// cross-shard merge break distance ties by GLOBAL id — independent of
/// which shard produced the entry, of shard count, and of host thread
/// count. Heads that compare fully equal (same distance and id from
/// different runs) pop in run order, so the result is a pure function of
/// the input runs, not of the heap implementation.
std::vector<KV> merge_sorted_runs(std::span<const KV> concat,
                                  std::size_t runs, std::size_t run_len,
                                  std::size_t k,
                                  const AcceptPredicate& accept);

}  // namespace algas::search
