#include "search/intra_cta.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace algas::search {

IntraCtaSearch::IntraCtaSearch(const Dataset& ds, const Graph& g,
                               const sim::CostModel& cm,
                               const SearchConfig& cfg)
    : ds_(ds),
      g_(g),
      cm_(cm),
      cfg_(normalize_config(cfg, g.degree())),
      list_(cfg_.candidate_len),
      selected_(cfg_.beam_width) {
  if (ds.num_base() > KV::kMaxNodeId) {
    throw std::invalid_argument("dataset too large for packed KV ids");
  }
  expand_.reserve(cfg_.candidate_len);
  const std::size_t round_cap = cfg_.beam_width * g.degree();
  gathered_.reserve(round_cap);
  round_dists_.reserve(round_cap);
}

void IntraCtaSearch::reset(std::span<const float> query, NodeId entry,
                           VisitedTable* visited) {
  assert(visited != nullptr && visited->size() == ds_.num_base());
  query_ = query;
  visited_ = visited;
  list_.reset();
  done_ = false;
  diffusing_ = false;
  stats_ = SearchStats{};
  pending_ns_ = 0.0;

  // Degenerate serving views (empty graph, no published entry yet) hand an
  // invalid entry here; terminate with an empty list instead of scoring an
  // out-of-range row.
  if (entry == kInvalidNode || static_cast<std::size_t>(entry) >= g_.num_nodes()) {
    done_ = true;
    return;
  }

  // Score and seed the entry point. If another CTA of the same slot already
  // claimed it, start from an empty list: the first gather would find it
  // visited anyway and this CTA ends immediately — matching the kernel,
  // where entry collisions make a CTA redundant.
  if (!visited_->test_and_set(entry)) {
    const float d = ds_.score(query_, entry);
    list_.seed(KV::make(d, entry));
    pending_ns_ = cm_.distance_round_ns(ds_.dim(), 1, 32, ds_.elem_bytes()) +
                  cm_.bitmap_check_ns;
    ++stats_.scored_points;
  } else {
    done_ = true;
  }
}

bool IntraCtaSearch::step(StepCost& cost) {
  if (done_) return false;
  StepCost c;
  c.compute_ns += pending_ns_;
  pending_ns_ = 0.0;

  // --- 1. select candidate(s) to expand --------------------------------
  const std::size_t want = diffusing_ ? cfg_.beam_width : 1;
  c.select_ns += cm_.select_ns(cfg_.candidate_len);
  const std::size_t first = list_.first_unchecked();
  if (first == CandidateList::npos) {
    done_ = true;
    stats_.cost += c;
    cost = c;
    return true;  // this round performed the (empty) final scan
  }
  if (!diffusing_ && first >= cfg_.offset_beam && cfg_.beam_width > 1) {
    diffusing_ = true;  // §IV-C: selected offset reached offset_beam
  }
  const std::size_t take = diffusing_ ? want : 1;
  const std::size_t got = list_.take_unchecked(take, selected_);
  assert(got >= 1);

  // --- 2+3. gather neighbors + filter via bitmap, then one batched
  // distance round over the surviving ids — the same gather/score split the
  // kernel's coalesced round performs (§IV-B step 3). Claiming via
  // test_and_set during the gather keeps the id order (and therefore every
  // float result) identical to the seed's fused loop.
  gathered_.clear();
  for (std::size_t s = 0; s < got; ++s) {
    const KV& sel = list_.at(selected_[s]);
    if (trace_) stats_.step_distances.push_back(sel.dist);
    ++stats_.expanded_points;
    for (NodeId nb : g_.neighbors(sel.id())) {
      if (nb == kInvalidNode) continue;
      c.gather_ns += cm_.gather_per_neighbor_ns;
      c.gather_ns += cm_.bitmap_check_ns;
      if (visited_->test_and_set(nb)) continue;  // another CTA owns it
      gathered_.push_back(nb);
    }
  }
  round_dists_.resize(gathered_.size());
  ds_.distance_batch(query_, gathered_, round_dists_);
  expand_.clear();
  for (std::size_t k = 0; k < gathered_.size(); ++k) {
    expand_.push_back(KV::make(round_dists_[k], gathered_[k]));
  }
  stats_.scored_points += gathered_.size();
  c.compute_ns +=
      cm_.distance_round_ns(ds_.dim(), expand_.size(), 32, ds_.elem_bytes());

  // --- 4. one bitonic sort + merge for the whole round -------------------
  if (!expand_.empty()) {
    // All ids in expand_ are distinct (the visited bitmap filtered the
    // gather), so std::sort produces the exact array the kernel's bitonic
    // network would; the modeled cost below still charges the padded
    // network the kernel runs.
    const std::size_t padded = next_pow2(expand_.size());
    std::sort(expand_.begin(), expand_.end());
    const std::size_t network = list_.merge_sorted(expand_);
    if (cfg_.full_sort_maintenance) {
      // GANNS-style: full re-sort of the merged buffer every round.
      c.sort_ns += cm_.bitonic_sort_ns(network);
    } else {
      c.sort_ns += cm_.bitonic_sort_ns(padded);
      c.sort_ns += cm_.bitonic_merge_ns(network);
    }
  }

  ++stats_.rounds;
  stats_.cost += c;
  cost = c;
  return true;
}

std::vector<KV> IntraCtaSearch::results() const {
  if (cfg_.accept.null()) return list_.topk(cfg_.topk);
  // Same walk as CandidateList::topk (entries ascending, empties at the
  // tail terminate), with predicate-rejected ids skipped at the accept
  // step.
  std::vector<KV> out;
  out.reserve(std::min(cfg_.topk, list_.capacity()));
  for (const KV& e : list_.entries()) {
    if (e.is_empty() || out.size() == cfg_.topk) break;
    if (!cfg_.accept.accepts(e.id())) continue;
    out.push_back(e);
  }
  return out;
}

sim::SharedMemoryLayout IntraCtaSearch::shared_memory_layout() const {
  sim::SharedMemoryLayout layout;
  layout.candidate_entries = cfg_.candidate_len;
  layout.expand_entries = next_pow2(cfg_.beam_width * g_.degree());
  layout.dim = ds_.dim();
  layout.elem_bytes = ds_.elem_bytes();
  return layout;
}

}  // namespace algas::search
