#include "search/greedy.hpp"

namespace algas::search {

GreedyResult greedy_search(const Dataset& ds, const Graph& g,
                           const sim::CostModel& cm, const SearchConfig& cfg,
                           std::span<const float> query) {
  SearchConfig greedy_cfg = cfg;
  greedy_cfg.beam_width = 1;  // Algorithm 1 is strictly greedy

  IntraCtaSearch cta(ds, g, cm, greedy_cfg);
  cta.enable_trace(true);
  VisitedTable visited(ds.num_base());
  cta.reset(query, g.entry_point(), &visited);

  StepCost cost;
  while (cta.step(cost)) {
  }

  GreedyResult res;
  res.topk = cta.results();
  res.stats = cta.stats();
  return res;
}

}  // namespace algas::search
