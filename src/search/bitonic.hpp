// Bitonic sorting network over KV arrays — the "parallel-friendly bitonic
// sort" of §IV-B step 4. Functional mirror of the warp implementation:
// identical compare-exchange order, so the simulated cost model
// (CostModel::bitonic_*_ns) and the real data movement agree stage for
// stage.
#pragma once

#include <cstddef>
#include <span>

#include "search/kv.hpp"

namespace algas::search {

/// Full bitonic sort, ascending. data.size() must be a power of two.
void bitonic_sort(std::span<KV> data);

/// Merge step only: `data` must be a bitonic sequence (e.g. an ascending
/// first half followed by a descending second half). Power-of-two size.
void bitonic_merge(std::span<KV> data);

/// Merge two ascending sorted halves of `data` (each size n/2) into a fully
/// ascending array: reverses the second half in place, then merges.
void merge_sorted_halves(std::span<KV> data);

/// True if data is ascending under KV's ordering.
bool is_sorted_kv(std::span<const KV> data);

}  // namespace algas::search
