// Candidate-list entry: (distance, id) with the "checked" flag packed into
// the id's top bit — the layout the GPU kernels keep in shared memory
// (8 bytes/entry, see simgpu::kListEntryBytes).
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace algas {

struct KV {
  float dist = kInfDist;
  std::uint32_t key = kInvalidNode;  // node id | checked flag

  static constexpr std::uint32_t kCheckedBit = 0x80000000u;
  /// Node ids must stay below this so the flag bit never aliases an id.
  static constexpr std::uint32_t kMaxNodeId = kCheckedBit - 1;

  static KV empty() { return KV{}; }

  static KV make(float d, NodeId id) {
    return KV{d, static_cast<std::uint32_t>(id)};
  }

  bool is_empty() const { return key == kInvalidNode; }
  NodeId id() const { return key & ~kCheckedBit; }
  bool checked() const { return (key & kCheckedBit) != 0; }
  void mark_checked() { key |= kCheckedBit; }

  /// Strict weak ordering: ascending distance, ties by id, empties last.
  friend bool operator<(const KV& a, const KV& b) {
    if (a.is_empty() != b.is_empty()) return b.is_empty();
    if (a.dist != b.dist) return a.dist < b.dist;
    return a.id() < b.id();
  }
};

}  // namespace algas
