#include "search/topk_merge.hpp"

#include <cassert>
#include <queue>
#include <unordered_set>

namespace algas::search {

std::vector<KV> merge_sorted_runs(std::span<const KV> concat,
                                  std::size_t runs, std::size_t run_len,
                                  std::size_t k,
                                  const AcceptPredicate& accept) {
  assert(concat.size() >= runs * run_len);

  // (entry, run, offset) min-heap over run heads — the host's priority
  // queue from §IV-B step 4.
  struct Head {
    KV kv;
    std::size_t run;
    std::size_t offset;
  };
  // Ordering is fully pinned: ascending (distance, id) via KV's comparator,
  // and heads that are exactly equal — same distance AND same id, which
  // cross-shard merging of overlapping runs can actually produce — pop in
  // run order. Without the run tie-break the pop order of equal heads
  // would be an implementation detail of std::priority_queue; with it the
  // merged output is a pure function of the input runs.
  auto greater = [](const Head& a, const Head& b) {
    if (a.kv < b.kv) return false;
    if (b.kv < a.kv) return true;
    return a.run > b.run;
  };
  std::priority_queue<Head, std::vector<Head>, decltype(greater)> heap(greater);

  for (std::size_t r = 0; r < runs; ++r) {
    const KV& head = concat[r * run_len];
    if (run_len > 0 && !head.is_empty()) heap.push({head, r, 0});
  }

  std::vector<KV> out;
  out.reserve(k);
  std::unordered_set<NodeId> seen;
  while (!heap.empty() && out.size() < k) {
    Head h = heap.top();
    heap.pop();
    const NodeId id = h.kv.id();
    if (accept.accepts(id) && seen.insert(id).second) {
      // Strip the checked flag: merged results are plain (dist, id).
      out.push_back(KV::make(h.kv.dist, id));
    }
    const std::size_t next = h.offset + 1;
    if (next < run_len) {
      const KV& kv = concat[h.run * run_len + next];
      if (!kv.is_empty()) heap.push({kv, h.run, next});
    }
  }
  return out;
}

}  // namespace algas::search
