// Visited table shared by all CTAs searching the same query (§IV-B): a
// bitmap with test-and-set semantics. The set-count is tracked so engines
// can charge the modeled atomic cost per check.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/bitset.hpp"

namespace algas::search {

class VisitedTable {
 public:
  VisitedTable() = default;
  explicit VisitedTable(std::size_t num_nodes) : bits_(num_nodes) {}

  void resize(std::size_t num_nodes) { bits_.resize(num_nodes); }

  /// Mark node visited; returns true if it was already visited.
  /// Mirrors the GPU's atomicOr check in step 2 of the search process.
  bool test_and_set(std::size_t node) {
    ++checks_;
    return bits_.test_and_set(node);
  }

  bool test(std::size_t node) const { return bits_.test(node); }

  void clear() {
    bits_.clear();
    checks_ = 0;
  }

  std::size_t size() const { return bits_.size(); }
  std::uint64_t checks() const { return checks_; }
  std::size_t visited_count() const { return bits_.count(); }

 private:
  Bitset bits_;
  std::uint64_t checks_ = 0;
};

}  // namespace algas::search
