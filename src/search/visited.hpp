// Visited table shared by all CTAs searching the same query (§IV-B): a
// test-and-set bitmap on the GPU, generation-stamped epochs on the host so
// the per-query clear() is O(1) wall-clock instead of an O(n/64) memset.
//
// A node is "visited" when its stamp equals the current generation;
// clear() just bumps the generation. This changes HOST time only: the
// modeled virtual cost of the clear is still charged by the engines via
// core::visited_clear_words x bitmap_clear_per_word_ns, exactly as the GPU
// pays for the real bitmap memset (see DESIGN.md "Modeled time vs. host
// wall-clock"). The set-count is tracked so engines can charge the modeled
// atomic cost per check.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/ownership.hpp"

namespace algas::search {

class VisitedTable {
 public:
  /// Stamp width bounds the epochs between forced full clears; 16 bits
  /// keeps the table 2 bytes/node and makes the wraparound path testable.
  using Generation = std::uint16_t;

  VisitedTable() = default;
  explicit VisitedTable(std::size_t num_nodes) : stamps_(num_nodes, 0) {}

  /// Growing preserves the current epoch: existing stamps and the
  /// generation survive, and the appended nodes start at stamp 0 (never
  /// visited, since the live generation is always >= 1). Streaming inserts
  /// grow the table on every publish, so discarding the epoch here would
  /// silently force a full O(n) re-stamp per growth. Shrinking (or
  /// resizing to the same count) keeps the historical full-reset
  /// semantics — the surviving prefix is not meaningful across a remap.
  void resize(std::size_t num_nodes) {
    if (num_nodes > stamps_.size()) {
      stamps_.resize(num_nodes, 0);
      return;
    }
    stamps_.assign(num_nodes, 0);
    generation_ = 1;
    checks_ = 0;
  }

  /// Mark node visited; returns true if it was already visited.
  /// Mirrors the GPU's atomicOr check in step 2 of the search process.
  bool test_and_set(std::size_t node) {
    ++checks_;
    if (stamps_[node] == generation_) return true;
    stamps_[node] = generation_;
    return false;
  }

  bool test(std::size_t node) const { return stamps_[node] == generation_; }

  /// O(1): start a new epoch. Only on generation wraparound does the whole
  /// stamp array reset (once every 65535 clears).
  void clear() {
    checks_ = 0;
    if (++generation_ == 0) {
      std::fill(stamps_.begin(), stamps_.end(), Generation{0});
      generation_ = 1;
    }
  }

  std::size_t size() const { return stamps_.size(); }
  std::uint64_t checks() const { return checks_; }
  Generation generation() const { return generation_; }
  std::size_t visited_count() const {
    return static_cast<std::size_t>(
        std::count(stamps_.begin(), stamps_.end(), generation_));
  }

 private:
  /// Stamp array shared by all CTAs of a slot: validity is relative to
  /// generation_, so clear() retires a whole epoch in O(1). Epoch
  /// reclamation is also how tombstone compaction will recycle this table
  /// under streaming mutability (ROADMAP).
  std::vector<Generation> stamps_ ALGAS_GUARDED_BY_EPOCH(VisitedTable);
  Generation generation_ ALGAS_OWNED_BY(VisitedTable) = 1;  // 0 = never
  std::uint64_t checks_ ALGAS_OWNED_BY(VisitedTable) = 0;
};

}  // namespace algas::search
