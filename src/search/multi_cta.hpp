// Multi-CTA search (§IV-B): T CTAs cooperate on one query, each with a
// private candidate list, sharing only the visited table. Entry points are
// distinct pseudo-random nodes.
//
// The DES engines drive per-CTA IntraCtaSearch instances as actors; this
// module provides entry-point selection plus a synchronous driver
// (interleaved round-robin stepping, matching what concurrent CTAs do in
// virtual time) used by tests and the reference path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "search/intra_cta.hpp"
#include "search/topk_merge.hpp"

namespace algas::search {

/// Choose `count` distinct entry points for (query_index, cta) pairs. The
/// first entry is the graph's tuned entry point; the rest are splitmix
/// hashes of (seed, query_index, cta) — the CAGRA-style random entries.
std::vector<NodeId> select_entry_points(const Graph& g, std::size_t count,
                                        std::uint64_t seed,
                                        std::size_t query_index);

struct MultiCtaResult {
  std::vector<KV> topk;              ///< merged, ascending
  SearchStats per_cta_total;         ///< summed across CTAs
  std::vector<double> per_cta_ns;    ///< modeled search time of each CTA
  std::size_t run_len = 0;           ///< candidate list length per CTA
  /// Modeled wall time of the slowest CTA — what the slot's latency would
  /// be with perfectly concurrent CTAs (excludes merge).
  double critical_path_ns = 0.0;
  std::size_t rounds_max = 0;
};

/// Synchronous multi-CTA driver: steps T searches round-robin over a shared
/// visited table and host-merges the per-CTA lists.
MultiCtaResult multi_cta_search(const Dataset& ds, const Graph& g,
                                const sim::CostModel& cm,
                                const SearchConfig& cfg, std::size_t num_ctas,
                                std::span<const float> query,
                                std::size_t query_index, std::uint64_t seed);

}  // namespace algas::search
