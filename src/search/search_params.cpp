#include "search/search_params.hpp"

#include <algorithm>

#include "search/intra_cta.hpp"

namespace algas::search {

SearchConfig normalize_config(SearchConfig cfg, std::size_t degree) {
  cfg.candidate_len = next_pow2(std::max(cfg.candidate_len, cfg.topk));
  // Even a greedy round can produce up to `degree` new points; L must be
  // able to absorb one expand list.
  cfg.candidate_len = std::max(cfg.candidate_len, next_pow2(degree));
  cfg.beam_width = std::max<std::size_t>(cfg.beam_width, 1);
  // The expand list (beam * degree, rounded to 2^k) must fit inside L so a
  // single 2L bitonic merge maintains the list.
  while (cfg.beam_width > 1 &&
         next_pow2(cfg.beam_width * degree) > cfg.candidate_len) {
    --cfg.beam_width;
  }
  return cfg;
}

std::size_t scaled_candidate_len(std::size_t candidate_len, std::size_t topk,
                                 std::size_t parts) {
  if (parts <= 1) return candidate_len;
  // Each partition holds ~1/parts of the base set, so ~1/parts of the
  // depth preserves the quality of the merged union while cutting
  // per-partition search work ~parts-fold.
  return std::max(topk, (candidate_len + parts - 1) / parts);
}

SearchConfig widen_for_selectivity(SearchConfig cfg, double selectivity,
                                   std::size_t max_factor) {
  max_factor = std::max<std::size_t>(max_factor, 1);
  if (selectivity >= 1.0 || max_factor == 1) return cfg;
  std::size_t factor = max_factor;
  if (selectivity > 0.0) {
    // ~1/selectivity survivors-per-slot scaling, truncated then rounded
    // up to a power of two: a 30% filter widens 4x (1/0.3 -> 3 -> 4)
    // while a lightly-tombstoned view (selectivity 0.9) stays at 1x —
    // widening must not double the search work over a handful of
    // deletes. Capped at max_factor.
    const auto inv = static_cast<std::size_t>(1.0 / selectivity);
    factor = std::min(max_factor, next_pow2(std::max<std::size_t>(inv, 1)));
  }
  cfg.candidate_len *= factor;
  return cfg;
}

}  // namespace algas::search
