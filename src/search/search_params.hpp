// Shared clamp/derive logic for SearchConfig — the one place candidate-list
// and beam-width invariants live, so the engine, the CLI, the sharded
// depth scaling, and selectivity-aware widening cannot silently diverge.
//
// The invariants (enforced by normalize_config, in this order):
//   * candidate_len is a power of two, >= topk, and >= next_pow2(degree)
//     (even a greedy round must absorb one full expand list);
//   * beam_width >= 1, reduced until the expand list (beam * degree,
//     padded to 2^k) fits inside candidate_len so a single 2L bitonic
//     merge maintains the list.
#pragma once

#include <cstddef>

namespace algas::search {

struct SearchConfig;

/// Clamp/derive a valid config: candidate_len to a power of two >= topk,
/// beam_width so the expand list (beam * degree, padded to 2^k) fits in L.
SearchConfig normalize_config(SearchConfig cfg, std::size_t degree);

/// Candidate depth for one of `parts` partitions of the base set, floored
/// at topk (the sharded engine's 1/K scaling; normalize_config re-clamps
/// to a power of two afterwards). parts == 0 or 1 leaves the depth alone.
std::size_t scaled_candidate_len(std::size_t candidate_len, std::size_t topk,
                                 std::size_t parts);

/// Selectivity-aware widening (filter-during-search): scale candidate_len
/// by ~1/selectivity (truncated, then rounded up to a power of two),
/// capped at `max_factor`, so a search that must discard most candidates
/// at the accept step still gathers enough survivors to fill the TopK —
/// without widening at all while more than half the set is accepted (a
/// lightly-tombstoned serving view stays at 1x). The widened list is
/// charged by the existing cost model automatically — select_ns and the
/// bitonic network are functions of the list length. A selectivity >= 1
/// (or a null predicate upstream) returns the config unchanged,
/// preserving the byte-identity of unfiltered runs; selectivity <= 0
/// (nothing acceptable) applies the full cap — the search returns empty
/// regardless, and the cap bounds the wasted work. normalize_config still
/// runs afterwards.
SearchConfig widen_for_selectivity(SearchConfig cfg, double selectivity,
                                   std::size_t max_factor = 8);

}  // namespace algas::search
