// Fixed-capacity sorted candidate list — the kernel's central shared-memory
// structure. Capacity L is a power of two; entries stay ascending by
// distance. Maintenance (merging a sorted expand list, keeping the top L)
// models the kernel's reversed-concatenate + 2L bitonic merge: the modeled
// cost charges that network, while the host executes a bounded linear merge
// that produces the identical array (see DESIGN.md, "Modeled time vs. host
// wall-clock").
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "search/kv.hpp"

namespace algas::search {

class CandidateList {
 public:
  explicit CandidateList(std::size_t capacity_pow2);

  std::size_t capacity() const { return entries_.size(); }

  void reset();

  /// Seed with one starting point (keeps list sorted).
  void seed(KV entry);

  /// Index of the best (closest) unchecked entry, or npos when the list is
  /// exhausted — the search-termination condition.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t first_unchecked() const;

  /// Collect up to `max_count` best unchecked entry indices (ascending by
  /// distance) and mark them checked. Returns number collected. The beam
  /// extend step uses max_count = beam width; greedy uses 1.
  std::size_t take_unchecked(std::size_t max_count,
                             std::span<std::size_t> out_indices);

  const KV& at(std::size_t i) const { return entries_[i]; }

  /// Merge an ascending-sorted expand list into the candidate list, keeping
  /// the best L entries. expand.size() must be <= capacity(). Returns the
  /// network size the merge ran at (for cost accounting).
  std::size_t merge_sorted(std::span<const KV> expand);

  std::span<const KV> entries() const { return entries_; }

  /// First k non-empty entries (ascending).
  std::vector<KV> topk(std::size_t k) const;

 private:
  std::vector<KV> entries_;
  std::vector<KV> scratch_;  // 2L merge buffer
};

}  // namespace algas::search
