#include "search/candidate_list.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "common/types.hpp"
#include "search/bitonic.hpp"

namespace algas::search {

CandidateList::CandidateList(std::size_t capacity_pow2)
    : entries_(capacity_pow2), scratch_(2 * capacity_pow2) {
  if (!is_pow2(capacity_pow2)) {
    throw std::invalid_argument("candidate list capacity must be 2^k");
  }
}

void CandidateList::reset() {
  std::fill(entries_.begin(), entries_.end(), KV::empty());
}

void CandidateList::seed(KV entry) {
  // Insert keeping ascending order; list is assumed freshly reset or only
  // partially filled with seeds (used for entry points only).
  auto it = std::lower_bound(entries_.begin(), entries_.end(), entry);
  if (it == entries_.end()) return;
  std::rotate(it, entries_.end() - 1, entries_.end());
  *it = entry;
}

std::size_t CandidateList::first_unchecked() const {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const KV& e = entries_[i];
    if (e.is_empty()) return npos;  // ascending: empties are the tail
    if (!e.checked()) return i;
  }
  return npos;
}

std::size_t CandidateList::take_unchecked(std::size_t max_count,
                                          std::span<std::size_t> out_indices) {
  assert(out_indices.size() >= max_count);
  std::size_t found = 0;
  for (std::size_t i = 0; i < entries_.size() && found < max_count; ++i) {
    KV& e = entries_[i];
    if (e.is_empty()) break;
    if (e.checked()) continue;
    e.mark_checked();
    out_indices[found++] = i;
  }
  return found;
}

std::size_t CandidateList::merge_sorted(std::span<const KV> expand) {
  const std::size_t cap = entries_.size();
  if (expand.size() > cap) {
    throw std::invalid_argument("expand list larger than candidate list");
  }
  assert(is_sorted_kv(expand));
  // scratch = [candidates ascending | expand ascending padded to L], then
  // merge_sorted_halves turns the whole 2L buffer ascending.
  std::copy(entries_.begin(), entries_.end(), scratch_.begin());
  auto mid = scratch_.begin() + static_cast<std::ptrdiff_t>(cap);
  std::copy(expand.begin(), expand.end(), mid);
  std::fill(mid + static_cast<std::ptrdiff_t>(expand.size()), scratch_.end(),
            KV::empty());
  merge_sorted_halves(scratch_);
  std::copy(scratch_.begin(), mid, entries_.begin());
  return scratch_.size();
}

std::vector<KV> CandidateList::topk(std::size_t k) const {
  std::vector<KV> out;
  out.reserve(std::min(k, entries_.size()));
  for (const KV& e : entries_) {
    if (e.is_empty() || out.size() == k) break;
    out.push_back(e);
  }
  return out;
}

}  // namespace algas::search
