#include "search/candidate_list.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "common/types.hpp"
#include "search/bitonic.hpp"

namespace algas::search {

CandidateList::CandidateList(std::size_t capacity_pow2)
    : entries_(capacity_pow2), scratch_(2 * capacity_pow2) {
  if (!is_pow2(capacity_pow2)) {
    throw std::invalid_argument("candidate list capacity must be 2^k");
  }
}

void CandidateList::reset() {
  std::fill(entries_.begin(), entries_.end(), KV::empty());
}

void CandidateList::seed(KV entry) {
  // Insert keeping ascending order; list is assumed freshly reset or only
  // partially filled with seeds (used for entry points only).
  auto it = std::lower_bound(entries_.begin(), entries_.end(), entry);
  if (it == entries_.end()) return;
  std::rotate(it, entries_.end() - 1, entries_.end());
  *it = entry;
}

std::size_t CandidateList::first_unchecked() const {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const KV& e = entries_[i];
    if (e.is_empty()) return npos;  // ascending: empties are the tail
    if (!e.checked()) return i;
  }
  return npos;
}

std::size_t CandidateList::take_unchecked(std::size_t max_count,
                                          std::span<std::size_t> out_indices) {
  assert(out_indices.size() >= max_count);
  std::size_t found = 0;
  for (std::size_t i = 0; i < entries_.size() && found < max_count; ++i) {
    KV& e = entries_[i];
    if (e.is_empty()) break;
    if (e.checked()) continue;
    e.mark_checked();
    out_indices[found++] = i;
  }
  return found;
}

std::size_t CandidateList::merge_sorted(std::span<const KV> expand) {
  const std::size_t cap = entries_.size();
  if (expand.size() > cap) {
    throw std::invalid_argument("expand list larger than candidate list");
  }
  assert(is_sorted_kv(expand));
  // The kernel concatenates [candidates | reversed expand padded to L] and
  // runs a 2L bitonic merge, keeping the lower half. The visited bitmap
  // guarantees each id is scored at most once per query, so every non-empty
  // key in the two halves is distinct under KV ordering and a bounded linear
  // merge produces the bitwise-identical lower half in O(L) host time
  // instead of O(L log 2L). The modeled cost still charges the full 2L
  // network via the returned network size.
  std::size_t i = 0;
  std::size_t j = 0;
  for (std::size_t out = 0; out < cap; ++out) {
    if (j < expand.size() && expand[j] < entries_[i]) {
      scratch_[out] = expand[j++];
    } else {
      scratch_[out] = entries_[i++];
    }
  }
  std::copy(scratch_.begin(),
            scratch_.begin() + static_cast<std::ptrdiff_t>(cap),
            entries_.begin());
  return 2 * cap;
}

std::vector<KV> CandidateList::topk(std::size_t k) const {
  std::vector<KV> out;
  out.reserve(std::min(k, entries_.size()));
  for (const KV& e : entries_) {
    if (e.is_empty() || out.size() == k) break;
    out.push_back(e);
  }
  return out;
}

}  // namespace algas::search
