// Resumable intra-CTA graph search (§IV-B "Search in CTA") with optional
// beam extend.
//
// One instance models the work of one CTA (one warp). step() executes one
// *maintenance round* — the unit between candidate-list sorts:
//   localization phase: select 1 best unchecked candidate, expand it,
//     distance-score the unvisited neighbors, sort + merge.   (greedy)
//   diffusing phase (beam extend): select up to `beam_width` candidates at
//     once, expand them all, and amortize ONE sort + merge over the round.
// The phase switches permanently once the selected candidate's offset in
// the list reaches `offset_beam` (§IV-C "timing for activating beam
// search").
//
// Functional output is real (true float distances, true neighbors); each
// round also reports its modeled virtual-time cost so DES actors can charge
// the clock.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "dataset/dataset.hpp"
#include "graph/graph.hpp"
#include "search/accept.hpp"
#include "search/candidate_list.hpp"
#include "search/search_params.hpp"
#include "search/visited.hpp"
#include "simgpu/cost_model.hpp"
#include "simgpu/shared_memory.hpp"

namespace algas::search {

struct SearchConfig {
  std::size_t topk = 16;
  /// Candidate list length L (rounded up to a power of two internally).
  std::size_t candidate_len = 128;
  /// Beam width B for the diffusing phase; 1 = pure greedy ("Greedy
  /// Extend" in Fig 16).
  std::size_t beam_width = 1;
  /// Candidate-list offset that triggers the diffusing phase. Offsets grow
  /// as the search transitions from locating the TopK region to diffusing
  /// within it. >= candidate_len disables beam extend.
  std::size_t offset_beam = 24;
  /// GANNS-style maintenance: re-sort the whole merged buffer each round
  /// instead of the fused sort-expand + bitonic-merge. Functionally
  /// identical, costlier — models GANNS's heavier data-structure upkeep.
  bool full_sort_maintenance = false;
  /// Accept-step predicate: attribute filters, streaming-delete
  /// tombstones, and their conjunction behind one O(1) view
  /// (search/accept.hpp). Rejected nodes still ROUTE — they stay in the
  /// candidate list and are expanded like any other node, keeping the
  /// graph navigable — but the accept step (results() /
  /// merge_sorted_runs) excludes them from the TopK. The null predicate
  /// leaves every accept path byte-identical to the unfiltered build.
  AcceptPredicate accept;
};

/// Virtual-time cost of one maintenance round, split by activity so benches
/// can reproduce the Fig 3 / Fig 17 compute-vs-sort breakdown.
struct StepCost {
  double select_ns = 0.0;
  double gather_ns = 0.0;
  double compute_ns = 0.0;
  double sort_ns = 0.0;
  double total_ns() const {
    return select_ns + gather_ns + compute_ns + sort_ns;
  }
  StepCost& operator+=(const StepCost& o) {
    select_ns += o.select_ns;
    gather_ns += o.gather_ns;
    compute_ns += o.compute_ns;
    sort_ns += o.sort_ns;
    return *this;
  }
};

struct SearchStats {
  std::size_t rounds = 0;           ///< maintenance rounds (sorts)
  std::size_t expanded_points = 0;  ///< candidates expanded ("steps", Fig 1)
  std::size_t scored_points = 0;    ///< distance computations
  StepCost cost;                    ///< accumulated modeled time
  /// Distance of the selected candidate at each expansion (Fig 7 trace);
  /// filled only when tracing is enabled.
  std::vector<float> step_distances;
};

class IntraCtaSearch {
 public:
  IntraCtaSearch(const Dataset& ds, const Graph& g,
                 const sim::CostModel& cm, const SearchConfig& cfg);

  /// Start a new query. `visited` is the (possibly CTA-shared) table; it
  /// must already be clear or shared-cleared by the caller. The entry point
  /// is scored and seeded here (cost charged to the first round).
  void reset(std::span<const float> query, NodeId entry,
             VisitedTable* visited);

  /// Execute one maintenance round. Returns false (and leaves `cost`
  /// untouched) when the search has already terminated.
  bool step(StepCost& cost);

  bool done() const { return done_; }

  /// Sorted candidate list (valid after any number of steps).
  std::span<const KV> candidates() const { return list_.entries(); }

  /// Best `topk` ids found (ascending by distance). Predicate-rejected
  /// nodes (filtered or tombstoned) are excluded here — the accept step —
  /// while remaining visible to the traversal itself.
  std::vector<KV> results() const;

  const SearchStats& stats() const { return stats_; }
  const SearchConfig& config() const { return cfg_; }
  bool in_diffusing_phase() const { return diffusing_; }

  void enable_trace(bool on) { trace_ = on; }

  /// Shared-memory footprint of this configuration (for the tuner).
  sim::SharedMemoryLayout shared_memory_layout() const;

 private:
  const Dataset& ds_;
  const Graph& g_;
  sim::CostModel cm_;
  SearchConfig cfg_;

  CandidateList list_;
  std::vector<KV> expand_;            // sorted scratch, <= L entries
  std::vector<std::size_t> selected_; // indices scratch
  std::vector<NodeId> gathered_;      // round's unvisited neighbor ids
  std::vector<float> round_dists_;    // their batched distances
  std::span<const float> query_;
  VisitedTable* visited_ = nullptr;
  bool done_ = true;
  bool diffusing_ = false;
  bool trace_ = false;
  double pending_ns_ = 0.0;  // entry-scoring cost carried into round 1
  SearchStats stats_;
};

}  // namespace algas::search

