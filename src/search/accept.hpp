// The accept-step predicate — the pluggable replacement for the raw
// `const TombstoneSet*` that PR 7 threaded through the search layer.
//
// Filtered search (attribute predicates), streaming deletes (tombstones),
// and their conjunction all share one traversal contract: a rejected node
// KEEPS ROUTING — it stays in the candidate list and is expanded like any
// other node, keeping the graph navigable — but the accept step
// (IntraCtaSearch::results, merge_sorted_runs) never surfaces it in the
// TopK. AcceptPredicate packages that contract behind a single O(1)
// `accepts(node_id)` view cheap enough to sit inside the simulated kernel's
// merge loop: two pointer checks and at most one bitset probe plus one
// generation-stamp compare per candidate.
//
// The null predicate (default-constructed) accepts everything and leaves
// every accept path byte-identical to the unfiltered build — the same
// pinned guarantee the null tombstone set carried before this API existed.
//
// Predicates are value types holding non-owning pointers: the bitset and
// tombstone set must outlive every engine run that consults the predicate.
// Like the other published value structs (SharedMemoryLayout, configs),
// the fields are ALGAS_IMMUTABLE_AFTER_PUBLISH: build the predicate as a
// function-local value, hand it to a SearchConfig, and never mutate it
// afterwards — tools/algas_lint rejects writes from outside the class.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/ownership.hpp"
#include "common/types.hpp"
#include "graph/tombstones.hpp"

namespace algas::search {

/// Dense accept mask over node ids: bit v set = node v passes the attribute
/// filter. This is the host-built, device-resident form of a predicate —
/// one bit per base row, so a 1M-row shard costs 128 KiB and a membership
/// probe is one word load plus a shift, exactly what a kernel can afford
/// per merged candidate.
class NodeBitset {
 public:
  NodeBitset() = default;
  explicit NodeBitset(std::size_t num_nodes, bool value = false)
      : size_(num_nodes),
        words_((num_nodes + 63) / 64,
               value ? ~std::uint64_t{0} : std::uint64_t{0}) {
    trim_tail();
  }

  void set(NodeId v) { words_[word(v)] |= bit(v); }
  void reset(NodeId v) { words_[word(v)] &= ~bit(v); }
  bool test(NodeId v) const {
    return (words_[word(v)] & bit(v)) != 0;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Number of set bits — the numerator of a selectivity estimate.
  std::size_t count() const {
    std::size_t n = 0;
    for (const std::uint64_t w : words_) n += std::popcount(w);
    return n;
  }

  /// Set bits within [begin, end) — per-shard accepted counts for the
  /// fanout router's filter-empty fallback.
  std::size_t count_range(std::size_t begin, std::size_t end) const {
    std::size_t n = 0;
    end = end < size_ ? end : size_;
    for (std::size_t v = begin; v < end; ++v) {
      if (test(static_cast<NodeId>(v))) ++n;
    }
    return n;
  }

 private:
  static std::size_t word(NodeId v) { return static_cast<std::size_t>(v) >> 6; }
  static std::uint64_t bit(NodeId v) { return std::uint64_t{1} << (v & 63); }
  /// Keep bits past size_ clear so count() needs no tail mask.
  void trim_tail() {
    const std::size_t tail = size_ & 63;
    if (tail != 0 && !words_.empty()) {
      words_.back() &= (std::uint64_t{1} << tail) - 1;
    }
  }

  std::size_t size_ = 0;
  /// Built word by word while function-local (set/reset above), immutable
  /// once a predicate pointing at it is published into an engine config.
  std::vector<std::uint64_t> words_ ALGAS_IMMUTABLE_AFTER_PUBLISH;
};

/// The accept-step predicate: an optional attribute filter (bitset), an
/// optional tombstone set, and their conjunction — a node is accepted only
/// when every attached component accepts it. Both components are consulted
/// with the same out-of-range convention the tombstone accept step always
/// used: ids past a component's size are accepted (appended rows the
/// structure has not grown to cover are live by definition).
class AcceptPredicate {
 public:
  /// Null predicate: accepts every id, byte-identical accept paths.
  AcceptPredicate() = default;

  explicit AcceptPredicate(const NodeBitset* filter,
                           const TombstoneSet* tombstones = nullptr)
      : filter_(filter), tombset_(tombstones) {}

  /// Tombstones-only predicate — what MutableIndex::serve attaches.
  static AcceptPredicate deleted_only(const TombstoneSet* tombstones) {
    return AcceptPredicate(nullptr, tombstones);
  }

  /// This predicate with the tombstone component replaced — how a mutable
  /// index conjoins its deletion set with a caller's attribute filter.
  AcceptPredicate with_tombstones(const TombstoneSet* tombstones) const {
    AcceptPredicate p = *this;
    p.tombset_ = tombstones;
    return p;
  }

  /// Shard-local view: accepts(local) consults the global structures at
  /// `local + offset`. Contiguous id-range partitioning makes a per-shard
  /// predicate exactly one offset add (dataset/partitioner).
  AcceptPredicate with_offset(std::size_t offset) const {
    AcceptPredicate p = *this;
    p.offset_ += offset;
    return p;
  }

  /// True when nothing is attached: every accept path must then be
  /// byte-identical to the pre-predicate engine.
  bool null() const { return filter_ == nullptr && tombset_ == nullptr; }

  bool has_filter() const { return filter_ != nullptr; }
  bool has_tombstones() const { return tombset_ != nullptr; }
  const NodeBitset* filter() const { return filter_; }
  const TombstoneSet* tombstones() const { return tombset_; }
  std::size_t offset() const { return offset_; }

  /// O(1) accept check — the only call the kernel-side accept step makes.
  bool accepts(NodeId v) const {
    const std::size_t g = static_cast<std::size_t>(v) + offset_;
    if (tombset_ != nullptr && g < tombset_->size() &&
        tombset_->contains(static_cast<NodeId>(g))) {
      return false;
    }
    if (filter_ != nullptr && g < filter_->size() &&
        !filter_->test(static_cast<NodeId>(g))) {
      return false;
    }
    return true;
  }

  /// Accepted ids within local range [begin, end) — exact, O(end - begin).
  std::size_t accepted_in_range(std::size_t begin, std::size_t end) const {
    std::size_t n = 0;
    for (std::size_t v = begin; v < end; ++v) {
      if (accepts(static_cast<NodeId>(v))) ++n;
    }
    return n;
  }

  /// Exact fraction of the local id space [0, num_nodes) this predicate
  /// accepts — what selectivity-aware beam widening scales by. 1.0 for the
  /// null predicate or an empty id space.
  double selectivity(std::size_t num_nodes) const {
    if (null() || num_nodes == 0) return 1.0;
    return static_cast<double>(accepted_in_range(0, num_nodes)) /
           static_cast<double>(num_nodes);
  }

 private:
  // Non-owning, set at construction, immutable after the predicate is
  // published into a SearchConfig (lint rule `ownership`).
  const NodeBitset* filter_ ALGAS_IMMUTABLE_AFTER_PUBLISH = nullptr;
  const TombstoneSet* tombset_ ALGAS_IMMUTABLE_AFTER_PUBLISH = nullptr;
  std::size_t offset_ ALGAS_IMMUTABLE_AFTER_PUBLISH = 0;
};

}  // namespace algas::search
