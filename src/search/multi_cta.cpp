#include "search/multi_cta.hpp"

#include <algorithm>

#include "common/rng.hpp"

namespace algas::search {

std::vector<NodeId> select_entry_points(const Graph& g, std::size_t count,
                                        std::uint64_t seed,
                                        std::size_t query_index) {
  std::vector<NodeId> entries;
  entries.reserve(count);
  const std::size_t n = g.num_nodes();
  if (n == 0) return entries;  // empty graph: nothing to enter
  entries.push_back(g.entry_point());
  std::uint64_t h = splitmix64(seed ^ (0x9e37u + query_index * 0x100000001b3ULL));
  while (entries.size() < count && entries.size() < n) {
    h = splitmix64(h);
    const auto candidate = static_cast<NodeId>(h % n);
    if (std::find(entries.begin(), entries.end(), candidate) ==
        entries.end()) {
      entries.push_back(candidate);
    }
  }
  return entries;
}

MultiCtaResult multi_cta_search(const Dataset& ds, const Graph& g,
                                const sim::CostModel& cm,
                                const SearchConfig& cfg, std::size_t num_ctas,
                                std::span<const float> query,
                                std::size_t query_index, std::uint64_t seed) {
  MultiCtaResult res;
  const auto entries = select_entry_points(g, num_ctas, seed, query_index);
  if (entries.empty()) {
    res.run_len = normalize_config(cfg, g.degree()).candidate_len;
    return res;  // empty graph: empty TopK, zero cost
  }

  VisitedTable visited(ds.num_base());
  std::vector<IntraCtaSearch> ctas;
  ctas.reserve(entries.size());
  for (std::size_t t = 0; t < entries.size(); ++t) {
    ctas.emplace_back(ds, g, cm, cfg);
    ctas.back().reset(query, entries[t], &visited);
  }

  // Round-robin stepping approximates the virtual-time interleaving the DES
  // engines produce: all CTAs advance one maintenance round per sweep.
  bool any_active = true;
  while (any_active) {
    any_active = false;
    for (auto& cta : ctas) {
      StepCost cost;
      if (cta.step(cost)) any_active = true;
    }
  }

  const std::size_t run_len = ctas.front().config().candidate_len;
  res.run_len = run_len;
  std::vector<KV> concat;
  concat.reserve(ctas.size() * run_len);
  for (auto& cta : ctas) {
    const auto span = cta.candidates();
    concat.insert(concat.end(), span.begin(), span.end());
    const auto& st = cta.stats();
    res.per_cta_ns.push_back(st.cost.total_ns());
    res.per_cta_total.rounds += st.rounds;
    res.per_cta_total.expanded_points += st.expanded_points;
    res.per_cta_total.scored_points += st.scored_points;
    res.per_cta_total.cost += st.cost;
    res.critical_path_ns =
        std::max(res.critical_path_ns, st.cost.total_ns());
    res.rounds_max = std::max(res.rounds_max, st.rounds);
  }
  res.topk =
      merge_sorted_runs(concat, ctas.size(), run_len, cfg.topk, cfg.accept);
  return res;
}

}  // namespace algas::search
