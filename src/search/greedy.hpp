// Reference sequential greedy search (Algorithm 1): a single-CTA,
// beam-width-1 run of the intra-CTA engine, with tracing enabled. This is
// the instrumented path behind the motivation figures (step distributions,
// Fig 1/2; compute-vs-sort split, Fig 3; distance convergence, Fig 7).
#pragma once

#include <span>
#include <vector>

#include "search/intra_cta.hpp"

namespace algas::search {

struct GreedyResult {
  std::vector<KV> topk;          ///< ascending
  SearchStats stats;             ///< includes the Fig 7 distance trace
};

GreedyResult greedy_search(const Dataset& ds, const Graph& g,
                           const sim::CostModel& cm, const SearchConfig& cfg,
                           std::span<const float> query);

}  // namespace algas::search
