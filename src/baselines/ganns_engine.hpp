// GANNS-style baseline [Yu et al., ICDE'22], modified as in the paper's
// §VI to dispatch small batches: batch-synchronous, one CTA per query
// (GANNS has no multi-CTA mode), greedy maintenance every iteration, no
// TopK merge. Thin configuration of StaticBatchEngine.
#pragma once

#include "baselines/static_engine.hpp"

namespace algas::baselines {

struct GannsConfig {
  search::SearchConfig search;
  std::size_t batch_size = 16;
  sim::DeviceProps device = sim::DeviceProps::rtx_a6000();
  sim::CostModel cost;
  std::uint64_t seed = 1;
  /// Optional SimTrace sink (not owned); see StaticConfig::tracer.
  sim::Tracer* tracer = nullptr;
};

class GannsEngine {
 public:
  GannsEngine(const Dataset& ds, const Graph& g, const GannsConfig& cfg);

  core::EngineReport run_closed_loop(std::size_t num_queries) {
    return inner_.run_closed_loop(num_queries);
  }
  core::EngineReport run(const std::vector<core::PendingQuery>& arrivals) {
    return inner_.run(arrivals);
  }

 private:
  static StaticConfig to_static(const GannsConfig& cfg);
  StaticBatchEngine inner_;
};

}  // namespace algas::baselines
