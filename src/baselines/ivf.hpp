// IVF-Flat baseline (FAISS-GPU style [Johnson et al.]): k-means coarse
// quantizer + inverted lists; search scans the nprobe closest lists
// exhaustively. The non-graph comparator of Figs 10/11.
#pragma once

#include <cstdint>
#include <vector>

#include "baselines/batch_runner.hpp"
#include "core/engine.hpp"
#include "dataset/dataset.hpp"
#include "search/kv.hpp"

namespace algas::baselines {

struct IvfBuildConfig {
  /// Number of inverted lists; 0 = sqrt(n) heuristic.
  std::size_t nlist = 0;
  std::size_t kmeans_iters = 8;
  /// Lloyd iterations train on at most this many points (subsampled);
  /// the final assignment always covers the full dataset.
  std::size_t train_limit = 20000;
  std::uint64_t seed = 11;
};

class IvfIndex {
 public:
  static IvfIndex build(const Dataset& ds, const IvfBuildConfig& cfg);

  std::size_t nlist() const { return lists_.size(); }
  std::size_t list_size(std::size_t i) const { return lists_[i].size(); }

  struct SearchOut {
    std::vector<KV> topk;        ///< ascending
    std::size_t scanned = 0;     ///< points exhaustively scored
  };
  SearchOut search(const Dataset& ds, std::span<const float> query,
                   std::size_t nprobe, std::size_t k) const;

  /// Imbalance factor: max list size / mean list size (k-means quality).
  double imbalance() const;

  /// Squared-L2 distance from `query` to every centroid — the coarse scan
  /// search() runs, exposed so the sharded engine can reuse a per-shard
  /// quantizer as a shard-affinity router (min centroid distance decides
  /// which shards a fanout-limited query probes).
  std::vector<float> centroid_distances(std::span<const float> query) const;

 private:
  std::size_t dim_ = 0;
  std::vector<float> centroids_;           // nlist x dim
  std::vector<std::vector<NodeId>> lists_;
};

struct IvfConfig {
  std::size_t topk = 16;
  std::size_t nprobe = 8;      ///< recall knob
  std::size_t batch_size = 16;
  IvfBuildConfig build;
  sim::DeviceProps device = sim::DeviceProps::rtx_a6000();
  sim::CostModel cost;
};

/// Batch-synchronous IVF engine: one CTA per query, wave-scheduled, batch
/// barrier semantics like the other static baselines.
class IvfEngine {
 public:
  IvfEngine(const Dataset& ds, IvfConfig cfg);
  /// Reuse a prebuilt index (e.g. when sweeping nprobe).
  IvfEngine(const Dataset& ds, IvfConfig cfg, IvfIndex index);

  const IvfIndex& index() const { return index_; }
  core::EngineReport run_closed_loop(std::size_t num_queries);

 private:
  const Dataset& ds_;
  IvfConfig cfg_;
  IvfIndex index_;
  std::size_t capacity_ = 1;
};

}  // namespace algas::baselines
