#include "baselines/ivf.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "distance/kernels.hpp"
#include "metrics/recall.hpp"

namespace algas::baselines {

namespace {

/// One batched L2 scan of `point` against all centroids; returns argmin,
/// first index winning ties — the order the scalar scan resolved them.
std::size_t nearest_centroid(std::span<const float> point,
                             const std::vector<float>& centroids,
                             std::size_t dim, std::size_t nlist,
                             std::span<float> scratch) {
  distance_batch_range(Metric::kL2, point, centroids.data(), dim, 0, nlist,
                       scratch);
  std::size_t arg = 0;
  float best = kInfDist;
  for (std::size_t c = 0; c < nlist; ++c) {
    if (scratch[c] < best) {
      best = scratch[c];
      arg = c;
    }
  }
  return arg;
}

/// Assign every base vector to its closest centroid (L2; cosine datasets
/// are normalized so L2 ranking matches).
std::vector<std::size_t> assign_all(const Dataset& ds,
                                    const std::vector<float>& centroids,
                                    std::size_t nlist) {
  const std::size_t n = ds.num_base();
  std::vector<std::size_t> assign(n, 0);
  global_pool().parallel_for(n, [&](std::size_t begin, std::size_t end) {
    std::vector<float> dists(nlist);
    for (std::size_t i = begin; i < end; ++i) {
      assign[i] = nearest_centroid(ds.base_vector(i), centroids, ds.dim(),
                                   nlist, dists);
    }
  });
  return assign;
}

}  // namespace

IvfIndex IvfIndex::build(const Dataset& ds, const IvfBuildConfig& cfg) {
  const std::size_t n = ds.num_base();
  const std::size_t dim = ds.dim();
  if (n == 0) throw std::invalid_argument("empty dataset");
  std::size_t nlist = cfg.nlist;
  if (nlist == 0) {
    nlist = static_cast<std::size_t>(std::sqrt(static_cast<double>(n)));
  }
  nlist = std::clamp<std::size_t>(nlist, 1, n);

  IvfIndex index;
  index.dim_ = dim;

  // Init: distinct random base vectors as seeds.
  Rng rng(cfg.seed);
  std::vector<std::size_t> seeds;
  while (seeds.size() < nlist) {
    const std::size_t cand = rng.next_below(n);
    if (std::find(seeds.begin(), seeds.end(), cand) == seeds.end()) {
      seeds.push_back(cand);
    }
  }
  index.centroids_.resize(nlist * dim);
  for (std::size_t c = 0; c < nlist; ++c) {
    const auto v = ds.base_vector(seeds[c]);
    std::copy(v.begin(), v.end(), index.centroids_.begin() + c * dim);
  }

  // Lloyd iterations on a subsample (FAISS-style training set cap).
  const std::size_t train_n = std::min(n, std::max(cfg.train_limit, nlist));
  const std::size_t stride = std::max<std::size_t>(1, n / train_n);
  std::vector<NodeId> train_ids;
  train_ids.reserve(train_n);
  for (std::size_t i = 0; i < n && train_ids.size() < train_n; i += stride) {
    train_ids.push_back(static_cast<NodeId>(i));
  }
  for (std::size_t it = 0; it < cfg.kmeans_iters; ++it) {
    std::vector<std::size_t> assign(train_ids.size(), 0);
    global_pool().parallel_for(
        train_ids.size(), [&](std::size_t begin, std::size_t end) {
          std::vector<float> dists(nlist);
          for (std::size_t i = begin; i < end; ++i) {
            assign[i] = nearest_centroid(ds.base_vector(train_ids[i]),
                                         index.centroids_, dim, nlist, dists);
          }
        });
    std::vector<double> sums(nlist * dim, 0.0);
    std::vector<std::size_t> counts(nlist, 0);
    for (std::size_t i = 0; i < train_ids.size(); ++i) {
      const auto v = ds.base_vector(train_ids[i]);
      const std::size_t c = assign[i];
      ++counts[c];
      for (std::size_t d = 0; d < dim; ++d) sums[c * dim + d] += v[d];
    }
    for (std::size_t c = 0; c < nlist; ++c) {
      if (counts[c] == 0) {
        // Re-seed dead centroids from a random point.
        const auto v = ds.base_vector(rng.next_below(n));
        std::copy(v.begin(), v.end(), index.centroids_.begin() + c * dim);
        continue;
      }
      for (std::size_t d = 0; d < dim; ++d) {
        index.centroids_[c * dim + d] = static_cast<float>(
            sums[c * dim + d] / static_cast<double>(counts[c]));
      }
    }
  }

  const auto assign = assign_all(ds, index.centroids_, nlist);
  index.lists_.assign(nlist, {});
  for (std::size_t i = 0; i < n; ++i) {
    index.lists_[assign[i]].push_back(static_cast<NodeId>(i));
  }
  return index;
}

IvfIndex::SearchOut IvfIndex::search(const Dataset& ds,
                                     std::span<const float> query,
                                     std::size_t nprobe,
                                     std::size_t k) const {
  const std::size_t nl = nlist();
  nprobe = std::clamp<std::size_t>(nprobe, 1, nl);

  // Coarse: closest nprobe centroids, scored in one batched L2 scan; the
  // heap consumes the scores in centroid order, as the scalar loop did.
  using CD = std::pair<float, std::size_t>;
  std::priority_queue<CD> coarse;  // max-heap, keep nprobe smallest
  std::vector<float> coarse_dists(nl);
  distance_batch_range(Metric::kL2, query, centroids_.data(), dim_, 0, nl,
                       coarse_dists);
  for (std::size_t c = 0; c < nl; ++c) {
    const float d = coarse_dists[c];
    if (coarse.size() < nprobe) {
      coarse.emplace(d, c);
    } else if (d < coarse.top().first) {
      coarse.pop();
      coarse.emplace(d, c);
    }
  }

  SearchOut out;
  std::priority_queue<KV> best;  // max-heap via operator<; keep k smallest
  std::vector<float> list_dists;
  while (!coarse.empty()) {
    const std::size_t c = coarse.top().second;
    coarse.pop();
    const auto& ids = lists_[c];
    list_dists.resize(ids.size());
    ds.distance_batch(query, ids, list_dists);
    for (std::size_t i = 0; i < ids.size(); ++i) {
      ++out.scanned;
      const KV kv = KV::make(list_dists[i], ids[i]);
      if (best.size() < k) {
        best.push(kv);
      } else if (kv < best.top()) {
        best.pop();
        best.push(kv);
      }
    }
  }
  out.topk.resize(best.size());
  for (std::size_t i = best.size(); i-- > 0;) {
    out.topk[i] = best.top();
    best.pop();
  }
  return out;
}

std::vector<float> IvfIndex::centroid_distances(
    std::span<const float> query) const {
  std::vector<float> dists(nlist());
  distance_batch_range(Metric::kL2, query, centroids_.data(), dim_, 0,
                       nlist(), dists);
  return dists;
}

double IvfIndex::imbalance() const {
  if (lists_.empty()) return 0.0;
  std::size_t total = 0, max_len = 0;
  for (const auto& l : lists_) {
    total += l.size();
    max_len = std::max(max_len, l.size());
  }
  const double mean = static_cast<double>(total) /
                      static_cast<double>(lists_.size());
  return mean > 0.0 ? static_cast<double>(max_len) / mean : 0.0;
}

IvfEngine::IvfEngine(const Dataset& ds, IvfConfig cfg)
    : IvfEngine(ds, cfg, IvfIndex::build(ds, cfg.build)) {}

IvfEngine::IvfEngine(const Dataset& ds, IvfConfig cfg, IvfIndex index)
    : ds_(ds), cfg_(std::move(cfg)), index_(std::move(index)) {
  sim::SharedMemoryLayout layout;
  layout.candidate_entries = next_pow2(cfg_.topk);
  layout.expand_entries = 0;
  layout.dim = ds.dim();
  layout.elem_bytes = ds.elem_bytes();
  capacity_ = device_capacity(cfg_.device, layout, 1024);
  if (capacity_ == 0) capacity_ = 1;
}

core::EngineReport IvfEngine::run_closed_loop(std::size_t num_queries) {
  num_queries = std::min(num_queries, ds_.num_queries());
  const sim::CostModel& cm = cfg_.cost;
  sim::Channel channel(cm);
  metrics::Collector collector;

  double clock = 0.0;
  std::size_t q = 0;
  while (q < num_queries) {
    const std::size_t batch_n = std::min(cfg_.batch_size, num_queries - q);
    double cursor = clock + cm.kernel_launch_ns;
    cursor += channel.transfer(cursor, batch_n * ds_.dim() * ds_.elem_bytes(),
                               sim::Xfer::kBulk);
    const double kernel_start = cursor;

    std::vector<CtaTask> tasks;
    std::vector<IvfIndex::SearchOut> outs;
    outs.reserve(batch_n);
    for (std::size_t b = 0; b < batch_n; ++b) {
      auto out = index_.search(ds_, ds_.query(q + b), cfg_.nprobe, cfg_.topk);
      // One CTA per query: coarse scan (f32 centroids) + exhaustive list
      // scan (stored rows, codec width) + k-select.
      const double dur =
          cm.distance_round_ns(ds_.dim(), index_.nlist()) +
          cm.distance_round_ns(ds_.dim(), out.scanned, 32, ds_.elem_bytes()) +
          static_cast<double>(ceil_div(out.scanned, 32)) *
              cm.select_per_wavefront_ns;
      tasks.push_back({b, dur});
      outs.push_back(std::move(out));
    }
    const BatchTiming timing = wave_schedule(
        tasks, batch_n, capacity_, std::vector<double>(batch_n, 0.0));
    collector.add_batch_idle(timing.idle_ns, timing.active_ns);
    const double gpu_end = kernel_start + timing.gpu_end_ns;
    const double done =
        gpu_end +
        channel.transfer(gpu_end,
                         batch_n * cfg_.topk * sim::kListEntryBytes,
                         sim::Xfer::kBulk) +
        cm.host_dispatch_ns;

    for (std::size_t b = 0; b < batch_n; ++b) {
      metrics::QueryRecord rec;
      rec.query_index = q + b;
      rec.arrival_ns = 0.0;
      rec.dispatch_ns = clock;
      rec.done_ns = done;
      rec.steps = outs[b].scanned;
      rec.results = std::move(outs[b].topk);
      collector.add(std::move(rec));
    }
    clock = done;
    q += batch_n;
  }

  core::EngineReport rep;
  rep.summary = collector.summarize();
  rep.storage = ds_.storage();
  const auto total = channel.total();
  rep.pcie_transactions = total.transactions;
  rep.pcie_bytes = total.bytes;
  rep.plan.ok = true;
  rep.plan.n_parallel = 1;
  rep.plan.reason = "IVF-Flat baseline";
  if (ds_.has_ground_truth()) {
    double total_recall = 0.0;
    for (const auto& r : collector.records()) {
      total_recall +=
          metrics::recall_at_k(ds_, r.query_index, r.results, cfg_.topk);
    }
    rep.recall = collector.size() == 0
                     ? 0.0
                     : total_recall / static_cast<double>(collector.size());
  }
  rep.collector = std::move(collector);
  return rep;
}

}  // namespace algas::baselines
