#include "baselines/ganns_engine.hpp"

namespace algas::baselines {

StaticConfig GannsEngine::to_static(const GannsConfig& cfg) {
  StaticConfig s;
  s.search = cfg.search;
  s.search.beam_width = 1;  // strictly greedy maintenance, no beam extend
  s.search.full_sort_maintenance = true;  // heavier per-round upkeep
  s.batch_size = cfg.batch_size;
  s.n_parallel = 1;  // no multi-CTA implementation
  s.merge = MergeMode::kNone;
  s.device = cfg.device;
  s.cost = cfg.cost;
  s.seed = cfg.seed;
  s.tracer = cfg.tracer;
  s.trace_label = "ganns";
  return s;
}

GannsEngine::GannsEngine(const Dataset& ds, const Graph& g,
                         const GannsConfig& cfg)
    : inner_(ds, g, to_static(cfg)) {}

}  // namespace algas::baselines
