// CAGRA-style batch-synchronous engine [Ootomo et al., ICDE'24].
//
// Per batch: one kernel launch, queries transferred in bulk, every query
// searched by `n_parallel` CTAs (multi-CTA with a shared visited table),
// TopK merged *on the GPU* by divide-and-conquer, results transferred in
// bulk, and — crucially — every query returns only when the whole batch
// finishes (static batching, Fig 4 top). With n_parallel=1 and merge
// disabled this engine is also the GANNS-style single-CTA baseline (see
// ganns_engine.hpp).
#pragma once

#include <cstdint>
#include <string>

#include "baselines/batch_runner.hpp"
#include "core/engine.hpp"
#include "dataset/dataset.hpp"
#include "graph/graph.hpp"
#include "search/intra_cta.hpp"

namespace algas::baselines {

enum class MergeMode : std::uint8_t {
  kGpuDivideConquer = 0,  ///< CAGRA: cross-CTA merge in global memory
  kHost,                  ///< ablation: ALGAS-style host merge
  kNone,                  ///< single-CTA engines need no merge
};

struct StaticConfig {
  search::SearchConfig search;
  std::size_t batch_size = 16;
  /// CTAs per query; 0 = auto (fill capacity across the batch, max 16).
  std::size_t n_parallel = 0;
  MergeMode merge = MergeMode::kGpuDivideConquer;
  sim::DeviceProps device = sim::DeviceProps::rtx_a6000();
  sim::CostModel cost;
  std::uint64_t seed = 1;
  /// Optional SimTrace sink (not owned). Null falls back to the ALGAS_TRACE
  /// default tracer; null there too means untraced. Pure observer — tracing
  /// never changes timing or the report.
  sim::Tracer* tracer = nullptr;
  /// Trace process label (GannsEngine substitutes its own).
  std::string trace_label = "static-batch";
};

class StaticBatchEngine {
 public:
  StaticBatchEngine(const Dataset& ds, const Graph& g, StaticConfig cfg);

  std::size_t n_parallel() const { return n_parallel_; }
  std::size_t capacity() const { return capacity_; }

  core::EngineReport run_closed_loop(std::size_t num_queries);
  core::EngineReport run(const std::vector<core::PendingQuery>& arrivals);

 private:
  const Dataset& ds_;
  const Graph& g_;
  StaticConfig cfg_;
  std::size_t n_parallel_ = 1;
  std::size_t capacity_ = 1;
};

}  // namespace algas::baselines
