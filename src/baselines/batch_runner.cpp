#include "baselines/batch_runner.hpp"

#include <algorithm>
#include <cassert>
#include <queue>

namespace algas::baselines {

BatchTiming wave_schedule(const std::vector<CtaTask>& tasks,
                          std::size_t num_queries, std::size_t capacity,
                          const std::vector<double>& merge_ns_per_query) {
  assert(capacity >= 1);
  assert(merge_ns_per_query.size() == num_queries);
  BatchTiming timing;
  timing.query_search_end.assign(num_queries, 0.0);
  timing.query_final.assign(num_queries, 0.0);

  // Earliest-free server heap (min-heap over free time).
  std::priority_queue<double, std::vector<double>, std::greater<double>>
      servers;
  for (std::size_t i = 0; i < capacity; ++i) servers.push(0.0);

  std::vector<double> completions(tasks.size(), 0.0);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const double free_at = servers.top();
    servers.pop();
    const double end = free_at + tasks[i].duration_ns;
    completions[i] = end;
    servers.push(end);
    timing.query_search_end[tasks[i].query] =
        std::max(timing.query_search_end[tasks[i].query], end);
    timing.active_ns += tasks[i].duration_ns;
  }

  for (std::size_t q = 0; q < num_queries; ++q) {
    timing.query_final[q] = timing.query_search_end[q] + merge_ns_per_query[q];
    timing.active_ns += merge_ns_per_query[q];
    timing.gpu_end_ns = std::max(timing.gpu_end_ns, timing.query_final[q]);
  }

  // Barrier idle: every CTA waits from its completion to kernel end.
  for (double end : completions) {
    timing.idle_ns += timing.gpu_end_ns - end;
  }
  return timing;
}

std::size_t device_capacity(const sim::DeviceProps& dev,
                            const sim::SharedMemoryLayout& layout,
                            std::size_t reserved_per_block) {
  std::size_t best = 0;
  for (std::size_t bpsm = 1; bpsm <= dev.max_blocks_per_sm; ++bpsm) {
    const auto occ = sim::check_occupancy(dev, layout, bpsm,
                                          reserved_per_block);
    if (occ.fits) best = bpsm;
  }
  // Residency alone is not speed: beyond one warp per scheduler, resident
  // warps timeslice. Wave-scheduling at the full-speed capacity models the
  // same aggregate behaviour.
  return std::min(best * dev.num_sms, dev.full_speed_ctas());
}

}  // namespace algas::baselines
