// Shared machinery for the batch-synchronous baselines (CAGRA-style,
// GANNS-style, IVF): wave-schedule a batch's CTA workloads onto the
// device's resident-block capacity, then account the batch barrier.
//
// Unlike ALGAS's persistent kernel, these engines launch one kernel per
// batch; every query's completion is gated on the batch's slowest CTA —
// the query bubble of §III-A. The idle/active split this produces is what
// bench_fig2 reports as the waste rate.
#pragma once

#include <cstddef>
#include <vector>

#include "common/ownership.hpp"
#include "simgpu/cost_model.hpp"
#include "simgpu/device_props.hpp"
#include "simgpu/shared_memory.hpp"

namespace algas::baselines {

/// Tasks and timings are values: built up locally by the scheduler, then
/// read-only once returned to the engine (the batch already happened).
struct CtaTask {
  std::size_t query ALGAS_IMMUTABLE_AFTER_PUBLISH = 0;     ///< batch index
  double duration_ns ALGAS_IMMUTABLE_AFTER_PUBLISH = 0.0;  ///< modeled time
};

struct BatchTiming {
  /// Per-batch-query completion of the query's own CTAs (before merge),
  /// relative to batch start.
  std::vector<double> query_search_end ALGAS_IMMUTABLE_AFTER_PUBLISH;
  /// Per-query completion including its TopK merge.
  std::vector<double> query_final ALGAS_IMMUTABLE_AFTER_PUBLISH;
  double gpu_end_ns ALGAS_IMMUTABLE_AFTER_PUBLISH = 0.0;   ///< kernel end
  double idle_ns ALGAS_IMMUTABLE_AFTER_PUBLISH = 0.0;      ///< barrier wait
  double active_ns ALGAS_IMMUTABLE_AFTER_PUBLISH = 0.0;    ///< search/merge
};

/// Greedy list scheduling of `tasks` (in order) onto `capacity` resident
/// block slots; per-query merge costs are appended to the query's own
/// completion (the merge reuses the query's freed CTAs).
BatchTiming wave_schedule(const std::vector<CtaTask>& tasks,
                          std::size_t num_queries, std::size_t capacity,
                          const std::vector<double>& merge_ns_per_query);

/// Resident-block capacity for a per-block shared memory need: the smem-
/// and block-limit-constrained occupancy the device sustains.
std::size_t device_capacity(const sim::DeviceProps& dev,
                            const sim::SharedMemoryLayout& layout,
                            std::size_t reserved_per_block);

}  // namespace algas::baselines
