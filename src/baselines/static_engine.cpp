#include "baselines/static_engine.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/tuner.hpp"
#include "metrics/recall.hpp"
#include "search/multi_cta.hpp"
#include "simgpu/channel.hpp"
#include "simgpu/trace.hpp"

namespace algas::baselines {

StaticBatchEngine::StaticBatchEngine(const Dataset& ds, const Graph& g,
                                     StaticConfig cfg)
    : ds_(ds), g_(g), cfg_(std::move(cfg)) {
  cfg_.search = search::normalize_config(cfg_.search, g.degree());
  if (cfg_.batch_size == 0) {
    throw std::invalid_argument("batch_size must be >= 1");
  }

  sim::SharedMemoryLayout layout;
  layout.candidate_entries = cfg_.search.candidate_len;
  layout.expand_entries =
      next_pow2(std::max<std::size_t>(1, cfg_.search.beam_width) *
                g.degree());
  layout.dim = ds.dim();
  layout.elem_bytes = ds.elem_bytes();
  const std::size_t reserved = core::auto_reserved_bytes(ds.dim());
  capacity_ = device_capacity(cfg_.device, layout, reserved);
  if (capacity_ == 0) {
    throw std::invalid_argument(
        "search configuration exceeds device shared memory");
  }

  if (cfg_.n_parallel != 0) {
    n_parallel_ = cfg_.n_parallel;
  } else {
    // Fill the device across the batch, capped at 16 CTAs per query
    // (CAGRA's multi-CTA practical ceiling).
    n_parallel_ = std::clamp<std::size_t>(capacity_ / cfg_.batch_size, 1, 16);
  }
  if (cfg_.merge == MergeMode::kNone && n_parallel_ > 1) {
    throw std::invalid_argument("multi-CTA search requires a merge mode");
  }
}

core::EngineReport StaticBatchEngine::run_closed_loop(
    std::size_t num_queries) {
  num_queries = std::min(num_queries, ds_.num_queries());
  std::vector<core::PendingQuery> arrivals;
  arrivals.reserve(num_queries);
  for (std::size_t i = 0; i < num_queries; ++i) arrivals.push_back({i, 0.0});
  return run(arrivals);
}

core::EngineReport StaticBatchEngine::run(
    const std::vector<core::PendingQuery>& arrivals) {
  const sim::CostModel& cm = cfg_.cost;
  sim::Channel channel(cm);
  metrics::Collector collector;

  // SimTrace wiring mirrors the ALGAS engine: explicit tracer, else the
  // ALGAS_TRACE default, else untraced. Lane names match ALGAS ("slot <b>")
  // so the dynamic and static timelines compare side by side in Perfetto.
  sim::Tracer* tracer = cfg_.tracer ? cfg_.tracer : sim::default_tracer();
  std::uint64_t trace_events_before = 0;
  int tpid = 0;
  int batch_tid = 0;
  std::vector<int> slot_tid(cfg_.batch_size, 0);
  if (tracer) {
    trace_events_before = tracer->events_recorded();
    tpid = tracer->begin_process(cfg_.trace_label);
    const int link_tid = tracer->lane(tpid, "pcie link");
    batch_tid = tracer->lane(tpid, "batch");
    for (std::size_t b = 0; b < cfg_.batch_size; ++b) {
      slot_tid[b] = tracer->lane(tpid, "slot " + std::to_string(b));
    }
    channel.set_tracer(tracer, tpid, link_tid);
  }

  double clock = 0.0;  // device free time (kernels serialize)
  std::size_t cursor_q = 0;
  while (cursor_q < arrivals.size()) {
    const std::size_t batch_n =
        std::min(cfg_.batch_size, arrivals.size() - cursor_q);
    const auto batch =
        std::span<const core::PendingQuery>(arrivals).subspan(cursor_q,
                                                              batch_n);
    cursor_q += batch_n;

    // Static batching waits for the whole batch to accumulate.
    double batch_ready = clock;
    for (const auto& q : batch) {
      batch_ready = std::max(batch_ready, q.arrival_ns);
    }

    double cursor = batch_ready + cm.kernel_launch_ns;
    cursor += channel.transfer(cursor, batch_n * ds_.dim() * ds_.elem_bytes(),
                               sim::Xfer::kBulk);
    const double kernel_start = cursor;

    // Functional searches + per-CTA durations for the wave schedule.
    std::vector<CtaTask> tasks;
    tasks.reserve(batch_n * n_parallel_);
    std::vector<double> merge_ns(batch_n, 0.0);
    std::vector<search::MultiCtaResult> results;
    results.reserve(batch_n);
    for (std::size_t b = 0; b < batch_n; ++b) {
      auto res = search::multi_cta_search(
          ds_, g_, cm, cfg_.search, n_parallel_, ds_.query(batch[b].query_index),
          batch[b].query_index, cfg_.seed);
      for (std::size_t t = 0; t < res.per_cta_ns.size(); ++t) {
        tasks.push_back({b, res.per_cta_ns[t]});
      }
      switch (cfg_.merge) {
        case MergeMode::kGpuDivideConquer:
          merge_ns[b] = cm.gpu_topk_merge_ns(n_parallel_, res.run_len);
          break;
        case MergeMode::kHost:
          // Charged on the host below, after the result transfer.
          break;
        case MergeMode::kNone:
          break;
      }
      results.push_back(std::move(res));
    }

    const BatchTiming timing =
        wave_schedule(tasks, batch_n, capacity_, merge_ns);
    collector.add_batch_idle(timing.idle_ns, timing.active_ns);
    const double gpu_end = kernel_start + timing.gpu_end_ns;

    // Bulk result transfer: CAGRA ships merged TopK; host-merge mode ships
    // every CTA's candidate list.
    const std::size_t result_bytes =
        cfg_.merge == MergeMode::kHost
            ? batch_n * n_parallel_ * results.front().run_len *
                  sim::kListEntryBytes
            : batch_n * cfg_.search.topk * sim::kListEntryBytes;
    double done = gpu_end + channel.transfer(gpu_end, result_bytes,
                                             sim::Xfer::kBulk);
    if (cfg_.merge == MergeMode::kHost) {
      done += static_cast<double>(batch_n) *
              cm.host_topk_merge_ns(n_parallel_, cfg_.search.topk);
    }
    done += cm.host_dispatch_ns;  // batch completion bookkeeping

    if (tracer) {
      const std::size_t batch_index = (cursor_q - batch_n) / cfg_.batch_size;
      sim::TraceArgs bargs;
      bargs.add("queries", static_cast<std::uint64_t>(batch_n));
      bargs.add("idle_ns", timing.idle_ns);
      bargs.add("active_ns", timing.active_ns);
      tracer->complete(tpid, batch_tid, "batch " + std::to_string(batch_index),
                       batch_ready, done - batch_ready, std::move(bargs),
                       "batch");
      for (std::size_t b = 0; b < batch_n; ++b) {
        const double own_end = kernel_start + timing.query_final[b];
        sim::TraceArgs qargs;
        qargs.add("query", static_cast<std::uint64_t>(batch[b].query_index));
        tracer->complete(tpid, slot_tid[b],
                         "q" + std::to_string(batch[b].query_index),
                         kernel_start, own_end - kernel_start,
                         std::move(qargs), "cta");
        // The §III-A query bubble: finished, but barriered on the batch.
        if (done > own_end) {
          sim::TraceArgs wargs;
          wargs.add("wait_ns", done - own_end);
          tracer->complete(tpid, slot_tid[b], "bubble", own_end,
                           done - own_end, std::move(wargs), "bubble");
        }
      }
      tracer->counter(tpid, "delivered", done,
                      static_cast<double>(cursor_q));
    }

    for (std::size_t b = 0; b < batch_n; ++b) {
      metrics::QueryRecord rec;
      rec.query_index = batch[b].query_index;
      rec.slot = (cursor_q - batch_n) / cfg_.batch_size;  // batch index
      rec.arrival_ns = batch[b].arrival_ns;
      rec.dispatch_ns = batch_ready;
      rec.done_ns = done;  // batch barrier: everyone waits for the slowest
      rec.steps = results[b].per_cta_total.expanded_points;
      rec.rounds = results[b].per_cta_total.rounds;
      rec.gpu_cost = results[b].per_cta_total.cost;
      rec.results = std::move(results[b].topk);
      collector.add(std::move(rec));
    }
    clock = done;
  }

  core::EngineReport rep;
  rep.summary = collector.summarize();
  rep.storage = ds_.storage();
  rep.trace_events =
      tracer ? tracer->events_recorded() - trace_events_before : 0;
  if (tracer && tracer == sim::default_tracer()) {
    tracer->save(sim::trace_default_path());
  }
  const auto total = channel.total();
  rep.pcie_transactions = total.transactions;
  rep.pcie_bytes = total.bytes;
  rep.plan.ok = true;
  rep.plan.n_parallel = n_parallel_;
  rep.plan.total_ctas = n_parallel_ * cfg_.batch_size;
  rep.plan.threads_per_block = cfg_.device.warp_size;
  rep.plan.reason = "static baseline (capacity " + std::to_string(capacity_) +
                    " blocks)";
  if (ds_.has_ground_truth()) {
    double total_recall = 0.0;
    for (const auto& r : collector.records()) {
      total_recall += metrics::recall_at_k(ds_, r.query_index, r.results,
                                           cfg_.search.topk);
    }
    rep.recall = collector.size() == 0
                     ? 0.0
                     : total_recall / static_cast<double>(collector.size());
  }
  rep.collector = std::move(collector);
  return rep;
}

}  // namespace algas::baselines
