#include "common/env.hpp"

#include <algorithm>
#include <cstdlib>

namespace algas {

double env_double(const char* name, double fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const double v = std::strtod(raw, &end);
  if (end == raw) return fallback;
  return v;
}

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(raw, &end, 10);
  if (end == raw) return fallback;
  return static_cast<std::size_t>(v);
}

std::string env_string(const char* name, const std::string& fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  return std::string(raw);
}

RuntimeOptions RuntimeOptions::from_env() {
  RuntimeOptions opts;
  opts.scale = std::clamp(env_double("ALGAS_SCALE", 1.0), 0.01, 100.0);
  opts.queries = env_size("ALGAS_QUERIES", 0);
  opts.datasets = env_string("ALGAS_DATASETS", "sift,gist,glove,nytimes");
  opts.cache_dir = env_string("ALGAS_CACHE_DIR", "./algas_cache");
  opts.storage = env_string("ALGAS_STORAGE", "f32");
  opts.trace_path = env_string("ALGAS_TRACE", "");
  const std::string check = env_string("ALGAS_SIMCHECK", "");
  if (check == "1" || check == "on" || check == "ON") {
    opts.simcheck = 1;
  } else if (check == "0" || check == "off" || check == "OFF") {
    opts.simcheck = 0;
  }
  opts.build_threads = env_size("ALGAS_BUILD_THREADS", 0);
  opts.walltime_out = env_string("ALGAS_WALLTIME_OUT", "BENCH_walltime.json");
  opts.recall_out = env_string("ALGAS_RECALL_OUT", "BENCH_recall.json");
  opts.churn_out = env_string("ALGAS_CHURN_OUT", "BENCH_churn.json");
  opts.shard_out = env_string("ALGAS_SHARD_OUT", "BENCH_shard.json");
  opts.shard_hosts = std::max<std::size_t>(1, env_size("ALGAS_SHARD_HOSTS", 1));
  opts.serving_out = env_string("ALGAS_SERVING_OUT", "BENCH_serving.json");
  opts.serving_hosts =
      std::max<std::size_t>(1, env_size("ALGAS_SERVING_HOSTS", 1));
  opts.filtered_out =
      env_string("ALGAS_FILTERED_OUT", "BENCH_filtered.json");
  opts.filtered_hosts =
      std::max<std::size_t>(1, env_size("ALGAS_FILTERED_HOSTS", 1));
  return opts;
}

double dataset_scale() { return RuntimeOptions::from_env().scale; }

std::string cache_dir() { return RuntimeOptions::from_env().cache_dir; }

std::size_t build_threads() {
  return RuntimeOptions::from_env().build_threads;
}

}  // namespace algas
