#include "common/env.hpp"

#include <algorithm>
#include <cstdlib>

namespace algas {

double env_double(const char* name, double fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const double v = std::strtod(raw, &end);
  if (end == raw) return fallback;
  return v;
}

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(raw, &end, 10);
  if (end == raw) return fallback;
  return static_cast<std::size_t>(v);
}

std::string env_string(const char* name, const std::string& fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  return std::string(raw);
}

double dataset_scale() {
  return std::clamp(env_double("ALGAS_SCALE", 1.0), 0.01, 100.0);
}

std::string cache_dir() {
  return env_string("ALGAS_CACHE_DIR", "./algas_cache");
}

}  // namespace algas
