// Deterministic, fast PRNG (xoshiro256**) used everywhere randomness is
// needed so that runs are reproducible bit-for-bit across machines.
#pragma once

#include <cmath>
#include <cstdint>

namespace algas {

/// SplitMix64 — used to seed xoshiro and for cheap stateless hashing
/// (e.g. per-CTA entry-point selection in multi-CTA search).
constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// xoshiro256** 1.0 by Blackman & Vigna (public domain algorithm).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eedULL) {
    std::uint64_t x = seed;
    for (auto& word : s_) {
      x = splitmix64(x);
      word = x;
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound).
  std::uint64_t next_below(std::uint64_t bound) {
    // Lemire's nearly-divisionless method is overkill here; modulo bias is
    // negligible for bound << 2^64 and determinism is what we care about.
    return next_u64() % bound;
  }

  /// Uniform float in [0, 1).
  float next_float() {
    return static_cast<float>(next_u64() >> 40) * 0x1.0p-24f;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Standard normal via Box–Muller (uses two uniforms per pair, caches one).
  float next_gaussian() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    float u1 = next_float();
    float u2 = next_float();
    if (u1 < 1e-12f) u1 = 1e-12f;
    const float r = std::sqrt(-2.0f * std::log(u1));
    const float theta = 2.0f * 3.14159265358979323846f * u2;
    cached_ = r * std::sin(theta);
    has_cached_ = true;
    return r * std::cos(theta);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
  bool has_cached_ = false;
  float cached_ = 0.0f;
};

}  // namespace algas
