// Static ownership annotations — the compile-time mirror of
// ProtocolChecker's Fig 9 single-writer matrix.
//
// The dynamic checker proves, per run, that only the owning side of a slot
// state word ever transitions it. These macros state the same single-writer
// discipline *in the source*, on every piece of shared state the engines
// exchange, so `tools/algas_lint` can reject an ownership violation at lint
// time — before any simulation executes. They expand to nothing: zero
// compile-time or runtime cost, pure greppable contract.
//
//   ALGAS_OWNED_BY(Actors...)
//     The field may only be written from member functions of the listed
//     actor classes. One actor = strict single writer (Fig 9's diagonal).
//
//   ALGAS_GUARDED_BY_EPOCH(Actors...)
//     Write rights rotate between the listed actors, handed off by an
//     epoch: the slot state machine (CTA owns the field while the word is
//     in Work, the host worker outside it) or a generation stamp
//     (VisitedTable). The static check admits every listed actor; WHICH
//     one may write at a given virtual time is the dynamic half, enforced
//     by ProtocolChecker/SimCheck. This is exactly the pre-wiring the
//     streaming-mutability roadmap item needs: concurrent insert+search
//     adds writers, and they must appear here to pass the lint.
//
//   ALGAS_IMMUTABLE_AFTER_PUBLISH
//     For value structs (SharedMemoryLayout, configs) built up field by
//     field and then handed to the system: writes are legal only while the
//     object is still a function-local value under construction. Once
//     published — stored in an engine, passed across an interface — the
//     lint rejects any further field write outside the declaring class.
//
// Usage: place the annotation between the declarator and the initializer,
// like clang's thread-safety attributes:
//
//   std::vector<SlotState> states_ ALGAS_GUARDED_BY_EPOCH(StateSync);
//   std::uint64_t host_polls_ ALGAS_OWNED_BY(StateSync) = 0;
//
// The cross-check lives in tools/algas_lint/algas_lint.py (rule
// `ownership`); see DESIGN.md "Static analysis and the ownership model".
#pragma once

#define ALGAS_OWNED_BY(...)
#define ALGAS_GUARDED_BY_EPOCH(...)
#define ALGAS_IMMUTABLE_AFTER_PUBLISH
