#include "common/thread_pool.hpp"

#include <algorithm>

namespace algas {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t parts = std::min(n, workers_.size() * 4 + 1);
  const std::size_t chunk = (n + parts - 1) / parts;
  // The last chunk runs on the calling thread so a 1-thread pool still makes
  // forward progress while the caller is blocked in wait_idle().
  std::size_t begin = 0;
  for (; begin + chunk < n; begin += chunk) {
    const std::size_t end = begin + chunk;
    submit([&fn, begin, end] { fn(begin, end); });
  }
  fn(begin, n);
  wait_idle();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace algas
