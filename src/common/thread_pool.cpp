#include "common/thread_pool.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "common/env.hpp"

namespace algas {

namespace {
/// Set while the current thread executes a parallel_for chunk (any pool) —
/// the nesting guard. thread_local so worker threads and the calling
/// thread are covered uniformly.
thread_local bool tl_in_parallel_for = false;
}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::record_error(std::exception_ptr e) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!pending_error_) pending_error_ = std::move(e);
}

void ThreadPool::wait_idle() {
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
    error = std::exchange(pending_error_, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  if (tl_in_parallel_for) {
    throw std::logic_error(
        "ThreadPool::parallel_for: nested parallel_for is not supported "
        "(the inner loop would deadlock a fully busy pool)");
  }
  // Per-call error state: concurrent parallel_for calls on a shared pool
  // must each rethrow only their own chunks' failures.
  struct ForState {
    std::mutex mu;
    std::exception_ptr error;
  };
  auto state = std::make_shared<ForState>();
  const auto run = [&fn, state](std::size_t begin, std::size_t end) {
    tl_in_parallel_for = true;
    try {
      fn(begin, end);
    } catch (...) {
      std::lock_guard<std::mutex> lock(state->mu);
      if (!state->error) state->error = std::current_exception();
    }
    tl_in_parallel_for = false;
  };

  const std::size_t parts = std::min(n, workers_.size() * 4 + 1);
  const std::size_t chunk = (n + parts - 1) / parts;
  // The last chunk runs on the calling thread so a 1-thread pool still makes
  // forward progress while the caller is blocked in wait_idle().
  std::size_t begin = 0;
  for (; begin + chunk < n; begin += chunk) {
    const std::size_t end = begin + chunk;
    submit([run, begin, end] { run(begin, end); });
  }
  run(begin, n);
  wait_idle();
  if (state->error) std::rethrow_exception(state->error);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    // parallel_for chunks carry their own try/catch; this guard covers
    // plain submit() tasks so a throw never terminates the worker.
    try {
      task();
    } catch (...) {
      record_error(std::current_exception());
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

ThreadPool& global_pool() {
  static ThreadPool pool(build_threads());
  return pool;
}

BuildExecutor::BuildExecutor(std::size_t threads) {
  if (threads == 0) threads = build_threads();
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  threads_ = threads;
  if (threads == 1) return;  // inline serial: pool_ stays null
  if (threads == global_pool().size()) {
    pool_ = &global_pool();
  } else {
    owned_ = std::make_unique<ThreadPool>(threads);
    pool_ = owned_.get();
  }
}

void BuildExecutor::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  if (pool_ == nullptr) {
    fn(0, n);
    return;
  }
  pool_->parallel_for(n, fn);
}

}  // namespace algas
