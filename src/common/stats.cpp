#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace algas {

void SampleStats::add(double v) {
  if (samples_.empty()) {
    min_ = v;
    max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  samples_.push_back(v);
  sum_ += v;
  sorted_valid_ = false;
}

void SampleStats::add_all(const std::vector<double>& vs) {
  for (double v : vs) add(v);
}

void SampleStats::clear() {
  samples_.clear();
  sorted_.clear();
  sorted_valid_ = false;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

double SampleStats::mean() const {
  if (samples_.empty()) return 0.0;
  return sum_ / static_cast<double>(samples_.size());
}

double SampleStats::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double v : samples_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

const std::vector<double>& SampleStats::sorted() const {
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
  return sorted_;
}

double SampleStats::min() const { return samples_.empty() ? 0.0 : min_; }

double SampleStats::max() const { return samples_.empty() ? 0.0 : max_; }

double SampleStats::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  const auto& s = sorted();
  if (s.size() == 1) return s[0];
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double rank = clamped / 100.0 * static_cast<double>(s.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, s.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return s[lo] * (1.0 - frac) + s[hi] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (bins == 0) throw std::invalid_argument("Histogram needs >= 1 bin");
  if (!(hi > lo)) throw std::invalid_argument("Histogram needs hi > lo");
  width_ = (hi - lo) / static_cast<double>(bins);
}

void Histogram::add(double v) {
  ++total_;
  if (v < lo_) {
    ++underflow_;
    return;
  }
  const auto bin =
      static_cast<std::ptrdiff_t>(std::floor((v - lo_) / width_));
  if (bin >= static_cast<std::ptrdiff_t>(counts_.size())) {
    ++overflow_;
    return;
  }
  ++counts_[static_cast<std::size_t>(bin)];
}

void Histogram::merge(const Histogram& other) {
  if (other.lo_ != lo_ || other.hi_ != hi_ ||
      other.counts_.size() != counts_.size()) {
    throw std::invalid_argument(
        "Histogram::merge: geometry mismatch (lo/hi/bins must be equal)");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  total_ += other.total_;
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i + 1);
}

std::string Histogram::to_tsv() const {
  std::ostringstream out;
  const auto frac_of_total = [this](std::size_t c) {
    return total_ == 0 ? 0.0
                       : static_cast<double>(c) / static_cast<double>(total_);
  };
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    out << bin_lo(i) << '\t' << bin_hi(i) << '\t' << counts_[i] << '\t'
        << frac_of_total(counts_[i]) << '\n';
  }
  if (underflow_ > 0) {
    out << "-inf\t" << lo_ << '\t' << underflow_ << '\t'
        << frac_of_total(underflow_) << '\n';
  }
  if (overflow_ > 0) {
    out << hi_ << "\tinf\t" << overflow_ << '\t' << frac_of_total(overflow_)
        << '\n';
  }
  return out.str();
}

}  // namespace algas
