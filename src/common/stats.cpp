#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace algas {

void SampleStats::add(double v) {
  samples_.push_back(v);
  sum_ += v;
  sorted_valid_ = false;
}

void SampleStats::add_all(const std::vector<double>& vs) {
  for (double v : vs) add(v);
}

void SampleStats::clear() {
  samples_.clear();
  sorted_.clear();
  sorted_valid_ = false;
  sum_ = 0.0;
}

double SampleStats::mean() const {
  if (samples_.empty()) return 0.0;
  return sum_ / static_cast<double>(samples_.size());
}

double SampleStats::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double v : samples_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

const std::vector<double>& SampleStats::sorted() const {
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
  return sorted_;
}

double SampleStats::min() const {
  if (samples_.empty()) return 0.0;
  return sorted().front();
}

double SampleStats::max() const {
  if (samples_.empty()) return 0.0;
  return sorted().back();
}

double SampleStats::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  const auto& s = sorted();
  if (s.size() == 1) return s[0];
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double rank = clamped / 100.0 * static_cast<double>(s.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, s.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return s[lo] * (1.0 - frac) + s[hi] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (bins == 0) throw std::invalid_argument("Histogram needs >= 1 bin");
  if (!(hi > lo)) throw std::invalid_argument("Histogram needs hi > lo");
  width_ = (hi - lo) / static_cast<double>(bins);
}

void Histogram::add(double v) {
  double idx = (v - lo_) / width_;
  auto bin = static_cast<std::ptrdiff_t>(std::floor(idx));
  bin = std::clamp<std::ptrdiff_t>(
      bin, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i + 1);
}

std::string Histogram::to_tsv() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double frac =
        total_ == 0 ? 0.0
                    : static_cast<double>(counts_[i]) /
                          static_cast<double>(total_);
    out << bin_lo(i) << '\t' << bin_hi(i) << '\t' << counts_[i] << '\t'
        << frac << '\n';
  }
  return out.str();
}

}  // namespace algas
