// Software IEEE 754 binary16 ("half") conversion.
//
// The simulated GPU has no hardware half type, so the f16 storage codec
// does its conversions at the bit level: float_to_half rounds to nearest
// even (the GPU's __float2half convention), half_to_float is exact (every
// half is representable as a float). Denormals, signed zero, infinities
// and NaNs all follow IEEE 754; overflow past the half range (|x| > 65504)
// rounds to infinity, exactly like the hardware instruction.
#pragma once

#include <bit>
#include <cstdint>

namespace algas {

/// Round-to-nearest-even conversion of a binary32 float to binary16 bits.
inline std::uint16_t float_to_half(float f) {
  const std::uint32_t x = std::bit_cast<std::uint32_t>(f);
  const auto sign = static_cast<std::uint16_t>((x >> 16) & 0x8000u);
  const std::uint32_t exp = (x >> 23) & 0xffu;
  std::uint32_t mant = x & 0x007fffffu;

  if (exp == 0xffu) {  // inf / NaN: keep NaN-ness (force a payload bit)
    const auto payload =
        static_cast<std::uint16_t>(mant ? (0x0200u | (mant >> 13)) : 0u);
    return static_cast<std::uint16_t>(sign | 0x7c00u | payload);
  }

  const std::int32_t e = static_cast<std::int32_t>(exp) - 127 + 15;
  if (e >= 0x1f) return static_cast<std::uint16_t>(sign | 0x7c00u);  // -> inf
  if (e <= 0) {
    // Result is a half denormal (or rounds to zero). Shift the full
    // 24-bit significand (implicit bit included) right, rounding RNE.
    if (e < -10) return sign;  // too small for the largest denormal's half-ulp
    mant |= 0x00800000u;
    const std::uint32_t shift = static_cast<std::uint32_t>(14 - e);  // 14..24
    std::uint32_t half_mant = mant >> shift;
    const std::uint32_t rem = mant & ((1u << shift) - 1u);
    const std::uint32_t halfway = 1u << (shift - 1);
    if (rem > halfway || (rem == halfway && (half_mant & 1u))) ++half_mant;
    // A carry out of the denormal range lands exactly on the smallest
    // normal (exponent field 1), which the plain add already encodes.
    return static_cast<std::uint16_t>(sign | half_mant);
  }

  // Normal range: drop 13 mantissa bits with RNE.
  std::uint32_t half_mant = mant >> 13;
  std::int32_t half_exp = e;
  const std::uint32_t rem = mant & 0x1fffu;
  if (rem > 0x1000u || (rem == 0x1000u && (half_mant & 1u))) {
    if (++half_mant == 0x400u) {  // mantissa overflow: bump the exponent
      half_mant = 0;
      if (++half_exp >= 0x1f) return static_cast<std::uint16_t>(sign | 0x7c00u);
    }
  }
  return static_cast<std::uint16_t>(
      sign | (static_cast<std::uint32_t>(half_exp) << 10) | half_mant);
}

/// Exact widening of binary16 bits to a binary32 float.
inline float half_to_float(std::uint16_t h) {
  const std::uint32_t sign = (static_cast<std::uint32_t>(h) & 0x8000u) << 16;
  const std::uint32_t exp = (h >> 10) & 0x1fu;
  std::uint32_t mant = h & 0x3ffu;
  std::uint32_t out;
  if (exp == 0) {
    if (mant == 0) {
      out = sign;  // +-0
    } else {
      // Denormal half: normalize into a float with an implicit bit.
      std::uint32_t shift = 0;
      while (!(mant & 0x400u)) {
        mant <<= 1;
        ++shift;
      }
      out = sign | ((113u - shift) << 23) | ((mant & 0x3ffu) << 13);
    }
  } else if (exp == 0x1fu) {
    out = sign | 0x7f800000u | (mant << 13);  // inf / NaN
  } else {
    out = sign | ((exp + 112u) << 23) | (mant << 13);
  }
  return std::bit_cast<float>(out);
}

}  // namespace algas
