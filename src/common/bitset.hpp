// Fixed-size bitset used as the per-query visited table (§IV-B step ①:
// "Each CTA initializes a part of the visited table, implemented as a
// bitmap"). The simulation is single-threaded so no atomics are needed;
// test_and_set mirrors the GPU's atomicOr semantics functionally.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace algas {

class Bitset {
 public:
  Bitset() = default;
  explicit Bitset(std::size_t bits)
      : bits_(bits), words_((bits + 63) / 64, 0) {}

  void resize(std::size_t bits) {
    bits_ = bits;
    words_.assign((bits + 63) / 64, 0);
  }

  std::size_t size() const { return bits_; }

  bool test(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }

  void set(std::size_t i) { words_[i >> 6] |= (1ULL << (i & 63)); }

  void reset(std::size_t i) { words_[i >> 6] &= ~(1ULL << (i & 63)); }

  /// Set bit i; returns the previous value. Mirrors GPU atomicOr + test.
  bool test_and_set(std::size_t i) {
    const std::uint64_t mask = 1ULL << (i & 63);
    std::uint64_t& w = words_[i >> 6];
    const bool was = (w & mask) != 0;
    w |= mask;
    return was;
  }

  void clear() {
    for (auto& w : words_) w = 0;
  }

  std::size_t count() const {
    std::size_t total = 0;
    for (auto w : words_) total += static_cast<std::size_t>(__builtin_popcountll(w));
    return total;
  }

  /// Bytes of backing storage — used by the shared-memory accountant.
  std::size_t byte_size() const { return words_.size() * sizeof(std::uint64_t); }

 private:
  std::size_t bits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace algas
