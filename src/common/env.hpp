// Runtime configuration shared by the library, benches, examples and tools.
//
// Every process-wide knob is an ALGAS_* environment variable, collected in
// one place by RuntimeOptions::from_env(). The precedence rule, everywhere,
// is:
//
//   CLI flag  >  environment variable  >  compiled default
//
// i.e. a front-end (algas_cli, a bench) that exposes a flag must default
// that flag to the RuntimeOptions value, never read the environment behind
// it a second time.
//
//   ALGAS_SCALE         — multiplies every default dataset size (default
//                         1.0, clamped to [0.01, 100]).
//   ALGAS_QUERIES       — overrides the default query count per bench
//                         config (0 / unset keeps the bench default).
//   ALGAS_DATASETS      — comma list of bench dataset names.
//   ALGAS_CACHE_DIR     — directory for serialized datasets / graphs /
//                         ground truth (default "./algas_cache"). Empty
//                         disables caching.
//   ALGAS_STORAGE       — base-row storage codec: f32 | f16 | int8
//                         (default f32; validated at the use site).
//   ALGAS_TRACE         — SimTrace output path ("" = tracing off).
//   ALGAS_SIMCHECK      — 1/on or 0/off; unset follows the compiled
//                         ALGAS_SIMCHECK CMake default.
//   ALGAS_BUILD_THREADS — worker threads for offline construction work
//                         (graph builds, ground truth, k-means). 0 / unset
//                         picks std::thread::hardware_concurrency().
//   ALGAS_WALLTIME_OUT  — bench_walltime JSON output path (default
//                         "BENCH_walltime.json").
//   ALGAS_RECALL_OUT    — recall_gate JSON output path (default
//                         "BENCH_recall.json").
//   ALGAS_CHURN_OUT     — bench_churn JSON output path (default
//                         "BENCH_churn.json").
//   ALGAS_SHARD_OUT     — bench_shard JSON output path (default
//                         "BENCH_shard.json").
//   ALGAS_SHARD_HOSTS   — host worker threads per shard engine in
//                         bench_shard (default 1). The CI determinism gate
//                         runs the bench at two values and diffs the
//                         result checksums — merged results must not
//                         depend on host thread count.
//   ALGAS_SERVING_OUT   — bench_serving JSON output path (default
//                         "BENCH_serving.json").
//   ALGAS_FILTERED_OUT  — bench_filtered JSON output path (default
//                         "BENCH_filtered.json").
//   ALGAS_FILTERED_HOSTS — host worker threads in bench_filtered (default
//                         1, min 1). The filtered gate runs 1 vs 4 and
//                         byte-compares the JSON — filtered results and
//                         the attribute checksum must not depend on host
//                         thread count.
//   ALGAS_SERVING_HOSTS — host worker threads in bench_serving (default 1,
//                         min 1). The serving gate runs 1 vs 4 and diffs
//                         the arrival-trace checksum plus the underload
//                         variant's results checksum — everything-served
//                         workloads must not depend on host thread count.
#pragma once

#include <cstddef>
#include <string>

namespace algas {

/// Fetch a double-valued env var, or `fallback` when unset/invalid.
double env_double(const char* name, double fallback);

/// Fetch a size-valued env var, or `fallback` when unset/invalid.
std::size_t env_size(const char* name, std::size_t fallback);

/// Fetch a string env var, or `fallback` when unset.
std::string env_string(const char* name, const std::string& fallback);

/// Every ALGAS_* runtime knob, read once per from_env() call (no hidden
/// caching: tests mutate the environment and re-read).
struct RuntimeOptions {
  double scale = 1.0;                ///< ALGAS_SCALE, clamped [0.01, 100]
  std::size_t queries = 0;           ///< ALGAS_QUERIES, 0 = bench default
  std::string datasets;              ///< ALGAS_DATASETS comma list
  std::string cache_dir;             ///< ALGAS_CACHE_DIR, "" disables
  std::string storage;               ///< ALGAS_STORAGE codec name
  std::string trace_path;            ///< ALGAS_TRACE, "" = off
  int simcheck = -1;                 ///< ALGAS_SIMCHECK: 1 on, 0 off,
                                     ///<   -1 = follow the compiled default
  std::size_t build_threads = 0;     ///< ALGAS_BUILD_THREADS, 0 = hardware
  std::string walltime_out;          ///< ALGAS_WALLTIME_OUT JSON path
  std::string recall_out;            ///< ALGAS_RECALL_OUT JSON path
  std::string churn_out;             ///< ALGAS_CHURN_OUT JSON path
  std::string shard_out;             ///< ALGAS_SHARD_OUT JSON path
  std::size_t shard_hosts = 1;       ///< ALGAS_SHARD_HOSTS per-shard hosts
  std::string serving_out;           ///< ALGAS_SERVING_OUT JSON path
  std::size_t serving_hosts = 1;     ///< ALGAS_SERVING_HOSTS host threads
  std::string filtered_out;          ///< ALGAS_FILTERED_OUT JSON path
  std::size_t filtered_hosts = 1;    ///< ALGAS_FILTERED_HOSTS host threads

  static RuntimeOptions from_env();
};

/// Global dataset scale factor (RuntimeOptions::scale).
double dataset_scale();

/// Cache directory (RuntimeOptions::cache_dir). Empty disables caching.
std::string cache_dir();

/// Offline construction worker count (RuntimeOptions::build_threads,
/// 0 = hardware concurrency).
std::size_t build_threads();

}  // namespace algas
