// Environment-variable knobs shared by benches, examples and tests.
//
//   ALGAS_SCALE      — multiplies every default dataset size (default 1.0).
//                      Benches use this to trade fidelity for wall time.
//   ALGAS_CACHE_DIR  — directory for serialized datasets / graphs / ground
//                      truth (default "./algas_cache"). Empty disables caching.
//   ALGAS_QUERIES    — overrides the default query count per bench config.
#pragma once

#include <cstddef>
#include <string>

namespace algas {

/// Fetch a double-valued env var, or `fallback` when unset/invalid.
double env_double(const char* name, double fallback);

/// Fetch a size-valued env var, or `fallback` when unset/invalid.
std::size_t env_size(const char* name, std::size_t fallback);

/// Fetch a string env var, or `fallback` when unset.
std::string env_string(const char* name, const std::string& fallback);

/// Global dataset scale factor (ALGAS_SCALE, default 1.0, clamped to
/// [0.01, 100]).
double dataset_scale();

/// Cache directory (ALGAS_CACHE_DIR). Empty string disables caching.
std::string cache_dir();

}  // namespace algas
