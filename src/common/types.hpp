// Core scalar aliases and small helpers shared by every ALGAS module.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>

namespace algas {

/// Vector/node identifier within a dataset or graph. 32 bits covers the
/// billion-scale range the paper's datasets occupy after scaling.
using NodeId = std::uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/// Virtual time in the simulated-GPU substrate, in nanoseconds.
using SimTime = double;

/// Distance value. All metrics are mapped so that *smaller is closer*.
using Dist = float;

inline constexpr Dist kInfDist = std::numeric_limits<Dist>::infinity();

/// Round `v` up to the next power of two (v >= 1).
constexpr std::size_t next_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

constexpr bool is_pow2(std::size_t v) { return v != 0 && (v & (v - 1)) == 0; }

/// Integer ceil division.
constexpr std::size_t ceil_div(std::size_t a, std::size_t b) {
  return (a + b - 1) / b;
}

}  // namespace algas
