// Minimal thread pool with a blocking parallel_for. Used only for *offline*
// work that is outside the simulated system: graph construction, k-means,
// and brute-force ground truth. The simulated GPU itself is a single-threaded
// discrete-event simulation (see simgpu/simulation.hpp) for determinism.
//
// Error handling: the first exception thrown inside a submitted task or a
// parallel_for chunk is captured and rethrown to the caller (from
// wait_idle() / parallel_for() respectively) instead of terminating the
// worker thread. Nested parallel_for — calling parallel_for from inside a
// chunk already running under any pool's parallel_for — is rejected with
// std::logic_error: the inner call would deadlock a fully busy pool and its
// chunking would depend on scheduling.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace algas {

class ThreadPool {
 public:
  /// threads == 0 picks std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; returns immediately. A task that throws has its
  /// exception captured (first one wins) and rethrown from the next
  /// wait_idle().
  void submit(std::function<void()> task);

  /// Block until all submitted tasks have completed, then rethrow the
  /// first exception any of them raised (if any).
  void wait_idle();

  /// Split [0, n) into chunks and run `fn(begin, end)` across the pool,
  /// including the calling thread. Blocks until complete; rethrows the
  /// first exception thrown by any chunk. Throws std::logic_error when
  /// called from inside a parallel_for chunk (nesting is not supported).
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  void worker_loop();
  void record_error(std::exception_ptr e);

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
  /// First exception raised by a plain submit() task; armed until the next
  /// wait_idle() rethrows it. parallel_for chunks use per-call state
  /// instead so concurrent loops cannot steal each other's errors.
  std::exception_ptr pending_error_;
};

/// Process-wide pool for offline work (lazily constructed; sized by
/// ALGAS_BUILD_THREADS — see common/env.hpp — falling back to hardware
/// concurrency).
ThreadPool& global_pool();

/// Routes a `threads` knob (BuildConfig::threads, CLI --threads) to an
/// executor for one build:
///
///   knob 0  → ALGAS_BUILD_THREADS, which itself defaults to hardware
///   resolved 1  → run chunks inline on the caller, no pool involved
///   resolved == global pool size → share the global pool
///   otherwise → a private pool owned by this executor
///
/// parallel_for must produce results independent of the thread count; the
/// graph builders rely on that (see DESIGN.md "Deterministic parallel
/// construction").
class BuildExecutor {
 public:
  explicit BuildExecutor(std::size_t threads = 0);

  /// Worker threads backing this executor (1 = inline serial).
  std::size_t threads() const { return threads_; }

  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  std::size_t threads_ = 1;
  ThreadPool* pool_ = nullptr;  ///< null = inline serial execution
  std::unique_ptr<ThreadPool> owned_;
};

}  // namespace algas
