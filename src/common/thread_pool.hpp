// Minimal thread pool with a blocking parallel_for. Used only for *offline*
// work that is outside the simulated system: graph construction, k-means,
// and brute-force ground truth. The simulated GPU itself is a single-threaded
// discrete-event simulation (see simgpu/simulation.hpp) for determinism.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace algas {

class ThreadPool {
 public:
  /// threads == 0 picks std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; returns immediately.
  void submit(std::function<void()> task);

  /// Block until all submitted tasks have completed.
  void wait_idle();

  /// Split [0, n) into chunks and run `fn(begin, end)` across the pool,
  /// including the calling thread. Blocks until complete.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

/// Process-wide pool for offline work (lazily constructed).
ThreadPool& global_pool();

}  // namespace algas
