// Summary statistics over samples: mean, stddev, percentiles, histograms.
// Used for latency distributions (Figs 1, 2, 13) and waste-rate accounting.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace algas {

/// Accumulates scalar samples and answers distribution queries.
/// Percentile queries sort lazily; appending invalidates the sort.
class SampleStats {
 public:
  void add(double v);
  void add_all(const std::vector<double>& vs);
  void clear();

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double sum() const { return sum_; }
  double mean() const;
  double stddev() const;
  double min() const;
  double max() const;

  /// p in [0, 100]. Linear interpolation between closest ranks.
  double percentile(double p) const;
  double median() const { return percentile(50.0); }

  /// Samples in ascending order (forces the lazy sort).
  const std::vector<double>& sorted() const;

  /// Raw samples in insertion order.
  const std::vector<double>& raw() const { return samples_; }

 private:
  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
  double sum_ = 0.0;
  // Running extrema: min()/max() must not force the lazy percentile sort.
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-width histogram over [lo, hi). Out-of-range samples are counted
/// separately as underflow/overflow — not silently clamped into the edge
/// bins, which would fabricate mass at the range boundaries.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double v);

  /// Combine another histogram into this one. Requires identical geometry
  /// (lo, hi, bin count) — throws std::invalid_argument otherwise. Bin
  /// counts, total, underflow and overflow are summed, so combining
  /// per-shard histograms is exact, never a re-sample.
  void merge(const Histogram& other);

  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const { return counts_.size(); }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;
  /// All samples ever added, including out-of-range ones.
  std::size_t total() const { return total_; }
  std::size_t underflow() const { return underflow_; }  ///< samples < lo
  std::size_t overflow() const { return overflow_; }    ///< samples >= hi

  /// One line per bin: "lo<TAB>hi<TAB>count<TAB>fraction". When any sample
  /// fell outside [lo, hi), trailing "-inf lo" / "hi inf" rows report the
  /// underflow/overflow counts. Fractions are of total().
  std::string to_tsv() const;

 private:
  double lo_, hi_, width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
};

}  // namespace algas
