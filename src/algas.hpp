// Umbrella header: the public ALGAS API.
//
//   #include "algas.hpp"
//
//   Dataset  ->  Graph  ->  AlgasEngine  ->  EngineReport
//
// See README.md for the five-call quickstart and examples/ for runnable
// programs. Individual module headers remain includable on their own.
#pragma once

#include "baselines/ganns_engine.hpp"   // GANNS-style baseline
#include "baselines/ivf.hpp"            // IVF-Flat baseline
#include "baselines/static_engine.hpp"  // CAGRA-style baseline
#include "core/engine.hpp"              // AlgasEngine
#include "core/mutable_index.hpp"       // streaming insert/delete/compact
#include "core/serving_engine.hpp"      // open-loop arrivals + deadlines
#include "core/sharded_engine.hpp"      // multi-device scatter-gather
#include "core/tuner.hpp"               // adaptive tuning (SIV-C)
#include "common/env.hpp"               // RuntimeOptions / ALGAS_* knobs
#include "dataset/dataset.hpp"
#include "dataset/ground_truth.hpp"
#include "dataset/io.hpp"               // fvecs/ivecs + dataset cache files
#include "dataset/partitioner.hpp"      // contiguous id-range sharding
#include "dataset/registry.hpp"         // named bench datasets
#include "dataset/synthetic.hpp"        // Table III stand-in generators
#include "dataset/vector_store.hpp"     // f32/f16/int8 storage codecs
#include "graph/builder.hpp"            // NSW + CAGRA-style index builders
#include "metrics/recall.hpp"
#include "search/greedy.hpp"            // instrumented reference search
#include "simgpu/device_props.hpp"      // simulated device (Table II)
#include "simgpu/trace.hpp"             // SimTrace timeline sink
