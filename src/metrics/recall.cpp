#include "metrics/recall.hpp"

#include <algorithm>
#include <stdexcept>

namespace algas::metrics {

namespace {

double recall_impl(const Dataset& ds, std::size_t query_index,
                   const std::vector<NodeId>& ids, std::size_t k) {
  if (!ds.has_ground_truth()) {
    throw std::logic_error("dataset has no ground truth attached");
  }
  if (k > ds.gt_k()) {
    throw std::invalid_argument("recall depth exceeds cached ground truth");
  }
  const auto truth = ds.ground_truth(query_index).subspan(0, k);
  std::size_t hits = 0;
  for (NodeId id : ids) {
    if (std::find(truth.begin(), truth.end(), id) != truth.end()) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(k);
}

}  // namespace

double recall_at_k(const Dataset& ds, std::size_t query_index,
                   std::span<const KV> results, std::size_t k) {
  std::vector<NodeId> ids;
  ids.reserve(std::min(results.size(), k));
  for (const KV& kv : results) {
    if (kv.is_empty() || ids.size() == k) break;
    ids.push_back(kv.id());
  }
  return recall_impl(ds, query_index, ids, k);
}

double recall_at_k_ids(const Dataset& ds, std::size_t query_index,
                       std::span<const NodeId> results, std::size_t k) {
  std::vector<NodeId> ids(results.begin(),
                          results.begin() +
                              static_cast<std::ptrdiff_t>(
                                  std::min(results.size(), k)));
  return recall_impl(ds, query_index, ids, k);
}

double recall_against(std::span<const NodeId> truth,
                      std::span<const KV> results, std::size_t k) {
  if (truth.size() > k) truth = truth.subspan(0, k);
  std::size_t denom = 0;
  for (const NodeId t : truth) {
    if (t != kInvalidNode) ++denom;
  }
  if (denom == 0) return 1.0;
  std::size_t hits = 0;
  std::size_t taken = 0;
  for (const KV& kv : results) {
    if (kv.is_empty() || taken == k) break;
    ++taken;
    if (std::find(truth.begin(), truth.end(), kv.id()) != truth.end()) {
      ++hits;
    }
  }
  return static_cast<double>(hits) / static_cast<double>(denom);
}

double mean_recall(const Dataset& ds,
                   const std::vector<std::vector<KV>>& results,
                   std::size_t k) {
  if (results.empty()) return 0.0;
  double total = 0.0;
  for (std::size_t q = 0; q < results.size(); ++q) {
    total += recall_at_k(ds, q, results[q], k);
  }
  return total / static_cast<double>(results.size());
}

}  // namespace algas::metrics
