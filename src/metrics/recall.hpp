// Recall@k: |K_approximate ∩ K_truth| / |K_truth| (§II-A).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "dataset/dataset.hpp"
#include "search/kv.hpp"

namespace algas::metrics {

/// Recall of one result list against the dataset's ground truth for query q.
double recall_at_k(const Dataset& ds, std::size_t query_index,
                   std::span<const KV> results, std::size_t k);

/// Same over plain ids.
double recall_at_k_ids(const Dataset& ds, std::size_t query_index,
                       std::span<const NodeId> results, std::size_t k);

/// Mean recall over per-query result lists (results[q] is query q's list).
double mean_recall(const Dataset& ds,
                   const std::vector<std::vector<KV>>& results,
                   std::size_t k);

/// Recall against an explicit truth row (e.g. one row of
/// compute_filtered_ground_truth) instead of the dataset's attached ground
/// truth. kInvalidNode padding in `truth` is ignored: when the predicate
/// accepts fewer than k rows, the denominator is the accepted count, so a
/// search that returns every acceptable row scores 1.0. An all-padding
/// truth row scores 1.0 (nothing to find).
double recall_against(std::span<const NodeId> truth,
                      std::span<const KV> results, std::size_t k);

}  // namespace algas::metrics
