#include "metrics/table.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace algas::metrics {

TsvTable::TsvTable(std::vector<std::string> columns)
    : columns_(std::move(columns)) {}

TsvTable& TsvTable::row() {
  rows_.emplace_back();
  rows_.back().reserve(columns_.size());
  return *this;
}

TsvTable& TsvTable::cell(const std::string& v) {
  rows_.back().push_back(v);
  return *this;
}

TsvTable& TsvTable::cell(double v, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << v;
  rows_.back().push_back(out.str());
  return *this;
}

TsvTable& TsvTable::cell(std::size_t v) {
  rows_.back().push_back(std::to_string(v));
  return *this;
}

void TsvTable::print(std::ostream& out) const {
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    out << columns_[i] << (i + 1 == columns_.size() ? '\n' : '\t');
  }
  for (const auto& r : rows_) {
    if (r.size() != columns_.size()) {
      throw std::logic_error("ragged TSV row");
    }
    for (std::size_t i = 0; i < r.size(); ++i) {
      out << r[i] << (i + 1 == r.size() ? '\n' : '\t');
    }
  }
}

void print_meta(std::ostream& out, const std::string& key,
                const std::string& value) {
  out << "# " << key << ": " << value << '\n';
}

}  // namespace algas::metrics
