// Per-query measurement records and run-level aggregation: latency
// distributions, throughput, GPU bubble waste, and the compute/sort time
// split — the quantities behind Figs 2, 3, 10-17.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "search/intra_cta.hpp"
#include "search/kv.hpp"

namespace algas::metrics {

/// Terminal outcome of one query under the serving layer. Every arrival
/// produces exactly one record with exactly one disposition; the closed-
/// loop benches only ever produce kServed, which keeps their accounting
/// byte-identical to the pre-serving collector.
enum class Disposition : std::uint8_t {
  kServed = 0,    ///< merged results delivered to the caller
  kShedQueue,     ///< rejected by admission control (bounded queue full)
  kShedDeadline,  ///< expired in the host queue before dispatch
  kEvicted,       ///< finished on the device past deadline; results dropped
};

const char* disposition_name(Disposition d);

struct QueryRecord {
  /// Sentinel for `slot`: the query never occupied a slot (it was shed at
  /// admission or expired in the host queue before dispatch).
  static constexpr std::size_t kNoSlot =
      std::numeric_limits<std::size_t>::max();

  std::size_t query_index = 0;
  /// Slot (dynamic), batch index (static), or shard fanout (sharded merge);
  /// kNoSlot when the query was shed before ever occupying one.
  std::size_t slot = 0;
  SimTime arrival_ns = 0.0;   ///< when the query entered the system
  SimTime dispatch_ns = 0.0;  ///< when a slot/batch picked it up
  SimTime gpu_done_ns = 0.0;  ///< when the query's last CTA finished
  SimTime done_ns = 0.0;      ///< when delivered (or shed/evicted)
  /// Absolute deadline carried from the arrival; infinity = none.
  SimTime deadline_ns = std::numeric_limits<SimTime>::infinity();
  std::uint8_t priority = 0;  ///< admission priority class
  Disposition disposition = Disposition::kServed;
  std::size_t steps = 0;      ///< expanded points (paper's step count)
  std::size_t rounds = 0;     ///< maintenance rounds (sorts)
  std::size_t scored_points = 0;  ///< distance evaluations (all CTAs)
  search::StepCost gpu_cost;  ///< summed across the query's CTAs
  std::vector<KV> results;    ///< empty unless disposition == kServed

  SimTime latency_ns() const { return done_ns - arrival_ns; }
  SimTime service_ns() const { return done_ns - dispatch_ns; }
  bool served() const { return disposition == Disposition::kServed; }
  /// Goodput criterion: delivered by the deadline (an infinite deadline is
  /// always met; a shed/evicted query never is).
  bool in_deadline() const { return served() && done_ns <= deadline_ns; }
};

struct RunSummary {
  std::size_t queries = 0;        ///< all records (served + shed + evicted)
  double span_ns = 0.0;           ///< first arrival -> last completion
  /// Served queries per second of span. Equal to queries/span on closed
  /// loops (everything serves); under overload only completed work counts.
  double throughput_qps = 0.0;
  // --- Serving-layer outcome accounting (all zero on closed loops) -------
  std::size_t served = 0;         ///< disposition kServed
  std::size_t shed_queue = 0;     ///< rejected by admission control
  std::size_t shed_deadline = 0;  ///< expired in queue before dispatch
  std::size_t evicted = 0;        ///< finished past deadline, dropped
  std::size_t deadline_misses = 0;  ///< finite-deadline queries not met
  double goodput_qps = 0.0;       ///< in-deadline completions per second
  double shed_rate = 0.0;         ///< (queries - served) / queries
  double deadline_miss_rate = 0.0;  ///< deadline_misses / queries
  /// End-to-end latency (arrival -> completion; includes queueing) over
  /// SERVED queries only — a shed query has no completion to measure.
  double mean_latency_us = 0.0;
  double p50_latency_us = 0.0;
  double p95_latency_us = 0.0;
  double p99_latency_us = 0.0;
  double p999_latency_us = 0.0;
  /// Service latency (dispatch -> completion). Closed-loop benches report
  /// this — it is what the paper's per-query latency figures measure, free
  /// of the artificial queueing a submit-everything-at-t0 workload adds.
  double mean_service_us = 0.0;
  double p50_service_us = 0.0;
  double p95_service_us = 0.0;
  double p99_service_us = 0.0;
  double p999_service_us = 0.0;
  double mean_steps = 0.0;
  double max_steps = 0.0;
  /// Fraction of summed GPU search time spent in sorting (Fig 3 / Fig 17).
  double sort_fraction = 0.0;
  double compute_fraction = 0.0;
  /// Batch-bubble waste: idle CTA-time while waiting for the batch's
  /// slowest query, as a fraction of active CTA-time (§III-A's
  /// 22.9%-33.7%). Zero unless the engine reports batch idle time.
  double bubble_waste = 0.0;
};

class Collector {
 public:
  void add(QueryRecord rec);
  void add_batch_idle(double idle_ns, double active_ns);

  /// Combine another collector into this one: records are appended in the
  /// other's insertion order and the batch idle/active accumulators are
  /// summed. Exact by construction — summarize() over a merged collector
  /// equals summarize() over the union of the samples — so per-shard
  /// collectors aggregate without re-sampling.
  void merge(const Collector& other);

  std::size_t size() const { return records_.size(); }
  const std::vector<QueryRecord>& records() const { return records_; }

  RunSummary summarize() const;

  /// Sorted per-query end-to-end latencies (arrival -> completion) in
  /// microseconds. Note: despite the name this used to return *service*
  /// latencies; it now matches QueryRecord::latency_ns().
  std::vector<double> sorted_latencies_us() const;

  /// Sorted per-query service latencies (dispatch -> completion) in
  /// microseconds (Fig 13's series).
  std::vector<double> sorted_service_us() const;

  /// Per-query step counts (Figs 1, 2).
  std::vector<double> step_counts() const;

  void clear();

 private:
  std::vector<QueryRecord> records_;
  double batch_idle_ns_ = 0.0;
  double batch_active_ns_ = 0.0;
};

}  // namespace algas::metrics
