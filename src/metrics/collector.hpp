// Per-query measurement records and run-level aggregation: latency
// distributions, throughput, GPU bubble waste, and the compute/sort time
// split — the quantities behind Figs 2, 3, 10-17.
#pragma once

#include <cstddef>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "search/intra_cta.hpp"
#include "search/kv.hpp"

namespace algas::metrics {

struct QueryRecord {
  std::size_t query_index = 0;
  std::size_t slot = 0;       ///< slot (dynamic) or batch index (static)
  SimTime arrival_ns = 0.0;   ///< when the query entered the system
  SimTime dispatch_ns = 0.0;  ///< when a slot/batch picked it up
  SimTime gpu_done_ns = 0.0;  ///< when the query's last CTA finished
  SimTime done_ns = 0.0;      ///< when merged results were delivered
  std::size_t steps = 0;      ///< expanded points (paper's step count)
  std::size_t rounds = 0;     ///< maintenance rounds (sorts)
  std::size_t scored_points = 0;  ///< distance evaluations (all CTAs)
  search::StepCost gpu_cost;  ///< summed across the query's CTAs
  std::vector<KV> results;

  SimTime latency_ns() const { return done_ns - arrival_ns; }
  SimTime service_ns() const { return done_ns - dispatch_ns; }
};

struct RunSummary {
  std::size_t queries = 0;
  double span_ns = 0.0;           ///< first arrival -> last completion
  double throughput_qps = 0.0;
  /// End-to-end latency (arrival -> completion; includes queueing).
  double mean_latency_us = 0.0;
  double p50_latency_us = 0.0;
  double p95_latency_us = 0.0;
  double p99_latency_us = 0.0;
  /// Service latency (dispatch -> completion). Closed-loop benches report
  /// this — it is what the paper's per-query latency figures measure, free
  /// of the artificial queueing a submit-everything-at-t0 workload adds.
  double mean_service_us = 0.0;
  double p50_service_us = 0.0;
  double p95_service_us = 0.0;
  double p99_service_us = 0.0;
  double mean_steps = 0.0;
  double max_steps = 0.0;
  /// Fraction of summed GPU search time spent in sorting (Fig 3 / Fig 17).
  double sort_fraction = 0.0;
  double compute_fraction = 0.0;
  /// Batch-bubble waste: idle CTA-time while waiting for the batch's
  /// slowest query, as a fraction of active CTA-time (§III-A's
  /// 22.9%-33.7%). Zero unless the engine reports batch idle time.
  double bubble_waste = 0.0;
};

class Collector {
 public:
  void add(QueryRecord rec);
  void add_batch_idle(double idle_ns, double active_ns);

  /// Combine another collector into this one: records are appended in the
  /// other's insertion order and the batch idle/active accumulators are
  /// summed. Exact by construction — summarize() over a merged collector
  /// equals summarize() over the union of the samples — so per-shard
  /// collectors aggregate without re-sampling.
  void merge(const Collector& other);

  std::size_t size() const { return records_.size(); }
  const std::vector<QueryRecord>& records() const { return records_; }

  RunSummary summarize() const;

  /// Sorted per-query end-to-end latencies (arrival -> completion) in
  /// microseconds. Note: despite the name this used to return *service*
  /// latencies; it now matches QueryRecord::latency_ns().
  std::vector<double> sorted_latencies_us() const;

  /// Sorted per-query service latencies (dispatch -> completion) in
  /// microseconds (Fig 13's series).
  std::vector<double> sorted_service_us() const;

  /// Per-query step counts (Figs 1, 2).
  std::vector<double> step_counts() const;

  void clear();

 private:
  std::vector<QueryRecord> records_;
  double batch_idle_ns_ = 0.0;
  double batch_active_ns_ = 0.0;
};

}  // namespace algas::metrics
