#include "metrics/collector.hpp"

#include <algorithm>
#include <cmath>

namespace algas::metrics {

const char* disposition_name(Disposition d) {
  switch (d) {
    case Disposition::kServed: return "served";
    case Disposition::kShedQueue: return "shed-queue";
    case Disposition::kShedDeadline: return "shed-deadline";
    case Disposition::kEvicted: return "evicted";
  }
  return "invalid";
}

void Collector::add(QueryRecord rec) { records_.push_back(std::move(rec)); }

void Collector::add_batch_idle(double idle_ns, double active_ns) {
  batch_idle_ns_ += idle_ns;
  batch_active_ns_ += active_ns;
}

void Collector::merge(const Collector& other) {
  records_.insert(records_.end(), other.records_.begin(),
                  other.records_.end());
  batch_idle_ns_ += other.batch_idle_ns_;
  batch_active_ns_ += other.batch_active_ns_;
}

RunSummary Collector::summarize() const {
  RunSummary s;
  s.queries = records_.size();
  if (records_.empty()) return s;

  SampleStats latency;
  SampleStats service;
  SampleStats steps;
  double first_arrival = records_.front().arrival_ns;
  double last_done = records_.front().done_ns;
  double sort_ns = 0.0, compute_ns = 0.0, other_ns = 0.0;
  std::size_t in_deadline = 0;
  for (const auto& r : records_) {
    // The span covers every outcome (a shed query still occupied the
    // system until its shed instant); latency/service/step distributions
    // cover served queries only — a shed query has no completion.
    first_arrival = std::min(first_arrival, r.arrival_ns);
    last_done = std::max(last_done, r.done_ns);
    switch (r.disposition) {
      case Disposition::kServed: ++s.served; break;
      case Disposition::kShedQueue: ++s.shed_queue; break;
      case Disposition::kShedDeadline: ++s.shed_deadline; break;
      case Disposition::kEvicted: ++s.evicted; break;
    }
    if (r.in_deadline()) ++in_deadline;
    // A miss requires a deadline to miss: shed/evicted/late-served queries
    // with a FINITE deadline count; a query shed from a run with deadlines
    // disabled (infinite) is a shed, not a deadline miss.
    if (!r.in_deadline() && std::isfinite(r.deadline_ns)) ++s.deadline_misses;
    if (!r.served()) continue;
    latency.add(r.latency_ns() / 1000.0);
    service.add(r.service_ns() / 1000.0);
    steps.add(static_cast<double>(r.steps));
    sort_ns += r.gpu_cost.sort_ns;
    compute_ns += r.gpu_cost.compute_ns;
    other_ns += r.gpu_cost.select_ns + r.gpu_cost.gather_ns;
  }
  s.span_ns = last_done - first_arrival;
  if (s.span_ns > 0.0) {
    s.throughput_qps = static_cast<double>(s.served) * 1e9 / s.span_ns;
    s.goodput_qps = static_cast<double>(in_deadline) * 1e9 / s.span_ns;
  }
  s.shed_rate = static_cast<double>(s.queries - s.served) /
                static_cast<double>(s.queries);
  s.deadline_miss_rate = static_cast<double>(s.deadline_misses) /
                         static_cast<double>(s.queries);
  if (s.served == 0) return s;
  s.mean_latency_us = latency.mean();
  s.p50_latency_us = latency.percentile(50);
  s.p95_latency_us = latency.percentile(95);
  s.p99_latency_us = latency.percentile(99);
  s.p999_latency_us = latency.percentile(99.9);
  s.mean_service_us = service.mean();
  s.p50_service_us = service.percentile(50);
  s.p95_service_us = service.percentile(95);
  s.p99_service_us = service.percentile(99);
  s.p999_service_us = service.percentile(99.9);
  s.mean_steps = steps.mean();
  s.max_steps = steps.max();
  const double gpu_total = sort_ns + compute_ns + other_ns;
  if (gpu_total > 0.0) {
    s.sort_fraction = sort_ns / gpu_total;
    s.compute_fraction = compute_ns / gpu_total;
  }
  if (batch_active_ns_ > 0.0) {
    s.bubble_waste = batch_idle_ns_ / batch_active_ns_;
  }
  return s;
}

std::vector<double> Collector::sorted_latencies_us() const {
  std::vector<double> out;
  out.reserve(records_.size());
  for (const auto& r : records_) {
    if (r.served()) out.push_back(r.latency_ns() / 1000.0);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<double> Collector::sorted_service_us() const {
  std::vector<double> out;
  out.reserve(records_.size());
  for (const auto& r : records_) {
    if (r.served()) out.push_back(r.service_ns() / 1000.0);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<double> Collector::step_counts() const {
  std::vector<double> out;
  out.reserve(records_.size());
  for (const auto& r : records_) {
    out.push_back(static_cast<double>(r.steps));
  }
  return out;
}

void Collector::clear() {
  records_.clear();
  batch_idle_ns_ = 0.0;
  batch_active_ns_ = 0.0;
}

}  // namespace algas::metrics
