// TSV table printing for the bench harnesses: every bench emits the series
// the corresponding paper figure plots, one row per point.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace algas::metrics {

class TsvTable {
 public:
  explicit TsvTable(std::vector<std::string> columns);

  /// Begin a row; subsequent cell() calls fill it left to right.
  TsvTable& row();
  TsvTable& cell(const std::string& v);
  TsvTable& cell(double v, int precision = 3);
  TsvTable& cell(std::size_t v);

  /// Write header + rows. Throws std::logic_error on ragged rows.
  void print(std::ostream& out) const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// "# key: value" comment line benches use for run metadata.
void print_meta(std::ostream& out, const std::string& key,
                const std::string& value);

}  // namespace algas::metrics
