#include "dataset/partitioner.hpp"

#include <stdexcept>
#include <string>

namespace algas {

ShardPartition::ShardPartition(std::size_t num_base, std::size_t shards)
    : num_base_(num_base), shards_(shards) {
  if (shards == 0) {
    throw std::invalid_argument("ShardPartition: shards must be >= 1");
  }
  if (shards > num_base) {
    throw std::invalid_argument(
        "ShardPartition: more shards (" + std::to_string(shards) +
        ") than base rows (" + std::to_string(num_base) + ")");
  }
}

ShardRange ShardPartition::range(std::size_t shard) const {
  // s*n/K boundaries: exact integer arithmetic, sizes differ by <= 1.
  const std::size_t lo = shard * num_base_ / shards_;
  const std::size_t hi = (shard + 1) * num_base_ / shards_;
  return {static_cast<NodeId>(lo), static_cast<NodeId>(hi)};
}

std::size_t ShardPartition::size(std::size_t shard) const {
  const ShardRange r = range(shard);
  return static_cast<std::size_t>(r.end - r.begin);
}

std::size_t ShardPartition::shard_of(NodeId global) const {
  // Invert the floor-division boundary with a guess + bounded correction
  // (the guess is off by at most one step on boundary rounding).
  std::size_t s = std::min<std::size_t>(
      shards_ - 1, static_cast<std::size_t>(global) * shards_ / num_base_);
  while (global < range(s).begin) --s;
  while (global >= range(s).end) ++s;
  return s;
}

NodeId ShardPartition::to_local(NodeId global) const {
  return global - range(shard_of(global)).begin;
}

NodeId ShardPartition::to_global(std::size_t shard, NodeId local) const {
  return range(shard).begin + local;
}

Dataset make_shard_dataset(const Dataset& ds, const ShardPartition& part,
                           std::size_t shard) {
  const ShardRange r = part.range(shard);
  Dataset out(ds.name() + "/shard" + std::to_string(shard), ds.dim(),
              ds.metric());
  const std::size_t dim = ds.dim();
  auto& base = out.mutable_base();
  base.assign(ds.base().begin() + static_cast<std::ptrdiff_t>(r.begin * dim),
              ds.base().begin() + static_cast<std::ptrdiff_t>(r.end * dim));
  out.mutable_queries() = ds.queries();
  // Codec last, mirroring the bench loaders: the slice is taken from the
  // exact f32 rows, then quantized, so shard rows encode bit-identically to
  // the same rows in the unsharded store.
  out.set_storage(ds.storage());
  return out;
}

}  // namespace algas
