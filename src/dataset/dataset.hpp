// In-memory dataset: base vectors, query vectors, ground truth.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/ownership.hpp"
#include "common/types.hpp"
#include "dataset/vector_store.hpp"
#include "distance/distance.hpp"

namespace algas {

class Dataset {
 public:
  Dataset() = default;
  Dataset(std::string name, std::size_t dim, Metric metric)
      : name_(std::move(name)), dim_(dim), metric_(metric) {}

  const std::string& name() const { return name_; }
  std::size_t dim() const { return dim_; }
  Metric metric() const { return metric_; }

  std::size_t num_base() const { return dim_ == 0 ? 0 : base_.size() / dim_; }
  std::size_t num_queries() const {
    return dim_ == 0 ? 0 : queries_.size() / dim_;
  }
  std::size_t gt_k() const { return gt_k_; }

  std::span<const float> base_vector(std::size_t i) const {
    return {base_.data() + i * dim_, dim_};
  }
  std::span<const float> query(std::size_t i) const {
    return {queries_.data() + i * dim_, dim_};
  }
  std::span<const NodeId> ground_truth(std::size_t q) const {
    return {gt_.data() + q * gt_k_, gt_k_};
  }

  std::vector<float>& mutable_base() {
    base_norms_.clear();  // row norms are stale once the caller writes rows
    store_dirty_ = true;  // so are the quantized rows and their scales
    return base_;
  }

  /// Append whole rows (`rows.size()` must be a multiple of dim) — the
  /// dataset half of the streaming insert epoch hand-off
  /// (core::MutableIndex::stage). Unlike mutable_base(), every derived
  /// cache is reconciled before the call returns, while the caller still
  /// holds exclusive write access: ground truth is dropped (it was exact
  /// only for the pre-append base set), the norm cache is extended in
  /// place with the new rows' norms (per-row values, so extension is
  /// bit-identical to a full rebuild), and quantized rows re-encode
  /// immediately. Concurrent readers of the published prefix therefore
  /// never hit the lazy first-use rebuild that base_norms() documents as
  /// thread-unsafe.
  void append_base(std::span<const float> rows);

  /// Build every lazily-initialized cache now (norm table under cosine,
  /// encoded store under a quantized codec). Publish points — the builders
  /// before forking parallel scans, the streaming index before admitting
  /// concurrent readers — call this so first-use initialization never
  /// races.
  void warm_caches() const;

  /// Drop ground truth (stale after appends or a compaction remap).
  void clear_ground_truth() {
    gt_.clear();
    gt_k_ = 0;
  }
  std::vector<float>& mutable_queries() { return queries_; }
  const std::vector<float>& base() const { return base_; }
  const std::vector<float>& queries() const { return queries_; }

  void set_ground_truth(std::vector<NodeId> gt, std::size_t k) {
    gt_ = std::move(gt);
    gt_k_ = k;
  }
  bool has_ground_truth() const { return gt_k_ > 0 && !gt_.empty(); }
  const std::vector<NodeId>& ground_truth_flat() const { return gt_; }

  /// Attach one (category, timestamp) attribute pair per base row — the
  /// metadata that search::AcceptPredicate bitsets are built from (CLI
  /// `--filter cat=K` / `--filter ts<T`, bench_filtered's selectivity
  /// tiers). Both vectors must have exactly num_base() entries. Attributes
  /// ride alongside the vectors: they never influence distances, graph
  /// construction, or any cache, so attaching them leaves every pinned
  /// search result byte-identical.
  void set_attributes(std::vector<std::uint32_t> categories,
                      std::vector<std::uint32_t> timestamps);
  bool has_attributes() const { return !categories_.empty(); }
  /// Per-row category / timestamp (valid only when has_attributes()).
  const std::vector<std::uint32_t>& categories() const { return categories_; }
  const std::vector<std::uint32_t>& timestamps() const { return timestamps_; }
  /// Drop attributes (e.g. after a compaction remap invalidates row ids).
  void clear_attributes() {
    categories_.clear();
    timestamps_.clear();
  }

  /// Select the base-row storage codec. f32 (the default) keeps today's
  /// flat float rows and the bit-identical scoring path; f16/int8 encode
  /// the rows into the VectorStore and route every distance call through
  /// the dequantize-in-register kernels. Changing the codec drops the norm
  /// cache (quantized norms are norms of the DECODED rows). Note the codec
  /// is a runtime property — ground truth should be computed/loaded before
  /// quantizing so recall measures the quantization loss, not a quantized
  /// ground truth.
  void set_storage(StorageCodec codec);
  StorageCodec storage() const { return codec_; }
  /// Bytes per stored base element under the active codec (4 / 2 / 1) —
  /// what the cost model and shared-memory layout charge per dimension.
  std::size_t elem_bytes() const { return storage_elem_bytes(codec_); }

  /// The encoded store for the active codec, re-encoded on demand after
  /// mutable_base(). Like base_norms(), NOT thread-safe on first use after
  /// a mutation; parallel scans must touch it once up front. f32 returns
  /// the empty store (nothing encoded).
  const VectorStore& vector_store() const;

  /// Distance from `query` to base row `id` under the dataset metric and
  /// the active storage codec. For f32 this is exactly distance(); for
  /// quantized codecs it scores the encoded row (a batch of one).
  float score(std::span<const float> q, NodeId id) const;

  /// Distance from query q to base vector i under the dataset metric.
  float query_distance(std::size_t q, NodeId i) const {
    return score(query(q), i);
  }

  /// Score base rows `ids` against `query` in one batched kernel call —
  /// bitwise-identical to per-id score() (see distance/kernels.hpp). The
  /// cosine path reads the cached base-norm table instead of recomputing
  /// norm(b) per call.
  void distance_batch(std::span<const float> query,
                      std::span<const NodeId> ids, std::span<float> out) const;

  /// Batched scoring of the contiguous rows [first, first + count).
  void distance_batch_range(std::span<const float> query, std::size_t first,
                            std::size_t count, std::span<float> out) const;

  /// Per-row L2 norms of the rows AS SCORED under the active codec
  /// (norm(base_vector(i)) for f32, norm of the decoded row for f16/int8),
  /// computed on first use and dropped whenever mutable_base() is taken or
  /// the codec changes. NOT thread-safe on first call: parallel cosine
  /// scans must touch it once up front (the in-tree parallel call sites
  /// do).
  std::span<const float> base_norms() const;

  /// One-line summary ("SIFT-like  n=100000 d=128 metric=L2 q=1000").
  std::string describe() const;

 private:
  std::string name_;
  std::size_t dim_ = 0;
  Metric metric_ = Metric::kL2;
  std::vector<float> base_;
  std::vector<float> queries_;
  std::vector<NodeId> gt_;
  std::size_t gt_k_ = 0;
  /// Per-base-row attributes; both empty (no attributes) or both num_base()
  /// long. Dropped by append_base — like ground truth, they describe only
  /// the pre-append rows.
  std::vector<std::uint32_t> categories_;
  std::vector<std::uint32_t> timestamps_;
  StorageCodec codec_ = StorageCodec::kF32;
  /// Lazy norm cache; empty = not built. Only read through base_norms().
  /// Write rights rotate with the insert epoch: lazily built inside const
  /// accessors while single-threaded, extended during the exclusive stage
  /// section of a streaming append, immutable while readers are admitted.
  mutable std::vector<float> base_norms_ ALGAS_GUARDED_BY_EPOCH(Dataset);
  /// Encoded rows for the quantized codecs; rebuilt when store_dirty_.
  /// Same epoch discipline as base_norms_.
  mutable VectorStore store_ ALGAS_GUARDED_BY_EPOCH(Dataset);
  mutable bool store_dirty_ ALGAS_GUARDED_BY_EPOCH(Dataset) = false;
};

}  // namespace algas
