// In-memory dataset: base vectors, query vectors, ground truth.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "distance/distance.hpp"

namespace algas {

class Dataset {
 public:
  Dataset() = default;
  Dataset(std::string name, std::size_t dim, Metric metric)
      : name_(std::move(name)), dim_(dim), metric_(metric) {}

  const std::string& name() const { return name_; }
  std::size_t dim() const { return dim_; }
  Metric metric() const { return metric_; }

  std::size_t num_base() const { return dim_ == 0 ? 0 : base_.size() / dim_; }
  std::size_t num_queries() const {
    return dim_ == 0 ? 0 : queries_.size() / dim_;
  }
  std::size_t gt_k() const { return gt_k_; }

  std::span<const float> base_vector(std::size_t i) const {
    return {base_.data() + i * dim_, dim_};
  }
  std::span<const float> query(std::size_t i) const {
    return {queries_.data() + i * dim_, dim_};
  }
  std::span<const NodeId> ground_truth(std::size_t q) const {
    return {gt_.data() + q * gt_k_, gt_k_};
  }

  std::vector<float>& mutable_base() {
    base_norms_.clear();  // row norms are stale once the caller writes rows
    return base_;
  }
  std::vector<float>& mutable_queries() { return queries_; }
  const std::vector<float>& base() const { return base_; }
  const std::vector<float>& queries() const { return queries_; }

  void set_ground_truth(std::vector<NodeId> gt, std::size_t k) {
    gt_ = std::move(gt);
    gt_k_ = k;
  }
  bool has_ground_truth() const { return gt_k_ > 0 && !gt_.empty(); }
  const std::vector<NodeId>& ground_truth_flat() const { return gt_; }

  /// Distance from query q to base vector i under the dataset metric.
  float query_distance(std::size_t q, NodeId i) const {
    return distance(metric_, query(q), base_vector(i));
  }

  /// Score base rows `ids` against `query` in one batched kernel call —
  /// bitwise-identical to per-id distance() (see distance/kernels.hpp). The
  /// cosine path reads the cached base-norm table instead of recomputing
  /// norm(b) per call.
  void distance_batch(std::span<const float> query,
                      std::span<const NodeId> ids, std::span<float> out) const;

  /// Batched scoring of the contiguous rows [first, first + count).
  void distance_batch_range(std::span<const float> query, std::size_t first,
                            std::size_t count, std::span<float> out) const;

  /// Per-row L2 norms (norm(base_vector(i)) at index i), computed on first
  /// use and dropped whenever mutable_base() is taken. NOT thread-safe on
  /// first call: parallel cosine scans must touch it once up front (the
  /// in-tree parallel call sites do).
  std::span<const float> base_norms() const;

  /// One-line summary ("SIFT-like  n=100000 d=128 metric=L2 q=1000").
  std::string describe() const;

 private:
  std::string name_;
  std::size_t dim_ = 0;
  Metric metric_ = Metric::kL2;
  std::vector<float> base_;
  std::vector<float> queries_;
  std::vector<NodeId> gt_;
  std::size_t gt_k_ = 0;
  /// Lazy norm cache; empty = not built. Only read through base_norms().
  mutable std::vector<float> base_norms_;
};

}  // namespace algas
