#include "dataset/dataset.hpp"

#include <sstream>

#include "distance/kernels.hpp"

namespace algas {

std::span<const float> Dataset::base_norms() const {
  const std::size_t n = num_base();
  if (base_norms_.size() != n) {
    base_norms_.resize(n);
    for (std::size_t i = 0; i < n; ++i) base_norms_[i] = norm(base_vector(i));
  }
  return base_norms_;
}

void Dataset::distance_batch(std::span<const float> query,
                             std::span<const NodeId> ids,
                             std::span<float> out) const {
  algas::distance_batch(metric_, query, base_.data(), dim_, ids, out,
                        metric_ == Metric::kCosine ? base_norms()
                                                   : std::span<const float>{});
}

void Dataset::distance_batch_range(std::span<const float> query,
                                   std::size_t first, std::size_t count,
                                   std::span<float> out) const {
  algas::distance_batch_range(
      metric_, query, base_.data(), dim_, first, count, out,
      metric_ == Metric::kCosine ? base_norms() : std::span<const float>{});
}

std::string Dataset::describe() const {
  std::ostringstream out;
  out << name_ << "  n=" << num_base() << " d=" << dim_
      << " metric=" << metric_name(metric_) << " q=" << num_queries();
  if (has_ground_truth()) out << " gt_k=" << gt_k_;
  return out.str();
}

}  // namespace algas
