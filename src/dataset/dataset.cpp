#include "dataset/dataset.hpp"

#include <sstream>
#include <stdexcept>

#include "distance/kernels.hpp"

namespace algas {

void Dataset::append_base(std::span<const float> rows) {
  if (dim_ == 0) {
    throw std::invalid_argument("append_base: dataset has no dimensionality");
  }
  if (rows.size() % dim_ != 0) {
    throw std::invalid_argument("append_base: data is not whole rows (got " +
                                std::to_string(rows.size()) +
                                " floats, dim=" + std::to_string(dim_) + ")");
  }
  clear_ground_truth();  // exact only for the pre-append base set
  clear_attributes();    // likewise: they describe only the old rows
  const bool had_norms = base_norms_.size() == num_base() && num_base() > 0;
  base_.insert(base_.end(), rows.begin(), rows.end());
  if (codec_ != StorageCodec::kF32) {
    store_.encode(base_.data(), num_base(), dim_, codec_);
    store_dirty_ = false;
  }
  // Extend (or, if never built, fully build) the norm cache while we still
  // hold exclusive write access, instead of leaving a lazy rebuild for the
  // first concurrent reader to trip over.
  if (had_norms || metric_ == Metric::kCosine) base_norms();
}

void Dataset::set_attributes(std::vector<std::uint32_t> categories,
                             std::vector<std::uint32_t> timestamps) {
  if (categories.size() != num_base() || timestamps.size() != num_base()) {
    throw std::invalid_argument(
        "set_attributes: need one (category, timestamp) pair per base row "
        "(got " + std::to_string(categories.size()) + "/" +
        std::to_string(timestamps.size()) + " for " +
        std::to_string(num_base()) + " rows)");
  }
  categories_ = std::move(categories);
  timestamps_ = std::move(timestamps);
}

void Dataset::warm_caches() const {
  if (metric_ == Metric::kCosine) base_norms();
  if (codec_ != StorageCodec::kF32) vector_store();
}

void Dataset::set_storage(StorageCodec codec) {
  if (codec == codec_ && !store_dirty_) return;
  codec_ = codec;
  base_norms_.clear();  // quantized norms differ from f32 norms
  store_.encode(base_.data(), num_base(), dim_, codec_);
  store_dirty_ = false;
}

const VectorStore& Dataset::vector_store() const {
  if (store_dirty_ || store_.rows() != num_base()) {
    store_.encode(base_.data(), num_base(), dim_, codec_);
    store_dirty_ = false;
  }
  return store_;
}

std::span<const float> Dataset::base_norms() const {
  const std::size_t n = num_base();
  if (base_norms_.size() != n) {
    // Per-row values, so extending a warm prefix after append_base() is
    // bit-identical to rebuilding from scratch; a stale oversized cache
    // (only possible through mutation paths that already clear it) is
    // rebuilt wholesale.
    if (base_norms_.size() > n) base_norms_.clear();
    std::size_t i = base_norms_.size();
    base_norms_.resize(n);
    if (codec_ == StorageCodec::kF32) {
      for (; i < n; ++i) {
        base_norms_[i] = norm(base_vector(i));
      }
    } else {
      // Norms of the decoded rows: exactly what the quantized kernels
      // recompute when no table is supplied, so the table keeps the
      // batched cosine bitwise-identical to table-free scoring.
      const VectorStore& vs = vector_store();
      std::vector<float> row(dim_);
      for (; i < n; ++i) {
        vs.decode_row(i, row);
        base_norms_[i] = norm(row);
      }
    }
  }
  return base_norms_;
}

float Dataset::score(std::span<const float> q, NodeId id) const {
  if (codec_ == StorageCodec::kF32) {
    return distance(metric_, q, base_vector(id));
  }
  const NodeId ids[1] = {id};
  float out[1];
  distance_batch(q, ids, out);
  return out[0];
}

void Dataset::distance_batch(std::span<const float> query,
                             std::span<const NodeId> ids,
                             std::span<float> out) const {
  const auto norms = metric_ == Metric::kCosine ? base_norms()
                                                : std::span<const float>{};
  switch (codec_) {
    case StorageCodec::kF32:
      algas::distance_batch(metric_, query, base_.data(), dim_, ids, out,
                            norms);
      return;
    case StorageCodec::kF16: {
      const VectorStore& vs = vector_store();
      algas::distance_batch_f16(metric_, query, vs.f16_rows(), dim_, ids, out,
                                norms);
      return;
    }
    case StorageCodec::kInt8: {
      const VectorStore& vs = vector_store();
      algas::distance_batch_i8(metric_, query, vs.i8_rows(),
                               vs.i8_scales().data(), dim_, ids, out, norms);
      return;
    }
  }
}

void Dataset::distance_batch_range(std::span<const float> query,
                                   std::size_t first, std::size_t count,
                                   std::span<float> out) const {
  const auto norms = metric_ == Metric::kCosine ? base_norms()
                                                : std::span<const float>{};
  switch (codec_) {
    case StorageCodec::kF32:
      algas::distance_batch_range(metric_, query, base_.data(), dim_, first,
                                  count, out, norms);
      return;
    case StorageCodec::kF16: {
      const VectorStore& vs = vector_store();
      algas::distance_batch_range_f16(metric_, query, vs.f16_rows(), dim_,
                                      first, count, out, norms);
      return;
    }
    case StorageCodec::kInt8: {
      const VectorStore& vs = vector_store();
      algas::distance_batch_range_i8(metric_, query, vs.i8_rows(),
                                     vs.i8_scales().data(), dim_, first,
                                     count, out, norms);
      return;
    }
  }
}

std::string Dataset::describe() const {
  std::ostringstream out;
  out << name_ << "  n=" << num_base() << " d=" << dim_
      << " metric=" << metric_name(metric_) << " q=" << num_queries();
  if (has_ground_truth()) out << " gt_k=" << gt_k_;
  if (has_attributes()) out << " attrs";
  if (codec_ != StorageCodec::kF32) {
    out << " storage=" << storage_codec_name(codec_);
  }
  return out.str();
}

}  // namespace algas
