#include "dataset/dataset.hpp"

#include <sstream>

#include "distance/kernels.hpp"

namespace algas {

void Dataset::set_storage(StorageCodec codec) {
  if (codec == codec_ && !store_dirty_) return;
  codec_ = codec;
  base_norms_.clear();  // quantized norms differ from f32 norms
  store_.encode(base_.data(), num_base(), dim_, codec_);
  store_dirty_ = false;
}

const VectorStore& Dataset::vector_store() const {
  if (store_dirty_ || store_.rows() != num_base()) {
    store_.encode(base_.data(), num_base(), dim_, codec_);
    store_dirty_ = false;
  }
  return store_;
}

std::span<const float> Dataset::base_norms() const {
  const std::size_t n = num_base();
  if (base_norms_.size() != n) {
    base_norms_.resize(n);
    if (codec_ == StorageCodec::kF32) {
      for (std::size_t i = 0; i < n; ++i) {
        base_norms_[i] = norm(base_vector(i));
      }
    } else {
      // Norms of the decoded rows: exactly what the quantized kernels
      // recompute when no table is supplied, so the table keeps the
      // batched cosine bitwise-identical to table-free scoring.
      const VectorStore& vs = vector_store();
      std::vector<float> row(dim_);
      for (std::size_t i = 0; i < n; ++i) {
        vs.decode_row(i, row);
        base_norms_[i] = norm(row);
      }
    }
  }
  return base_norms_;
}

float Dataset::score(std::span<const float> q, NodeId id) const {
  if (codec_ == StorageCodec::kF32) {
    return distance(metric_, q, base_vector(id));
  }
  const NodeId ids[1] = {id};
  float out[1];
  distance_batch(q, ids, out);
  return out[0];
}

void Dataset::distance_batch(std::span<const float> query,
                             std::span<const NodeId> ids,
                             std::span<float> out) const {
  const auto norms = metric_ == Metric::kCosine ? base_norms()
                                                : std::span<const float>{};
  switch (codec_) {
    case StorageCodec::kF32:
      algas::distance_batch(metric_, query, base_.data(), dim_, ids, out,
                            norms);
      return;
    case StorageCodec::kF16: {
      const VectorStore& vs = vector_store();
      algas::distance_batch_f16(metric_, query, vs.f16_rows(), dim_, ids, out,
                                norms);
      return;
    }
    case StorageCodec::kInt8: {
      const VectorStore& vs = vector_store();
      algas::distance_batch_i8(metric_, query, vs.i8_rows(),
                               vs.i8_scales().data(), dim_, ids, out, norms);
      return;
    }
  }
}

void Dataset::distance_batch_range(std::span<const float> query,
                                   std::size_t first, std::size_t count,
                                   std::span<float> out) const {
  const auto norms = metric_ == Metric::kCosine ? base_norms()
                                                : std::span<const float>{};
  switch (codec_) {
    case StorageCodec::kF32:
      algas::distance_batch_range(metric_, query, base_.data(), dim_, first,
                                  count, out, norms);
      return;
    case StorageCodec::kF16: {
      const VectorStore& vs = vector_store();
      algas::distance_batch_range_f16(metric_, query, vs.f16_rows(), dim_,
                                      first, count, out, norms);
      return;
    }
    case StorageCodec::kInt8: {
      const VectorStore& vs = vector_store();
      algas::distance_batch_range_i8(metric_, query, vs.i8_rows(),
                                     vs.i8_scales().data(), dim_, first,
                                     count, out, norms);
      return;
    }
  }
}

std::string Dataset::describe() const {
  std::ostringstream out;
  out << name_ << "  n=" << num_base() << " d=" << dim_
      << " metric=" << metric_name(metric_) << " q=" << num_queries();
  if (has_ground_truth()) out << " gt_k=" << gt_k_;
  if (codec_ != StorageCodec::kF32) {
    out << " storage=" << storage_codec_name(codec_);
  }
  return out.str();
}

}  // namespace algas
