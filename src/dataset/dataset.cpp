#include "dataset/dataset.hpp"

#include <sstream>

namespace algas {

std::string Dataset::describe() const {
  std::ostringstream out;
  out << name_ << "  n=" << num_base() << " d=" << dim_
      << " metric=" << metric_name(metric_) << " q=" << num_queries();
  if (has_ground_truth()) out << " gt_k=" << gt_k_;
  return out.str();
}

}  // namespace algas
