#include "dataset/io.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>
#include <sys/stat.h>

namespace algas {

namespace {

template <typename T>
std::vector<T> read_xvecs(const std::string& path, std::size_t& dim_out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);

  std::vector<T> rows;
  dim_out = 0;
  std::int32_t dim = 0;
  while (in.read(reinterpret_cast<char*>(&dim), sizeof(dim))) {
    if (dim <= 0) throw std::runtime_error("bad row dimension in " + path);
    if (dim_out == 0) {
      dim_out = static_cast<std::size_t>(dim);
    } else if (dim_out != static_cast<std::size_t>(dim)) {
      throw std::runtime_error("ragged rows in " + path);
    }
    const std::size_t old = rows.size();
    rows.resize(old + static_cast<std::size_t>(dim));
    if (!in.read(reinterpret_cast<char*>(rows.data() + old),
                 static_cast<std::streamsize>(sizeof(T) * dim))) {
      throw std::runtime_error("truncated row in " + path);
    }
  }
  return rows;
}

template <typename T>
void write_xvecs(const std::string& path, const std::vector<T>& data,
                 std::size_t dim) {
  if (dim == 0 || data.size() % dim != 0) {
    throw std::invalid_argument("data size not a multiple of dim");
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open " + path + " for write");
  const auto d32 = static_cast<std::int32_t>(dim);
  const std::size_t rows = data.size() / dim;
  for (std::size_t r = 0; r < rows; ++r) {
    out.write(reinterpret_cast<const char*>(&d32), sizeof(d32));
    out.write(reinterpret_cast<const char*>(data.data() + r * dim),
              static_cast<std::streamsize>(sizeof(T) * dim));
  }
  if (!out) throw std::runtime_error("short write to " + path);
}

constexpr char kMagic[8] = {'A', 'L', 'G', 'A', 'S', 'D', 'S', '1'};
/// Optional attribute trailer after the ground-truth vec. Attribute-free
/// datasets write nothing (their files stay byte-identical to the
/// pre-attribute format), and the loader treats clean EOF here as "no
/// attributes" — so old cache files keep loading.
constexpr char kAttrMagic[8] = {'A', 'L', 'G', 'A', 'S', 'A', 'T', '1'};

template <typename T>
void write_pod(std::ofstream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
void read_pod(std::ifstream& in, T& v) {
  if (!in.read(reinterpret_cast<char*>(&v), sizeof(T))) {
    throw std::runtime_error("truncated dataset file");
  }
}

template <typename T>
void write_vec(std::ofstream& out, const std::vector<T>& v) {
  write_pod(out, static_cast<std::uint64_t>(v.size()));
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
std::vector<T> read_vec(std::ifstream& in) {
  std::uint64_t n = 0;
  read_pod(in, n);
  std::vector<T> v(n);
  if (n > 0 &&
      !in.read(reinterpret_cast<char*>(v.data()),
               static_cast<std::streamsize>(n * sizeof(T)))) {
    throw std::runtime_error("truncated dataset payload");
  }
  return v;
}

}  // namespace

std::vector<float> read_fvecs(const std::string& path, std::size_t& dim_out) {
  return read_xvecs<float>(path, dim_out);
}

std::vector<std::int32_t> read_ivecs(const std::string& path,
                                     std::size_t& dim_out) {
  return read_xvecs<std::int32_t>(path, dim_out);
}

void write_fvecs(const std::string& path, const std::vector<float>& data,
                 std::size_t dim) {
  write_xvecs(path, data, dim);
}

void write_ivecs(const std::string& path,
                 const std::vector<std::int32_t>& data, std::size_t dim) {
  write_xvecs(path, data, dim);
}

void save_dataset(const Dataset& ds, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open " + path + " for write");
  out.write(kMagic, sizeof(kMagic));
  const std::uint64_t name_len = ds.name().size();
  write_pod(out, name_len);
  out.write(ds.name().data(), static_cast<std::streamsize>(name_len));
  write_pod(out, static_cast<std::uint64_t>(ds.dim()));
  write_pod(out, static_cast<std::uint32_t>(ds.metric()));
  write_pod(out, static_cast<std::uint64_t>(ds.gt_k()));
  write_vec(out, ds.base());
  write_vec(out, ds.queries());
  write_vec(out, ds.ground_truth_flat());
  if (ds.has_attributes()) {
    out.write(kAttrMagic, sizeof(kAttrMagic));
    write_vec(out, ds.categories());
    write_vec(out, ds.timestamps());
  }
  if (!out) throw std::runtime_error("short write to " + path);
}

Dataset load_dataset(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  char magic[8];
  if (!in.read(magic, sizeof(magic)) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("not an ALGAS dataset file: " + path);
  }
  std::uint64_t name_len = 0;
  read_pod(in, name_len);
  std::string name(name_len, '\0');
  if (!in.read(name.data(), static_cast<std::streamsize>(name_len))) {
    throw std::runtime_error("truncated dataset name");
  }
  std::uint64_t dim = 0;
  std::uint32_t metric = 0;
  std::uint64_t gt_k = 0;
  read_pod(in, dim);
  read_pod(in, metric);
  read_pod(in, gt_k);

  Dataset ds(name, dim, static_cast<Metric>(metric));
  ds.mutable_base() = read_vec<float>(in);
  ds.mutable_queries() = read_vec<float>(in);
  auto gt = read_vec<NodeId>(in);
  if (gt_k > 0) ds.set_ground_truth(std::move(gt), gt_k);
  char attr_magic[8];
  if (in.read(attr_magic, sizeof(attr_magic))) {
    if (std::memcmp(attr_magic, kAttrMagic, sizeof(kAttrMagic)) != 0) {
      throw std::runtime_error("unknown trailer in dataset file: " + path);
    }
    auto cats = read_vec<std::uint32_t>(in);
    auto ts = read_vec<std::uint32_t>(in);
    ds.set_attributes(std::move(cats), std::move(ts));
  } else if (in.gcount() != 0) {
    // A partial 1-7 byte read is corruption, not an absent trailer.
    throw std::runtime_error("truncated trailer in dataset file: " + path);
  }
  return ds;
}

Dataset load_texmex(const std::string& name, const std::string& base_path,
                    const std::string& query_path, const std::string& gt_path,
                    Metric metric) {
  std::size_t base_dim = 0, query_dim = 0;
  auto base = read_fvecs(base_path, base_dim);
  auto queries = read_fvecs(query_path, query_dim);
  if (base_dim != query_dim) {
    throw std::runtime_error("base/query dimension mismatch: " +
                             std::to_string(base_dim) + " vs " +
                             std::to_string(query_dim));
  }

  Dataset ds(name, base_dim, metric);
  if (metric == Metric::kCosine || metric == Metric::kInnerProduct) {
    for (std::size_t i = 0; i + base_dim <= base.size(); i += base_dim) {
      normalize({base.data() + i, base_dim});
    }
    for (std::size_t i = 0; i + base_dim <= queries.size(); i += base_dim) {
      normalize({queries.data() + i, base_dim});
    }
  }
  ds.mutable_base() = std::move(base);
  ds.mutable_queries() = std::move(queries);

  if (!gt_path.empty()) {
    std::size_t gt_k = 0;
    const auto gt_raw = read_ivecs(gt_path, gt_k);
    std::vector<NodeId> gt(gt_raw.size());
    for (std::size_t i = 0; i < gt_raw.size(); ++i) {
      if (gt_raw[i] < 0 ||
          static_cast<std::size_t>(gt_raw[i]) >= ds.num_base()) {
        throw std::runtime_error("ground-truth id out of range in " + gt_path);
      }
      gt[i] = static_cast<NodeId>(gt_raw[i]);
    }
    if (gt.size() != ds.num_queries() * gt_k) {
      throw std::runtime_error("ground-truth row count mismatch in " +
                               gt_path);
    }
    ds.set_ground_truth(std::move(gt), gt_k);
  }
  return ds;
}

bool file_exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace algas
