// Named bench datasets (Table III stand-ins) with disk caching.
//
// Default scaled sizes keep a full figure reproduction tractable on one CPU
// core; ALGAS_SCALE multiplies them. Real TEXMEX files can be substituted by
// placing fvecs files where load_bench_dataset documents (see README).
//
//   name      paper            here (scale=1)     dim   metric
//   sift      SIFT1M  1M       80,000             128   L2
//   gist      GIST1M  1M       20,000             960   L2
//   glove     GLoVe200 1.18M   80,000             200   Cosine
//   nytimes   NYTimes 0.29M    30,000             256   Cosine
#pragma once

#include <string>
#include <vector>

#include "dataset/dataset.hpp"

namespace algas {

/// Ground-truth depth cached with every bench dataset (recall@k for k<=100).
inline constexpr std::size_t kBenchGtK = 100;

/// All registered bench dataset names, paper order.
std::vector<std::string> bench_dataset_names();

/// Build (or load from ALGAS_CACHE_DIR) the named dataset with ground truth
/// attached. Throws std::invalid_argument for unknown names.
Dataset load_bench_dataset(const std::string& name);

/// As above but with explicit sizes (bypasses the scale env var); used by
/// tests with tiny sizes. Caching is skipped when `use_cache` is false.
Dataset load_bench_dataset_sized(const std::string& name,
                                 std::size_t num_base,
                                 std::size_t num_queries, std::size_t gt_k,
                                 bool use_cache);

}  // namespace algas
