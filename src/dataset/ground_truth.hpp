// Exact k-NN ground truth via multithreaded brute force. Offline work —
// runs on real threads, outside the simulated system.
#pragma once

#include <cstddef>
#include <vector>

#include "dataset/dataset.hpp"
#include "search/accept.hpp"

namespace algas {

/// Exact top-k base ids for one query, ascending by distance.
std::vector<NodeId> brute_force_topk(const Dataset& ds,
                                     std::span<const float> query,
                                     std::size_t k);

/// Exact top-k restricted to rows the predicate accepts. Fewer than k
/// accepted rows yields a shorter list (never padded here).
std::vector<NodeId> brute_force_topk_filtered(
    const Dataset& ds, std::span<const float> query, std::size_t k,
    const search::AcceptPredicate& accept);

/// Compute and attach exact ground truth for all queries of `ds`.
/// `threads` follows the build-thread convention: 0 = ALGAS_BUILD_THREADS
/// (then hardware), 1 = serial. The result is exact either way.
void compute_ground_truth(Dataset& ds, std::size_t k,
                          std::size_t threads = 0);

/// Exact predicate-restricted ground truth for every query: a flat
/// num_queries x k table (row q at [q*k, q*k+k)), padded with kInvalidNode
/// where fewer than k rows are accepted. NOT attached to the dataset —
/// filtered truth is a property of (dataset, predicate), and a run
/// typically sweeps several predicates over one dataset. Score with
/// metrics::recall_against.
std::vector<NodeId> compute_filtered_ground_truth(
    const Dataset& ds, std::size_t k, const search::AcceptPredicate& accept,
    std::size_t threads = 0);

}  // namespace algas
