// Exact k-NN ground truth via multithreaded brute force. Offline work —
// runs on real threads, outside the simulated system.
#pragma once

#include <cstddef>
#include <vector>

#include "dataset/dataset.hpp"

namespace algas {

/// Exact top-k base ids for one query, ascending by distance.
std::vector<NodeId> brute_force_topk(const Dataset& ds,
                                     std::span<const float> query,
                                     std::size_t k);

/// Compute and attach exact ground truth for all queries of `ds`.
/// `threads` follows the build-thread convention: 0 = ALGAS_BUILD_THREADS
/// (then hardware), 1 = serial. The result is exact either way.
void compute_ground_truth(Dataset& ds, std::size_t k,
                          std::size_t threads = 0);

}  // namespace algas
