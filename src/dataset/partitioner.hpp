// Contiguous id-range partition of a base set across K device shards.
//
// Shard s owns global rows [s*n/K, (s+1)*n/K): sizes differ by at most one
// and the mapping in either direction is O(1) arithmetic — a shard-local id
// is the global id minus the shard's range start. Contiguity is what makes
// the per-shard Dataset a cheap row slice and keeps the local->global map a
// single offset add, so mapping a shard's sorted TopK run to global ids
// preserves its (distance, id) order (the offset is monotone within a
// shard).
#pragma once

#include <cstddef>

#include "common/types.hpp"
#include "dataset/dataset.hpp"

namespace algas {

struct ShardRange {
  NodeId begin = 0;  ///< first global id owned (inclusive)
  NodeId end = 0;    ///< one past the last global id owned
};

class ShardPartition {
 public:
  /// Throws std::invalid_argument when shards == 0 or shards > num_base
  /// (every shard must own at least one row — an empty shard could not
  /// build a graph).
  ShardPartition(std::size_t num_base, std::size_t shards);

  std::size_t shards() const { return shards_; }
  std::size_t num_base() const { return num_base_; }

  ShardRange range(std::size_t shard) const;
  std::size_t size(std::size_t shard) const;

  /// Which shard owns a global id.
  std::size_t shard_of(NodeId global) const;

  NodeId to_local(NodeId global) const;
  NodeId to_global(std::size_t shard, NodeId local) const;

 private:
  std::size_t num_base_ = 0;
  std::size_t shards_ = 1;
};

/// Slice one shard's rows out of `ds`: base vectors are the shard's range,
/// queries/metric/storage codec are copied, ground truth is dropped (global
/// neighbor ids are meaningless against shard-local rows — the sharded
/// engine scores recall on the merged global results instead). The name
/// gains a "/shardS" suffix for diagnostics.
Dataset make_shard_dataset(const Dataset& ds, const ShardPartition& part,
                           std::size_t shard);

}  // namespace algas
