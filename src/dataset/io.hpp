// Vector-file IO.
//
// fvecs/ivecs are the TEXMEX formats the paper's datasets ship in
// (http://corpus-texmex.irisa.fr/): each row is [int32 dim][dim elements].
// The `.abin` format is this repo's cache format: a small header followed by
// the raw payload, used to persist datasets / ground truth between bench
// runs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "dataset/dataset.hpp"

namespace algas {

/// Read an fvecs file. Returns row-major floats; `dim_out` receives the
/// (uniform) row dimension. Throws std::runtime_error on malformed input.
std::vector<float> read_fvecs(const std::string& path, std::size_t& dim_out);

/// Read an ivecs file (same layout, int32 payload).
std::vector<std::int32_t> read_ivecs(const std::string& path,
                                     std::size_t& dim_out);

void write_fvecs(const std::string& path, const std::vector<float>& data,
                 std::size_t dim);
void write_ivecs(const std::string& path,
                 const std::vector<std::int32_t>& data, std::size_t dim);

/// Serialize a whole Dataset (base, queries, ground truth) to `path`.
void save_dataset(const Dataset& ds, const std::string& path);

/// Load a Dataset written by save_dataset. Throws on version mismatch.
Dataset load_dataset(const std::string& path);

/// Assemble a Dataset from the TEXMEX file triple the paper's corpora ship
/// as: base fvecs + query fvecs + ground-truth ivecs (row q = ascending
/// nearest base ids for query q). `gt_path` may be empty (no ground truth;
/// compute_ground_truth() can attach one later). Cosine datasets are
/// normalized on load so inner-product search applies.
Dataset load_texmex(const std::string& name, const std::string& base_path,
                    const std::string& query_path, const std::string& gt_path,
                    Metric metric);

bool file_exists(const std::string& path);

}  // namespace algas
