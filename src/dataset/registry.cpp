#include "dataset/registry.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <sstream>
#include <stdexcept>

#include "common/env.hpp"
#include "dataset/ground_truth.hpp"
#include "dataset/io.hpp"
#include "dataset/synthetic.hpp"

namespace algas {

namespace {

struct Entry {
  const char* name;
  SyntheticSpec (*spec_fn)();
  std::size_t base_at_unit_scale;
  std::size_t queries_at_unit_scale;
};

const Entry kEntries[] = {
    {"sift", &sift_like_spec, 80000, 800},
    {"gist", &gist_like_spec, 20000, 400},
    {"glove", &glove_like_spec, 80000, 800},
    {"nytimes", &nytimes_like_spec, 30000, 500},
};

const Entry& find_entry(const std::string& name) {
  for (const auto& e : kEntries) {
    if (name == e.name) return e;
  }
  throw std::invalid_argument("unknown bench dataset: " + name);
}

std::string cache_path(const std::string& name, std::size_t num_base,
                       std::size_t num_queries, std::size_t gt_k) {
  const std::string dir = cache_dir();
  if (dir.empty()) return {};
  std::ostringstream out;
  out << dir << "/" << name << "_v3_n" << num_base << "_q" << num_queries
      << "_k" << gt_k << ".abin";
  return out.str();
}

}  // namespace

std::vector<std::string> bench_dataset_names() {
  std::vector<std::string> names;
  for (const auto& e : kEntries) names.emplace_back(e.name);
  return names;
}

Dataset load_bench_dataset_sized(const std::string& name,
                                 std::size_t num_base,
                                 std::size_t num_queries, std::size_t gt_k,
                                 bool use_cache) {
  const Entry& entry = find_entry(name);

  std::string path;
  if (use_cache) {
    path = cache_path(name, num_base, num_queries, gt_k);
    if (!path.empty() && file_exists(path)) {
      return load_dataset(path);
    }
  }

  SyntheticSpec spec = entry.spec_fn();
  spec.num_base = num_base;
  spec.num_queries = num_queries;
  Dataset ds = make_synthetic(spec);
  compute_ground_truth(ds, gt_k);

  if (use_cache && !path.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(cache_dir(), ec);
    if (!ec) save_dataset(ds, path);
  }
  return ds;
}

Dataset load_bench_dataset(const std::string& name) {
  const Entry& entry = find_entry(name);
  const double scale = dataset_scale();
  const auto num_base = static_cast<std::size_t>(
      std::llround(scale * static_cast<double>(entry.base_at_unit_scale)));
  // ALGAS_QUERIES: 0 / unset keeps the scale-derived bench default.
  const std::size_t queries_knob = RuntimeOptions::from_env().queries;
  auto num_queries =
      queries_knob != 0
          ? queries_knob
          : static_cast<std::size_t>(std::llround(
                scale * static_cast<double>(entry.queries_at_unit_scale)));
  num_queries = std::max<std::size_t>(num_queries, 16);
  return load_bench_dataset_sized(name, std::max<std::size_t>(num_base, 1000),
                                  num_queries, kBenchGtK, true);
}

}  // namespace algas
