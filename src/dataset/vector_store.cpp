#include "dataset/vector_store.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/half.hpp"

namespace algas {

const char* storage_codec_name(StorageCodec c) {
  switch (c) {
    case StorageCodec::kF32: return "f32";
    case StorageCodec::kF16: return "f16";
    case StorageCodec::kInt8: return "int8";
  }
  return "invalid";
}

StorageCodec parse_storage_codec(const std::string& s) {
  if (s == "f32") return StorageCodec::kF32;
  if (s == "f16") return StorageCodec::kF16;
  if (s == "int8") return StorageCodec::kInt8;
  throw std::invalid_argument("unknown storage codec: " + s +
                              " (expected f32|f16|int8)");
}

std::size_t storage_elem_bytes(StorageCodec c) {
  switch (c) {
    case StorageCodec::kF32: return sizeof(float);
    case StorageCodec::kF16: return sizeof(std::uint16_t);
    case StorageCodec::kInt8: return sizeof(std::int8_t);
  }
  return sizeof(float);
}

void VectorStore::encode(const float* base, std::size_t rows, std::size_t dim,
                         StorageCodec codec) {
  codec_ = codec;
  rows_ = rows;
  dim_ = dim;
  f16_.clear();
  i8_.clear();
  scales_.clear();
  switch (codec) {
    case StorageCodec::kF32:
      // Nothing stored: scoring reads the caller's float rows directly.
      f16_.shrink_to_fit();
      i8_.shrink_to_fit();
      scales_.shrink_to_fit();
      return;
    case StorageCodec::kF16: {
      f16_.resize(rows * dim);
      for (std::size_t k = 0; k < rows * dim; ++k) {
        f16_[k] = float_to_half(base[k]);
      }
      return;
    }
    case StorageCodec::kInt8: {
      i8_.resize(rows * dim);
      scales_.resize(rows);
      for (std::size_t r = 0; r < rows; ++r) {
        const float* row = base + r * dim;
        float max_abs = 0.0f;
        for (std::size_t d = 0; d < dim; ++d) {
          max_abs = std::max(max_abs, std::fabs(row[d]));
        }
        // Zero (or all-zero) rows get scale 0 and all-zero codes; the
        // dequantized row is exactly zero either way.
        const float scale = max_abs / 127.0f;
        scales_[r] = scale;
        std::int8_t* q = i8_.data() + r * dim;
        if (scale == 0.0f) {
          std::fill(q, q + dim, std::int8_t{0});
          continue;
        }
        for (std::size_t d = 0; d < dim; ++d) {
          const float v = std::round(row[d] / scale);
          q[d] = static_cast<std::int8_t>(
              std::clamp(v, -127.0f, 127.0f));
        }
      }
      return;
    }
  }
  throw std::invalid_argument("unknown storage codec");
}

void VectorStore::decode_row(std::size_t i, std::span<float> out) const {
  switch (codec_) {
    case StorageCodec::kF32:
      throw std::logic_error("decode_row on an f32 store (nothing encoded)");
    case StorageCodec::kF16: {
      const std::uint16_t* row = f16_.data() + i * dim_;
      for (std::size_t d = 0; d < dim_; ++d) out[d] = half_to_float(row[d]);
      return;
    }
    case StorageCodec::kInt8: {
      const std::int8_t* row = i8_.data() + i * dim_;
      const float scale = scales_[i];
      for (std::size_t d = 0; d < dim_; ++d) {
        out[d] = scale * static_cast<float>(row[d]);
      }
      return;
    }
  }
}

std::size_t VectorStore::encoded_bytes() const {
  return f16_.size() * sizeof(std::uint16_t) + i8_.size() +
         scales_.size() * sizeof(float);
}

}  // namespace algas
