// Synthetic dataset generators standing in for the paper's Table III corpora
// (SIFT1M, GIST1M, GLoVe200, NYTimes — see DESIGN.md substitution table).
//
// Each generator matches the real dataset's dimension and metric and mimics
// its cluster structure with a Gaussian mixture: `clusters` centers drawn
// uniformly in [0,1]^d, points drawn around a center with per-cluster spread.
// Queries are drawn from the same mixture (plus extra noise) so their
// difficulty — and hence the search-step skew of Figs 1/2 — varies the same
// way real query sets do. Cosine datasets are L2-normalized.
#pragma once

#include <cstddef>
#include <cstdint>

#include "dataset/dataset.hpp"

namespace algas {

struct SyntheticSpec {
  std::string name = "synthetic";
  std::size_t num_base = 10000;
  std::size_t num_queries = 100;
  std::size_t dim = 32;
  Metric metric = Metric::kL2;
  std::size_t clusters = 64;
  /// Cluster radius relative to the unit cube; bigger = more overlap =
  /// harder dataset. Per-cluster radii are jittered by ±50% so some regions
  /// are dense and some sparse (this drives query-step variance).
  double spread = 0.08;
  /// Extra noise added to queries on top of the mixture draw.
  double query_noise = 0.04;
  /// Fraction of queries drawn uniformly (far from any cluster) to create
  /// the long-step tail the paper observes.
  double outlier_query_fraction = 0.05;
  /// Fraction of base points drawn uniformly between clusters. Real
  /// descriptor corpora are not separable mixtures; this connective tissue
  /// is what makes kNN graphs navigable (and IVF imperfect), as on real
  /// data.
  double background_fraction = 0.10;
  std::uint64_t seed = 42;
};

/// Per-row filter attributes for the filtered-search path: a category label
/// (uniform over `categories` values) and a timestamp (uniform over
/// [0, timestamp_range)). Thresholding timestamps gives any selectivity
/// tier ("rows newer than T"); equality on categories gives ~1/categories.
struct AttributeSpec {
  std::size_t categories = 16;
  std::uint32_t timestamp_range = 1u << 20;
  std::uint64_t seed = 0xA77;
};

/// Attach synthetic (category, timestamp) attributes to every base row.
/// Deliberately STATELESS per row — splitmix64 of (seed, row id), never the
/// sequential generator stream — so attaching attributes cannot perturb
/// the vectors (all pinned baselines stay valid) and row i's attributes
/// are the same whether generated for 10k or 100k rows.
void attach_synthetic_attributes(Dataset& ds, const AttributeSpec& spec = {});

/// Generate base + query vectors per `spec`, with synthetic attributes
/// attached (default AttributeSpec). Ground truth is NOT computed here
/// (see ground_truth.hpp) so callers can cache it separately.
Dataset make_synthetic(const SyntheticSpec& spec);

/// Table III stand-ins at unit scale (see registry.hpp for scaled sizes).
SyntheticSpec sift_like_spec();     ///< d=128, L2
SyntheticSpec gist_like_spec();     ///< d=960, L2
SyntheticSpec glove_like_spec();    ///< d=200, cosine
SyntheticSpec nytimes_like_spec();  ///< d=256, cosine

}  // namespace algas
