// Quantized base-vector storage (SoA rows) — the codec layer under Dataset.
//
// Three codecs over the same row-major layout:
//   f32  — today's flat float rows; the store holds nothing and every
//          caller reads the Dataset's own float array (bit-identical path).
//   f16  — IEEE binary16 rows, round-to-nearest-even on encode
//          (common/half.hpp); 2 bytes/element, exact dequantization.
//   int8 — per-row symmetric scale quantization: scale = max|row|/127,
//          q = round(v/scale) clamped to [-127,127], dequant v' = q*scale;
//          1 byte/element + one float scale per row.
//
// Scoring NEVER materializes decoded rows: the batched kernels dequantize
// in-register (distance/kernels.hpp), so a quantized distance is bitwise
// equal to decoding the row and running the f32 kernel — decode_row exists
// for tests, norms, and tooling, not for the hot path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace algas {

enum class StorageCodec : std::uint8_t {
  kF32 = 0,  ///< native float rows (bit-identical fast path)
  kF16,      ///< IEEE binary16 rows
  kInt8,     ///< int8 rows with a per-row symmetric scale
};

/// Short stable name ("f32", "f16", "int8") — used by the CLI flag, the
/// bench knob, cache keys, traces, and the recall-gate JSON.
const char* storage_codec_name(StorageCodec c);

/// Parse a codec name; throws std::invalid_argument on anything else.
StorageCodec parse_storage_codec(const std::string& s);

/// Bytes per stored element under the codec (4 / 2 / 1).
std::size_t storage_elem_bytes(StorageCodec c);

/// Encoded row storage for one codec. Empty (rows()==0) until encode().
class VectorStore {
 public:
  VectorStore() = default;

  /// Re-encode `rows` rows of `dim` floats from `base` under `codec`.
  /// f32 releases all storage (the caller keeps scoring its float array).
  void encode(const float* base, std::size_t rows, std::size_t dim,
              StorageCodec codec);

  StorageCodec codec() const { return codec_; }
  std::size_t rows() const { return rows_; }
  std::size_t dim() const { return dim_; }
  std::size_t elem_bytes() const { return storage_elem_bytes(codec_); }

  /// Encoded-row accessors (valid for the matching codec only).
  const std::uint16_t* f16_rows() const { return f16_.data(); }
  const std::int8_t* i8_rows() const { return i8_.data(); }
  /// Per-row dequantization scales (int8 codec; empty otherwise).
  std::span<const float> i8_scales() const { return scales_; }

  /// Decode row `i` into `out` (size >= dim). Produces exactly the floats
  /// the scoring kernels dequantize in-register. f32 decode is invalid —
  /// the store holds nothing for it.
  void decode_row(std::size_t i, std::span<float> out) const;

  /// Total bytes held by the encoded representation (diagnostics).
  std::size_t encoded_bytes() const;

 private:
  StorageCodec codec_ = StorageCodec::kF32;
  std::size_t rows_ = 0;
  std::size_t dim_ = 0;
  std::vector<std::uint16_t> f16_;
  std::vector<std::int8_t> i8_;
  std::vector<float> scales_;
};

}  // namespace algas
