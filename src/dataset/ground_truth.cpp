#include "dataset/ground_truth.hpp"

#include <algorithm>
#include <queue>
#include <utility>

#include "common/thread_pool.hpp"

namespace algas {

std::vector<NodeId> brute_force_topk(const Dataset& ds,
                                     std::span<const float> query,
                                     std::size_t k) {
  using Entry = std::pair<float, NodeId>;  // max-heap on distance
  std::priority_queue<Entry> heap;
  const std::size_t n = ds.num_base();
  // Batched range scans; the heap consumes scores in id order, exactly as
  // the scalar loop did.
  constexpr std::size_t kChunk = 256;
  std::vector<float> dists(std::min(n, kChunk));
  for (std::size_t begin = 0; begin < n; begin += kChunk) {
    const std::size_t len = std::min(kChunk, n - begin);
    ds.distance_batch_range(query, begin, len, dists);
    for (std::size_t j = 0; j < len; ++j) {
      const float d = dists[j];
      const auto i = static_cast<NodeId>(begin + j);
      if (heap.size() < k) {
        heap.emplace(d, i);
      } else if (d < heap.top().first) {
        heap.pop();
        heap.emplace(d, i);
      }
    }
  }
  std::vector<NodeId> out(heap.size());
  for (std::size_t i = heap.size(); i-- > 0;) {
    out[i] = heap.top().second;
    heap.pop();
  }
  return out;
}

std::vector<NodeId> brute_force_topk_filtered(
    const Dataset& ds, std::span<const float> query, std::size_t k,
    const search::AcceptPredicate& accept) {
  using Entry = std::pair<float, NodeId>;  // max-heap on distance
  std::priority_queue<Entry> heap;
  const std::size_t n = ds.num_base();
  constexpr std::size_t kChunk = 256;
  std::vector<float> dists(std::min(n, kChunk));
  for (std::size_t begin = 0; begin < n; begin += kChunk) {
    const std::size_t len = std::min(kChunk, n - begin);
    ds.distance_batch_range(query, begin, len, dists);
    for (std::size_t j = 0; j < len; ++j) {
      const auto i = static_cast<NodeId>(begin + j);
      if (!accept.accepts(i)) continue;
      const float d = dists[j];
      if (heap.size() < k) {
        heap.emplace(d, i);
      } else if (d < heap.top().first) {
        heap.pop();
        heap.emplace(d, i);
      }
    }
  }
  std::vector<NodeId> out(heap.size());
  for (std::size_t i = heap.size(); i-- > 0;) {
    out[i] = heap.top().second;
    heap.pop();
  }
  return out;
}

std::vector<NodeId> compute_filtered_ground_truth(
    const Dataset& ds, std::size_t k, const search::AcceptPredicate& accept,
    std::size_t threads) {
  const std::size_t q = ds.num_queries();
  k = std::min(k, ds.num_base());
  std::vector<NodeId> gt(q * k, kInvalidNode);
  if (ds.storage() != StorageCodec::kF32) ds.vector_store();
  if (ds.metric() == Metric::kCosine) ds.base_norms();
  BuildExecutor exec(threads);
  exec.parallel_for(q, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      auto topk = brute_force_topk_filtered(ds, ds.query(i), k, accept);
      std::copy(topk.begin(), topk.end(), gt.begin() + i * k);
    }
  });
  return gt;
}

void compute_ground_truth(Dataset& ds, std::size_t k, std::size_t threads) {
  const std::size_t q = ds.num_queries();
  k = std::min(k, ds.num_base());
  std::vector<NodeId> gt(q * k, kInvalidNode);
  // Warm the lazily-built caches before forking: the norm table (cosine)
  // and the encoded store (quantized codecs) are not thread-safe on first
  // touch.
  if (ds.storage() != StorageCodec::kF32) ds.vector_store();
  if (ds.metric() == Metric::kCosine) ds.base_norms();
  BuildExecutor exec(threads);
  exec.parallel_for(q, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      auto topk = brute_force_topk(ds, ds.query(i), k);
      std::copy(topk.begin(), topk.end(), gt.begin() + i * k);
    }
  });
  ds.set_ground_truth(std::move(gt), k);
}

}  // namespace algas
