#include "dataset/synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.hpp"

namespace algas {

namespace {

struct Mixture {
  std::vector<float> centers;  // clusters x dim
  std::vector<float> radius;   // per cluster
  std::size_t dim;

  std::span<const float> center(std::size_t c) const {
    return {centers.data() + c * dim, dim};
  }
};

Mixture make_mixture(const SyntheticSpec& spec, Rng& rng) {
  Mixture m;
  m.dim = spec.dim;
  m.centers.resize(spec.clusters * spec.dim);
  m.radius.resize(spec.clusters);
  for (auto& v : m.centers) v = rng.next_float();
  for (auto& r : m.radius) {
    // Jitter radius in [0.5, 1.5] x spread: dense and sparse regions.
    r = static_cast<float>(spec.spread * (0.5 + rng.next_double()));
  }
  return m;
}

void draw_point(const Mixture& m, Rng& rng, std::size_t cluster,
                double extra_noise, float* out) {
  const auto c = m.center(cluster);
  const float r = m.radius[cluster];
  for (std::size_t d = 0; d < m.dim; ++d) {
    out[d] = c[d] + r * rng.next_gaussian() +
             static_cast<float>(extra_noise) * rng.next_gaussian();
  }
}

void draw_uniform(std::size_t dim, Rng& rng, float* out) {
  for (std::size_t d = 0; d < dim; ++d) out[d] = rng.next_float();
}

}  // namespace

Dataset make_synthetic(const SyntheticSpec& spec) {
  Rng rng(spec.seed);
  Mixture mix = make_mixture(spec, rng);

  Dataset ds(spec.name, spec.dim, spec.metric);
  auto& base = ds.mutable_base();
  base.resize(spec.num_base * spec.dim);
  for (std::size_t i = 0; i < spec.num_base; ++i) {
    if (rng.next_double() < spec.background_fraction) {
      draw_uniform(spec.dim, rng, base.data() + i * spec.dim);
      continue;
    }
    // Zipf-ish cluster popularity: u^1.5 skews mass toward low cluster
    // ids, creating denser hubs like real corpora have (a full square
    // makes hub regions so dense that per-query scan costs explode).
    const double u = rng.next_double();
    const auto cluster = static_cast<std::size_t>(
        u * std::sqrt(u) * static_cast<double>(spec.clusters));
    draw_point(mix, rng, std::min(cluster, spec.clusters - 1), 0.0,
               base.data() + i * spec.dim);
  }

  auto& queries = ds.mutable_queries();
  queries.resize(spec.num_queries * spec.dim);
  for (std::size_t i = 0; i < spec.num_queries; ++i) {
    float* out = queries.data() + i * spec.dim;
    if (rng.next_double() < spec.outlier_query_fraction) {
      draw_uniform(spec.dim, rng, out);
    } else {
      const auto cluster = rng.next_below(spec.clusters);
      draw_point(mix, rng, cluster, spec.query_noise, out);
    }
  }

  if (spec.metric == Metric::kCosine || spec.metric == Metric::kInnerProduct) {
    for (std::size_t i = 0; i < spec.num_base; ++i) {
      normalize({base.data() + i * spec.dim, spec.dim});
    }
    for (std::size_t i = 0; i < spec.num_queries; ++i) {
      normalize({queries.data() + i * spec.dim, spec.dim});
    }
  }
  // Attributes last, from their own stateless hash stream: the sequential
  // rng above must see exactly the draws it always has, or every pinned
  // vector (and with them all recall baselines) would change.
  attach_synthetic_attributes(ds);
  return ds;
}

void attach_synthetic_attributes(Dataset& ds, const AttributeSpec& spec) {
  const std::size_t n = ds.num_base();
  std::vector<std::uint32_t> cats(n), ts(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Two independent lanes off one (seed, id) hash chain; the salts keep
    // category and timestamp decorrelated.
    const std::uint64_t h = splitmix64(spec.seed ^ (0x9e3779b97f4a7c15ULL +
                                                    static_cast<std::uint64_t>(i)));
    cats[i] = static_cast<std::uint32_t>(
        splitmix64(h ^ 0xC47E60121ULL) %
        static_cast<std::uint64_t>(std::max<std::size_t>(spec.categories, 1)));
    ts[i] = static_cast<std::uint32_t>(
        splitmix64(h ^ 0x7157A3BULL) %
        static_cast<std::uint64_t>(std::max<std::uint32_t>(spec.timestamp_range, 1)));
  }
  ds.set_attributes(std::move(cats), std::move(ts));
}

SyntheticSpec sift_like_spec() {
  SyntheticSpec s;
  s.name = "SIFT-like";
  s.dim = 128;
  s.metric = Metric::kL2;
  s.clusters = 200;
  s.spread = 0.10;
  s.seed = 0x51F7;
  return s;
}

SyntheticSpec gist_like_spec() {
  SyntheticSpec s;
  s.name = "GIST-like";
  s.dim = 960;
  s.metric = Metric::kL2;
  s.clusters = 120;
  s.spread = 0.08;
  s.seed = 0x6157;
  return s;
}

SyntheticSpec glove_like_spec() {
  SyntheticSpec s;
  s.name = "GloVe-like";
  s.dim = 200;
  s.metric = Metric::kCosine;
  s.clusters = 160;
  s.spread = 0.12;
  s.seed = 0x6107E;
  return s;
}

SyntheticSpec nytimes_like_spec() {
  SyntheticSpec s;
  s.name = "NYTimes-like";
  s.dim = 256;
  s.metric = Metric::kCosine;
  s.clusters = 100;
  s.spread = 0.11;
  s.seed = 0x217;
  return s;
}

}  // namespace algas
