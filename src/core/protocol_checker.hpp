// ProtocolChecker — slot-protocol verification over the SimCheck layer.
//
// Watches every StateSync access and enforces, per state word:
//   * Fig 5 transition legality (None->Work->Finish->Done->{Work,Quit}).
//   * Fig 9 single-writer ownership: a write by the side that does not own
//     the word's current state is reported as a race. Combined with the
//     per-side virtual-time monotonicity check this is a happens-before
//     detector over state words: two actors of one side touching the same
//     word out of virtual-time order cannot hide behind the deterministic
//     event loop.
//   * §V-A channel conservation: mirrored-mode polls must generate zero
//     channel transactions; every state write-through must appear exactly
//     once in the channel's kStateWrite transaction count.
//   * Drain hygiene: when the event queue drains while any word is not in
//     Quit, every stuck slot is reported with its per-word event trace.
//
// The checker is a pure observer (never charges virtual time) and fails
// fast through SimCheck::fail.
//
// Note on cross-side timestamps: the substrate publishes a state change at
// the writer's event time while charging the write's cost to the writer's
// elapsed-time cursor, so a reader may legitimately observe a state before
// the writer's charged completion stamp. Happens-before is therefore
// checked per side (where stamps are totally ordered), and cross-side
// ordering is checked structurally via the ownership hand-off.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/slot.hpp"
#include "simgpu/channel.hpp"
#include "simgpu/checker.hpp"

namespace algas::core {

class StateSync;

class ProtocolChecker {
 public:
  /// Registers itself as `check`'s drain hook; the destructor unregisters.
  ProtocolChecker(sim::SimCheck* check, StateSync* sync,
                  sim::Channel* channel);
  ~ProtocolChecker();

  ProtocolChecker(const ProtocolChecker&) = delete;
  ProtocolChecker& operator=(const ProtocolChecker&) = delete;

  /// StateSync read hook (after any channel traffic was issued).
  void on_read(Side side, SimTime t, std::size_t slot, std::size_t cta,
               SlotState observed);

  /// StateSync write hook, called BEFORE the transition is applied or any
  /// traffic issued — an illegal write reports before its side effects.
  void pre_write(Side side, SimTime t, std::size_t slot, std::size_t cta,
                 SlotState from, SlotState to);

  /// StateSync write hook after the transition and its write-through.
  void post_write(Side side, SimTime t, std::size_t slot, std::size_t cta,
                  SlotState to);

  /// When set, a natural event-queue drain with any word not in Quit is a
  /// deadlock violation (engines expect full retirement before drain).
  void expect_full_drain(bool on) { expect_full_drain_ = on; }
  void on_drain(SimTime t);

  /// Closing audit after Simulation::run(): channel conservation balance
  /// and write-count parity against StateSync's transition counter.
  void finalize(SimTime t);

  std::uint64_t writes_observed() const { return writes_observed_; }
  std::uint64_t reads_observed() const { return reads_observed_; }

 private:
  struct WordState {
    SimTime last_host_ns = -1.0;    ///< last host access stamp (per-side HB)
    SimTime last_device_ns = -1.0;  ///< last device access stamp
    SimTime last_write_ns = -1.0;
    Side last_writer = Side::kNone;
    int host_seen = -1;    ///< last state the host observed (edge tracing)
    int device_seen = -1;  ///< last state the device observed
  };

  static std::string word_key(std::size_t slot, std::size_t cta);
  WordState& word(std::size_t slot, std::size_t cta);
  /// Per-side virtual-time monotonicity on one word.
  void check_side_order(Side side, SimTime t, std::size_t slot,
                        std::size_t cta, const char* op);
  /// Compare the channel's state-traffic counters with the expected model.
  void audit_channel(SimTime t, std::size_t slot, std::size_t cta,
                     const char* op);

  sim::SimCheck* check_;
  StateSync* sync_;
  sim::Channel* channel_;
  std::vector<WordState> words_;
  std::uint64_t base_polls_ = 0;   ///< channel counters at construction
  std::uint64_t base_writes_ = 0;
  std::uint64_t expected_polls_ = 0;
  std::uint64_t expected_writes_ = 0;
  std::uint64_t writes_observed_ = 0;
  std::uint64_t reads_observed_ = 0;
  bool expect_full_drain_ = false;
};

}  // namespace algas::core
