// Mutable serving index — streaming insert/delete under live queries.
//
// The deterministic batch-at-a-time builder (PR 5) is the unit of
// mutability: a "live" insert batch is exactly an offline build batch
// applied against the serving graph's frozen prefix. The lifecycle splits
// the builder's two phases across the reader/writer boundary:
//
//   stage()    writer   append rows to the dataset; extend/warm every
//                       derived cache (norms, encoded store) and drop
//                       ground truth while holding exclusive access — the
//                       insert half of the epoch hand-off. The graph does
//                       not grow yet, so the serving view stays frozen.
//   prepare()  READER   phase 1: per-row beam searches against the frozen
//                       prefix [0, published), fanned out on the
//                       BuildExecutor. Runs concurrently with serve() —
//                       both only read published state.
//   apply()    writer   phase 2: grow the graph and apply the batch's
//                       links serially in insertion-id order (the
//                       byte-identity guarantee: the published graph is
//                       independent of thread count and of how inserts
//                       interleaved with queries), recompute the entry
//                       point over the published prefix, bump the epoch.
//
// Deletion tombstones a node (TombstoneSet): it keeps routing traversals
// but the accept step excludes it from results. compact() reclaims: live
// rows remap down in id order, rows that lost dead neighbors re-select
// over their live 2-hop neighborhood, and the tombstone epoch bump retires
// every mark in O(1) — the VisitedTable generation trick applied to
// reclamation.
//
// MutationChecker is the dynamic half of the single-writer story — the
// ProtocolChecker discipline (core/protocol_checker.hpp) extended to the
// streaming path: writer sections (stage/apply/remove/compact) must be
// exclusive; reader sections (serve/prepare) may overlap each other but
// never a writer. Violations throw immediately. The static half is the
// ALGAS_GUARDED_BY_EPOCH(MutableIndex) owner lists below, enforced by
// tools/algas_lint.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/ownership.hpp"
#include "core/engine.hpp"
#include "dataset/dataset.hpp"
#include "graph/builder.hpp"
#include "graph/graph.hpp"
#include "graph/tombstones.hpp"

namespace algas::core {

/// Dynamic single-writer checker for the streaming path. Not a lock: like
/// ProtocolChecker it VERIFIES the discipline (and fails fast on a
/// violation) rather than serializing callers — the protocol itself must
/// keep writers exclusive.
class MutationChecker {
 public:
  MutationChecker() = default;
  /// Movable so index factories (MutableIndex::load) can return by value.
  /// Moving while any section is active would already be a protocol
  /// violation, so the moved-to checker simply starts idle.
  MutationChecker(MutationChecker&&) noexcept {}
  MutationChecker& operator=(MutationChecker&&) noexcept { return *this; }

  void reader_enter(const char* section);
  void reader_exit();
  void writer_enter(const char* section);
  void writer_exit();

 private:
  std::atomic<int> readers_{0};
  std::atomic<int> writers_{0};
};

class ReadSection {
 public:
  ReadSection(MutationChecker& c, const char* section) : c_(c) {
    c_.reader_enter(section);
  }
  ~ReadSection() { c_.reader_exit(); }
  ReadSection(const ReadSection&) = delete;
  ReadSection& operator=(const ReadSection&) = delete;

 private:
  MutationChecker& c_;
};

class WriteSection {
 public:
  WriteSection(MutationChecker& c, const char* section) : c_(c) {
    c_.writer_enter(section);
  }
  ~WriteSection() { c_.writer_exit(); }
  WriteSection(const WriteSection&) = delete;
  WriteSection& operator=(const WriteSection&) = delete;

 private:
  MutationChecker& c_;
};

/// One live batch mid-flight between prepare() and apply(). Opaque to
/// callers; holds the phase-1 beam results for rows [first, first+count).
struct StagedBatch {
  std::size_t first = 0;
  std::size_t count = 0;
  std::vector<std::vector<std::pair<float, NodeId>>> found;
  std::vector<std::size_t> scored;
  bool prepared = false;
};

/// Mirrors BuildReport's accounting for the streamed path.
struct InsertReport {
  std::size_t inserted = 0;
  std::size_t batches = 0;
  std::size_t scored_points = 0;
  double virtual_build_ns = 0.0;
  double serial_build_ns = 0.0;

  InsertReport& operator+=(const InsertReport& o) {
    inserted += o.inserted;
    batches += o.batches;
    scored_points += o.scored_points;
    virtual_build_ns += o.virtual_build_ns;
    serial_build_ns += o.serial_build_ns;
    return *this;
  }
};

struct CompactReport {
  std::size_t dropped = 0;   ///< tombstoned rows reclaimed
  std::size_t survivors = 0; ///< live rows after the remap
  std::size_t patched = 0;   ///< rows re-selected after losing dead edges
};

class MutableIndex {
 public:
  /// Adopt an existing dataset + graph (e.g. from build_graph). The graph
  /// must cover exactly the dataset's rows; its degree overrides
  /// cfg.degree so streamed batches extend the same structure.
  MutableIndex(Dataset ds, Graph g, BuildConfig cfg);
  /// Start empty: a dataset with no base rows yet (queries are fine) and a
  /// zero-node graph of cfg.degree. The first insert() bootstraps exactly
  /// like the offline builder's first batch.
  MutableIndex(Dataset ds, BuildConfig cfg);

  const Dataset& dataset() const { return ds_; }
  const Graph& graph() const { return graph_; }
  const TombstoneSet& tombstones() const { return tombstones_; }
  const BuildConfig& config() const { return cfg_; }

  /// Rows the serving graph covers (== graph().num_nodes()).
  std::size_t published() const { return published_; }
  /// Staged rows awaiting prepare/apply.
  std::size_t pending() const { return ds_.num_base() - published_; }
  /// Published and not tombstoned — what a query can actually return.
  std::size_t live() const { return published_ - tombstones_.count(); }
  /// Bumped on every publish (apply/compact); readers key caches off it.
  std::uint64_t epoch() const { return epoch_; }

  /// Writer: append rows (a multiple of dim floats) and reconcile every
  /// dataset cache under exclusive access. Returns rows staged.
  std::size_t stage(std::span<const float> rows);

  /// Reader: run phase 1 for the next `max_rows` staged rows (0 = one
  /// cfg.insert_batch). Safe concurrently with serve() — the searches only
  /// read the frozen prefix. Returns an empty batch when nothing pends.
  StagedBatch prepare_next(std::size_t max_rows = 0);

  /// Writer: phase 2 for a prepared batch — grow, link serially in
  /// insertion-id order, recompute the entry point, publish. Batches must
  /// apply in stage order (batch.first == published()).
  InsertReport apply(StagedBatch& batch);

  /// Convenience: stage + {prepare_next, apply} until drained. With all
  /// rows inserted in one call and the same BuildConfig, an index streamed
  /// from empty is byte-identical to build_nsw over the final dataset.
  InsertReport insert(std::span<const float> rows);

  /// Writer: tombstone a published node. Returns false if already deleted.
  /// The node keeps routing searches; it just stops surfacing in results.
  bool remove(NodeId v);

  /// Writer: reclaim tombstoned rows. Live rows remap down in id order
  /// (order-preserving), rows that lost a dead neighbor re-select over
  /// their live neighbors plus the dead neighbors' live neighbors (2-hop
  /// patch, serial in new-id order), the entry point recomputes, and the
  /// tombstone generation bump retires every mark in O(1). Requires no
  /// pending staged rows.
  CompactReport compact();

  /// Reader: serve the dataset's first `num_queries` queries through an
  /// AlgasEngine over the published graph, with this index's tombstones
  /// wired into the accept step. Concurrent with prepare_next(). Returns
  /// an empty report while nothing is published.
  EngineReport serve(AlgasConfig cfg, std::size_t num_queries) const;

  /// Snapshot: graph + tombstones + epoch ("ALGASMX1"). The dataset
  /// serializes separately (it already has a format); load() re-pairs
  /// them and validates the sizes agree. Requires no pending rows.
  void save(const std::string& path) const;
  static MutableIndex load(const std::string& path, Dataset ds,
                           BuildConfig cfg);

 private:
  static Dataset require_empty(Dataset ds);
  InsertReport link_batch(const StagedBatch& batch);

  /// Published state: written only inside WriteSection-guarded members of
  /// this class (the static owner list matching MutationChecker's dynamic
  /// rules).
  Dataset ds_ ALGAS_GUARDED_BY_EPOCH(MutableIndex);
  Graph graph_ ALGAS_GUARDED_BY_EPOCH(MutableIndex);
  TombstoneSet tombstones_ ALGAS_GUARDED_BY_EPOCH(MutableIndex);
  BuildConfig cfg_;
  std::size_t published_ ALGAS_GUARDED_BY_EPOCH(MutableIndex) = 0;
  std::uint64_t epoch_ ALGAS_GUARDED_BY_EPOCH(MutableIndex) = 0;
  mutable MutationChecker checker_;
};

}  // namespace algas::core
