// Adaptive GPU parameter tuning (§IV-C).
//
// Given the device limits and a search configuration, pick N_parallel (CTAs
// per query / slot) and the per-block shared-memory budget so that every
// slot's CTAs are simultaneously resident:
//
//   N_parallel * slots <= N_SM * N_max_block_per_SM
//   N_block_per_SM      = align(N_parallel * slots / N_SM)
//   M_avail_per_block  <= M_per_SM / N_block_per_SM - M_reserved_per_block
//
// Threads per block are fixed at one warp "to facilitate management and
// shuffle operations".
#pragma once

#include <cstddef>
#include <string>

#include "simgpu/device_props.hpp"
#include "simgpu/shared_memory.hpp"

namespace algas::core {

struct TuneInput {
  sim::DeviceProps device;
  std::size_t slots = 16;               ///< dynamic batch size
  sim::SharedMemoryLayout layout;       ///< per-CTA shared-memory need
  /// Requested CTAs per query; 0 = maximize under the constraints.
  std::size_t requested_parallel = 0;
  /// Extra shared memory reserved per block as runtime cache; 0 = auto
  /// (scales with dimension, §IV-C).
  std::size_t reserved_per_block = 0;
};

struct TunePlan {
  bool ok = false;
  std::string reason;                   ///< why tuning failed / succeeded
  std::size_t n_parallel = 0;           ///< CTAs per slot
  std::size_t total_ctas = 0;           ///< n_parallel * slots
  std::size_t blocks_per_sm = 0;        ///< aligned residency per SM
  std::size_t threads_per_block = 0;    ///< = warp size
  std::size_t avail_per_block = 0;      ///< shared-memory ceiling honoured
  std::size_t reserved_per_block = 0;   ///< runtime cache actually reserved
  std::size_t shared_mem_per_block = 0; ///< layout bytes actually used

  std::string describe() const;
};

/// Compute the tuning plan. Never throws; inspect plan.ok.
TunePlan tune(const TuneInput& in);

/// The automatic runtime-cache reservation for a given dimension.
std::size_t auto_reserved_bytes(std::size_t dim);

}  // namespace algas::core
