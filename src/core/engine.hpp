// AlgasEngine — the paper's system (Fig 6): dynamic batching over slot state
// machines, a persistent kernel of multi-CTA searchers with beam extend, a
// host side that merges TopK and recycles slots, optional state mirroring,
// and adaptive tuning. Executes on the simulated GPU substrate; results are
// functionally real, timing is virtual.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/query_manager.hpp"
#include "core/tuner.hpp"
#include "dataset/dataset.hpp"
#include "graph/graph.hpp"
#include "metrics/collector.hpp"
#include "search/intra_cta.hpp"
#include "simgpu/channel.hpp"
#include "simgpu/checker.hpp"
#include "simgpu/cost_model.hpp"
#include "simgpu/device_props.hpp"

namespace algas::sim {
class Simulation;
}  // namespace algas::sim

namespace algas::core {

/// How the host learns that a slot finished (§V-A).
enum class HostSync : std::uint8_t {
  kPollNaive = 0,   ///< host polls device-resident states across the channel
  kPollMirrored,    ///< GDRCopy-style local mirrors; polls are free of PCIe
  kBlocking,        ///< no polling: completion interrupts wake the host
};

const char* host_sync_name(HostSync s);

struct AlgasConfig {
  search::SearchConfig search;
  /// Number of slots — the dynamic batch size.
  std::size_t slots = 16;
  /// Host worker threads; each owns slots/host_threads slots with a private
  /// IO stream (§V-B).
  std::size_t host_threads = 1;
  /// CTAs per slot; 0 lets the adaptive tuner maximize it (§IV-C).
  std::size_t n_parallel = 0;
  /// §V-A synchronization scheme. The paper's choice is mirrored polling;
  /// naive polling and blocking exist for the ablations.
  HostSync host_sync = HostSync::kPollMirrored;
  sim::DeviceProps device = sim::DeviceProps::rtx_a6000();
  sim::CostModel cost;
  std::uint64_t seed = 1;
  /// Admission control for the host queue (serving layer). The default
  /// keeps the queue unbounded, which preserves the classic byte-identical
  /// path: arrivals are pre-loaded into the QueryManager at wiring time. A
  /// bounded capacity instead routes arrivals through an admission actor at
  /// their arrival instants, so occupancy is measured when each capacity
  /// decision is made; queries shed by the policy produce a QueryRecord
  /// with a non-served disposition (goodput/shed-rate accounting) and the
  /// run still delivers exactly one record per arrival.
  AdmissionConfig admission;
  /// Optional SimCheck verification layer (not owned). Null means
  /// unchecked — unless the build (ALGAS_SIMCHECK CMake option) or the
  /// ALGAS_SIMCHECK environment variable turns checking on by default, in
  /// which case each run constructs a private checker. The checker never
  /// charges virtual time, so checked and unchecked runs produce identical
  /// latency/throughput numbers.
  sim::SimCheck* checker = nullptr;
  /// Optional SimTrace timeline sink (not owned). Null falls back to the
  /// process-wide ALGAS_TRACE tracer (sim::default_tracer()); null there
  /// too means untraced. Like the checker, tracing never charges virtual
  /// time — traced and untraced runs are bit-identical in every measured
  /// quantity, including sim_events and the bench TSV.
  sim::Tracer* tracer = nullptr;
};

/// Number of 64-bit visited-bitmap words one CTA clears at start of query:
/// the ceil_div(num_base, 64)-word bitmap is split evenly across the
/// slot's n_parallel CTAs (§IV-B step 1).
std::size_t visited_clear_words(std::size_t num_base, std::size_t n_parallel);

/// Common result shape for all engines (ALGAS and baselines).
struct EngineReport {
  metrics::Collector collector;
  metrics::RunSummary summary;
  /// Base-row storage codec the run scored against (f32/f16/int8).
  StorageCodec storage = StorageCodec::kF32;
  double recall = 0.0;            ///< mean recall@topk (if GT available)
  double gpu_utilization = 0.0;   ///< busy CTA-time / (CTAs x span)
  std::uint64_t pcie_transactions = 0;
  std::uint64_t pcie_state_transactions = 0;       ///< polls + write-throughs
  std::uint64_t pcie_state_poll_transactions = 0;  ///< naive-mode host polls
  std::uint64_t pcie_state_write_transactions = 0;
  std::uint64_t pcie_bytes = 0;
  std::uint64_t host_polls = 0;
  std::uint64_t interrupts = 0;  ///< completion interrupts (blocking mode)
  std::uint64_t host_worker_steps = 0;
  double host_busy_ns = 0.0;  ///< summed host-thread busy time
  /// Summed CTA busy time and CTA count behind gpu_utilization — kept so
  /// an aggregator (the sharded engine) can recompute utilization against
  /// a different span than this run's own.
  double cta_busy_ns = 0.0;
  std::size_t cta_count = 0;
  TunePlan plan;
  std::uint64_t sim_events = 0;
  /// Queue entries the simulation popped and discarded because the actor
  /// was re-scheduled/cancelled after they were pushed (token mismatch).
  std::uint64_t sim_stale_events = 0;
  /// Invariant evaluations performed by SimCheck (0 = run was unchecked).
  std::uint64_t simcheck_checks = 0;
  /// SimTrace events this run recorded (0 = run was untraced).
  std::uint64_t trace_events = 0;
};

class AlgasEngine;

/// Wiring hooks one engine run exposes to an orchestrator (the sharded
/// engine). The defaults leave the run fully self-contained —
/// AlgasEngine::run() uses them unchanged, so the default path stays
/// byte-identical to the pre-sharding engine.
struct RunAttach {
  /// Shared host-side bandwidth budget this run's channel contends on (not
  /// owned; null = uncontended single-device host).
  sim::HostBus* host_bus = nullptr;
  /// Appended to the checker/tracer run label (e.g. ":shard3") so per-shard
  /// processes stay distinguishable in traces and SimCheck dumps.
  std::string label_suffix;
  /// When set, each completed query's record is handed to this sink
  /// INSTEAD of the run's own collector (which then stays empty). Records
  /// carry shard-LOCAL result ids; the sharded gather maps them to global
  /// ids before the cross-shard merge. Invoked mid-step, at most once per
  /// query, in deterministic simulation order.
  std::function<void(metrics::QueryRecord&&)> deliver;
};

/// One wired engine run over the simulated device, split out of
/// AlgasEngine::run() so an orchestrator can construct several runs and
/// drive their Simulations on one clock (sim::SimulationGroup).
/// AlgasEngine::run() is exactly: EngineRun + Simulation::run() + finish().
class EngineRun {
 public:
  EngineRun(const AlgasEngine& engine,
            const std::vector<PendingQuery>& arrivals,
            RunAttach attach = {});
  ~EngineRun();
  EngineRun(const EngineRun&) = delete;
  EngineRun& operator=(const EngineRun&) = delete;

  /// The run's event queue — schedule/step through a SimulationGroup, or
  /// call .run() directly for a self-contained run.
  sim::Simulation& simulation();

  /// Drain verification + report assembly. Call exactly once, after the
  /// simulation (or the group containing it) ran to completion. When a
  /// RunAttach::deliver sink was installed the report's collector is empty
  /// (records went to the sink) and recall/summary are left zeroed.
  EngineReport finish();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

class AlgasEngine {
 public:
  /// Throws std::invalid_argument when the tuner cannot fit the
  /// configuration on the device.
  AlgasEngine(const Dataset& ds, const Graph& g, AlgasConfig cfg);

  const TunePlan& plan() const { return plan_; }
  const AlgasConfig& config() const { return cfg_; }
  /// The per-block shared-memory layout the tuner budgeted for.
  const sim::SharedMemoryLayout& layout() const { return layout_; }
  const Dataset& dataset() const { return ds_; }
  const Graph& graph() const { return g_; }

  /// Closed loop: the first `num_queries` dataset queries, all available at
  /// t=0 (capped at the dataset's query count).
  EngineReport run_closed_loop(std::size_t num_queries);

  /// Open loop with explicit arrival times (nondecreasing).
  EngineReport run(const std::vector<PendingQuery>& arrivals);

 private:
  friend class EngineRun;
  const Dataset& ds_;
  const Graph& g_;
  AlgasConfig cfg_;
  TunePlan plan_;
  sim::SharedMemoryLayout layout_;
};

}  // namespace algas::core
