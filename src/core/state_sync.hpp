// Slot/CTA state storage with the §V-A state optimization.
//
// Naive mode: states live in device memory. Every host poll and host write
// crosses the channel; device-side accesses are local.
//
// Mirrored mode (GDRCopy substitution): both sides hold state copies mapped
// to each other. Polls read the local copy (no channel traffic); a state
// *change* performs one write-through transaction to the remote copy. Only
// one side has modification rights per state at any time (Fig 9), so the
// mirrors never conflict.
//
// The functional state word is shared (the simulation is single-threaded);
// what differs between modes is the virtual-time cost and channel traffic —
// exactly the quantity Fig 18 measures.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/ownership.hpp"
#include "core/slot.hpp"
#include "simgpu/channel.hpp"

namespace algas::core {

class ProtocolChecker;

class StateSync {
 public:
  StateSync(sim::Channel* channel, const sim::CostModel& cm,
            std::size_t slots, std::size_t ctas_per_slot, bool mirrored);

  std::size_t slots() const { return slots_; }
  std::size_t ctas_per_slot() const { return ctas_; }
  bool mirrored() const { return mirrored_; }

  /// Attach a protocol checker (not owned; null = unchecked). Every access
  /// below reports to it; writes report BEFORE any side effect so illegal
  /// transitions fail with the checker's trace-carrying diagnostics.
  void set_checker(ProtocolChecker* checker) { checker_ = checker; }

  /// Attach a SimTrace sink (not owned; null disables). Every applied
  /// state transition emits a "<from>-><to>" instant on the slot's lane
  /// (`slot_tid_base + slot` under `pid`), stamped at the write's charged
  /// completion time. Pure observer — costs and traffic are unchanged.
  void set_tracer(sim::Tracer* t, int pid, int slot_tid_base) {
    trace_ = t;
    trace_pid_ = pid;
    trace_tid_base_ = slot_tid_base;
  }

  /// Cost-free state inspection (no polling cost, no counters). For
  /// checker drain reports and tests only — engines must poll.
  SlotState peek(std::size_t slot, std::size_t cta) const {
    return states_[slot * ctas_ + cta];
  }

  /// Host polls one CTA state. Adds the poll's cost to *elapsed and issues
  /// channel traffic in naive mode. `now` is the poller's current cursor.
  SlotState host_read(SimTime now, std::size_t slot, std::size_t cta,
                      double* elapsed);

  /// Host transitions one CTA state (must be legal). Cost: local write +
  /// write-through transaction (mirrored) or remote write (naive).
  void host_write(SimTime now, std::size_t slot, std::size_t cta,
                  SlotState next, double* elapsed);

  /// Device-side poll — local in both modes (the kernel polls its own
  /// memory). `now` is the polling CTA's current cursor (used only for
  /// checker timestamps; device polls never touch the channel).
  SlotState device_read(SimTime now, std::size_t slot, std::size_t cta,
                        double* elapsed);

  /// Device transitions its state. Mirrored mode pays one write-through.
  void device_write(SimTime now, std::size_t slot, std::size_t cta,
                    SlotState next, double* elapsed);

  /// Convenience: true when all CTA states of `slot` equal `s` (host view);
  /// polls each CTA state and accumulates cost.
  bool host_all_in_state(SimTime now, std::size_t slot, SlotState s,
                         double* elapsed);

  std::uint64_t host_polls() const { return host_polls_; }
  std::uint64_t state_transitions() const { return transitions_; }

 private:
  SlotState& at(std::size_t slot, std::size_t cta) {
    return states_[slot * ctas_ + cta];
  }

  /// Trace hook shared by host_write/device_write (after the transition).
  void trace_transition(Side side, SimTime t, std::size_t slot,
                        std::size_t cta, SlotState from, SlotState to);

  sim::Channel* channel_;
  ProtocolChecker* checker_ = nullptr;
  sim::Tracer* trace_ = nullptr;
  int trace_pid_ = 0;
  int trace_tid_base_ = 0;
  sim::CostModel cm_;
  std::size_t slots_;
  std::size_t ctas_;
  bool mirrored_;
  /// The state words themselves: write rights rotate between host and
  /// device per Fig 9 (state_owner()), mediated by host_write/device_write
  /// — the epoch is the slot state machine itself.
  std::vector<SlotState> states_ ALGAS_GUARDED_BY_EPOCH(StateSync);
  std::uint64_t host_polls_ ALGAS_OWNED_BY(StateSync) = 0;
  std::uint64_t transitions_ ALGAS_OWNED_BY(StateSync) = 0;
};

}  // namespace algas::core
