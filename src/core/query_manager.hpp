// Concurrent query manager (§V-B): the FIFO of submitted queries that host
// worker threads draw from, plus arrival-time bookkeeping for open-loop
// workloads. In the single-threaded simulation "concurrent" reduces to
// shared state; fairness across host workers comes from FIFO pops at each
// worker's virtual cursor.
#pragma once

#include <cstddef>
#include <deque>
#include <optional>

#include "common/ownership.hpp"
#include "common/types.hpp"

namespace algas::sim {
class SimCheck;
}  // namespace algas::sim

namespace algas::core {

struct PendingQuery {
  std::size_t query_index = 0;
  SimTime arrival_ns = 0.0;
};

class QueryManager {
 public:
  /// `check` (optional, not owned) audits queue hygiene: nondecreasing
  /// arrival order on push, and that pops never return a not-yet-arrived
  /// query. Violations fail fast with the queue's event trace.
  explicit QueryManager(sim::SimCheck* check = nullptr) : check_(check) {}

  /// Arrivals must be pushed in nondecreasing arrival order.
  void push(PendingQuery q);

  /// Pop the oldest query whose arrival time has passed.
  std::optional<PendingQuery> pop_ready(SimTime now);

  /// Earliest arrival still pending, or infinity when empty.
  SimTime next_arrival() const;

  bool empty() const { return pending_.empty(); }
  std::size_t pending() const { return pending_.size(); }
  std::size_t total_pushed() const { return total_; }

 private:
  sim::SimCheck* check_;
  /// FIFO shared by every host worker; all mutation funnels through
  /// push/pop_ready so fairness stays a property of the virtual cursors.
  /// The streaming-mutability work will add an inserter actor here — it
  /// must join this owner list to pass the lint.
  std::deque<PendingQuery> pending_ ALGAS_OWNED_BY(QueryManager);
  std::size_t total_ ALGAS_OWNED_BY(QueryManager) = 0;
  SimTime last_arrival_ ALGAS_OWNED_BY(QueryManager) = 0.0;
};

}  // namespace algas::core
