// Concurrent query manager (§V-B): the FIFO of submitted queries that host
// worker threads draw from, plus arrival-time bookkeeping for open-loop
// workloads. In the single-threaded simulation "concurrent" reduces to
// shared state; fairness across host workers comes from FIFO pops at each
// worker's virtual cursor.
//
// The serving layer extends the plain FIFO two ways, both inert unless a
// workload opts in:
//   * priority classes — pops prefer the highest class whose front has
//     arrived, FIFO within a class. Every query defaults to class 0, which
//     reduces to the original single FIFO.
//   * bounded admission — admit() enforces a queue capacity with a shed
//     policy (reject the newcomer, or drop the oldest lowest-priority
//     entry). push() stays the unbounded path.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <limits>
#include <optional>

#include "common/ownership.hpp"
#include "common/types.hpp"

namespace algas::sim {
class SimCheck;
}  // namespace algas::sim

namespace algas::core {

/// Number of distinct priority classes (0 = best effort .. kPriorityClasses
/// - 1 = most urgent). Pushed priorities clamp into this range.
constexpr std::size_t kPriorityClasses = 4;

/// Queue capacity sentinel: no admission bound (the pre-serving default).
constexpr std::size_t kUnboundedQueue = std::numeric_limits<std::size_t>::max();

struct PendingQuery {
  std::size_t query_index = 0;
  SimTime arrival_ns = 0.0;
  /// Absolute completion deadline; infinity = no deadline (default). A
  /// query not delivered by this virtual instant counts as a deadline miss,
  /// and the scheduler sheds it from the queue / evicts its finished slot
  /// instead of paying fetch+merge for an answer nobody is waiting on.
  SimTime deadline_ns = std::numeric_limits<SimTime>::infinity();
  /// Priority class (clamped to kPriorityClasses - 1; higher pops first).
  std::uint8_t priority = 0;
};

/// What happens when admit() finds the bounded queue full.
enum class ShedPolicy : std::uint8_t {
  kRejectNew = 0,  ///< shed the arriving query
  kDropOldest,     ///< shed the oldest entry of the lowest queued class
                   ///< (<= the newcomer's class); else reject the newcomer
};

const char* shed_policy_name(ShedPolicy p);

/// Admission-control knobs for the host queue.
struct AdmissionConfig {
  std::size_t capacity = kUnboundedQueue;  ///< max queued (arrived) queries
  ShedPolicy policy = ShedPolicy::kRejectNew;

  bool bounded() const { return capacity != kUnboundedQueue; }
};

class QueryManager {
 public:
  /// `check` (optional, not owned) audits queue hygiene: nondecreasing
  /// arrival order on push, and that pops never return a not-yet-arrived
  /// query. Violations fail fast with the queue's event trace.
  explicit QueryManager(sim::SimCheck* check = nullptr) : check_(check) {}

  /// Arrivals must be pushed in nondecreasing arrival order.
  void push(PendingQuery q);

  /// Bounded push: if the queue is at `adm.capacity`, apply the shed
  /// policy and return the query that was shed (the newcomer, or a lower-
  /// priority victim evicted to make room). nullopt = admitted cleanly.
  std::optional<PendingQuery> admit(PendingQuery q,
                                    const AdmissionConfig& adm);

  /// Pop the oldest query of the highest priority class whose arrival time
  /// has passed. Deadlines are NOT consulted here — the caller decides
  /// whether an expired pop is shed (and charges the virtual cost of doing
  /// so).
  std::optional<PendingQuery> pop_ready(SimTime now);

  /// Earliest arrival still pending, or infinity when empty.
  SimTime next_arrival() const;

  bool empty() const { return size_ == 0; }
  std::size_t pending() const { return size_; }
  std::size_t total_pushed() const { return total_; }

 private:
  sim::SimCheck* check_;
  /// Per-class FIFOs shared by every host worker; all mutation funnels
  /// through push/admit/pop_ready so fairness stays a property of the
  /// virtual cursors. Class 0 is the historical single FIFO. The engine's
  /// AdmissionActor joins QueryManager in the owner list: it is the arrival
  /// side of the serving path and mutates the queue only through admit().
  std::array<std::deque<PendingQuery>, kPriorityClasses> classes_
      ALGAS_OWNED_BY(QueryManager, AdmissionActor);
  std::size_t size_ ALGAS_OWNED_BY(QueryManager, AdmissionActor) = 0;
  std::size_t total_ ALGAS_OWNED_BY(QueryManager, AdmissionActor) = 0;
  SimTime last_arrival_ ALGAS_OWNED_BY(QueryManager, AdmissionActor) = 0.0;
};

}  // namespace algas::core
