#include "core/slot.hpp"

namespace algas::core {

const char* slot_state_name(SlotState s) {
  switch (s) {
    case SlotState::kNone: return "None";
    case SlotState::kWork: return "Work";
    case SlotState::kFinish: return "Finish";
    case SlotState::kDone: return "Done";
    case SlotState::kQuit: return "Quit";
    case SlotState::kExpired: return "Expired";
  }
  return "invalid";
}

const char* side_name(Side s) {
  switch (s) {
    case Side::kNone: return "none";
    case Side::kHost: return "host";
    case Side::kDevice: return "device";
  }
  return "invalid";
}

Side state_owner(SlotState s) {
  switch (s) {
    case SlotState::kNone: return Side::kHost;     // fills the first query
    case SlotState::kWork: return Side::kDevice;   // CTA flags completion
    case SlotState::kFinish: return Side::kHost;   // host fetches results
    case SlotState::kDone: return Side::kHost;     // refill or retire
    case SlotState::kQuit: return Side::kNone;     // terminal
    case SlotState::kExpired: return Side::kHost;  // recycle or retire
  }
  return Side::kNone;
}

bool is_legal_transition(SlotState from, SlotState to) {
  switch (from) {
    case SlotState::kNone:
      return to == SlotState::kWork || to == SlotState::kQuit;
    case SlotState::kWork:
      return to == SlotState::kFinish;
    case SlotState::kFinish:
      return to == SlotState::kDone || to == SlotState::kExpired;
    case SlotState::kDone:
      return to == SlotState::kWork || to == SlotState::kQuit;
    case SlotState::kQuit:
      return false;
    case SlotState::kExpired:
      return to == SlotState::kWork || to == SlotState::kQuit;
  }
  return false;
}

}  // namespace algas::core
