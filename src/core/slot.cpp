#include "core/slot.hpp"

namespace algas::core {

const char* slot_state_name(SlotState s) {
  switch (s) {
    case SlotState::kNone: return "None";
    case SlotState::kWork: return "Work";
    case SlotState::kFinish: return "Finish";
    case SlotState::kDone: return "Done";
    case SlotState::kQuit: return "Quit";
  }
  return "invalid";
}

bool is_legal_transition(SlotState from, SlotState to) {
  switch (from) {
    case SlotState::kNone:
      return to == SlotState::kWork || to == SlotState::kQuit;
    case SlotState::kWork:
      return to == SlotState::kFinish;
    case SlotState::kFinish:
      return to == SlotState::kDone;
    case SlotState::kDone:
      return to == SlotState::kWork || to == SlotState::kQuit;
    case SlotState::kQuit:
      return false;
  }
  return false;
}

}  // namespace algas::core
