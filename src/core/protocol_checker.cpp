#include "core/protocol_checker.hpp"

#include <cassert>
#include <sstream>

#include "core/state_sync.hpp"

namespace algas::core {

namespace {
/// Slack for comparing accumulated double timestamps.
constexpr double kTimeSlackNs = 1e-6;
}  // namespace

ProtocolChecker::ProtocolChecker(sim::SimCheck* check, StateSync* sync,
                                 sim::Channel* channel)
    : check_(check),
      sync_(sync),
      channel_(channel),
      words_(sync->slots() * sync->ctas_per_slot()),
      base_polls_(channel->counters(sim::Xfer::kStatePoll).transactions),
      base_writes_(channel->counters(sim::Xfer::kStateWrite).transactions) {
  assert(check_ != nullptr);
  check_->set_drain_hook([this](SimTime t) { on_drain(t); });
}

ProtocolChecker::~ProtocolChecker() { check_->set_drain_hook(nullptr); }

std::string ProtocolChecker::word_key(std::size_t slot, std::size_t cta) {
  std::ostringstream out;
  out << "slot" << slot << ".cta" << cta;
  return out.str();
}

ProtocolChecker::WordState& ProtocolChecker::word(std::size_t slot,
                                                  std::size_t cta) {
  return words_[slot * sync_->ctas_per_slot() + cta];
}

void ProtocolChecker::check_side_order(Side side, SimTime t, std::size_t slot,
                                       std::size_t cta, const char* op) {
  check_->count_check();
  WordState& w = word(slot, cta);
  SimTime& last = side == Side::kHost ? w.last_host_ns : w.last_device_ns;
  if (t + kTimeSlackNs < last) {
    const std::string key = word_key(slot, cta);
    std::ostringstream msg;
    msg << "happens-before violation on " << key << ": " << side_name(side)
        << " " << op << " stamped t=" << t << "ns precedes the side's "
        << "previous access at t=" << last << "ns — two " << side_name(side)
        << " actors are touching the same state word out of virtual-time "
        << "order";
    check_->fail("happens-before", key, t, msg.str());
  }
  last = t;
}

void ProtocolChecker::audit_channel(SimTime t, std::size_t slot,
                                    std::size_t cta, const char* op) {
  check_->count_check();
  const std::uint64_t polls =
      channel_->counters(sim::Xfer::kStatePoll).transactions - base_polls_;
  const std::uint64_t writes =
      channel_->counters(sim::Xfer::kStateWrite).transactions - base_writes_;
  if (polls == expected_polls_ && writes == expected_writes_) return;

  const std::string key = word_key(slot, cta);
  std::ostringstream msg;
  msg << "channel-conservation violation after " << op << " on " << key
      << ": ";
  if (polls != expected_polls_) {
    msg << "state-poll transactions read " << polls << ", expected "
        << expected_polls_
        << (polls > expected_polls_
                ? " (a mirrored-mode poll generated channel traffic)"
                : " (a naive-mode poll skipped the channel)");
  } else {
    msg << "state-write transactions read " << writes << ", expected "
        << expected_writes_
        << (writes > expected_writes_
                ? " (a write-through was issued more than once)"
                : " (a state change skipped its write-through)");
  }
  check_->fail("channel-conservation", key, t, msg.str());
}

void ProtocolChecker::on_read(Side side, SimTime t, std::size_t slot,
                              std::size_t cta, SlotState observed) {
  ++reads_observed_;
  check_side_order(side, t, slot, cta, "read");
  // §V-A conservation: naive host polls cross the channel exactly once;
  // mirrored host polls and all device polls stay local.
  if (side == Side::kHost && !sync_->mirrored()) ++expected_polls_;
  audit_channel(t, slot, cta, "read");

  // Edge-triggered observation trace: record only state changes seen, so a
  // word's ring keeps its transition history instead of thousands of
  // identical polls.
  WordState& w = word(slot, cta);
  int& seen = side == Side::kHost ? w.host_seen : w.device_seen;
  if (seen != static_cast<int>(observed)) {
    seen = static_cast<int>(observed);
    check_->record(word_key(slot, cta), t,
                   std::string(side_name(side)) + " observed " +
                       slot_state_name(observed));
  }
}

void ProtocolChecker::pre_write(Side side, SimTime t, std::size_t slot,
                                std::size_t cta, SlotState from,
                                SlotState to) {
  const std::string key = word_key(slot, cta);

  // Fig 9 single-writer ownership: only the owner of the current state may
  // transition the word. A write from the other side is a race even if the
  // resulting transition would be legal in Fig 5.
  check_->count_check();
  const Side owner = state_owner(from);
  if (owner != side) {
    std::ostringstream msg;
    msg << "Fig 9 ownership violation: " << side_name(side) << " wrote "
        << key << " while its state " << slot_state_name(from)
        << " is owned by " << side_name(owner) << " (attempted "
        << slot_state_name(from) << " -> " << slot_state_name(to) << ")";
    check_->fail("ownership", key, t, msg.str());
  }

  // Fig 5 transition legality.
  check_->count_check();
  if (!is_legal_transition(from, to)) {
    std::ostringstream msg;
    msg << "illegal " << side_name(side) << " transition "
        << slot_state_name(from) << " -> " << slot_state_name(to) << " on "
        << key << " (Fig 5 permits None->Work, Work->Finish, Finish->Done, "
        << "Done->Work, Done->Quit, None->Quit; the deadline extension adds "
        << "Finish->Expired, Expired->Work, Expired->Quit)";
    check_->fail("illegal-transition", key, t, msg.str());
  }

  check_side_order(side, t, slot, cta, "write");
}

void ProtocolChecker::post_write(Side side, SimTime t, std::size_t slot,
                                 std::size_t cta, SlotState to) {
  ++writes_observed_;
  // Every host write crosses the channel once (remote state in naive mode,
  // mirror write-through in mirrored mode); device writes cross only when
  // mirrored (§V-A).
  if (side == Side::kHost || sync_->mirrored()) ++expected_writes_;
  audit_channel(t, slot, cta, "write");

  WordState& w = word(slot, cta);
  w.last_write_ns = t;
  w.last_writer = side;
  int& seen = side == Side::kHost ? w.host_seen : w.device_seen;
  seen = static_cast<int>(to);
  check_->record(word_key(slot, cta), t,
                 std::string(side_name(side)) + " wrote " +
                     slot_state_name(to));
}

void ProtocolChecker::on_drain(SimTime t) {
  check_->count_check();
  if (!expect_full_drain_) return;

  std::vector<std::pair<std::size_t, std::size_t>> stuck;
  for (std::size_t s = 0; s < sync_->slots(); ++s) {
    for (std::size_t c = 0; c < sync_->ctas_per_slot(); ++c) {
      if (sync_->peek(s, c) != SlotState::kQuit) stuck.emplace_back(s, c);
    }
  }
  if (stuck.empty()) return;

  std::ostringstream msg;
  msg << "event queue drained prematurely: " << stuck.size()
      << " state word(s) never reached Quit;";
  for (const auto& [s, c] : stuck) {
    const WordState& w = word(s, c);
    msg << "\n  " << word_key(s, c)
        << ": state=" << slot_state_name(sync_->peek(s, c));
    if (w.last_writer != Side::kNone) {
      msg << ", last written by " << side_name(w.last_writer) << " at t="
          << w.last_write_ns << "ns";
    } else {
      msg << ", never written";
    }
    msg << "\n" << check_->trace_dump(word_key(s, c));
  }
  check_->fail("deadlock", std::string(), t, msg.str());
}

void ProtocolChecker::finalize(SimTime t) {
  // Closing conservation balance.
  audit_channel(t, 0, 0, "finalize");
  // Parity: StateSync counted the same number of transitions we audited.
  check_->count_check();
  if (sync_->state_transitions() != writes_observed_) {
    std::ostringstream msg;
    msg << "transition-count parity broken: StateSync recorded "
        << sync_->state_transitions() << " transitions but the checker "
        << "observed " << writes_observed_
        << " — a state write bypassed the checked path";
    check_->fail("channel-conservation", std::string(), t, msg.str());
  }
}

}  // namespace algas::core
