// Slot state machine of the dynamic batching mechanism (§IV-A, Fig 5).
//
// A slot owns the full lifecycle of one in-flight query. Each of the slot's
// N_parallel CTAs carries its own state word; the host treats the slot as
// finished when every CTA state reads Finish.
#pragma once

#include <cstdint>
#include <string>

#include "common/types.hpp"

namespace algas::core {

enum class SlotState : std::uint32_t {
  kNone = 0,  ///< slot initialized, can accept a query
  kWork,      ///< host filled a query; CTAs search on detection
  kFinish,    ///< CTA pushed its results and flagged completion
  kDone,      ///< host fetched results (transient host-side view)
  kQuit,      ///< slot retired; CTA exits its polling loop
  kExpired,   ///< host discarded a finished query past its deadline
};

const char* slot_state_name(SlotState s);

/// Legal transitions (Fig 5, extended by the serving layer): None->Work
/// (host), Work->Finish (CTA), Finish->Done (host), Done->Work (host, next
/// query), Done->Quit (host), None->Quit (host, drain before first query).
/// The deadline extension adds the Expired terminal branch: Finish->Expired
/// (host, deadline passed — results are never fetched across the channel),
/// then Expired->Work (slot recycled) or Expired->Quit (drain), exactly
/// mirroring Done's outgoing edges. A CTA cannot be preempted mid-search
/// (the persistent kernel owns the word in Work), so Work->Expired stays
/// illegal — eviction happens at the completion-detection point only.
bool is_legal_transition(SlotState from, SlotState to);

/// Which side of the channel touches a state word.
enum class Side : std::uint8_t {
  kNone = 0,  ///< nobody (terminal state)
  kHost,
  kDevice,
};

const char* side_name(Side s);

/// Fig 9 single-writer ownership rule: the one side allowed to transition
/// a word OUT of state `s`. The mirrors in StateSync never conflict
/// precisely because exactly one side holds modification rights per state.
Side state_owner(SlotState s);

}  // namespace algas::core
