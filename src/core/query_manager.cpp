#include "core/query_manager.hpp"

#include <limits>
#include <stdexcept>

namespace algas::core {

void QueryManager::push(PendingQuery q) {
  if (q.arrival_ns < last_arrival_) {
    throw std::invalid_argument("arrivals must be nondecreasing");
  }
  last_arrival_ = q.arrival_ns;
  pending_.push_back(q);
  ++total_;
}

std::optional<PendingQuery> QueryManager::pop_ready(SimTime now) {
  if (pending_.empty() || pending_.front().arrival_ns > now) {
    return std::nullopt;
  }
  PendingQuery q = pending_.front();
  pending_.pop_front();
  return q;
}

SimTime QueryManager::next_arrival() const {
  if (pending_.empty()) return std::numeric_limits<SimTime>::infinity();
  return pending_.front().arrival_ns;
}

}  // namespace algas::core
