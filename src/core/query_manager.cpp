#include "core/query_manager.hpp"

#include <limits>
#include <sstream>
#include <stdexcept>

#include "simgpu/checker.hpp"

namespace algas::core {

namespace {
constexpr const char* kQueueKey = "query-manager";
}  // namespace

void QueryManager::push(PendingQuery q) {
  if (q.arrival_ns < last_arrival_) {
    if (check_) {
      std::ostringstream msg;
      msg << "query " << q.query_index << " pushed with arrival t="
          << q.arrival_ns << "ns after a query already arrived at t="
          << last_arrival_ << "ns (arrivals must be nondecreasing)";
      check_->fail("arrival-order", kQueueKey, q.arrival_ns, msg.str());
    }
    throw std::invalid_argument("arrivals must be nondecreasing");
  }
  if (check_) {
    check_->count_check();
    std::ostringstream what;
    what << "push q" << q.query_index << " arrival=" << q.arrival_ns << "ns";
    check_->record(kQueueKey, q.arrival_ns, what.str());
  }
  last_arrival_ = q.arrival_ns;
  pending_.push_back(q);
  ++total_;
}

std::optional<PendingQuery> QueryManager::pop_ready(SimTime now) {
  if (pending_.empty() || pending_.front().arrival_ns > now) {
    return std::nullopt;
  }
  PendingQuery q = pending_.front();
  pending_.pop_front();
  if (check_) {
    check_->count_check();
    if (q.arrival_ns > now) {
      std::ostringstream msg;
      msg << "pop_ready returned query " << q.query_index
          << " before its arrival (arrival t=" << q.arrival_ns
          << "ns, popped at t=" << now << "ns)";
      check_->fail("arrival-order", kQueueKey, now, msg.str());
    }
    std::ostringstream what;
    what << "pop q" << q.query_index << " at t=" << now << "ns";
    check_->record(kQueueKey, now, what.str());
  }
  return q;
}

SimTime QueryManager::next_arrival() const {
  if (pending_.empty()) return std::numeric_limits<SimTime>::infinity();
  return pending_.front().arrival_ns;
}

}  // namespace algas::core
