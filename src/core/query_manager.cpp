#include "core/query_manager.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "simgpu/checker.hpp"

namespace algas::core {

namespace {
constexpr const char* kQueueKey = "query-manager";

std::size_t clamp_class(std::uint8_t priority) {
  return std::min<std::size_t>(priority, kPriorityClasses - 1);
}
}  // namespace

const char* shed_policy_name(ShedPolicy p) {
  switch (p) {
    case ShedPolicy::kRejectNew: return "reject-new";
    case ShedPolicy::kDropOldest: return "drop-oldest";
  }
  return "invalid";
}

void QueryManager::push(PendingQuery q) {
  if (q.arrival_ns < last_arrival_) {
    if (check_) {
      std::ostringstream msg;
      msg << "query " << q.query_index << " pushed with arrival t="
          << q.arrival_ns << "ns after a query already arrived at t="
          << last_arrival_ << "ns (arrivals must be nondecreasing)";
      check_->fail("arrival-order", kQueueKey, q.arrival_ns, msg.str());
    }
    throw std::invalid_argument("arrivals must be nondecreasing");
  }
  if (check_) {
    check_->count_check();
    std::ostringstream what;
    what << "push q" << q.query_index << " arrival=" << q.arrival_ns << "ns";
    check_->record(kQueueKey, q.arrival_ns, what.str());
  }
  last_arrival_ = q.arrival_ns;
  // Clamp the stored field, not just the class index, so records downstream
  // (collector, shed accounting) report the class the query actually rode.
  q.priority = static_cast<std::uint8_t>(clamp_class(q.priority));
  classes_[q.priority].push_back(q);
  ++size_;
  ++total_;
}

std::optional<PendingQuery> QueryManager::admit(PendingQuery q,
                                                const AdmissionConfig& adm) {
  if (size_ < adm.capacity) {
    push(q);
    return std::nullopt;
  }
  if (adm.policy == ShedPolicy::kDropOldest) {
    // Victim: the oldest entry of the lowest nonempty class at or below the
    // newcomer's class — dropping stale work of equal-or-lower urgency to
    // admit fresh work. A queue full of strictly higher classes protects
    // itself: the newcomer is rejected instead.
    const std::size_t newcomer = clamp_class(q.priority);
    for (std::size_t cls = 0; cls <= newcomer; ++cls) {
      if (classes_[cls].empty()) continue;
      PendingQuery victim = classes_[cls].front();
      classes_[cls].pop_front();
      --size_;
      if (check_) {
        check_->count_check();
        std::ostringstream what;
        what << "shed q" << victim.query_index << " (drop-oldest, class "
             << cls << ") for q" << q.query_index;
        check_->record(kQueueKey, q.arrival_ns, what.str());
      }
      push(q);
      return victim;
    }
  }
  if (check_) {
    check_->count_check();
    std::ostringstream what;
    what << "shed q" << q.query_index << " (queue full at " << size_ << ")";
    check_->record(kQueueKey, q.arrival_ns, what.str());
  }
  return q;
}

std::optional<PendingQuery> QueryManager::pop_ready(SimTime now) {
  // Highest class whose oldest entry has arrived wins; pushes are globally
  // nondecreasing in arrival time, so a class front is that class's
  // earliest arrival and this scan cannot skip an arrived query.
  for (std::size_t cls = kPriorityClasses; cls-- > 0;) {
    auto& fifo = classes_[cls];
    if (fifo.empty() || fifo.front().arrival_ns > now) continue;
    PendingQuery q = fifo.front();
    fifo.pop_front();
    --size_;
    if (check_) {
      check_->count_check();
      if (q.arrival_ns > now) {
        std::ostringstream msg;
        msg << "pop_ready returned query " << q.query_index
            << " before its arrival (arrival t=" << q.arrival_ns
            << "ns, popped at t=" << now << "ns)";
        check_->fail("arrival-order", kQueueKey, now, msg.str());
      }
      std::ostringstream what;
      what << "pop q" << q.query_index << " at t=" << now << "ns";
      check_->record(kQueueKey, now, what.str());
    }
    return q;
  }
  return std::nullopt;
}

SimTime QueryManager::next_arrival() const {
  SimTime earliest = std::numeric_limits<SimTime>::infinity();
  for (const auto& fifo : classes_) {
    if (!fifo.empty()) earliest = std::min(earliest, fifo.front().arrival_ns);
  }
  return earliest;
}

}  // namespace algas::core
