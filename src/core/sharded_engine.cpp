#include "core/sharded_engine.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>
#include <string>
#include <utility>

#include "metrics/recall.hpp"
#include "search/topk_merge.hpp"
#include "simgpu/channel.hpp"
#include "simgpu/simulation.hpp"
#include "simgpu/sim_group.hpp"
#include "simgpu/trace.hpp"

namespace algas::core {

namespace {

/// Scatter-side state of one in-flight query: which shards owe a run, the
/// runs received so far (indexed by the shard's position in the route, so
/// the concatenation order is shard-ascending regardless of completion
/// order), and the timing/work aggregates the merged record reports.
struct GatherState {
  std::vector<std::size_t> route;  ///< shards probed, ascending
  std::size_t received = 0;
  SimTime arrival_ns = 0.0;
  SimTime dispatch_ns = std::numeric_limits<SimTime>::infinity();  // min
  SimTime gpu_done_ns = 0.0;                                       // max
  SimTime deadline_ns = std::numeric_limits<SimTime>::infinity();
  std::uint8_t priority = 0;
  /// Best outcome among the probed shards (min Disposition ordinal): one
  /// shard serving is enough for the merged query to serve — shards that
  /// shed or evicted just contribute an empty run. Starts at the worst
  /// ordinal and min-accumulates as shard records land.
  metrics::Disposition disposition = metrics::Disposition::kEvicted;
  std::size_t steps = 0;
  std::size_t rounds = 0;
  std::size_t scored = 0;
  search::StepCost gpu_cost;
  std::vector<std::vector<KV>> runs;  ///< one slot per routed shard
};

/// The serial host merge thread. Queries become ready when their last shard
/// run lands; the actor merges ONE query per busy window, charging
/// CostModel::host_topk_merge_ns(runs, k) and back-pressuring the rest —
/// cross-shard merging is host work, not free glue. The ready queue orders
/// by (ready time, push sequence); pushes happen in deterministic
/// simulation order, so the merge order — and therefore the final
/// collector — is reproducible bit for bit.
class MergeActor final : public sim::Actor {
 public:
  MergeActor(const sim::CostModel& cm, std::size_t topk,
             std::vector<GatherState>& gathers, metrics::Collector& out)
      : cm_(cm), topk_(topk), gathers_(gathers), out_(out) {}

  void set_tracer(sim::Tracer* t, int pid, int tid) {
    trace_ = t;
    trace_pid_ = pid;
    trace_tid_ = tid;
  }

  void push_ready(std::size_t query, SimTime when) {
    ready_.push(Ready{when, seq_++, query});
  }

  void step(sim::Simulation& sim) override {
    if (ready_.empty()) return;
    // An early wake (a query became ready mid-merge) just re-arms the
    // timer: the merge thread is serial, busy until busy_until_.
    if (sim.now() < busy_until_) {
      sim.schedule(this, busy_until_);
      return;
    }
    const Ready top = ready_.top();
    if (top.ready_ns > sim.now()) {
      sim.schedule(this, top.ready_ns);
      return;
    }
    ready_.pop();

    GatherState& g = gathers_[top.query];
    const std::size_t n_runs = g.runs.size();
    std::vector<KV> concat(n_runs * topk_, KV::empty());
    for (std::size_t r = 0; r < n_runs; ++r) {
      std::copy(g.runs[r].begin(), g.runs[r].end(),
                concat.begin() + static_cast<std::ptrdiff_t>(r * topk_));
    }
    const double elapsed = cm_.host_topk_merge_ns(n_runs, topk_);

    metrics::QueryRecord rec;
    rec.query_index = top.query;
    rec.slot = n_runs;  // repurposed: shard runs merged (== fanout)
    rec.arrival_ns = g.arrival_ns;
    rec.dispatch_ns = g.dispatch_ns;
    rec.gpu_done_ns = g.gpu_done_ns;
    rec.done_ns = sim.now() + elapsed;
    rec.deadline_ns = g.deadline_ns;
    rec.priority = g.priority;
    rec.disposition = g.disposition;
    rec.steps = g.steps;
    rec.rounds = g.rounds;
    rec.scored_points = g.scored;
    rec.gpu_cost = g.gpu_cost;
    if (rec.served()) {
      // Shards that shed/evicted left their run slot empty (KV::empty
      // padding); the merge tolerates that, so one serving shard suffices.
      // Runs carry global ids and were already filtered per shard — the
      // merge itself needs no further predicate.
      rec.results = search::merge_sorted_runs(concat, n_runs, topk_, topk_,
                                              search::AcceptPredicate{});
    }
    out_.add(std::move(rec));

    if (trace_ != nullptr) {
      sim::TraceArgs args;
      args.add("query", static_cast<std::uint64_t>(top.query));
      args.add("runs", static_cast<std::uint64_t>(n_runs));
      trace_->complete(trace_pid_, trace_tid_,
                       "merge q" + std::to_string(top.query), sim.now(),
                       elapsed, std::move(args), "merge");
    }

    busy_until_ = sim.now() + elapsed;
    busy_ns_ += elapsed;
    ++merges_;
    g.runs.clear();
    g.runs.shrink_to_fit();
    if (!ready_.empty()) sim.schedule(this, busy_until_);
  }

  const char* name() const override { return "shard-merge"; }

  double busy_ns() const { return busy_ns_; }
  std::size_t merges() const { return merges_; }

 private:
  struct Ready {
    SimTime ready_ns;
    std::uint64_t seq;
    std::size_t query;
    bool operator>(const Ready& o) const {
      if (ready_ns != o.ready_ns) return ready_ns > o.ready_ns;
      return seq > o.seq;
    }
  };

  const sim::CostModel& cm_;
  std::size_t topk_;
  std::vector<GatherState>& gathers_;
  metrics::Collector& out_;
  std::priority_queue<Ready, std::vector<Ready>, std::greater<Ready>> ready_;
  std::uint64_t seq_ = 0;
  SimTime busy_until_ = 0.0;
  double busy_ns_ = 0.0;
  std::size_t merges_ = 0;
  sim::Tracer* trace_ = nullptr;
  int trace_pid_ = 0;
  int trace_tid_ = 0;
};

}  // namespace

ShardedEngine::ShardedEngine(const Dataset& ds, ShardedConfig cfg)
    : ds_(ds), cfg_(std::move(cfg)), part_(ds.num_base(), cfg_.shards) {
  if (cfg_.base.search.accept.has_tombstones()) {
    throw std::invalid_argument(
        "ShardedEngine: tombstones carry global ids and cannot filter "
        "shard-local searches; sharded serving requires an immutable view");
  }
  const std::size_t k = part_.shards();
  selective_ = cfg_.fanout >= 1 && cfg_.fanout < k;
  if (cfg_.base.search.accept.has_filter()) {
    // Precompute accepted-row counts per shard: route() consults them to
    // fall back to full fanout when every affinity-selected shard is
    // filter-empty.
    shard_accepted_.resize(k);
    for (std::size_t s = 0; s < k; ++s) {
      const auto r = part_.range(s);
      shard_accepted_[s] =
          cfg_.base.search.accept.accepted_in_range(r.begin, r.end);
    }
  }

  shard_ds_.reserve(k);
  graphs_.reserve(k);
  for (std::size_t s = 0; s < k; ++s) {
    shard_ds_.push_back(make_shard_dataset(ds_, part_, s));
    graphs_.push_back(
        build_graph(cfg_.graph_kind, shard_ds_[s], cfg_.build).graph);
  }
  // Engines after the dataset/graph vectors are final: AlgasEngine holds
  // references into them.
  engines_.reserve(k);
  for (std::size_t s = 0; s < k; ++s) {
    AlgasConfig shard_cfg = cfg_.base;
    if (k > 1 && cfg_.scale_candidate_len) {
      // Each shard searches 1/K of the base set, so ~1/K of the candidate
      // depth keeps the merged union's quality; normalize_config re-clamps
      // to a power of two >= topk and >= the graph degree.
      shard_cfg.search.candidate_len = search::scaled_candidate_len(
          cfg_.base.search.candidate_len, cfg_.base.search.topk, k);
    }
    if (shard_cfg.search.accept.has_filter()) {
      // The filter bitset is indexed by global id; shard s sees local ids,
      // so give it an offset view at its contiguous range start.
      shard_cfg.search.accept =
          cfg_.base.search.accept.with_offset(part_.range(s).begin);
    }
    if (k > 1 && shard_cfg.checker != nullptr) {
      // One checker cannot watch K interleaved runs (per-run reset, single
      // drain hook) — substitute a private instance per shard.
      shard_checks_.push_back(std::make_unique<sim::SimCheck>());
      shard_cfg.checker = shard_checks_.back().get();
    }
    engines_.push_back(std::make_unique<AlgasEngine>(
        shard_ds_[s], graphs_[s], std::move(shard_cfg)));
  }
  if (selective_) {
    baselines::IvfBuildConfig rcfg;
    rcfg.nlist = cfg_.router_centroids;
    rcfg.seed = cfg_.router_seed;
    routers_.reserve(k);
    for (std::size_t s = 0; s < k; ++s) {
      routers_.push_back(baselines::IvfIndex::build(shard_ds_[s], rcfg));
    }
  }
}

std::vector<std::size_t> ShardedEngine::route(std::size_t query_index) const {
  const std::size_t k = part_.shards();
  std::vector<std::size_t> out;
  if (!selective_) {
    out.resize(k);
    for (std::size_t s = 0; s < k; ++s) out[s] = s;
    return out;
  }
  // Shard affinity = min distance over the shard's router centroids; the
  // (affinity, shard) pair sort makes equal affinities resolve by shard id.
  std::vector<std::pair<float, std::size_t>> aff(k);
  for (std::size_t s = 0; s < k; ++s) {
    const auto dists = routers_[s].centroid_distances(ds_.query(query_index));
    float best = kInfDist;
    for (const float d : dists) best = std::min(best, d);
    aff[s] = {best, s};
  }
  std::sort(aff.begin(), aff.end());
  out.reserve(cfg_.fanout);
  for (std::size_t i = 0; i < cfg_.fanout; ++i) out.push_back(aff[i].second);
  std::sort(out.begin(), out.end());
  if (!shard_accepted_.empty()) {
    // Filter-aware fallback: centroid affinity is computed on vectors, not
    // attributes, so a selective route can land exclusively on shards the
    // filter empties out. If no selected shard holds an accepted row while
    // some other shard does, scatter to all — a guaranteed-empty answer is
    // worse than losing the fanout saving for this query.
    std::size_t selected_accepted = 0;
    for (const std::size_t s : out) selected_accepted += shard_accepted_[s];
    if (selected_accepted == 0) {
      std::size_t total_accepted = 0;
      for (const std::size_t c : shard_accepted_) total_accepted += c;
      if (total_accepted > 0) {
        out.resize(k);
        for (std::size_t s = 0; s < k; ++s) out[s] = s;
      }
    }
  }
  return out;
}

ShardedReport ShardedEngine::run_closed_loop(std::size_t num_queries) {
  num_queries = std::min(num_queries, ds_.num_queries());
  std::vector<PendingQuery> arrivals;
  arrivals.reserve(num_queries);
  for (std::size_t i = 0; i < num_queries; ++i) arrivals.push_back({i, 0.0});
  return run(arrivals);
}

ShardedReport ShardedEngine::run(const std::vector<PendingQuery>& arrivals) {
  const std::size_t k = part_.shards();

  if (k == 1) {
    // Degenerate single-shard path: the plain engine, untouched — no bus,
    // no gather, no label suffix. This is the K=1 byte-identity guarantee.
    ShardedReport rep;
    rep.merged = engines_[0]->run(arrivals);
    // The shard dataset dropped the ground truth (global ids are only
    // meaningful here, where shard0 IS the full range) — rescore recall
    // against the original dataset.
    if (ds_.has_ground_truth()) {
      double total_recall = 0.0;
      std::size_t served = 0;
      for (const auto& r : rep.merged.collector.records()) {
        if (!r.served()) continue;
        ++served;
        total_recall += metrics::recall_at_k(ds_, r.query_index, r.results,
                                             cfg_.base.search.topk);
      }
      rep.merged.recall =
          served == 0 ? 0.0 : total_recall / static_cast<double>(served);
    }
    rep.shards.push_back(rep.merged);
    rep.shard_records.merge(rep.merged.collector);
    rep.mean_fanout = 1.0;
    return rep;
  }

  // Routes + gather slots, keyed by query index (hence the uniqueness
  // requirement: two in-flight copies of one query would collide).
  std::vector<GatherState> gathers(ds_.num_queries());
  std::vector<std::vector<PendingQuery>> shard_arrivals(k);
  std::size_t routed_total = 0;
  for (const PendingQuery& a : arrivals) {
    if (a.query_index >= ds_.num_queries()) {
      throw std::invalid_argument("ShardedEngine: query index out of range");
    }
    GatherState& g = gathers[a.query_index];
    if (!g.route.empty()) {
      throw std::invalid_argument(
          "ShardedEngine: duplicate query index " +
          std::to_string(a.query_index) + " in arrivals");
    }
    g.route = route(a.query_index);
    g.arrival_ns = a.arrival_ns;
    g.deadline_ns = a.deadline_ns;
    g.priority = a.priority;
    g.runs.resize(g.route.size());
    routed_total += g.route.size();
    for (const std::size_t s : g.route) shard_arrivals[s].push_back(a);
  }

  sim::Tracer* tracer = cfg_.base.tracer != nullptr ? cfg_.base.tracer
                                                    : sim::default_tracer();
  const std::uint64_t trace_before =
      tracer != nullptr ? tracer->events_recorded() : 0;
  int trace_pid = 0, bus_tid = 0, merge_tid = 0;
  if (tracer != nullptr) {
    trace_pid = tracer->begin_process(
        "algas-sharded:" + std::to_string(k) + "x" +
        std::to_string(selective_ ? cfg_.fanout : k));
    bus_tid = tracer->lane(trace_pid, "host bus");
    merge_tid = tracer->lane(trace_pid, "host merge");
  }

  sim::HostBus bus(cfg_.base.cost);
  if (tracer != nullptr) bus.set_tracer(tracer, trace_pid, bus_tid);

  sim::Simulation host_sim;
  if (tracer != nullptr) host_sim.set_tracer(tracer);
  metrics::Collector merged_collector;
  MergeActor merger(cfg_.base.cost, cfg_.base.search.topk, gathers,
                    merged_collector);
  if (tracer != nullptr) merger.set_tracer(tracer, trace_pid, merge_tid);

  std::vector<metrics::Collector> shard_collectors(k);
  std::vector<std::unique_ptr<EngineRun>> runs;
  runs.reserve(k);
  sim::SimulationGroup group;
  for (std::size_t s = 0; s < k; ++s) {
    RunAttach attach;
    attach.host_bus = &bus;
    attach.label_suffix = ":shard" + std::to_string(s);
    attach.deliver = [this, s, &gathers, &shard_collectors, &host_sim,
                      &merger](metrics::QueryRecord&& rec) {
      GatherState& g = gathers[rec.query_index];
      // Local -> global: one offset add per entry, monotone within the
      // shard, so the run stays sorted by (distance, id).
      for (KV& kv : rec.results) {
        kv = KV::make(kv.dist, part_.to_global(s, kv.id()));
      }
      g.dispatch_ns = std::min(g.dispatch_ns, rec.dispatch_ns);
      g.gpu_done_ns = std::max(g.gpu_done_ns, rec.gpu_done_ns);
      if (rec.disposition < g.disposition) g.disposition = rec.disposition;
      g.steps += rec.steps;
      g.rounds += rec.rounds;
      g.scored += rec.scored_points;
      g.gpu_cost += rec.gpu_cost;
      const auto it = std::find(g.route.begin(), g.route.end(), s);
      const auto ordinal =
          static_cast<std::size_t>(std::distance(g.route.begin(), it));
      const SimTime done = rec.done_ns;
      g.runs[ordinal] = rec.results;  // keep a copy in the diagnostics view
      shard_collectors[s].add(std::move(rec));
      if (++g.received == g.route.size()) {
        merger.push_ready(rec.query_index, done);
        host_sim.schedule(&merger, done);
      }
    };
    runs.push_back(std::make_unique<EngineRun>(*engines_[s],
                                               shard_arrivals[s],
                                               std::move(attach)));
    group.add(&runs[s]->simulation());
  }
  group.add(&host_sim);
  group.run();

  if (merged_collector.size() != arrivals.size()) {
    throw std::logic_error(
        "ShardedEngine: merged " + std::to_string(merged_collector.size()) +
        " of " + std::to_string(arrivals.size()) + " queries");
  }

  ShardedReport rep;
  rep.shards.reserve(k);
  EngineReport& m = rep.merged;
  for (std::size_t s = 0; s < k; ++s) {
    EngineReport r = runs[s]->finish();
    m.pcie_transactions += r.pcie_transactions;
    m.pcie_state_transactions += r.pcie_state_transactions;
    m.pcie_state_poll_transactions += r.pcie_state_poll_transactions;
    m.pcie_state_write_transactions += r.pcie_state_write_transactions;
    m.pcie_bytes += r.pcie_bytes;
    m.host_polls += r.host_polls;
    m.interrupts += r.interrupts;
    m.host_worker_steps += r.host_worker_steps;
    m.host_busy_ns += r.host_busy_ns;
    m.cta_busy_ns += r.cta_busy_ns;
    m.cta_count += r.cta_count;
    m.sim_events += r.sim_events;
    m.sim_stale_events += r.sim_stale_events;
    m.simcheck_checks += r.simcheck_checks;
    rep.shards.push_back(std::move(r));
    rep.shard_records.merge(shard_collectors[s]);
  }
  m.sim_events += host_sim.events_processed();
  m.sim_stale_events += host_sim.stale_events();
  m.host_busy_ns += merger.busy_ns();

  m.summary = merged_collector.summarize();
  m.storage = ds_.storage();
  m.plan = engines_[0]->plan();
  if (m.summary.span_ns > 0.0 && m.cta_count > 0) {
    m.gpu_utilization =
        m.cta_busy_ns /
        (m.summary.span_ns * static_cast<double>(m.cta_count));
  }
  if (ds_.has_ground_truth()) {
    double total_recall = 0.0;
    std::size_t served = 0;
    for (const auto& r : merged_collector.records()) {
      if (!r.served()) continue;
      ++served;
      total_recall += metrics::recall_at_k(ds_, r.query_index, r.results,
                                           cfg_.base.search.topk);
    }
    m.recall = served == 0 ? 0.0
                           : total_recall / static_cast<double>(served);
  }
  m.collector = std::move(merged_collector);
  m.trace_events =
      tracer != nullptr ? tracer->events_recorded() - trace_before : 0;
  if (tracer != nullptr && cfg_.base.tracer == nullptr &&
      !sim::trace_default_path().empty()) {
    tracer->save(sim::trace_default_path());
  }

  rep.bus_transactions = bus.transactions();
  rep.bus_bytes = bus.bytes();
  rep.bus_utilization = bus.utilization(m.summary.span_ns);
  rep.merge_busy_ns = merger.busy_ns();
  rep.merges = merger.merges();
  rep.mean_fanout = arrivals.empty()
                        ? 0.0
                        : static_cast<double>(routed_total) /
                              static_cast<double>(arrivals.size());
  return rep;
}

}  // namespace algas::core
