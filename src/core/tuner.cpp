#include "core/tuner.hpp"

#include <algorithm>
#include <sstream>

#include "common/types.hpp"

namespace algas::core {

std::size_t auto_reserved_bytes(std::size_t dim) {
  // Baseline 1 KiB (Table II "Reserved shared memory per block") plus a
  // dimension-scaled runtime cache: high-dimensional datasets keep hot
  // vector chunks cached, §IV-C.
  const std::size_t base = 1024;
  if (dim >= 768) return base + 3 * 1024;
  if (dim >= 384) return base + 2 * 1024;
  if (dim >= 192) return base + 1024;
  return base;
}

TunePlan tune(const TuneInput& in) {
  TunePlan plan;
  plan.threads_per_block = in.device.warp_size;
  plan.reserved_per_block = in.reserved_per_block != 0
                                ? in.reserved_per_block
                                : auto_reserved_bytes(in.layout.dim);
  plan.shared_mem_per_block = in.layout.total_bytes();

  if (in.slots == 0) {
    plan.reason = "slots must be >= 1";
    return plan;
  }
  const std::size_t block_limit = in.device.max_resident_blocks();
  if (in.slots > block_limit) {
    std::ostringstream out;
    out << in.slots << " slots exceed the device's " << block_limit
        << " resident blocks";
    plan.reason = out.str();
    return plan;
  }

  // Upper bound from the block-residency constraint. Auto mode also caps at
  // 16 CTAs per query: beyond that, extra entry points add visited-table
  // contention without recall or latency benefit (CAGRA's practical limit).
  std::size_t n_parallel = block_limit / in.slots;
  // Simultaneous *full-speed* execution: one warp per SM scheduler. Beyond
  // that, persistent-kernel CTAs would timeslice and every slot slows down.
  const std::size_t speed_limit =
      std::max<std::size_t>(1, in.device.full_speed_ctas() / in.slots);
  n_parallel = std::min(n_parallel, speed_limit);
  if (in.requested_parallel != 0) {
    n_parallel = std::min(n_parallel, in.requested_parallel);
  } else {
    n_parallel = std::min<std::size_t>(n_parallel, 8);
  }

  // Walk N_parallel down until the shared-memory constraint also holds.
  for (; n_parallel >= 1; --n_parallel) {
    const std::size_t blocks_per_sm =
        ceil_div(n_parallel * in.slots, in.device.num_sms);
    const auto occ = sim::check_occupancy(in.device, in.layout, blocks_per_sm,
                                          plan.reserved_per_block);
    if (occ.fits) {
      plan.ok = true;
      plan.n_parallel = n_parallel;
      plan.total_ctas = n_parallel * in.slots;
      plan.blocks_per_sm = blocks_per_sm;
      plan.avail_per_block = occ.avail_per_block;
      plan.reason = "ok";
      return plan;
    }
    if (n_parallel == 1) {
      plan.reason = "even N_parallel=1 violates shared memory: " + occ.reason;
      return plan;
    }
  }
  plan.reason = "no feasible N_parallel";
  return plan;
}

std::string TunePlan::describe() const {
  std::ostringstream out;
  if (!ok) {
    out << "tuning failed: " << reason;
    return out.str();
  }
  out << "N_parallel=" << n_parallel << " total_ctas=" << total_ctas
      << " blocks/SM=" << blocks_per_sm << " threads/block="
      << threads_per_block << " smem/block=" << shared_mem_per_block
      << "B (avail " << avail_per_block << "B, reserved "
      << reserved_per_block << "B)";
  return out.str();
}

}  // namespace algas::core
