// ShardedEngine — scatter-gather serving across K simulated devices.
//
// The base set is split into K contiguous id ranges (dataset/partitioner);
// each shard gets its own deterministically built graph and a full
// AlgasEngine wired over a private Simulation. A query is scattered to all
// shards — or, with a fanout limit, to the shards whose coarse-quantizer
// centroids sit closest (the IVF baseline's k-means reused as a router) —
// and every probed shard answers with its local TopK. A host-side gather
// stage maps shard-local result ids to global ids (an offset add, so each
// run stays sorted) and k-way-merges the runs through
// search::merge_sorted_runs, priced as serial host work. This is the
// paper's §IV-C GPU-CPU cooperation scaled out: the host TopK merge now
// spans devices instead of CTAs.
//
// Timing composes on one virtual clock (sim::SimulationGroup): per-shard
// PCIe links clear their own bandwidth and then contend on a shared
// sim::HostBus, and the cross-shard merge runs on a serial host merge
// thread charged CostModel::host_topk_merge_ns per query.
//
// Determinism contract, matching the repo-wide superpower:
//   * K=1 is byte-identical to the unsharded AlgasEngine — no bus, no
//     gather stage, no label suffix, a group of one simulation.
//   * K-shard merged results are byte-identical across host thread counts:
//     per-shard searches are deterministic, the gather is keyed by query
//     and shard (never by completion order), and the merge breaks distance
//     ties by global id (search/topk_merge).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "baselines/ivf.hpp"
#include "core/engine.hpp"
#include "dataset/partitioner.hpp"
#include "graph/builder.hpp"
#include "metrics/collector.hpp"
#include "simgpu/checker.hpp"

namespace algas::core {

struct ShardedConfig {
  /// Per-shard engine configuration (slots, search, sync, cost, ...). For
  /// K > 1 an explicit `base.checker` is replaced by one private checker
  /// per shard: SimCheck::begin_run resets per-run state and a checker's
  /// drain hook is single-slot, so one instance cannot observe K
  /// concurrent runs. The serving view must be immutable — a
  /// tombstone-carrying `base.search.accept` is rejected on the sharded
  /// path. An attribute FILTER is supported: the bitset carries global
  /// ids, and each shard engine receives an offset view
  /// (AcceptPredicate::with_offset) sliced at its contiguous id range.
  AlgasConfig base;
  std::size_t shards = 2;
  /// Shards probed per query: 0 (or >= shards) scatters to all; otherwise
  /// each query goes to the `fanout` shards with the closest router
  /// centroid (min over the shard's centroids, ties by shard id).
  std::size_t fanout = 0;
  /// Per-shard graph construction (deterministic at any thread count).
  GraphKind graph_kind = GraphKind::kNsw;
  BuildConfig build;
  /// Coarse-quantizer size per shard for the fanout router (only built
  /// when 1 <= fanout < shards).
  std::size_t router_centroids = 8;
  std::uint64_t router_seed = 11;
  /// Divide `base.search.candidate_len` by the shard count (floored at
  /// topk; the engine re-clamps to a power of two >= the graph degree).
  /// This is where the scale-out throughput comes from: each shard holds
  /// 1/K of the base set, so a candidate list ~1/K as long preserves the
  /// quality of the merged union while cutting per-shard search work
  /// ~K-fold. K = 1 leaves the length untouched, preserving the
  /// byte-identity guarantee. Disable to probe each shard at the full
  /// unsharded depth (higher recall headroom, flat throughput).
  bool scale_candidate_len = true;
};

struct ShardedReport {
  /// Headline aggregated report. `collector` holds the final merged
  /// per-query records (global ids; `slot` reused as the number of shard
  /// runs merged); PCIe/host/sim counters are summed across shards plus
  /// the gather simulation; gpu_utilization is total CTA busy time over
  /// (total CTAs x merged span).
  EngineReport merged;
  /// Per-shard engine reports. Their collectors are empty for K > 1 (the
  /// gather stage owns completion); use `shard_records` for per-shard
  /// per-query data.
  std::vector<EngineReport> shards;
  /// Every shard's per-query records (global ids, per-shard timings),
  /// combined exactly via metrics::Collector::merge.
  metrics::Collector shard_records;
  // Shared host-bus contention (zero for K == 1: no bus is attached).
  std::uint64_t bus_transactions = 0;
  std::uint64_t bus_bytes = 0;
  double bus_utilization = 0.0;  ///< busy fraction of the merged span
  // Serial host merge thread (zero for K == 1: nothing to merge).
  double merge_busy_ns = 0.0;
  std::size_t merges = 0;
  double mean_fanout = 0.0;  ///< mean shards probed per query
};

class ShardedEngine {
 public:
  /// Partitions `ds`, slices per-shard datasets, builds per-shard graphs
  /// (cfg.build) and engines, and — when fanout is selective — per-shard
  /// coarse quantizers. Throws std::invalid_argument on an impossible
  /// partition, a tombstoned config, or when the tuner rejects a shard.
  ShardedEngine(const Dataset& ds, ShardedConfig cfg);

  const ShardedConfig& config() const { return cfg_; }
  const ShardPartition& partition() const { return part_; }
  const Dataset& shard_dataset(std::size_t s) const { return shard_ds_[s]; }
  const Graph& shard_graph(std::size_t s) const { return graphs_[s]; }
  const AlgasEngine& shard_engine(std::size_t s) const {
    return *engines_[s];
  }

  /// Shards query `query_index` will probe, ascending. Full scatter unless
  /// a selective fanout is configured; deterministic (centroid distances
  /// tie-break by shard id). Under an attribute filter the router falls
  /// back to full fanout when every selected shard is filter-empty —
  /// centroid affinity says nothing about where the accepted rows live,
  /// and probing only filter-empty shards would return nothing while
  /// accepted candidates exist elsewhere.
  std::vector<std::size_t> route(std::size_t query_index) const;

  ShardedReport run_closed_loop(std::size_t num_queries);

  /// Open loop with explicit arrival times (nondecreasing). Query indices
  /// must be unique — the gather is keyed by query index.
  ShardedReport run(const std::vector<PendingQuery>& arrivals);

 private:
  const Dataset& ds_;
  ShardedConfig cfg_;
  ShardPartition part_;
  std::vector<Dataset> shard_ds_;
  std::vector<Graph> graphs_;
  std::vector<std::unique_ptr<AlgasEngine>> engines_;
  /// Private per-shard checkers replacing an explicit base.checker (K > 1).
  std::vector<std::unique_ptr<sim::SimCheck>> shard_checks_;
  /// Per-shard routers; empty unless fanout is selective.
  std::vector<baselines::IvfIndex> routers_;
  bool selective_ = false;
  /// Accepted-row count per shard under base.search.accept; empty when the
  /// predicate is null. Backs the filter-empty fanout fallback in route().
  std::vector<std::size_t> shard_accepted_;
};

}  // namespace algas::core
