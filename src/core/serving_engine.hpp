// ServingEngine — the open-loop serving layer over ALGAS.
//
// Wraps ShardedEngine (K = 1 is the byte-identical single-device
// degenerate) with a generated workload: a deterministic arrival process
// (sim::ArrivalProcess), a relative per-query deadline, and a seeded
// priority mix. The wrapped engine supplies the mechanism — bounded
// admission (AlgasConfig::admission), queue-head deadline shedding, and
// Expired-slot eviction — and this layer supplies the workload and the
// serving-facing report: goodput, shed rate, deadline-miss rate, tail
// latency percentiles.
//
// Determinism contract: the workload (arrival instants, deadlines,
// priorities) is a pure function of (ServingConfig, dataset query count) —
// CI checksums it byte-for-byte across hosts. The engine's results for a
// workload that serves every query are byte-identical across host thread
// counts (the repo-wide guarantee); which queries get shed under overload
// depends on virtual timing and therefore on host_threads, so overload
// points are gated on goodput floors at a pinned configuration instead.
#pragma once

#include <cstddef>
#include <vector>

#include "core/sharded_engine.hpp"
#include "simgpu/arrival.hpp"

namespace algas::core {

struct ServingConfig {
  /// Engine under load: per-shard AlgasConfig (admission control lives in
  /// sharded.base.admission), shard count, fanout, graph construction.
  ShardedConfig sharded;
  sim::ArrivalConfig arrival;
  /// Relative deadline per query, microseconds after its arrival; <= 0
  /// disables deadlines (infinite).
  double deadline_us = 0.0;
  /// Fraction of queries tagged with the highest admission priority class
  /// (kPriorityClasses - 1); the rest ride class 0.
  double high_priority_fraction = 0.0;
  /// Seed for the priority mix (independent of the arrival seed).
  std::uint64_t mix_seed = 7;
  /// Queries to serve; 0 (or more than available) = every dataset query.
  std::size_t num_queries = 0;
};

struct ServingReport {
  ShardedReport sharded;
  /// The exact workload that ran (arrival/deadline/priority per query) —
  /// what the serving gate checksums.
  std::vector<PendingQuery> arrivals;
  /// Offered load: arrivals per second of the workload's arrival span.
  double offered_qps = 0.0;
  // Convenience copies of the headline serving metrics
  // (== sharded.merged.summary fields).
  double goodput_qps = 0.0;
  double shed_rate = 0.0;
  double deadline_miss_rate = 0.0;
  double p99_latency_us = 0.0;
  double p999_latency_us = 0.0;
};

class ServingEngine {
 public:
  /// Builds the wrapped ShardedEngine (graphs, routers, tuner) once; run()
  /// can then sweep workloads against it. Throws on an invalid engine or
  /// arrival configuration.
  ServingEngine(const Dataset& ds, ServingConfig cfg);

  const ServingConfig& config() const { return cfg_; }
  const ShardedEngine& sharded() const { return sharded_; }

  /// The deterministic workload run() would execute: query indices 0..n-1
  /// with ArrivalProcess arrival instants, absolute deadlines, and the
  /// seeded priority mix.
  std::vector<PendingQuery> plan_workload() const {
    return plan_workload(cfg_.arrival, cfg_.deadline_us);
  }
  /// Same, for an overridden workload shape (load sweeps reuse one built
  /// engine across arrival configs; mix/num_queries still follow cfg).
  std::vector<PendingQuery> plan_workload(const sim::ArrivalConfig& arrival,
                                          double deadline_us) const;

  ServingReport run() { return run(cfg_.arrival, cfg_.deadline_us); }
  ServingReport run(const sim::ArrivalConfig& arrival, double deadline_us);

 private:
  ServingConfig cfg_;
  const Dataset& ds_;
  ShardedEngine sharded_;
};

}  // namespace algas::core
