#include "core/state_sync.hpp"

#include <cassert>
#include <stdexcept>

#include "core/protocol_checker.hpp"
#include "simgpu/trace.hpp"

namespace algas::core {

namespace {
/// One state word on the wire.
constexpr std::size_t kStateBytes = sizeof(std::uint32_t);
}  // namespace

StateSync::StateSync(sim::Channel* channel, const sim::CostModel& cm,
                     std::size_t slots, std::size_t ctas_per_slot,
                     bool mirrored)
    : channel_(channel),
      cm_(cm),
      slots_(slots),
      ctas_(ctas_per_slot),
      mirrored_(mirrored),
      states_(slots * ctas_per_slot, SlotState::kNone) {
  assert(channel_ != nullptr);
}

SlotState StateSync::host_read(SimTime now, std::size_t slot, std::size_t cta,
                               double* elapsed) {
  ++host_polls_;
  if (mirrored_) {
    *elapsed += cm_.poll_local_ns;
  } else {
    // Reading device memory: one small channel transaction per poll.
    *elapsed += cm_.poll_local_ns +
                channel_->transfer(now + *elapsed, kStateBytes,
                                   sim::Xfer::kStatePoll);
  }
  const SlotState s = at(slot, cta);
  if (checker_) checker_->on_read(Side::kHost, now + *elapsed, slot, cta, s);
  return s;
}

void StateSync::host_write(SimTime now, std::size_t slot, std::size_t cta,
                           SlotState next, double* elapsed) {
  SlotState& s = at(slot, cta);
  const SlotState prev = s;
  if (checker_) {
    checker_->pre_write(Side::kHost, now + *elapsed, slot, cta, s, next);
  }
  if (!is_legal_transition(s, next)) {
    throw std::logic_error(std::string("illegal host transition ") +
                           slot_state_name(s) + " -> " +
                           slot_state_name(next));
  }
  ++transitions_;
  // Local update plus one posted write-through in both modes: in naive mode
  // the state lives on the device, in mirrored mode the remote copy is
  // updated. Posted: the host does not wait for propagation.
  *elapsed += cm_.poll_local_ns +
              channel_->post(now + *elapsed, kStateBytes,
                             sim::Xfer::kStateWrite);
  s = next;
  if (checker_) {
    checker_->post_write(Side::kHost, now + *elapsed, slot, cta, next);
  }
  trace_transition(Side::kHost, now + *elapsed, slot, cta, prev, next);
}

SlotState StateSync::device_read(SimTime now, std::size_t slot,
                                 std::size_t cta, double* elapsed) {
  *elapsed += cm_.poll_local_ns;  // kernel polls its own memory
  const SlotState s = at(slot, cta);
  if (checker_) {
    checker_->on_read(Side::kDevice, now + *elapsed, slot, cta, s);
  }
  return s;
}

void StateSync::device_write(SimTime now, std::size_t slot, std::size_t cta,
                             SlotState next, double* elapsed) {
  SlotState& s = at(slot, cta);
  const SlotState prev = s;
  if (checker_) {
    checker_->pre_write(Side::kDevice, now + *elapsed, slot, cta, s, next);
  }
  if (!is_legal_transition(s, next)) {
    throw std::logic_error(std::string("illegal device transition ") +
                           slot_state_name(s) + " -> " +
                           slot_state_name(next));
  }
  ++transitions_;
  *elapsed += cm_.poll_local_ns;
  if (mirrored_) {
    // Posted write-through to the host mirror so host polls stay local.
    *elapsed += channel_->post(now + *elapsed, kStateBytes,
                               sim::Xfer::kStateWrite);
  }
  // Naive mode: the state lives in device memory; the host pays on poll.
  s = next;
  if (checker_) {
    checker_->post_write(Side::kDevice, now + *elapsed, slot, cta, next);
  }
  trace_transition(Side::kDevice, now + *elapsed, slot, cta, prev, next);
}

void StateSync::trace_transition(Side side, SimTime t, std::size_t slot,
                                 std::size_t cta, SlotState from,
                                 SlotState to) {
  if (!trace_) return;
  sim::TraceArgs args;
  args.add("cta", static_cast<std::uint64_t>(cta));
  args.add("side", side_name(side));
  trace_->instant(trace_pid_,
                  trace_tid_base_ + static_cast<int>(slot),
                  std::string(slot_state_name(from)) + "->" +
                      slot_state_name(to),
                  t, std::move(args), "state");
}

bool StateSync::host_all_in_state(SimTime now, std::size_t slot, SlotState s,
                                  double* elapsed) {
  for (std::size_t c = 0; c < ctas_; ++c) {
    if (host_read(now, slot, c, elapsed) != s) return false;
  }
  return true;
}

}  // namespace algas::core
