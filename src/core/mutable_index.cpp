#include "core/mutable_index.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "common/thread_pool.hpp"
#include "graph/gpu_construction.hpp"
#include "graph/neighbor_selection.hpp"

namespace algas::core {

void MutationChecker::reader_enter(const char* section) {
  readers_.fetch_add(1, std::memory_order_acq_rel);
  if (writers_.load(std::memory_order_acquire) != 0) {
    readers_.fetch_sub(1, std::memory_order_acq_rel);
    throw std::logic_error(std::string("MutationChecker: reader section '") +
                           section +
                           "' admitted while a writer holds the index");
  }
}

void MutationChecker::reader_exit() {
  readers_.fetch_sub(1, std::memory_order_acq_rel);
}

void MutationChecker::writer_enter(const char* section) {
  if (writers_.fetch_add(1, std::memory_order_acq_rel) != 0) {
    writers_.fetch_sub(1, std::memory_order_acq_rel);
    throw std::logic_error(std::string("MutationChecker: writer section '") +
                           section + "' overlaps another writer");
  }
  if (readers_.load(std::memory_order_acquire) != 0) {
    writers_.fetch_sub(1, std::memory_order_acq_rel);
    throw std::logic_error(std::string("MutationChecker: writer section '") +
                           section + "' admitted while readers are active");
  }
}

void MutationChecker::writer_exit() {
  writers_.fetch_sub(1, std::memory_order_acq_rel);
}

MutableIndex::MutableIndex(Dataset ds, Graph g, BuildConfig cfg)
    : ds_(std::move(ds)), graph_(std::move(g)), cfg_(std::move(cfg)) {
  if (graph_.num_nodes() != ds_.num_base()) {
    throw std::invalid_argument(
        "MutableIndex: graph covers " + std::to_string(graph_.num_nodes()) +
        " nodes but the dataset has " + std::to_string(ds_.num_base()) +
        " rows");
  }
  cfg_.degree = graph_.degree();
  published_ = graph_.num_nodes();
  tombstones_.resize(published_);
  // Admit readers immediately: no lazy cache may be left for a concurrent
  // first use.
  ds_.warm_caches();
}

Dataset MutableIndex::require_empty(Dataset ds) {
  if (ds.num_base() != 0) {
    throw std::invalid_argument(
        "MutableIndex: the empty-start constructor needs a dataset with no "
        "base rows; adopt a built graph instead");
  }
  return ds;
}

MutableIndex::MutableIndex(Dataset ds, BuildConfig cfg)
    : MutableIndex(require_empty(std::move(ds)), Graph(0, cfg.degree), cfg) {}

std::size_t MutableIndex::stage(std::span<const float> rows) {
  WriteSection sec(checker_, "stage");
  // append_base is the epoch hand-off: ground truth drops, the norm table
  // extends in place, the encoded store re-encodes — all while this writer
  // section holds the index exclusively.
  ds_.append_base(rows);
  ds_.warm_caches();
  return rows.size() / ds_.dim();
}

StagedBatch MutableIndex::prepare_next(std::size_t max_rows) {
  ReadSection sec(checker_, "prepare");
  StagedBatch b;
  b.first = published_;
  const std::size_t want =
      max_rows == 0 ? std::max<std::size_t>(1, cfg_.insert_batch) : max_rows;
  b.count = std::min(want, pending());
  b.found.assign(b.count, {});
  b.scored.assign(b.count, 0);
  b.prepared = true;
  if (b.count == 0) return b;

  // Identical phase-1 schedule to build_nsw: when every row is staged up
  // front, ef and the batch boundaries match the offline build exactly,
  // which is what makes stream-from-empty byte-identical to it.
  const std::size_t n = ds_.num_base();
  const std::size_t m = std::min(cfg_.degree, n - 1);
  const std::size_t ef = std::max(cfg_.ef_construction, m);
  const std::size_t begin = b.first;
  BuildExecutor exec(cfg_.threads);
  if (begin == 0) {
    // Bootstrap batch: no prefix graph exists; points score each other
    // exhaustively, exactly like the offline builder's first batch.
    if (b.count > 1) {
      exec.parallel_for(b.count - 1, [&](std::size_t lo, std::size_t hi) {
        std::vector<float> tile;
        for (std::size_t v = lo + 1; v < hi + 1; ++v) {
          auto& list = b.found[v];
          tile.resize(v);
          ds_.distance_batch_range(ds_.base_vector(v), 0, v, tile);
          list.reserve(v);
          for (std::size_t u = 0; u < v; ++u) {
            list.emplace_back(tile[u], static_cast<NodeId>(u));
          }
          std::sort(list.begin(), list.end());
          if (list.size() > cfg_.ef_construction) {
            list.resize(cfg_.ef_construction);
          }
          b.scored[v] = v;
        }
      });
    }
  } else {
    exec.parallel_for(b.count, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        const std::size_t v = begin + i;
        b.found[i] = build_beam_search(ds_, graph_, ds_.base_vector(v), ef, 0,
                                       begin, &b.scored[i]);
      }
    });
  }
  return b;
}

InsertReport MutableIndex::apply(StagedBatch& batch) {
  WriteSection sec(checker_, "apply");
  if (!batch.prepared) {
    throw std::logic_error("MutableIndex::apply: batch was not prepared");
  }
  if (batch.first != published_) {
    throw std::logic_error(
        "MutableIndex::apply: batches must apply in stage order (batch "
        "starts at row " +
        std::to_string(batch.first) + ", published is " +
        std::to_string(published_) + ")");
  }
  if (batch.first + batch.count > ds_.num_base()) {
    throw std::logic_error(
        "MutableIndex::apply: batch extends past the staged rows");
  }
  InsertReport rep = link_batch(batch);
  batch.prepared = false;  // consumed
  return rep;
}

InsertReport MutableIndex::link_batch(const StagedBatch& batch) {
  InsertReport rep;
  rep.inserted = batch.count;
  if (batch.count == 0) return rep;
  const std::size_t begin = batch.first;
  const std::size_t end = batch.first + batch.count;
  graph_.grow(batch.count);
  tombstones_.resize(graph_.num_nodes());

  // Serial accounting in insertion-id order, as in the offline builder.
  std::vector<double> durations;
  durations.reserve(batch.count);
  for (std::size_t i = (begin == 0 ? 1 : 0); i < batch.count; ++i) {
    rep.scored_points += batch.scored[i];
    durations.push_back(
        construction_insert_cost_ns(cfg_, ds_.dim(), batch.scored[i]));
  }

  // Phase 2 — links applied serially in insertion-id order: the published
  // graph is a deterministic fold over the batch, independent of the
  // thread count phase 1 ran at and of any queries served in between.
  std::vector<NodeId> row_ids;
  std::vector<float> row_dists;
  std::vector<std::pair<float, NodeId>> candidates;
  for (std::size_t v = std::max<std::size_t>(begin, 1); v < end; ++v) {
    candidates = batch.found[v - begin];
    if (candidates.empty()) continue;
    select_neighbors(ds_, graph_, static_cast<NodeId>(v), candidates);
    row_ids.clear();
    for (NodeId u : graph_.neighbors(static_cast<NodeId>(v))) {
      if (u != kInvalidNode) row_ids.push_back(u);
    }
    row_dists.resize(row_ids.size());
    ds_.distance_batch(ds_.base_vector(v), row_ids, row_dists);
    for (std::size_t i = 0; i < row_ids.size(); ++i) {
      link(ds_, graph_, row_ids[i], static_cast<NodeId>(v), row_dists[i]);
    }
  }

  const std::size_t capacity = construction_capacity(cfg_, ds_.dim());
  rep.virtual_build_ns = cfg_.cost.kernel_launch_ns +
                         construction_wave_makespan(durations, capacity);
  for (double d : durations) rep.serial_build_ns += d;
  rep.serial_build_ns += cfg_.cost.kernel_launch_ns;
  rep.batches = 1;

  // Publish: the entry point recomputes over the published prefix only —
  // staged-but-unlinked rows must never become the entry.
  published_ = graph_.num_nodes();
  BuildExecutor exec(cfg_.threads);
  graph_.set_entry_point(approximate_medoid(ds_, exec, published_));
  ++epoch_;
  return rep;
}

InsertReport MutableIndex::insert(std::span<const float> rows) {
  InsertReport total;
  stage(rows);
  while (pending() > 0) {
    StagedBatch b = prepare_next();
    total += apply(b);
  }
  return total;
}

bool MutableIndex::remove(NodeId v) {
  WriteSection sec(checker_, "remove");
  if (static_cast<std::size_t>(v) >= published_) {
    throw std::out_of_range("MutableIndex::remove: node " +
                            std::to_string(v) + " is not published (" +
                            std::to_string(published_) + " nodes)");
  }
  return tombstones_.mark(v);
}

CompactReport MutableIndex::compact() {
  WriteSection sec(checker_, "compact");
  if (pending() != 0) {
    throw std::logic_error(
        "MutableIndex::compact: apply staged batches before compacting");
  }
  CompactReport rep;
  rep.dropped = tombstones_.count();
  rep.survivors = published_ - rep.dropped;
  if (rep.dropped == 0) return rep;

  const std::size_t n = published_;
  const std::size_t dim = ds_.dim();
  std::vector<NodeId> remap(n, kInvalidNode);
  NodeId next = 0;
  for (std::size_t v = 0; v < n; ++v) {
    if (!tombstones_.contains(static_cast<NodeId>(v))) {
      remap[v] = next++;
    }
  }
  const std::size_t live_n = next;

  Dataset nds(ds_.name(), dim, ds_.metric());
  {
    auto& base = nds.mutable_base();
    base.reserve(live_n * dim);
    for (std::size_t v = 0; v < n; ++v) {
      if (remap[v] == kInvalidNode) continue;
      const auto row = ds_.base_vector(v);
      base.insert(base.end(), row.begin(), row.end());
    }
    nds.mutable_queries() = ds_.queries();
  }
  nds.set_storage(ds_.storage());
  nds.warm_caches();

  // Remap rows in new-id order. A row that kept all its neighbors copies
  // over verbatim (compacted padding at the tail); a row that lost dead
  // edges re-selects over its live neighbors plus the dead neighbors' live
  // neighbors — the 2-hop patch that keeps routes through reclaimed nodes
  // navigable. All serial, so the compacted graph is deterministic.
  Graph ng(live_n, graph_.degree());
  std::vector<NodeId> ids;
  std::vector<float> dists;
  std::vector<std::pair<float, NodeId>> candidates;
  for (std::size_t v = 0; v < n; ++v) {
    const NodeId nv = remap[v];
    if (nv == kInvalidNode) continue;
    ids.clear();
    bool lost = false;
    for (NodeId u : graph_.neighbors(static_cast<NodeId>(v))) {
      if (u == kInvalidNode) continue;
      if (remap[u] != kInvalidNode) {
        ids.push_back(remap[u]);
        continue;
      }
      lost = true;
      for (NodeId w : graph_.neighbors(u)) {
        if (w == kInvalidNode || w == static_cast<NodeId>(v)) continue;
        if (remap[w] != kInvalidNode) ids.push_back(remap[w]);
      }
    }
    if (!lost) {
      auto row = ng.mutable_neighbors(nv);
      for (std::size_t i = 0; i < ids.size(); ++i) row[i] = ids[i];
      continue;
    }
    ++rep.patched;
    if (ids.empty()) continue;
    dists.resize(ids.size());
    nds.distance_batch(nds.base_vector(nv), ids, dists);
    candidates.clear();
    for (std::size_t i = 0; i < ids.size(); ++i) {
      candidates.emplace_back(dists[i], ids[i]);
    }
    select_neighbors(nds, ng, nv, candidates);
  }

  if (live_n > 0) {
    BuildExecutor exec(cfg_.threads);
    ng.set_entry_point(approximate_medoid(nds, exec));
  }

  // Reclamation recycles the VisitedTable trick: the generation bump
  // retires every tombstone in O(1); the resize then re-bases the set on
  // the compacted id space.
  tombstones_.clear();
  tombstones_.resize(live_n);
  ds_ = std::move(nds);
  graph_ = std::move(ng);
  published_ = live_n;
  ++epoch_;
  return rep;
}

EngineReport MutableIndex::serve(AlgasConfig cfg,
                                 std::size_t num_queries) const {
  ReadSection sec(checker_, "serve");
  if (published_ == 0) return EngineReport{};
  // Conjoin the caller's predicate (an attribute filter, usually) with
  // this index's tombstones: deleted rows are excluded at the accept step
  // whatever else the caller filters on.
  cfg.search.accept = cfg.search.accept.with_tombstones(&tombstones_);
  AlgasEngine engine(ds_, graph_, cfg);
  return engine.run_closed_loop(num_queries);
}

namespace {
constexpr char kMxMagic[8] = {'A', 'L', 'G', 'A', 'S', 'M', 'X', '1'};
}

void MutableIndex::save(const std::string& path) const {
  ReadSection sec(checker_, "save");
  if (pending() != 0) {
    throw std::logic_error(
        "MutableIndex::save: apply staged batches before snapshotting");
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open " + path + " for write");
  out.write(kMxMagic, sizeof(kMxMagic));
  const std::uint64_t epoch = epoch_;
  out.write(reinterpret_cast<const char*>(&epoch), sizeof(epoch));
  graph_.save(out, path);
  const std::vector<NodeId> ids = tombstones_.ids();
  const std::uint64_t count = ids.size();
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  out.write(reinterpret_cast<const char*>(ids.data()),
            static_cast<std::streamsize>(ids.size() * sizeof(NodeId)));
  if (!out) throw std::runtime_error("short write to " + path);
}

MutableIndex MutableIndex::load(const std::string& path, Dataset ds,
                                BuildConfig cfg) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  char magic[8];
  if (!in.read(magic, sizeof(magic)) ||
      std::memcmp(magic, kMxMagic, sizeof(kMxMagic)) != 0) {
    throw std::runtime_error("not an ALGAS mutable-index snapshot: " + path);
  }
  std::uint64_t epoch = 0;
  if (!in.read(reinterpret_cast<char*>(&epoch), sizeof(epoch))) {
    throw std::runtime_error("truncated snapshot header in " + path);
  }
  Graph g = Graph::load(in, path);
  std::uint64_t count = 0;
  if (!in.read(reinterpret_cast<char*>(&count), sizeof(count))) {
    throw std::runtime_error("truncated tombstone section in " + path);
  }
  if (count > g.num_nodes()) {
    throw std::runtime_error("corrupt tombstone section in " + path + ": " +
                             std::to_string(count) + " tombstones for " +
                             std::to_string(g.num_nodes()) + " nodes");
  }
  std::vector<NodeId> ids(static_cast<std::size_t>(count));
  if (count > 0 &&
      !in.read(reinterpret_cast<char*>(ids.data()),
               static_cast<std::streamsize>(ids.size() * sizeof(NodeId)))) {
    throw std::runtime_error("truncated tombstone section in " + path);
  }
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const bool ordered = i == 0 || ids[i - 1] < ids[i];
    if (!ordered || static_cast<std::size_t>(ids[i]) >= g.num_nodes()) {
      throw std::runtime_error("corrupt tombstone section in " + path +
                               ": ids must be ascending node ids");
    }
  }
  if (in.peek() != std::ifstream::traits_type::eof()) {
    throw std::runtime_error("trailing bytes after snapshot payload in " +
                             path);
  }
  if (ds.num_base() != g.num_nodes()) {
    throw std::invalid_argument(
        "MutableIndex::load: snapshot covers " +
        std::to_string(g.num_nodes()) + " nodes but the dataset has " +
        std::to_string(ds.num_base()) + " rows");
  }
  MutableIndex idx(std::move(ds), std::move(g), std::move(cfg));
  for (NodeId id : ids) idx.tombstones_.mark(id);
  idx.epoch_ = epoch;
  return idx;
}

}  // namespace algas::core
