#include "core/serving_engine.hpp"

#include <algorithm>
#include <limits>

namespace algas::core {

ServingEngine::ServingEngine(const Dataset& ds, ServingConfig cfg)
    : cfg_(std::move(cfg)), ds_(ds), sharded_(ds, cfg_.sharded) {
  // Construct-time validation of the arrival config (run() would hit the
  // same throw, but failing in the constructor keeps sweeps fail-fast).
  sim::ArrivalProcess probe(cfg_.arrival);
  (void)probe;
}

std::vector<PendingQuery> ServingEngine::plan_workload(
    const sim::ArrivalConfig& arrival, double deadline_us) const {
  std::size_t n = ds_.num_queries();
  if (cfg_.num_queries > 0) n = std::min(n, cfg_.num_queries);

  sim::ArrivalProcess proc(arrival);
  Rng mix(cfg_.mix_seed);
  const double deadline_ns =
      deadline_us > 0.0 ? deadline_us * 1000.0
                        : std::numeric_limits<double>::infinity();

  std::vector<PendingQuery> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    PendingQuery q;
    q.query_index = i;  // unique — required by the sharded gather
    q.arrival_ns = proc.next_arrival_ns();
    q.deadline_ns = q.arrival_ns + deadline_ns;
    if (cfg_.high_priority_fraction > 0.0 &&
        mix.next_double() < cfg_.high_priority_fraction) {
      q.priority = static_cast<std::uint8_t>(kPriorityClasses - 1);
    }
    out.push_back(q);
  }
  return out;
}

ServingReport ServingEngine::run(const sim::ArrivalConfig& arrival,
                                 double deadline_us) {
  ServingReport rep;
  rep.arrivals = plan_workload(arrival, deadline_us);
  rep.sharded = sharded_.run(rep.arrivals);
  if (!rep.arrivals.empty() && rep.arrivals.back().arrival_ns > 0.0) {
    rep.offered_qps = static_cast<double>(rep.arrivals.size()) * 1e9 /
                      rep.arrivals.back().arrival_ns;
  }
  const metrics::RunSummary& s = rep.sharded.merged.summary;
  rep.goodput_qps = s.goodput_qps;
  rep.shed_rate = s.shed_rate;
  rep.deadline_miss_rate = s.deadline_miss_rate;
  rep.p99_latency_us = s.p99_latency_us;
  rep.p999_latency_us = s.p999_latency_us;
  return rep;
}

}  // namespace algas::core
