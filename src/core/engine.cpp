#include "core/engine.hpp"

#include <algorithm>
#include <cassert>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "common/ownership.hpp"
#include "core/protocol_checker.hpp"
#include "core/state_sync.hpp"
#include "metrics/recall.hpp"
#include "search/multi_cta.hpp"
#include "search/topk_merge.hpp"
#include "simgpu/simulation.hpp"
#include "simgpu/trace.hpp"

namespace algas::core {

std::size_t visited_clear_words(std::size_t num_base,
                                std::size_t n_parallel) {
  // ceil on both levels: the bitmap's trailing partial word AND the split's
  // remainder words are charged. The seed's `words / n_parallel + 1` formula
  // mis-sized the per-CTA share — off by one full word whenever n_parallel
  // divides the word count, and drifting as n_parallel grows.
  return ceil_div(ceil_div(num_base, 64), std::max<std::size_t>(1, n_parallel));
}

const char* host_sync_name(HostSync s) {
  switch (s) {
    case HostSync::kPollNaive: return "poll-naive";
    case HostSync::kPollMirrored: return "poll-mirrored";
    case HostSync::kBlocking: return "blocking";
  }
  return "invalid";
}

namespace {

/// Per-slot runtime shared between the slot's CTAs and its host worker —
/// the in-memory half of the Fig 9 single-writer matrix. Host-side fields
/// are owned by the slot's HostWorker outright; the per-query scratch
/// rotates between the CTAs (while the slot is in Work) and the host
/// (outside Work), with the slot state machine acting as the epoch.
struct SlotRuntime {
  bool busy ALGAS_OWNED_BY(HostWorker) = false;  // a query is in flight
  bool quit ALGAS_OWNED_BY(HostWorker) = false;  // slot retired
  std::size_t query_index ALGAS_OWNED_BY(HostWorker) = 0;
  SimTime arrival_ns ALGAS_OWNED_BY(HostWorker) = 0.0;
  SimTime dispatch_ns ALGAS_OWNED_BY(HostWorker) = 0.0;
  /// Absolute deadline of the in-flight query (infinity = none). Consulted
  /// by the host only — the persistent kernel never reads deadlines, so the
  /// device-side search is deadline-oblivious exactly like real ALGAS CTAs.
  SimTime deadline_ns ALGAS_OWNED_BY(HostWorker) =
      std::numeric_limits<SimTime>::infinity();
  std::uint8_t priority ALGAS_OWNED_BY(HostWorker) = 0;
  search::VisitedTable visited ALGAS_GUARDED_BY_EPOCH(CtaActor, HostWorker,
                                                      RunState);
  std::vector<NodeId> entries ALGAS_OWNED_BY(HostWorker);  // per-CTA entry pts
  // T * L contiguous result block (§IV-B): host fills/drains outside Work,
  // CTAs write their stripes inside Work, RunState sizes it at wiring time.
  std::vector<KV> result_buffer ALGAS_GUARDED_BY_EPOCH(CtaActor, HostWorker,
                                                       RunState);
  // Per-query accumulation harvested into the QueryRecord at completion.
  search::StepCost gpu_cost ALGAS_GUARDED_BY_EPOCH(CtaActor, HostWorker);
  std::size_t steps ALGAS_GUARDED_BY_EPOCH(CtaActor, HostWorker) = 0;
  std::size_t rounds ALGAS_GUARDED_BY_EPOCH(CtaActor, HostWorker) = 0;
  std::size_t scored ALGAS_GUARDED_BY_EPOCH(CtaActor, HostWorker) = 0;
  // Completion bookkeeping (interrupt path + instrumentation).
  std::size_t finished_ctas ALGAS_GUARDED_BY_EPOCH(CtaActor, HostWorker) = 0;
  bool complete ALGAS_GUARDED_BY_EPOCH(CtaActor, HostWorker) = false;
  SimTime gpu_done_ns ALGAS_GUARDED_BY_EPOCH(CtaActor, HostWorker) = 0.0;
  std::uint64_t flow_id ALGAS_OWNED_BY(HostWorker) = 0;  // trace flow arrow
};

struct RunState;
class AdmissionActor;

/// Builds the zero-results record for a query that never ran: the shed
/// instant stamps dispatch/gpu_done/done so service_ns is zero rather than
/// negative, and the disposition says which policy dropped it. The caller
/// still counts the record toward `delivered` — every arrival produces
/// exactly one record regardless of outcome.
metrics::QueryRecord shed_record(const PendingQuery& q, SimTime when,
                                 metrics::Disposition why) {
  metrics::QueryRecord rec;
  rec.query_index = q.query_index;
  rec.slot = metrics::QueryRecord::kNoSlot;  // never occupied one
  rec.arrival_ns = q.arrival_ns;
  rec.dispatch_ns = when;
  rec.gpu_done_ns = when;
  rec.done_ns = when;
  rec.deadline_ns = q.deadline_ns;
  rec.priority = q.priority;
  rec.disposition = why;
  return rec;
}

/// One persistent-kernel CTA: polls its slot state, runs maintenance rounds
/// when in Work, pushes results and flags Finish, exits on Quit.
class CtaActor final : public sim::Actor {
 public:
  CtaActor(RunState& run, std::size_t slot, std::size_t cta);
  void step(sim::Simulation& sim) override;
  const char* name() const override { return "cta"; }
  double busy_ns() const { return busy_ns_; }

 private:
  RunState& run_;
  std::size_t slot_;
  std::size_t cta_;
  search::IntraCtaSearch search_;
  bool active_ = false;
  double busy_ns_ = 0.0;
};

/// One engine run's trace wiring: lane ids under one process group.
struct TraceLanes {
  sim::Tracer* tracer = nullptr;  // null = untraced run
  int pid = 0;
  int slot_tid0 = 0;
  int cta_tid0 = 0;
  int host_tid0 = 0;
  int link_tid = 0;
};

/// One host worker thread: dispatches queries into its slots, polls their
/// states, fetches + merges results, retires slots when the workload drains.
class HostWorker final : public sim::Actor {
 public:
  HostWorker(RunState& run, std::size_t index,
             std::vector<std::size_t> my_slots)
      : run_(run), index_(index), my_slots_(std::move(my_slots)) {}
  void step(sim::Simulation& sim) override;
  const char* name() const override { return "host-worker"; }

 private:
  bool dispatch(sim::Simulation& sim, std::size_t slot, double* elapsed);
  void fetch_and_complete(sim::Simulation& sim, std::size_t slot,
                          double* elapsed);
  void evict_expired(sim::Simulation& sim, std::size_t slot, double* elapsed);
  void deliver_shed(sim::Simulation& sim, const PendingQuery& q,
                    double* elapsed);

  RunState& run_;
  std::size_t index_;  ///< worker ordinal (trace lane)
  std::vector<std::size_t> my_slots_;
  std::size_t cursor_ = 0;  ///< round-robin scan start (fairness)
};

/// All state of one engine run, wired together before Simulation::run().
struct RunState {
  RunState(const Dataset& ds_in, const Graph& g_in, const AlgasConfig& cfg_in,
           const TunePlan& plan_in, sim::SimCheck* check_in)
      : ds(ds_in),
        g(g_in),
        cfg(cfg_in),
        plan(plan_in),
        channel(cfg_in.cost),
        // Mirroring applies to the mirrored-polling mode only; blocking
        // keeps device states local (interrupts carry completion instead).
        sync(&channel, cfg_in.cost, cfg_in.slots, plan_in.n_parallel,
             cfg_in.host_sync == HostSync::kPollMirrored),
        qm(check_in),
        slots(cfg_in.slots) {
    const std::size_t list_len =
        search::normalize_config(cfg.search, g.degree()).candidate_len;
    for (auto& s : slots) {
      s.visited.resize(ds.num_base());
      s.result_buffer.assign(plan.n_parallel * list_len, KV::empty());
    }
    run_len = list_len;
  }

  const Dataset& ds;
  const Graph& g;
  const AlgasConfig& cfg;
  const TunePlan& plan;

  sim::Simulation sim;
  sim::Channel channel;
  StateSync sync;
  QueryManager qm;
  metrics::Collector collector;
  std::vector<SlotRuntime> slots;
  std::vector<std::unique_ptr<CtaActor>> ctas;
  std::vector<std::unique_ptr<HostWorker>> workers;
  std::vector<HostWorker*> worker_of_slot;  // interrupt routing (blocking)

  std::size_t run_len = 0;       // candidate list length L (normalized)
  std::size_t total_queries = 0;
  /// Orchestrator completion sink (RunAttach::deliver); empty = records go
  /// to this run's own collector.
  std::function<void(metrics::QueryRecord&&)> deliver;
  // Run-wide counters: each has exactly one writing actor class, so the
  // totals are exact without any aggregation step.
  std::size_t delivered ALGAS_OWNED_BY(HostWorker, AdmissionActor) = 0;
  std::uint64_t interrupts ALGAS_OWNED_BY(CtaActor) = 0;
  std::uint64_t worker_steps ALGAS_OWNED_BY(HostWorker) = 0;
  double worker_busy_ns ALGAS_OWNED_BY(HostWorker) = 0.0;
  TraceLanes trace;
  std::size_t in_flight ALGAS_OWNED_BY(HostWorker) = 0;  // dispatched, undelivered
  /// Non-null iff the run has a bounded admission queue: arrivals then flow
  /// through the actor at their arrival instants instead of being
  /// pre-loaded, so workload exhaustion must also wait for it.
  AdmissionActor* admission = nullptr;

  bool workload_exhausted() const;
  /// Earliest instant new work can appear: the queue's next arrival or the
  /// admission actor's next push, whichever is sooner. Workers sleeping on
  /// a dry queue wake here.
  SimTime next_arrival() const;
};

/// Serving front-end: feeds arrivals into the bounded host queue at their
/// arrival instants, so AdmissionConfig capacity decisions see the true
/// queue occupancy of that moment. Admission bookkeeping charges no virtual
/// time — it models a front-end off the host workers' critical path — and a
/// query the policy sheds becomes a zero-cost kShedQueue record at the
/// instant the decision is made, keeping the one-record-per-arrival
/// invariant. Only instantiated when cfg.admission is bounded; the default
/// unbounded path pre-loads the queue exactly as the pre-serving engine did
/// (byte-identical).
class AdmissionActor final : public sim::Actor {
 public:
  AdmissionActor(RunState& run, std::vector<PendingQuery> arrivals)
      : run_(run), arrivals_(std::move(arrivals)) {}

  void step(sim::Simulation& sim) override {
    while (cursor_ < arrivals_.size() &&
           arrivals_[cursor_].arrival_ns <= sim.now()) {
      const PendingQuery q = arrivals_[cursor_++];
      auto victim = run_.qm.admit(q, run_.cfg.admission);
      if (victim) {
        // kRejectNew returns the newcomer; kDropOldest returns the evicted
        // queue entry. Either way the victim's record is stamped now — the
        // instant the admission decision was made.
        metrics::QueryRecord rec =
            shed_record(*victim, sim.now(), metrics::Disposition::kShedQueue);
        if (run_.deliver) {
          run_.deliver(std::move(rec));
        } else {
          run_.collector.add(std::move(rec));
        }
        ++run_.delivered;
      }
    }
    if (cursor_ < arrivals_.size()) {
      sim.schedule(this, arrivals_[cursor_].arrival_ns);
    }
  }
  const char* name() const override { return "admission"; }

  bool exhausted() const { return cursor_ == arrivals_.size(); }
  SimTime next_push_ns() const {
    return exhausted() ? std::numeric_limits<SimTime>::infinity()
                       : arrivals_[cursor_].arrival_ns;
  }
  SimTime first_arrival_ns() const {
    return arrivals_.empty() ? 0.0 : arrivals_.front().arrival_ns;
  }

 private:
  RunState& run_;
  std::vector<PendingQuery> arrivals_;
  std::size_t cursor_ = 0;
};

bool RunState::workload_exhausted() const {
  return qm.empty() && (admission == nullptr || admission->exhausted());
}

SimTime RunState::next_arrival() const {
  SimTime t = qm.next_arrival();
  if (admission != nullptr) t = std::min(t, admission->next_push_ns());
  return t;
}

CtaActor::CtaActor(RunState& run, std::size_t slot, std::size_t cta)
    : run_(run),
      slot_(slot),
      cta_(cta),
      search_(run.ds, run.g, run.cfg.cost, run.cfg.search) {}

void CtaActor::step(sim::Simulation& sim) {
  const sim::CostModel& cm = run_.cfg.cost;
  double elapsed = 0.0;
  const SlotState st = run_.sync.device_read(sim.now(), slot_, cta_, &elapsed);

  switch (st) {
    case SlotState::kWork: {
      SlotRuntime& rt = run_.slots[slot_];
      if (!active_) {
        active_ = true;
        // Start-of-query: load query to shared memory, clear this CTA's
        // share of the visited bitmap (§IV-B step 1), seed the entry point.
        const std::size_t words =
            visited_clear_words(run_.ds.num_base(), run_.plan.n_parallel);
        elapsed += cm.cta_start_ns +
                   static_cast<double>(words) * cm.bitmap_clear_per_word_ns;
        search_.reset(run_.ds.query(rt.query_index), rt.entries[cta_],
                      &rt.visited);
      }
      search::StepCost cost;
      if (search_.step(cost)) {
        elapsed += cost.total_ns();
        rt.gpu_cost += cost;
      }
      if (search_.done()) {
        // Push this CTA's sorted list into the slot's contiguous result
        // block, then flag Finish.
        const auto cand = search_.candidates();
        std::copy(cand.begin(), cand.end(),
                  rt.result_buffer.begin() + cta_ * run_.run_len);
        elapsed += static_cast<double>(cand.size()) *
                   cm.result_write_per_entry_ns;
        rt.steps += search_.stats().expanded_points;
        rt.rounds += search_.stats().rounds;
        rt.scored += search_.stats().scored_points;
        // Base time, not sim.now()+elapsed: StateSync advances by *elapsed
        // itself, and state write-throughs are control-plane posts whose
        // cost is independent of the issue instant, so the stamp choice
        // cannot move virtual time — it only keeps the checker's per-actor
        // happens-before timeline consistent.
        run_.sync.device_write(sim.now(), slot_, cta_,
                               SlotState::kFinish, &elapsed);
        if (++rt.finished_ctas == run_.plan.n_parallel) {
          rt.gpu_done_ns = sim.now() + elapsed;
          if (run_.cfg.host_sync == HostSync::kBlocking) {
            // Last CTA of the slot raises the completion interrupt.
            rt.complete = true;
            ++run_.interrupts;
            sim.schedule(run_.worker_of_slot[slot_],
                         sim.now() + elapsed +
                             run_.cfg.cost.interrupt_latency_ns);
          }
        }
        active_ = false;
      }
      busy_ns_ += elapsed;
      if (run_.trace.tracer) {
        sim::TraceArgs args;
        args.add("slot", static_cast<std::uint64_t>(slot_));
        args.add("query", static_cast<std::uint64_t>(rt.query_index));
        run_.trace.tracer->complete(
            run_.trace.pid,
            run_.trace.cta_tid0 +
                static_cast<int>(slot_ * run_.plan.n_parallel + cta_),
            "q" + std::to_string(rt.query_index), sim.now(), elapsed,
            std::move(args), "cta");
      }
      sim.schedule(this, sim.now() + elapsed);
      return;
    }
    case SlotState::kQuit:
      return;  // persistent kernel thread exits; no reschedule
    case SlotState::kNone:
    case SlotState::kFinish:
    case SlotState::kDone:
    case SlotState::kExpired:
      // Idle polling between queries (the cost dynamic batching pays
      // instead of kernel relaunches). Expired is host-owned just like
      // Done: the CTA waits for the host to recycle or retire the slot.
      sim.schedule(this, sim.now() + elapsed + cm.cta_poll_interval_ns);
      return;
  }
}

bool HostWorker::dispatch(sim::Simulation& sim, std::size_t slot,
                          double* elapsed) {
  const sim::CostModel& cm = run_.cfg.cost;
  auto q = run_.qm.pop_ready(sim.now() + *elapsed);
  // Deadline check at dispatch: a query already past its deadline is shed
  // instead of occupying a slot (strict <, so deadline == now still runs —
  // the caller could in principle still use it). Sheds are cheap
  // bookkeeping, so one step may clear a whole run of expired queue heads
  // before finding dispatchable work. The infinite default deadline makes
  // this loop a no-op on every pre-serving workload.
  while (q && q->deadline_ns < sim.now() + *elapsed) {
    deliver_shed(sim, *q, elapsed);
    q = run_.qm.pop_ready(sim.now() + *elapsed);
  }
  if (!q) return false;
  SlotRuntime& rt = run_.slots[slot];
  rt.busy = true;
  rt.query_index = q->query_index;
  rt.arrival_ns = q->arrival_ns;
  rt.deadline_ns = q->deadline_ns;
  rt.priority = q->priority;
  rt.gpu_cost = search::StepCost{};
  rt.steps = 0;
  rt.rounds = 0;
  rt.scored = 0;
  rt.finished_ctas = 0;
  rt.complete = false;
  rt.visited.clear();  // functional clear; virtual cost charged by CTAs
  rt.entries = search::select_entry_points(run_.g, run_.plan.n_parallel,
                                           run_.cfg.seed, q->query_index);
  std::fill(rt.result_buffer.begin(), rt.result_buffer.end(), KV::empty());

  *elapsed += cm.host_dispatch_ns;
  // Query dispatch is a posted write into the slot's device buffer, at the
  // storage codec's element width (the device scores quantized rows).
  *elapsed += run_.channel.post(sim.now() + *elapsed,
                                run_.ds.dim() * run_.ds.elem_bytes(),
                                sim::Xfer::kQuery);
  rt.dispatch_ns = sim.now() + *elapsed;
  for (std::size_t c = 0; c < run_.plan.n_parallel; ++c) {
    run_.sync.host_write(sim.now(), slot, c, SlotState::kWork, elapsed);
  }
  ++run_.in_flight;
  if (run_.trace.tracer) {
    auto& tr = *run_.trace.tracer;
    rt.flow_id = tr.new_flow_id();
    tr.flow_begin(run_.trace.pid,
                  run_.trace.host_tid0 + static_cast<int>(index_), "query",
                  rt.flow_id, rt.dispatch_ns);
    tr.counter(run_.trace.pid, "in-flight queries", rt.dispatch_ns,
               static_cast<double>(run_.in_flight));
  }
  return true;
}

void HostWorker::fetch_and_complete(sim::Simulation& sim, std::size_t slot,
                                    double* elapsed) {
  const sim::CostModel& cm = run_.cfg.cost;
  SlotRuntime& rt = run_.slots[slot];
  for (std::size_t c = 0; c < run_.plan.n_parallel; ++c) {
    run_.sync.host_write(sim.now(), slot, c, SlotState::kDone, elapsed);
  }
  // One sequential read of the slot's whole result block (§IV-B), issued
  // through this worker's private IO stream (§V-B).
  *elapsed += cm.host_io_submit_ns;
  *elapsed += run_.channel.transfer(
      sim.now() + *elapsed,
      rt.result_buffer.size() * sim::kListEntryBytes, sim::Xfer::kResult);
  // Merge & filter on the host (§IV-B step 4).
  *elapsed += cm.host_topk_merge_ns(run_.plan.n_parallel, run_.cfg.search.topk);
  // The accept predicate is consulted here, at the accept step: filtered
  // and tombstoned ids routed the traversal but never surface in the
  // merged TopK.
  auto topk = search::merge_sorted_runs(
      rt.result_buffer, run_.plan.n_parallel, run_.run_len,
      run_.cfg.search.topk, run_.cfg.search.accept);

  metrics::QueryRecord rec;
  rec.query_index = rt.query_index;
  rec.slot = slot;
  rec.arrival_ns = rt.arrival_ns;
  rec.dispatch_ns = rt.dispatch_ns;
  rec.gpu_done_ns = rt.gpu_done_ns;
  rec.done_ns = sim.now() + *elapsed;
  // Deadline/priority travel on every record, served included: the eviction
  // check above ran BEFORE the fetch/transfer/merge costs were charged, so a
  // served query can still land past a finite deadline — in_deadline() must
  // see the real deadline to count it as a miss (the K>1 MergeActor path
  // already stamps these; K=1 must agree on goodput/miss accounting).
  rec.deadline_ns = rt.deadline_ns;
  rec.priority = rt.priority;
  rec.steps = rt.steps;
  rec.rounds = rt.rounds;
  rec.scored_points = rt.scored;
  rec.gpu_cost = rt.gpu_cost;
  rec.results = std::move(topk);
  const SimTime done_ns = rec.done_ns;
  if (run_.deliver) {
    // Sharded path: the gather stage owns completion. Result ids are still
    // shard-local here; the sink is responsible for the global mapping.
    run_.deliver(std::move(rec));
  } else {
    run_.collector.add(std::move(rec));
  }
  ++run_.delivered;
  --run_.in_flight;
  rt.busy = false;
  if (run_.trace.tracer) {
    auto& tr = *run_.trace.tracer;
    const int slot_tid = run_.trace.slot_tid0 + static_cast<int>(slot);
    sim::TraceArgs args;
    args.add("query", static_cast<std::uint64_t>(rt.query_index));
    args.add("steps", static_cast<std::uint64_t>(rt.steps));
    args.add("rounds", static_cast<std::uint64_t>(rt.rounds));
    // Slot occupancy: dispatch to delivery, one span per served query.
    tr.complete(run_.trace.pid, slot_tid,
                "q" + std::to_string(rt.query_index), rt.dispatch_ns,
                done_ns - rt.dispatch_ns, std::move(args), "slot");
    tr.flow_end(run_.trace.pid, slot_tid, "query", rt.flow_id, done_ns);
    tr.counter(run_.trace.pid, "in-flight queries", done_ns,
               static_cast<double>(run_.in_flight));
    tr.counter(run_.trace.pid, "delivered", done_ns,
               static_cast<double>(run_.delivered));
  }
}

/// Drops one expired queue head: charges the shed bookkeeping and emits the
/// kShedDeadline record at the post-charge instant.
void HostWorker::deliver_shed(sim::Simulation& sim, const PendingQuery& q,
                              double* elapsed) {
  *elapsed += run_.cfg.cost.host_shed_ns;
  metrics::QueryRecord rec = shed_record(q, sim.now() + *elapsed,
                                         metrics::Disposition::kShedDeadline);
  if (run_.deliver) {
    run_.deliver(std::move(rec));
  } else {
    run_.collector.add(std::move(rec));
  }
  ++run_.delivered;
  if (run_.trace.tracer) {
    run_.trace.tracer->counter(run_.trace.pid, "delivered",
                               sim.now() + *elapsed,
                               static_cast<double>(run_.delivered));
  }
}

/// The Expired path of the Fig 5 extension: the slot finished its search
/// but the result is past deadline, so the host discards the block without
/// paying the fetch/merge the Done path would. States go Finish -> Expired
/// (then Work on refill or Quit on retire, both host-written); the device
/// work that DID happen (steps/rounds/scored/gpu_cost) stays on the record
/// so utilization accounting remains exact, but results stay empty — the
/// block never crosses the channel.
void HostWorker::evict_expired(sim::Simulation& sim, std::size_t slot,
                               double* elapsed) {
  const sim::CostModel& cm = run_.cfg.cost;
  SlotRuntime& rt = run_.slots[slot];
  for (std::size_t c = 0; c < run_.plan.n_parallel; ++c) {
    run_.sync.host_write(sim.now(), slot, c, SlotState::kExpired, elapsed);
  }
  *elapsed += cm.host_evict_ns;

  metrics::QueryRecord rec;
  rec.query_index = rt.query_index;
  rec.slot = slot;
  rec.arrival_ns = rt.arrival_ns;
  rec.dispatch_ns = rt.dispatch_ns;
  rec.gpu_done_ns = rt.gpu_done_ns;
  rec.done_ns = sim.now() + *elapsed;
  rec.deadline_ns = rt.deadline_ns;
  rec.priority = rt.priority;
  rec.disposition = metrics::Disposition::kEvicted;
  rec.steps = rt.steps;
  rec.rounds = rt.rounds;
  rec.scored_points = rt.scored;
  rec.gpu_cost = rt.gpu_cost;
  const SimTime done_ns = rec.done_ns;
  if (run_.deliver) {
    run_.deliver(std::move(rec));
  } else {
    run_.collector.add(std::move(rec));
  }
  ++run_.delivered;
  --run_.in_flight;
  rt.busy = false;
  if (run_.trace.tracer) {
    auto& tr = *run_.trace.tracer;
    const int slot_tid = run_.trace.slot_tid0 + static_cast<int>(slot);
    sim::TraceArgs args;
    args.add("query", static_cast<std::uint64_t>(rt.query_index));
    args.add("steps", static_cast<std::uint64_t>(rt.steps));
    tr.complete(run_.trace.pid, slot_tid,
                "q" + std::to_string(rt.query_index) + " (evicted)",
                rt.dispatch_ns, done_ns - rt.dispatch_ns, std::move(args),
                "slot");
    tr.flow_end(run_.trace.pid, slot_tid, "query", rt.flow_id, done_ns);
    tr.counter(run_.trace.pid, "in-flight queries", done_ns,
               static_cast<double>(run_.in_flight));
    tr.counter(run_.trace.pid, "delivered", done_ns,
               static_cast<double>(run_.delivered));
  }
}

void HostWorker::step(sim::Simulation& sim) {
  ++run_.worker_steps;
  const sim::CostModel& cm = run_.cfg.cost;
  const bool blocking = run_.cfg.host_sync == HostSync::kBlocking;
  double elapsed = cm.host_loop_ns;
  bool progress = false;

  // Scan from the rotating cursor and handle at most ONE completed or
  // dispatchable slot, then reschedule. A host thread is a serial resource:
  // bounding the work per step keeps virtual-time stamps accurate instead
  // of smearing a whole burst of completions onto one instant, and makes
  // the thread's saturation point (§V-B) an emergent measurement.
  const std::size_t n = my_slots_.size();
  std::size_t advanced = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t slot = my_slots_[(cursor_ + i) % n];
    SlotRuntime& rt = run_.slots[slot];
    if (rt.quit) continue;

    if (rt.busy) {
      // Detect completion: interrupt flag (blocking) or state poll.
      bool finished;
      if (blocking) {
        finished = rt.complete;
        if (finished) elapsed += cm.blocking_wake_ns;
      } else {
        finished = run_.sync.host_all_in_state(sim.now(), slot,
                                               SlotState::kFinish, &elapsed);
      }
      if (!finished) continue;
      // Eviction happens at completion detection, never mid-search: the
      // persistent kernel cannot be preempted, so a deadline can only
      // deprioritize finished work (Finish -> Expired) rather than abort
      // running work. Strictly past-deadline only — finishing exactly at
      // the deadline still serves.
      if (rt.deadline_ns < sim.now() + elapsed) {
        evict_expired(sim, slot, &elapsed);
      } else {
        // Bring the states through the legal transitions even in blocking
        // mode (fetch_and_complete writes Finish -> Done).
        fetch_and_complete(sim, slot, &elapsed);
      }
      if (!dispatch(sim, slot, &elapsed) && run_.workload_exhausted()) {
        for (std::size_t c = 0; c < run_.plan.n_parallel; ++c) {
          run_.sync.host_write(sim.now(), slot, c, SlotState::kQuit,
                               &elapsed);
        }
        rt.quit = true;
      }
      progress = true;
      advanced = i + 1;
      break;
    }

    // Idle slot: refill or retire. Retiring is cheap bookkeeping, so it
    // does not end the step.
    if (dispatch(sim, slot, &elapsed)) {
      progress = true;
      advanced = i + 1;
      break;
    }
    if (run_.workload_exhausted()) {
      for (std::size_t c = 0; c < run_.plan.n_parallel; ++c) {
        run_.sync.host_write(sim.now(), slot, c, SlotState::kQuit, &elapsed);
      }
      rt.quit = true;
    }
  }
  if (progress && n > 0) cursor_ = (cursor_ + advanced) % n;

  bool all_retired = true;
  for (std::size_t s : my_slots_) all_retired &= run_.slots[s].quit;

  run_.worker_busy_ns += elapsed;
  if (run_.trace.tracer) {
    run_.trace.tracer->complete(
        run_.trace.pid, run_.trace.host_tid0 + static_cast<int>(index_),
        progress ? "step" : "poll", sim.now(), elapsed, sim::TraceArgs{},
        "host");
  }
  if (all_retired) return;  // worker thread exits

  double next = sim.now() + elapsed;
  if (blocking) {
    // No periodic polling: sleep until a completion interrupt. Two wake-ups
    // must still be self-scheduled: (a) another completion is already
    // pending (interrupt deliveries coalesce and each step handles one),
    // (b) a future arrival needs a free slot.
    bool any_pending = false;
    bool any_free = false;
    for (std::size_t s : my_slots_) {
      const SlotRuntime& rt = run_.slots[s];
      any_pending |= rt.busy && rt.complete;
      any_free |= !rt.busy && !rt.quit;
    }
    const SimTime arrival = run_.next_arrival();
    if (any_pending || (any_free && std::isfinite(arrival))) {
      SimTime when = next;
      if (!any_pending && arrival > when) when = arrival;
      sim.schedule(this, when);
    }
    return;
  }
  if (!progress) {
    next += cm.host_poll_interval_ns;
    // All owned slots idle and queries still pending means the workload is
    // open-loop and dry right now: sleep until the next arrival.
    bool any_busy = false;
    for (std::size_t s : my_slots_) any_busy |= run_.slots[s].busy;
    if (!any_busy) {
      const SimTime arrival = run_.next_arrival();
      if (std::isfinite(arrival)) next = std::max(next, arrival);
    }
  }
  sim.schedule(this, next);
}

}  // namespace

AlgasEngine::AlgasEngine(const Dataset& ds, const Graph& g, AlgasConfig cfg)
    : ds_(ds), g_(g), cfg_(std::move(cfg)) {
  if (g.num_nodes() == 0) {
    // A slot must seed every CTA with an entry point; an empty graph has
    // none (entry_point() == kInvalidNode). Callers with an empty serving
    // view (core::MutableIndex before the first publish) skip the engine.
    throw std::invalid_argument("AlgasEngine: graph has no nodes to search");
  }
  if (!cfg_.search.accept.null()) {
    // Selectivity-aware widening (filter-during-search): the rarer the
    // accepted set, the deeper the candidate list, so the accept step
    // still fills the TopK from survivors. Runs before normalization so
    // the widened length obeys the same clamps as any other config; the
    // null-predicate path skips this branch entirely, keeping unfiltered
    // runs byte-identical to the pre-predicate engine.
    cfg_.search = search::widen_for_selectivity(
        cfg_.search, cfg_.search.accept.selectivity(ds.num_base()));
  }
  cfg_.search = search::normalize_config(cfg_.search, g.degree());
  cfg_.host_threads = std::max<std::size_t>(1, cfg_.host_threads);

  TuneInput in;
  in.device = cfg_.device;
  in.slots = cfg_.slots;
  in.requested_parallel = cfg_.n_parallel;
  in.layout.candidate_entries = cfg_.search.candidate_len;
  in.layout.expand_entries =
      next_pow2(std::max<std::size_t>(1, cfg_.search.beam_width) * g.degree());
  in.layout.dim = ds.dim();
  in.layout.elem_bytes = ds.elem_bytes();
  layout_ = in.layout;
  plan_ = tune(in);
  if (!plan_.ok) {
    throw std::invalid_argument("ALGAS tuning failed: " + plan_.reason);
  }
}

EngineReport AlgasEngine::run_closed_loop(std::size_t num_queries) {
  num_queries = std::min(num_queries, ds_.num_queries());
  std::vector<PendingQuery> arrivals;
  arrivals.reserve(num_queries);
  for (std::size_t i = 0; i < num_queries; ++i) {
    arrivals.push_back({i, 0.0});
  }
  return run(arrivals);
}

/// The wiring formerly inlined in AlgasEngine::run(), held alive between
/// construction and finish() so an orchestrator can interleave several
/// runs' Simulations before collecting their reports. Every statement and
/// its order match the pre-split run() exactly — the default-attach path
/// is byte-identical.
struct EngineRun::Impl {
  const AlgasEngine& engine;
  sim::SimCheck* check = nullptr;
  std::unique_ptr<sim::SimCheck> owned_check;
  std::string run_label;
  std::unique_ptr<RunState> run;
  std::unique_ptr<sim::Actor> admission_owner;
  std::unique_ptr<ProtocolChecker> protocol;
  sim::Tracer* tracer = nullptr;
  std::uint64_t trace_events_before = 0;

  Impl(const AlgasEngine& e, const std::vector<PendingQuery>& arrivals,
       RunAttach attach)
      : engine(e) {
    const AlgasConfig& cfg = engine.cfg_;
    const Dataset& ds = engine.ds_;

    // SimCheck wiring: an explicit checker from the config wins; otherwise
    // a private one is constructed when the build/environment default says
    // so. Null stays the zero-cost unchecked path.
    check = cfg.checker;
    if (check == nullptr && sim::simcheck_default_enabled()) {
      owned_check = std::make_unique<sim::SimCheck>();
      check = owned_check.get();
    }
    // Surface the storage codec in checker/trace process names; the f32
    // default keeps the historical label so existing traces stay identical.
    run_label = std::string("algas:") + host_sync_name(cfg.host_sync);
    if (ds.storage() != StorageCodec::kF32) {
      run_label += std::string(":") + storage_codec_name(ds.storage());
    }
    run_label += attach.label_suffix;
    if (check) check->begin_run(run_label);

    run = std::make_unique<RunState>(ds, engine.g_, cfg, engine.plan_, check);
    run->deliver = std::move(attach.deliver);
    run->channel.set_host_bus(attach.host_bus);
    if (check) {
      run->sim.set_checker(check);
      protocol = std::make_unique<ProtocolChecker>(check, &run->sync,
                                                   &run->channel);
      protocol->expect_full_drain(true);
      run->sync.set_checker(protocol.get());
    }

    // SimTrace wiring mirrors SimCheck: explicit tracer wins, otherwise the
    // process-wide ALGAS_TRACE tracer, otherwise null (zero-cost untraced).
    tracer = cfg.tracer ? cfg.tracer : sim::default_tracer();
    if (tracer) {
      trace_events_before = tracer->events_recorded();
      TraceLanes& tl = run->trace;
      tl.tracer = tracer;
      tl.pid = tracer->begin_process(run_label);
      tl.link_tid = tracer->lane(tl.pid, "pcie link");
      const std::size_t n_workers =
          std::min(cfg.host_threads, std::max<std::size_t>(1, cfg.slots));
      for (std::size_t w = 0; w < n_workers; ++w) {
        const int tid = tracer->lane(tl.pid, "host " + std::to_string(w));
        if (w == 0) tl.host_tid0 = tid;
      }
      for (std::size_t s = 0; s < cfg.slots; ++s) {
        const int tid = tracer->lane(tl.pid, "slot " + std::to_string(s));
        if (s == 0) tl.slot_tid0 = tid;
      }
      for (std::size_t s = 0; s < cfg.slots; ++s) {
        for (std::size_t c = 0; c < engine.plan_.n_parallel; ++c) {
          const int tid = tracer->lane(tl.pid, "cta s" + std::to_string(s) +
                                                   ".c" + std::to_string(c));
          if (s == 0 && c == 0) tl.cta_tid0 = tid;
        }
      }
      run->channel.set_tracer(tracer, tl.pid, tl.link_tid);
      run->sync.set_tracer(tracer, tl.pid, tl.slot_tid0);
      run->sim.set_tracer(tracer);
    }

    if (cfg.admission.bounded()) {
      // Serving mode: arrivals flow through an admission actor at their
      // arrival instants so capacity decisions see the queue occupancy of
      // that moment. The unbounded default pre-loads the queue — the exact
      // pre-serving wiring, byte-identical event sequence included.
      auto actor = std::make_unique<AdmissionActor>(*run, arrivals);
      AdmissionActor* raw = actor.get();
      run->admission = raw;
      admission_owner = std::move(actor);
      if (!arrivals.empty()) {
        run->sim.schedule(raw, raw->first_arrival_ns());
      }
    } else {
      for (const auto& a : arrivals) run->qm.push(a);
    }
    run->total_queries = arrivals.size();

    // Persistent kernel: one launch, then every CTA lives for the whole
    // run.
    const SimTime start = cfg.cost.kernel_launch_ns;
    for (std::size_t s = 0; s < cfg.slots; ++s) {
      for (std::size_t c = 0; c < engine.plan_.n_parallel; ++c) {
        run->ctas.push_back(std::make_unique<CtaActor>(*run, s, c));
        if (check) {
          // §IV-C budget: every launched block's layout must fit the tuned
          // per-block shared-memory allowance.
          std::ostringstream key;
          key << "cta s" << s << " c" << c;
          check->check_block_launch(key.str(), start, cfg.device,
                                    engine.layout_, engine.plan_.blocks_per_sm,
                                    engine.plan_.reserved_per_block,
                                    engine.plan_.avail_per_block);
        }
        run->sim.schedule(run->ctas.back().get(), start);
      }
    }

    // Host workers: slots round-robin across threads (§V-B).
    std::vector<std::vector<std::size_t>> owned(cfg.host_threads);
    for (std::size_t s = 0; s < cfg.slots; ++s) {
      owned[s % cfg.host_threads].push_back(s);
    }
    run->worker_of_slot.assign(cfg.slots, nullptr);
    for (auto& slots : owned) {
      if (slots.empty()) continue;
      auto worker =
          std::make_unique<HostWorker>(*run, run->workers.size(), slots);
      for (std::size_t s : slots) run->worker_of_slot[s] = worker.get();
      run->workers.push_back(std::move(worker));
      run->sim.schedule(run->workers.back().get(), 0.0);
    }
  }

  EngineReport finish() {
    const AlgasConfig& cfg = engine.cfg_;
    const Dataset& ds = engine.ds_;

    if (protocol) protocol->finalize(run->sim.now());

    if (run->delivered != run->total_queries) {
      throw std::logic_error("ALGAS run lost queries: delivered " +
                             std::to_string(run->delivered) + " of " +
                             std::to_string(run->total_queries));
    }

    EngineReport rep;
    rep.summary = run->collector.summarize();
    rep.storage = ds.storage();
    rep.plan = engine.plan_;
    rep.sim_events = run->sim.events_processed();
    rep.sim_stale_events = run->sim.stale_events();
    if (check) {
      check->record("simulation", run->sim.now(),
                    "drained: events=" +
                        std::to_string(run->sim.events_processed()) +
                        " stale=" + std::to_string(run->sim.stale_events()));
    }
    rep.simcheck_checks = check ? check->checks_performed() : 0;
    if (tracer) {
      tracer->counter(run->trace.pid, "stale sim events", run->sim.now(),
                      static_cast<double>(run->sim.stale_events()));
    }
    rep.trace_events =
        tracer ? tracer->events_recorded() - trace_events_before : 0;
    // The process-wide tracer accumulates across runs: rewrite the file
    // after each so multi-engine benches end with every run in one Perfetto
    // file.
    if (tracer && tracer == sim::default_tracer()) {
      tracer->save(sim::trace_default_path());
    }
    rep.host_polls = run->sync.host_polls();
    rep.interrupts = run->interrupts;
    rep.host_worker_steps = run->worker_steps;
    rep.host_busy_ns = run->worker_busy_ns;
    const auto total = run->channel.total();
    rep.pcie_transactions = total.transactions;
    rep.pcie_bytes = total.bytes;
    rep.pcie_state_poll_transactions =
        run->channel.counters(sim::Xfer::kStatePoll).transactions;
    rep.pcie_state_write_transactions =
        run->channel.counters(sim::Xfer::kStateWrite).transactions;
    rep.pcie_state_transactions =
        rep.pcie_state_poll_transactions + rep.pcie_state_write_transactions;

    double busy = 0.0;
    for (const auto& cta : run->ctas) busy += cta->busy_ns();
    rep.cta_busy_ns = busy;
    rep.cta_count = run->ctas.size();
    const double span = rep.summary.span_ns;
    if (span > 0.0 && !run->ctas.empty()) {
      rep.gpu_utilization =
          busy / (span * static_cast<double>(run->ctas.size()));
    }

    if (ds.has_ground_truth()) {
      // Recall is a statement about delivered answers, so it averages over
      // SERVED records only: a shed/evicted query returned nothing and
      // shows up in shed_rate/goodput instead of dragging recall to zero.
      double total_recall = 0.0;
      std::size_t served = 0;
      for (const auto& r : run->collector.records()) {
        if (!r.served()) continue;
        ++served;
        total_recall += metrics::recall_at_k(ds, r.query_index, r.results,
                                             cfg.search.topk);
      }
      rep.recall =
          served == 0 ? 0.0 : total_recall / static_cast<double>(served);
    }
    rep.collector = std::move(run->collector);
    return rep;
  }
};

EngineRun::EngineRun(const AlgasEngine& engine,
                     const std::vector<PendingQuery>& arrivals,
                     RunAttach attach)
    : impl_(std::make_unique<Impl>(engine, arrivals, std::move(attach))) {}

EngineRun::~EngineRun() = default;

sim::Simulation& EngineRun::simulation() { return impl_->run->sim; }

EngineReport EngineRun::finish() { return impl_->finish(); }

EngineReport AlgasEngine::run(const std::vector<PendingQuery>& arrivals) {
  EngineRun r(*this, arrivals);
  r.simulation().run();
  return r.finish();
}

}  // namespace algas::core
