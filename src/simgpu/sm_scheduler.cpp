#include "simgpu/sm_scheduler.hpp"

#include <algorithm>

namespace algas::sim {

bool SmScheduler::try_acquire(Simulation& sim, Actor* who) {
  (void)sim;
  if (resident_ < capacity_) {
    ++resident_;
    // A waiter that got woken and acquired is no longer waiting.
    auto it = std::find(waiters_.begin(), waiters_.end(), who);
    if (it != waiters_.end()) waiters_.erase(it);
    return true;
  }
  if (std::find(waiters_.begin(), waiters_.end(), who) == waiters_.end()) {
    waiters_.push_back(who);
  }
  return false;
}

void SmScheduler::release(Simulation& sim) {
  if (resident_ == 0) return;
  --resident_;
  if (!waiters_.empty()) {
    Actor* next = waiters_.front();
    waiters_.pop_front();
    sim.schedule(next, sim.now());
  }
}

}  // namespace algas::sim
