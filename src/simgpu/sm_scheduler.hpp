// SM residency scheduler.
//
// A CTA must hold a residency slot to execute. Capacity is the occupancy the
// tuner computes from DeviceProps + per-block shared memory (§IV-C). When a
// static-batch baseline launches more CTAs than fit, the surplus queues here
// and runs in waves — exactly the large-batch queuing effect behind
// Fig 14/15. The persistent-kernel engine sizes itself to capacity so its
// CTAs acquire residency once and never release it.
#pragma once

#include <cstddef>
#include <deque>

#include "simgpu/simulation.hpp"

namespace algas::sim {

class SmScheduler {
 public:
  explicit SmScheduler(std::size_t capacity) : capacity_(capacity) {}

  std::size_t capacity() const { return capacity_; }
  std::size_t resident() const { return resident_; }
  std::size_t queued() const { return waiters_.size(); }

  /// Try to become resident. On failure the actor is queued and will be
  /// scheduled (woken) when a slot frees; it must call try_acquire again
  /// from its step().
  bool try_acquire(Simulation& sim, Actor* who);

  /// Release a residency slot and wake the longest-waiting CTA, if any.
  void release(Simulation& sim);

 private:
  std::size_t capacity_;
  std::size_t resident_ = 0;
  std::deque<Actor*> waiters_;
};

}  // namespace algas::sim
