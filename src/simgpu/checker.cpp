#include "simgpu/checker.hpp"

#include <sstream>

#include "common/env.hpp"

namespace algas::sim {

SimCheck::SimCheck(SimCheckConfig cfg) : cfg_(cfg) {}

void SimCheck::record(const std::string& actor, SimTime t, std::string what) {
  auto it = traces_.find(actor);
  if (it == traces_.end()) {
    it = traces_.emplace(actor, TraceRing(cfg_.trace_capacity)).first;
  }
  it->second.push(t, std::move(what));
  ++traced_;
}

void SimCheck::fail(const std::string& kind, const std::string& actor,
                    SimTime t, const std::string& message) const {
  ++violations_;
  std::ostringstream out;
  out << "SimCheck violation [" << kind << "]";
  if (!run_label_.empty()) out << " in run '" << run_label_ << "'";
  out << " at t=" << t << "ns: " << message;
  if (!actor.empty()) {
    out << "\n" << trace_dump(actor);
  }
  throw SimCheckError(kind, out.str());
}

std::string SimCheck::trace_dump(const std::string& actor) const {
  std::ostringstream out;
  const auto it = traces_.find(actor);
  if (it == traces_.end()) {
    out << "  (no recorded events for " << actor << ")";
    return out.str();
  }
  const auto& ring = it->second;
  out << "  last " << ring.events().size() << " of " << ring.total_recorded()
      << " events of " << actor << ":";
  for (const auto& ev : ring.events()) {
    out << "\n    t=" << ev.t << "ns  " << ev.what;
  }
  return out.str();
}

void SimCheck::begin_run(const std::string& label) {
  run_label_ = label;
  traces_.clear();
  actor_keys_.clear();
  name_ordinals_.clear();
  drain_hook_ = nullptr;
}

const std::string& SimCheck::actor_key(const Actor* a, const char* name) {
  auto it = actor_keys_.find(a);
  if (it == actor_keys_.end()) {
    std::ostringstream key;
    key << name << "#" << name_ordinals_[name]++;
    it = actor_keys_.emplace(a, key.str()).first;
  }
  return it->second;
}

void SimCheck::on_schedule(const Actor* a, const char* name, SimTime now,
                           SimTime requested) {
  ++checks_;
  if (requested + cfg_.schedule_past_tolerance_ns < now) {
    const std::string& key = actor_key(a, name);
    std::ostringstream msg;
    msg << key << " requested a wake-up at t=" << requested << "ns, "
        << (now - requested) << "ns in the past (beyond the documented "
        << "clamp tolerance of " << cfg_.schedule_past_tolerance_ns << "ns)";
    fail("schedule-in-past", key, now, msg.str());
  }
}

void SimCheck::on_event(const Actor* a, const char* name, SimTime now,
                        SimTime event_time) {
  ++checks_;
  const std::string& key = actor_key(a, name);
  if (event_time + cfg_.schedule_past_tolerance_ns < now) {
    std::ostringstream msg;
    msg << "event queue regressed: popped " << key << " at t=" << event_time
        << "ns after virtual time already reached " << now << "ns";
    fail("time-regression", key, now, msg.str());
  }
  record(key, event_time, "step");
}

void SimCheck::on_drain(SimTime now) {
  ++checks_;
  if (drain_hook_) drain_hook_(now);
}

void SimCheck::check_block_launch(const std::string& actor, SimTime t,
                                  const DeviceProps& dev,
                                  const SharedMemoryLayout& layout,
                                  std::size_t blocks_per_sm,
                                  std::size_t reserved_per_block,
                                  std::size_t budget_bytes) {
  ++checks_;
  record(actor, t, "launch " + layout.describe());
  const OccupancyCheck occ =
      check_occupancy(dev, layout, blocks_per_sm, reserved_per_block);
  if (!occ.fits) {
    std::ostringstream msg;
    msg << actor << " launched with a layout that violates the §IV-C "
        << "occupancy constraint: " << occ.reason << " (" << layout.describe()
        << ")";
    fail("shared-memory-budget", actor, t, msg.str());
  }
  if (budget_bytes != 0 && layout.total_bytes() > budget_bytes) {
    std::ostringstream msg;
    msg << actor << " launched with " << layout.total_bytes()
        << "B of shared memory but the tuner budgeted only " << budget_bytes
        << "B per block (" << layout.describe() << ")";
    fail("shared-memory-budget", actor, t, msg.str());
  }
}

bool simcheck_default_enabled() {
#ifdef ALGAS_SIMCHECK_DEFAULT_ON
  constexpr bool kCompiledDefault = true;
#else
  constexpr bool kCompiledDefault = false;
#endif
  static const bool enabled = [] {
    const int v = RuntimeOptions::from_env().simcheck;
    return v < 0 ? kCompiledDefault : v != 0;
  }();
  return enabled;
}

}  // namespace algas::sim
