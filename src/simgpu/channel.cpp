#include "simgpu/channel.hpp"

#include <algorithm>

#include "simgpu/trace.hpp"

namespace algas::sim {

const char* xfer_name(Xfer purpose) {
  switch (purpose) {
    case Xfer::kStatePoll: return "state-poll";
    case Xfer::kStateWrite: return "state-write";
    case Xfer::kQuery: return "query";
    case Xfer::kResult: return "result";
    case Xfer::kBulk: return "bulk";
    case Xfer::kCount_: break;
  }
  return "invalid";
}

SimTime Channel::transfer(SimTime now, std::size_t bytes, Xfer purpose) {
  return post(now, bytes, purpose) + cm_.pcie_latency_ns;
}

SimTime Channel::post(SimTime now, std::size_t bytes, Xfer purpose) {
  auto& ctr = counters_[static_cast<std::size_t>(purpose)];
  ++ctr.transactions;
  ctr.bytes += bytes;
  if (trace_) {
    trace_->counter(trace_pid_,
                    std::string("pcie ") + xfer_name(purpose) + " bytes",
                    now, static_cast<double>(ctr.bytes));
  }

  const SimTime occupancy = cm_.transfer_occupancy_ns(bytes);
  busy_time_ += occupancy;
  // Control-plane writes (state words, doorbells) pipeline freely.
  if (bytes <= kControlPlaneBytes) return occupancy;

  // Data transfers serialize on link bandwidth: a transaction occupies it
  // for header + payload time; propagation latency does not block others.
  const SimTime start = std::max(now, next_free_);
  next_free_ = start + occupancy;
  if (trace_) {
    TraceArgs args;
    args.add("bytes", static_cast<std::uint64_t>(bytes));
    args.add("wait_ns", start - now);
    trace_->complete(trace_pid_, trace_tid_, xfer_name(purpose), start,
                     occupancy, std::move(args), "pcie");
    const std::uint64_t flow = trace_->new_flow_id();
    trace_->flow_begin(trace_pid_, trace_tid_, "xfer", flow, start);
    trace_->flow_end(trace_pid_, trace_tid_, "xfer", flow, next_free_);
  }
  // Multi-device deployments: after clearing this link the DMA still has
  // to land through the shared host bus. The link itself frees at
  // next_free_ (the bus wait does not back-pressure the link cursor); the
  // issuer is charged through bus completion.
  if (host_bus_ != nullptr) {
    return host_bus_->acquire(next_free_, bytes, purpose) - now;
  }
  return next_free_ - now;
}

SimTime HostBus::acquire(SimTime ready, std::size_t bytes, Xfer purpose) {
  ++transactions_;
  bytes_ += bytes;
  const SimTime occupancy = cm_.host_bus_occupancy_ns(bytes);
  const SimTime start = std::max(ready, bus_next_free_);
  bus_next_free_ = start + occupancy;
  bus_busy_time_ += occupancy;
  if (trace_) {
    TraceArgs args;
    args.add("bytes", static_cast<std::uint64_t>(bytes));
    args.add("wait_ns", start - ready);
    trace_->complete(trace_pid_, trace_tid_, xfer_name(purpose), start,
                     occupancy, std::move(args), "bus");
  }
  return bus_next_free_;
}

XferCounters Channel::total() const {
  XferCounters t;
  for (const auto& c : counters_) {
    t.transactions += c.transactions;
    t.bytes += c.bytes;
  }
  return t;
}

void Channel::reset_counters() {
  for (auto& c : counters_) c = XferCounters{};
  busy_time_ = 0.0;
}

}  // namespace algas::sim
