#include "simgpu/channel.hpp"

#include <algorithm>

namespace algas::sim {

SimTime Channel::transfer(SimTime now, std::size_t bytes, Xfer purpose) {
  return post(now, bytes, purpose) + cm_.pcie_latency_ns;
}

SimTime Channel::post(SimTime now, std::size_t bytes, Xfer purpose) {
  auto& ctr = counters_[static_cast<std::size_t>(purpose)];
  ++ctr.transactions;
  ctr.bytes += bytes;

  const SimTime occupancy = cm_.transfer_occupancy_ns(bytes);
  busy_time_ += occupancy;
  // Control-plane writes (state words, doorbells) pipeline freely.
  if (bytes <= kControlPlaneBytes) return occupancy;

  // Data transfers serialize on link bandwidth: a transaction occupies it
  // for header + payload time; propagation latency does not block others.
  const SimTime start = std::max(now, next_free_);
  next_free_ = start + occupancy;
  return next_free_ - now;
}

XferCounters Channel::total() const {
  XferCounters t;
  for (const auto& c : counters_) {
    t.transactions += c.transactions;
    t.bytes += c.bytes;
  }
  return t;
}

void Channel::reset_counters() {
  for (auto& c : counters_) c = XferCounters{};
  busy_time_ = 0.0;
}

}  // namespace algas::sim
