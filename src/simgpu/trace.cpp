#include "simgpu/trace.hpp"

#include <cstdio>
#include <fstream>
#include <memory>
#include <ostream>
#include <stdexcept>

#include "common/env.hpp"

namespace algas::sim {

namespace {

/// JSON string escaping (quotes, backslashes, control characters).
std::string escaped(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Nanoseconds -> the format's microsecond unit, at fixed ns precision so
/// identical runs serialize byte-identically.
std::string fmt_us(SimTime t_ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.3f", t_ns / 1000.0);
  return buf;
}

std::string fmt_value(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

TraceArgs& TraceArgs::add(const std::string& key, const std::string& v) {
  kv_.emplace_back(key, "\"" + escaped(v) + "\"");
  return *this;
}

TraceArgs& TraceArgs::add(const std::string& key, const char* v) {
  return add(key, std::string(v));
}

TraceArgs& TraceArgs::add(const std::string& key, double v) {
  kv_.emplace_back(key, fmt_value(v));
  return *this;
}

TraceArgs& TraceArgs::add(const std::string& key, std::uint64_t v) {
  kv_.emplace_back(key, std::to_string(v));
  return *this;
}

int Tracer::begin_process(const std::string& label) {
  const int pid = ++next_pid_;
  next_tid_.resize(static_cast<std::size_t>(pid) + 1, 0);
  TraceEventRec e;
  e.ph = TracePhase::kMetadata;
  e.pid = pid;
  e.name = "process_name";
  e.args.add("name", label);
  events_.push_back(std::move(e));
  TraceEventRec sort;
  sort.ph = TracePhase::kMetadata;
  sort.pid = pid;
  sort.name = "process_sort_index";
  sort.args.add("sort_index", static_cast<std::uint64_t>(pid));
  events_.push_back(std::move(sort));
  return pid;
}

int Tracer::lane(int pid, const std::string& name) {
  const int tid = next_tid_.at(static_cast<std::size_t>(pid))++;
  TraceEventRec e;
  e.ph = TracePhase::kMetadata;
  e.pid = pid;
  e.tid = tid;
  e.name = "thread_name";
  e.args.add("name", name);
  events_.push_back(std::move(e));
  TraceEventRec sort;
  sort.ph = TracePhase::kMetadata;
  sort.pid = pid;
  sort.tid = tid;
  sort.name = "thread_sort_index";
  sort.args.add("sort_index", static_cast<std::uint64_t>(tid));
  events_.push_back(std::move(sort));
  return tid;
}

void Tracer::complete(int pid, int tid, const std::string& name,
                      SimTime start_ns, SimTime dur_ns, TraceArgs args,
                      const std::string& cat) {
  TraceEventRec e;
  e.ph = TracePhase::kComplete;
  e.pid = pid;
  e.tid = tid;
  e.ts_ns = start_ns;
  e.dur_ns = dur_ns;
  e.name = name;
  e.cat = cat;
  e.args = std::move(args);
  events_.push_back(std::move(e));
}

void Tracer::instant(int pid, int tid, const std::string& name, SimTime t_ns,
                     TraceArgs args, const std::string& cat) {
  TraceEventRec e;
  e.ph = TracePhase::kInstant;
  e.pid = pid;
  e.tid = tid;
  e.ts_ns = t_ns;
  e.name = name;
  e.cat = cat;
  e.args = std::move(args);
  events_.push_back(std::move(e));
}

void Tracer::counter(int pid, const std::string& name, SimTime t_ns,
                     double value) {
  TraceEventRec e;
  e.ph = TracePhase::kCounter;
  e.pid = pid;
  e.ts_ns = t_ns;
  e.name = name;
  e.cat = "counter";
  e.args.add("value", value);
  events_.push_back(std::move(e));
}

void Tracer::flow_begin(int pid, int tid, const std::string& name,
                        std::uint64_t id, SimTime t_ns) {
  TraceEventRec e;
  e.ph = TracePhase::kFlowBegin;
  e.pid = pid;
  e.tid = tid;
  e.ts_ns = t_ns;
  e.flow_id = id;
  e.name = name;
  e.cat = "flow";
  events_.push_back(std::move(e));
}

void Tracer::flow_end(int pid, int tid, const std::string& name,
                      std::uint64_t id, SimTime t_ns) {
  TraceEventRec e;
  e.ph = TracePhase::kFlowEnd;
  e.pid = pid;
  e.tid = tid;
  e.ts_ns = t_ns;
  e.flow_id = id;
  e.name = name;
  e.cat = "flow";
  events_.push_back(std::move(e));
}

void Tracer::write_json(std::ostream& os) const {
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const auto& e : events_) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "{\"ph\":\"" << static_cast<char>(e.ph) << "\",\"pid\":" << e.pid
       << ",\"tid\":" << e.tid << ",\"name\":\"" << escaped(e.name) << "\"";
    if (e.ph != TracePhase::kMetadata) {
      os << ",\"ts\":" << fmt_us(e.ts_ns);
      if (!e.cat.empty()) os << ",\"cat\":\"" << escaped(e.cat) << "\"";
    }
    switch (e.ph) {
      case TracePhase::kComplete:
        os << ",\"dur\":" << fmt_us(e.dur_ns);
        break;
      case TracePhase::kInstant:
        os << ",\"s\":\"t\"";
        break;
      case TracePhase::kFlowBegin:
      case TracePhase::kFlowEnd:
        // Bind to the slice enclosing the timestamp, not the next slice.
        os << ",\"id\":" << e.flow_id << ",\"bp\":\"e\"";
        break;
      case TracePhase::kCounter:
      case TracePhase::kMetadata:
        break;
    }
    if (!e.args.empty()) {
      os << ",\"args\":{";
      bool first_arg = true;
      for (const auto& [k, v] : e.args.items()) {
        if (!first_arg) os << ",";
        first_arg = false;
        os << "\"" << escaped(k) << "\":" << v;
      }
      os << "}";
    }
    os << "}";
  }
  os << "\n],\"displayTimeUnit\":\"ns\"}\n";
}

void Tracer::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("SimTrace: cannot open trace file " + path);
  }
  write_json(out);
  out.flush();
  if (!out) {
    throw std::runtime_error("SimTrace: failed writing trace file " + path);
  }
}

void Tracer::clear() {
  events_.clear();
  next_pid_ = 0;
  next_tid_.clear();
  next_flow_id_ = 0;
}

const std::string& trace_default_path() {
  static const std::string path = RuntimeOptions::from_env().trace_path;
  return path;
}

Tracer* default_tracer() {
  static std::unique_ptr<Tracer> tracer =
      trace_default_path().empty() ? nullptr : std::make_unique<Tracer>();
  return tracer.get();
}

}  // namespace algas::sim
