#include "simgpu/sim_group.hpp"

#include <limits>

#include "simgpu/simulation.hpp"

namespace algas::sim {

SimTime SimulationGroup::next_event_time() const {
  SimTime best = std::numeric_limits<SimTime>::infinity();
  for (Simulation* s : members_) {
    const SimTime t = s->next_event_time();
    if (t < best) best = t;
  }
  return best;
}

void SimulationGroup::run() {
  for (;;) {
    Simulation* next = nullptr;
    SimTime best = std::numeric_limits<SimTime>::infinity();
    // Strict < keeps the earliest-added member on time ties — the group's
    // deterministic tie-break, mirroring the per-simulation seq order.
    for (Simulation* s : members_) {
      const SimTime t = s->next_event_time();
      if (t < best) {
        best = t;
        next = s;
      }
    }
    if (next == nullptr) break;
    next->step_one();
  }
  // The drain signal is a whole-group property: a member that is
  // momentarily idle may still be woken by another member, so no member is
  // "drained" until all queues are.
  for (Simulation* s : members_) s->notify_drain();
}

}  // namespace algas::sim
