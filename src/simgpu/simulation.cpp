#include "simgpu/simulation.hpp"

#include <algorithm>
#include <limits>

#include "simgpu/checker.hpp"

namespace algas::sim {

void Simulation::schedule(Actor* a, SimTime when) {
  if (check_) check_->on_schedule(a, a->name(), now_, when);
  when = std::max(when, now_);
  if (a->pending_time_ >= 0.0 && a->pending_time_ <= when) {
    return;  // an earlier (or equal) wake-up is already queued
  }
  ++a->token_;
  a->pending_time_ = when;
  queue_.push(Event{when, seq_++, a, a->token_});
}

void Simulation::cancel(Actor* a) {
  ++a->token_;  // any queued entry becomes stale
  a->pending_time_ = -1.0;
}

bool Simulation::pop_next(Event& ev) {
  while (!queue_.empty()) {
    ev = queue_.top();
    queue_.pop();
    if (ev.token == ev.actor->token_) return true;  // live entry
    ++stale_events_;
  }
  return false;
}

SimTime Simulation::next_event_time() {
  while (!queue_.empty()) {
    const Event& ev = queue_.top();
    if (ev.token == ev.actor->token_) return ev.time;
    queue_.pop();
    ++stale_events_;
  }
  return std::numeric_limits<SimTime>::infinity();
}

bool Simulation::step_one() {
  Event ev;
  if (!pop_next(ev)) return false;
  if (check_) check_->on_event(ev.actor, ev.actor->name(), now_, ev.time);
  now_ = ev.time;
  ev.actor->pending_time_ = -1.0;
  ++events_processed_;
  ev.actor->step(*this);
  return true;
}

void Simulation::notify_drain() {
  if (check_) check_->on_drain(now_);
}

void Simulation::run() {
  stopped_ = false;
  while (!stopped_ && step_one()) {
  }
  if (!stopped_) notify_drain();
}

void Simulation::run_until(SimTime t) {
  stopped_ = false;
  Event ev;
  while (!stopped_ && pop_next(ev)) {
    if (ev.time > t) {
      // Put it back; it is still this actor's live event.
      queue_.push(ev);
      now_ = t;
      return;
    }
    if (check_) check_->on_event(ev.actor, ev.actor->name(), now_, ev.time);
    now_ = ev.time;
    ev.actor->pending_time_ = -1.0;
    ++events_processed_;
    ev.actor->step(*this);
  }
  now_ = std::max(now_, t);
  if (check_ && !stopped_) check_->on_drain(now_);
}

}  // namespace algas::sim
