#include "simgpu/device_props.hpp"

namespace algas::sim {

namespace {
constexpr std::size_t kKiB = 1024;
}

DeviceProps DeviceProps::rtx_a6000() {
  DeviceProps p;
  p.name = "RTX A6000";
  p.num_sms = 84;
  p.max_blocks_per_sm = 16;
  p.max_threads_per_block = 1024;
  p.warp_size = 32;
  p.shared_mem_per_block = 48 * kKiB;
  p.shared_mem_per_sm = 100 * kKiB;
  p.reserved_shared_mem_per_block = 1 * kKiB;
  p.shared_mem_per_block_optin = 99 * kKiB;
  p.full_speed_warps_per_sm = 4;
  p.clock_ghz = 1.41;
  return p;
}

DeviceProps DeviceProps::tiny_test_device() {
  DeviceProps p;
  p.name = "tiny-test";
  p.num_sms = 4;
  p.max_blocks_per_sm = 4;
  p.max_threads_per_block = 256;
  p.warp_size = 32;
  p.shared_mem_per_block = 16 * kKiB;
  p.shared_mem_per_sm = 32 * kKiB;
  p.reserved_shared_mem_per_block = 1 * kKiB;
  p.shared_mem_per_block_optin = 31 * kKiB;
  p.full_speed_warps_per_sm = 2;
  p.clock_ghz = 1.0;
  return p;
}

}  // namespace algas::sim
