// Host <-> device channel ("PCIe") model.
//
// Transfers serialize on the link: a transaction issued while the link is
// busy waits for it to free (this contention is what makes many-slot naive
// state polling a bottleneck, §V-A). Counters are split by purpose so
// benches can report exactly which traffic the state optimization removes.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "common/ownership.hpp"
#include "common/types.hpp"
#include "simgpu/cost_model.hpp"

namespace algas::sim {

class Tracer;

enum class Xfer : std::uint8_t {
  kStatePoll = 0,   ///< host reads a device-resident state word
  kStateWrite,      ///< host or device writes a state word across the link
  kQuery,           ///< query vector dispatch (host -> device)
  kResult,          ///< per-slot result block (device -> host)
  kBulk,            ///< index upload, batch query/result blocks
  kCount_,
};

const char* xfer_name(Xfer purpose);

struct XferCounters {
  std::uint64_t transactions = 0;
  std::uint64_t bytes = 0;
};

/// Shared host-side bandwidth budget. Each device shard owns a private
/// Channel (a full PCIe link), but in a multi-device deployment all their
/// data-plane DMA converges on one host root complex / memory bus. A
/// HostBus serializes those transactions after they clear their own link:
/// per-link bandwidth stops adding up once the aggregate exceeds
/// CostModel::host_bus_bytes_per_ns — the contention the sharded engine's
/// scaling sweep measures. Control-plane writes (state words, doorbells)
/// never touch it, matching Channel's pipelining rule.
class HostBus {
 public:
  explicit HostBus(const CostModel& cm) : cm_(cm) {}

  /// Serialize one data-plane transaction on the shared host side, starting
  /// no earlier than `ready` (the instant it cleared its own link).
  /// Returns the transaction's completion time.
  SimTime acquire(SimTime ready, std::size_t bytes, Xfer purpose);

  std::uint64_t transactions() const { return transactions_; }
  std::uint64_t bytes() const { return bytes_; }

  /// Fraction of elapsed time the bus was busy in [0, elapsed].
  double utilization(SimTime elapsed) const {
    return elapsed <= 0.0 ? 0.0 : bus_busy_time_ / elapsed;
  }

  /// Attach a SimTrace sink (not owned; null disables). Every arbitration
  /// renders its bus occupancy as a span on lane `tid` under `pid`.
  void set_tracer(Tracer* t, int pid, int tid) {
    trace_ = t;
    trace_pid_ = pid;
    trace_tid_ = tid;
  }

 private:
  CostModel cm_;
  Tracer* trace_ = nullptr;
  int trace_pid_ = 0;
  int trace_tid_ = 0;
  /// Same single-writer discipline as Channel: every link funnels its
  /// data-plane transactions through acquire(), so the bus serializes by
  /// construction. (Names differ from Channel's cursor fields so the
  /// name-keyed ownership lint keeps the owner sets distinct.)
  SimTime bus_next_free_ ALGAS_OWNED_BY(HostBus) = 0.0;
  double bus_busy_time_ ALGAS_OWNED_BY(HostBus) = 0.0;
  std::uint64_t transactions_ ALGAS_OWNED_BY(HostBus) = 0;
  std::uint64_t bytes_ ALGAS_OWNED_BY(HostBus) = 0;
};

class Channel {
 public:
  explicit Channel(const CostModel& cm) : cm_(cm) {}

  /// Transactions at or below this size are control-plane (state words,
  /// doorbells): they are counted and charged to the issuer, but do not
  /// serialize on the link — PCIe pipelines small posted writes at rates
  /// far beyond anything these engines generate.
  static constexpr std::size_t kControlPlaneBytes = 64;

  /// Issue a read-like transaction at virtual time `now` (the issuer waits
  /// for the data). Returns the duration the calling actor must charge:
  /// wait-for-link + occupancy + propagation latency.
  SimTime transfer(SimTime now, std::size_t bytes, Xfer purpose);

  /// Issue a posted write: the issuer continues once the transaction is on
  /// the link (wait + occupancy); propagation happens in the background.
  /// GDRCopy-style state write-throughs and query dispatches use this.
  SimTime post(SimTime now, std::size_t bytes, Xfer purpose);

  const XferCounters& counters(Xfer purpose) const {
    return counters_[static_cast<std::size_t>(purpose)];
  }
  XferCounters total() const;

  /// Fraction of elapsed time the link was busy in [0, elapsed].
  double utilization(SimTime elapsed) const {
    return elapsed <= 0.0 ? 0.0 : busy_time_ / elapsed;
  }

  void reset_counters();

  /// Attach a SimTrace sink (not owned; null disables). Every transaction
  /// emits a cumulative per-purpose byte counter under `pid`; data-plane
  /// transfers additionally render their link occupancy as a span (plus a
  /// flow pair) on lane `link_tid`. Pure observer — costs are unchanged.
  void set_tracer(Tracer* t, int pid, int link_tid) {
    trace_ = t;
    trace_pid_ = pid;
    trace_tid_ = link_tid;
  }

  /// Attach the shared host-side bus (not owned; null = uncontended host,
  /// the single-device default). When set, data-plane transactions clear
  /// this link and then arbitrate on the bus before completing; the extra
  /// wait is charged to the issuer. Control-plane posts are unaffected.
  void set_host_bus(HostBus* bus) { host_bus_ = bus; }

 private:
  CostModel cm_;
  HostBus* host_bus_ = nullptr;
  Tracer* trace_ = nullptr;
  int trace_pid_ = 0;
  int trace_tid_ = 0;
  /// Link occupancy cursor and counters: every actor on either side issues
  /// transactions, but all mutation funnels through transfer()/post() — the
  /// link serializes by construction, which is the §V-A contention model.
  SimTime next_free_ ALGAS_OWNED_BY(Channel) = 0.0;
  double busy_time_ ALGAS_OWNED_BY(Channel) = 0.0;
  std::array<XferCounters, static_cast<std::size_t>(Xfer::kCount_)>
      counters_ ALGAS_OWNED_BY(Channel){};
};

}  // namespace algas::sim
