// Deterministic open-loop arrival processes for the serving layer.
//
// Two workload shapes drive the serving benches: a memoryless Poisson
// stream (exponential inter-arrivals at a fixed rate) and a bursty
// 2-phase MMPP (Markov-modulated Poisson process) that alternates between
// a base phase and a burst phase, each with its own rate and exponential
// dwell time. Both draw every sample from common/rng.hpp — the repo's only
// sanctioned randomness — so a (config, seed) pair replays the exact same
// trace on every host, which is what lets CI checksum arrival traces
// byte-for-byte across machines and thread counts.
//
// Times are virtual nanoseconds (SimTime), compatible with
// core::PendingQuery::arrival_ns.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace algas::sim {

enum class ArrivalKind : std::uint8_t {
  kPoisson = 0,  ///< memoryless stream at rate_qps
  kBursty,       ///< 2-phase MMPP: base rate / burst rate alternation
};

const char* arrival_kind_name(ArrivalKind k);

struct ArrivalConfig {
  ArrivalKind kind = ArrivalKind::kPoisson;
  /// Offered rate of the base phase, queries per (virtual) second.
  double rate_qps = 1000.0;
  /// Burst-phase rate for kBursty; 0 defaults to 4x rate_qps.
  double burst_rate_qps = 0.0;
  /// Mean dwell time in the base phase, microseconds (exponential).
  double base_dwell_us = 2000.0;
  /// Mean dwell time in the burst phase, microseconds (exponential).
  double burst_dwell_us = 500.0;
  std::uint64_t seed = 1;

  double effective_burst_rate() const {
    return burst_rate_qps > 0.0 ? burst_rate_qps : 4.0 * rate_qps;
  }
  /// Long-run fraction of time spent in the burst phase (kBursty): the
  /// alternating-renewal occupancy burst_dwell / (base_dwell + burst_dwell).
  double expected_burst_fraction() const {
    return burst_dwell_us / (base_dwell_us + burst_dwell_us);
  }
};

/// Stateful arrival generator. next_arrival_ns() yields a strictly
/// nondecreasing sequence of absolute virtual timestamps starting after 0.
class ArrivalProcess {
 public:
  explicit ArrivalProcess(const ArrivalConfig& cfg);

  /// Absolute virtual time of the next arrival (advances the process).
  SimTime next_arrival_ns();

  /// The next n arrivals as a vector (convenience for wiring workloads).
  std::vector<SimTime> generate_ns(std::size_t n);

  const ArrivalConfig& config() const { return cfg_; }
  /// True while the MMPP sits in its burst phase (always false for Poisson).
  bool in_burst() const { return in_burst_; }
  /// Total virtual time the process has spent in the burst phase so far.
  SimTime burst_time_ns() const { return burst_ns_; }
  /// Virtual time the process has advanced through (phase time, not just
  /// arrival stamps — together with burst_time_ns this measures phase
  /// occupancy for the MMPP property tests).
  SimTime elapsed_ns() const { return now_ns_; }

 private:
  /// One Exp(1/mean) sample in nanoseconds via inverse transform.
  double exp_sample_ns(double mean_ns);
  double current_rate_qps() const;
  double current_dwell_mean_ns() const;

  ArrivalConfig cfg_;
  Rng rng_;
  SimTime now_ns_ = 0.0;
  bool in_burst_ = false;
  SimTime phase_end_ns_ = 0.0;  ///< kBursty: when the current phase flips
  SimTime burst_ns_ = 0.0;
};

}  // namespace algas::sim
