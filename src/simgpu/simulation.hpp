// Deterministic discrete-event simulation core.
//
// Actors (CTAs, host worker threads, batch drivers, workload generators)
// self-schedule: inside step() an actor performs its next slice of work —
// executing the *real* algorithm functionally — computes that slice's
// virtual duration from the CostModel, and reschedules itself. Actors that
// wait on shared state either poll (reschedule at +poll_interval, exactly
// like the paper's polling design) or sleep until another actor wakes them
// via Simulation::schedule().
//
// At most one pending event per actor: schedule() coalesces, keeping the
// earliest requested wake-up. Ties in time break by insertion order, so runs
// are bit-for-bit reproducible.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "common/ownership.hpp"
#include "common/types.hpp"

namespace algas::sim {

class SimCheck;
class Simulation;
class Tracer;

/// Base class for everything that consumes virtual time.
class Actor {
 public:
  virtual ~Actor() = default;

  /// Perform the next slice of work at sim.now(); reschedule yourself via
  /// sim.schedule(this, when) or go dormant by not rescheduling.
  virtual void step(Simulation& sim) = 0;

  virtual const char* name() const { return "actor"; }

 private:
  friend class Simulation;
  /// Queue bookkeeping lives in the actor but belongs to the scheduler:
  /// only Simulation (schedule/cancel/pop) may touch these.
  std::uint64_t token_ ALGAS_OWNED_BY(Simulation) = 0;
  SimTime pending_time_ ALGAS_OWNED_BY(Simulation) = -1.0;  // < 0 = none
};

class Simulation {
 public:
  /// Schedule (or re-schedule) `a` to step at time `when`. If the actor
  /// already has an earlier pending event this is a no-op; a later pending
  /// event is superseded. `when` is clamped to now() — the past is not
  /// addressable.
  void schedule(Actor* a, SimTime when);

  /// Remove the actor's pending event, if any.
  void cancel(Actor* a);

  SimTime now() const { return now_; }

  /// Run until the event queue drains or stop() is called.
  void run();

  /// Run until virtual time exceeds `t` (events at exactly t still run).
  void run_until(SimTime t);

  /// Timestamp of the next live event, or +infinity when the queue is
  /// drained. Stale entries encountered at the head are discarded (and
  /// counted) exactly as run() would — peeking never changes which events
  /// execute. This is the coordination primitive SimulationGroup uses to
  /// interleave several simulations in global time order.
  SimTime next_event_time();

  /// Process exactly one live event (advancing now()). Returns false when
  /// the queue is drained. Unlike run(), does NOT signal the checker's
  /// drain hook — callers that interleave multiple simulations signal
  /// notify_drain() once the whole group is done.
  bool step_one();

  /// Tell the attached checker the run drained naturally (what run() does
  /// implicitly). SimulationGroup calls this per member after all members
  /// drain; a no-op without a checker.
  void notify_drain();

  void stop() { stopped_ = true; }

  std::uint64_t events_processed() const { return events_processed_; }
  /// Queue entries discarded because their actor was re-scheduled or
  /// cancelled after they were pushed (token mismatch on pop). A high
  /// stale:processed ratio means actors churn their wake-ups.
  std::uint64_t stale_events() const { return stale_events_; }
  bool idle() const { return queue_.empty(); }

  /// Attach a SimCheck verification layer (not owned; null disables — the
  /// unchecked path costs one branch per schedule/step). The checker
  /// observes scheduling hygiene and natural queue drains; it never
  /// advances or charges virtual time.
  void set_checker(SimCheck* check) { check_ = check; }
  SimCheck* checker() const { return check_; }

  /// Attach a SimTrace event sink (not owned; null disables). Like the
  /// checker, the tracer is a pure observer reachable from actors during
  /// step() — it records timeline events but never advances or charges
  /// virtual time, so traced and untraced runs are bit-identical.
  void set_tracer(Tracer* t) { trace_ = t; }
  Tracer* tracer() const { return trace_; }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    Actor* actor;
    std::uint64_t token;
    bool operator>(const Event& o) const {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };

  bool pop_next(Event& ev);

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue_;
  SimTime now_ = 0.0;
  std::uint64_t seq_ = 0;
  std::uint64_t events_processed_ = 0;
  std::uint64_t stale_events_ = 0;
  bool stopped_ = false;
  SimCheck* check_ = nullptr;
  Tracer* trace_ = nullptr;
};

}  // namespace algas::sim
