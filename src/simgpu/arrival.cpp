#include "simgpu/arrival.hpp"

#include <cmath>
#include <stdexcept>

namespace algas::sim {

const char* arrival_kind_name(ArrivalKind k) {
  switch (k) {
    case ArrivalKind::kPoisson: return "poisson";
    case ArrivalKind::kBursty: return "bursty";
  }
  return "invalid";
}

ArrivalProcess::ArrivalProcess(const ArrivalConfig& cfg)
    : cfg_(cfg), rng_(cfg.seed) {
  if (!(cfg_.rate_qps > 0.0)) {
    throw std::invalid_argument("ArrivalProcess: rate_qps must be > 0");
  }
  if (cfg_.kind == ArrivalKind::kBursty) {
    if (!(cfg_.base_dwell_us > 0.0) || !(cfg_.burst_dwell_us > 0.0)) {
      throw std::invalid_argument(
          "ArrivalProcess: bursty dwell times must be > 0");
    }
    phase_end_ns_ = exp_sample_ns(cfg_.base_dwell_us * 1000.0);
  }
}

double ArrivalProcess::exp_sample_ns(double mean_ns) {
  // Inverse transform on [0,1): -mean * ln(1-u). u never reaches 1, so the
  // log argument stays in (0,1] and the sample is finite.
  const double u = rng_.next_double();
  return -mean_ns * std::log(1.0 - u);
}

double ArrivalProcess::current_rate_qps() const {
  return in_burst_ ? cfg_.effective_burst_rate() : cfg_.rate_qps;
}

double ArrivalProcess::current_dwell_mean_ns() const {
  return (in_burst_ ? cfg_.burst_dwell_us : cfg_.base_dwell_us) * 1000.0;
}

SimTime ArrivalProcess::next_arrival_ns() {
  if (cfg_.kind == ArrivalKind::kPoisson) {
    now_ns_ += exp_sample_ns(1e9 / cfg_.rate_qps);
    return now_ns_;
  }
  // MMPP-2 via competing exponentials: sample a wait at the current phase's
  // rate; if it lands inside the phase it is the next arrival (memoryless,
  // so no correction needed), otherwise advance to the phase boundary, flip
  // phases, draw the new phase's dwell, and resample — the exponential's
  // lack of memory makes the discarded partial wait exact, not an
  // approximation.
  for (;;) {
    const double wait = exp_sample_ns(1e9 / current_rate_qps());
    if (now_ns_ + wait <= phase_end_ns_) {
      if (in_burst_) burst_ns_ += wait;
      now_ns_ += wait;
      return now_ns_;
    }
    const double to_boundary = phase_end_ns_ - now_ns_;
    if (in_burst_) burst_ns_ += to_boundary;
    now_ns_ = phase_end_ns_;
    in_burst_ = !in_burst_;
    phase_end_ns_ = now_ns_ + exp_sample_ns(current_dwell_mean_ns());
  }
}

std::vector<SimTime> ArrivalProcess::generate_ns(std::size_t n) {
  std::vector<SimTime> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(next_arrival_ns());
  return out;
}

}  // namespace algas::sim
