// Deterministic coordination of several Simulations on one virtual clock.
//
// The sharded engine instantiates one Simulation per device shard plus one
// for the host-side scatter-gather stage. A group steps whichever member
// has the earliest live event, one event at a time, so the interleaving is
// a pure function of the members' event times: global time order, ties
// broken by member insertion order (then each member's own seq order).
// That makes a K-shard run exactly as reproducible as a single Simulation
// — and a group of one member is step-for-step identical to
// Simulation::run().
//
// Cross-member scheduling is legal: an actor stepped in member A may
// schedule an actor that lives in member B (e.g. a shard's host worker
// waking the gather stage). The target's clock never runs ahead of the
// global clock, so the scheduled time is always in the target's future and
// per-member timestamps stay causally consistent.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.hpp"

namespace algas::sim {

class Simulation;

class SimulationGroup {
 public:
  /// Register a member (not owned). Insertion order is the deterministic
  /// tie-break for events at equal virtual time.
  void add(Simulation* sim) { members_.push_back(sim); }

  std::size_t size() const { return members_.size(); }

  /// Earliest live event time across all members (+inf when drained).
  SimTime next_event_time() const;

  /// Run members' events in global time order until every queue drains,
  /// then signal each member's checker drain hook in insertion order
  /// (matching what Simulation::run() does for a lone simulation).
  void run();

 private:
  std::vector<Simulation*> members_;
};

}  // namespace algas::sim
