// Physical device description (paper Table II). The adaptive tuner (§IV-C)
// derives slot/CTA/shared-memory configurations from these limits, and the
// SM scheduler enforces the resulting residency capacity.
#pragma once

#include <cstddef>
#include <string>

namespace algas::sim {

struct DeviceProps {
  std::string name = "generic";
  std::size_t num_sms = 0;                          ///< N_SM
  std::size_t max_blocks_per_sm = 0;                ///< N_max_block_per_SM
  std::size_t max_threads_per_block = 0;
  std::size_t warp_size = 32;
  std::size_t shared_mem_per_block = 0;             ///< default static limit
  std::size_t shared_mem_per_sm = 0;                ///< M_per_SM
  std::size_t reserved_shared_mem_per_block = 0;    ///< M_reserved baseline
  std::size_t shared_mem_per_block_optin = 0;       ///< sharedMemPerBlockOptin
  /// Warps one SM executes at full throughput (one per warp scheduler).
  /// More blocks can be *resident*, but beyond this they timeslice; the
  /// engines treat it as the full-speed concurrency capacity.
  std::size_t full_speed_warps_per_sm = 4;
  double clock_ghz = 1.0;

  /// CTAs (1 warp each) the device executes concurrently at full speed.
  std::size_t full_speed_ctas() const {
    return num_sms * full_speed_warps_per_sm;
  }

  /// The RTX A6000 configuration the paper evaluates on (Table II).
  static DeviceProps rtx_a6000();

  /// A deliberately small device for tests (4 SMs) so occupancy edge cases
  /// are reachable with tiny workloads.
  static DeviceProps tiny_test_device();

  /// Upper bound on simultaneously resident blocks from the block limit
  /// alone (shared memory may reduce it further; see Tuner).
  std::size_t max_resident_blocks() const {
    return num_sms * max_blocks_per_sm;
  }
};

}  // namespace algas::sim
