// SimTrace — Perfetto-compatible timeline tracing for the DES substrate.
//
// A Tracer is a zero-virtual-time event sink, wired exactly like SimCheck:
// engines and substrate components hold a nullable pointer, and a null
// tracer is the zero-cost disabled path (one branch per hook site). The
// tracer records per-actor duration spans (CTA work slices, host-worker
// steps), instant events (Fig 5 slot-state transitions), counters
// (in-flight queries, delivered, per-Xfer PCIe bytes) and flow arrows
// (query dispatch -> slot occupancy), all stamped with *virtual* time.
// It never schedules events and never charges virtual nanoseconds, so a
// traced run is bit-identical in every measured quantity to an untraced
// one — the guarantee tests/test_trace.cpp pins.
//
// Serialization is the Chrome trace-event JSON object format, loadable in
// Perfetto (https://ui.perfetto.dev) or chrome://tracing. Timestamps are
// emitted in microseconds (the format's unit) at nanosecond precision.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace algas::sim {

/// Ordered key/value list rendered into one event's "args" object.
/// Values are pre-rendered to JSON at add() time so storage is uniform.
class TraceArgs {
 public:
  TraceArgs& add(const std::string& key, const std::string& v);
  TraceArgs& add(const std::string& key, const char* v);
  TraceArgs& add(const std::string& key, double v);
  TraceArgs& add(const std::string& key, std::uint64_t v);

  bool empty() const { return kv_.empty(); }
  /// (key, JSON-rendered value) pairs, for test inspection.
  const std::vector<std::pair<std::string, std::string>>& items() const {
    return kv_;
  }

 private:
  std::vector<std::pair<std::string, std::string>> kv_;
};

/// Chrome trace-event phases the tracer emits.
enum class TracePhase : char {
  kComplete = 'X',   ///< duration span (ts + dur)
  kInstant = 'i',    ///< point event, thread-scoped
  kCounter = 'C',    ///< sampled counter value
  kFlowBegin = 's',  ///< flow arrow tail (binds to the enclosing slice)
  kFlowEnd = 'f',    ///< flow arrow head
  kMetadata = 'M',   ///< process/thread naming
};

/// One recorded event. Kept in memory until write_json()/save().
struct TraceEventRec {
  TracePhase ph = TracePhase::kInstant;
  int pid = 0;
  int tid = 0;
  SimTime ts_ns = 0.0;
  SimTime dur_ns = 0.0;       ///< kComplete only
  std::uint64_t flow_id = 0;  ///< flow phases only
  std::string name;
  std::string cat;
  TraceArgs args;
};

class Tracer {
 public:
  /// Open a new process group (one engine run) named `label`. Runs traced
  /// into one file render as separate process groups, which is what makes
  /// dynamic-vs-static timelines directly comparable side by side.
  int begin_process(const std::string& label);

  /// Register a named lane (a Perfetto "thread") under `pid`. Lanes sort
  /// in registration order. Returns the tid.
  int lane(int pid, const std::string& name);

  /// Duration span [start_ns, start_ns + dur_ns) on one lane.
  void complete(int pid, int tid, const std::string& name, SimTime start_ns,
                SimTime dur_ns, TraceArgs args = {},
                const std::string& cat = "span");

  /// Thread-scoped instant event.
  void instant(int pid, int tid, const std::string& name, SimTime t_ns,
               TraceArgs args = {}, const std::string& cat = "instant");

  /// Counter sample (rendered as a per-process counter track).
  void counter(int pid, const std::string& name, SimTime t_ns, double value);

  /// Flow arrow tail/head. Matching (name, id) pairs connect the slices
  /// enclosing the two timestamps. Allocate ids with new_flow_id().
  void flow_begin(int pid, int tid, const std::string& name,
                  std::uint64_t id, SimTime t_ns);
  void flow_end(int pid, int tid, const std::string& name, std::uint64_t id,
                SimTime t_ns);

  /// Process-unique flow identifier.
  std::uint64_t new_flow_id() { return ++next_flow_id_; }

  std::uint64_t events_recorded() const { return events_.size(); }
  /// In-memory event list (tests assert span nesting / transition legality
  /// on this rather than re-parsing JSON).
  const std::vector<TraceEventRec>& events() const { return events_; }

  /// Chrome trace-event JSON object format: {"traceEvents": [...], ...}.
  void write_json(std::ostream& os) const;

  /// write_json() to `path`. Throws std::runtime_error on IO failure.
  void save(const std::string& path) const;

  void clear();

 private:
  std::vector<TraceEventRec> events_;
  int next_pid_ = 0;
  std::vector<int> next_tid_;  ///< per-pid lane counter (pid is the index)
  std::uint64_t next_flow_id_ = 0;
};

/// The ALGAS_TRACE environment override: trace output path, "" when unset.
const std::string& trace_default_path();

/// Process-wide tracer bound to ALGAS_TRACE, or null when the variable is
/// unset. Engines fall back to this when no explicit tracer is configured
/// and rewrite the file after every run, so a multi-run bench accumulates
/// all its runs into one trace.
Tracer* default_tracer();

}  // namespace algas::sim
