// SimCheck — always-compilable, toggleable verification layer for the
// simulated-GPU substrate.
//
// Every result this repository reports rests on the substrate faithfully
// enforcing the paper's protocols. SimCheck makes those protocols *checked*
// instead of assumed: it observes schedule/step traffic on the event queue,
// audits shared-memory budgets at block launch, and hosts the per-actor
// ring-buffer event traces that higher layers (core::ProtocolChecker)
// append state-machine history to. The first violation fails fast with a
// SimCheckError whose what() carries the offending actor's trace dump.
//
// SimCheck never charges virtual time — it is a pure observer, so enabling
// it cannot perturb any measured latency. A null checker pointer is the
// zero-cost disabled path (one branch per hook site).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <stdexcept>
#include <string>

#include "common/types.hpp"
#include "simgpu/device_props.hpp"
#include "simgpu/shared_memory.hpp"

namespace algas::sim {

class Actor;

/// Thrown on the first violation (fail fast). what() carries the full
/// report, including the offending actor's ring-buffer event trace.
class SimCheckError : public std::logic_error {
 public:
  SimCheckError(std::string kind, const std::string& report)
      : std::logic_error(report), kind_(std::move(kind)) {}
  /// Short machine-checkable violation class, e.g. "ownership",
  /// "channel-conservation", "shared-memory-budget", "deadlock".
  const std::string& kind() const { return kind_; }

 private:
  std::string kind_;
};

struct SimCheckConfig {
  /// Ring-buffer entries kept per traced actor / state word.
  std::size_t trace_capacity = 32;
  /// Simulation::schedule() clamps past targets to now(); requesting a
  /// wake-up further in the past than this tolerance is a violation
  /// (a cost-accounting bug, not the documented clamp).
  double schedule_past_tolerance_ns = 1e-6;
};

/// One traced event of one actor.
struct TraceEvent {
  SimTime t = 0.0;
  std::string what;
};

/// Fixed-capacity ring of the most recent events of one actor.
class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity) : capacity_(capacity) {}

  void push(SimTime t, std::string what) {
    if (events_.size() == capacity_) events_.pop_front();
    events_.push_back(TraceEvent{t, std::move(what)});
    ++total_;
  }

  const std::deque<TraceEvent>& events() const { return events_; }
  std::uint64_t total_recorded() const { return total_; }

 private:
  std::size_t capacity_;
  std::uint64_t total_ = 0;
  std::deque<TraceEvent> events_;
};

class SimCheck {
 public:
  explicit SimCheck(SimCheckConfig cfg = SimCheckConfig{});

  const SimCheckConfig& config() const { return cfg_; }

  // ---- trace & violation machinery ------------------------------------
  /// Append one event to `actor`'s ring buffer.
  void record(const std::string& actor, SimTime t, std::string what);

  /// Build a violation report (message + `actor`'s trace dump, when
  /// non-empty) and throw SimCheckError. Never returns.
  [[noreturn]] void fail(const std::string& kind, const std::string& actor,
                         SimTime t, const std::string& message) const;

  /// The last `trace_capacity` events of one actor, formatted one per line.
  std::string trace_dump(const std::string& actor) const;

  /// Count one invariant evaluation (kept so tests can assert the checker
  /// actually looked at a run rather than silently no-opping).
  void count_check() { ++checks_; }
  std::uint64_t checks_performed() const { return checks_; }
  std::uint64_t events_traced() const { return traced_; }
  std::uint64_t violations() const { return violations_; }

  /// Reset per-run state (traces, counters, drain hook) so one checker can
  /// audit many engine runs back to back.
  void begin_run(const std::string& label);
  const std::string& run_label() const { return run_label_; }

  // ---- Simulation hooks (event-queue hygiene) -------------------------
  /// Called by Simulation::schedule before clamping. Flags wake-up
  /// requests in the past beyond the documented clamp tolerance.
  void on_schedule(const Actor* a, const char* name, SimTime now,
                   SimTime requested);
  /// Called by the run loop as each event is popped. Flags virtual-time
  /// regression and traces the step into the actor's ring.
  void on_event(const Actor* a, const char* name, SimTime now,
                SimTime event_time);
  /// Called when the event queue drains naturally (not via stop()).
  /// Invokes the registered drain hook, if any.
  void on_drain(SimTime now);
  void set_drain_hook(std::function<void(SimTime)> hook) {
    drain_hook_ = std::move(hook);
  }

  // ---- shared-memory budget (§IV-C) -----------------------------------
  /// Verify one launched block: its layout must pass the occupancy check
  /// at the tuned residency AND fit the tuner's per-block budget.
  void check_block_launch(const std::string& actor, SimTime t,
                          const DeviceProps& dev,
                          const SharedMemoryLayout& layout,
                          std::size_t blocks_per_sm,
                          std::size_t reserved_per_block,
                          std::size_t budget_bytes);

 private:
  /// Stable deterministic key for an actor pointer: "<name>#<ordinal>".
  const std::string& actor_key(const Actor* a, const char* name);

  SimCheckConfig cfg_;
  std::string run_label_;
  std::map<std::string, TraceRing> traces_;
  // Diagnostics use the deterministic "<name>#<ordinal>" value instead.
  // lint: pointer-key lookup-only (find/emplace/clear), never iterated
  std::map<const Actor*, std::string> actor_keys_;
  std::map<std::string, std::size_t> name_ordinals_;
  std::function<void(SimTime)> drain_hook_;
  std::uint64_t checks_ = 0;
  std::uint64_t traced_ = 0;
  mutable std::uint64_t violations_ = 0;
};

/// True when engines should run checked even without an explicit checker:
/// the ALGAS_SIMCHECK CMake option sets the compiled default, overridable
/// at runtime via the ALGAS_SIMCHECK environment variable (1/on / 0/off).
bool simcheck_default_enabled();

}  // namespace algas::sim
