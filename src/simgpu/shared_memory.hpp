// Per-block shared-memory accounting (§IV-C).
//
// The search kernel keeps its hot data structures — candidate list, expand
// list, and the query vector — in shared memory. SharedMemoryLayout computes
// the bytes a block needs for a given search configuration; the tuner checks
// that against M_per_SM / N_block_per_SM - M_reserved_per_block.
#pragma once

#include <cstddef>
#include <string>

#include "common/ownership.hpp"
#include "simgpu/device_props.hpp"

namespace algas::sim {

/// Bytes per candidate/expand-list entry: float distance + uint32 id
/// (visited flag packed in the id's top bit).
inline constexpr std::size_t kListEntryBytes = 8;

struct SharedMemoryLayout {
  /// A layout is a value: built up locally (tuner, engine setup), then
  /// handed to the occupancy check / block launch and never edited again —
  /// the kernel's shared-memory carveout cannot be resized mid-flight.
  std::size_t candidate_entries ALGAS_IMMUTABLE_AFTER_PUBLISH = 0;  ///< L
  std::size_t expand_entries ALGAS_IMMUTABLE_AFTER_PUBLISH = 0;     ///< E
  std::size_t dim ALGAS_IMMUTABLE_AFTER_PUBLISH = 0;  ///< query dimension
  /// Stored bytes per query element (4 = f32, 2 = f16, 1 = int8): the
  /// kernel keeps the query in shared memory at the base rows' width so a
  /// quantized layout shrinks the block's footprint (§IV-C budgets fit
  /// larger fanouts).
  std::size_t elem_bytes ALGAS_IMMUTABLE_AFTER_PUBLISH = sizeof(float);

  std::size_t candidate_bytes() const { return candidate_entries * kListEntryBytes; }
  std::size_t expand_bytes() const { return expand_entries * kListEntryBytes; }
  std::size_t query_bytes() const { return dim * elem_bytes; }
  /// Slot state word + cursor/bookkeeping scalars kept per block.
  std::size_t control_bytes() const { return 64; }

  std::size_t total_bytes() const {
    return candidate_bytes() + expand_bytes() + query_bytes() + control_bytes();
  }

  std::string describe() const;
};

/// Occupancy result for a candidate layout on a device.
struct OccupancyCheck {
  bool fits = false;
  std::size_t blocks_per_sm = 0;        ///< N_block_per_SM actually sustainable
  std::size_t avail_per_block = 0;      ///< M_avail_per_block at that occupancy
  std::size_t required_per_block = 0;   ///< layout.total_bytes()
  std::string reason;                   ///< human-readable failure cause
};

/// Check whether `blocks_per_sm` blocks of `layout` fit on one SM with
/// `reserved_per_block` extra bytes held back as runtime cache (§IV-C).
OccupancyCheck check_occupancy(const DeviceProps& dev,
                               const SharedMemoryLayout& layout,
                               std::size_t blocks_per_sm,
                               std::size_t reserved_per_block);

}  // namespace algas::sim
