// Virtual-time cost model for the simulated GPU.
//
// Every operation an engine performs (distance round, bitonic sort stage,
// state poll, PCIe transaction, kernel launch, host merge) charges virtual
// nanoseconds computed here. The *functional* work still executes in real
// floats; only the clock is modeled.
//
// Calibration: constants are set so that a SIFT-like query (dim 128, degree
// 32, candidate list 128) lands in the hundreds-of-microseconds regime the
// paper's figures occupy, with a compute:sort split matching Fig 3's
// 19.9%–33.9% sorting share under greedy extend. EXPERIMENTS.md records the
// measured split.
#pragma once

#include <cmath>
#include <cstddef>

#include "common/types.hpp"

namespace algas::sim {

struct CostModel {
  // --- Device-side search work (per CTA, 1 warp = 32 lanes) -------------
  /// Fixed cost of scoring one neighbor (index math, global-memory issue).
  double dist_base_ns = 20.0;
  /// Per ceil(dim/warp) chunk of fused multiply-add work for one neighbor.
  double dist_chunk_ns = 3.4;
  /// Gathering one neighbor id from the adjacency list.
  double gather_per_neighbor_ns = 1.6;
  /// One visited-bitmap test-and-set (shared across CTAs -> L2 atomic).
  double bitmap_check_ns = 2.2;
  /// One element-wise compare/exchange processed by the warp during a
  /// bitonic stage (per 32-element wavefront).
  double sort_wavefront_ns = 6.0;
  /// Selecting the best unvisited candidate (scan of candidate list).
  double select_per_wavefront_ns = 4.0;

  // --- Device-side cross-CTA merge (CAGRA-style baseline) ---------------
  /// Per-element cost of the on-GPU divide-and-conquer TopK merge. Global
  /// memory traffic makes this far slower than shared-memory sorting; the
  /// divide-and-conquer halving also idles half the lanes per round (§III-B).
  double gpu_merge_per_elem_ns = 9.0;
  /// Fixed cross-CTA synchronization cost per merge round (grid sync /
  /// global barrier).
  double gpu_merge_round_ns = 950.0;

  // --- Host <-> device channel ("PCIe") ---------------------------------
  /// One-way transaction latency, experienced by the issuer. The link
  /// itself is pipelined: latency does NOT serialize transactions.
  double pcie_latency_ns = 600.0;
  /// Per-transaction link occupancy (header/arbitration) — the quantity
  /// that actually bounds the transaction *rate* on a shared link.
  double pcie_txn_overhead_ns = 40.0;
  /// Effective bandwidth, bytes per nanosecond (22 GB/s ~= PCIe 4 x16 eff.).
  double pcie_bytes_per_ns = 22.0;
  /// Aggregate host-side bandwidth shared by every device link (bytes per
  /// nanosecond). Models the root-complex / memory-bus ceiling a sharded
  /// deployment hits: each shard owns a full 22 GB/s link, but their DMA
  /// traffic converges on one host, so past ~3 concurrent shards the
  /// per-link bandwidth no longer adds up (64 / 22 ≈ 2.9).
  double host_bus_bytes_per_ns = 64.0;
  /// Host-bus arbitration overhead per data-plane transaction.
  double host_bus_txn_overhead_ns = 20.0;
  /// Polling a state that lives across the channel (naive mode, §V-A).
  double poll_remote_ns = 600.0;
  /// Polling a local state mirror (optimized mode, §V-A).
  double poll_local_ns = 25.0;
  /// Write-through of one state change to the remote mirror.
  double state_write_ns = 600.0;
  /// Device->host completion interrupt delivery (driver + syscall wake) in
  /// blocking mode (§V-A discusses blocking as the polling alternative).
  double interrupt_latency_ns = 4000.0;
  /// Host-side cost of handling one wake-up in blocking mode.
  double blocking_wake_ns = 800.0;

  // --- Host-side work ----------------------------------------------------
  /// Heap setup per sorted run in the host TopK merge (§IV-B step 4).
  double host_merge_init_per_run_ns = 60.0;
  /// One heap pop+push while extracting merged results.
  double host_merge_pop_ns = 25.0;
  /// Host thread bookkeeping per scheduling iteration.
  double host_loop_ns = 120.0;
  /// Preparing one query for dispatch (metadata, slot fill, stream submit).
  double host_dispatch_ns = 900.0;
  /// Submitting + reaping the per-slot result read on the host IO stream
  /// (§V-B: "private IO streams ... retrieves results sequentially through
  /// the stream"). Paid once per completed query.
  double host_io_submit_ns = 1200.0;
  /// Shedding one expired query at the queue head (deadline bookkeeping +
  /// caller notification). Paid by a host worker per query it drops at
  /// dispatch time instead of filling a slot.
  double host_shed_ns = 150.0;
  /// Evicting one finished-past-deadline slot: marking the states Expired
  /// is charged through StateSync like any transition; this is the
  /// bookkeeping of discarding the result block WITHOUT the fetch/merge
  /// the Done path would have paid.
  double host_evict_ns = 200.0;

  // --- Per-query CTA lifecycle -------------------------------------------
  /// Fixed CTA start-of-query cost (loading the query into shared memory,
  /// resetting cursors).
  double cta_start_ns = 350.0;
  /// Clearing one 64-bit word of this CTA's share of the visited bitmap.
  double bitmap_clear_per_word_ns = 0.04;
  /// Writing one candidate-list entry to the slot's global result block.
  double result_write_per_entry_ns = 0.6;

  // --- Kernel lifecycle ---------------------------------------------------
  /// Launch + teardown of one kernel (driver, scheduling). Paid per batch by
  /// the static baselines; paid once by the persistent kernel.
  double kernel_launch_ns = 9000.0;
  /// Device-side poll interval of a persistent-kernel CTA waiting for Work.
  double cta_poll_interval_ns = 180.0;
  /// Host poll interval while waiting on slot states.
  double host_poll_interval_ns = 250.0;

  // --- Derived helpers ----------------------------------------------------

  /// Distance evaluation of `n_points` candidates of dimension `dim` by one
  /// warp: lanes split the dimension (Algorithm 1 lines 10-13) and shuffle-
  /// reduce, so cost scales with ceil(dim/warp) per point. `elem_bytes` is
  /// the stored element width (4 = f32, 2 = f16, 1 = int8): a warp chunk
  /// moves warp * 4 bytes of row data, so narrower storage packs more
  /// dimensions per chunk — the memory-bandwidth win quantized rows buy.
  /// For f32 this reduces exactly to the historical ceil(dim/warp).
  double distance_round_ns(std::size_t dim, std::size_t n_points,
                           std::size_t warp = 32,
                           std::size_t elem_bytes = sizeof(float)) const {
    const double chunks = static_cast<double>(
        ceil_div(dim * elem_bytes, warp * sizeof(float)));
    return static_cast<double>(n_points) * (dist_base_ns + dist_chunk_ns * chunks);
  }

  /// Full bitonic sort of n elements (n a power of two) by one warp:
  /// k(k+1)/2 stages, each touching n/2 pairs in wavefronts of `warp`.
  double bitonic_sort_ns(std::size_t n, std::size_t warp = 32) const {
    if (n <= 1) return 0.0;
    const double k = std::log2(static_cast<double>(n));
    const double stages = k * (k + 1.0) / 2.0;
    const double wavefronts = static_cast<double>(ceil_div(n / 2, warp));
    return stages * wavefronts * sort_wavefront_ns;
  }

  /// Bitonic merge of two sorted runs totalling n elements: log2(n) stages.
  double bitonic_merge_ns(std::size_t n, std::size_t warp = 32) const {
    if (n <= 1) return 0.0;
    const double stages = std::log2(static_cast<double>(n));
    const double wavefronts = static_cast<double>(ceil_div(n / 2, warp));
    return stages * wavefronts * sort_wavefront_ns;
  }

  /// Scan of the candidate list for the best unvisited entry.
  double select_ns(std::size_t list_len, std::size_t warp = 32) const {
    return static_cast<double>(ceil_div(list_len, warp)) * select_per_wavefront_ns;
  }

  /// On-GPU divide-and-conquer merge of `runs` sorted runs of length `len`
  /// (the Multi-CTA TopK merge ALGAS eliminates). ceil(log2(runs)) rounds;
  /// each round processes all surviving elements through global memory while
  /// the other half of the lanes idle.
  double gpu_topk_merge_ns(std::size_t runs, std::size_t len) const {
    if (runs <= 1) return 0.0;
    double total = 0.0;
    std::size_t active = runs;
    while (active > 1) {
      total += gpu_merge_round_ns +
               static_cast<double>(active * len) * gpu_merge_per_elem_ns;
      active = (active + 1) / 2;
    }
    return total;
  }

  /// Host-side merge of `runs` sorted runs into the k best: the bounded
  /// priority queue touches each run head once plus ~k pops — it never
  /// scans the full lists (unlike the GPU divide-and-conquer merge).
  double host_topk_merge_ns(std::size_t runs, std::size_t k) const {
    if (runs == 0) return 0.0;
    const double logr = std::log2(static_cast<double>(runs) + 1.0);
    return host_merge_init_per_run_ns * static_cast<double>(runs) +
           host_merge_pop_ns * static_cast<double>(k) * logr;
  }

  /// Link occupancy of one transaction (what serializes on the channel).
  double transfer_occupancy_ns(std::size_t bytes) const {
    return pcie_txn_overhead_ns + static_cast<double>(bytes) / pcie_bytes_per_ns;
  }

  /// Host-bus occupancy of one data-plane transaction (what serializes on
  /// the shared host side when several shard links converge on one host).
  double host_bus_occupancy_ns(std::size_t bytes) const {
    return host_bus_txn_overhead_ns +
           static_cast<double>(bytes) / host_bus_bytes_per_ns;
  }
};

}  // namespace algas::sim
