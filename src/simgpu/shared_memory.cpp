#include "simgpu/shared_memory.hpp"

#include <sstream>

namespace algas::sim {

std::string SharedMemoryLayout::describe() const {
  std::ostringstream out;
  out << "candidate[" << candidate_entries << "]=" << candidate_bytes()
      << "B expand[" << expand_entries << "]=" << expand_bytes()
      << "B query[" << dim << "]=" << query_bytes()
      << "B control=" << control_bytes() << "B total=" << total_bytes() << "B";
  return out.str();
}

OccupancyCheck check_occupancy(const DeviceProps& dev,
                               const SharedMemoryLayout& layout,
                               std::size_t blocks_per_sm,
                               std::size_t reserved_per_block) {
  OccupancyCheck res;
  res.required_per_block = layout.total_bytes();

  if (blocks_per_sm == 0) {
    res.reason = "blocks_per_sm must be >= 1";
    return res;
  }
  if (blocks_per_sm > dev.max_blocks_per_sm) {
    std::ostringstream out;
    out << "blocks_per_sm " << blocks_per_sm << " exceeds device limit "
        << dev.max_blocks_per_sm;
    res.reason = out.str();
    return res;
  }

  // M_avail_per_block <= M_per_SM / N_block_per_SM - M_reserved_per_block
  const std::size_t share = dev.shared_mem_per_sm / blocks_per_sm;
  if (share <= reserved_per_block) {
    res.reason = "reserved cache consumes the entire per-block share";
    return res;
  }
  std::size_t avail = share - reserved_per_block;
  // A single block can also never exceed the opt-in per-block maximum.
  if (avail > dev.shared_mem_per_block_optin) {
    avail = dev.shared_mem_per_block_optin;
  }
  res.blocks_per_sm = blocks_per_sm;
  res.avail_per_block = avail;

  if (res.required_per_block > avail) {
    std::ostringstream out;
    out << "layout needs " << res.required_per_block << "B but only " << avail
        << "B available per block at " << blocks_per_sm << " blocks/SM";
    res.reason = out.str();
    return res;
  }
  res.fits = true;
  res.reason = "ok";
  return res;
}

}  // namespace algas::sim
