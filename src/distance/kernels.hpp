// Batched distance kernels — the host-side mirror of one warp's coalesced
// distance round (§IV-B step 3): score a whole gathered expand list against
// one query in a single call.
//
// Results are BITWISE-IDENTICAL to calling distance() once per point: each
// point keeps its own accumulator walking dimensions in the scalar order (no
// reassociation, no fast-math). The speedup comes from everything *around*
// the float chain — one metric dispatch per batch instead of per point,
// hoisting the query norm out of the cosine loop, software prefetch of
// upcoming base rows, and instruction-level parallelism across points (each
// point's chain is serial, but 4 independent chains keep the FP pipeline
// full — the CPU analogue of the warp's lanes working 4 neighbors).
#pragma once

#include <cstddef>
#include <span>

#include "common/types.hpp"
#include "distance/distance.hpp"

namespace algas {

/// Score base rows `ids` (rows of the row-major `base` matrix, `dim` floats
/// each) against `query`, writing distance(m, query, row) into `out[k]` for
/// `ids[k]`. `out.size()` must be >= `ids.size()`; duplicate ids are fine.
///
/// `base_norms` is an optional per-row L2-norm table (norm(row_i) at index
/// i) used only by the cosine metric; empty recomputes norms per call,
/// exactly like the scalar kernel. A table entry must equal norm(row)
/// bitwise for the batched cosine to stay bitwise-identical — Dataset's
/// cached table guarantees this by construction.
void distance_batch(Metric m, std::span<const float> query, const float* base,
                    std::size_t dim, std::span<const NodeId> ids,
                    std::span<float> out,
                    std::span<const float> base_norms = {});

/// Contiguous variant: score rows [first, first + count), writing out[k]
/// for row first + k. Used by the exhaustive scans (ground truth, IVF
/// coarse/list scans, medoid) where the id list is a range.
void distance_batch_range(Metric m, std::span<const float> query,
                          const float* base, std::size_t dim,
                          std::size_t first, std::size_t count,
                          std::span<float> out,
                          std::span<const float> base_norms = {});

}  // namespace algas
