// Batched distance kernels — the host-side mirror of one warp's coalesced
// distance round (§IV-B step 3): score a whole gathered expand list against
// one query in a single call.
//
// f32 results are BITWISE-IDENTICAL to calling distance() once per point:
// each point keeps its own accumulator walking dimensions in the scalar
// order (no reassociation, no fast-math). The speedup comes from everything
// *around* the float chain — one metric dispatch per batch instead of per
// point, hoisting the query norm out of the cosine loop, software prefetch
// of upcoming base rows, and instruction-level parallelism across points
// (each point's chain is serial, but 4 independent chains keep the FP
// pipeline full — the CPU analogue of the warp's lanes working 4 neighbors).
//
// The f16/int8 variants keep the same 4-wide ILP structure but dequantize
// each element in-register (half widening / scale * q) before it enters the
// accumulator chain, so a quantized batch result is bitwise-equal to
// decoding the row into floats and running the f32 kernel on it — the
// property the VectorStore tests pin. Quantized results are NOT bitwise-
// equal to f32 scoring of the original rows; that gap is what the recall
// gate (tools/recall_gate + scripts/check_recall.py) bounds.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "common/types.hpp"
#include "distance/distance.hpp"

namespace algas {

/// Score base rows `ids` (rows of the row-major `base` matrix, `dim` floats
/// each) against `query`, writing distance(m, query, row) into `out[k]` for
/// `ids[k]`. `out.size()` must be >= `ids.size()`; duplicate ids are fine.
///
/// `base_norms` is an optional per-row L2-norm table (norm(row_i) at index
/// i) used only by the cosine metric; empty recomputes norms per call,
/// exactly like the scalar kernel. A table entry must equal norm(row)
/// bitwise for the batched cosine to stay bitwise-identical — Dataset's
/// cached table guarantees this by construction.
void distance_batch(Metric m, std::span<const float> query, const float* base,
                    std::size_t dim, std::span<const NodeId> ids,
                    std::span<float> out,
                    std::span<const float> base_norms = {});

/// Contiguous variant: score rows [first, first + count), writing out[k]
/// for row first + k. Used by the exhaustive scans (ground truth, IVF
/// coarse/list scans, medoid) where the id list is a range.
void distance_batch_range(Metric m, std::span<const float> query,
                          const float* base, std::size_t dim,
                          std::size_t first, std::size_t count,
                          std::span<float> out,
                          std::span<const float> base_norms = {});

/// f16 rows: `base` holds binary16 bits, widened per element in-register.
/// For cosine, `base_norms` entries must be norms of the DECODED rows.
void distance_batch_f16(Metric m, std::span<const float> query,
                        const std::uint16_t* base, std::size_t dim,
                        std::span<const NodeId> ids, std::span<float> out,
                        std::span<const float> base_norms = {});

void distance_batch_range_f16(Metric m, std::span<const float> query,
                              const std::uint16_t* base, std::size_t dim,
                              std::size_t first, std::size_t count,
                              std::span<float> out,
                              std::span<const float> base_norms = {});

/// int8 rows: element j of row i dequantizes as row_scales[i] * base[i*dim+j]
/// inside the accumulator loop. For cosine, `base_norms` entries must be
/// norms of the DECODED rows.
void distance_batch_i8(Metric m, std::span<const float> query,
                       const std::int8_t* base, const float* row_scales,
                       std::size_t dim, std::span<const NodeId> ids,
                       std::span<float> out,
                       std::span<const float> base_norms = {});

void distance_batch_range_i8(Metric m, std::span<const float> query,
                             const std::int8_t* base, const float* row_scales,
                             std::size_t dim, std::size_t first,
                             std::size_t count, std::span<float> out,
                             std::span<const float> base_norms = {});

}  // namespace algas
