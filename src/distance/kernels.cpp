#include "distance/kernels.hpp"

#include <cassert>
#include <cmath>

#include "common/half.hpp"

namespace algas {

namespace {

#if defined(__GNUC__) || defined(__clang__)
inline void prefetch_row(const void* row) { __builtin_prefetch(row, 0, 1); }
#else
inline void prefetch_row(const void*) {}
#endif

/// How many rows ahead of the current group to issue prefetches for. Rows
/// are dim elements (hundreds of bytes), so a small lookahead covers the
/// memory latency without thrashing L1.
constexpr std::size_t kPrefetchAhead = 8;

// Row accessors: one per codec. operator[] yields the float the scalar
// kernel would see — a plain load for f32, an in-register dequantization
// for f16/int8. The accumulator chains below are codec-agnostic; only the
// element producer changes, so each codec's batch result is bitwise-equal
// to decoding its row and running the f32 chain.

struct F32Row {
  const float* p;
  float operator[](std::size_t i) const { return p[i]; }
  const void* addr() const { return p; }
};

struct F16Row {
  const std::uint16_t* p;
  float operator[](std::size_t i) const { return half_to_float(p[i]); }
  const void* addr() const { return p; }
};

struct I8Row {
  const std::int8_t* p;
  float scale;  ///< per-row symmetric dequantization scale
  float operator[](std::size_t i) const {
    return scale * static_cast<float>(p[i]);
  }
  const void* addr() const { return p; }
};

// Each *_quad kernel scores four rows with four independent accumulator
// chains. Every chain walks dimensions 0..dim-1 in the scalar kernel's
// order, so each output is bitwise-equal to the one-row kernel; the chains
// only interleave *between* points, which the scalar kernels never observe.

template <typename Row>
void l2_quad(std::span<const float> q, Row r0, Row r1, Row r2, Row r3,
             float* out) {
  float a0 = 0.0f, a1 = 0.0f, a2 = 0.0f, a3 = 0.0f;
  for (std::size_t i = 0; i < q.size(); ++i) {
    const float qi = q[i];
    const float d0 = qi - r0[i];
    const float d1 = qi - r1[i];
    const float d2 = qi - r2[i];
    const float d3 = qi - r3[i];
    a0 += d0 * d0;
    a1 += d1 * d1;
    a2 += d2 * d2;
    a3 += d3 * d3;
  }
  out[0] = a0;
  out[1] = a1;
  out[2] = a2;
  out[3] = a3;
}

template <typename Row>
void dot_quad(std::span<const float> q, Row r0, Row r1, Row r2, Row r3,
              float* out) {
  float a0 = 0.0f, a1 = 0.0f, a2 = 0.0f, a3 = 0.0f;
  for (std::size_t i = 0; i < q.size(); ++i) {
    const float qi = q[i];
    a0 += qi * r0[i];
    a1 += qi * r1[i];
    a2 += qi * r2[i];
    a3 += qi * r3[i];
  }
  out[0] = a0;
  out[1] = a1;
  out[2] = a2;
  out[3] = a3;
}

// One-row kernels for the scalar tail: identical operations to l2_sq/dot
// (distance.cpp) with the row element routed through the codec accessor, so
// a tail result matches both the quad chains and the scalar f32 kernel on
// the decoded row.

template <typename Row>
float l2_one(std::span<const float> q, Row r) {
  float acc = 0.0f;
  for (std::size_t i = 0; i < q.size(); ++i) {
    const float d = q[i] - r[i];
    acc += d * d;
  }
  return acc;
}

template <typename Row>
float dot_one(std::span<const float> q, Row r) {
  float acc = 0.0f;
  for (std::size_t i = 0; i < q.size(); ++i) acc += q[i] * r[i];
  return acc;
}

/// norm() of the decoded row — same accumulation as norm(span) = sqrt(dot).
template <typename Row>
float norm_one(Row r, std::size_t dim) {
  float acc = 0.0f;
  for (std::size_t i = 0; i < dim; ++i) acc += r[i] * r[i];
  return std::sqrt(acc);
}

/// The scalar cosine kernel recomputes norm(a) and norm(b) inside every
/// call (cosine_similarity); batching hoists norm(a) — same function, same
/// bits — and reads norm(b) from the caller's table when present.
float cosine_from_parts(float na, float nb, float d) {
  if (na <= 0.0f || nb <= 0.0f) return 1.0f - 0.0f;
  return 1.0f - d / (na * nb);
}

/// Generic driver: fetches row accessors through `row_of(k)` and row norms
/// through `norm_of(k)` (cosine only), walking the batch in groups of four.
template <typename RowOf, typename NormOf>
void batch_impl(Metric m, std::span<const float> q, std::size_t count,
                RowOf row_of, NormOf norm_of, std::span<float> out) {
  assert(out.size() >= count);
  const float query_norm = m == Metric::kCosine ? norm(q) : 0.0f;
  std::size_t k = 0;
  float dots[4];
  for (; k + 4 <= count; k += 4) {
    for (std::size_t p = k + 4; p < k + 4 + kPrefetchAhead && p < count; ++p) {
      prefetch_row(row_of(p).addr());
    }
    const auto r0 = row_of(k);
    const auto r1 = row_of(k + 1);
    const auto r2 = row_of(k + 2);
    const auto r3 = row_of(k + 3);
    switch (m) {
      case Metric::kL2:
        l2_quad(q, r0, r1, r2, r3, &out[k]);
        break;
      case Metric::kInnerProduct:
        dot_quad(q, r0, r1, r2, r3, dots);
        out[k] = 1.0f - dots[0];
        out[k + 1] = 1.0f - dots[1];
        out[k + 2] = 1.0f - dots[2];
        out[k + 3] = 1.0f - dots[3];
        break;
      case Metric::kCosine:
        dot_quad(q, r0, r1, r2, r3, dots);
        for (std::size_t j = 0; j < 4; ++j) {
          out[k + j] = cosine_from_parts(query_norm, norm_of(k + j), dots[j]);
        }
        break;
    }
  }
  for (; k < count; ++k) {
    const auto r = row_of(k);
    switch (m) {
      case Metric::kL2:
        out[k] = l2_one(q, r);
        break;
      case Metric::kInnerProduct:
        out[k] = 1.0f - dot_one(q, r);
        break;
      case Metric::kCosine:
        out[k] = cosine_from_parts(query_norm, norm_of(k), dot_one(q, r));
        break;
    }
  }
}

/// Shared wiring for the id-list entry points: builds the row/norm lambdas
/// for a codec whose row accessor is `make_row(row_index)`.
template <typename MakeRow>
void batch_ids(Metric m, std::span<const float> query, std::size_t dim,
               std::span<const NodeId> ids, std::span<float> out,
               std::span<const float> base_norms, MakeRow make_row) {
  const auto row_of = [&](std::size_t k) {
    return make_row(static_cast<std::size_t>(ids[k]));
  };
  const auto norm_of = [&](std::size_t k) {
    return base_norms.empty() ? norm_one(row_of(k), dim)
                              : base_norms[ids[k]];
  };
  batch_impl(m, query.first(dim), ids.size(), row_of, norm_of, out);
}

template <typename MakeRow>
void batch_range(Metric m, std::span<const float> query, std::size_t dim,
                 std::size_t first, std::size_t count, std::span<float> out,
                 std::span<const float> base_norms, MakeRow make_row) {
  const auto row_of = [&](std::size_t k) { return make_row(first + k); };
  const auto norm_of = [&](std::size_t k) {
    return base_norms.empty() ? norm_one(row_of(k), dim)
                              : base_norms[first + k];
  };
  batch_impl(m, query.first(dim), count, row_of, norm_of, out);
}

}  // namespace

void distance_batch(Metric m, std::span<const float> query, const float* base,
                    std::size_t dim, std::span<const NodeId> ids,
                    std::span<float> out, std::span<const float> base_norms) {
  batch_ids(m, query, dim, ids, out, base_norms,
            [&](std::size_t row) { return F32Row{base + row * dim}; });
}

void distance_batch_range(Metric m, std::span<const float> query,
                          const float* base, std::size_t dim,
                          std::size_t first, std::size_t count,
                          std::span<float> out,
                          std::span<const float> base_norms) {
  batch_range(m, query, dim, first, count, out, base_norms,
              [&](std::size_t row) { return F32Row{base + row * dim}; });
}

void distance_batch_f16(Metric m, std::span<const float> query,
                        const std::uint16_t* base, std::size_t dim,
                        std::span<const NodeId> ids, std::span<float> out,
                        std::span<const float> base_norms) {
  batch_ids(m, query, dim, ids, out, base_norms,
            [&](std::size_t row) { return F16Row{base + row * dim}; });
}

void distance_batch_range_f16(Metric m, std::span<const float> query,
                              const std::uint16_t* base, std::size_t dim,
                              std::size_t first, std::size_t count,
                              std::span<float> out,
                              std::span<const float> base_norms) {
  batch_range(m, query, dim, first, count, out, base_norms,
              [&](std::size_t row) { return F16Row{base + row * dim}; });
}

void distance_batch_i8(Metric m, std::span<const float> query,
                       const std::int8_t* base, const float* row_scales,
                       std::size_t dim, std::span<const NodeId> ids,
                       std::span<float> out,
                       std::span<const float> base_norms) {
  batch_ids(m, query, dim, ids, out, base_norms, [&](std::size_t row) {
    return I8Row{base + row * dim, row_scales[row]};
  });
}

void distance_batch_range_i8(Metric m, std::span<const float> query,
                             const std::int8_t* base, const float* row_scales,
                             std::size_t dim, std::size_t first,
                             std::size_t count, std::span<float> out,
                             std::span<const float> base_norms) {
  batch_range(m, query, dim, first, count, out, base_norms, [&](std::size_t row) {
    return I8Row{base + row * dim, row_scales[row]};
  });
}

}  // namespace algas
