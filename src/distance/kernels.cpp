#include "distance/kernels.hpp"

#include <cassert>
#include <cmath>

namespace algas {

namespace {

#if defined(__GNUC__) || defined(__clang__)
inline void prefetch_row(const float* row) { __builtin_prefetch(row, 0, 1); }
#else
inline void prefetch_row(const float*) {}
#endif

/// How many rows ahead of the current group to issue prefetches for. Rows
/// are dim floats (hundreds of bytes), so a small lookahead covers the
/// memory latency without thrashing L1.
constexpr std::size_t kPrefetchAhead = 8;

// Each *_quad kernel scores four rows with four independent accumulator
// chains. Every chain walks dimensions 0..dim-1 in the scalar kernel's
// order, so each output is bitwise-equal to the one-row kernel; the chains
// only interleave *between* points, which the scalar kernels never observe.

void l2_quad(std::span<const float> q, const float* r0, const float* r1,
             const float* r2, const float* r3, float* out) {
  float a0 = 0.0f, a1 = 0.0f, a2 = 0.0f, a3 = 0.0f;
  for (std::size_t i = 0; i < q.size(); ++i) {
    const float qi = q[i];
    const float d0 = qi - r0[i];
    const float d1 = qi - r1[i];
    const float d2 = qi - r2[i];
    const float d3 = qi - r3[i];
    a0 += d0 * d0;
    a1 += d1 * d1;
    a2 += d2 * d2;
    a3 += d3 * d3;
  }
  out[0] = a0;
  out[1] = a1;
  out[2] = a2;
  out[3] = a3;
}

void dot_quad(std::span<const float> q, const float* r0, const float* r1,
              const float* r2, const float* r3, float* out) {
  float a0 = 0.0f, a1 = 0.0f, a2 = 0.0f, a3 = 0.0f;
  for (std::size_t i = 0; i < q.size(); ++i) {
    const float qi = q[i];
    a0 += qi * r0[i];
    a1 += qi * r1[i];
    a2 += qi * r2[i];
    a3 += qi * r3[i];
  }
  out[0] = a0;
  out[1] = a1;
  out[2] = a2;
  out[3] = a3;
}

/// The scalar cosine kernel recomputes norm(a) and norm(b) inside every
/// call (cosine_similarity); batching hoists norm(a) — same function, same
/// bits — and reads norm(b) from the caller's table when present.
float cosine_from_parts(float na, float nb, float d) {
  if (na <= 0.0f || nb <= 0.0f) return 1.0f - 0.0f;
  return 1.0f - d / (na * nb);
}

/// Generic driver: fetches row pointers through `row_of(k)` and row norms
/// through `norm_of(k)` (cosine only), walking the batch in groups of four.
template <typename RowOf, typename NormOf>
void batch_impl(Metric m, std::span<const float> q, std::size_t count,
                RowOf row_of, NormOf norm_of, std::span<float> out) {
  assert(out.size() >= count);
  const float query_norm = m == Metric::kCosine ? norm(q) : 0.0f;
  std::size_t k = 0;
  float dots[4];
  for (; k + 4 <= count; k += 4) {
    for (std::size_t p = k + 4; p < k + 4 + kPrefetchAhead && p < count; ++p) {
      prefetch_row(row_of(p));
    }
    const float* r0 = row_of(k);
    const float* r1 = row_of(k + 1);
    const float* r2 = row_of(k + 2);
    const float* r3 = row_of(k + 3);
    switch (m) {
      case Metric::kL2:
        l2_quad(q, r0, r1, r2, r3, &out[k]);
        break;
      case Metric::kInnerProduct:
        dot_quad(q, r0, r1, r2, r3, dots);
        out[k] = 1.0f - dots[0];
        out[k + 1] = 1.0f - dots[1];
        out[k + 2] = 1.0f - dots[2];
        out[k + 3] = 1.0f - dots[3];
        break;
      case Metric::kCosine:
        dot_quad(q, r0, r1, r2, r3, dots);
        for (std::size_t j = 0; j < 4; ++j) {
          out[k + j] = cosine_from_parts(query_norm, norm_of(k + j), dots[j]);
        }
        break;
    }
  }
  for (; k < count; ++k) {
    const float* r = row_of(k);
    const std::span<const float> row{r, q.size()};
    switch (m) {
      case Metric::kL2:
        out[k] = l2_sq(q, row);
        break;
      case Metric::kInnerProduct:
        out[k] = 1.0f - dot(q, row);
        break;
      case Metric::kCosine:
        out[k] = cosine_from_parts(query_norm, norm_of(k), dot(q, row));
        break;
    }
  }
}

}  // namespace

void distance_batch(Metric m, std::span<const float> query, const float* base,
                    std::size_t dim, std::span<const NodeId> ids,
                    std::span<float> out, std::span<const float> base_norms) {
  const auto row_of = [&](std::size_t k) {
    return base + static_cast<std::size_t>(ids[k]) * dim;
  };
  const auto norm_of = [&](std::size_t k) {
    return base_norms.empty() ? norm({row_of(k), dim})
                              : base_norms[ids[k]];
  };
  batch_impl(m, query.first(dim), ids.size(), row_of, norm_of, out);
}

void distance_batch_range(Metric m, std::span<const float> query,
                          const float* base, std::size_t dim,
                          std::size_t first, std::size_t count,
                          std::span<float> out,
                          std::span<const float> base_norms) {
  const auto row_of = [&](std::size_t k) { return base + (first + k) * dim; };
  const auto norm_of = [&](std::size_t k) {
    return base_norms.empty() ? norm({row_of(k), dim})
                              : base_norms[first + k];
  };
  batch_impl(m, query.first(dim), count, row_of, norm_of, out);
}

}  // namespace algas
