#include "distance/distance.hpp"

#include <cassert>
#include <cmath>

namespace algas {

std::string metric_name(Metric m) {
  switch (m) {
    case Metric::kL2: return "L2";
    case Metric::kInnerProduct: return "InnerProduct";
    case Metric::kCosine: return "Cosine";
  }
  return "unknown";
}

float l2_sq(std::span<const float> a, std::span<const float> b) {
  assert(a.size() == b.size());
  float acc = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const float d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

float dot(std::span<const float> a, std::span<const float> b) {
  assert(a.size() == b.size());
  float acc = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

float norm(std::span<const float> a) { return std::sqrt(dot(a, a)); }

void normalize(std::span<float> a) {
  const float n = norm(a);
  if (n <= 0.0f) return;
  const float inv = 1.0f / n;
  for (auto& v : a) v *= inv;
}

float cosine_similarity(std::span<const float> a, std::span<const float> b) {
  const float na = norm(a);
  const float nb = norm(b);
  if (na <= 0.0f || nb <= 0.0f) return 0.0f;
  return dot(a, b) / (na * nb);
}

float distance(Metric m, std::span<const float> a, std::span<const float> b) {
  switch (m) {
    case Metric::kL2: return l2_sq(a, b);
    case Metric::kInnerProduct: return 1.0f - dot(a, b);
    case Metric::kCosine: return 1.0f - cosine_similarity(a, b);
  }
  return kInfDist;
}

namespace {

/// Widest lane count distance_lanes supports — one GPU warp. Keeping the
/// scratch on the stack avoids three heap allocations per call.
constexpr std::size_t kMaxLanes = 32;

/// Pairwise tree reduction of lane partials — the order a warp shuffle
/// reduction (offset 16, 8, 4, 2, 1) produces.
float shuffle_reduce(float* lanes, std::size_t n) {
  for (std::size_t offset = n / 2; offset > 0; offset /= 2) {
    for (std::size_t i = 0; i < offset; ++i) lanes[i] += lanes[i + offset];
  }
  return lanes[0];
}

}  // namespace

float distance_lanes(Metric m, std::span<const float> a,
                     std::span<const float> b, std::size_t lanes) {
  assert(a.size() == b.size());
  assert(is_pow2(lanes));
  assert(lanes <= kMaxLanes);
  float acc[kMaxLanes] = {};
  float acc2[kMaxLanes] = {};  // for cosine norms
  float acc3[kMaxLanes] = {};

  for (std::size_t lane = 0; lane < lanes; ++lane) {
    for (std::size_t i = lane; i < a.size(); i += lanes) {
      switch (m) {
        case Metric::kL2: {
          const float d = a[i] - b[i];
          acc[lane] += d * d;
          break;
        }
        case Metric::kInnerProduct:
          acc[lane] += a[i] * b[i];
          break;
        case Metric::kCosine:
          acc[lane] += a[i] * b[i];
          acc2[lane] += a[i] * a[i];
          acc3[lane] += b[i] * b[i];
          break;
      }
    }
  }

  switch (m) {
    case Metric::kL2:
      return shuffle_reduce(acc, lanes);
    case Metric::kInnerProduct:
      return 1.0f - shuffle_reduce(acc, lanes);
    case Metric::kCosine: {
      const float d = shuffle_reduce(acc, lanes);
      const float na = std::sqrt(shuffle_reduce(acc2, lanes));
      const float nb = std::sqrt(shuffle_reduce(acc3, lanes));
      if (na <= 0.0f || nb <= 0.0f) return 1.0f;
      return 1.0f - d / (na * nb);
    }
  }
  return kInfDist;
}

}  // namespace algas
