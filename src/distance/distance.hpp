// Distance kernels. All metrics map to "smaller is closer" so search code
// never branches on metric direction.
//
// distance_lanes() mirrors the GPU's intra-CTA scheme (Algorithm 1 lines
// 10-13): each of `lanes` warp lanes accumulates a strided slice of the
// dimensions and the partials are shuffle-reduced. It is algebraically
// identical to the scalar kernels up to float reassociation; tests pin the
// tolerance.
#pragma once

#include <cstddef>
#include <span>
#include <string>

#include "common/types.hpp"

namespace algas {

enum class Metric : std::uint8_t {
  kL2 = 0,          ///< squared Euclidean distance
  kInnerProduct,    ///< 1 - <a,b> (vectors need not be normalized)
  kCosine,          ///< 1 - cos(a,b)
};

std::string metric_name(Metric m);

float l2_sq(std::span<const float> a, std::span<const float> b);
float dot(std::span<const float> a, std::span<const float> b);
float cosine_similarity(std::span<const float> a, std::span<const float> b);

/// Metric dispatch; smaller result = closer pair.
float distance(Metric m, std::span<const float> a, std::span<const float> b);

/// Lane-partitioned evaluation: lane i accumulates dimensions i, i+lanes,
/// i+2*lanes, ... then partials reduce pairwise (shuffle-style). Functional
/// mirror of the warp kernel; used by tests to validate the parallel
/// decomposition.
float distance_lanes(Metric m, std::span<const float> a,
                     std::span<const float> b, std::size_t lanes);

/// L2 norm of `a`.
float norm(std::span<const float> a);

/// Normalize in place; zero vectors are left untouched.
void normalize(std::span<float> a);

}  // namespace algas
