#include "graph/gpu_construction.hpp"

#include <algorithm>
#include <queue>
#include <utility>
#include <vector>

#include "graph/neighbor_selection.hpp"
#include "simgpu/shared_memory.hpp"

namespace algas {

namespace {

/// List-scheduling makespan of `durations` on `capacity` concurrent CTAs.
double wave_makespan(const std::vector<double>& durations,
                     std::size_t capacity) {
  std::priority_queue<double, std::vector<double>, std::greater<double>>
      servers;
  for (std::size_t i = 0; i < capacity; ++i) servers.push(0.0);
  double end = 0.0;
  for (double d : durations) {
    const double free_at = servers.top();
    servers.pop();
    servers.push(free_at + d);
    end = std::max(end, free_at + d);
  }
  return end;
}

/// Full-speed CTA capacity for a construction kernel holding an
/// ef_construction-sized candidate list per block.
std::size_t construction_capacity(const GpuBuildConfig& cfg,
                                  std::size_t dim) {
  sim::SharedMemoryLayout layout;
  layout.candidate_entries = next_pow2(cfg.base.ef_construction);
  layout.expand_entries = next_pow2(cfg.base.degree);
  layout.dim = dim;
  std::size_t best = 0;
  for (std::size_t bpsm = 1; bpsm <= cfg.device.max_blocks_per_sm; ++bpsm) {
    if (sim::check_occupancy(cfg.device, layout, bpsm, 1024).fits) {
      best = bpsm;
    }
  }
  return std::max<std::size_t>(
      1, std::min(best * cfg.device.num_sms, cfg.device.full_speed_ctas()));
}

/// Modeled cost of one insertion whose search scored `scored` points:
/// distance work plus the candidate-list maintenance that accompanies it.
double insert_cost_ns(const GpuBuildConfig& cfg, std::size_t dim,
                      std::size_t scored) {
  const sim::CostModel& cm = cfg.cost;
  const std::size_t rounds =
      std::max<std::size_t>(1, scored / std::max<std::size_t>(1,
                                                              cfg.base.degree));
  const std::size_t ef_pow2 = next_pow2(cfg.base.ef_construction);
  return cm.distance_round_ns(dim, scored) +
         static_cast<double>(rounds) *
             (cm.bitonic_sort_ns(next_pow2(cfg.base.degree)) +
              cm.bitonic_merge_ns(2 * ef_pow2)) +
         // Link application: the select-neighbors heuristic evaluates
         // roughly degree^2 / 2 pairwise distances per inserted node.
         cm.distance_round_ns(dim, cfg.base.degree * cfg.base.degree / 2);
}

}  // namespace

GpuBuildResult gpu_build_nsw(const Dataset& ds, const GpuBuildConfig& cfg) {
  const std::size_t n = ds.num_base();
  GpuBuildResult out;
  out.graph = Graph(n, cfg.base.degree);
  Graph& g = out.graph;
  if (n == 0) return out;
  if (n == 1) {
    g.set_entry_point(0);
    return out;
  }

  const std::size_t capacity = construction_capacity(cfg, ds.dim());
  const std::size_t batch = std::max<std::size_t>(1, cfg.insert_batch);
  const std::size_t m = std::min(cfg.base.degree, n - 1);

  std::vector<double> durations;
  std::vector<std::vector<std::pair<float, NodeId>>> found;
  for (std::size_t begin = 0; begin < n; begin += batch) {
    const std::size_t end = std::min(begin + batch, n);
    durations.clear();
    found.assign(end - begin, {});

    if (begin == 0) {
      // Bootstrap batch: no prefix graph exists; points score each other
      // exhaustively (the GPU does this as a brute-force tile kernel —
      // here one batched range scan per inserted point).
      std::vector<float> tile;
      for (std::size_t v = 1; v < end; ++v) {
        auto& list = found[v];
        tile.resize(v);
        ds.distance_batch_range(ds.base_vector(v), 0, v, tile);
        for (std::size_t u = 0; u < v; ++u) {
          list.emplace_back(tile[u], static_cast<NodeId>(u));
        }
        std::sort(list.begin(), list.end());
        if (list.size() > cfg.base.ef_construction) {
          list.resize(cfg.base.ef_construction);
        }
        durations.push_back(insert_cost_ns(cfg, ds.dim(), v));
      }
    } else {
      // One CTA per insertion searches the already-built prefix.
      for (std::size_t v = begin; v < end; ++v) {
        std::size_t scored = 0;
        found[v - begin] = build_beam_search(
            ds, g, ds.base_vector(v),
            std::max(cfg.base.ef_construction, m), 0, begin, &scored);
        out.scored_points += scored;
        durations.push_back(insert_cost_ns(cfg, ds.dim(), scored));
      }
    }

    // Apply the batch's links (order within the batch is the id order, so
    // results stay deterministic). One batched round scores the selected
    // row before backlinking.
    std::vector<NodeId> row_ids;
    std::vector<float> row_dists;
    for (std::size_t v = begin; v < end; ++v) {
      auto& candidates = found[v - begin];
      if (candidates.empty()) continue;
      select_neighbors(ds, g, static_cast<NodeId>(v), candidates);
      row_ids.clear();
      for (NodeId u : g.neighbors(static_cast<NodeId>(v))) {
        if (u != kInvalidNode) row_ids.push_back(u);
      }
      row_dists.resize(row_ids.size());
      ds.distance_batch(ds.base_vector(v), row_ids, row_dists);
      for (std::size_t i = 0; i < row_ids.size(); ++i) {
        link(ds, g, row_ids[i], static_cast<NodeId>(v), row_dists[i]);
      }
    }

    out.virtual_build_ns +=
        cfg.cost.kernel_launch_ns + wave_makespan(durations, capacity);
    for (double d : durations) out.serial_build_ns += d;
    ++out.batches;
  }
  out.serial_build_ns +=
      cfg.cost.kernel_launch_ns * static_cast<double>(out.batches);

  g.set_entry_point(approximate_medoid(ds));
  return out;
}

}  // namespace algas
