#include "graph/gpu_construction.hpp"

#include <algorithm>
#include <queue>
#include <vector>

#include "graph/nsw_builder.hpp"
#include "simgpu/shared_memory.hpp"

namespace algas {

double construction_wave_makespan(const std::vector<double>& durations,
                                  std::size_t capacity) {
  std::priority_queue<double, std::vector<double>, std::greater<double>>
      servers;
  for (std::size_t i = 0; i < capacity; ++i) servers.push(0.0);
  double end = 0.0;
  for (double d : durations) {
    const double free_at = servers.top();
    servers.pop();
    servers.push(free_at + d);
    end = std::max(end, free_at + d);
  }
  return end;
}

std::size_t construction_capacity(const BuildConfig& cfg, std::size_t dim) {
  sim::SharedMemoryLayout layout;
  layout.candidate_entries = next_pow2(cfg.ef_construction);
  layout.expand_entries = next_pow2(cfg.degree);
  layout.dim = dim;
  std::size_t best = 0;
  for (std::size_t bpsm = 1; bpsm <= cfg.device.max_blocks_per_sm; ++bpsm) {
    if (sim::check_occupancy(cfg.device, layout, bpsm, 1024).fits) {
      best = bpsm;
    }
  }
  return std::max<std::size_t>(
      1, std::min(best * cfg.device.num_sms, cfg.device.full_speed_ctas()));
}

double construction_insert_cost_ns(const BuildConfig& cfg, std::size_t dim,
                                   std::size_t scored) {
  const sim::CostModel& cm = cfg.cost;
  const std::size_t rounds =
      std::max<std::size_t>(1,
                            scored / std::max<std::size_t>(1, cfg.degree));
  const std::size_t ef_pow2 = next_pow2(cfg.ef_construction);
  return cm.distance_round_ns(dim, scored) +
         static_cast<double>(rounds) *
             (cm.bitonic_sort_ns(next_pow2(cfg.degree)) +
              cm.bitonic_merge_ns(2 * ef_pow2)) +
         // Link application: the select-neighbors heuristic evaluates
         // roughly degree^2 / 2 pairwise distances per inserted node.
         cm.distance_round_ns(dim, cfg.degree * cfg.degree / 2);
}

}  // namespace algas
