#include "graph/neighbor_selection.hpp"

#include <algorithm>

namespace algas {

/// Rebuild v's neighbor row from `candidates` (ascending by distance to v)
/// with the HNSW select-neighbors heuristic: keep a candidate only when it
/// is closer to v than to every already-kept neighbor. This preserves a mix
/// of short and long (navigable) edges, which plain closest-first eviction
/// destroys. Pruned candidates backfill remaining slots.
void select_neighbors(const Dataset& ds, Graph& g, NodeId v,
                      std::vector<std::pair<float, NodeId>>& candidates) {
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end(),
                               [](const auto& a, const auto& b) {
                                 return a.second == b.second;
                               }),
                   candidates.end());

  auto row = g.mutable_neighbors(v);
  std::fill(row.begin(), row.end(), kInvalidNode);
  std::size_t kept = 0;
  std::vector<std::size_t> pruned;
  std::vector<float> kept_dists(row.size());
  for (std::size_t i = 0; i < candidates.size() && kept < row.size(); ++i) {
    const auto [d_vu, u] = candidates[i];
    // One batched round scores u against every kept neighbor. This drops
    // the scalar loop's early exit, but the kept prefix is <= degree and
    // the ILP/prefetch win dominates the extra tail evaluations.
    ds.distance_batch(ds.base_vector(u),
                      std::span<const NodeId>{row.data(), kept}, kept_dists);
    bool diverse = true;
    for (std::size_t j = 0; j < kept; ++j) {
      if (kept_dists[j] < d_vu) {
        diverse = false;
        break;
      }
    }
    if (diverse) {
      row[kept++] = u;
    } else {
      pruned.push_back(i);
    }
  }
  for (std::size_t i : pruned) {
    if (kept >= row.size()) break;
    row[kept++] = candidates[i].second;
  }
}

/// Add edge v->u; on overflow re-select v's row with the heuristic.
void link(const Dataset& ds, Graph& g, NodeId v, NodeId u, float d_vu) {
  auto row = g.mutable_neighbors(v);
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (row[i] == u) return;
    if (row[i] == kInvalidNode) {
      row[i] = u;
      return;
    }
  }
  std::vector<std::pair<float, NodeId>> candidates;
  candidates.reserve(row.size() + 1);
  candidates.emplace_back(d_vu, u);
  std::vector<float> row_dists(row.size());
  ds.distance_batch(ds.base_vector(v),
                    std::span<const NodeId>{row.data(), row.size()},
                    row_dists);
  for (std::size_t i = 0; i < row.size(); ++i) {
    candidates.emplace_back(row_dists[i], row[i]);
  }
  select_neighbors(ds, g, v, candidates);
}

}  // namespace algas
