#include "graph/graph.hpp"

#include <cstring>
#include <deque>
#include <fstream>
#include <limits>
#include <stdexcept>

#include "common/bitset.hpp"

namespace algas {

std::size_t Graph::valid_degree(NodeId v) const {
  std::size_t count = 0;
  for (NodeId n : neighbors(v)) {
    if (n != kInvalidNode) ++count;
  }
  return count;
}

Graph::Stats Graph::stats() const {
  Stats s;
  if (num_nodes_ == 0) return s;
  s.min_degree = degree_;
  double total = 0.0;
  for (NodeId v = 0; v < num_nodes_; ++v) {
    const std::size_t d = valid_degree(v);
    total += static_cast<double>(d);
    s.min_degree = std::min(s.min_degree, d);
    s.max_degree = std::max(s.max_degree, d);
  }
  s.avg_degree = total / static_cast<double>(num_nodes_);

  Bitset seen(num_nodes_);
  std::deque<NodeId> frontier{entry_point_};
  seen.set(entry_point_);
  std::size_t reached = 1;
  while (!frontier.empty()) {
    const NodeId v = frontier.front();
    frontier.pop_front();
    for (NodeId n : neighbors(v)) {
      if (n == kInvalidNode || seen.test(n)) continue;
      seen.set(n);
      ++reached;
      frontier.push_back(n);
    }
  }
  s.reachable_fraction =
      static_cast<double>(reached) / static_cast<double>(num_nodes_);
  return s;
}

namespace {
constexpr char kMagic[8] = {'A', 'L', 'G', 'A', 'S', 'G', 'R', '1'};
}

void Graph::save(std::ostream& out, const std::string& context) const {
  out.write(kMagic, sizeof(kMagic));
  const std::uint64_t n = num_nodes_, d = degree_;
  const std::uint32_t ep = entry_point_;
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  out.write(reinterpret_cast<const char*>(&d), sizeof(d));
  out.write(reinterpret_cast<const char*>(&ep), sizeof(ep));
  out.write(reinterpret_cast<const char*>(adj_.data()),
            static_cast<std::streamsize>(adj_.size() * sizeof(NodeId)));
  if (!out) throw std::runtime_error("short write to " + context);
}

void Graph::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open " + path + " for write");
  save(out, path);
}

Graph Graph::load(std::istream& in, const std::string& context) {
  char magic[8];
  if (!in.read(magic, sizeof(magic)) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("not an ALGAS graph file: " + context);
  }
  std::uint64_t n = 0, d = 0;
  std::uint32_t ep = 0;
  if (!in.read(reinterpret_cast<char*>(&n), sizeof(n)) ||
      !in.read(reinterpret_cast<char*>(&d), sizeof(d)) ||
      !in.read(reinterpret_cast<char*>(&ep), sizeof(ep))) {
    throw std::runtime_error("truncated graph header in " + context);
  }
  // Node ids are u32, so a header claiming more nodes than NodeId can index
  // (or an n*d payload that overflows size_t) is corrupt, not merely big.
  if (n > std::numeric_limits<NodeId>::max()) {
    throw std::runtime_error("corrupt graph header in " + context +
                             ": node count overflows NodeId");
  }
  if (d != 0 && n > std::numeric_limits<std::size_t>::max() /
                        (d * sizeof(NodeId))) {
    throw std::runtime_error("corrupt graph header in " + context +
                             ": adjacency size overflows");
  }
  if (n > 0 && ep >= n) {
    throw std::runtime_error("corrupt graph header in " + context +
                             ": entry point " + std::to_string(ep) +
                             " out of range for " + std::to_string(n) +
                             " nodes");
  }
  Graph g(static_cast<std::size_t>(n), static_cast<std::size_t>(d));
  if (n > 0) g.set_entry_point(ep);
  if (!g.adj_.empty() &&
      !in.read(reinterpret_cast<char*>(g.adj_.data()),
               static_cast<std::streamsize>(g.adj_.size() * sizeof(NodeId)))) {
    throw std::runtime_error("truncated graph payload in " + context);
  }
  for (const NodeId id : g.adj_) {
    if (id != kInvalidNode && static_cast<std::uint64_t>(id) >= n) {
      throw std::runtime_error("corrupt graph payload in " + context +
                               ": neighbor id " + std::to_string(id) +
                               " out of range for " + std::to_string(n) +
                               " nodes");
    }
  }
  return g;
}

Graph Graph::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  Graph g = load(in, path);
  if (in.peek() != std::ifstream::traits_type::eof()) {
    throw std::runtime_error("trailing bytes after graph payload in " + path);
  }
  return g;
}

}  // namespace algas
