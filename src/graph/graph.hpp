// Fixed out-degree proximity graph.
//
// Both graph types the paper evaluates (NSW-GANNS and CAGRA) are stored in
// this GPU-friendly layout: a dense `n x degree` adjacency matrix so a CTA
// fetches a node's whole neighbor row with one coalesced read. Rows with
// fewer real neighbors pad with kInvalidNode.
//
// The graph is growable: streaming insertion (core::MutableIndex) appends
// all-padding rows with grow() and fills them during the serial link phase.
// Node ids are stable across growth; only compaction remaps them.
#pragma once

#include <cassert>
#include <cstddef>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace algas {

class Graph {
 public:
  Graph() = default;
  Graph(std::size_t num_nodes, std::size_t degree)
      : num_nodes_(num_nodes),
        degree_(degree),
        adj_(num_nodes * degree, kInvalidNode) {}

  std::size_t num_nodes() const { return num_nodes_; }
  std::size_t degree() const { return degree_; }

  std::span<const NodeId> neighbors(NodeId v) const {
    assert(static_cast<std::size_t>(v) < num_nodes_ && "node id out of range");
    return {adj_.data() + static_cast<std::size_t>(v) * degree_, degree_};
  }
  std::span<NodeId> mutable_neighbors(NodeId v) {
    assert(static_cast<std::size_t>(v) < num_nodes_ && "node id out of range");
    return {adj_.data() + static_cast<std::size_t>(v) * degree_, degree_};
  }

  /// Append `count` nodes whose rows are all padding. Existing rows are
  /// preserved byte-for-byte and ids are stable, so a grown graph's prefix
  /// serves queries unchanged while the new rows await linking.
  void grow(std::size_t count) {
    num_nodes_ += count;
    adj_.resize(num_nodes_ * degree_, kInvalidNode);
  }

  /// Count of non-padding neighbors of v.
  std::size_t valid_degree(NodeId v) const;

  /// Default entry point for searches: the medoid-ish fixed node 0 works
  /// poorly; builders set this to a computed center. Returns kInvalidNode
  /// when no valid entry exists (empty graph) — searches must check before
  /// seeding a traversal.
  NodeId entry_point() const {
    return static_cast<std::size_t>(entry_point_) < num_nodes_ ? entry_point_
                                                               : kInvalidNode;
  }
  void set_entry_point(NodeId p) {
    assert(static_cast<std::size_t>(p) < num_nodes_ && "entry out of range");
    entry_point_ = p;
  }

  struct Stats {
    double avg_degree = 0.0;
    std::size_t min_degree = 0;
    std::size_t max_degree = 0;
    /// Fraction of nodes reachable from the entry point via BFS.
    double reachable_fraction = 0.0;
  };
  Stats stats() const;

  void save(const std::string& path) const;
  /// Stream variant so snapshot formats (core::MutableIndex) can embed a
  /// graph section; `context` names the destination in error messages.
  void save(std::ostream& out, const std::string& context) const;

  /// Loading validates the file end to end — bad magic, truncated header or
  /// payload, trailing bytes, an out-of-range entry point, or adjacency
  /// entries that are neither padding nor valid node ids all throw
  /// std::runtime_error with a message naming the file and the defect.
  static Graph load(const std::string& path);
  static Graph load(std::istream& in, const std::string& context);

  const std::vector<NodeId>& adjacency() const { return adj_; }

 private:
  std::size_t num_nodes_ = 0;
  std::size_t degree_ = 0;
  NodeId entry_point_ = 0;
  std::vector<NodeId> adj_;
};

}  // namespace algas
