// Fixed out-degree proximity graph.
//
// Both graph types the paper evaluates (NSW-GANNS and CAGRA) are stored in
// this GPU-friendly layout: a dense `n x degree` adjacency matrix so a CTA
// fetches a node's whole neighbor row with one coalesced read. Rows with
// fewer real neighbors pad with kInvalidNode.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace algas {

class Graph {
 public:
  Graph() = default;
  Graph(std::size_t num_nodes, std::size_t degree)
      : num_nodes_(num_nodes),
        degree_(degree),
        adj_(num_nodes * degree, kInvalidNode) {}

  std::size_t num_nodes() const { return num_nodes_; }
  std::size_t degree() const { return degree_; }

  std::span<const NodeId> neighbors(NodeId v) const {
    return {adj_.data() + static_cast<std::size_t>(v) * degree_, degree_};
  }
  std::span<NodeId> mutable_neighbors(NodeId v) {
    return {adj_.data() + static_cast<std::size_t>(v) * degree_, degree_};
  }

  /// Count of non-padding neighbors of v.
  std::size_t valid_degree(NodeId v) const;

  /// Default entry point for searches: the medoid-ish fixed node 0 works
  /// poorly; builders set this to a computed center.
  NodeId entry_point() const { return entry_point_; }
  void set_entry_point(NodeId p) { entry_point_ = p; }

  struct Stats {
    double avg_degree = 0.0;
    std::size_t min_degree = 0;
    std::size_t max_degree = 0;
    /// Fraction of nodes reachable from the entry point via BFS.
    double reachable_fraction = 0.0;
  };
  Stats stats() const;

  void save(const std::string& path) const;
  static Graph load(const std::string& path);

  const std::vector<NodeId>& adjacency() const { return adj_; }

 private:
  std::size_t num_nodes_ = 0;
  std::size_t degree_ = 0;
  NodeId entry_point_ = 0;
  std::vector<NodeId> adj_;
};

}  // namespace algas
