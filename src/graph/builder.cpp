#include "graph/builder.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <mutex>
#include <queue>
#include <sstream>
#include <stdexcept>

#include "common/bitset.hpp"
#include "common/env.hpp"
#include "common/thread_pool.hpp"
#include "dataset/io.hpp"
#include "graph/cagra_builder.hpp"
#include "graph/nsw_builder.hpp"

namespace algas {

namespace {
/// Rows per distance_batch_range call in full-base scans: large enough to
/// amortize dispatch, small enough that the output block stays in L1.
constexpr std::size_t kScanChunk = 256;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  const auto dt = std::chrono::steady_clock::now() - t0;
  return std::chrono::duration<double>(dt).count();
}
}  // namespace

std::string graph_kind_name(GraphKind k) {
  switch (k) {
    case GraphKind::kNsw: return "NSW";
    case GraphKind::kCagra: return "CAGRA";
  }
  return "unknown";
}

BuildReport build_graph(GraphKind kind, const Dataset& ds,
                        const BuildConfig& cfg) {
  const auto t0 = std::chrono::steady_clock::now();
  BuildReport report;
  switch (kind) {
    case GraphKind::kNsw: report = build_nsw(ds, cfg); break;
    case GraphKind::kCagra: report = build_cagra(ds, cfg); break;
    default: throw std::invalid_argument("unknown graph kind");
  }
  report.wall_build_s = seconds_since(t0);
  return report;
}

BuildReport load_or_build_graph(GraphKind kind, const Dataset& ds,
                                const BuildConfig& cfg) {
  const std::string dir = cache_dir();
  std::string path;
  if (!dir.empty()) {
    std::ostringstream out;
    out << dir << "/graph_v3_" << graph_kind_name(kind) << "_" << ds.name()
        << "_n" << ds.num_base() << "_d" << cfg.degree << "_ef"
        << cfg.ef_construction;
    // Quantized builds score different floats and link different edges, so
    // they must not collide with the f32 cache. f32 keeps the historical
    // key (existing caches stay valid).
    if (ds.storage() != StorageCodec::kF32) {
      out << "_s" << storage_codec_name(ds.storage());
    }
    // The batch structure shapes the graph (each batch searches the frozen
    // prefix), so non-default batches get their own entries. The thread
    // count never appears: builds are byte-identical across thread counts.
    if (cfg.insert_batch != BuildConfig{}.insert_batch) {
      out << "_b" << cfg.insert_batch;
    }
    out << ".agr";
    path = out.str();
    if (file_exists(path)) {
      const auto t0 = std::chrono::steady_clock::now();
      BuildReport report;
      report.graph = Graph::load(path);
      report.cache_hit = true;
      report.wall_build_s = seconds_since(t0);
      return report;
    }
  }
  BuildReport report = build_graph(kind, ds, cfg);
  if (!path.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (!ec) report.graph.save(path);
  }
  return report;
}

std::vector<std::pair<float, NodeId>> build_beam_search(
    const Dataset& ds, const Graph& g, std::span<const float> query,
    std::size_t ef, NodeId entry, std::size_t limit,
    std::size_t* scored_out) {
  using Entry = std::pair<float, NodeId>;
  // Degenerate frozen prefixes (nothing published yet, or an entry outside
  // the searchable range) have no reachable candidates.
  if (limit == 0 || entry == kInvalidNode ||
      static_cast<std::size_t>(entry) >= limit) {
    if (scored_out != nullptr) *scored_out = 0;
    return {};
  }
  // Min-heap of frontier candidates, max-heap of current best ef results.
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> frontier;
  std::priority_queue<Entry> best;
  Bitset visited(limit);
  std::size_t scored = 1;
  std::vector<NodeId> fresh;        // this expansion's unvisited neighbors
  std::vector<float> fresh_dists;   // their batched distances
  fresh.reserve(g.degree());
  fresh_dists.reserve(g.degree());

  const float d0 = ds.score(query, entry);
  frontier.emplace(d0, entry);
  best.emplace(d0, entry);
  visited.set(entry);

  while (!frontier.empty()) {
    const auto [dist_v, v] = frontier.top();
    frontier.pop();
    if (best.size() >= ef && dist_v > best.top().first) break;
    fresh.clear();
    for (NodeId n : g.neighbors(v)) {
      if (n == kInvalidNode || n >= limit || visited.test(n)) continue;
      visited.set(n);
      fresh.push_back(n);
    }
    fresh_dists.resize(fresh.size());
    ds.distance_batch(query, fresh, fresh_dists);
    for (std::size_t i = 0; i < fresh.size(); ++i) {
      const NodeId n = fresh[i];
      const float d = fresh_dists[i];
      ++scored;
      if (best.size() < ef || d < best.top().first) {
        frontier.emplace(d, n);
        best.emplace(d, n);
        if (best.size() > ef) best.pop();
      }
    }
  }
  if (scored_out != nullptr) *scored_out = scored;

  std::vector<Entry> out(best.size());
  for (std::size_t i = best.size(); i-- > 0;) {
    out[i] = best.top();
    best.pop();
  }
  return out;
}

NodeId approximate_medoid(const Dataset& ds) {
  BuildExecutor serial(1);
  return approximate_medoid(ds, serial);
}

NodeId approximate_medoid(const Dataset& ds, BuildExecutor& exec) {
  return approximate_medoid(ds, exec, ds.num_base());
}

NodeId approximate_medoid(const Dataset& ds, BuildExecutor& exec,
                          std::size_t limit) {
  const std::size_t n = std::min(limit, ds.num_base());
  const std::size_t dim = ds.dim();
  if (n == 0) return 0;
  // The centroid accumulates serially: float addition is order-sensitive,
  // and the centroid must not depend on the thread count.
  std::vector<float> centroid(dim, 0.0f);
  for (std::size_t i = 0; i < n; ++i) {
    const auto v = ds.base_vector(i);
    for (std::size_t d = 0; d < dim; ++d) centroid[d] += v[d];
  }
  for (auto& c : centroid) c /= static_cast<float>(n);

  // The scan parallelizes: per-row distances are chunk-invariant, and the
  // (distance, id) merge below ties to the lowest id, so the winner never
  // depends on how parallel_for split the range.
  NodeId best = 0;
  float best_d = kInfDist;
  std::mutex merge_mu;
  if (ds.metric() == Metric::kCosine) ds.base_norms();  // warm before forking
  if (ds.storage() != StorageCodec::kF32) ds.vector_store();
  exec.parallel_for(n, [&](std::size_t begin, std::size_t end) {
    NodeId local_best = 0;
    float local_d = kInfDist;
    std::vector<float> dists(std::min(end - begin, kScanChunk));
    for (std::size_t first = begin; first < end; first += kScanChunk) {
      const std::size_t len = std::min(kScanChunk, end - first);
      ds.distance_batch_range(centroid, first, len, dists);
      for (std::size_t i = 0; i < len; ++i) {
        const auto id = static_cast<NodeId>(first + i);
        if (dists[i] < local_d || (dists[i] == local_d && id < local_best)) {
          local_d = dists[i];
          local_best = id;
        }
      }
    }
    std::lock_guard<std::mutex> lock(merge_mu);
    if (local_d < best_d || (local_d == best_d && local_best < best)) {
      best_d = local_d;
      best = local_best;
    }
  });
  return best;
}

}  // namespace algas
