// GANNS-style batched graph construction on the simulated GPU
// [Yu et al., ICDE'22].
//
// The paper's indexes are "NSW-GANNS" graphs: GANNS's contribution is
// constructing them on the GPU by inserting points in large batches — every
// point of a batch searches the already-built prefix concurrently (one CTA
// per insertion), then the batch's links are applied. This module provides
// that substrate: the functional output is an NSW graph (quality matching
// the sequential builder within a small margin, verified by tests), and the
// build *time* is a virtual-time measurement of the batched schedule on the
// device — reproducing GANNS's construction-speedup claim in-model.
#pragma once

#include "graph/builder.hpp"
#include "simgpu/cost_model.hpp"
#include "simgpu/device_props.hpp"

namespace algas {

struct GpuBuildConfig {
  BuildConfig base;
  /// Insertions dispatched per construction kernel.
  std::size_t insert_batch = 1024;
  sim::DeviceProps device = sim::DeviceProps::rtx_a6000();
  sim::CostModel cost;
};

struct GpuBuildResult {
  Graph graph;
  double virtual_build_ns = 0.0;   ///< wave-scheduled batched construction
  double serial_build_ns = 0.0;    ///< same work on one CTA (the baseline)
  std::size_t batches = 0;
  std::size_t scored_points = 0;   ///< distance evaluations, total

  double speedup() const {
    return virtual_build_ns > 0.0 ? serial_build_ns / virtual_build_ns : 0.0;
  }
};

/// Build an NSW graph with batched GPU insertion.
GpuBuildResult gpu_build_nsw(const Dataset& ds, const GpuBuildConfig& cfg);

}  // namespace algas
