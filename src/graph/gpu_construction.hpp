// Virtual-time model of GANNS-style batched graph construction on the
// simulated GPU [Yu et al., ICDE'22].
//
// The paper's indexes are "NSW-GANNS" graphs: GANNS's contribution is
// constructing them on the GPU by inserting points in large batches — every
// point of a batch searches the already-built prefix concurrently (one CTA
// per insertion), then the batch's links are applied. The batched builder
// itself lives in nsw_builder.cpp (it is the one NSW builder, host-
// parallelized the same way); this module provides its cost model: the
// functional output is the NSW graph, and the build *time* is a
// virtual-time measurement of the batched schedule on the device —
// reproducing GANNS's construction-speedup claim in-model.
#pragma once

#include "graph/builder.hpp"

namespace algas {

/// List-scheduling makespan of `durations` on `capacity` concurrent CTAs.
double construction_wave_makespan(const std::vector<double>& durations,
                                  std::size_t capacity);

/// Full-speed CTA capacity for a construction kernel holding an
/// ef_construction-sized candidate list per block.
std::size_t construction_capacity(const BuildConfig& cfg, std::size_t dim);

/// Modeled cost of one insertion whose search scored `scored` points:
/// distance work plus the candidate-list maintenance that accompanies it.
double construction_insert_cost_ns(const BuildConfig& cfg, std::size_t dim,
                                   std::size_t scored);

}  // namespace algas
