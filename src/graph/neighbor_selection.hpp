// Neighbor-selection heuristics shared by the graph builders.
//
// Both functions mutate shared adjacency rows (link() rewrites the
// *target's* row on backlink overflow), so the builders call them only
// from the serial link phase, in insertion-id order — never from inside a
// BuildExecutor::parallel_for. That ordering is what makes the built
// graph independent of the construction thread count.
#pragma once

#include <utility>
#include <vector>

#include "dataset/dataset.hpp"
#include "graph/graph.hpp"

namespace algas {

/// Rebuild v's neighbor row from `candidates` (will be sorted ascending by
/// distance to v, deduped) with the HNSW select-neighbors heuristic: keep a
/// candidate only when it is closer to v than to every already-kept
/// neighbor — preserving a mix of short and long (navigable) edges. Pruned
/// candidates backfill remaining slots.
void select_neighbors(const Dataset& ds, Graph& g, NodeId v,
                      std::vector<std::pair<float, NodeId>>& candidates);

/// Add edge v->u (distance d_vu); on a full row, re-select v's neighbors
/// with the heuristic over {current row + u}.
void link(const Dataset& ds, Graph& g, NodeId v, NodeId u, float d_vu);

}  // namespace algas
