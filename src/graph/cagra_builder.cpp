#include "graph/cagra_builder.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <utility>
#include <vector>

#include "common/bitset.hpp"
#include "common/thread_pool.hpp"
#include "graph/nsw_builder.hpp"

namespace algas {

BuildReport build_cagra(const Dataset& ds, const BuildConfig& cfg) {
  const std::size_t n = ds.num_base();
  BuildReport out;
  out.graph = Graph(n, cfg.degree);
  Graph& g = out.graph;
  if (n == 0) return out;
  if (n == 1) {
    g.set_entry_point(0);
    return out;
  }

  BuildExecutor exec(cfg.threads);

  // --- 1. scaffold NSW + kNN lists -------------------------------------
  BuildConfig scaffold_cfg = cfg;
  scaffold_cfg.degree = std::min<std::size_t>(cfg.degree, n - 1);
  BuildReport scaffold_report = build_nsw(ds, scaffold_cfg);
  const Graph& scaffold = scaffold_report.graph;
  // The scaffold dominates the modeled construction time; the refinement
  // passes below add their beam-search distance evals on top.
  out.virtual_build_ns = scaffold_report.virtual_build_ns;
  out.serial_build_ns = scaffold_report.serial_build_ns;
  out.batches = scaffold_report.batches;
  out.scored_points = scaffold_report.scored_points;

  const std::size_t k = std::min(2 * cfg.degree, n - 1);
  std::vector<std::vector<std::pair<float, NodeId>>> knn(n);
  std::vector<std::size_t> scored(n, 0);
  if (ds.metric() == Metric::kCosine) ds.base_norms();  // warm before forking
  if (ds.storage() != StorageCodec::kF32) ds.vector_store();
  exec.parallel_for(n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t v = begin; v < end; ++v) {
      auto found = build_beam_search(ds, scaffold, ds.base_vector(v),
                                     std::max(cfg.ef_construction, k + 1),
                                     scaffold.entry_point(), n, &scored[v]);
      auto& list = knn[v];
      list.reserve(k);
      for (const auto& [d, u] : found) {
        if (u == static_cast<NodeId>(v)) continue;
        list.emplace_back(d, u);
        if (list.size() == k) break;
      }
    }
  });
  for (std::size_t v = 0; v < n; ++v) out.scored_points += scored[v];

  // --- 2. rank-based reordering (CAGRA's edge importance) ----------------
  // Edge (v,u) is weighted by its detourable count: how many closer
  // neighbors w of v satisfy d(w,u) < d(v,u) — i.e., how many 2-hop routes
  // dominate the direct edge. Edges are reordered by (count, rank) and the
  // strongest `degree` survive as forward edges, with ties favouring
  // nearness. This keeps the true near neighbors (count 0) while demoting
  // redundant intra-cluster edges, unlike a binary prune.
  std::vector<std::vector<NodeId>> kept(n), dropped(n);
  exec.parallel_for(n, [&](std::size_t begin, std::size_t end) {
    std::vector<std::pair<std::uint32_t, std::size_t>> order;  // (count, rank)
    std::vector<NodeId> closer_ids;  // ids of list[0..i) — the closer prefix
    std::vector<float> closer_dists;
    for (std::size_t v = begin; v < end; ++v) {
      const auto& list = knn[v];
      order.clear();
      closer_ids.clear();
      closer_dists.resize(list.size());
      for (std::size_t i = 0; i < list.size(); ++i) {
        const auto [d_vu, u] = list[i];
        // Batch-score u against every closer neighbor of v in one round.
        ds.distance_batch(ds.base_vector(u), closer_ids, closer_dists);
        std::uint32_t detours = 0;
        for (std::size_t j = 0; j < i; ++j) {
          if (closer_dists[j] < d_vu) ++detours;
        }
        order.emplace_back(detours, i);
        closer_ids.push_back(u);
      }
      std::sort(order.begin(), order.end());
      auto& keep = kept[v];
      auto& drop = dropped[v];
      for (const auto& [count, rank] : order) {
        if (keep.size() < cfg.degree) {
          keep.push_back(list[rank].second);
        } else {
          drop.push_back(list[rank].second);
        }
      }
    }
  });

  // --- 3. forward + reverse edges, CAGRA-style half/half ----------------
  // CAGRA reserves roughly half the row for reverse edges; without them a
  // pruned kNN graph has poor *directed* reachability from a single entry.
  std::vector<std::vector<NodeId>> reverse(n);
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId u : kept[v]) reverse[u].push_back(v);
  }

  const std::size_t forward_cap = std::max<std::size_t>(1, cfg.degree / 2);
  for (NodeId v = 0; v < n; ++v) {
    auto row = g.mutable_neighbors(v);
    std::size_t slot = 0;
    auto add = [&](NodeId u, std::size_t cap) {
      if (slot >= cap || u == v) return;
      for (std::size_t i = 0; i < slot; ++i) {
        if (row[i] == u) return;
      }
      row[slot++] = u;
    };
    for (NodeId u : kept[v]) add(u, forward_cap);
    for (NodeId u : reverse[v]) add(u, row.size());
    // Backfill leftover slots with remaining forward candidates.
    for (NodeId u : kept[v]) add(u, row.size());
    for (NodeId u : dropped[v]) add(u, row.size());
  }

  g.set_entry_point(approximate_medoid(ds, exec));

  // --- 4. connectivity augmentation -------------------------------------
  // A pruned kNN graph of clustered data splits into per-cluster islands;
  // reverse edges cannot bridge them. Like production CAGRA-style builders,
  // stitch every unreachable component to its (approximately) nearest
  // reachable node by replacing that node's tail edge.
  std::vector<std::uint32_t> in_degree(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId u : g.neighbors(v)) {
      if (u != kInvalidNode) ++in_degree[u];
    }
  }

  Bitset reachable(n);
  std::deque<NodeId> frontier;
  auto flood = [&](NodeId start) {
    frontier.push_back(start);
    reachable.set(start);
    while (!frontier.empty()) {
      const NodeId w = frontier.front();
      frontier.pop_front();
      for (NodeId u : g.neighbors(w)) {
        if (u == kInvalidNode || reachable.test_and_set(u)) continue;
        frontier.push_back(u);
      }
    }
  };

  // Rerouting an edge can in principle disconnect something else, so run
  // stitch passes to a fixpoint (converges in a couple of passes because
  // the sacrificed edge always points at a well-covered target).
  for (int pass = 0; pass < 16; ++pass) {
    reachable.clear();
    frontier.clear();
    flood(g.entry_point());
    if (reachable.count() == n) break;

    for (NodeId v = 0; v < n; ++v) {
      if (reachable.test(v)) continue;
      // Nearest reachable node to v: a beam search from the entry can only
      // surface reachable nodes.
      std::size_t stitch_scored = 0;
      auto found = build_beam_search(
          ds, g, ds.base_vector(v),
          std::max<std::size_t>(cfg.ef_construction, 8), g.entry_point(), n,
          &stitch_scored);
      out.scored_points += stitch_scored;
      NodeId bridge = g.entry_point();
      for (const auto& [d, u] : found) {
        if (reachable.test(u)) {
          bridge = u;
          break;
        }
      }
      // Sacrifice the bridge edge whose target is best covered elsewhere so
      // rerouting is unlikely to disconnect previously reachable nodes.
      auto row = g.mutable_neighbors(bridge);
      std::size_t victim = row.size() - 1;
      std::uint32_t best_cover = 0;
      for (std::size_t i = 0; i < row.size(); ++i) {
        if (row[i] == kInvalidNode) {
          victim = i;
          best_cover = std::numeric_limits<std::uint32_t>::max();
          break;
        }
        if (in_degree[row[i]] > best_cover) {
          best_cover = in_degree[row[i]];
          victim = i;
        }
      }
      if (row[victim] != kInvalidNode) --in_degree[row[victim]];
      row[victim] = v;
      ++in_degree[v];
      // Mark v's island reachable now so later islands bridge to their own
      // nearest neighbors instead of piling onto one node.
      flood(v);
    }
  }
  return out;
}

}  // namespace algas
