#include "graph/nsw_builder.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/thread_pool.hpp"
#include "graph/gpu_construction.hpp"
#include "graph/neighbor_selection.hpp"

namespace algas {

BuildReport build_nsw(const Dataset& ds, const BuildConfig& cfg) {
  const std::size_t n = ds.num_base();
  BuildReport out;
  out.graph = Graph(n, cfg.degree);
  Graph& g = out.graph;
  if (n == 0) return out;
  if (n == 1) {
    g.set_entry_point(0);
    return out;
  }

  BuildExecutor exec(cfg.threads);
  const std::size_t capacity = construction_capacity(cfg, ds.dim());
  const std::size_t batch = std::max<std::size_t>(1, cfg.insert_batch);
  const std::size_t m = std::min(cfg.degree, n - 1);
  const std::size_t ef = std::max(cfg.ef_construction, m);

  // Warm the lazily-built dataset caches before forking: the norm table
  // (cosine) and the encoded store (quantized codecs) are not thread-safe
  // on first touch.
  if (ds.metric() == Metric::kCosine) ds.base_norms();
  if (ds.storage() != StorageCodec::kF32) ds.vector_store();

  std::vector<std::vector<std::pair<float, NodeId>>> found;
  std::vector<std::size_t> scored;
  std::vector<double> durations;
  std::vector<NodeId> row_ids;
  std::vector<float> row_dists;
  for (std::size_t begin = 0; begin < n; begin += batch) {
    const std::size_t end = std::min(begin + batch, n);
    found.assign(end - begin, {});
    scored.assign(end - begin, 0);
    durations.clear();

    // Phase 1 — concurrent searches against the frozen prefix [0, begin).
    // Each insertion writes only its own found/scored slot, so the phase
    // is embarrassingly parallel and its results are independent of the
    // chunking (the byte-identity guarantee).
    if (begin == 0) {
      // Bootstrap batch: no prefix graph exists; points score each other
      // exhaustively (the GPU does this as a brute-force tile kernel —
      // here one batched range scan per inserted point).
      exec.parallel_for(end - 1, [&](std::size_t lo, std::size_t hi) {
        std::vector<float> tile;
        for (std::size_t v = lo + 1; v < hi + 1; ++v) {
          auto& list = found[v];
          tile.resize(v);
          ds.distance_batch_range(ds.base_vector(v), 0, v, tile);
          list.reserve(v);
          for (std::size_t u = 0; u < v; ++u) {
            list.emplace_back(tile[u], static_cast<NodeId>(u));
          }
          std::sort(list.begin(), list.end());
          if (list.size() > cfg.ef_construction) {
            list.resize(cfg.ef_construction);
          }
          scored[v] = v;
        }
      });
    } else {
      exec.parallel_for(end - begin, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          const std::size_t v = begin + i;
          found[i] = build_beam_search(ds, g, ds.base_vector(v), ef, 0,
                                       begin, &scored[i]);
        }
      });
    }
    // Cost accounting stays serial and in insertion-id order so the
    // modeled times match the serial schedule exactly.
    for (std::size_t i = begin == 0 ? 1 : 0; i < end - begin; ++i) {
      out.scored_points += scored[i];
      durations.push_back(construction_insert_cost_ns(cfg, ds.dim(),
                                                      scored[i]));
    }

    // Phase 2 — apply the batch's links serially in insertion-id order.
    // select_neighbors rewrites v's own row from its beam; link() backlinks
    // into earlier rows. Serial application makes every row a deterministic
    // fold over the batch.
    for (std::size_t v = std::max<std::size_t>(begin, 1); v < end; ++v) {
      auto& candidates = found[v - begin];
      if (candidates.empty()) continue;
      select_neighbors(ds, g, static_cast<NodeId>(v), candidates);
      row_ids.clear();
      for (NodeId u : g.neighbors(static_cast<NodeId>(v))) {
        if (u != kInvalidNode) row_ids.push_back(u);
      }
      row_dists.resize(row_ids.size());
      ds.distance_batch(ds.base_vector(v), row_ids, row_dists);
      for (std::size_t i = 0; i < row_ids.size(); ++i) {
        link(ds, g, row_ids[i], static_cast<NodeId>(v), row_dists[i]);
      }
    }

    out.virtual_build_ns +=
        cfg.cost.kernel_launch_ns + construction_wave_makespan(durations,
                                                               capacity);
    for (double d : durations) out.serial_build_ns += d;
    ++out.batches;
  }
  out.serial_build_ns +=
      cfg.cost.kernel_launch_ns * static_cast<double>(out.batches);

  g.set_entry_point(approximate_medoid(ds, exec));
  return out;
}

}  // namespace algas
