#include "graph/nsw_builder.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "graph/neighbor_selection.hpp"

namespace algas {


Graph build_nsw(const Dataset& ds, const BuildConfig& cfg) {
  const std::size_t n = ds.num_base();
  Graph g(n, cfg.degree);
  if (n == 0) return g;
  if (n == 1) {
    g.set_entry_point(0);
    return g;
  }

  // Insert sequentially. The first node is the provisional entry point;
  // the medoid replaces it at the end.
  const std::size_t m = std::min(cfg.degree, n - 1);
  std::vector<NodeId> row_ids;
  std::vector<float> row_dists;
  row_ids.reserve(cfg.degree);
  row_dists.reserve(cfg.degree);
  for (NodeId v = 1; v < n; ++v) {
    auto found = build_beam_search(ds, g, ds.base_vector(v),
                                   std::max(cfg.ef_construction, m), 0, v);
    // Connect v to a diverse selection of its beam, then backlink. One
    // batched round scores the whole selected row against v.
    select_neighbors(ds, g, v, found);
    row_ids.clear();
    for (NodeId u : g.neighbors(v)) {
      if (u != kInvalidNode) row_ids.push_back(u);
    }
    row_dists.resize(row_ids.size());
    ds.distance_batch(ds.base_vector(v), row_ids, row_dists);
    for (std::size_t i = 0; i < row_ids.size(); ++i) {
      link(ds, g, row_ids[i], v, row_dists[i]);
    }
  }

  g.set_entry_point(approximate_medoid(ds));
  return g;
}

}  // namespace algas
