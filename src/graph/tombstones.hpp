// Tombstone set for streaming deletes — the deletion half of the mutable
// index (core::MutableIndex).
//
// Deletion never touches the adjacency matrix: a deleted node keeps its row
// and keeps routing traversals (removing it would sever paths through it),
// but the accept step excludes it from results (search::merge_sorted_runs,
// IntraCtaSearch::results). Reclamation is compaction's job.
//
// The representation recycles the VisitedTable epoch trick: a node is
// tombstoned when its 16-bit stamp equals the current generation, so
// compaction retires EVERY tombstone in O(1) by bumping the generation —
// the same generation-stamped reclamation the visited bitmap uses per
// query, applied per compaction epoch.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/ownership.hpp"
#include "common/types.hpp"

namespace algas {

class TombstoneSet {
 public:
  /// Same stamp width as VisitedTable: 2 bytes/node, and the wraparound
  /// (full re-stamp once every 65535 compactions) stays testable.
  using Generation = std::uint16_t;

  TombstoneSet() = default;
  explicit TombstoneSet(std::size_t num_nodes) : stamps_(num_nodes, 0) {}

  /// Grow preserves live tombstones (appended nodes start untombstoned);
  /// shrink resets — ids are only ever reduced by a compaction remap, which
  /// invalidates old marks wholesale.
  void resize(std::size_t num_nodes) {
    if (num_nodes > stamps_.size()) {
      stamps_.resize(num_nodes, 0);
      return;
    }
    stamps_.assign(num_nodes, 0);
    generation_ = 1;
    count_ = 0;
  }

  /// Tombstone node v; returns true if it was live before the call.
  bool mark(NodeId v) {
    assert(static_cast<std::size_t>(v) < stamps_.size());
    if (stamps_[v] == generation_) return false;
    stamps_[v] = generation_;
    ++count_;
    return true;
  }

  bool contains(NodeId v) const {
    assert(static_cast<std::size_t>(v) < stamps_.size());
    return stamps_[v] == generation_;
  }

  /// O(1) reclamation: start a new compaction epoch, instantly reviving
  /// every stamp. Only on generation wraparound does the whole array reset.
  void clear() {
    count_ = 0;
    if (++generation_ == 0) {
      std::fill(stamps_.begin(), stamps_.end(), Generation{0});
      generation_ = 1;
    }
  }

  std::size_t size() const { return stamps_.size(); }
  std::size_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  Generation generation() const { return generation_; }

  /// Tombstoned ids in ascending order — the serialization form
  /// (core::MutableIndex snapshots store ids, not stamps, so the on-disk
  /// bytes are independent of generation history).
  std::vector<NodeId> ids() const {
    std::vector<NodeId> out;
    out.reserve(count_);
    for (std::size_t v = 0; v < stamps_.size(); ++v) {
      if (stamps_[v] == generation_) out.push_back(static_cast<NodeId>(v));
    }
    return out;
  }

 private:
  /// Stamp validity is relative to generation_, exactly like VisitedTable;
  /// the streaming writer (core::MutableIndex) marks and compacts through
  /// the member functions, so the epoch hand-off rotates between the set
  /// itself and the index's exclusive-writer sections.
  std::vector<Generation> stamps_
      ALGAS_GUARDED_BY_EPOCH(TombstoneSet, MutableIndex);
  Generation generation_ ALGAS_OWNED_BY(TombstoneSet) = 1;  // 0 = never
  std::size_t count_ ALGAS_OWNED_BY(TombstoneSet) = 0;
};

}  // namespace algas
