// NSW graph construction in the GANNS style [Yu et al., ICDE'22]: points
// are inserted in batches of cfg.insert_batch. Every point of a batch beam-
// searches the frozen prefix (all previous batches) concurrently — the
// host-side analogue of one CTA per insertion — then the batch's links are
// applied serially in insertion-id order, capped at `degree` per row with
// the select-neighbors heuristic on overflow. The two-phase structure makes
// the graph a pure function of (dataset, config): byte-identical for any
// thread count. insert_batch=1 degenerates to classic one-at-a-time
// insertion.
#pragma once

#include "graph/builder.hpp"

namespace algas {

BuildReport build_nsw(const Dataset& ds, const BuildConfig& cfg);

}  // namespace algas
