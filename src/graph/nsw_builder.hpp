// NSW graph construction in the GANNS style [Yu et al., ICDE'22]: points are
// inserted one at a time; each new point is connected to its ef_construction
// beam-search neighborhood, capped at `degree` per row with
// closest-first replacement on overflow.
#pragma once

#include "graph/builder.hpp"

namespace algas {

Graph build_nsw(const Dataset& ds, const BuildConfig& cfg);

}  // namespace algas
