// Graph builder front-end: the two index types the paper evaluates
// (NSW-GANNS and CAGRA), a shared build-time beam search, disk caching,
// and the unified BuildReport every builder returns.
//
// Construction is deterministic and thread-count invariant: a graph built
// with threads=8 is byte-identical to threads=1 (see DESIGN.md
// "Deterministic parallel construction"), so the disk cache key carries no
// thread count and artifacts are interchangeable across machines.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "dataset/dataset.hpp"
#include "graph/graph.hpp"
#include "simgpu/cost_model.hpp"
#include "simgpu/device_props.hpp"

namespace algas {

class BuildExecutor;  // common/thread_pool.hpp

enum class GraphKind : std::uint8_t {
  kNsw = 0,    ///< GANNS-style navigable small world (batch-inserted)
  kCagra,      ///< CAGRA-style fixed out-degree optimized kNN graph
};

std::string graph_kind_name(GraphKind k);

/// One config for every builder. Absorbs the former GpuBuildConfig: the
/// batch structure (`insert_batch`) is both the GPU construction kernel's
/// dispatch unit and the host-side parallel unit (`threads`).
struct BuildConfig {
  std::size_t degree = 32;           ///< fixed out-degree of the result
  std::size_t ef_construction = 64;  ///< build-time beam width
  std::uint64_t seed = 7;
  /// Host worker threads for construction. 0 defers to ALGAS_BUILD_THREADS
  /// (which itself defaults to hardware concurrency); 1 runs serially.
  /// Never affects the resulting graph, only the wall time.
  std::size_t threads = 0;
  /// NSW insertions dispatched per construction batch: each batch's beam
  /// searches run against the frozen prefix, then links apply serially in
  /// insertion-id order. Part of the graph's identity (and its cache key);
  /// 1 degenerates to classic one-at-a-time insertion.
  std::size_t insert_batch = 1024;
  /// Virtual-time model of the batched construction kernel (reporting
  /// only — never affects the graph bytes).
  sim::DeviceProps device = sim::DeviceProps::rtx_a6000();
  sim::CostModel cost;
};

/// What every build returns: the graph plus how much it cost. Wall time is
/// real host time; virtual/serial ns are the cost model's batched-kernel
/// and one-CTA schedules (the GANNS construction-speedup claim, in-model).
struct BuildReport {
  Graph graph;
  double wall_build_s = 0.0;       ///< host wall-clock, load or build
  double virtual_build_ns = 0.0;   ///< wave-scheduled batched construction
  double serial_build_ns = 0.0;    ///< same work on one CTA (the baseline)
  std::size_t batches = 0;
  std::size_t scored_points = 0;   ///< beam-search distance evals, total
  bool cache_hit = false;          ///< load_or_build_graph found an artifact

  double speedup() const {
    return virtual_build_ns > 0.0 ? serial_build_ns / virtual_build_ns : 0.0;
  }
};

/// Build the requested index over `ds`.
BuildReport build_graph(GraphKind kind, const Dataset& ds,
                        const BuildConfig& cfg);

/// Build or load from ALGAS_CACHE_DIR keyed by dataset identity + config
/// (never by thread count — builds are thread-invariant). On a cache hit
/// the report carries the loaded graph, cache_hit=true, and only wall
/// time.
BuildReport load_or_build_graph(GraphKind kind, const Dataset& ds,
                                const BuildConfig& cfg);

/// Sequential best-first beam search over a (partial) graph — the build-time
/// workhorse shared by both builders. Returns up to `ef` (distance, id)
/// pairs ascending by distance. `limit` restricts the search to node ids
/// < limit (used during incremental NSW construction). When `scored_out` is
/// non-null it receives the number of distance evaluations performed (used
/// by the GPU-construction cost model). Pure on the graph: safe to run
/// concurrently against a frozen prefix.
std::vector<std::pair<float, NodeId>> build_beam_search(
    const Dataset& ds, const Graph& g, std::span<const float> query,
    std::size_t ef, NodeId entry, std::size_t limit,
    std::size_t* scored_out = nullptr);

/// Node whose vector is closest to the dataset centroid — used as the
/// search entry point by both builders. The overload taking an executor
/// parallelizes the base scan; both return the identical node (ties break
/// to the lowest id regardless of chunking).
NodeId approximate_medoid(const Dataset& ds);
NodeId approximate_medoid(const Dataset& ds, BuildExecutor& exec);
/// Medoid of the prefix [0, limit) only — streaming publishes entry points
/// over the linked prefix while later rows are still staged. limit >=
/// num_base() scans the whole set (identical to the overloads above).
NodeId approximate_medoid(const Dataset& ds, BuildExecutor& exec,
                          std::size_t limit);

}  // namespace algas
