// Graph builder front-end: the two index types the paper evaluates
// (NSW-GANNS and CAGRA), a shared build-time beam search, and disk caching.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "dataset/dataset.hpp"
#include "graph/graph.hpp"

namespace algas {

enum class GraphKind : std::uint8_t {
  kNsw = 0,    ///< GANNS-style navigable small world (insertion-built)
  kCagra,      ///< CAGRA-style fixed out-degree optimized kNN graph
};

std::string graph_kind_name(GraphKind k);

struct BuildConfig {
  std::size_t degree = 32;           ///< fixed out-degree of the result
  std::size_t ef_construction = 64;  ///< build-time beam width
  std::uint64_t seed = 7;
};

/// Build the requested index over `ds`.
Graph build_graph(GraphKind kind, const Dataset& ds, const BuildConfig& cfg);

/// Build or load from ALGAS_CACHE_DIR keyed by dataset identity + config.
Graph load_or_build_graph(GraphKind kind, const Dataset& ds,
                          const BuildConfig& cfg);

/// Sequential best-first beam search over a (partial) graph — the build-time
/// workhorse shared by both builders. Returns up to `ef` (distance, id)
/// pairs ascending by distance. `limit` restricts the search to node ids
/// < limit (used during incremental NSW construction). When `scored_out` is
/// non-null it receives the number of distance evaluations performed (used
/// by the GPU-construction cost model).
std::vector<std::pair<float, NodeId>> build_beam_search(
    const Dataset& ds, const Graph& g, std::span<const float> query,
    std::size_t ef, NodeId entry, std::size_t limit,
    std::size_t* scored_out = nullptr);

/// Node whose vector is closest to the dataset centroid — used as the
/// search entry point by both builders.
NodeId approximate_medoid(const Dataset& ds);

}  // namespace algas
