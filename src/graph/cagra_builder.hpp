// CAGRA-style graph construction [Ootomo et al., ICDE'24], simplified:
//   1. Build an initial kNN graph (k = 2 x degree) by searching a scaffold
//      NSW index for every base point.
//   2. Rank-based pruning: drop edge (v,u) when an earlier (closer) neighbor
//      w of v satisfies dist(w,u) < dist(v,u) — u is reachable via a detour.
//   3. Fill remaining row slots with reverse edges, then with the pruned
//      candidates, closest first.
// The result is a fixed out-degree graph with the strong-connectivity
// properties CAGRA's search relies on.
//
// The per-node phases (kNN refinement, detour counting) run on the build
// executor; every parallel phase writes only per-node slots, so the result
// is byte-identical for any thread count.
#pragma once

#include "graph/builder.hpp"

namespace algas {

BuildReport build_cagra(const Dataset& ds, const BuildConfig& cfg);

}  // namespace algas
