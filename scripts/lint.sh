#!/usr/bin/env bash
# Single lint entry point: clang-format (style), clang-tidy (compiler-grade
# checks over compile_commands.json), and algas_lint (repo-specific
# determinism & ownership rules — see tools/algas_lint/).
#
# Usage:
#   scripts/lint.sh [--fix] [--build-dir DIR]
#
#   --fix          rewrite formatting in place instead of checking
#   --build-dir    where compile_commands.json lives (default: build)
#
# Tool availability:
#   Local runs soft-skip clang-format / clang-tidy when the binary is
#   missing (algas_lint only needs python3 and always runs). CI exports
#   ALGAS_LINT_STRICT=1, which turns a missing tool into a hard failure so
#   the gate can never silently pass because the image lost a package.
set -euo pipefail

cd "$(dirname "$0")/.."

strict="${ALGAS_LINT_STRICT:-0}"
build_dir="build"
fmt_mode=(--dry-run --Werror)
while [[ $# -gt 0 ]]; do
  case "$1" in
    --fix) fmt_mode=(-i); shift ;;
    --build-dir) build_dir="$2"; shift 2 ;;
    *) echo "lint.sh: unknown argument: $1" >&2; exit 2 ;;
  esac
done

missing_tool() {
  # $1 = tool, $2 = what it gates
  if [[ "$strict" == "1" ]]; then
    echo "lint.sh: $1 not found and ALGAS_LINT_STRICT=1 — $2 gate FAILED" >&2
    exit 1
  fi
  echo "lint.sh: $1 not found; skipping $2 gate (set ALGAS_LINT_STRICT=1 to fail)" >&2
}

fail=0

# ---- 1. clang-format -----------------------------------------------------
if command -v clang-format >/dev/null 2>&1; then
  mapfile -t files < <(find src tests bench tools -name '*.cpp' -o -name '*.hpp' \
    | grep -v 'algas_lint/fixtures' | sort)
  echo "lint.sh: clang-format ${fmt_mode[*]} over ${#files[@]} files"
  clang-format "${fmt_mode[@]}" "${files[@]}" || fail=1
else
  missing_tool clang-format format
fi

# ---- 2. clang-tidy -------------------------------------------------------
if command -v clang-tidy >/dev/null 2>&1; then
  if [[ ! -f "$build_dir/compile_commands.json" ]]; then
    echo "lint.sh: $build_dir/compile_commands.json missing — configure with" >&2
    echo "         cmake -B $build_dir -S . (CMAKE_EXPORT_COMPILE_COMMANDS is on)" >&2
    exit 1
  fi
  mapfile -t tidy_files < <(find src bench tools -name '*.cpp' \
    | grep -v 'algas_lint/fixtures' | sort)
  echo "lint.sh: clang-tidy over ${#tidy_files[@]} files (config: .clang-tidy)"
  if command -v run-clang-tidy >/dev/null 2>&1; then
    run-clang-tidy -quiet -p "$build_dir" "${tidy_files[@]}" || fail=1
  else
    clang-tidy -quiet -p "$build_dir" "${tidy_files[@]}" || fail=1
  fi
else
  missing_tool clang-tidy tidy
fi

# ---- 3. algas_lint -------------------------------------------------------
if command -v python3 >/dev/null 2>&1; then
  python3 tools/algas_lint/algas_lint.py --self-test || fail=1
  python3 tools/algas_lint/algas_lint.py --root . || fail=1
else
  missing_tool python3 algas_lint
fi

if [[ "$fail" != "0" ]]; then
  echo "lint.sh: FAILED" >&2
  exit 1
fi
echo "lint.sh: OK"
