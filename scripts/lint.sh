#!/usr/bin/env bash
# Format gate: clang-format --dry-run over every C++ source in src/, tests/,
# and bench/. Pass --fix to rewrite files in place instead of checking.
set -euo pipefail

cd "$(dirname "$0")/.."

mode=(--dry-run --Werror)
if [[ "${1:-}" == "--fix" ]]; then
  mode=(-i)
fi

if ! command -v clang-format >/dev/null 2>&1; then
  echo "lint.sh: clang-format not found; skipping format gate" >&2
  exit 0
fi

mapfile -t files < <(find src tests bench -name '*.cpp' -o -name '*.hpp' | sort)
echo "lint.sh: clang-format ${mode[*]} over ${#files[@]} files"
clang-format "${mode[@]}" "${files[@]}"
echo "lint.sh: OK"
