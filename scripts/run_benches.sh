#!/bin/sh
# Regenerate every paper table/figure. Outputs one TSV block per bench.
set -e
for b in build/bench/bench_*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "===== $b ====="
  "$b"
  echo
done
