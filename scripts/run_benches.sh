#!/bin/sh
# Regenerate every paper table/figure. Outputs one TSV block per bench.
# bench_walltime is excluded from the figure loop (it measures host
# wall-clock, not virtual time) and run once at the end.
set -e
for b in build/bench/bench_*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  case "$b" in
    */bench_walltime) continue ;;
  esac
  echo "===== $b ====="
  "$b"
  echo
done
if [ -x build/bench/bench_walltime ]; then
  echo "===== build/bench/bench_walltime ====="
  build/bench/bench_walltime
  echo
fi
