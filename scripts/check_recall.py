#!/usr/bin/env python3
"""Recall/precision regression gate for quantized base-vector storage.

Compares a freshly measured BENCH_recall.json (from tools/recall_gate)
against the committed baseline (bench/recall_baseline.json by default):

  f32   must match the baseline recall EXACTLY — the f32 codec path is
        bitwise-identical to the seed kernels, so any drift means the
        deterministic scoring chain changed and every pinned number in
        the repo is suspect.
  f16   measured recall may drop at most --f16-eps  (default 0.001)
        below the *measured* f32 recall of the same run.
  int8  measured recall may drop at most --int8-eps (default 0.01)
        below the measured f32 recall.

Quantized codecs gate against the same-run f32 recall (not the baseline)
so the gate isolates codec loss from dataset/config drift — config drift
is caught separately by the exact-match check on the config keys.
"""
import argparse
import json
import sys

CONFIG_KEYS = ("dataset", "n_base", "dim", "queries", "topk", "candidate_len")


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("measured", help="freshly produced BENCH_recall.json")
    ap.add_argument("baseline", nargs="?",
                    default="bench/recall_baseline.json")
    ap.add_argument("--f16-eps", type=float, default=0.001,
                    help="max recall@10 drop for f16 vs f32 (default 0.001)")
    ap.add_argument("--int8-eps", type=float, default=0.01,
                    help="max recall@10 drop for int8 vs f32 (default 0.01)")
    args = ap.parse_args()

    with open(args.measured) as f:
        measured = json.load(f)
    with open(args.baseline) as f:
        baseline = json.load(f)

    failures = []

    # The gate only means something if both runs measured the same thing.
    for key in CONFIG_KEYS:
        if measured.get(key) != baseline.get(key):
            failures.append(f"config mismatch on '{key}': measured "
                            f"{measured.get(key)!r} vs baseline "
                            f"{baseline.get(key)!r}")
    if failures:
        print("\ncheck_recall: FAILED", file=sys.stderr)
        for f_ in failures:
            print(f"  {f_}", file=sys.stderr)
        return 2

    try:
        recalls = {c: float(measured["codecs"][c]["recall_at_10"])
                   for c in ("f32", "f16", "int8")}
        base_f32 = float(baseline["codecs"]["f32"]["recall_at_10"])
    except KeyError as e:
        print(f"check_recall: missing codec entry {e}", file=sys.stderr)
        return 2

    # f32: exact. The f32 path never quantizes, so recall is a pure function
    # of the deterministic simulation — drift means broken determinism.
    verdict = "OK" if recalls["f32"] == base_f32 else "DRIFT"
    print(f"f32:  recall@10 {recalls['f32']:.6f} vs baseline {base_f32:.6f} "
          f"(exact match required) {verdict}")
    if recalls["f32"] != base_f32:
        failures.append(
            f"f32 recall drifted: {recalls['f32']:.10f} != baseline "
            f"{base_f32:.10f} — the deterministic f32 scoring path changed")

    for codec, eps in (("f16", args.f16_eps), ("int8", args.int8_eps)):
        drop = recalls["f32"] - recalls[codec]
        verdict = "OK" if drop <= eps else "REGRESSION"
        print(f"{codec}: recall@10 {recalls[codec]:.6f} "
              f"(drop {drop:+.6f} vs f32, eps {eps}) {verdict}")
        if drop > eps:
            failures.append(
                f"{codec} recall dropped {drop:.6f} below f32 "
                f"(allowed {eps}) — quantization error grew")

    if failures:
        print("\ncheck_recall: FAILED", file=sys.stderr)
        for f_ in failures:
            print(f"  {f_}", file=sys.stderr)
        return 1
    print("check_recall: all codec recall gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
