#!/usr/bin/env python3
"""Recall regression gate shared by the storage-codec and churn benches.

Compares a freshly measured JSON (tools/recall_gate's BENCH_recall.json or
bench_churn's BENCH_churn.json) against a committed baseline. Both files
carry a map of named measurement entries — "codecs" (f32/f16/int8) or
"variants" (rebuild/churned) — each with a "recall_at_10" value.

Two kinds of check:

  exact   the --exact entry (default f32; the churn gate passes
          --exact rebuild) must match the baseline recall EXACTLY. These
          entries come from the deterministic build+search chain, so any
          drift means the pinned numbers across the repo are suspect.
  eps     every --eps KEY=VAL entry may drop at most VAL below the
          *measured* exact entry of the same run. Gating against the
          same-run reference isolates the entry's own loss (quantization
          error, churn-vs-rebuild gap) from dataset/config drift — config
          drift is caught separately by the exact-match config keys.
  near    every --near KEY=EPS entry must land within EPS of the
          BASELINE's same entry (two-sided). This is the right gate for
          entries with no same-run exact reference — bench_filtered's
          per-tier recalls are graded against per-predicate ground truth,
          so they compare to their own committed values, not to f32.
  pin     every --pin KEY names a TOP-LEVEL scalar (e.g. a result or
          attribute checksum) that must equal the baseline's exactly.
          Pins are how byte-identity guarantees get wired into the gate:
          a checksum drift fails even when every recall still matches.

With no --eps flags and a "codecs" file, the legacy defaults apply:
f16=0.001 (--f16-eps) and int8=0.01 (--int8-eps), so the existing
recall-gate CI invocation runs unchanged.
"""
import argparse
import json
import sys

CONFIG_KEYS = ("dataset", "n_base", "dim", "queries", "topk", "candidate_len")


def entries_of(doc):
    for key in ("codecs", "variants"):
        if key in doc:
            return doc[key]
    raise KeyError("no 'codecs' or 'variants' map in JSON")


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("measured", help="freshly produced measurement JSON")
    ap.add_argument("baseline", nargs="?",
                    default="bench/recall_baseline.json")
    ap.add_argument("--exact", default="f32", metavar="KEY",
                    help="entry requiring an exact baseline match "
                         "(default f32; churn gate uses rebuild)")
    ap.add_argument("--eps", action="append", default=[], metavar="KEY=VAL",
                    help="entry KEY may drop at most VAL below the measured "
                         "--exact entry; repeatable")
    ap.add_argument("--near", action="append", default=[], metavar="KEY=EPS",
                    help="entry KEY must land within EPS of the baseline's "
                         "same entry (two-sided); repeatable")
    ap.add_argument("--pin", action="append", default=[], metavar="KEY",
                    help="top-level scalar KEY must equal the baseline's "
                         "exactly; repeatable")
    ap.add_argument("--f16-eps", type=float, default=0.001,
                    help="legacy codec default when no --eps given")
    ap.add_argument("--int8-eps", type=float, default=0.01,
                    help="legacy codec default when no --eps given")
    args = ap.parse_args()

    with open(args.measured) as f:
        measured = json.load(f)
    with open(args.baseline) as f:
        baseline = json.load(f)

    failures = []

    # The gate only means something if both runs measured the same thing.
    for key in CONFIG_KEYS:
        if measured.get(key) != baseline.get(key):
            failures.append(f"config mismatch on '{key}': measured "
                            f"{measured.get(key)!r} vs baseline "
                            f"{baseline.get(key)!r}")
    if failures:
        print("\ncheck_recall: FAILED", file=sys.stderr)
        for f_ in failures:
            print(f"  {f_}", file=sys.stderr)
        return 2

    try:
        m_entries = entries_of(measured)
        b_entries = entries_of(baseline)
    except KeyError as e:
        print(f"check_recall: {e}", file=sys.stderr)
        return 2

    eps_map = {}
    for spec in args.eps:
        key, _, val = spec.partition("=")
        if not val:
            print(f"check_recall: bad --eps '{spec}' (want KEY=VAL)",
                  file=sys.stderr)
            return 2
        eps_map[key] = float(val)
    if not eps_map and not args.near and "codecs" in measured:
        eps_map = {"f16": args.f16_eps, "int8": args.int8_eps}

    near_map = {}
    for spec in args.near:
        key, _, val = spec.partition("=")
        if not val:
            print(f"check_recall: bad --near '{spec}' (want KEY=EPS)",
                  file=sys.stderr)
            return 2
        near_map[key] = float(val)

    try:
        exact = float(m_entries[args.exact]["recall_at_10"])
        base_exact = float(b_entries[args.exact]["recall_at_10"])
        eps_recalls = {k: float(m_entries[k]["recall_at_10"])
                       for k in eps_map}
        near_pairs = {k: (float(m_entries[k]["recall_at_10"]),
                          float(b_entries[k]["recall_at_10"]))
                      for k in near_map}
    except KeyError as e:
        print(f"check_recall: missing entry {e}", file=sys.stderr)
        return 2

    for key in args.pin:
        m_val, b_val = measured.get(key), baseline.get(key)
        verdict = "OK" if m_val == b_val and m_val is not None else "DRIFT"
        print(f"{key}: {m_val!r} vs baseline {b_val!r} (pin) {verdict}")
        if verdict != "OK":
            failures.append(
                f"pinned '{key}' drifted: {m_val!r} != baseline {b_val!r}")

    # Exact entry: pure function of the deterministic simulation — drift
    # means broken determinism.
    verdict = "OK" if exact == base_exact else "DRIFT"
    print(f"{args.exact}: recall@10 {exact:.6f} vs baseline "
          f"{base_exact:.6f} (exact match required) {verdict}")
    if exact != base_exact:
        failures.append(
            f"{args.exact} recall drifted: {exact:.10f} != baseline "
            f"{base_exact:.10f} — the deterministic build/search chain "
            f"changed")

    for key in sorted(eps_map):
        eps = eps_map[key]
        drop = exact - eps_recalls[key]
        verdict = "OK" if drop <= eps else "REGRESSION"
        print(f"{key}: recall@10 {eps_recalls[key]:.6f} "
              f"(drop {drop:+.6f} vs {args.exact}, eps {eps}) {verdict}")
        if drop > eps:
            failures.append(
                f"{key} recall dropped {drop:.6f} below {args.exact} "
                f"(allowed {eps})")

    for key in sorted(near_map):
        eps = near_map[key]
        m_val, b_val = near_pairs[key]
        delta = m_val - b_val
        verdict = "OK" if abs(delta) <= eps else "REGRESSION"
        print(f"{key}: recall@10 {m_val:.6f} (baseline {b_val:.6f}, "
              f"delta {delta:+.6f}, eps {eps}) {verdict}")
        if abs(delta) > eps:
            failures.append(
                f"{key} recall moved {delta:+.6f} from its baseline "
                f"(allowed ±{eps})")

    if failures:
        print("\ncheck_recall: FAILED", file=sys.stderr)
        for f_ in failures:
            print(f"  {f_}", file=sys.stderr)
        return 1
    print("check_recall: all recall gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
