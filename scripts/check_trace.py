#!/usr/bin/env python3
"""Validate a SimTrace Chrome trace-event JSON file.

Usage: check_trace.py <trace.json>

Checks the schema SimTrace promises (and Perfetto relies on): the object
format with a traceEvents list, known phases with their required keys,
non-negative durations, numeric counter values, paired flow ids, and the
presence of at least one duration span and one slot-state instant.
Exits 1 with a message on the first violation. Stdlib only.
"""
import json
import sys

KNOWN_PHASES = {"X", "i", "C", "s", "f", "M"}


def fail(msg):
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) != 2:
        fail("usage: check_trace.py <trace.json>")
    try:
        with open(sys.argv[1], "rb") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot parse {sys.argv[1]}: {e}")

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail("top level must be an object with a traceEvents list")
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        fail("traceEvents must be a non-empty list")

    spans = instants = state_instants = counters = 0
    has_algas_process = False
    flow_balance = {}
    for n, e in enumerate(events):
        where = f"event {n}"
        if not isinstance(e, dict):
            fail(f"{where}: not an object")
        ph = e.get("ph")
        if ph not in KNOWN_PHASES:
            fail(f"{where}: unknown phase {ph!r}")
        for key in ("pid", "tid", "name"):
            if key not in e:
                fail(f"{where}: missing {key!r}")
        if ph == "M":
            if e["name"] == "process_name" and str(
                    e.get("args", {}).get("name", "")).startswith("algas:"):
                has_algas_process = True
        else:
            ts = e.get("ts")
            if not isinstance(ts, (int, float)):
                fail(f"{where}: non-numeric ts {ts!r}")
        if ph == "X":
            spans += 1
            dur = e.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                fail(f"{where}: complete span needs dur >= 0, got {dur!r}")
        elif ph == "i":
            instants += 1
            if e.get("s") not in ("t", "p", "g"):
                fail(f"{where}: instant needs a scope 's'")
            if e.get("cat") == "state":
                state_instants += 1
                if "->" not in e["name"]:
                    fail(f"{where}: state instant name {e['name']!r} "
                         "is not a 'From->To' transition")
        elif ph == "C":
            counters += 1
            args = e.get("args")
            if not isinstance(args, dict) or not isinstance(
                    args.get("value"), (int, float)):
                fail(f"{where}: counter needs numeric args.value")
        elif ph in ("s", "f"):
            fid = e.get("id")
            if not isinstance(fid, int):
                fail(f"{where}: flow event needs an integer id")
            flow_balance[fid] = flow_balance.get(fid, 0) + (
                1 if ph == "s" else -1)

    unpaired = [fid for fid, b in flow_balance.items() if b != 0]
    if unpaired:
        fail(f"unpaired flow ids: {unpaired[:10]}")
    if spans == 0:
        fail("no duration spans ('X') recorded")
    # Only ALGAS runs have the Fig 5 state machine; batch baselines do not.
    if has_algas_process and state_instants == 0:
        fail("ALGAS run traced but no slot-state transition instants "
             "(cat='state') recorded")

    print(f"check_trace: OK: {len(events)} events "
          f"({spans} spans, {instants} instants, {counters} counter samples, "
          f"{len(flow_balance)} flows, {state_instants} state transitions)")


if __name__ == "__main__":
    main()
