#!/usr/bin/env python3
"""Wall-clock regression gate for bench_walltime.

Compares a freshly measured BENCH_walltime.json against the committed
baseline (bench/walltime_baseline.json by default) and fails when any
distance-eval or construction throughput drops more than --tolerance
(default 30%).

Only *_distance_evals_per_s, *_insertions_per_s and *_goodput_qps keys gate
(the first two are measured on one core, so they are machine-comparable;
goodput is a virtual-time quantity — deterministic at a pinned bench
config — so the serving gate can hold it to a floor): queries/s, events/s,
and the parallel construction speedup depend on runner load and core count
too strongly for a hard gate, so they are printed for the log but never
fail the job.
"""
import argparse
import json
import sys


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("measured", help="freshly produced BENCH_walltime.json")
    ap.add_argument("baseline", nargs="?",
                    default="bench/walltime_baseline.json")
    ap.add_argument("--tolerance", type=float, default=0.30,
                    help="allowed fractional drop vs baseline (default 0.30)")
    args = ap.parse_args()

    with open(args.measured) as f:
        measured = json.load(f)
    with open(args.baseline) as f:
        baseline = json.load(f)

    gate_keys = sorted(k for k in baseline
                       if k.endswith("_distance_evals_per_s")
                       or k.endswith("_insertions_per_s")
                       or k.endswith("_goodput_qps"))
    if not gate_keys:
        print("check_walltime: baseline has no *_distance_evals_per_s, "
              "*_insertions_per_s or *_goodput_qps keys", file=sys.stderr)
        return 2

    failures = []
    for key in gate_keys:
        base = float(baseline[key])
        got = measured.get(key)
        if got is None:
            failures.append(f"{key}: missing from measured output")
            continue
        got = float(got)
        floor = base * (1.0 - args.tolerance)
        verdict = "OK" if got >= floor else "REGRESSION"
        print(f"{key}: measured {got:,.0f} vs baseline {base:,.0f} "
              f"(floor {floor:,.0f}) {verdict}")
        if got < floor:
            failures.append(
                f"{key}: {got:,.0f} < floor {floor:,.0f} "
                f"({(1.0 - got / base) * 100.0:.1f}% below baseline)")

    for key in ("engine_queries_per_s", "sim_events_per_s",
                "search_queries_per_s", "construction_speedup",
                "construction_parallel_wall_s"):
        if key in measured and key in baseline:
            print(f"{key} (informational): measured "
                  f"{float(measured[key]):,.1f} vs baseline "
                  f"{float(baseline[key]):,.1f}")

    if failures:
        print("\ncheck_walltime: FAILED", file=sys.stderr)
        for f_ in failures:
            print(f"  {f_}", file=sys.stderr)
        return 1
    print("check_walltime: all throughput gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
