// expect-lint: pointer-key
// Seeded violation: a container ordered by pointer value. Iteration order
// follows allocation addresses, which differ run to run.
#include <map>
#include <string>

class Actor;

std::map<const Actor*, std::string> actor_names;
