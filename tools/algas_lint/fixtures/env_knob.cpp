// expect-lint: env-knob
// Seeded violation: an ALGAS_* knob read at a call site through the env
// helpers, bypassing the one collection point RuntimeOptions::from_env()
// and its CLI > env > default precedence contract.
#include <string>

namespace algas {
std::string env_string(const char* name, const std::string& fallback);
}

std::string trace_path() { return algas::env_string("ALGAS_TRACE", ""); }
