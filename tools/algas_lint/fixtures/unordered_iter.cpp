// expect-lint: unordered-iter
// Seeded violation: hash-order iteration feeding an accumulated result
// without an adjacent ordered-iteration justification. (Addition over
// doubles is not associative — hash order leaks into the sum.)
#include <cstddef>
#include <unordered_map>

double sum_weights() {
  std::unordered_map<int, double> weight_of;
  weight_of[3] = 0.25;
  weight_of[7] = 0.5;
  double total = 0.0;
  for (const auto& [node, weight] : weight_of) total += weight;
  return total;
}
