// expect-lint: raw-getenv
// Seeded violation: raw std::getenv outside common/env.cpp. Knob reads
// must go through RuntimeOptions::from_env().
#include <cstdlib>
#include <string>

std::string cache_dir_raw() {
  const char* raw = std::getenv("HOME");
  return raw != nullptr ? std::string(raw) : std::string();
}
