// expect-lint: ownership
// Seeded violation: an accept predicate re-targeted after it was published
// into a search config. AcceptPredicate's components (filter, tombstones,
// offset) are ALGAS_IMMUTABLE_AFTER_PUBLISH — build the predicate as a
// function-local value and never mutate it once an engine holds it, or a
// running traversal would see the accept set change mid-query.
#define ALGAS_IMMUTABLE_AFTER_PUBLISH

struct NodeBitset;

struct AcceptPredicate {
  const NodeBitset* filter_ ALGAS_IMMUTABLE_AFTER_PUBLISH = nullptr;
  unsigned long offset_ ALGAS_IMMUTABLE_AFTER_PUBLISH = 0;
};

struct SearchConfig {
  AcceptPredicate accept;
};

struct Engine {
  SearchConfig cfg_;
  // Swapping the filter on a live engine mutates published accept state.
  void refilter(const NodeBitset* next) { cfg_.accept.filter_ = next; }
};
