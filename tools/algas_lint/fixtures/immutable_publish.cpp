// expect-lint: ownership
// Seeded violation: a published value struct mutated after it was stored
// into the engine. ALGAS_IMMUTABLE_AFTER_PUBLISH fields may only be
// written while the object is still a function-local value.
#define ALGAS_IMMUTABLE_AFTER_PUBLISH

struct Layout {
  unsigned long candidate_entries ALGAS_IMMUTABLE_AFTER_PUBLISH = 0;
};

struct Engine {
  Layout layout_;
  void grow() { layout_.candidate_entries *= 2; }
};
