// expect-lint: raw-rng
// Seeded violation: entropy from std::random_device instead of the seeded
// xoshiro Rng in common/rng.hpp — runs would differ machine to machine.
#include <random>

int pick_entry_point(int num_nodes) {
  std::random_device rd;
  return static_cast<int>(rd() % static_cast<unsigned>(num_nodes));
}
