// expect-lint: wall-clock deadline-clock
// Seeded violation: scheduler code comparing a deadline against the HOST
// clock. Deadline/arrival decisions must use Simulation virtual time —
// otherwise which queries shed depends on machine speed, breaking the
// deterministic-replay guarantee. Trips both the generic wall-clock rule
// and the unallowlistable deadline-clock rule (this file sits under
// src/core/).
#include <chrono>

bool past_deadline(double deadline_ns) {
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  return static_cast<double>(now.count()) > deadline_ns;
}
