// expect-lint: ownership
// Seeded violation: `finished` is owned by the device-side CtaActor
// (Fig 9 single-writer matrix), but a free function writes it.
#define ALGAS_OWNED_BY(...)

struct SlotRuntime {
  bool finished ALGAS_OWNED_BY(CtaActor) = false;
};

void poke(SlotRuntime& rt) { rt.finished = true; }
