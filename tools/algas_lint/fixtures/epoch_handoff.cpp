// expect-lint: ownership
// Seeded violation: `steps` hands off between the CTA (during Work) and
// the host worker (outside it); a third actor writing it breaks the
// epoch hand-off that ALGAS_GUARDED_BY_EPOCH declares.
#define ALGAS_GUARDED_BY_EPOCH(...)

struct SlotRuntime {
  unsigned long steps ALGAS_GUARDED_BY_EPOCH(CtaActor, HostWorker) = 0;
};

struct Telemetry {
  SlotRuntime* rt_ = nullptr;
  void tamper() { rt_->steps += 1; }
};
