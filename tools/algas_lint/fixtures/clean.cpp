// expect-lint: none
// Clean fixture: every guarded construct used the sanctioned way — owner
// writes, local construction before publish, justified sorted iteration.
// Also pins down classified near-miss shapes that must NOT trip: substring
// field names, multi-declarator locals, and wrapped owner lists.
#define ALGAS_OWNED_BY(...)
#define ALGAS_GUARDED_BY_EPOCH(...)
#define ALGAS_IMMUTABLE_AFTER_PUBLISH

#include <algorithm>
#include <unordered_map>
#include <vector>

struct Layout {
  unsigned long entries ALGAS_IMMUTABLE_AFTER_PUBLISH = 0;
};

Layout make_layout() {
  Layout layout;
  layout.entries = 8;  // still a local value: construction, not mutation
  return layout;
}

struct SlotRuntime {
  bool finished ALGAS_OWNED_BY(CtaActor) = false;
};

struct CtaActor {
  SlotRuntime* rt_ = nullptr;
  void flag_finish() { rt_->finished = true; }  // the declared owner
};

std::vector<int> sorted_keys(const std::unordered_map<int, int>& m) {
  std::vector<int> keys;
  keys.reserve(m.size());
  // lint: ordered keys are sorted below; hash order cannot reach callers
  for (const auto& [k, v] : m) keys.push_back(k);
  std::sort(keys.begin(), keys.end());
  return keys;
}

// Owner list wrapped across lines (clang-format does this): both listed
// actors must parse as owners.
struct Shared {
  unsigned long steps ALGAS_GUARDED_BY_EPOCH(CtaActor,
                                             HostWorker) = 0;
};

struct HostWorker {
  Shared* sh_ = nullptr;
  void harvest() { sh_->steps = 0; }  // second owner on the wrapped line
};

// `entries`/`steps` are annotated above; identifiers that merely CONTAIN
// those names are different variables and must not match.
unsigned long near_miss_names(const Layout& layout) {
  unsigned long candidate_entries = layout.entries * 2;
  candidate_entries += 1;
  unsigned long host_worker_steps = 0, total_steps = 0, entries = 3;
  host_worker_steps = candidate_entries;   // substring, not the field
  total_steps += host_worker_steps;
  entries = total_steps;  // bare write to a same-named LOCAL, not the field
  return entries;
}
