// expect-lint: wall-clock
// Seeded violation: a host clock read outside the wall-clock allowlist.
// Timestamps in results must come from Simulation virtual time.
#include <chrono>

double stamp_ns() {
  const auto t = std::chrono::steady_clock::now();
  return static_cast<double>(t.time_since_epoch().count());
}
