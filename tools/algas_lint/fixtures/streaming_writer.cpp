// expect-lint: ownership
// Seeded violation: the streaming index's published graph rotates write
// rights with the insert epoch (stage/apply/compact are MutableIndex
// writer sections); a serving-side helper mutating it from outside the
// owner class bypasses the MutationChecker discipline entirely.
#define ALGAS_GUARDED_BY_EPOCH(...)

struct TombstoneStamps {
  unsigned short generation ALGAS_GUARDED_BY_EPOCH(TombstoneSet,
                                                   MutableIndex) = 1;
};

struct ServeShortcut {
  TombstoneStamps* stamps_ = nullptr;
  // "Retire tombstones without paying for compact" — exactly the write the
  // single-writer matrix forbids from a reader-side actor.
  void retire_all() { stamps_->generation += 1; }
};
