#!/usr/bin/env python3
"""algas_lint — repo-specific determinism & ownership static analysis.

The repo's enforced superpower is determinism: byte-identical graphs and
figure TSVs across thread counts, codecs and tracing. This linter defends
that property *statically*, before any simulation runs, complementing the
dynamic ProtocolChecker / byte-identity tests:

  raw-rng         rand()/srand()/std::random_device/std::mt19937 outside
                  common/rng.hpp. All randomness must flow through the
                  seeded xoshiro Rng so runs reproduce bit-for-bit.
  wall-clock      std::chrono::*_clock::now(), time(), clock_gettime()
                  outside the wall-clock allowlist (bench_walltime,
                  BuildReport wall timing). Virtual time comes from
                  Simulation; host clocks may only feed wall-clock
                  *reporting*, never results.
  deadline-clock  any host-clock read inside scheduler code (src/core/,
                  src/simgpu/). Deadline comparisons and arrival timing
                  must use Simulation virtual time — a wall-clock deadline
                  would make shed/evict decisions nondeterministic. Unlike
                  wall-clock this rule has NO file allowlist: scheduler
                  code never gets a pass.
  unordered-iter  iteration over a std::unordered_map/set without an
                  adjacent `// lint: ordered` justification. Hash-order
                  iteration is libc++/libstdc++-dependent and must never
                  feed graph bytes or TopK output.
  raw-getenv      std::getenv outside common/env.cpp. Every ALGAS_* knob
                  goes through RuntimeOptions::from_env().
  env-knob        env_double/env_size/env_string("ALGAS_...") outside
                  common/env.cpp: knob reads scattered across call sites
                  defeat the CLI > env > default precedence contract.
  pointer-key     containers ordered or hashed by pointer value
                  (std::map<T*,..>, std::unordered_set<T*>, std::hash<T*>).
                  Address order varies run to run; a `// lint: pointer-key`
                  justification is required (e.g. lookup-only maps).
  ownership       fields annotated ALGAS_OWNED_BY(Actors...) /
                  ALGAS_GUARDED_BY_EPOCH(Actors...) (common/ownership.hpp)
                  may only be written from member functions of a declared
                  owning actor — the static mirror of ProtocolChecker's
                  Fig 9 single-writer matrix. ALGAS_IMMUTABLE_AFTER_PUBLISH
                  fields may only be written while the enclosing object is
                  a function-local value still under construction.

Suppressions (all require a trailing justification on the same line):
  // lint: ordered <why>         — sorted/order-insensitive use
  // lint: pointer-key <why>     — pointer-keyed container is safe
  // lint: allow(<rule>) <why>   — generic escape hatch, any rule

Usage:
  algas_lint.py [--root DIR]     lint src/ tests/ bench/ tools/ under DIR
  algas_lint.py --self-test      run the seeded-violation fixtures
  algas_lint.py --list-rules     print the rule catalogue

Exit codes: 0 clean, 1 violations found, 2 internal/usage error.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from dataclasses import dataclass, field

LINT_DIRS = ("src", "tests", "bench", "tools")
EXTS = (".cpp", ".hpp")
EXCLUDE_PARTS = ("algas_lint/fixtures",)

# Files allowed to touch each guarded facility (paths relative to root).
ALLOW = {
    "raw-rng": {"src/common/rng.hpp"},
    "wall-clock": {
        # The sanctioned wall-clock consumers: the wall-clock benches and
        # BuildReport's wall_build_s timing. Everything else runs on
        # Simulation virtual time. bench_shard times the host-side
        # scatter-gather hot loop for its distance_evals_per_s gate.
        "bench/bench_walltime.cpp",
        "bench/bench_shard.cpp",
        # bench_serving times its host-side sweep loop for the
        # serving_distance_evals_per_s gate, same pattern as bench_shard.
        "bench/bench_serving.cpp",
        "src/graph/builder.cpp",
    },
    # deadline-clock deliberately has NO entries: scheduler code (src/core/,
    # src/simgpu/) must never read a host clock, and adding a file to the
    # wall-clock allowlist must not quiet this rule there.
    "deadline-clock": set(),
    "raw-getenv": {"src/common/env.cpp"},
    "env-knob": {
        "src/common/env.cpp",
        # Unit tests of the env helpers themselves (ALGAS_TEST_VAR).
        "tests/test_common.cpp",
    },
}

RULES = {
    "raw-rng": "nondeterministic RNG outside common/rng.hpp",
    "wall-clock": "host clock outside the wall-clock allowlist",
    "deadline-clock": "host clock inside scheduler code (src/core, "
                      "src/simgpu) — deadlines run on virtual time",
    "unordered-iter": "hash-order iteration without `// lint: ordered`",
    "raw-getenv": "raw std::getenv outside common/env.cpp",
    "env-knob": "ALGAS_* env read outside RuntimeOptions::from_env()",
    "pointer-key": "pointer-ordered/hashed container without justification",
    "ownership": "write to an owned field from a non-owner",
}


@dataclass
class Violation:
    rule: str
    path: str
    line: int
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


# --------------------------------------------------------------------------
# Source model: comment/string-stripped lines + suppression directives.
# --------------------------------------------------------------------------

_DIRECTIVE_RE = re.compile(
    r"//\s*lint:\s*(ordered|pointer-key|allow\(([\w-]+)\))(?:\s+(\S.*))?")


def _strip(text: str) -> str:
    """Replace comments and string/char literal contents with spaces,
    preserving line structure and string delimiters."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j < 0 else j
            seg = text[i:j + 2]
            out.append("".join(ch if ch == "\n" else " " for ch in seg))
            i = j + 2
        elif c in "\"'":
            quote = c
            out.append(c)
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    out.append("  ")
                    i += 2
                else:
                    out.append(" " if text[i] != "\n" else "\n")
                    i += 1
            if i < n:
                out.append(quote)
                i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


@dataclass
class SourceFile:
    rel: str
    raw_lines: list[str]
    lines: list[str]  # comment/string-stripped, same count as raw_lines
    # line number -> set of suppressed rule names ("ordered" maps to
    # unordered-iter, "pointer-key" to pointer-key, allow(x) to x).
    suppress: dict[int, set[str]] = field(default_factory=dict)
    missing_reason: list[int] = field(default_factory=list)

    @classmethod
    def load(cls, root: str, rel: str) -> "SourceFile":
        with open(os.path.join(root, rel), encoding="utf-8") as f:
            text = f.read()
        raw_lines = text.splitlines()
        lines = _strip(text).splitlines()
        while len(lines) < len(raw_lines):
            lines.append("")
        sf = cls(rel=rel, raw_lines=raw_lines, lines=lines)
        for idx, raw in enumerate(raw_lines, start=1):
            m = _DIRECTIVE_RE.search(raw)
            if not m:
                continue
            kind, allowed, reason = m.group(1), m.group(2), m.group(3)
            rule = {"ordered": "unordered-iter",
                    "pointer-key": "pointer-key"}.get(kind, allowed)
            if not reason:
                sf.missing_reason.append(idx)
            sf.suppress.setdefault(idx, set()).add(rule or "")
        return sf

    def suppressed(self, rule: str, line: int) -> bool:
        """A directive suppresses its own line and the line below it
        (directive-above-statement is the house style)."""
        for at in (line, line - 1):
            if rule in self.suppress.get(at, set()):
                return True
        return False


# --------------------------------------------------------------------------
# Simple pattern rules.
# --------------------------------------------------------------------------

_WALL_CLOCK_RE = re.compile(
    r"std::chrono::(?:steady_|system_|high_resolution_)clock::now\s*\("
    r"|\bgettimeofday\s*\(|\bclock_gettime\s*\("
    r"|(?<![\w:.>])time\s*\(\s*(?:nullptr|NULL|0)?\s*\)"
    r"|(?<![\w:.>])clock\s*\(\s*\)")

# Scheduler code: deadline/arrival decisions live here and run on virtual
# time only, so ANY host-clock read is a deadline-clock violation.
_DEADLINE_CLOCK_DIRS = ("src/core/", "src/simgpu/")

_PAT_RULES = [
    ("raw-rng", re.compile(
        r"std::random_device|\bsrand\s*\(|(?<![\w:])rand\s*\(|std::mt19937")),
    ("wall-clock", _WALL_CLOCK_RE),
    ("deadline-clock", _WALL_CLOCK_RE),
    ("raw-getenv", re.compile(r"(?:\bstd::|(?<![\w:.>]))getenv\s*\(")),
    ("pointer-key", re.compile(
        r"std::(?:unordered_)?(?:map|set)\s*<\s*(?:const\s+)?[\w:]+(?:\s*<[^<>]*>)?\s*\*"
        r"|std::hash\s*<\s*[^>]*\*\s*>")),
]

# env-knob needs the raw text (string contents are blanked in stripped
# text) and must span lines: call sites often break after the paren.
_ENV_KNOB_RE = re.compile(
    r"\benv_(?:double|size|string)\s*\(\s*\"ALGAS_", re.DOTALL)


def _check_patterns(sf: SourceFile) -> list[Violation]:
    out = []
    for rule, pat in _PAT_RULES:
        if sf.rel in ALLOW.get(rule, ()):  # whole-file allowlist
            continue
        if (rule == "deadline-clock"
                and not sf.rel.startswith(_DEADLINE_CLOCK_DIRS)):
            continue
        for idx, line in enumerate(sf.lines, start=1):
            m = pat.search(line)
            if not m or sf.suppressed(rule, idx):
                continue
            out.append(Violation(rule, sf.rel, idx,
                                 f"`{m.group(0).strip()}` — {RULES[rule]}"))
    if sf.rel not in ALLOW["env-knob"]:
        raw_text = "\n".join(sf.raw_lines)
        for m in _ENV_KNOB_RE.finditer(raw_text):
            idx = raw_text.count("\n", 0, m.start()) + 1
            # Only real code: the call must survive comment stripping.
            if "env_" not in sf.lines[idx - 1]:
                continue
            if sf.suppressed("env-knob", idx):
                continue
            out.append(Violation(
                "env-knob", sf.rel, idx,
                "ALGAS_* knob read at a call site — add it to "
                "RuntimeOptions::from_env() (common/env.hpp) instead"))
    return out


# --------------------------------------------------------------------------
# unordered-iter: iteration over unordered containers.
# --------------------------------------------------------------------------

_UNORDERED_DECL_RE = re.compile(
    r"std::unordered_(?:map|set)\s*<[^;{}]*?>\s*&?\s*(\w+)\s*[;={(\[),]")
_UNORDERED_INLINE_FOR_RE = re.compile(
    r"for\s*\([^;:()]*:\s*\w*\s*std::unordered_(?:map|set)\b")


def _check_unordered_iter(sf: SourceFile) -> list[Violation]:
    text = "\n".join(sf.lines)
    names = set(_UNORDERED_DECL_RE.findall(text))
    out = []
    for idx, line in enumerate(sf.lines, start=1):
        hit = None
        if _UNORDERED_INLINE_FOR_RE.search(line):
            hit = "range-for over an unordered container"
        else:
            for name in names:
                if re.search(
                        rf"for\s*\([^;:()]*:\s*\*?{re.escape(name)}\s*\)",
                        line) or re.search(
                        rf"\b{re.escape(name)}\s*\.\s*c?(?:begin|end)\s*\(",
                        line):
                    hit = f"iteration over unordered container `{name}`"
                    break
        if hit and not sf.suppressed("unordered-iter", idx):
            out.append(Violation(
                "unordered-iter", sf.rel, idx,
                f"{hit}: hash order must not feed results — sort first and "
                "justify with `// lint: ordered <why>`"))
    return out


# --------------------------------------------------------------------------
# ownership: ALGAS_OWNED_BY / ALGAS_GUARDED_BY_EPOCH /
# ALGAS_IMMUTABLE_AFTER_PUBLISH cross-check.
# --------------------------------------------------------------------------

_ANNOT_RE = re.compile(
    r"\b(\w+)\s*(?:\[[^\]]*\])?\s+"
    r"ALGAS_(OWNED_BY|GUARDED_BY_EPOCH|IMMUTABLE_AFTER_PUBLISH)"
    r"(?:\(([^)]*)\))?")

_SCOPE_HEADER_CLASS_RE = re.compile(r"\b(?:class|struct)\s+(\w+)[^;{]*$")
_SCOPE_HEADER_MEMBER_RE = re.compile(r"\b(\w+)\s*::\s*(~?\w+)\s*\(")
_SCOPE_HEADER_FUNC_RE = re.compile(r"\b(\w+)\s*\([^;]*\)[^;={]*$")
_LOCAL_DECL_RE = re.compile(
    r"^\s*(?:(?:const|constexpr|static|unsigned|signed|long|short)\s+)*"
    r"(?:\w[\w:]*)(?:\s*<[^;=]*>)?\s+(\w+)\s*(?:;|=(?!=)|\{|\()")
_CTRL_KEYWORDS = {"if", "for", "while", "switch", "return", "case", "else",
                  "do", "catch", "throw", "new", "delete", "sizeof",
                  "static_assert", "using", "typedef", "goto", "break",
                  "continue", "template", "public", "private", "protected"}

_MUTATORS = ("push_back|pop_back|pop_front|push_front|emplace|emplace_back|"
             "assign|clear|resize|reserve|insert|erase|fill|reset|swap")


@dataclass
class Annotation:
    name: str
    kind: str            # OWNED_BY | GUARDED_BY_EPOCH | IMMUTABLE_AFTER_PUBLISH
    owners: tuple[str, ...]
    decl_file: str
    decl_line: int
    decl_class: str | None


@dataclass
class _Scope:
    kind: str                 # class | func | other
    name: str | None = None   # class name / function's class
    locals: set[str] = field(default_factory=set)


class _CppWalker:
    """Line/brace-based scope tracker tuned for this repo's clang-format
    style: tracks the enclosing class, the enclosing member function's
    class, and function-local value declarations."""

    def __init__(self, sf: SourceFile):
        self.sf = sf
        self.stack: list[_Scope] = []
        self.header = ""  # text since last ; { or } outside any string

    def enclosing_class(self) -> str | None:
        for sc in reversed(self.stack):
            if sc.kind == "class":
                return sc.name
        return None

    def enclosing_func_class(self) -> str | None:
        """Class owning the innermost member function, '' for free funcs,
        None when not inside any function."""
        for sc in reversed(self.stack):
            if sc.kind == "func":
                return sc.name
        return None

    def func_scope(self) -> _Scope | None:
        for sc in reversed(self.stack):
            if sc.kind == "func":
                return sc
        return None

    def is_local_value(self, ident: str) -> bool:
        fn = self.func_scope()
        return fn is not None and ident in fn.locals

    def _open_scope(self):
        h = self.header.strip()
        m = _SCOPE_HEADER_CLASS_RE.search(h)
        if m and "=" not in h:
            self.stack.append(_Scope("class", m.group(1)))
            return
        m = _SCOPE_HEADER_MEMBER_RE.search(h)
        if m and not h.endswith("="):
            self.stack.append(_Scope("func", m.group(1)))
            return
        in_class = self.enclosing_class()
        in_func = self.enclosing_func_class()
        m = _SCOPE_HEADER_FUNC_RE.search(h)
        if m and in_func is None and m.group(1) not in _CTRL_KEYWORDS:
            # Function definition: member of the enclosing class, or free.
            self.stack.append(_Scope("func", in_class or ""))
            return
        # Plain block / lambda / initializer: inherit context.
        self.stack.append(_Scope("other"))

    def feed_line(self, line: str, probes=None):
        """Advance scope state over one stripped line. `probes` is a list of
        (column, callback) pairs; each callback fires when the walk reaches
        its column, so it observes the scope state AT that position — this
        is what attributes a write inside a one-line member function
        (`void set(T t) { field_ = t; }`) to that member, not to the
        surrounding class."""
        fn = self.func_scope()
        if fn is not None:
            m = _LOCAL_DECL_RE.match(line)
            if m:
                head = line[:m.start(1)]
                kw = head.strip().split("<")[0].split()[0] if head.strip() else ""
                if (kw not in _CTRL_KEYWORDS and "&" not in head
                        and "*" not in head and "return" not in head):
                    fn.locals.add(m.group(1))
                    # Multi-declarator line: `size_t a = 0, b = 0, dim = 0;`
                    # declares b and dim too. Blank bracketed regions first
                    # so call arguments don't look like declarators.
                    tail = line[m.end(1):]
                    prev = None
                    while prev != tail:
                        prev = tail
                        tail = re.sub(r"\([^()]*\)|\{[^{}]*\}|<[^<>]*>",
                                      "", tail)
                    for part in tail.split(",")[1:]:
                        pm = re.match(r"\s*(\w+)\s*(?:=(?!=)|;|$)", part)
                        if pm:
                            fn.locals.add(pm.group(1))
        probes = sorted(probes or [], key=lambda p: p[0])
        pi = 0
        for i, ch in enumerate(line):
            while pi < len(probes) and probes[pi][0] <= i:
                probes[pi][1]()
                pi += 1
            if ch == "{":
                self._open_scope()
                self.header = ""
            elif ch == "}":
                if self.stack:
                    self.stack.pop()
                self.header = ""
            elif ch == ";":
                self.header = ""
            else:
                self.header += ch
        while pi < len(probes):
            probes[pi][1]()
            pi += 1


def _collect_annotations(files: list[SourceFile]) -> list[Annotation]:
    out = []
    for sf in files:
        walker = _CppWalker(sf)
        for idx, line in enumerate(sf.lines, start=1):
            probes = []
            # clang-format may wrap a long owner list onto continuation
            # lines; join them so the owners group parses completely. The
            # continuation lines themselves never re-match (no macro name).
            text = line
            if re.search(r"ALGAS_(?:OWNED_BY|GUARDED_BY_EPOCH)\s*\([^)]*$",
                         text):
                j = idx  # sf.lines is 0-based: sf.lines[idx] is the next line
                while j < len(sf.lines):
                    text += " " + sf.lines[j].strip()
                    if ")" in sf.lines[j]:
                        break
                    j += 1
            for m in _ANNOT_RE.finditer(text):
                def record(m=m, idx=idx):
                    owners = tuple(
                        o.strip() for o in (m.group(3) or "").split(",")
                        if o.strip())
                    out.append(Annotation(
                        name=m.group(1), kind=m.group(2), owners=owners,
                        decl_file=sf.rel, decl_line=idx,
                        decl_class=walker.enclosing_class()))
                probes.append((m.start(), record))
            walker.feed_line(line, probes)
    return out


def _include_closure(root: str, files: list[SourceFile]) -> dict[str, set[str]]:
    """rel path -> set of repo-relative headers transitively included."""
    inc_re = re.compile(r'^\s*#\s*include\s+"([^"]+)"')
    direct: dict[str, set[str]] = {}
    by_rel = {sf.rel for sf in files}
    # Headers are included relative to src/ (target include dir) or the
    # including file's directory.
    for sf in files:
        deps = set()
        for raw in sf.raw_lines:
            m = inc_re.match(raw)
            if not m:
                continue
            inc = m.group(1)
            for cand in (os.path.join("src", inc),
                         os.path.normpath(
                             os.path.join(os.path.dirname(sf.rel), inc)),
                         inc):
                if cand in by_rel:
                    deps.add(cand)
                    break
        direct[sf.rel] = deps
    closure: dict[str, set[str]] = {}

    def visit(rel: str, seen: set[str]):
        if rel in closure:
            return closure[rel]
        seen.add(rel)
        acc = set(direct.get(rel, ()))
        for dep in list(acc):
            if dep not in seen:
                acc |= visit(dep, seen)
        closure[rel] = acc
        return acc

    for sf in files:
        visit(sf.rel, set())
    return closure


def _write_patterns(name: str) -> list[re.Pattern]:
    # The (?<!\w) guard keeps `entries` from matching inside
    # `candidate_entries`: after the receiver chain the char before the
    # field name is `.`/`>` (fine) or, with no receiver, must be a
    # non-identifier char.
    n = re.escape(name)
    recv = r"(?P<recv>(?:\w+(?:\.|->))*)"
    return [
        # receiver.name = / name op= ...  (captures the receiver chain)
        re.compile(
            rf"{recv}(?<!\w){n}\b\s*(?:\[[^\]]*\])?\s*"
            rf"(?:=(?!=)|\+=|-=|\*=|/=|%=|\|=|&=|\^=|<<=|>>=)(?!=)"),
        re.compile(rf"(?:\+\+|--)\s*{recv}(?<!\w){n}\b"),
        re.compile(rf"{recv}(?<!\w){n}\b\s*(?:\+\+|--)"),
        re.compile(rf"{recv}(?<!\w){n}\b\s*\.\s*(?:{_MUTATORS})\s*\("),
    ]


def _check_ownership(files: list[SourceFile],
                     annots: list[Annotation],
                     closure: dict[str, set[str]]) -> list[Violation]:
    out = []
    compiled = [(a, _write_patterns(a.name)) for a in annots]
    for sf in files:
        relevant = [
            (a, pats) for a, pats in compiled
            if a.decl_file == sf.rel or a.decl_file in closure.get(sf.rel, ())]
        if not relevant:
            continue
        walker = _CppWalker(sf)
        for idx, line in enumerate(sf.lines, start=1):
            probes = []
            for a, pats in relevant:
                if a.decl_file == sf.rel and a.decl_line == idx:
                    continue  # the annotated declaration itself
                hit = None
                for pat in pats:
                    m = pat.search(line)
                    if m:
                        hit = m
                        break
                if not hit:
                    continue

                def check(a=a, hit=hit, idx=idx):
                    recv = hit.groupdict().get("recv") or ""
                    base = re.match(r"\w+", recv)
                    base_ident = base.group(0) if base else None
                    # A write into a function-local value is construction of
                    # a not-yet-published object, not a shared-state write.
                    if base_ident and walker.is_local_value(base_ident):
                        return
                    # Bare-name write to a function-local that merely shares
                    # the annotated field's name.
                    if base_ident is None and walker.is_local_value(a.name):
                        return
                    writer = walker.enclosing_func_class()
                    if a.kind == "IMMUTABLE_AFTER_PUBLISH":
                        allowed = writer is not None and writer == a.decl_class
                    else:
                        allowed = writer is not None and writer in a.owners
                    if allowed or sf.suppressed("ownership", idx):
                        return
                    where = (f"member function of `{writer}`" if writer
                             else "free function or namespace scope")
                    if a.kind == "IMMUTABLE_AFTER_PUBLISH":
                        expect = ("only function-local construction may "
                                  "write it (ALGAS_IMMUTABLE_AFTER_PUBLISH)")
                    else:
                        expect = ("owned by " + ", ".join(
                            f"`{o}`" for o in a.owners) +
                            f" (ALGAS_{a.kind})")
                    out.append(Violation(
                        "ownership", sf.rel, idx,
                        f"write to `{a.name}` "
                        f"({a.decl_file}:{a.decl_line}) from {where}; "
                        f"{expect}"))
                probes.append((hit.start(), check))
            walker.feed_line(line, probes)
    return out


# --------------------------------------------------------------------------
# Driver.
# --------------------------------------------------------------------------

def _gather(root: str, dirs=LINT_DIRS) -> list[str]:
    rels = []
    for d in dirs:
        top = os.path.join(root, d)
        if not os.path.isdir(top):
            continue
        for dirpath, _dirnames, filenames in os.walk(top):
            for fn in sorted(filenames):
                if not fn.endswith(EXTS):
                    continue
                rel = os.path.relpath(os.path.join(dirpath, fn), root)
                rel = rel.replace(os.sep, "/")
                if any(part in rel for part in EXCLUDE_PARTS):
                    continue
                rels.append(rel)
    return sorted(rels)


def lint_files(root: str, rels: list[str]) -> list[Violation]:
    files = [SourceFile.load(root, rel) for rel in rels]
    violations: list[Violation] = []
    for sf in files:
        for idx in sf.missing_reason:
            violations.append(Violation(
                "ownership", sf.rel, idx,
                "lint directive without a justification — write "
                "`// lint: <kind> <why>`"))
        violations += _check_patterns(sf)
        violations += _check_unordered_iter(sf)
    annots = _collect_annotations(files)
    closure = _include_closure(root, files)
    violations += _check_ownership(files, annots, closure)
    violations.sort(key=lambda v: (v.path, v.line, v.rule))
    return violations


def self_test(fixture_dir: str) -> int:
    """Each fixture declares `// expect-lint: rule-a rule-b` (or `none`) on
    its first line; the fixture must trip exactly those rules."""
    expect_re = re.compile(r"//\s*expect-lint:\s*(.+)")
    failures = 0
    # Walk, don't listdir: path-scoped rules (deadline-clock) need fixtures
    # that live at the guarded path, e.g. fixtures/src/core/<name>.cpp.
    names = []
    for dirpath, _dirnames, filenames in os.walk(fixture_dir):
        for fn in filenames:
            if fn.endswith(EXTS):
                rel = os.path.relpath(os.path.join(dirpath, fn), fixture_dir)
                names.append(rel.replace(os.sep, "/"))
    names.sort()
    if not names:
        print(f"algas_lint: no fixtures in {fixture_dir}", file=sys.stderr)
        return 2
    for fn in names:
        path = os.path.join(fixture_dir, fn)
        with open(path, encoding="utf-8") as f:
            first = f.readline()
        m = expect_re.search(first)
        if not m:
            print(f"FAIL {fn}: missing `// expect-lint:` header")
            failures += 1
            continue
        expected = set(m.group(1).split())
        expected.discard("none")
        got_v = lint_files(fixture_dir, [fn])
        got = {v.rule for v in got_v}
        if got == expected:
            print(f"ok   {fn}: {sorted(expected) or ['clean']}")
        else:
            failures += 1
            print(f"FAIL {fn}: expected {sorted(expected)}, got {sorted(got)}")
            for v in got_v:
                print(f"     {v}")
    if failures:
        print(f"algas_lint self-test: {failures}/{len(names)} fixtures FAILED")
        return 1
    print(f"algas_lint self-test: {len(names)} fixtures ok")
    return 0


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(prog="algas_lint", add_help=True)
    ap.add_argument("--root", default=None,
                    help="repo root (default: two levels above this script)")
    ap.add_argument("--self-test", action="store_true",
                    help="run the seeded-violation fixtures")
    ap.add_argument("--list-rules", action="store_true")
    args = ap.parse_args(argv)

    here = os.path.dirname(os.path.abspath(__file__))
    if args.list_rules:
        for rule, desc in RULES.items():
            print(f"{rule:15} {desc}")
        return 0
    if args.self_test:
        return self_test(os.path.join(here, "fixtures"))

    root = os.path.abspath(args.root or os.path.join(here, "..", ".."))
    rels = _gather(root)
    if not rels:
        print(f"algas_lint: nothing to lint under {root}", file=sys.stderr)
        return 2
    violations = lint_files(root, rels)
    for v in violations:
        print(v)
    n = len(violations)
    print(f"algas_lint: {len(rels)} files, "
          f"{n} violation{'s' if n != 1 else ''}")
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
