// recall_gate — the quantized-storage precision gate.
//
// Quantized scoring (f16/int8 rows) is deliberately NOT bitwise-equal to
// the f32 seed, so the usual byte-identity tests cannot protect it. This
// binary measures what the codecs actually cost: it runs the Fig 10/11
// ALGAS configuration (batch 16, L 128, 4 CTAs, beam extend) once per
// storage codec on the same dataset + ground truth and reports recall@10
// per codec as JSON. scripts/check_recall.py compares that JSON against
// the committed bench/recall_baseline.json and fails when f32 drifts at
// all or a quantized codec drops more than its pinned epsilon.
//
// Knobs (all environment, same semantics as the benches):
//   ALGAS_SCALE        dataset size multiplier (CI gate uses 0.05)
//   ALGAS_QUERIES      queries per codec run   (CI gate uses 40)
//   ALGAS_DATASETS     first listed name is the gate dataset (default sift)
//   ALGAS_CACHE_DIR    dataset/graph cache (graph keys are codec-suffixed)
//   ALGAS_RECALL_OUT   output JSON path (default "BENCH_recall.json")
//
// Ground truth is loaded/computed at f32 BEFORE quantizing, so recall
// measures the codec's loss against exact neighbors — quantizing first
// would grade the codec against itself.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/env.hpp"
#include "core/engine.hpp"
#include "dataset/registry.hpp"
#include "graph/builder.hpp"

using namespace algas;

namespace {

/// The Fig 10/11 comparison configuration (bench_common::algas_config with
/// topk 10 so the reported recall is recall@10, the paper's headline).
core::AlgasConfig gate_config() {
  core::AlgasConfig cfg;
  cfg.search.topk = 10;
  cfg.search.candidate_len = 128;
  cfg.search.beam_width = 4;
  cfg.search.offset_beam = 24;
  cfg.slots = 16;
  cfg.host_threads = 1;
  cfg.n_parallel = 4;
  cfg.host_sync = core::HostSync::kPollMirrored;
  return cfg;
}

struct CodecResult {
  StorageCodec codec = StorageCodec::kF32;
  double recall = 0.0;
  double mean_latency_us = 0.0;
  unsigned long long pcie_bytes = 0;
  std::size_t smem_per_block = 0;
};

}  // namespace

int main() {
  const RuntimeOptions opts = RuntimeOptions::from_env();
  std::string raw = opts.datasets;
  if (raw.empty()) raw = "sift";
  const std::string ds_name = raw.substr(0, raw.find(','));

  BuildConfig build_cfg;  // bench_build_config(): shared graph-cache keys
  build_cfg.degree = 32;
  build_cfg.ef_construction = 64;

  const StorageCodec codecs[] = {StorageCodec::kF32, StorageCodec::kF16,
                                 StorageCodec::kInt8};
  std::vector<CodecResult> results;
  std::size_t n_base = 0, n_queries = 0, dim = 0;
  for (const StorageCodec codec : codecs) {
    // Fresh load per codec: ground truth comes from the f32 cache, then
    // the codec re-encodes the rows and the graph is built (or loaded from
    // its codec-suffixed cache entry) against the quantized scores.
    Dataset ds = load_bench_dataset(ds_name);
    ds.set_storage(codec);
    const Graph g = load_or_build_graph(GraphKind::kCagra, ds, build_cfg).graph;
    core::AlgasEngine engine(ds, g, gate_config());
    const std::size_t nq = std::min(
        opts.queries == 0 ? ds.num_queries() : opts.queries, ds.num_queries());
    const auto rep = engine.run_closed_loop(nq);

    CodecResult r;
    r.codec = codec;
    r.recall = rep.recall;
    r.mean_latency_us = rep.summary.mean_service_us;
    r.pcie_bytes = rep.pcie_bytes;
    r.smem_per_block = engine.layout().total_bytes();
    results.push_back(r);
    n_base = ds.num_base();
    n_queries = rep.summary.queries;
    dim = ds.dim();
    std::printf("%s: storage %-4s | recall@10 %.6f | latency mean %.1fus | "
                "smem/block %zuB | pcie %llu B\n",
                ds_name.c_str(), storage_codec_name(codec), r.recall,
                r.mean_latency_us, r.smem_per_block, r.pcie_bytes);
  }

  const std::string out_path = RuntimeOptions::from_env().recall_out;
  std::ofstream out(out_path, std::ios::trunc);
  if (!out) throw std::runtime_error("cannot write " + out_path);
  out.setf(std::ios::fixed);
  out << "{\n"
      << "  \"bench\": \"recall_gate\",\n"
      << "  \"dataset\": \"" << ds_name << "\",\n"
      << "  \"n_base\": " << n_base << ",\n"
      << "  \"dim\": " << dim << ",\n"
      << "  \"queries\": " << n_queries << ",\n"
      << "  \"topk\": 10,\n"
      << "  \"candidate_len\": 128,\n"
      << "  \"codecs\": {\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    out.precision(10);
    out << "    \"" << storage_codec_name(r.codec) << "\": {\n"
        << "      \"recall_at_10\": " << r.recall << ",\n";
    out.precision(3);
    out << "      \"mean_latency_us\": " << r.mean_latency_us << ",\n"
        << "      \"smem_per_block\": " << r.smem_per_block << ",\n"
        << "      \"pcie_bytes\": " << r.pcie_bytes << "\n"
        << "    }" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  },\n  \"end\": true\n}\n";
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
