// algas_cli — operational front-end for the library.
//
//   algas_cli gen    --name sift --n 20000 --q 200 --out ds.abin
//   algas_cli gt     --dataset ds.abin --k 100 [--threads N] --out ds.abin
//   algas_cli import --name my --base b.fvecs --query q.fvecs
//                    [--gt gt.ivecs] [--metric l2|cosine|ip] --out ds.abin
//   algas_cli build  --dataset ds.abin --kind nsw|cagra --degree 32
//                    [--ef 64] [--storage f32|f16|int8] [--threads N]
//                    [--batch N] --out graph.agr
//                    (--threads 0 = ALGAS_BUILD_THREADS, then hardware; the
//                    graph is byte-identical for any thread count)
//   algas_cli stats  --dataset ds.abin [--graph graph.agr]
//   algas_cli search --dataset ds.abin --graph graph.agr [--engine algas|
//                    cagra|ganns|ivf] [--topk 16] [--list 128] [--slots 16]
//                    [--nparallel 4] [--beam 4] [--queries N] [--sync
//                    mirrored|naive|blocking] [--nprobe 8]
//                    [--storage f32|f16|int8]  (base-row codec; see DESIGN.md)
//                    [--trace out.json]  (SimTrace timeline; open in Perfetto)
//                    (--index idx.amx replaces --graph: serve a mutable-index
//                    snapshot, tombstones excluded from results)
//                    [--shards K]  (scatter-gather over K simulated devices;
//                    per-shard graphs are built from --degree/--ef/--threads,
//                    so --graph is not needed) [--fanout F] (probe only the
//                    F closest shards; 0 = all) [--router-centroids 8]
//                    [--filter cat=K | ts<T]  (serve only rows whose
//                    category equals K / timestamp is below T; needs a
//                    dataset with attributes. The engine filters DURING
//                    traversal with a selectivity-widened candidate list
//                    and reports recall against filtered ground truth.)
//   algas_cli insert --dataset ds.abin --rows new.fvecs
//                    [--index idx.amx | --graph graph.agr]  (start point;
//                    neither = bootstrap from an empty dataset)
//                    [--degree 32] [--ef 64] [--batch N] [--threads N]
//                    [--out-index idx.amx] [--out-dataset ds.abin]
//                    (outputs default to updating --index / --dataset
//                    in place; both files must travel together)
//   algas_cli delete --dataset ds.abin --index idx.amx --ids 3,17,42
//                    [--compact 1] [--out-index ...] [--out-dataset ...]
//   algas_cli serve  --dataset ds.abin [--arrival poisson|bursty]
//                    [--rate 1000] [--burst-rate 0] [--deadline-us 0]
//                    [--capacity N] [--policy reject|drop-oldest]
//                    [--high-priority 0.0] [--queries N] [--seed 1]
//                    [--shards 1] [--topk 16] [--list 128] [--slots 16]
//                    [--nparallel 4] [--beam 4] [--hosts 1]
//                    [--degree 32] [--ef 64] [--threads N]
//                    [--filter cat=K | ts<T]  (as in search)
//                    (open-loop run: queries arrive on the generated
//                    schedule; --capacity bounds the host queue and
//                    --deadline-us sheds/evicts late queries. Per-shard
//                    graphs are built from the construction flags.)
//
// Flag precedence follows the repo-wide rule (common/env.hpp): an explicit
// CLI flag wins, then the ALGAS_* environment variable, then the compiled
// default. Every command prints a short human-readable report to stdout.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "algas.hpp"

using namespace algas;

namespace {

/// Tiny --key value parser; flags are required unless a default is given.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i + 1 < argc; i += 2) {
      if (std::strncmp(argv[i], "--", 2) != 0) {
        throw std::invalid_argument(std::string("expected flag, got ") +
                                    argv[i]);
      }
      values_[argv[i] + 2] = argv[i + 1];
    }
    if (argc >= 3 && (argc - 2) % 2 != 0) {
      throw std::invalid_argument("flags must come in --key value pairs");
    }
  }

  std::string get(const std::string& key) const {
    auto it = values_.find(key);
    if (it == values_.end()) {
      throw std::invalid_argument("missing required flag --" + key);
    }
    return it->second;
  }

  std::string get_or(const std::string& key, const std::string& dflt) const {
    auto it = values_.find(key);
    return it == values_.end() ? dflt : it->second;
  }

  std::size_t get_size(const std::string& key, std::size_t dflt) const {
    auto it = values_.find(key);
    return it == values_.end()
               ? dflt
               : static_cast<std::size_t>(std::strtoull(
                     it->second.c_str(), nullptr, 10));
  }

  double get_double(const std::string& key, double dflt) const {
    auto it = values_.find(key);
    return it == values_.end() ? dflt
                               : std::strtod(it->second.c_str(), nullptr);
  }

 private:
  std::map<std::string, std::string> values_;
};

Metric parse_metric(const std::string& s) {
  if (s == "l2") return Metric::kL2;
  if (s == "cosine") return Metric::kCosine;
  if (s == "ip") return Metric::kInnerProduct;
  throw std::invalid_argument("unknown metric: " + s);
}

GraphKind parse_kind(const std::string& s) {
  if (s == "nsw") return GraphKind::kNsw;
  if (s == "cagra") return GraphKind::kCagra;
  throw std::invalid_argument("unknown graph kind: " + s);
}

/// Apply --storage to a freshly loaded dataset. Quantization happens after
/// load so cached ground truth stays f32-exact; recall then measures the
/// codec's loss (see DESIGN.md "Quantized storage and the recall gate").
/// Default comes from ALGAS_STORAGE (flag > env > "f32").
void apply_storage(Dataset& ds, const Args& args) {
  const std::string codec =
      args.get_or("storage", RuntimeOptions::from_env().storage);
  ds.set_storage(parse_storage_codec(codec));
}

sim::ArrivalKind parse_arrival(const std::string& s) {
  if (s == "poisson") return sim::ArrivalKind::kPoisson;
  if (s == "bursty") return sim::ArrivalKind::kBursty;
  throw std::invalid_argument("unknown arrival process: " + s);
}

core::ShedPolicy parse_policy(const std::string& s) {
  if (s == "reject") return core::ShedPolicy::kRejectNew;
  if (s == "drop-oldest") return core::ShedPolicy::kDropOldest;
  throw std::invalid_argument("unknown shed policy: " + s);
}

core::HostSync parse_sync(const std::string& s) {
  if (s == "mirrored") return core::HostSync::kPollMirrored;
  if (s == "naive") return core::HostSync::kPollNaive;
  if (s == "blocking") return core::HostSync::kBlocking;
  throw std::invalid_argument("unknown sync mode: " + s);
}

/// Build the --filter bitset over base rows: "cat=K" (category equality)
/// or "ts<T" (timestamp strictly below T). Returns nullptr when no filter
/// was requested. The bitset must outlive any engine configured with it —
/// callers keep the unique_ptr alive across the run.
std::unique_ptr<search::NodeBitset> parse_filter(const Dataset& ds,
                                                 const Args& args) {
  const std::string spec = args.get_or("filter", "");
  if (spec.empty()) return nullptr;
  if (!ds.has_attributes()) {
    throw std::invalid_argument(
        "--filter needs a dataset with attributes; regenerate it with "
        "`algas_cli gen` (synthetic datasets attach them automatically)");
  }
  auto bits = std::make_unique<search::NodeBitset>(ds.num_base());
  if (spec.rfind("cat=", 0) == 0) {
    const auto want = static_cast<std::uint32_t>(
        std::strtoul(spec.c_str() + 4, nullptr, 10));
    const auto& cats = ds.categories();
    for (std::size_t i = 0; i < cats.size(); ++i) {
      if (cats[i] == want) bits->set(static_cast<NodeId>(i));
    }
  } else if (spec.rfind("ts<", 0) == 0) {
    const auto limit = static_cast<std::uint32_t>(
        std::strtoul(spec.c_str() + 3, nullptr, 10));
    const auto& ts = ds.timestamps();
    for (std::size_t i = 0; i < ts.size(); ++i) {
      if (ts[i] < limit) bits->set(static_cast<NodeId>(i));
    }
  } else {
    throw std::invalid_argument("bad --filter (want cat=K or ts<T): " + spec);
  }
  return bits;
}

/// Score served results against predicate-restricted exact ground truth
/// (computed on the fly — the attached unfiltered gt does not apply under
/// a filter) and print the filtered-recall line.
void print_filtered_recall(const Dataset& ds,
                           const search::AcceptPredicate& accept,
                           const metrics::Collector& col, std::size_t topk) {
  const std::size_t accepted =
      accept.accepted_in_range(0, static_cast<NodeId>(ds.num_base()));
  const auto gt = compute_filtered_ground_truth(ds, topk, accept);
  double total = 0.0;
  std::size_t served = 0;
  for (const auto& r : col.records()) {
    if (!r.served()) continue;
    ++served;
    total += metrics::recall_against(
        {gt.data() + r.query_index * topk, topk}, r.results, topk);
  }
  std::printf("filter: %zu/%zu rows accepted (%.2f%%) | filtered recall@%zu "
              "%.4f over %zu served\n",
              accepted, ds.num_base(),
              100.0 * static_cast<double>(accepted) /
                  static_cast<double>(std::max<std::size_t>(ds.num_base(), 1)),
              topk, served == 0 ? 0.0 : total / static_cast<double>(served),
              served);
}

int cmd_gen(const Args& args) {
  const std::string name = args.get("name");
  SyntheticSpec spec;
  if (name == "sift") spec = sift_like_spec();
  else if (name == "gist") spec = gist_like_spec();
  else if (name == "glove") spec = glove_like_spec();
  else if (name == "nytimes") spec = nytimes_like_spec();
  else throw std::invalid_argument("unknown generator: " + name);
  spec.num_base = args.get_size("n", 20000);
  spec.num_queries = args.get_size("q", 200);
  const Dataset ds = make_synthetic(spec);
  save_dataset(ds, args.get("out"));
  std::printf("wrote %s: %s\n", args.get("out").c_str(),
              ds.describe().c_str());
  return 0;
}

int cmd_gt(const Args& args) {
  Dataset ds = load_dataset(args.get("dataset"));
  compute_ground_truth(ds, args.get_size("k", 100),
                       args.get_size("threads", 0));
  save_dataset(ds, args.get("out"));
  std::printf("attached gt@%zu: %s\n", ds.gt_k(), ds.describe().c_str());
  return 0;
}

int cmd_import(const Args& args) {
  const Dataset ds = load_texmex(
      args.get("name"), args.get("base"), args.get("query"),
      args.get_or("gt", ""), parse_metric(args.get_or("metric", "l2")));
  save_dataset(ds, args.get("out"));
  std::printf("imported %s: %s\n", args.get("out").c_str(),
              ds.describe().c_str());
  return 0;
}

int cmd_build(const Args& args) {
  Dataset ds = load_dataset(args.get("dataset"));
  apply_storage(ds, args);
  BuildConfig cfg;
  cfg.degree = args.get_size("degree", 32);
  cfg.ef_construction = args.get_size("ef", 64);
  // --threads/--batch default to the environment (flag > env > default).
  cfg.threads = args.get_size("threads", RuntimeOptions::from_env().build_threads);
  cfg.insert_batch = args.get_size("batch", cfg.insert_batch);
  const BuildReport report = build_graph(parse_kind(args.get("kind")), ds, cfg);
  const Graph& g = report.graph;
  g.save(args.get("out"));
  const auto stats = g.stats();
  std::printf("wrote %s: %zu nodes, avg degree %.1f, %.1f%% reachable\n",
              args.get("out").c_str(), g.num_nodes(), stats.avg_degree,
              100.0 * stats.reachable_fraction);
  std::printf("build: %.2fs wall | virtual %.1fms batched vs %.1fms serial "
              "(modeled %.0fx) | %zu batches | %zu distance evals\n",
              report.wall_build_s, report.virtual_build_ns / 1e6,
              report.serial_build_ns / 1e6, report.speedup(), report.batches,
              report.scored_points);
  return 0;
}

int cmd_stats(const Args& args) {
  const Dataset ds = load_dataset(args.get("dataset"));
  std::printf("dataset: %s\n", ds.describe().c_str());
  const std::string graph_path = args.get_or("graph", "");
  if (!graph_path.empty()) {
    const Graph g = Graph::load(graph_path);
    const auto stats = g.stats();
    std::printf("graph:   %zu nodes, degree %zu (avg %.1f, min %zu), "
                "entry %u, %.2f%% reachable\n",
                g.num_nodes(), g.degree(), stats.avg_degree,
                stats.min_degree, g.entry_point(),
                100.0 * stats.reachable_fraction);
  }
  return 0;
}

void print_report(const char* engine_name, const core::EngineReport& rep) {
  std::printf("%s: %zu queries | storage %s | recall %.4f | latency mean "
              "%.1fus p99 %.1fus | throughput %.0f qps | pcie txns %llu\n",
              engine_name, rep.summary.queries,
              storage_codec_name(rep.storage), rep.recall,
              rep.summary.mean_service_us, rep.summary.p99_service_us,
              rep.summary.throughput_qps,
              static_cast<unsigned long long>(rep.pcie_transactions));
}

/// BuildConfig from the shared construction flags (insert/delete/build).
BuildConfig parse_build_config(const Args& args) {
  BuildConfig cfg;
  cfg.degree = args.get_size("degree", 32);
  cfg.ef_construction = args.get_size("ef", 64);
  cfg.threads =
      args.get_size("threads", RuntimeOptions::from_env().build_threads);
  cfg.insert_batch = args.get_size("batch", cfg.insert_batch);
  return cfg;
}

/// Load the mutable index named by --index, or adopt --graph, or (neither)
/// bootstrap from an empty dataset. The dataset must be the one the
/// index/graph was built over — the loaders validate the row counts agree.
core::MutableIndex open_index(Dataset ds, const Args& args) {
  const std::string index_path = args.get_or("index", "");
  const std::string graph_path = args.get_or("graph", "");
  BuildConfig cfg = parse_build_config(args);
  if (!index_path.empty()) {
    return core::MutableIndex::load(index_path, std::move(ds), cfg);
  }
  if (!graph_path.empty()) {
    return core::MutableIndex(std::move(ds), Graph::load(graph_path), cfg);
  }
  return core::MutableIndex(std::move(ds), cfg);
}

int cmd_insert(const Args& args) {
  const std::string ds_path = args.get("dataset");
  core::MutableIndex idx = open_index(load_dataset(ds_path), args);

  std::size_t row_dim = 0;
  const std::vector<float> rows = read_fvecs(args.get("rows"), row_dim);
  if (row_dim != idx.dataset().dim() && idx.dataset().dim() != 0) {
    throw std::invalid_argument("row dim mismatch: rows are " +
                                std::to_string(row_dim) + "d, dataset is " +
                                std::to_string(idx.dataset().dim()) + "d");
  }
  const auto report = idx.insert(rows);
  std::printf("inserted %zu rows in %zu batches | %zu distance evals | "
              "virtual %.1fms batched vs %.1fms serial | now %zu published, "
              "%zu live\n",
              report.inserted, report.batches, report.scored_points,
              report.virtual_build_ns / 1e6, report.serial_build_ns / 1e6,
              idx.published(), idx.live());

  // The snapshot and the (now longer) dataset only make sense as a pair.
  const std::string out_index =
      args.get_or("out-index", args.get_or("index", "index.amx"));
  const std::string out_ds = args.get_or("out-dataset", ds_path);
  save_dataset(idx.dataset(), out_ds);
  idx.save(out_index);
  std::printf("wrote %s + %s (epoch %llu)\n", out_index.c_str(),
              out_ds.c_str(), static_cast<unsigned long long>(idx.epoch()));
  return 0;
}

int cmd_delete(const Args& args) {
  const std::string ds_path = args.get("dataset");
  core::MutableIndex idx = open_index(load_dataset(ds_path), args);

  std::size_t removed = 0, already = 0;
  const std::string ids = args.get("ids");
  for (std::size_t pos = 0; pos < ids.size();) {
    const std::size_t comma = std::min(ids.find(',', pos), ids.size());
    const NodeId v = static_cast<NodeId>(
        std::strtoull(ids.substr(pos, comma - pos).c_str(), nullptr, 10));
    (idx.remove(v) ? removed : already)++;
    pos = comma + 1;
  }
  std::printf("tombstoned %zu ids (%zu were already dead) | %zu live of "
              "%zu published\n",
              removed, already, idx.live(), idx.published());

  bool dataset_changed = false;
  if (args.get_size("compact", 0) != 0) {
    const auto rep = idx.compact();
    dataset_changed = rep.dropped > 0;
    std::printf("compacted: dropped %zu, %zu survivors, %zu rows "
                "re-selected\n",
                rep.dropped, rep.survivors, rep.patched);
  }

  // get_or, not get: a graph-opened delete has no --index to fall back on,
  // and C++ would evaluate (and throw from) the fallback eagerly.
  const std::string out_index =
      args.get_or("out-index", args.get_or("index", ""));
  if (out_index.empty()) {
    throw std::invalid_argument("delete needs --out-index (or --index)");
  }
  idx.save(out_index);
  std::printf("wrote %s (epoch %llu)\n", out_index.c_str(),
              static_cast<unsigned long long>(idx.epoch()));
  if (dataset_changed) {
    // Compaction remapped row ids, so the paired dataset must be rewritten.
    const std::string out_ds = args.get_or("out-dataset", ds_path);
    save_dataset(idx.dataset(), out_ds);
    std::printf("wrote %s (rows remapped by compaction)\n", out_ds.c_str());
  }
  return 0;
}

int cmd_search(const Args& args) {
  Dataset ds = load_dataset(args.get("dataset"));
  apply_storage(ds, args);
  if (!ds.has_ground_truth()) {
    std::printf("note: dataset has no ground truth; recall prints as 0 "
                "(run `algas_cli gt` first)\n");
  }
  const std::string engine = args.get_or("engine", "algas");
  const std::size_t topk = args.get_size("topk", 16);
  const std::size_t list = args.get_size("list", 128);
  const std::size_t slots = args.get_size("slots", 16);
  const std::size_t queries = args.get_size("queries", ds.num_queries());

  // --trace: explicit SimTrace sink, written once the run completes. Pure
  // observer — identical results and virtual time with or without it.
  const std::string trace_path = args.get_or("trace", "");
  sim::Tracer tracer;
  sim::Tracer* const trace = trace_path.empty() ? nullptr : &tracer;

  // --filter: attribute predicate applied during traversal. The bitset
  // lives here so it outlives whichever engine the run wires it into.
  const auto filter = parse_filter(ds, args);
  const search::AcceptPredicate accept{filter.get()};
  if (filter != nullptr && engine != "algas") {
    throw std::invalid_argument(
        "--filter is traversal-integrated and only serves the algas engine "
        "(the ivf post-filter baseline lives in bench_filtered)");
  }

  if (engine == "ivf") {
    if (trace) {
      std::printf("note: the ivf baseline is untraced; --trace ignored\n");
    }
    baselines::IvfConfig cfg;
    cfg.topk = topk;
    cfg.nprobe = args.get_size("nprobe", 8);
    cfg.batch_size = slots;
    baselines::IvfEngine e(ds, cfg);
    print_report("ivf", e.run_closed_loop(queries));
    return 0;
  }

  // --index: serve a mutable-index snapshot — same engine, but tombstoned
  // rows are excluded from results and the snapshot's graph is used.
  const std::string index_path = args.get_or("index", "");
  if (!index_path.empty()) {
    if (engine != "algas") {
      throw std::invalid_argument("--index only serves the algas engine");
    }
    core::MutableIndex idx = core::MutableIndex::load(
        index_path, std::move(ds), parse_build_config(args));
    core::AlgasConfig cfg;
    cfg.search.topk = topk;
    cfg.search.candidate_len = list;
    cfg.search.beam_width = args.get_size("beam", 4);
    cfg.search.accept = accept;
    cfg.slots = slots;
    cfg.n_parallel = args.get_size("nparallel", 0);
    cfg.host_threads = args.get_size("hosts", 1);
    cfg.host_sync = parse_sync(args.get_or("sync", "mirrored"));
    cfg.tracer = trace;
    std::printf("index: epoch %llu | %zu live of %zu published\n",
                static_cast<unsigned long long>(idx.epoch()), idx.live(),
                idx.published());
    const core::EngineReport rep = idx.serve(cfg, queries);
    print_report("algas", rep);
    if (filter != nullptr) {
      // Truth must honor the tombstones serve() conjoined in, or deleted
      // rows would count as misses.
      print_filtered_recall(idx.dataset(),
                            accept.with_tombstones(&idx.tombstones()),
                            rep.collector, topk);
    }
    if (trace) {
      trace->save(trace_path);
      std::printf("wrote trace %s (%llu events)\n", trace_path.c_str(),
                  static_cast<unsigned long long>(trace->events_recorded()));
    }
    return 0;
  }

  // --shards: scatter-gather over K simulated devices. Per-shard graphs
  // are built here (deterministically, from the shared build flags); a
  // monolithic --graph cannot be split, so the flag is ignored.
  const std::size_t shards = args.get_size("shards", 0);
  if (shards > 0) {
    if (engine != "algas") {
      throw std::invalid_argument("--shards only serves the algas engine");
    }
    core::ShardedConfig scfg;
    scfg.base.search.topk = topk;
    scfg.base.search.candidate_len = list;
    scfg.base.search.beam_width = args.get_size("beam", 4);
    scfg.base.search.accept = accept;
    scfg.base.slots = slots;
    scfg.base.n_parallel = args.get_size("nparallel", 0);
    scfg.base.host_threads = args.get_size("hosts", 1);
    scfg.base.host_sync = parse_sync(args.get_or("sync", "mirrored"));
    scfg.base.tracer = trace;
    scfg.shards = shards;
    scfg.fanout = args.get_size("fanout", 0);
    scfg.router_centroids = args.get_size("router-centroids", 8);
    scfg.build = parse_build_config(args);
    core::ShardedEngine e(ds, scfg);
    for (std::size_t s = 0; s < shards; ++s) {
      const auto r = e.partition().range(s);
      std::printf("shard %zu: rows [%u, %u) | %zu nodes\n", s, r.begin,
                  r.end, e.shard_graph(s).num_nodes());
    }
    const core::ShardedReport rep = e.run_closed_loop(queries);
    print_report("algas-sharded", rep.merged);
    if (filter != nullptr) {
      print_filtered_recall(ds, accept, rep.merged.collector, topk);
    }
    std::printf("scatter-gather: mean fanout %.2f | %zu merges "
                "(%.1fus busy) | host bus %llu txns, %llu bytes, %.1f%% "
                "busy\n",
                rep.mean_fanout, rep.merges, rep.merge_busy_ns / 1e3,
                static_cast<unsigned long long>(rep.bus_transactions),
                static_cast<unsigned long long>(rep.bus_bytes),
                100.0 * rep.bus_utilization);
    if (trace) {
      trace->save(trace_path);
      std::printf("wrote trace %s (%llu events)\n", trace_path.c_str(),
                  static_cast<unsigned long long>(trace->events_recorded()));
    }
    return 0;
  }

  const Graph g = Graph::load(args.get("graph"));
  if (engine == "algas") {
    core::AlgasConfig cfg;
    cfg.search.topk = topk;
    cfg.search.candidate_len = list;
    cfg.search.beam_width = args.get_size("beam", 4);
    cfg.search.accept = accept;
    cfg.slots = slots;
    cfg.n_parallel = args.get_size("nparallel", 0);
    cfg.host_threads = args.get_size("hosts", 1);
    cfg.host_sync = parse_sync(args.get_or("sync", "mirrored"));
    cfg.tracer = trace;
    core::AlgasEngine e(ds, g, cfg);
    std::printf("plan: %s\n", e.plan().describe().c_str());
    const core::EngineReport rep = e.run_closed_loop(queries);
    print_report("algas", rep);
    if (filter != nullptr) {
      print_filtered_recall(ds, accept, rep.collector, topk);
    }
  } else if (engine == "cagra") {
    baselines::StaticConfig cfg;
    cfg.search.topk = topk;
    cfg.search.candidate_len = list;
    cfg.batch_size = slots;
    cfg.n_parallel = args.get_size("nparallel", 4);
    cfg.tracer = trace;
    baselines::StaticBatchEngine e(ds, g, cfg);
    print_report("cagra", e.run_closed_loop(queries));
  } else if (engine == "ganns") {
    baselines::GannsConfig cfg;
    cfg.search.topk = topk;
    cfg.search.candidate_len = list;
    cfg.batch_size = slots;
    cfg.tracer = trace;
    baselines::GannsEngine e(ds, g, cfg);
    print_report("ganns", e.run_closed_loop(queries));
  } else {
    throw std::invalid_argument("unknown engine: " + engine);
  }
  if (trace) {
    trace->save(trace_path);
    std::printf("wrote trace %s (%llu events); open in "
                "https://ui.perfetto.dev or chrome://tracing\n",
                trace_path.c_str(),
                static_cast<unsigned long long>(trace->events_recorded()));
  }
  return 0;
}

int cmd_serve(const Args& args) {
  Dataset ds = load_dataset(args.get("dataset"));
  apply_storage(ds, args);
  if (!ds.has_ground_truth()) {
    std::printf("note: dataset has no ground truth; recall prints as 0 "
                "(run `algas_cli gt` first)\n");
  }

  core::ServingConfig cfg;
  cfg.arrival.kind = parse_arrival(args.get_or("arrival", "poisson"));
  cfg.arrival.rate_qps = args.get_double("rate", 1000.0);
  cfg.arrival.burst_rate_qps = args.get_double("burst-rate", 0.0);
  cfg.arrival.seed = args.get_size("seed", 1);
  cfg.deadline_us = args.get_double("deadline-us", 0.0);
  cfg.high_priority_fraction = args.get_double("high-priority", 0.0);
  cfg.num_queries = args.get_size("queries", 0);

  const auto filter = parse_filter(ds, args);
  const search::AcceptPredicate accept{filter.get()};

  core::AlgasConfig& base = cfg.sharded.base;
  base.search.topk = args.get_size("topk", 16);
  base.search.candidate_len = args.get_size("list", 128);
  base.search.beam_width = args.get_size("beam", 4);
  base.search.accept = accept;
  base.slots = args.get_size("slots", 16);
  base.n_parallel = args.get_size("nparallel", 0);
  base.host_threads = args.get_size("hosts", 1);
  base.host_sync = parse_sync(args.get_or("sync", "mirrored"));
  // An unbounded queue is the closed-loop default; serving mode (the
  // AdmissionActor front-end) activates only when --capacity is given.
  base.admission.capacity =
      args.get_size("capacity", core::kUnboundedQueue);
  base.admission.policy = parse_policy(args.get_or("policy", "reject"));

  cfg.sharded.shards = args.get_size("shards", 1);
  cfg.sharded.fanout = args.get_size("fanout", 0);
  cfg.sharded.router_centroids = args.get_size("router-centroids", 8);
  cfg.sharded.build = parse_build_config(args);

  core::ServingEngine e(ds, cfg);
  const core::ServingReport rep = e.run();
  const metrics::RunSummary& s = rep.sharded.merged.summary;
  char deadline_buf[32] = "none";
  if (cfg.deadline_us > 0.0) {
    std::snprintf(deadline_buf, sizeof deadline_buf, "%.0fus",
                  cfg.deadline_us);
  }
  char queue_buf[32] = "unbounded";
  if (base.admission.bounded()) {
    std::snprintf(queue_buf, sizeof queue_buf, "%zu",
                  base.admission.capacity);
  }
  std::printf("workload: %s arrivals, %zu queries, offered %.0f qps, "
              "deadline %s, queue %s/%s\n",
              sim::arrival_kind_name(cfg.arrival.kind), rep.arrivals.size(),
              rep.offered_qps, deadline_buf, queue_buf,
              core::shed_policy_name(base.admission.policy));
  print_report("serve", rep.sharded.merged);
  if (filter != nullptr) {
    print_filtered_recall(ds, accept, rep.sharded.merged.collector,
                          base.search.topk);
  }
  std::printf("serving: goodput %.0f qps | shed %.1f%% (%zu queue, %zu "
              "deadline, %zu evicted) | deadline miss %.1f%% | latency "
              "p99 %.1fus p999 %.1fus\n",
              rep.goodput_qps, 100.0 * rep.shed_rate, s.shed_queue,
              s.shed_deadline, s.evicted, 100.0 * rep.deadline_miss_rate,
              rep.p99_latency_us, rep.p999_latency_us);
  return 0;
}

void usage() {
  std::printf(
      "usage: algas_cli <gen|gt|import|build|stats|search|insert|delete|"
      "serve> --key value ...\n"
      "see the header comment of tools/algas_cli.cpp for full flag lists\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string cmd = argv[1];
  try {
    Args args(argc, argv);
    if (cmd == "gen") return cmd_gen(args);
    if (cmd == "gt") return cmd_gt(args);
    if (cmd == "import") return cmd_import(args);
    if (cmd == "build") return cmd_build(args);
    if (cmd == "stats") return cmd_stats(args);
    if (cmd == "search") return cmd_search(args);
    if (cmd == "insert") return cmd_insert(args);
    if (cmd == "delete") return cmd_delete(args);
    if (cmd == "serve") return cmd_serve(args);
    usage();
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
