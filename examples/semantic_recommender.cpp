// Semantic recommender — the recommendation-engine scenario from the
// paper's introduction: items live in a cosine embedding space (GloVe-like,
// 200-d) and we recommend the nearest items to what a user just viewed,
// at interactive latency, from a stream of per-user requests.
//
// Demonstrates: cosine metric end-to-end, NSW index, ALGAS serving with
// small batches, and using result distances as similarity scores.
#include <cstdio>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "dataset/ground_truth.hpp"
#include "dataset/synthetic.hpp"
#include "graph/builder.hpp"

using namespace algas;

namespace {

/// Human-readable pseudo-catalog: item id -> "category-###" label derived
/// from the generator's cluster structure (stable across runs).
std::string item_label(NodeId id) {
  static const char* kCategories[] = {"film", "song", "book", "game",
                                      "podcast", "show"};
  return std::string(kCategories[id % 6]) + "-" + std::to_string(id);
}

}  // namespace

int main() {
  // Item embeddings: GloVe-like, unit-normalized, cosine similarity.
  SyntheticSpec spec = glove_like_spec();
  spec.num_base = 30000;
  spec.num_queries = 48;  // 48 "recently viewed" seed items
  Dataset ds = make_synthetic(spec);
  compute_ground_truth(ds, 16);
  std::printf("catalog: %s\n", ds.describe().c_str());

  BuildConfig build;
  build.degree = 32;
  const Graph graph = build_graph(GraphKind::kNsw, ds, build).graph;

  core::AlgasConfig cfg;
  cfg.search.topk = 5;
  cfg.search.candidate_len = 64;
  cfg.slots = 8;  // small batch: requests trickle in per user
  core::AlgasEngine engine(ds, graph, cfg);

  const auto report = engine.run_closed_loop(48);

  std::printf("\nrecommendations (cosine similarity = 1 - distance):\n");
  for (std::size_t u = 0; u < 3; ++u) {
    const auto& rec = report.collector.records()[u];
    std::printf("user %zu (viewed item like query %zu):\n", u,
                rec.query_index);
    for (const auto& kv : rec.results) {
      std::printf("  %-14s similarity %.3f\n", item_label(kv.id()).c_str(),
                  1.0f - kv.dist);
    }
  }

  std::printf(
      "\nserved %zu users | recall@5 %.3f | p99 latency %.1f us "
      "(virtual)\n",
      report.summary.queries, report.recall, report.summary.p99_service_us);
  return 0;
}
