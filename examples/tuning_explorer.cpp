// Tuning explorer — interactively inspects the adaptive tuning scheme
// (§IV-C): for a grid of slot counts, candidate-list lengths and dataset
// dimensions it prints the plan the tuner would pick on the RTX A6000, and
// for infeasible corners, why. Useful for understanding how shared memory
// and residency limits shape N_parallel before running anything.
#include <cstdio>

#include "core/tuner.hpp"
#include "simgpu/device_props.hpp"

using namespace algas;

int main() {
  const auto dev = sim::DeviceProps::rtx_a6000();
  std::printf("device: %s — %zu SMs x %zu blocks, %zu KiB smem/SM, warp %zu\n\n",
              dev.name.c_str(), dev.num_sms, dev.max_blocks_per_sm,
              dev.shared_mem_per_sm / 1024, dev.warp_size);

  std::printf("%6s %6s %6s | %10s %10s %12s %12s\n", "slots", "L", "dim",
              "N_parallel", "blocks/SM", "smem/block", "verdict");

  for (std::size_t slots : {4, 16, 64, 256}) {
    for (std::size_t L : {64, 256, 1024}) {
      for (std::size_t dim : {128, 960}) {
        core::TuneInput in;
        in.device = dev;
        in.slots = slots;
        in.layout.candidate_entries = L;
        in.layout.expand_entries = 128;
        in.layout.dim = dim;
        const auto plan = core::tune(in);
        if (plan.ok) {
          std::printf("%6zu %6zu %6zu | %10zu %10zu %10zuB %12s\n", slots, L,
                      dim, plan.n_parallel, plan.blocks_per_sm,
                      plan.shared_mem_per_block, "ok");
        } else {
          std::printf("%6zu %6zu %6zu | %10s %10s %11s %12s\n", slots, L, dim,
                      "-", "-", "-", "infeasible");
          std::printf("       reason: %s\n", plan.reason.c_str());
        }
      }
    }
  }

  std::printf(
      "\nreading the table: N_parallel falls as slots grow (block "
      "residency)\nand as L/dim grow (shared memory); past the device "
      "limits the tuner\nrefuses rather than silently timeslicing.\n");
  return 0;
}
