// Quickstart: build a dataset, index it, start the ALGAS engine, run a
// small batch of queries, and print results + recall.
//
//   ./examples/quickstart
//
// Uses a small synthetic corpus so it finishes in seconds. The same five
// calls work on any Dataset (including ones loaded from fvecs files).
#include <cstdio>

#include "core/engine.hpp"
#include "dataset/ground_truth.hpp"
#include "dataset/synthetic.hpp"
#include "graph/builder.hpp"

using namespace algas;

int main() {
  // 1. Data: 20k SIFT-like vectors + 64 queries (swap in read_fvecs() for
  //    real data).
  SyntheticSpec spec = sift_like_spec();
  spec.num_base = 20000;
  spec.num_queries = 64;
  Dataset ds = make_synthetic(spec);
  compute_ground_truth(ds, 16);  // optional: only needed to report recall
  std::printf("dataset: %s\n", ds.describe().c_str());

  // 2. Index: a CAGRA-style fixed out-degree graph. build_graph returns a
  //    BuildReport: the graph plus what construction cost (host wall time,
  //    the cost model's batched-vs-serial virtual times, distance evals).
  BuildConfig build;
  build.degree = 32;
  build.ef_construction = 64;
  build.threads = 0;  // 0 = ALGAS_BUILD_THREADS, then hardware concurrency
  const BuildReport built = build_graph(GraphKind::kCagra, ds, build);
  const Graph& graph = built.graph;
  const auto stats = graph.stats();
  std::printf("graph: avg degree %.1f, %.1f%% reachable\n", stats.avg_degree,
              100.0 * stats.reachable_fraction);
  std::printf(
      "build: %.2fs wall | %.1fms virtual (batched) | modeled speedup %.0fx "
      "| %zu distance evals\n",
      built.wall_build_s, built.virtual_build_ns / 1e6, built.speedup(),
      built.scored_points);

  // 3. Engine: 16 dynamic-batching slots, beam extend on, adaptive tuning.
  core::AlgasConfig cfg;
  cfg.search.topk = 10;
  cfg.search.candidate_len = 128;
  cfg.slots = 16;
  core::AlgasEngine engine(ds, graph, cfg);
  std::printf("tuner: %s\n", engine.plan().describe().c_str());

  // 4. Search all 64 queries (closed loop).
  const auto report = engine.run_closed_loop(64);

  // 5. Results.
  std::printf("\nquery 0 top-10:\n");
  for (const auto& kv : report.collector.records().front().results) {
    std::printf("  id=%-8u dist=%.4f\n", kv.id(), kv.dist);
  }
  std::printf(
      "\n%zu queries | recall@10 %.3f | mean latency %.1f us | "
      "throughput %.0f qps (virtual time)\n",
      report.summary.queries, report.recall, report.summary.mean_service_us,
      report.summary.throughput_qps);
  return 0;
}
