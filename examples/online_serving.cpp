// Online low-latency serving — the scenario the paper's introduction
// motivates: queries arrive as a Poisson stream and end-to-end latency
// (queueing included) is what users feel. Compares ALGAS's dynamic
// batching against a CAGRA-style static batcher at the same arrival rate:
// the static batcher must *wait to fill a batch*, dynamic slots start
// immediately.
#include <cmath>
#include <cstdio>
#include <vector>

#include "baselines/static_engine.hpp"
#include "common/rng.hpp"
#include "core/engine.hpp"
#include "dataset/ground_truth.hpp"
#include "dataset/synthetic.hpp"
#include "graph/builder.hpp"

using namespace algas;

namespace {

std::vector<core::PendingQuery> poisson_arrivals(std::size_t n,
                                                 double rate_qps,
                                                 std::uint64_t seed) {
  Rng rng(seed);
  std::vector<core::PendingQuery> arrivals;
  arrivals.reserve(n);
  double t_ns = 0.0;
  const double mean_gap_ns = 1e9 / rate_qps;
  for (std::size_t i = 0; i < n; ++i) {
    double u = rng.next_double();
    if (u < 1e-12) u = 1e-12;
    t_ns += -mean_gap_ns * std::log(u);  // exponential inter-arrival
    arrivals.push_back({i % 256, t_ns});
  }
  return arrivals;
}

}  // namespace

int main() {
  SyntheticSpec spec = sift_like_spec();
  spec.num_base = 20000;
  spec.num_queries = 256;
  Dataset ds = make_synthetic(spec);
  compute_ground_truth(ds, 16);
  const Graph graph = build_graph(GraphKind::kCagra, ds, BuildConfig{}).graph;

  std::printf("online serving on %s\n\n", ds.describe().c_str());
  std::printf("%10s %14s | %9s %9s %9s | %9s %9s %9s\n", "rate", "", "dyn p50",
              "dyn p95", "dyn p99", "stat p50", "stat p95", "stat p99");

  for (double rate : {20000.0, 50000.0, 100000.0}) {
    const auto arrivals = poisson_arrivals(2000, rate, 99);

    core::AlgasConfig dcfg;
    dcfg.search.topk = 10;
    dcfg.search.candidate_len = 128;
    dcfg.slots = 16;
    core::AlgasEngine dynamic(ds, graph, dcfg);
    const auto rd = dynamic.run(arrivals);

    baselines::StaticConfig scfg;
    scfg.search.topk = 10;
    scfg.search.candidate_len = 128;
    scfg.batch_size = 16;
    scfg.n_parallel = 4;
    baselines::StaticBatchEngine static_engine(ds, graph, scfg);
    const auto rs = static_engine.run(arrivals);

    // End-to-end latency (arrival -> result), the online-serving metric.
    std::printf("%7.0f/s %14s | %8.1fus %8.1fus %8.1fus | %8.1fus %8.1fus %8.1fus\n",
                rate, "", rd.summary.p50_latency_us, rd.summary.p95_latency_us,
                rd.summary.p99_latency_us, rs.summary.p50_latency_us,
                rs.summary.p95_latency_us, rs.summary.p99_latency_us);
  }

  std::printf(
      "\nstatic batching waits to fill each batch, so its tail latency "
      "explodes at low arrival rates;\ndynamic slots dispatch on arrival.\n");
  return 0;
}
