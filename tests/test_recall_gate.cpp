// Recall-gate semantics on a tiny deterministic dataset: pinned recall@10
// per storage codec under the Fig 10/11 engine configuration, plus the
// ordering the CI gate (scripts/check_recall.py) relies on — quantization
// only ever loses recall, and the loss is bounded and reproducible.
//
// The pins are exact to double precision (EXPECT_DOUBLE_EQ): the sim is
// deterministic, so the measured recall is a pure function of the dataset
// seed, the graph build, and the codec. A pin moving means the scoring or
// search behaviour changed — the in-tree analogue of the CI gate failing.
#include <gtest/gtest.h>

#include <map>

#include "core/engine.hpp"
#include "test_util.hpp"

namespace algas {
namespace {

/// The Fig 10/11 configuration the CI gate (tools/recall_gate) runs.
core::AlgasConfig gate_config() {
  core::AlgasConfig cfg;
  cfg.search.topk = 10;
  cfg.search.candidate_len = 128;
  cfg.search.beam_width = 4;
  cfg.search.offset_beam = 24;
  cfg.slots = 16;
  cfg.host_threads = 1;
  cfg.n_parallel = 4;
  cfg.host_sync = core::HostSync::kPollMirrored;
  return cfg;
}

double codec_recall(StorageCodec codec, Metric metric = Metric::kL2) {
  const auto& world = algas::testing::tiny_world(metric);
  Dataset ds = world.ds;  // copy: the shared fixture must stay f32
  ds.set_storage(codec);
  core::AlgasEngine engine(ds, world.cagra, gate_config());
  return engine.run_closed_loop(80).recall;
}

TEST(RecallGate, PinnedRecallPerCodec) {
  const double f32 = codec_recall(StorageCodec::kF32);
  const double f16 = codec_recall(StorageCodec::kF16);
  const double i8 = codec_recall(StorageCodec::kInt8);

  // Exact pins — see the header comment before "fixing" one. This tiny
  // 16-dim dataset (tight clusters, spread 0.16) is deliberately HARDER on
  // quantization than the CI gate's 128-dim sift config: int8's per-row
  // scale error is a larger fraction of the inter-point distances, so the
  // int8 drop here (0.01875) sits above the CI epsilon (0.01) by design —
  // a visible quantization cost is what makes the pin meaningful.
  EXPECT_DOUBLE_EQ(f32, 1.0);
  EXPECT_DOUBLE_EQ(f16, 1.0);
  EXPECT_DOUBLE_EQ(i8, 0.98125);

  // Ordering the gate depends on: quantization only loses recall, a
  // narrower codec loses at least as much, and the loss stays bounded.
  EXPECT_LE(f16, f32);
  EXPECT_LE(i8, f16);
  EXPECT_LE(f32 - i8, 0.02);
}

TEST(RecallGate, RunsAreReproduciblePerCodec) {
  for (StorageCodec codec : {StorageCodec::kF32, StorageCodec::kF16,
                             StorageCodec::kInt8}) {
    EXPECT_EQ(codec_recall(codec), codec_recall(codec))
        << storage_codec_name(codec);
  }
}

TEST(RecallGate, CosineCodecsPinnedAndOrdered) {
  const double f32 = codec_recall(StorageCodec::kF32, Metric::kCosine);
  const double f16 = codec_recall(StorageCodec::kF16, Metric::kCosine);
  const double i8 = codec_recall(StorageCodec::kInt8, Metric::kCosine);
  EXPECT_DOUBLE_EQ(f32, 1.0);
  EXPECT_DOUBLE_EQ(f16, 0.99875);
  EXPECT_DOUBLE_EQ(i8, 0.985);
  EXPECT_LE(f16, f32);
  EXPECT_LE(i8, f16);
  EXPECT_LE(f32 - i8, 0.02);
}

}  // namespace
}  // namespace algas
