#include <gtest/gtest.h>

#include <sstream>

#include "common/stats.hpp"
#include "metrics/collector.hpp"
#include "metrics/recall.hpp"
#include "metrics/table.hpp"
#include "test_util.hpp"

namespace algas::metrics {
namespace {

// ---------------- recall.hpp ----------------

Dataset dataset_with_gt() {
  Dataset ds("gt", 1, Metric::kL2);
  ds.mutable_base() = {0.0f, 1.0f, 2.0f, 3.0f};
  ds.mutable_queries() = {0.1f};
  // truth for query 0: 0, 1, 2 (k=3)
  ds.set_ground_truth({0, 1, 2}, 3);
  return ds;
}

TEST(Recall, ExactAndPartial) {
  const Dataset ds = dataset_with_gt();
  std::vector<KV> perfect{KV::make(0.1f, 0), KV::make(0.9f, 1),
                          KV::make(1.9f, 2)};
  EXPECT_DOUBLE_EQ(recall_at_k(ds, 0, perfect, 3), 1.0);

  std::vector<KV> partial{KV::make(0.1f, 0), KV::make(2.9f, 3),
                          KV::make(1.9f, 2)};
  EXPECT_DOUBLE_EQ(recall_at_k(ds, 0, partial, 3), 2.0 / 3.0);

  std::vector<KV> wrong{KV::make(2.9f, 3)};
  EXPECT_DOUBLE_EQ(recall_at_k(ds, 0, wrong, 3), 0.0);
}

TEST(Recall, OnlyFirstKResultsCount) {
  const Dataset ds = dataset_with_gt();
  // Result list longer than k: extras must not inflate recall.
  std::vector<KV> padded{KV::make(2.9f, 3), KV::make(0.1f, 0),
                         KV::make(0.9f, 1), KV::make(1.9f, 2)};
  EXPECT_DOUBLE_EQ(recall_at_k(ds, 0, padded, 2), 0.5);
}

TEST(Recall, IdsOverload) {
  const Dataset ds = dataset_with_gt();
  // truth@2 = {0, 1}; {0, 2} hits one of them.
  const std::vector<NodeId> ids{0, 2};
  EXPECT_DOUBLE_EQ(recall_at_k_ids(ds, 0, ids, 2), 0.5);
  const std::vector<NodeId> exact{1, 0};
  EXPECT_DOUBLE_EQ(recall_at_k_ids(ds, 0, exact, 2), 1.0);
}

TEST(Recall, ThrowsWithoutGroundTruth) {
  Dataset ds("nogt", 1, Metric::kL2);
  ds.mutable_base() = {0.0f};
  ds.mutable_queries() = {0.0f};
  std::vector<KV> res{KV::make(0.0f, 0)};
  EXPECT_THROW(recall_at_k(ds, 0, res, 1), std::logic_error);
}

TEST(Recall, ThrowsBeyondGtDepth) {
  const Dataset ds = dataset_with_gt();
  std::vector<KV> res{KV::make(0.0f, 0)};
  EXPECT_THROW(recall_at_k(ds, 0, res, 10), std::invalid_argument);
}

TEST(Recall, MeanOverQueries) {
  Dataset ds("gt2", 1, Metric::kL2);
  ds.mutable_base() = {0.0f, 1.0f};
  ds.mutable_queries() = {0.0f, 1.0f};
  ds.set_ground_truth({0, 1}, 1);  // q0 -> 0, q1 -> 1
  std::vector<std::vector<KV>> results{{KV::make(0.0f, 0)},
                                       {KV::make(0.0f, 0)}};
  EXPECT_DOUBLE_EQ(mean_recall(ds, results, 1), 0.5);
}

// ---------------- collector.hpp ----------------

QueryRecord make_record(std::size_t idx, double arrival, double dispatch,
                        double done, std::size_t steps) {
  QueryRecord r;
  r.query_index = idx;
  r.arrival_ns = arrival;
  r.dispatch_ns = dispatch;
  r.done_ns = done;
  r.steps = steps;
  return r;
}

TEST(Collector, SummaryBasics) {
  Collector c;
  c.add(make_record(0, 0.0, 10.0, 1010.0, 30));
  c.add(make_record(1, 0.0, 20.0, 2020.0, 50));
  const auto s = c.summarize();
  EXPECT_EQ(s.queries, 2u);
  EXPECT_DOUBLE_EQ(s.span_ns, 2020.0);
  EXPECT_NEAR(s.throughput_qps, 2.0 * 1e9 / 2020.0, 1e-6);
  EXPECT_DOUBLE_EQ(s.mean_latency_us, (1.010 + 2.020) / 2.0);
  EXPECT_DOUBLE_EQ(s.mean_service_us, (1.000 + 2.000) / 2.0);
  EXPECT_DOUBLE_EQ(s.mean_steps, 40.0);
  EXPECT_DOUBLE_EQ(s.max_steps, 50.0);
}

TEST(Collector, SortFractionFromGpuCost) {
  Collector c;
  auto r = make_record(0, 0.0, 0.0, 100.0, 1);
  r.gpu_cost.compute_ns = 70.0;
  r.gpu_cost.sort_ns = 30.0;
  c.add(r);
  const auto s = c.summarize();
  EXPECT_DOUBLE_EQ(s.sort_fraction, 0.3);
  EXPECT_DOUBLE_EQ(s.compute_fraction, 0.7);
}

TEST(Collector, BubbleWaste) {
  Collector c;
  c.add(make_record(0, 0.0, 0.0, 1.0, 1));
  c.add_batch_idle(25.0, 100.0);
  EXPECT_DOUBLE_EQ(c.summarize().bubble_waste, 0.25);
}

TEST(Collector, SortedLatenciesAscending) {
  // Dispatch lags arrival by 500ns so latency (arrival -> done) and service
  // (dispatch -> done) are distinguishable — the old implementation returned
  // service times from sorted_latencies_us().
  Collector c;
  c.add(make_record(0, 0.0, 500.0, 5000.0, 1));
  c.add(make_record(1, 0.0, 500.0, 1000.0, 1));
  c.add(make_record(2, 0.0, 500.0, 3000.0, 1));
  const auto v = c.sorted_latencies_us();
  EXPECT_EQ(v, (std::vector<double>{1.0, 3.0, 5.0}));
}

TEST(Collector, SortedServiceExcludesQueueing) {
  Collector c;
  c.add(make_record(0, 0.0, 500.0, 5000.0, 1));
  c.add(make_record(1, 0.0, 500.0, 1000.0, 1));
  c.add(make_record(2, 0.0, 500.0, 3000.0, 1));
  const auto v = c.sorted_service_us();
  EXPECT_EQ(v, (std::vector<double>{0.5, 2.5, 4.5}));
}

TEST(Collector, EmptySummaryIsZero) {
  Collector c;
  const auto s = c.summarize();
  EXPECT_EQ(s.queries, 0u);
  EXPECT_EQ(s.throughput_qps, 0.0);
}

TEST(Collector, ClearResets) {
  Collector c;
  c.add(make_record(0, 0.0, 0.0, 1.0, 1));
  c.add_batch_idle(10.0, 10.0);
  c.clear();
  EXPECT_EQ(c.size(), 0u);
  EXPECT_DOUBLE_EQ(c.summarize().bubble_waste, 0.0);
}

TEST(Collector, MergeAppendsRecordsAndSumsBatchIdle) {
  Collector a;
  a.add(make_record(0, 0.0, 10.0, 1010.0, 30));
  a.add_batch_idle(10.0, 100.0);
  Collector b;
  b.add(make_record(1, 0.0, 20.0, 2020.0, 50));
  b.add_batch_idle(15.0, 100.0);

  // Reference: the union of the samples in one collector.
  Collector both;
  both.add(make_record(0, 0.0, 10.0, 1010.0, 30));
  both.add(make_record(1, 0.0, 20.0, 2020.0, 50));
  both.add_batch_idle(25.0, 200.0);

  a.merge(b);
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a.records()[0].query_index, 0u);
  EXPECT_EQ(a.records()[1].query_index, 1u);
  const auto got = a.summarize();
  const auto want = both.summarize();
  EXPECT_DOUBLE_EQ(got.span_ns, want.span_ns);
  EXPECT_DOUBLE_EQ(got.mean_latency_us, want.mean_latency_us);
  EXPECT_DOUBLE_EQ(got.mean_steps, want.mean_steps);
  EXPECT_DOUBLE_EQ(got.bubble_waste, want.bubble_waste);
}

TEST(Collector, MergeFromEmptyAndIntoEmpty) {
  Collector a;
  Collector b;
  b.add(make_record(7, 0.0, 0.0, 100.0, 3));
  a.merge(b);             // into empty
  a.merge(Collector{});   // from empty
  ASSERT_EQ(a.size(), 1u);
  EXPECT_EQ(a.records()[0].query_index, 7u);
}

QueryRecord disposed_record(std::size_t idx, double arrival, double done,
                            Disposition d, double deadline) {
  QueryRecord r = make_record(idx, arrival, arrival, done, 10);
  r.disposition = d;
  r.deadline_ns = deadline;
  return r;
}

TEST(Collector, SummarizeMixedDispositions) {
  // One of each outcome. Counting rules under test: distributions cover
  // served queries only, every record counts toward span/shed_rate, and
  // goodput counts only served-AND-in-deadline completions.
  Collector c;
  c.add(disposed_record(0, 0.0, 1000.0, Disposition::kServed, 2000.0));
  c.add(disposed_record(1, 100.0, 4000.0, Disposition::kServed, 2000.0));
  c.add(disposed_record(2, 200.0, 300.0, Disposition::kShedQueue, 2000.0));
  c.add(disposed_record(3, 300.0, 400.0, Disposition::kShedDeadline, 350.0));
  c.add(disposed_record(4, 400.0, 2000.0, Disposition::kEvicted, 1800.0));
  const auto s = c.summarize();
  EXPECT_EQ(s.queries, 5u);
  EXPECT_EQ(s.served, 2u);
  EXPECT_EQ(s.shed_queue, 1u);
  EXPECT_EQ(s.shed_deadline, 1u);
  EXPECT_EQ(s.evicted, 1u);
  // q1 finished past its deadline; sheds/evictions never meet theirs.
  EXPECT_EQ(s.deadline_misses, 4u);
  EXPECT_DOUBLE_EQ(s.deadline_miss_rate, 4.0 / 5.0);
  EXPECT_DOUBLE_EQ(s.shed_rate, 3.0 / 5.0);
  EXPECT_DOUBLE_EQ(s.span_ns, 4000.0);  // first arrival 0 -> last done 4000
  EXPECT_DOUBLE_EQ(s.throughput_qps, 2.0 * 1e9 / 4000.0);
  EXPECT_DOUBLE_EQ(s.goodput_qps, 1.0 * 1e9 / 4000.0);  // only q0 in time
  // Latency stats are over the two served records (1.0us and 3.9us).
  EXPECT_DOUBLE_EQ(s.mean_latency_us, (1.0 + 3.9) / 2.0);
  EXPECT_EQ(c.sorted_latencies_us().size(), 2u);
  EXPECT_EQ(c.sorted_service_us().size(), 2u);
}

TEST(Collector, AllShedSummaryHasNoDistributions) {
  Collector c;
  c.add(disposed_record(0, 0.0, 100.0, Disposition::kShedQueue, 50.0));
  c.add(disposed_record(1, 10.0, 200.0, Disposition::kShedDeadline, 60.0));
  const auto s = c.summarize();
  EXPECT_EQ(s.served, 0u);
  EXPECT_DOUBLE_EQ(s.shed_rate, 1.0);
  EXPECT_DOUBLE_EQ(s.goodput_qps, 0.0);
  EXPECT_DOUBLE_EQ(s.throughput_qps, 0.0);
  EXPECT_DOUBLE_EQ(s.mean_latency_us, 0.0);
  EXPECT_DOUBLE_EQ(s.p999_latency_us, 0.0);
  EXPECT_TRUE(c.sorted_latencies_us().empty());
}

TEST(Collector, InfiniteDeadlineShedIsNotADeadlineMiss) {
  // A bounded-queue run with deadlines disabled sheds on capacity, not on
  // time: those records carry the infinite default deadline and must not
  // inflate deadline_miss_rate. A served-but-late record with a finite
  // deadline still counts.
  const double inf = std::numeric_limits<double>::infinity();
  Collector c;
  c.add(disposed_record(0, 0.0, 100.0, Disposition::kShedQueue, inf));
  c.add(disposed_record(1, 0.0, 1000.0, Disposition::kServed, inf));
  c.add(disposed_record(2, 0.0, 2000.0, Disposition::kServed, 1500.0));
  const auto s = c.summarize();
  EXPECT_EQ(s.deadline_misses, 1u);  // only q2: finite deadline, done late
  EXPECT_DOUBLE_EQ(s.deadline_miss_rate, 1.0 / 3.0);
  EXPECT_EQ(s.shed_queue, 1u);
  EXPECT_DOUBLE_EQ(s.shed_rate, 1.0 / 3.0);
}

TEST(Collector, MergePreservesDispositionCounts) {
  Collector a;
  a.add(disposed_record(0, 0.0, 1000.0, Disposition::kServed, 2000.0));
  a.add(disposed_record(1, 50.0, 90.0, Disposition::kShedQueue, 500.0));
  Collector b;
  b.add(disposed_record(2, 100.0, 3000.0, Disposition::kEvicted, 900.0));
  a.merge(b);
  const auto s = a.summarize();
  EXPECT_EQ(s.queries, 3u);
  EXPECT_EQ(s.served, 1u);
  EXPECT_EQ(s.shed_queue, 1u);
  EXPECT_EQ(s.evicted, 1u);
  EXPECT_DOUBLE_EQ(s.shed_rate, 2.0 / 3.0);
}

// ---------------- stats.hpp (Histogram) ----------------

TEST(Histogram, MergeSumsUnderflowAndOverflow) {
  // Regression: out-of-range counts must survive a merge — per-shard
  // latency histograms carry their tails through the gather.
  Histogram a(0.0, 10.0, 2);
  a.add(-1.0);           // underflow
  a.add(5.0);            // bin 1
  Histogram b(0.0, 10.0, 2);
  b.add(-2.0);           // underflow
  b.add(12.0);           // overflow
  b.add(99.0);           // overflow
  a.merge(b);
  EXPECT_EQ(a.total(), 5u);
  EXPECT_EQ(a.underflow(), 2u);
  EXPECT_EQ(a.overflow(), 2u);
  EXPECT_EQ(a.bin_count(0), 0u);
  EXPECT_EQ(a.bin_count(1), 1u);
  // Out-of-range rows must also surface in the TSV dump.
  const std::string tsv = a.to_tsv();
  EXPECT_NE(tsv.find("-inf"), std::string::npos) << tsv;
  EXPECT_NE(tsv.find("inf"), std::string::npos) << tsv;
}

TEST(Histogram, MergeRejectsMismatchedGeometry) {
  Histogram a(0.0, 10.0, 2);
  Histogram bins(0.0, 10.0, 4);
  Histogram range(0.0, 20.0, 2);
  EXPECT_THROW(a.merge(bins), std::invalid_argument);
  EXPECT_THROW(a.merge(range), std::invalid_argument);
}

// ---------------- table.hpp ----------------

TEST(TsvTable, PrintsHeaderAndRows) {
  TsvTable t({"a", "b", "c"});
  t.row().cell(std::string("x")).cell(1.23456, 2).cell(std::size_t{7});
  std::ostringstream out;
  t.print(out);
  EXPECT_EQ(out.str(), "a\tb\tc\nx\t1.23\t7\n");
}

TEST(TsvTable, RaggedRowThrows) {
  TsvTable t({"a", "b"});
  t.row().cell(std::string("only-one"));
  std::ostringstream out;
  EXPECT_THROW(t.print(out), std::logic_error);
}

TEST(TsvTable, MetaComment) {
  std::ostringstream out;
  print_meta(out, "dataset", "sift");
  EXPECT_EQ(out.str(), "# dataset: sift\n");
}

}  // namespace
}  // namespace algas::metrics
