#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "distance/distance.hpp"

namespace algas {
namespace {

TEST(Distance, L2Known) {
  const std::vector<float> a{1.0f, 2.0f, 3.0f};
  const std::vector<float> b{4.0f, 6.0f, 3.0f};
  EXPECT_FLOAT_EQ(l2_sq(a, b), 9.0f + 16.0f);
  EXPECT_FLOAT_EQ(l2_sq(a, a), 0.0f);
}

TEST(Distance, DotKnown) {
  const std::vector<float> a{1.0f, 2.0f, 3.0f};
  const std::vector<float> b{-1.0f, 0.5f, 2.0f};
  EXPECT_FLOAT_EQ(dot(a, b), -1.0f + 1.0f + 6.0f);
}

TEST(Distance, CosineBounds) {
  const std::vector<float> a{1.0f, 0.0f};
  const std::vector<float> b{0.0f, 1.0f};
  const std::vector<float> c{-1.0f, 0.0f};
  EXPECT_NEAR(cosine_similarity(a, a), 1.0f, 1e-6);
  EXPECT_NEAR(cosine_similarity(a, b), 0.0f, 1e-6);
  EXPECT_NEAR(cosine_similarity(a, c), -1.0f, 1e-6);
}

TEST(Distance, SmallerIsCloserForAllMetrics) {
  // near is more similar to q than far, under every metric mapping.
  const std::vector<float> q{1.0f, 1.0f, 0.0f, 0.0f};
  const std::vector<float> near_v{1.0f, 0.9f, 0.1f, 0.0f};
  const std::vector<float> far_v{-1.0f, -0.8f, 0.5f, 0.3f};
  for (Metric m : {Metric::kL2, Metric::kInnerProduct, Metric::kCosine}) {
    EXPECT_LT(distance(m, q, near_v), distance(m, q, far_v))
        << metric_name(m);
  }
}

TEST(Distance, NormalizeMakesUnit) {
  std::vector<float> v{3.0f, 4.0f};
  normalize(v);
  EXPECT_NEAR(norm(v), 1.0f, 1e-6);
  EXPECT_NEAR(v[0], 0.6f, 1e-6);
  std::vector<float> zero{0.0f, 0.0f};
  normalize(zero);  // must not produce NaN
  EXPECT_EQ(zero[0], 0.0f);
}

TEST(Distance, MetricNames) {
  EXPECT_EQ(metric_name(Metric::kL2), "L2");
  EXPECT_EQ(metric_name(Metric::kInnerProduct), "InnerProduct");
  EXPECT_EQ(metric_name(Metric::kCosine), "Cosine");
}

// Property sweep: the lane-partitioned kernel must agree with the scalar
// kernel for every metric, dimension shape (smaller, equal, larger, and
// non-multiples of the lane count), and lane width.
class LaneEquivalence
    : public ::testing::TestWithParam<std::tuple<Metric, std::size_t, std::size_t>> {};

TEST_P(LaneEquivalence, MatchesScalarKernel) {
  const auto [metric, dim, lanes] = GetParam();
  Rng rng(dim * 131 + lanes);
  std::vector<float> a(dim), b(dim);
  for (std::size_t i = 0; i < dim; ++i) {
    a[i] = rng.next_gaussian();
    b[i] = rng.next_gaussian();
  }
  const float scalar = distance(metric, a, b);
  const float laned = distance_lanes(metric, a, b, lanes);
  const float scale = std::max(1.0f, std::fabs(scalar));
  EXPECT_NEAR(laned, scalar, 2e-4f * scale)
      << metric_name(metric) << " dim=" << dim << " lanes=" << lanes;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LaneEquivalence,
    ::testing::Combine(
        ::testing::Values(Metric::kL2, Metric::kInnerProduct, Metric::kCosine),
        ::testing::Values<std::size_t>(1, 7, 32, 100, 128, 960),
        ::testing::Values<std::size_t>(1, 2, 8, 32)));

TEST(Distance, LanesHandleDimSmallerThanLanes) {
  const std::vector<float> a{1.0f, 2.0f};
  const std::vector<float> b{3.0f, 5.0f};
  EXPECT_NEAR(distance_lanes(Metric::kL2, a, b, 32), l2_sq(a, b), 1e-5f);
}

}  // namespace
}  // namespace algas
