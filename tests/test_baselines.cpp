#include <gtest/gtest.h>

#include <map>
#include <set>

#include "baselines/batch_runner.hpp"
#include "baselines/ganns_engine.hpp"
#include "baselines/ivf.hpp"
#include "baselines/static_engine.hpp"
#include "metrics/recall.hpp"
#include "test_util.hpp"

namespace algas::baselines {
namespace {

// ---------------- batch_runner.hpp ----------------

TEST(WaveSchedule, UnlimitedCapacityRunsConcurrently) {
  std::vector<CtaTask> tasks{{0, 100.0}, {0, 50.0}, {1, 80.0}};
  const auto t = wave_schedule(tasks, 2, 16, {0.0, 0.0});
  EXPECT_DOUBLE_EQ(t.query_search_end[0], 100.0);
  EXPECT_DOUBLE_EQ(t.query_search_end[1], 80.0);
  EXPECT_DOUBLE_EQ(t.gpu_end_ns, 100.0);
  // Idle: CTA1 waits 50, CTA2 waits 20, CTA0 waits 0.
  EXPECT_DOUBLE_EQ(t.idle_ns, 70.0);
  EXPECT_DOUBLE_EQ(t.active_ns, 230.0);
}

TEST(WaveSchedule, CapacityOneSerializes) {
  std::vector<CtaTask> tasks{{0, 10.0}, {1, 10.0}, {2, 10.0}};
  const auto t = wave_schedule(tasks, 3, 1, {0.0, 0.0, 0.0});
  EXPECT_DOUBLE_EQ(t.query_search_end[0], 10.0);
  EXPECT_DOUBLE_EQ(t.query_search_end[1], 20.0);
  EXPECT_DOUBLE_EQ(t.query_search_end[2], 30.0);
  EXPECT_DOUBLE_EQ(t.gpu_end_ns, 30.0);
}

TEST(WaveSchedule, MergeExtendsQueryCompletion) {
  std::vector<CtaTask> tasks{{0, 10.0}, {1, 20.0}};
  const auto t = wave_schedule(tasks, 2, 4, {5.0, 1.0});
  EXPECT_DOUBLE_EQ(t.query_final[0], 15.0);
  EXPECT_DOUBLE_EQ(t.query_final[1], 21.0);
  EXPECT_DOUBLE_EQ(t.gpu_end_ns, 21.0);
}

TEST(DeviceCapacity, ShrinksWithLayout) {
  const auto dev = sim::DeviceProps::rtx_a6000();
  sim::SharedMemoryLayout small;
  small.candidate_entries = 64;
  small.dim = 128;
  sim::SharedMemoryLayout big;
  big.candidate_entries = 2048;
  big.expand_entries = 2048;
  big.dim = 960;
  const auto cap_small = device_capacity(dev, small, 1024);
  const auto cap_big = device_capacity(dev, big, 1024);
  EXPECT_GT(cap_small, cap_big);
  EXPECT_LE(cap_small, dev.max_resident_blocks());
  EXPECT_GE(cap_big, dev.num_sms);  // at least 1 block/SM fits here
}

// ---------------- static_engine.hpp ----------------

StaticConfig tiny_static_config() {
  StaticConfig cfg;
  cfg.search.topk = 10;
  cfg.search.candidate_len = 64;
  cfg.batch_size = 8;
  cfg.n_parallel = 4;
  return cfg;
}

TEST(StaticEngine, GoodRecallAndBatchBarrier) {
  const auto& world = algas::testing::tiny_world();
  StaticBatchEngine engine(world.ds, world.nsw, tiny_static_config());
  const auto rep = engine.run_closed_loop(64);
  EXPECT_EQ(rep.summary.queries, 64u);
  EXPECT_GT(rep.recall, 0.9);

  // Batch barrier: queries of the same batch share one done time.
  std::map<double, std::size_t> done_groups;
  for (const auto& r : rep.collector.records()) {
    ++done_groups[r.done_ns];
  }
  EXPECT_EQ(done_groups.size(), 8u);  // 64 / batch 8
  for (const auto& [t, n] : done_groups) EXPECT_EQ(n, 8u);
}

TEST(StaticEngine, ReportsBatchBubbleWaste) {
  const auto& world = algas::testing::tiny_world();
  StaticBatchEngine engine(world.ds, world.nsw, tiny_static_config());
  const auto rep = engine.run_closed_loop(64);
  // §III-A: bubble waste is substantial (paper reports 22.9%-33.7%).
  EXPECT_GT(rep.summary.bubble_waste, 0.05);
  EXPECT_LT(rep.summary.bubble_waste, 1.5);
}

TEST(StaticEngine, AutoParallelismPicked) {
  const auto& world = algas::testing::tiny_world();
  auto cfg = tiny_static_config();
  cfg.n_parallel = 0;
  StaticBatchEngine engine(world.ds, world.nsw, cfg);
  EXPECT_GE(engine.n_parallel(), 1u);
  EXPECT_LE(engine.n_parallel(), 16u);
}

TEST(StaticEngine, SingleCtaNeedsNoMerge) {
  const auto& world = algas::testing::tiny_world();
  auto cfg = tiny_static_config();
  cfg.n_parallel = 1;
  cfg.merge = MergeMode::kNone;
  StaticBatchEngine engine(world.ds, world.nsw, cfg);
  const auto rep = engine.run_closed_loop(16);
  EXPECT_GT(rep.recall, 0.85);
}

TEST(StaticEngine, MultiCtaWithoutMergeRejected) {
  const auto& world = algas::testing::tiny_world();
  auto cfg = tiny_static_config();
  cfg.n_parallel = 4;
  cfg.merge = MergeMode::kNone;
  EXPECT_THROW(StaticBatchEngine(world.ds, world.nsw, cfg),
               std::invalid_argument);
}

TEST(StaticEngine, HostMergeMatchesGpuMergeResults) {
  const auto& world = algas::testing::tiny_world();
  auto gpu_cfg = tiny_static_config();
  auto host_cfg = tiny_static_config();
  host_cfg.merge = MergeMode::kHost;
  StaticBatchEngine gpu(world.ds, world.nsw, gpu_cfg);
  StaticBatchEngine host(world.ds, world.nsw, host_cfg);
  const auto rg = gpu.run_closed_loop(32);
  const auto rh = host.run_closed_loop(32);
  EXPECT_DOUBLE_EQ(rg.recall, rh.recall);  // merge mode is timing-only
}

TEST(StaticEngine, LargerBatchRaisesPerQueryLatency) {
  // Fig 15's shape: with a batch barrier, bigger batches mean longer waits.
  const auto& world = algas::testing::tiny_world();
  auto small_cfg = tiny_static_config();
  small_cfg.batch_size = 4;
  auto large_cfg = tiny_static_config();
  large_cfg.batch_size = 32;
  StaticBatchEngine small(world.ds, world.nsw, small_cfg);
  StaticBatchEngine large(world.ds, world.nsw, large_cfg);
  const auto rs = small.run_closed_loop(128);
  const auto rl = large.run_closed_loop(128);
  EXPECT_LT(rs.summary.mean_service_us, rl.summary.mean_service_us);
}

// ---------------- ganns_engine.hpp ----------------

TEST(GannsEngine, SingleCtaGreedyCompletes) {
  const auto& world = algas::testing::tiny_world();
  GannsConfig cfg;
  cfg.search.topk = 10;
  cfg.search.candidate_len = 64;
  cfg.batch_size = 8;
  GannsEngine engine(world.ds, world.nsw, cfg);
  const auto rep = engine.run_closed_loop(32);
  EXPECT_EQ(rep.summary.queries, 32u);
  EXPECT_GT(rep.recall, 0.85);
  EXPECT_EQ(rep.plan.n_parallel, 1u);
}

// ---------------- ivf.hpp ----------------

TEST(IvfIndex, PartitionsAllPoints) {
  const auto& world = algas::testing::tiny_world();
  IvfBuildConfig cfg;
  cfg.nlist = 32;
  const auto index = IvfIndex::build(world.ds, cfg);
  EXPECT_EQ(index.nlist(), 32u);
  std::size_t total = 0;
  for (std::size_t i = 0; i < index.nlist(); ++i) {
    total += index.list_size(i);
  }
  EXPECT_EQ(total, world.ds.num_base());
  EXPECT_GE(index.imbalance(), 1.0);
  EXPECT_LT(index.imbalance(), 20.0);
}

TEST(IvfIndex, FullProbeIsExact) {
  const auto& world = algas::testing::tiny_world();
  IvfBuildConfig cfg;
  cfg.nlist = 16;
  const auto index = IvfIndex::build(world.ds, cfg);
  // nprobe = nlist scans everything: recall must be 1.
  const auto out = index.search(world.ds, world.ds.query(0), 16, 10);
  EXPECT_EQ(out.scanned, world.ds.num_base());
  const auto truth = world.ds.ground_truth(0);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(out.topk[i].id(), truth[i]);
  }
}

TEST(IvfIndex, RecallGrowsWithNprobe) {
  const auto& world = algas::testing::tiny_world();
  IvfBuildConfig bcfg;
  bcfg.nlist = 32;
  const auto index = IvfIndex::build(world.ds, bcfg);
  double recall1 = 0.0, recall8 = 0.0;
  const std::size_t nq = 40;
  for (std::size_t q = 0; q < nq; ++q) {
    const auto o1 = index.search(world.ds, world.ds.query(q), 1, 10);
    const auto o8 = index.search(world.ds, world.ds.query(q), 8, 10);
    recall1 += metrics::recall_at_k(world.ds, q, o1.topk, 10);
    recall8 += metrics::recall_at_k(world.ds, q, o8.topk, 10);
  }
  EXPECT_GT(recall8, recall1);
  EXPECT_GT(recall8 / nq, 0.8);
}

TEST(IvfEngine, EndToEnd) {
  const auto& world = algas::testing::tiny_world();
  IvfConfig cfg;
  cfg.topk = 10;
  cfg.nprobe = 8;
  cfg.batch_size = 8;
  cfg.build.nlist = 32;
  IvfEngine engine(world.ds, cfg);
  const auto rep = engine.run_closed_loop(32);
  EXPECT_EQ(rep.summary.queries, 32u);
  EXPECT_GT(rep.recall, 0.7);
  EXPECT_GT(rep.summary.mean_service_us, 0.0);
}

}  // namespace
}  // namespace algas::baselines
