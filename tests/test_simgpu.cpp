#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

#include "simgpu/channel.hpp"
#include "simgpu/checker.hpp"
#include "simgpu/cost_model.hpp"
#include "simgpu/device_props.hpp"
#include "simgpu/shared_memory.hpp"
#include "simgpu/sim_group.hpp"
#include "simgpu/sm_scheduler.hpp"
#include "simgpu/simulation.hpp"

namespace algas::sim {
namespace {

// ---------------- simulation.hpp ----------------

/// Records the times at which it stepped; reschedules `repeats` times.
class ProbeActor : public Actor {
 public:
  explicit ProbeActor(double interval = 0.0, int repeats = 0)
      : interval_(interval), repeats_(repeats) {}
  void step(Simulation& sim) override {
    times.push_back(sim.now());
    if (repeats_-- > 0) sim.schedule(this, sim.now() + interval_);
  }
  std::vector<double> times;

 private:
  double interval_;
  int repeats_;
};

TEST(Simulation, RunsEventsInTimeOrder) {
  Simulation sim;
  ProbeActor a, b, c;
  sim.schedule(&a, 30.0);
  sim.schedule(&b, 10.0);
  sim.schedule(&c, 20.0);
  sim.run();
  ASSERT_EQ(b.times.size(), 1u);
  EXPECT_DOUBLE_EQ(b.times[0], 10.0);
  EXPECT_DOUBLE_EQ(c.times[0], 20.0);
  EXPECT_DOUBLE_EQ(a.times[0], 30.0);
  EXPECT_EQ(sim.events_processed(), 3u);
}

TEST(Simulation, TiesBreakByInsertionOrder) {
  Simulation sim;
  std::vector<int> order;
  class Tagger : public Actor {
   public:
    Tagger(std::vector<int>& o, int id) : order_(o), id_(id) {}
    void step(Simulation&) override { order_.push_back(id_); }

   private:
    std::vector<int>& order_;
    int id_;
  };
  Tagger t1(order, 1), t2(order, 2), t3(order, 3);
  sim.schedule(&t1, 5.0);
  sim.schedule(&t2, 5.0);
  sim.schedule(&t3, 5.0);
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulation, ScheduleCoalescesKeepingEarliest) {
  Simulation sim;
  ProbeActor a;
  sim.schedule(&a, 50.0);
  sim.schedule(&a, 10.0);  // supersedes the later event
  sim.schedule(&a, 30.0);  // ignored: earlier pending exists
  sim.run();
  ASSERT_EQ(a.times.size(), 1u);
  EXPECT_DOUBLE_EQ(a.times[0], 10.0);
}

TEST(Simulation, SelfReschedulingActor) {
  Simulation sim;
  ProbeActor a(/*interval=*/5.0, /*repeats=*/3);
  sim.schedule(&a, 0.0);
  sim.run();
  EXPECT_EQ(a.times, (std::vector<double>{0.0, 5.0, 10.0, 15.0}));
}

TEST(Simulation, CancelPreventsStep) {
  Simulation sim;
  ProbeActor a;
  sim.schedule(&a, 10.0);
  sim.cancel(&a);
  sim.run();
  EXPECT_TRUE(a.times.empty());
}

TEST(Simulation, CountsStaleEventsFromSupersededEntries) {
  Simulation sim;
  ProbeActor a, b;
  sim.schedule(&a, 50.0);
  sim.schedule(&a, 10.0);  // supersedes: the 50.0 entry goes stale
  sim.schedule(&b, 20.0);
  sim.cancel(&b);          // the 20.0 entry goes stale
  EXPECT_EQ(sim.stale_events(), 0u);  // counted on pop, not on push
  sim.run();
  EXPECT_EQ(sim.events_processed(), 1u);
  EXPECT_EQ(sim.stale_events(), 2u);
}

TEST(Simulation, PastSchedulingClampsToNow) {
  class Rescheduler : public Actor {
   public:
    explicit Rescheduler(ProbeActor* victim) : victim_(victim) {}
    void step(Simulation& sim) override {
      sim.schedule(victim_, sim.now() - 100.0);  // the past is clamped
    }

   private:
    ProbeActor* victim_;
  };
  Simulation sim;
  ProbeActor victim;
  Rescheduler r(&victim);
  sim.schedule(&r, 50.0);
  sim.run();
  ASSERT_EQ(victim.times.size(), 1u);
  EXPECT_DOUBLE_EQ(victim.times[0], 50.0);
}

TEST(Simulation, RunUntilStopsAtBoundary) {
  Simulation sim;
  ProbeActor a(10.0, 10);
  sim.schedule(&a, 0.0);
  sim.run_until(25.0);
  EXPECT_EQ(a.times.size(), 3u);  // steps at 0, 10, 20
  sim.run();                      // drain the rest
  EXPECT_EQ(a.times.size(), 11u);
}

// ---------------- sim_group.hpp ----------------

TEST(SimulationGroup, InterleavesMembersInGlobalTimeOrder) {
  Simulation s1, s2;
  std::vector<int> order;
  class Tagger : public Actor {
   public:
    Tagger(std::vector<int>& o, int id) : order_(o), id_(id) {}
    void step(Simulation&) override { order_.push_back(id_); }

   private:
    std::vector<int>& order_;
    int id_;
  };
  Tagger a(order, 1), b(order, 2), c(order, 3), d(order, 4);
  SimulationGroup group;
  group.add(&s1);
  group.add(&s2);
  s1.schedule(&a, 10.0);
  s1.schedule(&c, 30.0);
  s2.schedule(&b, 20.0);
  s2.schedule(&d, 25.0);
  group.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 4, 3}));
  EXPECT_DOUBLE_EQ(s1.now(), 30.0);
  EXPECT_DOUBLE_EQ(s2.now(), 25.0);
}

TEST(SimulationGroup, TiesBreakByMemberInsertionOrder) {
  Simulation s1, s2;
  std::vector<int> order;
  class Tagger : public Actor {
   public:
    Tagger(std::vector<int>& o, int id) : order_(o), id_(id) {}
    void step(Simulation&) override { order_.push_back(id_); }

   private:
    std::vector<int>& order_;
    int id_;
  };
  Tagger a(order, 1), b(order, 2);
  SimulationGroup group;
  group.add(&s1);
  group.add(&s2);
  s2.schedule(&b, 5.0);  // scheduled first, but s1 was added first
  s1.schedule(&a, 5.0);
  group.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(SimulationGroup, GroupOfOneMatchesPlainRun) {
  // Same workload through run() and through a singleton group: identical
  // step times and event counts.
  ProbeActor solo(5.0, 3), grouped(5.0, 3);
  Simulation plain;
  plain.schedule(&solo, 0.0);
  plain.run();
  Simulation member;
  member.schedule(&grouped, 0.0);
  SimulationGroup group;
  group.add(&member);
  group.run();
  EXPECT_EQ(grouped.times, solo.times);
  EXPECT_EQ(member.events_processed(), plain.events_processed());
  EXPECT_DOUBLE_EQ(member.now(), plain.now());
}

TEST(SimulationGroup, CrossMemberSchedulingWakesTarget) {
  // An actor stepped in member A schedules an actor living in member B at
  // a future time; the group routes back to B when that time comes.
  Simulation a_sim, b_sim;
  ProbeActor target;
  class Waker : public Actor {
   public:
    Waker(Simulation& peer, Actor* target) : peer_(peer), target_(target) {}
    void step(Simulation& sim) override {
      peer_.schedule(target_, sim.now() + 7.0);
    }

   private:
    Simulation& peer_;
    Actor* target_;
  };
  Waker waker(b_sim, &target);
  a_sim.schedule(&waker, 3.0);
  SimulationGroup group;
  group.add(&a_sim);
  group.add(&b_sim);
  group.run();
  ASSERT_EQ(target.times.size(), 1u);
  EXPECT_DOUBLE_EQ(target.times[0], 10.0);
  EXPECT_DOUBLE_EQ(b_sim.now(), 10.0);
}

TEST(SimulationGroup, DrainHooksFireOncePerMemberAfterFullDrain) {
  Simulation s1, s2;
  SimCheck c1, c2;
  s1.set_checker(&c1);
  s2.set_checker(&c2);
  ProbeActor a(1.0, 2), b(1.0, 2);
  s1.schedule(&a, 0.0);
  s2.schedule(&b, 0.5);
  SimulationGroup group;
  group.add(&s1);
  group.add(&s2);
  group.run();
  // Both members drained and both checkers observed traffic.
  EXPECT_GT(c1.checks_performed(), 0u);
  EXPECT_GT(c2.checks_performed(), 0u);
  EXPECT_TRUE(s1.idle());
  EXPECT_TRUE(s2.idle());
}

TEST(SimulationGroup, NextEventTimePeeksAcrossMembers) {
  Simulation s1, s2;
  ProbeActor a, b;
  s1.schedule(&a, 40.0);
  s2.schedule(&b, 15.0);
  SimulationGroup group;
  group.add(&s1);
  group.add(&s2);
  EXPECT_DOUBLE_EQ(group.next_event_time(), 15.0);
  group.run();
  EXPECT_EQ(group.next_event_time(),
            std::numeric_limits<SimTime>::infinity());
}

// ---------------- checker.hpp: event-queue hygiene ----------------

TEST(SimCheck, ScheduleFarInPastIsViolation) {
  Simulation sim;
  SimCheck check;
  sim.set_checker(&check);
  ProbeActor a;
  sim.schedule(&a, 10.0);
  sim.run();
  // now() is 10; a wake-up requested 6ns earlier is a cost-accounting bug,
  // not the documented clamp.
  try {
    sim.schedule(&a, 4.0);
    FAIL() << "expected a schedule-in-past violation";
  } catch (const SimCheckError& e) {
    EXPECT_EQ(e.kind(), "schedule-in-past");
    EXPECT_NE(std::string(e.what()).find("in the past"), std::string::npos);
  }
  EXPECT_EQ(check.violations(), 1u);
}

TEST(SimCheck, ClampWithinToleranceIsAllowed) {
  Simulation sim;
  SimCheck check;
  sim.set_checker(&check);
  ProbeActor a;
  sim.schedule(&a, 10.0);
  sim.run();
  // Within the documented clamp tolerance: allowed, runs at now().
  EXPECT_NO_THROW(sim.schedule(&a, 10.0 - 1e-9));
  sim.run();
  ASSERT_EQ(a.times.size(), 2u);
  EXPECT_DOUBLE_EQ(a.times[1], 10.0);
  EXPECT_EQ(check.violations(), 0u);
}

TEST(SimCheck, StepsAreTracedPerActor) {
  Simulation sim;
  SimCheck check;
  sim.set_checker(&check);
  ProbeActor a(5.0, 3), b(7.0, 2);
  sim.schedule(&a, 0.0);
  sim.schedule(&b, 1.0);
  sim.run();
  EXPECT_GT(check.checks_performed(), 0u);
  EXPECT_EQ(check.events_traced(), sim.events_processed());
  // Deterministic actor keys: first-touch ordinals per name.
  EXPECT_NE(check.trace_dump("actor#0").find("step"), std::string::npos);
  EXPECT_NE(check.trace_dump("actor#1").find("step"), std::string::npos);
  EXPECT_NE(check.trace_dump("ghost").find("no recorded events"),
            std::string::npos);
}

TEST(SimCheck, TraceRingKeepsMostRecent) {
  TraceRing ring(3);
  for (int i = 0; i < 5; ++i) ring.push(i, "e" + std::to_string(i));
  EXPECT_EQ(ring.total_recorded(), 5u);
  ASSERT_EQ(ring.events().size(), 3u);
  EXPECT_EQ(ring.events().front().what, "e2");
  EXPECT_EQ(ring.events().back().what, "e4");
}

TEST(SimCheck, BeginRunResetsTraces) {
  SimCheck check;
  check.record("w", 1.0, "old");
  check.begin_run("second");
  EXPECT_EQ(check.run_label(), "second");
  EXPECT_NE(check.trace_dump("w").find("no recorded events"),
            std::string::npos);
}

// ---------------- checker.hpp: shared-memory budget ----------------

TEST(SimCheck, OverBudgetBlockLaunchReports) {
  SimCheck check;
  SharedMemoryLayout layout;
  layout.candidate_entries = 128;
  layout.expand_entries = 64;
  layout.dim = 128;
  const auto dev = DeviceProps::rtx_a6000();
  // Fits the device, but exceeds the tuner's per-block budget by one byte.
  try {
    check.check_block_launch("cta s0 c0", 0.0, dev, layout, 1, 0,
                             layout.total_bytes() - 1);
    FAIL() << "expected a shared-memory-budget violation";
  } catch (const SimCheckError& e) {
    EXPECT_EQ(e.kind(), "shared-memory-budget");
    const std::string what = e.what();
    EXPECT_NE(what.find("budgeted only"), std::string::npos) << what;
    EXPECT_NE(what.find("launch"), std::string::npos)
        << "report must include the launch trace:\n" << what;
  }
}

TEST(SimCheck, OccupancyViolatingLaunchReports) {
  SimCheck check;
  SharedMemoryLayout layout;
  layout.candidate_entries = 4096;
  layout.expand_entries = 4096;
  layout.dim = 960;
  const auto dev = DeviceProps::rtx_a6000();
  try {
    check.check_block_launch("cta s0 c0", 0.0, dev, layout, 16, 1024, 0);
    FAIL() << "expected an occupancy violation";
  } catch (const SimCheckError& e) {
    EXPECT_EQ(e.kind(), "shared-memory-budget");
    EXPECT_NE(std::string(e.what()).find("occupancy constraint"),
              std::string::npos);
  }
}

TEST(SimCheck, FittingLaunchPasses) {
  SimCheck check;
  SharedMemoryLayout layout;
  layout.candidate_entries = 128;
  layout.expand_entries = 64;
  layout.dim = 128;
  const auto dev = DeviceProps::rtx_a6000();
  EXPECT_NO_THROW(check.check_block_launch("cta s0 c0", 0.0, dev, layout, 8,
                                           1024, layout.total_bytes()));
  EXPECT_EQ(check.violations(), 0u);
  EXPECT_GT(check.checks_performed(), 0u);
}

// ---------------- channel.hpp ----------------

TEST(Channel, ChargesLatencyPlusOccupancy) {
  CostModel cm;
  Channel ch(cm);
  const double d = ch.transfer(0.0, 2200, Xfer::kQuery);
  EXPECT_NEAR(d,
              cm.pcie_latency_ns + cm.pcie_txn_overhead_ns +
                  2200.0 / cm.pcie_bytes_per_ns,
              1e-9);
}

TEST(Channel, DataTransfersSerializeOnOccupancy) {
  CostModel cm;
  Channel ch(cm);
  const std::size_t big = 4096;  // above the control-plane threshold
  const double occ = cm.transfer_occupancy_ns(big);
  const double d1 = ch.transfer(0.0, big, Xfer::kBulk);
  // Issued at the same instant: waits one payload slot, NOT a full latency
  // (the link pipelines).
  const double d2 = ch.transfer(0.0, big, Xfer::kBulk);
  EXPECT_NEAR(d1, cm.pcie_latency_ns + occ, 1e-9);
  EXPECT_NEAR(d2, cm.pcie_latency_ns + 2.0 * occ, 1e-9);
}

TEST(Channel, ControlPlaneWritesNeverQueue) {
  CostModel cm;
  Channel ch(cm);
  // A large in-flight transfer books the link...
  ch.transfer(0.0, 1 << 20, Xfer::kBulk);
  // ...but a 4-byte state write posts through immediately.
  const double d = ch.post(0.0, 4, Xfer::kStateWrite);
  EXPECT_NEAR(d, cm.transfer_occupancy_ns(4), 1e-9);
}

TEST(Channel, IdleLinkDoesNotQueue) {
  CostModel cm;
  Channel ch(cm);
  ch.transfer(0.0, 4096, Xfer::kBulk);
  const double d = ch.transfer(10000.0, 4096, Xfer::kBulk);
  EXPECT_NEAR(d, cm.pcie_latency_ns + cm.transfer_occupancy_ns(4096), 1e-9);
}

TEST(Channel, CountersSplitByPurpose) {
  CostModel cm;
  Channel ch(cm);
  ch.transfer(0.0, 100, Xfer::kQuery);
  ch.transfer(0.0, 200, Xfer::kQuery);
  ch.transfer(0.0, 4, Xfer::kStateWrite);
  EXPECT_EQ(ch.counters(Xfer::kQuery).transactions, 2u);
  EXPECT_EQ(ch.counters(Xfer::kQuery).bytes, 300u);
  EXPECT_EQ(ch.counters(Xfer::kStateWrite).transactions, 1u);
  EXPECT_EQ(ch.total().transactions, 3u);
  EXPECT_EQ(ch.total().bytes, 304u);
  ch.reset_counters();
  EXPECT_EQ(ch.total().transactions, 0u);
}

// ---------------- sm_scheduler.hpp ----------------

TEST(SmScheduler, GrantsUpToCapacity) {
  Simulation sim;
  SmScheduler sched(2);
  ProbeActor a, b, c;
  EXPECT_TRUE(sched.try_acquire(sim, &a));
  EXPECT_TRUE(sched.try_acquire(sim, &b));
  EXPECT_FALSE(sched.try_acquire(sim, &c));
  EXPECT_EQ(sched.resident(), 2u);
  EXPECT_EQ(sched.queued(), 1u);
}

TEST(SmScheduler, ReleaseWakesWaiterFifo) {
  Simulation sim;
  SmScheduler sched(1);
  ProbeActor a, b, c;
  ASSERT_TRUE(sched.try_acquire(sim, &a));
  EXPECT_FALSE(sched.try_acquire(sim, &b));
  EXPECT_FALSE(sched.try_acquire(sim, &c));
  sched.release(sim);  // wakes b (scheduled at now)
  sim.run();
  EXPECT_EQ(b.times.size(), 1u);  // b got woken
  EXPECT_TRUE(c.times.empty());
  EXPECT_TRUE(sched.try_acquire(sim, &b));  // b retries and wins
}

TEST(SmScheduler, DoubleEnqueueIsIdempotent) {
  Simulation sim;
  SmScheduler sched(0);
  ProbeActor a;
  EXPECT_FALSE(sched.try_acquire(sim, &a));
  EXPECT_FALSE(sched.try_acquire(sim, &a));
  EXPECT_EQ(sched.queued(), 1u);
}

// ---------------- device_props / shared_memory ----------------

TEST(DeviceProps, TableIIValues) {
  const auto dev = DeviceProps::rtx_a6000();
  EXPECT_EQ(dev.num_sms, 84u);
  EXPECT_EQ(dev.max_blocks_per_sm, 16u);
  EXPECT_EQ(dev.max_threads_per_block, 1024u);
  EXPECT_EQ(dev.warp_size, 32u);
  EXPECT_EQ(dev.shared_mem_per_block, 48u * 1024);
  EXPECT_EQ(dev.shared_mem_per_sm, 100u * 1024);
  EXPECT_EQ(dev.reserved_shared_mem_per_block, 1024u);
  EXPECT_EQ(dev.shared_mem_per_block_optin, 99u * 1024);
  EXPECT_EQ(dev.max_resident_blocks(), 84u * 16);
}

TEST(SharedMemory, LayoutByteMath) {
  SharedMemoryLayout layout;
  layout.candidate_entries = 128;
  layout.expand_entries = 64;
  layout.dim = 128;
  EXPECT_EQ(layout.candidate_bytes(), 128u * 8);
  EXPECT_EQ(layout.expand_bytes(), 64u * 8);
  EXPECT_EQ(layout.query_bytes(), 128u * 4);
  EXPECT_EQ(layout.total_bytes(),
            128u * 8 + 64u * 8 + 128u * 4 + layout.control_bytes());
}

TEST(SharedMemory, OccupancyFitsSmallLayout) {
  const auto dev = DeviceProps::rtx_a6000();
  SharedMemoryLayout layout;
  layout.candidate_entries = 128;
  layout.expand_entries = 64;
  layout.dim = 128;
  const auto occ = check_occupancy(dev, layout, 8, 1024);
  EXPECT_TRUE(occ.fits) << occ.reason;
  EXPECT_EQ(occ.blocks_per_sm, 8u);
  // 100KiB/8 - 1KiB = 11.5KiB available.
  EXPECT_EQ(occ.avail_per_block, 100u * 1024 / 8 - 1024);
}

TEST(SharedMemory, OccupancyRejectsOversizedLayout) {
  const auto dev = DeviceProps::rtx_a6000();
  SharedMemoryLayout layout;
  layout.candidate_entries = 4096;
  layout.expand_entries = 4096;
  layout.dim = 960;
  const auto occ = check_occupancy(dev, layout, 16, 1024);
  EXPECT_FALSE(occ.fits);
  EXPECT_NE(occ.reason.find("layout needs"), std::string::npos);
}

TEST(SharedMemory, OccupancyRejectsBlockLimit) {
  const auto dev = DeviceProps::rtx_a6000();
  SharedMemoryLayout layout;
  layout.candidate_entries = 32;
  layout.dim = 16;
  EXPECT_FALSE(check_occupancy(dev, layout, 17, 1024).fits);
  EXPECT_FALSE(check_occupancy(dev, layout, 0, 1024).fits);
}

TEST(SharedMemory, OptinCapsAvailability) {
  const auto dev = DeviceProps::rtx_a6000();
  SharedMemoryLayout layout;
  layout.candidate_entries = 32;
  layout.dim = 16;
  const auto occ = check_occupancy(dev, layout, 1, 0);
  EXPECT_TRUE(occ.fits);
  EXPECT_EQ(occ.avail_per_block, dev.shared_mem_per_block_optin);
}

// ---------------- cost_model.hpp ----------------

TEST(CostModel, DistanceScalesWithDimChunks) {
  CostModel cm;
  // 128 dims = 4 chunks of 32; 960 dims = 30 chunks.
  const double d128 = cm.distance_round_ns(128, 10);
  const double d960 = cm.distance_round_ns(960, 10);
  EXPECT_GT(d960, d128);
  EXPECT_NEAR(d128, 10 * (cm.dist_base_ns + 4 * cm.dist_chunk_ns), 1e-9);
}

TEST(CostModel, BitonicSortStageCount) {
  CostModel cm;
  // n=64: k=6 -> 21 stages, 1 wavefront of 32 pairs each.
  EXPECT_NEAR(cm.bitonic_sort_ns(64), 21 * cm.sort_wavefront_ns, 1e-9);
  // Merge of 64: 6 stages.
  EXPECT_NEAR(cm.bitonic_merge_ns(64), 6 * cm.sort_wavefront_ns, 1e-9);
  EXPECT_EQ(cm.bitonic_sort_ns(1), 0.0);
}

TEST(CostModel, GpuMergeMoreExpensiveThanHostMerge) {
  CostModel cm;
  // The §III-B motivation: cross-CTA global-memory merge is costly.
  EXPECT_GT(cm.gpu_topk_merge_ns(8, 128), cm.host_topk_merge_ns(8, 16));
  EXPECT_EQ(cm.gpu_topk_merge_ns(1, 128), 0.0);
}

}  // namespace
}  // namespace algas::sim
