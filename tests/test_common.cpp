#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/bitset.hpp"
#include "common/env.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/thread_pool.hpp"
#include "common/types.hpp"

namespace algas {
namespace {

// ---------------- types.hpp ----------------

TEST(Types, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(64), 64u);
  EXPECT_EQ(next_pow2(65), 128u);
  EXPECT_EQ(next_pow2(1000), 1024u);
}

TEST(Types, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(4096));
  EXPECT_FALSE(is_pow2(4095));
}

TEST(Types, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 4), 0u);
  EXPECT_EQ(ceil_div(1, 4), 1u);
  EXPECT_EQ(ceil_div(4, 4), 1u);
  EXPECT_EQ(ceil_div(5, 4), 2u);
  EXPECT_EQ(ceil_div(128, 32), 4u);
}

// ---------------- rng.hpp ----------------

TEST(Rng, Deterministic) {
  Rng a(99), b(99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, FloatRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const float f = rng.next_float();
    EXPECT_GE(f, 0.0f);
    EXPECT_LT(f, 1.0f);
  }
}

TEST(Rng, NextBelowBounds) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.next_below(17);
    EXPECT_LT(v, 17u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 17u);  // all residues hit over 1000 draws
}

TEST(Rng, GaussianMoments) {
  Rng rng(42);
  double sum = 0.0, sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.next_gaussian();
    sum += g;
    sq += g * g;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, Splitmix64Stateless) {
  EXPECT_EQ(splitmix64(1), splitmix64(1));
  EXPECT_NE(splitmix64(1), splitmix64(2));
}

// ---------------- stats.hpp ----------------

TEST(SampleStats, BasicMoments) {
  SampleStats s;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(v);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(2.5), 1e-12);
}

TEST(SampleStats, Percentiles) {
  SampleStats s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_NEAR(s.percentile(0), 1.0, 1e-9);
  EXPECT_NEAR(s.percentile(100), 100.0, 1e-9);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(99), 99.01, 0.01);
}

TEST(SampleStats, EmptySafe) {
  SampleStats s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.percentile(50), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(SampleStats, AppendInvalidatesSort) {
  SampleStats s;
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.max(), 10.0);
}

TEST(SampleStats, ExtremaTrackedWithoutSort) {
  // min()/max() are running extrema: correct immediately after every add
  // and after clear(), without touching the lazy percentile sort.
  SampleStats s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
  s.add(-7.0);
  s.add(11.0);
  EXPECT_DOUBLE_EQ(s.min(), -7.0);
  EXPECT_DOUBLE_EQ(s.max(), 11.0);
  s.clear();
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
  s.add(2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 2.0);
}

TEST(Histogram, BinningAndOutOfRange) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);    // bin 0
  h.add(9.99);   // bin 9
  h.add(-5.0);   // below range: counted as underflow, not clamped in
  h.add(42.0);   // above range: counted as overflow, not clamped in
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(9), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 3.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(3), 4.0);
}

TEST(Histogram, UpperEdgeIsOverflow) {
  // [lo, hi) is half-open: a sample exactly at hi overflows.
  Histogram h(0.0, 4.0, 4);
  h.add(4.0);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.bin_count(3), 0u);
}

TEST(Histogram, RejectsBadArgs) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
}

TEST(Histogram, MergeSumsBinsAndOutOfRangeCounts) {
  Histogram a(0.0, 10.0, 10);
  a.add(0.5);
  a.add(-1.0);
  Histogram b(0.0, 10.0, 10);
  b.add(0.7);
  b.add(5.5);
  b.add(42.0);
  a.merge(b);
  EXPECT_EQ(a.bin_count(0), 2u);
  EXPECT_EQ(a.bin_count(5), 1u);
  EXPECT_EQ(a.underflow(), 1u);
  EXPECT_EQ(a.overflow(), 1u);
  EXPECT_EQ(a.total(), 5u);
}

TEST(Histogram, MergeRejectsGeometryMismatch) {
  Histogram a(0.0, 10.0, 10);
  EXPECT_THROW(a.merge(Histogram(0.0, 10.0, 5)), std::invalid_argument);
  EXPECT_THROW(a.merge(Histogram(0.0, 20.0, 10)), std::invalid_argument);
  EXPECT_THROW(a.merge(Histogram(1.0, 10.0, 10)), std::invalid_argument);
}

TEST(Histogram, TsvHasOneLinePerBin) {
  Histogram h(0.0, 4.0, 4);
  h.add(1.0);
  const std::string tsv = h.to_tsv();
  EXPECT_EQ(std::count(tsv.begin(), tsv.end(), '\n'), 4);
}

TEST(Histogram, TsvAppendsOutOfRangeRows) {
  Histogram h(0.0, 4.0, 4);
  h.add(1.0);
  h.add(-1.0);
  h.add(99.0);
  const std::string tsv = h.to_tsv();
  // 4 bin rows + underflow row + overflow row.
  EXPECT_EQ(std::count(tsv.begin(), tsv.end(), '\n'), 6);
  EXPECT_NE(tsv.find("-inf\t0\t1\t"), std::string::npos);
  EXPECT_NE(tsv.find("4\tinf\t1\t"), std::string::npos);
}

// ---------------- bitset.hpp ----------------

TEST(Bitset, SetTestReset) {
  Bitset b(200);
  EXPECT_FALSE(b.test(63));
  b.set(63);
  b.set(64);
  b.set(199);
  EXPECT_TRUE(b.test(63));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(199));
  EXPECT_FALSE(b.test(0));
  EXPECT_EQ(b.count(), 3u);
  b.reset(64);
  EXPECT_FALSE(b.test(64));
  EXPECT_EQ(b.count(), 2u);
}

TEST(Bitset, TestAndSetSemantics) {
  Bitset b(128);
  EXPECT_FALSE(b.test_and_set(77));
  EXPECT_TRUE(b.test_and_set(77));
  EXPECT_TRUE(b.test(77));
}

TEST(Bitset, ClearResetsAll) {
  Bitset b(1000);
  for (std::size_t i = 0; i < 1000; i += 7) b.set(i);
  b.clear();
  EXPECT_EQ(b.count(), 0u);
}

// ---------------- thread_pool.hpp ----------------

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmpty) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t, std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, SubmitAndWait) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, SingleThreadPoolStillWorks) {
  ThreadPool pool(1);
  std::atomic<int> count{0};
  pool.parallel_for(10, [&](std::size_t b, std::size_t e) {
    count.fetch_add(static_cast<int>(e - b));
  });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, ParallelForPropagatesWorkerException) {
  // The throwing chunk can land on a worker thread or on the caller (the
  // caller runs the last chunk); both must surface at the call site.
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(1000,
                                 [&](std::size_t b, std::size_t) {
                                   if (b == 0) {
                                     throw std::runtime_error("chunk failed");
                                   }
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ParallelForPropagatesCallerChunkException) {
  ThreadPool pool(4);
  // The caller always runs the final chunk: throw only there.
  EXPECT_THROW(pool.parallel_for(1000,
                                 [&](std::size_t, std::size_t e) {
                                   if (e == 1000) {
                                     throw std::runtime_error("tail failed");
                                   }
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, PoolIsReusableAfterException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(
                   100, [](std::size_t, std::size_t) { throw 42; }),
               int);
  std::atomic<int> count{0};
  pool.parallel_for(100, [&](std::size_t b, std::size_t e) {
    count.fetch_add(static_cast<int>(e - b));
  });
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, SubmitExceptionSurfacesAtWaitIdle) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The error is consumed: the next wait is clean.
  pool.submit([] {});
  EXPECT_NO_THROW(pool.wait_idle());
}

TEST(ThreadPool, NestedParallelForRejected) {
  ThreadPool outer(2);
  ThreadPool inner(2);
  std::atomic<int> nested_throws{0};
  outer.parallel_for(8, [&](std::size_t, std::size_t) {
    try {
      inner.parallel_for(4, [](std::size_t, std::size_t) {});
    } catch (const std::logic_error&) {
      nested_throws.fetch_add(1);
    }
  });
  EXPECT_GT(nested_throws.load(), 0);
}

TEST(ThreadPool, StressManyParallelForRounds) {
  ThreadPool pool(8);
  std::vector<std::atomic<std::uint64_t>> sums(64);
  for (int round = 0; round < 200; ++round) {
    pool.parallel_for(64, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) sums[i].fetch_add(i);
    });
  }
  for (std::size_t i = 0; i < sums.size(); ++i) {
    EXPECT_EQ(sums[i].load(), 200u * i);
  }
}

TEST(BuildExecutorTest, SerialExecutorRunsInline) {
  BuildExecutor exec(1);
  EXPECT_EQ(exec.threads(), 1u);
  const auto caller = std::this_thread::get_id();
  exec.parallel_for(10, [&](std::size_t, std::size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

TEST(BuildExecutorTest, ParallelExecutorCoversRange) {
  BuildExecutor exec(4);
  EXPECT_EQ(exec.threads(), 4u);
  std::vector<std::atomic<int>> hits(777);
  exec.parallel_for(777, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(BuildExecutorTest, ZeroResolvesFromEnvironment) {
  ::setenv("ALGAS_BUILD_THREADS", "3", 1);
  BuildExecutor exec(0);
  EXPECT_EQ(exec.threads(), 3u);
  ::unsetenv("ALGAS_BUILD_THREADS");
  BuildExecutor hw(0);
  EXPECT_GE(hw.threads(), 1u);
}

// ---------------- env.hpp ----------------

TEST(Env, Fallbacks) {
  ::unsetenv("ALGAS_TEST_VAR");
  EXPECT_DOUBLE_EQ(env_double("ALGAS_TEST_VAR", 2.5), 2.5);
  EXPECT_EQ(env_size("ALGAS_TEST_VAR", 7), 7u);
  EXPECT_EQ(env_string("ALGAS_TEST_VAR", "x"), "x");
}

TEST(Env, ParsesValues) {
  ::setenv("ALGAS_TEST_VAR", "3.25", 1);
  EXPECT_DOUBLE_EQ(env_double("ALGAS_TEST_VAR", 0.0), 3.25);
  ::setenv("ALGAS_TEST_VAR", "123", 1);
  EXPECT_EQ(env_size("ALGAS_TEST_VAR", 0), 123u);
  ::setenv("ALGAS_TEST_VAR", "junk", 1);
  EXPECT_DOUBLE_EQ(env_double("ALGAS_TEST_VAR", 9.0), 9.0);
  ::unsetenv("ALGAS_TEST_VAR");
}

TEST(Env, ScaleClamped) {
  ::setenv("ALGAS_SCALE", "10000", 1);
  EXPECT_DOUBLE_EQ(dataset_scale(), 100.0);
  ::setenv("ALGAS_SCALE", "0.0001", 1);
  EXPECT_DOUBLE_EQ(dataset_scale(), 0.01);
  ::unsetenv("ALGAS_SCALE");
}

TEST(RuntimeOptionsTest, DefaultsWhenUnset) {
  for (const char* var :
       {"ALGAS_SCALE", "ALGAS_QUERIES", "ALGAS_DATASETS", "ALGAS_CACHE_DIR",
        "ALGAS_STORAGE", "ALGAS_TRACE", "ALGAS_SIMCHECK",
        "ALGAS_BUILD_THREADS"}) {
    ::unsetenv(var);
  }
  const RuntimeOptions opts = RuntimeOptions::from_env();
  EXPECT_DOUBLE_EQ(opts.scale, 1.0);
  EXPECT_EQ(opts.queries, 0u);
  EXPECT_EQ(opts.datasets, "sift,gist,glove,nytimes");
  EXPECT_EQ(opts.cache_dir, "./algas_cache");
  EXPECT_EQ(opts.storage, "f32");
  EXPECT_TRUE(opts.trace_path.empty());
  EXPECT_EQ(opts.simcheck, -1);
  EXPECT_EQ(opts.build_threads, 0u);
}

TEST(RuntimeOptionsTest, ReadsEveryKnob) {
  ::setenv("ALGAS_SCALE", "0.5", 1);
  ::setenv("ALGAS_QUERIES", "40", 1);
  ::setenv("ALGAS_DATASETS", "sift", 1);
  ::setenv("ALGAS_CACHE_DIR", "/tmp/algas_test_cache", 1);
  ::setenv("ALGAS_STORAGE", "f16", 1);
  ::setenv("ALGAS_TRACE", "out.json", 1);
  ::setenv("ALGAS_SIMCHECK", "on", 1);
  ::setenv("ALGAS_BUILD_THREADS", "2", 1);
  const RuntimeOptions opts = RuntimeOptions::from_env();
  EXPECT_DOUBLE_EQ(opts.scale, 0.5);
  EXPECT_EQ(opts.queries, 40u);
  EXPECT_EQ(opts.datasets, "sift");
  EXPECT_EQ(opts.cache_dir, "/tmp/algas_test_cache");
  EXPECT_EQ(opts.storage, "f16");
  EXPECT_EQ(opts.trace_path, "out.json");
  EXPECT_EQ(opts.simcheck, 1);
  EXPECT_EQ(opts.build_threads, 2u);
  for (const char* var :
       {"ALGAS_SCALE", "ALGAS_QUERIES", "ALGAS_DATASETS", "ALGAS_CACHE_DIR",
        "ALGAS_STORAGE", "ALGAS_TRACE", "ALGAS_SIMCHECK",
        "ALGAS_BUILD_THREADS"}) {
    ::unsetenv(var);
  }
}

TEST(RuntimeOptionsTest, SimcheckParsesOnOffAndGarbage) {
  ::setenv("ALGAS_SIMCHECK", "1", 1);
  EXPECT_EQ(RuntimeOptions::from_env().simcheck, 1);
  ::setenv("ALGAS_SIMCHECK", "off", 1);
  EXPECT_EQ(RuntimeOptions::from_env().simcheck, 0);
  ::setenv("ALGAS_SIMCHECK", "maybe", 1);
  EXPECT_EQ(RuntimeOptions::from_env().simcheck, -1);
  ::unsetenv("ALGAS_SIMCHECK");
}

}  // namespace
}  // namespace algas
