// Filtered search: the AcceptPredicate API (bitset filters, tombstones,
// conjunction, shard-offset views), selectivity-aware widening, the
// null-predicate byte-identity guarantee, filtered ground truth, and the
// sharded fanout fallback when routing lands on filter-empty shards.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/sharded_engine.hpp"
#include "dataset/ground_truth.hpp"
#include "dataset/io.hpp"
#include "dataset/synthetic.hpp"
#include "metrics/recall.hpp"
#include "search/accept.hpp"
#include "search/search_params.hpp"
#include "test_util.hpp"

namespace algas {
namespace {

using search::AcceptPredicate;
using search::NodeBitset;

// ---------------- search/accept.hpp ----------------

TEST(NodeBitset, SetTestCount) {
  NodeBitset bits(130);  // straddles two-and-a-bit words
  EXPECT_EQ(bits.size(), 130u);
  EXPECT_EQ(bits.count(), 0u);
  bits.set(0);
  bits.set(63);
  bits.set(64);
  bits.set(129);
  EXPECT_TRUE(bits.test(0));
  EXPECT_TRUE(bits.test(63));
  EXPECT_TRUE(bits.test(64));
  EXPECT_TRUE(bits.test(129));
  EXPECT_FALSE(bits.test(1));
  EXPECT_EQ(bits.count(), 4u);
  bits.reset(63);
  EXPECT_FALSE(bits.test(63));
  EXPECT_EQ(bits.count(), 3u);
  EXPECT_EQ(bits.count_range(0, 64), 1u);
  EXPECT_EQ(bits.count_range(64, 130), 2u);
}

TEST(NodeBitset, AllTrueConstructionKeepsTailClear) {
  NodeBitset bits(70, true);
  EXPECT_EQ(bits.count(), 70u);  // bits 70..127 must not leak into count
  EXPECT_TRUE(bits.test(0));
  EXPECT_TRUE(bits.test(69));
}

TEST(AcceptPredicate, NullAcceptsEverything) {
  const AcceptPredicate p;
  EXPECT_TRUE(p.null());
  EXPECT_FALSE(p.has_filter());
  EXPECT_FALSE(p.has_tombstones());
  EXPECT_TRUE(p.accepts(0));
  EXPECT_TRUE(p.accepts(123456));
  EXPECT_DOUBLE_EQ(p.selectivity(1000), 1.0);
}

TEST(AcceptPredicate, FilterTombstoneConjunction) {
  NodeBitset wanted(8);
  wanted.set(1);
  wanted.set(2);
  wanted.set(3);
  TombstoneSet dead(8);
  dead.mark(2);
  const AcceptPredicate p(&wanted, &dead);
  EXPECT_FALSE(p.null());
  EXPECT_FALSE(p.accepts(0));  // rejected by filter
  EXPECT_TRUE(p.accepts(1));
  EXPECT_FALSE(p.accepts(2));  // passes filter, tombstoned
  EXPECT_TRUE(p.accepts(3));
  EXPECT_EQ(p.accepted_in_range(0, 8), 2u);
  EXPECT_DOUBLE_EQ(p.selectivity(8), 0.25);

  // with_tombstones grafts a set onto a filter-only predicate — the
  // MutableIndex::serve conjunction path.
  const AcceptPredicate filter_only(&wanted);
  EXPECT_TRUE(filter_only.accepts(2));
  EXPECT_FALSE(filter_only.with_tombstones(&dead).accepts(2));
}

TEST(AcceptPredicate, OffsetViewShiftsIntoGlobalIds) {
  NodeBitset global(10);
  global.set(7);
  global.set(8);
  const AcceptPredicate p(&global);
  // A shard whose rows start at global id 6: local 1 -> global 7.
  const AcceptPredicate shard = p.with_offset(6);
  EXPECT_FALSE(shard.accepts(0));
  EXPECT_TRUE(shard.accepts(1));
  EXPECT_TRUE(shard.accepts(2));
  EXPECT_FALSE(shard.accepts(3));
  EXPECT_EQ(shard.accepted_in_range(0, 4), 2u);
  // Offsets accumulate.
  EXPECT_TRUE(p.with_offset(3).with_offset(4).accepts(0));
}

TEST(AcceptPredicate, OutOfRangeIdsAreAccepted) {
  // Matches the tombstone idiom: rows published after the structures were
  // sized are live and unfiltered.
  NodeBitset bits(4);
  const AcceptPredicate p(&bits);
  EXPECT_FALSE(p.accepts(3));
  EXPECT_TRUE(p.accepts(4));
  EXPECT_TRUE(p.accepts(100));
}

// ---------------- search/search_params.hpp ----------------

TEST(SearchParams, WideningStaircase) {
  search::SearchConfig cfg;
  cfg.candidate_len = 128;
  // Selectivity above 0.5 never widens: a lightly tombstoned serving view
  // keeps its exact unfiltered work (and byte-identity).
  EXPECT_EQ(search::widen_for_selectivity(cfg, 1.0).candidate_len, 128u);
  EXPECT_EQ(search::widen_for_selectivity(cfg, 0.99).candidate_len, 128u);
  EXPECT_EQ(search::widen_for_selectivity(cfg, 0.51).candidate_len, 128u);
  EXPECT_EQ(search::widen_for_selectivity(cfg, 0.5).candidate_len, 256u);
  EXPECT_EQ(search::widen_for_selectivity(cfg, 0.3).candidate_len, 512u);
  EXPECT_EQ(search::widen_for_selectivity(cfg, 0.1).candidate_len, 1024u);
  // The cap bounds pathological selectivities, including zero.
  EXPECT_EQ(search::widen_for_selectivity(cfg, 0.001).candidate_len, 1024u);
  EXPECT_EQ(search::widen_for_selectivity(cfg, 0.0).candidate_len, 1024u);
  EXPECT_EQ(search::widen_for_selectivity(cfg, 0.001, 16).candidate_len,
            2048u);
  EXPECT_EQ(search::widen_for_selectivity(cfg, 0.001, 1).candidate_len, 128u);
}

TEST(SearchParams, ScaledCandidateLen) {
  EXPECT_EQ(search::scaled_candidate_len(128, 10, 0), 128u);
  EXPECT_EQ(search::scaled_candidate_len(128, 10, 1), 128u);
  EXPECT_EQ(search::scaled_candidate_len(128, 10, 4), 32u);
  EXPECT_EQ(search::scaled_candidate_len(128, 10, 3), 43u);  // ceil
  EXPECT_EQ(search::scaled_candidate_len(16, 10, 4), 10u);   // topk floor
}

// ---------------- engine integration ----------------

core::AlgasConfig small_config() {
  core::AlgasConfig cfg;
  cfg.search.topk = 10;
  cfg.search.candidate_len = 64;
  cfg.search.beam_width = 2;
  cfg.slots = 8;
  cfg.host_threads = 1;
  cfg.n_parallel = 2;
  return cfg;
}

std::vector<std::vector<KV>> results_by_query(
    const core::EngineReport& rep, std::size_t nq) {
  std::vector<std::vector<KV>> out(nq);
  for (const auto& rec : rep.collector.records()) {
    out[rec.query_index] = rec.results;
  }
  return out;
}

TEST(FilteredSearch, AcceptAllBitsetMatchesNullPredicateExactly) {
  const auto& world = algas::testing::tiny_world();
  const std::size_t nq = 24;

  const auto plain = core::AlgasEngine(world.ds, world.nsw, small_config())
                         .run_closed_loop(nq);

  // selectivity == 1.0, so no widening happens and the traversal accepts
  // every candidate: the filtered run must be indistinguishable.
  NodeBitset all(world.ds.num_base(), true);
  core::AlgasConfig cfg = small_config();
  cfg.search.accept = AcceptPredicate(&all);
  const auto filtered =
      core::AlgasEngine(world.ds, world.nsw, cfg).run_closed_loop(nq);

  const auto a = results_by_query(plain, nq);
  const auto b = results_by_query(filtered, nq);
  for (std::size_t q = 0; q < nq; ++q) {
    ASSERT_EQ(a[q].size(), b[q].size()) << "query " << q;
    for (std::size_t i = 0; i < a[q].size(); ++i) {
      EXPECT_EQ(a[q][i].id(), b[q][i].id()) << "query " << q;
      EXPECT_EQ(a[q][i].dist, b[q][i].dist) << "query " << q;
    }
  }
}

TEST(FilteredSearch, ZeroSelectivityReturnsEmptyAndTerminates) {
  const auto& world = algas::testing::tiny_world();
  NodeBitset none(world.ds.num_base());  // accepts nothing
  core::AlgasConfig cfg = small_config();
  cfg.search.accept = AcceptPredicate(&none);
  const auto rep =
      core::AlgasEngine(world.ds, world.nsw, cfg).run_closed_loop(16);
  ASSERT_EQ(rep.collector.records().size(), 16u);
  for (const auto& rec : rep.collector.records()) {
    EXPECT_TRUE(rec.results.empty());
  }
}

TEST(FilteredSearch, EntryPointExcludedStillRoutesThroughIt) {
  const auto& world = algas::testing::tiny_world();
  const std::size_t nq = 24;
  const NodeId entry = world.nsw.entry_point();

  // Accept everything except the entry point: traversal must still start
  // there and fan out normally, only the accept step drops it.
  NodeBitset bits(world.ds.num_base(), true);
  bits.reset(entry);
  core::AlgasConfig cfg = small_config();
  cfg.search.accept = AcceptPredicate(&bits);
  const auto rep =
      core::AlgasEngine(world.ds, world.nsw, cfg).run_closed_loop(nq);

  const auto gt = compute_filtered_ground_truth(world.ds, 10,
                                                AcceptPredicate(&bits));
  double total = 0.0;
  for (const auto& rec : rep.collector.records()) {
    EXPECT_FALSE(rec.results.empty());
    for (const KV& kv : rec.results) EXPECT_NE(kv.id(), entry);
    total += metrics::recall_against(
        {gt.data() + rec.query_index * 10, 10}, rec.results, 10);
  }
  EXPECT_GT(total / static_cast<double>(nq), 0.8);
}

TEST(FilteredSearch, SelectiveFilterFindsAcceptedNeighbors) {
  const auto& world = algas::testing::tiny_world();
  const std::size_t nq = 24;
  // ~10% of rows by hashed attribute (category 0 of 16 via the synthetic
  // attribute stream would do, but an arithmetic stripe is self-contained).
  NodeBitset bits(world.ds.num_base());
  for (NodeId v = 0; v < world.ds.num_base(); v += 10) bits.set(v);
  const AcceptPredicate accept(&bits);

  core::AlgasConfig cfg = small_config();
  cfg.search.accept = accept;
  core::AlgasEngine engine(world.ds, world.nsw, cfg);
  // Selectivity 0.1 widens the candidate list 8x (cap) before clamping.
  EXPECT_EQ(engine.config().search.candidate_len, 512u);
  const auto rep = engine.run_closed_loop(nq);

  const auto gt = compute_filtered_ground_truth(world.ds, 10, accept);
  double total = 0.0;
  for (const auto& rec : rep.collector.records()) {
    for (const KV& kv : rec.results) EXPECT_TRUE(accept.accepts(kv.id()));
    total += metrics::recall_against(
        {gt.data() + rec.query_index * 10, 10}, rec.results, 10);
  }
  EXPECT_GT(total / static_cast<double>(nq), 0.8);
}

TEST(FilteredSearch, DeterministicAcrossHostThreadCounts) {
  const auto& world = algas::testing::tiny_world();
  const std::size_t nq = 24;
  NodeBitset bits(world.ds.num_base());
  for (NodeId v = 0; v < world.ds.num_base(); v += 7) bits.set(v);

  auto run = [&](std::size_t hosts) {
    core::AlgasConfig cfg = small_config();
    cfg.search.accept = AcceptPredicate(&bits);
    cfg.host_threads = hosts;
    return results_by_query(
        core::AlgasEngine(world.ds, world.nsw, cfg).run_closed_loop(nq), nq);
  };
  const auto one = run(1);
  const auto four = run(4);
  for (std::size_t q = 0; q < nq; ++q) {
    ASSERT_EQ(one[q].size(), four[q].size()) << "query " << q;
    for (std::size_t i = 0; i < one[q].size(); ++i) {
      EXPECT_EQ(one[q][i].id(), four[q][i].id()) << "query " << q;
      EXPECT_EQ(one[q][i].dist, four[q][i].dist) << "query " << q;
    }
  }
}

// ---------------- sharded fanout fallback ----------------

TEST(FilteredSharded, RoutesFallBackWhenSelectedShardsAreFilterEmpty) {
  const auto& world = algas::testing::tiny_world();
  core::ShardedConfig cfg;
  cfg.base = small_config();
  cfg.shards = 3;
  cfg.fanout = 1;  // selective routing — the fallback's precondition
  cfg.build.degree = 16;
  cfg.build.ef_construction = 48;

  // Accept rows only inside shard 2's range; affinity routing knows
  // nothing about that and will often pick shards 0/1.
  core::ShardedEngine probe(world.ds, cfg);  // to read the partition
  const auto r2 = probe.partition().range(2);
  NodeBitset bits(world.ds.num_base());
  for (NodeId v = r2.begin; v < r2.end; v += 3) bits.set(v);
  const AcceptPredicate accept(&bits);

  cfg.base.search.accept = accept;
  core::ShardedEngine engine(world.ds, cfg);
  bool fell_back = false;
  for (std::size_t q = 0; q < world.ds.num_queries(); ++q) {
    const auto route = engine.route(q);
    // Either the route covers shard 2, or it fell back to full fanout —
    // a route that would return zero accepted rows is never emitted.
    std::size_t accepted = 0;
    for (const std::size_t s : route) {
      const auto r = engine.partition().range(s);
      accepted += accept.accepted_in_range(r.begin, r.end);
    }
    EXPECT_GT(accepted, 0u) << "query " << q;
    if (route.size() == cfg.shards) fell_back = true;
  }
  EXPECT_TRUE(fell_back);  // the guard actually fired for this layout

  const auto rep = engine.run_closed_loop(16);
  for (const auto& rec : rep.merged.collector.records()) {
    ASSERT_FALSE(rec.results.empty());
    for (const KV& kv : rec.results) {
      EXPECT_TRUE(accept.accepts(kv.id()));
    }
  }
}

TEST(FilteredSharded, RejectsTombstonePredicates) {
  const auto& world = algas::testing::tiny_world();
  TombstoneSet dead(world.ds.num_base());
  core::ShardedConfig cfg;
  cfg.base = small_config();
  cfg.shards = 2;
  cfg.build.degree = 16;
  cfg.build.ef_construction = 48;
  cfg.base.search.accept = AcceptPredicate::deleted_only(&dead);
  EXPECT_THROW(core::ShardedEngine(world.ds, cfg), std::invalid_argument);
}

// ---------------- attributes: dataset + io ----------------

TEST(Attributes, SyntheticGenerationIsStatelessPerRow) {
  SyntheticSpec spec;
  spec.num_base = 300;
  spec.num_queries = 4;
  spec.dim = 8;
  const Dataset ds = make_synthetic(spec);
  ASSERT_TRUE(ds.has_attributes());
  ASSERT_EQ(ds.categories().size(), 300u);
  ASSERT_EQ(ds.timestamps().size(), 300u);

  // Same rows under a smaller generation: attributes are a pure function
  // of (seed, row id), not of the dataset size.
  SyntheticSpec small = spec;
  small.num_base = 100;
  const Dataset ds2 = make_synthetic(small);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(ds.categories()[i], ds2.categories()[i]);
    EXPECT_EQ(ds.timestamps()[i], ds2.timestamps()[i]);
  }
  // All categories land in range.
  AttributeSpec aspec;
  for (const std::uint32_t c : ds.categories()) {
    EXPECT_LT(c, aspec.categories);
  }
}

TEST(Attributes, AppendDropsThem) {
  SyntheticSpec spec;
  spec.num_base = 50;
  spec.num_queries = 2;
  spec.dim = 4;
  Dataset ds = make_synthetic(spec);
  ASSERT_TRUE(ds.has_attributes());
  const std::vector<float> row(4, 0.5f);
  ds.append_base(row);
  EXPECT_FALSE(ds.has_attributes());
}

TEST(Attributes, DatasetFileRoundTrip) {
  SyntheticSpec spec;
  spec.num_base = 60;
  spec.num_queries = 3;
  spec.dim = 4;
  Dataset ds = make_synthetic(spec);
  const std::string path = ::testing::TempDir() + "attrs_roundtrip.abin";
  save_dataset(ds, path);
  const Dataset loaded = load_dataset(path);
  ASSERT_TRUE(loaded.has_attributes());
  EXPECT_EQ(loaded.categories(), ds.categories());
  EXPECT_EQ(loaded.timestamps(), ds.timestamps());

  // Attribute-free datasets write the pre-trailer format and load clean.
  ds.clear_attributes();
  save_dataset(ds, path);
  const Dataset bare = load_dataset(path);
  EXPECT_FALSE(bare.has_attributes());
  EXPECT_EQ(bare.base(), ds.base());
  std::remove(path.c_str());
}

// ---------------- filtered ground truth + recall ----------------

TEST(FilteredGroundTruth, RestrictsAndPads) {
  const auto& world = algas::testing::tiny_world();
  NodeBitset bits(world.ds.num_base());
  bits.set(5);
  bits.set(17);
  bits.set(99);
  const AcceptPredicate accept(&bits);
  const auto gt = compute_filtered_ground_truth(world.ds, 10, accept);
  ASSERT_EQ(gt.size(), world.ds.num_queries() * 10);
  for (std::size_t q = 0; q < world.ds.num_queries(); ++q) {
    // Exactly 3 accepted rows exist: 3 real entries, 7 pads, ascending.
    std::size_t real = 0;
    for (std::size_t i = 0; i < 10; ++i) {
      const NodeId id = gt[q * 10 + i];
      if (id == kInvalidNode) continue;
      ++real;
      EXPECT_TRUE(accept.accepts(id));
    }
    EXPECT_EQ(real, 3u);
  }
}

TEST(RecallAgainst, PaddedTruthUsesAcceptedDenominator) {
  const std::vector<NodeId> truth{4, 9, kInvalidNode, kInvalidNode};
  const std::vector<KV> exact{KV::make(0.1f, 4), KV::make(0.2f, 9)};
  EXPECT_DOUBLE_EQ(metrics::recall_against(truth, exact, 4), 1.0);
  const std::vector<KV> half{KV::make(0.1f, 4), KV::make(0.2f, 8)};
  EXPECT_DOUBLE_EQ(metrics::recall_against(truth, half, 4), 0.5);
  const std::vector<NodeId> empty_truth(4, kInvalidNode);
  EXPECT_DOUBLE_EQ(metrics::recall_against(empty_truth, exact, 4), 1.0);
}

}  // namespace
}  // namespace algas
