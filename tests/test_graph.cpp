#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>

#include "graph/builder.hpp"
#include "graph/gpu_construction.hpp"
#include "metrics/recall.hpp"
#include "search/multi_cta.hpp"
#include "graph/graph.hpp"
#include "test_util.hpp"

namespace algas {
namespace {

// ---------------- graph.hpp ----------------

TEST(Graph, EmptyRowsArePadding) {
  Graph g(4, 3);
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.degree(), 3u);
  for (NodeId v = 0; v < 4; ++v) {
    EXPECT_EQ(g.valid_degree(v), 0u);
    for (NodeId n : g.neighbors(v)) EXPECT_EQ(n, kInvalidNode);
  }
}

TEST(Graph, MutableNeighborsWrite) {
  Graph g(3, 2);
  auto row = g.mutable_neighbors(1);
  row[0] = 2;
  EXPECT_EQ(g.neighbors(1)[0], 2u);
  EXPECT_EQ(g.valid_degree(1), 1u);
}

TEST(Graph, StatsOnRing) {
  Graph g(5, 2);
  for (NodeId v = 0; v < 5; ++v) {
    auto row = g.mutable_neighbors(v);
    row[0] = (v + 1) % 5;
    row[1] = (v + 4) % 5;
  }
  const auto stats = g.stats();
  EXPECT_DOUBLE_EQ(stats.avg_degree, 2.0);
  EXPECT_EQ(stats.min_degree, 2u);
  EXPECT_EQ(stats.max_degree, 2u);
  EXPECT_DOUBLE_EQ(stats.reachable_fraction, 1.0);
}

TEST(Graph, StatsDetectDisconnection) {
  Graph g(4, 1);
  g.mutable_neighbors(0)[0] = 1;
  g.mutable_neighbors(1)[0] = 0;
  // Nodes 2 and 3 are isolated.
  EXPECT_DOUBLE_EQ(g.stats().reachable_fraction, 0.5);
}

TEST(Graph, SaveLoadRoundTrip) {
  Graph g(6, 4);
  for (NodeId v = 0; v < 6; ++v) {
    g.mutable_neighbors(v)[0] = (v + 1) % 6;
  }
  g.set_entry_point(3);
  const auto path =
      (std::filesystem::temp_directory_path() / "algas_graph.agr").string();
  g.save(path);
  const Graph loaded = Graph::load(path);
  EXPECT_EQ(loaded.num_nodes(), 6u);
  EXPECT_EQ(loaded.degree(), 4u);
  EXPECT_EQ(loaded.entry_point(), 3u);
  EXPECT_EQ(loaded.adjacency(), g.adjacency());
  std::remove(path.c_str());
}

TEST(Graph, LoadRejectsGarbage) {
  const auto path =
      (std::filesystem::temp_directory_path() / "algas_garbage.agr").string();
  {
    std::ofstream out(path);
    out << "this is not a graph";
  }
  EXPECT_THROW(Graph::load(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Graph, GrowExtendsWithPaddingAndKeepsEntry) {
  Graph g(3, 2);
  g.mutable_neighbors(0)[0] = 1;
  g.mutable_neighbors(2)[0] = 0;
  g.set_entry_point(2);
  g.grow(2);
  EXPECT_EQ(g.num_nodes(), 5u);
  EXPECT_EQ(g.entry_point(), 2u);
  // Old rows untouched, new rows all padding.
  EXPECT_EQ(g.neighbors(0)[0], 1u);
  EXPECT_EQ(g.neighbors(2)[0], 0u);
  for (NodeId v = 3; v < 5; ++v) {
    for (NodeId n : g.neighbors(v)) EXPECT_EQ(n, kInvalidNode);
  }
}

TEST(Graph, EntryPointGuardsDegenerateSizes) {
  // A zero-node graph has no valid entry; the accessor reports
  // kInvalidNode instead of handing searches a bogus node 0.
  Graph empty(0, 4);
  EXPECT_EQ(empty.entry_point(), kInvalidNode);
  Graph one(1, 4);
  EXPECT_EQ(one.entry_point(), 0u);
  one.set_entry_point(0);
  EXPECT_EQ(one.entry_point(), 0u);
}

// Each corruption mode gets its own distinct failure instead of a silent
// bad graph (or a crash in a release build).
TEST(Graph, LoadRejectsEveryCorruptionMode) {
  const auto dir = std::filesystem::temp_directory_path();
  Graph g(4, 2);
  g.mutable_neighbors(0)[0] = 3;
  g.set_entry_point(1);
  const auto good = (dir / "algas_good.agr").string();
  g.save(good);
  std::ifstream in(good, std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  in.close();
  std::remove(good.c_str());

  auto write_and_expect_throw = [&](std::vector<char> data,
                                    const char* what) {
    const auto path = (dir / "algas_corrupt.agr").string();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
    out.close();
    EXPECT_THROW(Graph::load(path), std::runtime_error) << what;
    std::remove(path.c_str());
  };

  // Truncated header (cut inside the n/d/entry fields).
  write_and_expect_throw({bytes.begin(), bytes.begin() + 12},
                         "truncated header");
  // Truncated payload (cut inside the adjacency rows).
  write_and_expect_throw({bytes.begin(), bytes.end() - 5},
                         "truncated payload");
  // Trailing bytes after a complete payload.
  {
    auto fat = bytes;
    fat.push_back('x');
    write_and_expect_throw(fat, "trailing bytes");
  }
  // Entry point out of range (n = 4, entry byte patched to 9).
  {
    auto bad = bytes;
    bad[24] = 9;  // u32 entry follows magic(8) + n(8) + d(8)
    write_and_expect_throw(bad, "entry out of range");
  }
  // Neighbor id out of range (valid id patched past n, not kInvalidNode).
  {
    auto bad = bytes;
    bad[28] = 100;  // first adjacency slot, little-endian low byte
    bad[29] = 0;
    bad[30] = 0;
    bad[31] = 0;
    write_and_expect_throw(bad, "neighbor id out of range");
  }
  // Node count that would overflow the adjacency allocation.
  {
    auto bad = bytes;
    for (int i = 8; i < 16; ++i) bad[static_cast<std::size_t>(i)] = '\xff';
    write_and_expect_throw(bad, "node count overflow");
  }
}

// ---------------- builders ----------------

class BuilderTest : public ::testing::TestWithParam<GraphKind> {};

TEST_P(BuilderTest, DegreeBoundsAndNoSelfLoops) {
  const auto& world = testing::tiny_world();
  const Graph& g = GetParam() == GraphKind::kNsw ? world.nsw : world.cagra;
  EXPECT_EQ(g.num_nodes(), world.ds.num_base());
  EXPECT_EQ(g.degree(), 16u);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    std::set<NodeId> seen;
    for (NodeId n : g.neighbors(v)) {
      if (n == kInvalidNode) continue;
      EXPECT_NE(n, v) << "self loop at " << v;
      EXPECT_LT(n, g.num_nodes());
      EXPECT_TRUE(seen.insert(n).second) << "duplicate edge at " << v;
    }
  }
}

TEST_P(BuilderTest, MostlyConnectedAndWellFilled) {
  const auto& world = testing::tiny_world();
  const Graph& g = GetParam() == GraphKind::kNsw ? world.nsw : world.cagra;
  const auto stats = g.stats();
  EXPECT_GT(stats.avg_degree, 8.0);
  EXPECT_GT(stats.reachable_fraction, 0.98);
}

TEST_P(BuilderTest, NeighborsAreActuallyClose) {
  // A graph edge should land among the closer part of the dataset: the mean
  // neighbor distance must be far below the mean random-pair distance.
  const auto& world = testing::tiny_world();
  const Dataset& ds = world.ds;
  const Graph& g = GetParam() == GraphKind::kNsw ? world.nsw : world.cagra;
  double edge_dist = 0.0;
  std::size_t edges = 0;
  for (NodeId v = 0; v < g.num_nodes(); v += 37) {
    for (NodeId n : g.neighbors(v)) {
      if (n == kInvalidNode) continue;
      edge_dist += distance(ds.metric(), ds.base_vector(v), ds.base_vector(n));
      ++edges;
    }
  }
  double rand_dist = 0.0;
  std::size_t pairs = 0;
  for (NodeId v = 0; v + 997 < g.num_nodes(); v += 37) {
    rand_dist +=
        distance(ds.metric(), ds.base_vector(v), ds.base_vector(v + 997));
    ++pairs;
  }
  EXPECT_LT(edge_dist / static_cast<double>(edges),
            0.5 * rand_dist / static_cast<double>(pairs));
}

INSTANTIATE_TEST_SUITE_P(Kinds, BuilderTest,
                         ::testing::Values(GraphKind::kNsw,
                                           GraphKind::kCagra),
                         [](const auto& param_info) {
                           return graph_kind_name(param_info.param);
                         });

TEST(Builders, SingleNodeGraph) {
  Dataset ds("one", 4, Metric::kL2);
  ds.mutable_base() = {0.0f, 0.0f, 0.0f, 0.0f};
  BuildConfig cfg;
  cfg.degree = 4;
  for (GraphKind kind : {GraphKind::kNsw, GraphKind::kCagra}) {
    const Graph g = build_graph(kind, ds, cfg).graph;
    EXPECT_EQ(g.num_nodes(), 1u);
    EXPECT_EQ(g.valid_degree(0), 0u);
  }
}

TEST(Builders, FewerPointsThanDegree) {
  // n < degree: every node can link every other node, nothing out of range.
  Dataset ds("few", 4, Metric::kL2);
  ds.mutable_base() = {0, 0, 0, 0, 1, 0, 0, 0, 0, 1, 0, 0, 2, 2, 2, 2,
                       0, 0, 0, 1, 1, 1, 0, 0};
  BuildConfig cfg;
  cfg.degree = 16;
  for (GraphKind kind : {GraphKind::kNsw, GraphKind::kCagra}) {
    const Graph g = build_graph(kind, ds, cfg).graph;
    EXPECT_EQ(g.num_nodes(), 6u);
    ASSERT_LT(g.entry_point(), 6u);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_GT(g.valid_degree(v), 0u);
      for (NodeId n : g.neighbors(v)) {
        if (n == kInvalidNode) continue;
        EXPECT_LT(n, g.num_nodes());
        EXPECT_NE(n, v);
      }
    }
  }
}

TEST(Builders, EmptyDatasetBuildsEmptyGraph) {
  Dataset ds("none", 4, Metric::kL2);
  BuildConfig cfg;
  cfg.degree = 8;
  for (GraphKind kind : {GraphKind::kNsw, GraphKind::kCagra}) {
    const Graph g = build_graph(kind, ds, cfg).graph;
    EXPECT_EQ(g.num_nodes(), 0u);
    EXPECT_EQ(g.entry_point(), kInvalidNode);
  }
}

TEST(Builders, BeamSearchFindsExactNearest) {
  const auto& world = testing::tiny_world();
  // Search for base vectors themselves: with a reasonable beam the point
  // itself must come back first in nearly every case.
  std::size_t exact = 0;
  for (NodeId v = 100; v < 120; ++v) {
    const auto found =
        build_beam_search(world.ds, world.nsw, world.ds.base_vector(v), 48,
                          world.nsw.entry_point(), world.nsw.num_nodes());
    ASSERT_FALSE(found.empty());
    if (found.front().second == v) {
      EXPECT_FLOAT_EQ(found.front().first, 0.0f);
      ++exact;
    }
  }
  EXPECT_GE(exact, 18u);
}

TEST(Builders, ApproximateMedoidIsCentral) {
  const auto& world = testing::tiny_world();
  const NodeId medoid = approximate_medoid(world.ds);
  ASSERT_LT(medoid, world.ds.num_base());
  // The medoid must be closer to the centroid than 95% of points; spot
  // check against a sample.
  std::vector<float> centroid(world.ds.dim(), 0.0f);
  for (std::size_t i = 0; i < world.ds.num_base(); ++i) {
    const auto v = world.ds.base_vector(i);
    for (std::size_t d = 0; d < centroid.size(); ++d) centroid[d] += v[d];
  }
  for (auto& c : centroid) c /= static_cast<float>(world.ds.num_base());
  const float medoid_d =
      distance(world.ds.metric(), centroid, world.ds.base_vector(medoid));
  std::size_t closer = 0;
  for (NodeId v = 0; v < world.ds.num_base(); v += 11) {
    if (distance(world.ds.metric(), centroid, world.ds.base_vector(v)) <
        medoid_d) {
      ++closer;
    }
  }
  EXPECT_EQ(closer, 0u);
}

TEST(BatchedConstruction, QualityRobustToBatchSize) {
  const auto& world = testing::tiny_world();
  BuildConfig cfg;
  cfg.degree = 16;
  cfg.ef_construction = 48;
  cfg.insert_batch = 256;
  const BuildReport result = build_graph(GraphKind::kNsw, world.ds, cfg);
  const auto stats = result.graph.stats();
  EXPECT_GT(stats.avg_degree, 8.0);
  EXPECT_GT(stats.reachable_fraction, 0.98);
  EXPECT_GT(result.batches, 1u);
  EXPECT_GT(result.scored_points, 0u);

  // Search quality within a small margin of the default-batch build.
  const sim::CostModel cm;
  search::SearchConfig scfg;
  scfg.topk = 10;
  scfg.candidate_len = 64;
  double small_recall = 0.0, default_recall = 0.0;
  const std::size_t nq = 50;
  for (std::size_t q = 0; q < nq; ++q) {
    const auto rg = search::multi_cta_search(world.ds, result.graph, cm,
                                             scfg, 2, world.ds.query(q), q, 5);
    const auto rs = search::multi_cta_search(world.ds, world.nsw, cm, scfg,
                                             2, world.ds.query(q), q, 5);
    small_recall += metrics::recall_at_k(world.ds, q, rg.topk, 10);
    default_recall += metrics::recall_at_k(world.ds, q, rs.topk, 10);
  }
  EXPECT_GT(small_recall / nq, default_recall / nq - 0.05);
}

TEST(BatchedConstruction, BatchedBuildIsFasterThanSerial) {
  // The GANNS claim: batched GPU construction beats one-CTA construction
  // by roughly the device's concurrency (in modeled virtual time).
  const auto& world = testing::tiny_world();
  BuildConfig cfg;
  cfg.degree = 16;
  cfg.insert_batch = 512;
  const BuildReport result = build_graph(GraphKind::kNsw, world.ds, cfg);
  EXPECT_GT(result.speedup(), 10.0);
  EXPECT_LT(result.virtual_build_ns, result.serial_build_ns);
  EXPECT_GT(result.wall_build_s, 0.0);
}

TEST(BatchedConstruction, SmallerBatchesCostMoreLaunches) {
  const auto& world = testing::tiny_world();
  BuildConfig small_cfg;
  small_cfg.degree = 16;
  small_cfg.insert_batch = 128;
  BuildConfig big_cfg = small_cfg;
  big_cfg.insert_batch = 1024;
  const BuildReport small_b = build_graph(GraphKind::kNsw, world.ds, small_cfg);
  const BuildReport big_b = build_graph(GraphKind::kNsw, world.ds, big_cfg);
  EXPECT_GT(small_b.batches, big_b.batches);
}

TEST(BatchedConstruction, SingleNodeDataset) {
  Dataset ds("one", 4, Metric::kL2);
  ds.mutable_base() = {0.0f, 0.0f, 0.0f, 0.0f};
  const BuildReport result = build_graph(GraphKind::kNsw, ds, BuildConfig{});
  EXPECT_EQ(result.graph.num_nodes(), 1u);
}

// ---------------- deterministic parallel construction ----------------

class ByteIdentityTest : public ::testing::TestWithParam<GraphKind> {};

TEST_P(ByteIdentityTest, ParallelBuildMatchesSerialBuild) {
  // The acceptance bar for thread-pooled construction: the graph is a pure
  // function of (dataset, config). Any thread count must reproduce the
  // threads=1 result byte for byte. insert_batch=384 gives an uneven tail
  // (2000 % 384 != 0) so partial batches are exercised too.
  const auto& world = testing::tiny_world();
  BuildConfig cfg;
  cfg.degree = 16;
  cfg.ef_construction = 48;
  cfg.insert_batch = 384;
  cfg.threads = 1;
  const Graph serial = build_graph(GetParam(), world.ds, cfg).graph;
  for (std::size_t threads : {2u, 8u}) {
    cfg.threads = threads;
    const Graph parallel = build_graph(GetParam(), world.ds, cfg).graph;
    EXPECT_EQ(parallel.entry_point(), serial.entry_point())
        << "threads=" << threads;
    EXPECT_EQ(parallel.adjacency(), serial.adjacency())
        << "threads=" << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, ByteIdentityTest,
                         ::testing::Values(GraphKind::kNsw,
                                           GraphKind::kCagra),
                         [](const auto& param_info) {
                           return graph_kind_name(param_info.param);
                         });

TEST(ByteIdentity, CosineMetricAndScoredCounts) {
  // Cosine exercises the lazily-built norm table (warmed before forking);
  // the distance-eval ledger must also be thread-count invariant because
  // it feeds the virtual-time model.
  const auto& world = testing::tiny_world(Metric::kCosine);
  BuildConfig cfg;
  cfg.degree = 16;
  cfg.ef_construction = 48;
  cfg.insert_batch = 384;
  cfg.threads = 1;
  const BuildReport serial = build_graph(GraphKind::kNsw, world.ds, cfg);
  cfg.threads = 4;
  const BuildReport parallel = build_graph(GraphKind::kNsw, world.ds, cfg);
  EXPECT_EQ(parallel.graph.adjacency(), serial.graph.adjacency());
  EXPECT_EQ(parallel.scored_points, serial.scored_points);
  EXPECT_EQ(parallel.batches, serial.batches);
  EXPECT_DOUBLE_EQ(parallel.virtual_build_ns, serial.virtual_build_ns);
}

// The pre-BuildReport shims (gpu_build_nsw, BuildReport->Graph conversion)
// were removed: build_graph(GraphKind::kNsw, ds, cfg) is the one entry
// point, and call sites read `.graph` explicitly. -Wdeprecated-declarations
// is always on, so a reintroduced shim with in-tree users cannot merge.

TEST(Builders, GraphKindNames) {
  EXPECT_EQ(graph_kind_name(GraphKind::kNsw), "NSW");
  EXPECT_EQ(graph_kind_name(GraphKind::kCagra), "CAGRA");
}

}  // namespace
}  // namespace algas
