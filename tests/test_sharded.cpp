// Sharded scatter-gather engine: partition arithmetic, the K=1
// byte-identity guarantee (results, traces, SimCheck activity all match
// the unsharded engine), cross-host-thread-count determinism at K>1, and
// fanout routing well-formedness.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/sharded_engine.hpp"
#include "simgpu/checker.hpp"
#include "simgpu/trace.hpp"
#include "test_util.hpp"

namespace algas::core {
namespace {

// ---------------- dataset/partitioner.hpp ----------------

TEST(ShardPartition, RangesTileTheBaseSet) {
  for (std::size_t n : {7u, 100u, 101u, 2048u}) {
    for (std::size_t k : {1u, 2u, 3u, 4u, 7u}) {
      ShardPartition part(n, k);
      std::size_t covered = 0;
      NodeId expect_begin = 0;
      for (std::size_t s = 0; s < k; ++s) {
        const ShardRange r = part.range(s);
        EXPECT_EQ(r.begin, expect_begin) << n << "/" << k << "/" << s;
        EXPECT_GT(r.end, r.begin);  // no empty shards
        covered += part.size(s);
        expect_begin = r.end;
        // Balanced to within one row.
        EXPECT_LE(part.size(s), n / k + 1);
        EXPECT_GE(part.size(s), n / k);
      }
      EXPECT_EQ(covered, n);
    }
  }
}

TEST(ShardPartition, IdMappingRoundTrips) {
  ShardPartition part(101, 4);
  for (NodeId g = 0; g < 101; ++g) {
    const std::size_t s = part.shard_of(g);
    const NodeId local = part.to_local(g);
    EXPECT_GE(g, part.range(s).begin);
    EXPECT_LT(g, part.range(s).end);
    EXPECT_EQ(part.to_global(s, local), g);
  }
}

TEST(ShardPartition, RejectsImpossibleShapes) {
  EXPECT_THROW(ShardPartition(10, 0), std::invalid_argument);
  EXPECT_THROW(ShardPartition(3, 4), std::invalid_argument);
  EXPECT_NO_THROW(ShardPartition(4, 4));
}

TEST(ShardDataset, SlicesRowsAndPreservesEncoding) {
  const auto& world = algas::testing::tiny_world();
  ShardPartition part(world.ds.num_base(), 3);
  for (std::size_t s = 0; s < 3; ++s) {
    const Dataset shard = make_shard_dataset(world.ds, part, s);
    const ShardRange r = part.range(s);
    ASSERT_EQ(shard.num_base(), part.size(s));
    EXPECT_EQ(shard.num_queries(), world.ds.num_queries());
    EXPECT_EQ(shard.dim(), world.ds.dim());
    EXPECT_EQ(shard.metric(), world.ds.metric());
    EXPECT_EQ(shard.storage(), world.ds.storage());
    EXPECT_FALSE(shard.has_ground_truth());
    // Row `local` is bit-identical to global row begin+local.
    for (NodeId local = 0; local < 3 && local < shard.num_base(); ++local) {
      const auto got = shard.base_vector(local);
      const auto want = world.ds.base_vector(r.begin + local);
      ASSERT_EQ(got.size(), want.size());
      for (std::size_t d = 0; d < got.size(); ++d) {
        EXPECT_EQ(got[d], want[d]);
      }
    }
  }
}

// ---------------- core/sharded_engine.hpp ----------------

AlgasConfig tiny_base_config() {
  AlgasConfig cfg;
  cfg.search.topk = 10;
  cfg.search.candidate_len = 64;
  cfg.search.beam_width = 2;
  cfg.search.offset_beam = 16;
  cfg.slots = 4;
  cfg.host_threads = 1;
  return cfg;
}

BuildConfig tiny_build_config() {
  BuildConfig cfg;
  cfg.degree = 16;
  cfg.ef_construction = 48;
  return cfg;
}

ShardedConfig tiny_sharded_config(std::size_t shards) {
  ShardedConfig cfg;
  cfg.base = tiny_base_config();
  cfg.build = tiny_build_config();
  cfg.shards = shards;
  return cfg;
}

/// Canonical serialization of the per-query merged results, sorted by
/// query index: the byte string the identity gates compare. exactfp —
/// distances render via hexfloat so equality means bit equality.
std::string results_tsv(const metrics::Collector& c) {
  std::vector<const metrics::QueryRecord*> recs;
  recs.reserve(c.size());
  for (const auto& r : c.records()) recs.push_back(&r);
  std::sort(recs.begin(), recs.end(),
            [](const metrics::QueryRecord* a, const metrics::QueryRecord* b) {
              return a->query_index < b->query_index;
            });
  std::ostringstream os;
  os << std::hexfloat;
  for (const auto* r : recs) {
    os << r->query_index;
    for (const KV& kv : r->results) os << '\t' << kv.id() << ':' << kv.dist;
    os << '\n';
  }
  return os.str();
}

TEST(ShardedEngine, SingleShardByteIdenticalToUnsharded) {
  const auto& world = algas::testing::tiny_world();

  // The unsharded comparator uses the same build config the sharded
  // constructor will apply to its (full-range) single shard.
  const Graph g =
      build_graph(GraphKind::kNsw, world.ds, tiny_build_config()).graph;

  sim::Tracer trace_plain, trace_sharded;
  sim::SimCheck check_plain, check_sharded;

  auto plain_cfg = tiny_base_config();
  plain_cfg.tracer = &trace_plain;
  plain_cfg.checker = &check_plain;
  AlgasEngine plain(world.ds, g, plain_cfg);
  const EngineReport rp = plain.run_closed_loop(80);

  ShardedConfig scfg = tiny_sharded_config(1);
  scfg.base.tracer = &trace_sharded;
  scfg.base.checker = &check_sharded;
  ShardedEngine sharded(world.ds, scfg);
  const ShardedReport rs = sharded.run_closed_loop(80);

  // Results: identical bytes.
  EXPECT_EQ(results_tsv(rs.merged.collector), results_tsv(rp.collector));

  // Timing and counters: identical to the last bit.
  EXPECT_EQ(rs.merged.summary.span_ns, rp.summary.span_ns);
  EXPECT_EQ(rs.merged.summary.mean_latency_us, rp.summary.mean_latency_us);
  EXPECT_EQ(rs.merged.summary.p99_latency_us, rp.summary.p99_latency_us);
  EXPECT_EQ(rs.merged.recall, rp.recall);
  EXPECT_EQ(rs.merged.sim_events, rp.sim_events);
  EXPECT_EQ(rs.merged.pcie_transactions, rp.pcie_transactions);
  EXPECT_EQ(rs.merged.pcie_bytes, rp.pcie_bytes);
  EXPECT_EQ(rs.merged.host_polls, rp.host_polls);

  // SimCheck observed the exact same run (same number of invariant
  // evaluations; both checkers clean).
  EXPECT_EQ(rs.merged.simcheck_checks, rp.simcheck_checks);
  EXPECT_EQ(check_plain.violations(), 0u);
  EXPECT_EQ(check_sharded.violations(), 0u);

  // Traces: the serialized timelines are byte-identical.
  std::ostringstream jp, js;
  trace_plain.write_json(jp);
  trace_sharded.write_json(js);
  EXPECT_EQ(js.str(), jp.str());

  // No bus, no merge stage on the degenerate path.
  EXPECT_EQ(rs.bus_transactions, 0u);
  EXPECT_EQ(rs.merges, 0u);
  EXPECT_DOUBLE_EQ(rs.mean_fanout, 1.0);
}

TEST(ShardedEngine, ResultsIdenticalAcrossHostThreadCounts) {
  const auto& world = algas::testing::tiny_world();
  const std::size_t kQueries = 60;

  std::string first_tsv;
  double first_recall = 0.0;
  for (const std::size_t host_threads : {1u, 2u, 4u}) {
    ShardedConfig cfg = tiny_sharded_config(4);
    cfg.base.host_threads = host_threads;
    ShardedEngine engine(world.ds, cfg);
    const ShardedReport rep = engine.run_closed_loop(kQueries);
    EXPECT_EQ(rep.merged.summary.queries, kQueries);
    EXPECT_EQ(rep.merges, kQueries);
    const std::string tsv = results_tsv(rep.merged.collector);
    if (first_tsv.empty()) {
      first_tsv = tsv;
      first_recall = rep.merged.recall;
      EXPECT_GT(first_recall, 0.85);
    } else {
      // The merged (distance, global id) lists are byte-identical no
      // matter how many host threads each shard models.
      EXPECT_EQ(tsv, first_tsv) << "host_threads=" << host_threads;
      EXPECT_EQ(rep.merged.recall, first_recall);
    }
  }
}

TEST(ShardedEngine, DeterministicAcrossRepeatedRuns) {
  const auto& world = algas::testing::tiny_world();
  ShardedEngine a(world.ds, tiny_sharded_config(3));
  ShardedEngine b(world.ds, tiny_sharded_config(3));
  const ShardedReport ra = a.run_closed_loop(50);
  const ShardedReport rb = b.run_closed_loop(50);
  EXPECT_EQ(results_tsv(ra.merged.collector), results_tsv(rb.merged.collector));
  EXPECT_EQ(ra.merged.sim_events, rb.merged.sim_events);
  EXPECT_EQ(ra.merged.summary.span_ns, rb.merged.summary.span_ns);
  EXPECT_EQ(ra.bus_transactions, rb.bus_transactions);
  EXPECT_EQ(ra.bus_bytes, rb.bus_bytes);
}

TEST(ShardedEngine, FullFanoutMergesEveryShardAndKeepsRecall) {
  const auto& world = algas::testing::tiny_world();
  ShardedEngine engine(world.ds, tiny_sharded_config(4));
  const ShardedReport rep = engine.run_closed_loop(80);

  EXPECT_EQ(rep.merged.summary.queries, 80u);
  EXPECT_DOUBLE_EQ(rep.mean_fanout, 4.0);
  EXPECT_GT(rep.merged.recall, 0.85);
  // Every query's merged record reports the number of runs it merged.
  std::set<std::size_t> seen;
  for (const auto& r : rep.merged.collector.records()) {
    EXPECT_TRUE(seen.insert(r.query_index).second);
    EXPECT_EQ(r.slot, 4u);
    EXPECT_LE(r.results.size(), 10u);
    // Merged results are sorted ascending (distance, id) and unique ids.
    for (std::size_t i = 1; i < r.results.size(); ++i) {
      EXPECT_TRUE(r.results[i - 1] < r.results[i]);
    }
  }
  // Shard-side diagnostics: K runs per query, global ids in shard ranges.
  EXPECT_EQ(rep.shard_records.size(), 80u * 4u);
  // The shared host bus saw every shard's data-plane traffic.
  EXPECT_GT(rep.bus_transactions, 0u);
  EXPECT_GT(rep.bus_bytes, 0u);
  EXPECT_GT(rep.merge_busy_ns, 0.0);
  // Per-shard engine reports came back, with their collectors drained
  // into the gather stage.
  ASSERT_EQ(rep.shards.size(), 4u);
  for (const auto& shard_rep : rep.shards) {
    EXPECT_EQ(shard_rep.collector.size(), 0u);
    EXPECT_GT(shard_rep.sim_events, 0u);
  }
}

TEST(ShardedEngine, SelectiveFanoutRoutesAndAnswersEveryQuery) {
  const auto& world = algas::testing::tiny_world();
  ShardedConfig cfg = tiny_sharded_config(4);
  cfg.fanout = 2;
  cfg.router_centroids = 4;
  ShardedEngine engine(world.ds, cfg);

  // Routes are well-formed: exactly fanout distinct shards, ascending,
  // and deterministic across calls.
  for (std::size_t q = 0; q < 20; ++q) {
    const auto route = engine.route(q);
    ASSERT_EQ(route.size(), 2u);
    EXPECT_LT(route[0], route[1]);
    EXPECT_LT(route[1], 4u);
    EXPECT_EQ(engine.route(q), route);
  }

  const ShardedReport rep = engine.run_closed_loop(60);
  EXPECT_EQ(rep.merged.summary.queries, 60u);
  EXPECT_DOUBLE_EQ(rep.mean_fanout, 2.0);
  EXPECT_EQ(rep.shard_records.size(), 60u * 2u);
  for (const auto& r : rep.merged.collector.records()) {
    EXPECT_EQ(r.slot, 2u);
  }
  // Probing half the shards costs some recall but must stay in the same
  // league as exhaustive scatter (the router exists to make this cheap
  // miss rare).
  EXPECT_GT(rep.merged.recall, 0.5);
}

TEST(ShardedEngine, SelectiveFanoutReducesWorkPerQuery) {
  const auto& world = algas::testing::tiny_world();
  ShardedConfig full_cfg = tiny_sharded_config(4);
  ShardedConfig sel_cfg = full_cfg;
  sel_cfg.fanout = 2;
  sel_cfg.router_centroids = 4;
  ShardedEngine full(world.ds, full_cfg);
  ShardedEngine sel(world.ds, sel_cfg);
  const ShardedReport rf = full.run_closed_loop(40);
  const ShardedReport rs = sel.run_closed_loop(40);
  double full_scored = 0.0, sel_scored = 0.0;
  for (const auto& r : rf.merged.collector.records()) {
    full_scored += static_cast<double>(r.scored_points);
  }
  for (const auto& r : rs.merged.collector.records()) {
    sel_scored += static_cast<double>(r.scored_points);
  }
  EXPECT_LT(sel_scored, full_scored);
}

TEST(ShardedEngine, RejectsMalformedRuns) {
  const auto& world = algas::testing::tiny_world();
  ShardedEngine engine(world.ds, tiny_sharded_config(2));
  // Duplicate in-flight query indices would collide in the gather stage.
  EXPECT_THROW(engine.run({{3, 0.0}, {3, 0.0}}), std::invalid_argument);
  // Out-of-range query index.
  EXPECT_THROW(engine.run({{world.ds.num_queries(), 0.0}}),
               std::invalid_argument);
}

TEST(ShardedEngine, RejectsTombstonedConfig) {
  const auto& world = algas::testing::tiny_world();
  TombstoneSet tombs(world.ds.num_base());
  ShardedConfig cfg = tiny_sharded_config(2);
  cfg.base.search.accept = search::AcceptPredicate::deleted_only(&tombs);
  EXPECT_THROW(ShardedEngine(world.ds, cfg), std::invalid_argument);
}

}  // namespace
}  // namespace algas::core
