// Shared fixtures: tiny deterministic datasets + graphs that keep unit
// tests fast while exercising real search behaviour.
#pragma once

#include <memory>

#include "dataset/dataset.hpp"
#include "dataset/ground_truth.hpp"
#include "dataset/synthetic.hpp"
#include "graph/builder.hpp"

namespace algas::testing {

struct TinyWorld {
  Dataset ds;
  Graph nsw;
  Graph cagra;
};

/// ~2000 points, 16 dims, 200 queries, gt@32 — built once per process.
inline const TinyWorld& tiny_world(Metric metric = Metric::kL2) {
  static auto make = [](Metric m) {
    auto world = std::make_unique<TinyWorld>();
    SyntheticSpec spec;
    spec.name = m == Metric::kL2 ? "tiny-l2" : "tiny-cos";
    spec.num_base = 2000;
    spec.num_queries = 200;
    spec.dim = 16;
    spec.metric = m;
    spec.clusters = 24;
    spec.spread = 0.16;
    spec.seed = 1234;
    world->ds = make_synthetic(spec);
    compute_ground_truth(world->ds, 32);
    BuildConfig cfg;
    cfg.degree = 16;
    cfg.ef_construction = 48;
    world->nsw = build_graph(GraphKind::kNsw, world->ds, cfg).graph;
    world->cagra = build_graph(GraphKind::kCagra, world->ds, cfg).graph;
    return world;
  };
  static std::unique_ptr<TinyWorld> l2 = make(Metric::kL2);
  static std::unique_ptr<TinyWorld> cos = make(Metric::kCosine);
  return metric == Metric::kL2 ? *l2 : *cos;
}

}  // namespace algas::testing
