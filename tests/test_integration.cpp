// Cross-module integration: the full ALGAS system against its baselines on
// the same data, checking the paper's headline *orderings* hold end to end.
#include <gtest/gtest.h>

#include "baselines/ganns_engine.hpp"
#include "baselines/static_engine.hpp"
#include "core/engine.hpp"
#include "search/multi_cta.hpp"
#include "test_util.hpp"

namespace algas {
namespace {

core::AlgasConfig algas_cfg(std::size_t slots = 8) {
  core::AlgasConfig cfg;
  cfg.search.topk = 10;
  cfg.search.candidate_len = 64;
  cfg.search.beam_width = 2;
  cfg.search.offset_beam = 16;
  cfg.slots = slots;
  cfg.n_parallel = 4;
  return cfg;
}

baselines::StaticConfig static_cfg(std::size_t batch = 8) {
  baselines::StaticConfig cfg;
  cfg.search.topk = 10;
  cfg.search.candidate_len = 64;
  cfg.batch_size = batch;
  cfg.n_parallel = 4;
  return cfg;
}

TEST(Integration, AlgasMatchesSynchronousMultiCtaResults) {
  // The engine's DES execution must produce exactly the results the
  // synchronous multi-CTA driver produces for the same (query, seed,
  // config): same entry points, same interleaving semantics.
  const auto& world = testing::tiny_world();
  auto cfg = algas_cfg(/*slots=*/1);  // one slot -> no cross-query effects
  cfg.search.beam_width = 1;
  core::AlgasEngine engine(world.ds, world.nsw, cfg);
  const auto rep = engine.run_closed_loop(20);

  for (const auto& rec : rep.collector.records()) {
    const auto ref = search::multi_cta_search(
        world.ds, world.nsw, cfg.cost, cfg.search, engine.plan().n_parallel,
        world.ds.query(rec.query_index), rec.query_index, cfg.seed);
    ASSERT_EQ(rec.results.size(), ref.topk.size())
        << "query " << rec.query_index;
    for (std::size_t i = 0; i < ref.topk.size(); ++i) {
      EXPECT_EQ(rec.results[i].id(), ref.topk[i].id())
          << "query " << rec.query_index << " rank " << i;
    }
  }
}

TEST(Integration, DynamicBatchingBeatsStaticOnLatency) {
  // Table I / Fig 13: same search work, same parallelism — dynamic slots
  // must deliver lower mean service latency than batch-synchronous.
  const auto& world = testing::tiny_world();
  core::AlgasEngine dynamic(world.ds, world.nsw, algas_cfg(8));
  baselines::StaticBatchEngine static_engine(world.ds, world.nsw,
                                             static_cfg(8));
  const auto rd = dynamic.run_closed_loop(120);
  const auto rs = static_engine.run_closed_loop(120);
  EXPECT_LT(rd.summary.mean_service_us, rs.summary.mean_service_us);
  // And recall is comparable (same graph, same list length).
  EXPECT_GT(rd.recall, rs.recall - 0.05);
}

TEST(Integration, AlgasBeatsGannsOnThroughput) {
  const auto& world = testing::tiny_world();
  core::AlgasEngine dynamic(world.ds, world.nsw, algas_cfg(8));
  baselines::GannsConfig gcfg;
  gcfg.search.topk = 10;
  gcfg.search.candidate_len = 64;
  gcfg.batch_size = 8;
  baselines::GannsEngine ganns(world.ds, world.nsw, gcfg);
  const auto rd = dynamic.run_closed_loop(120);
  const auto rg = ganns.run_closed_loop(120);
  EXPECT_GT(rd.summary.throughput_qps, rg.summary.throughput_qps);
}

TEST(Integration, BothGraphTypesWork) {
  // §VI: "To verify ALGAS can support general GPU graph" — NSW and CAGRA.
  const auto& world = testing::tiny_world();
  for (const Graph* g : {&world.nsw, &world.cagra}) {
    core::AlgasEngine engine(world.ds, *g, algas_cfg());
    const auto rep = engine.run_closed_loop(60);
    EXPECT_EQ(rep.summary.queries, 60u);
    EXPECT_GT(rep.recall, 0.88);
  }
}

TEST(Integration, CosineMetricEndToEnd) {
  const auto& world = testing::tiny_world(Metric::kCosine);
  core::AlgasEngine engine(world.ds, world.nsw, algas_cfg());
  const auto rep = engine.run_closed_loop(60);
  EXPECT_GT(rep.recall, 0.85);
}

TEST(Integration, LargerCandidateListRaisesRecall) {
  // The paper's recall knob: candidate list size.
  const auto& world = testing::tiny_world();
  auto lo_cfg = algas_cfg();
  lo_cfg.search.candidate_len = 32;
  auto hi_cfg = algas_cfg();
  hi_cfg.search.candidate_len = 256;
  core::AlgasEngine lo(world.ds, world.nsw, lo_cfg);
  core::AlgasEngine hi(world.ds, world.nsw, hi_cfg);
  const auto rl = lo.run_closed_loop(80);
  const auto rh = hi.run_closed_loop(80);
  EXPECT_GE(rh.recall, rl.recall);
  EXPECT_GT(rh.summary.mean_service_us, rl.summary.mean_service_us);
}

TEST(Integration, StressManyConfigsComplete) {
  // Sweep slots x host threads x beam to shake out lifecycle deadlocks;
  // the engine throws if any query is lost.
  const auto& world = testing::tiny_world();
  for (std::size_t slots : {1, 3, 8}) {
    for (std::size_t hosts : {1, 2}) {
      for (std::size_t beam : {1, 4}) {
        core::AlgasConfig cfg = algas_cfg(slots);
        cfg.host_threads = hosts;
        cfg.search.beam_width = beam;
        core::AlgasEngine engine(world.ds, world.nsw, cfg);
        const auto rep = engine.run_closed_loop(25);
        EXPECT_EQ(rep.summary.queries, 25u)
            << "slots=" << slots << " hosts=" << hosts << " beam=" << beam;
      }
    }
  }
}

}  // namespace
}  // namespace algas
