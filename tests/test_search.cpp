#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/rng.hpp"
#include "metrics/recall.hpp"
#include "search/bitonic.hpp"
#include "search/candidate_list.hpp"
#include "search/greedy.hpp"
#include "search/intra_cta.hpp"
#include "search/kv.hpp"
#include "search/multi_cta.hpp"
#include "search/topk_merge.hpp"
#include "search/visited.hpp"
#include "test_util.hpp"

namespace algas::search {
namespace {

// ---------------- kv.hpp ----------------

TEST(Kv, FlagPackingRoundTrip) {
  KV kv = KV::make(1.5f, 12345);
  EXPECT_EQ(kv.id(), 12345u);
  EXPECT_FALSE(kv.checked());
  kv.mark_checked();
  EXPECT_TRUE(kv.checked());
  EXPECT_EQ(kv.id(), 12345u);  // id survives the flag
  EXPECT_FALSE(kv.is_empty());
  EXPECT_TRUE(KV::empty().is_empty());
}

TEST(Kv, OrderingEmptiesLast) {
  const KV a = KV::make(1.0f, 5);
  const KV b = KV::make(2.0f, 3);
  const KV e = KV::empty();
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(a < e);
  EXPECT_TRUE(b < e);
  EXPECT_FALSE(e < a);
}

TEST(Kv, TiesBreakById) {
  const KV a = KV::make(1.0f, 3);
  const KV b = KV::make(1.0f, 7);
  EXPECT_TRUE(a < b);
  EXPECT_FALSE(b < a);
}

// ---------------- bitonic.hpp ----------------

std::vector<KV> random_kvs(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<KV> v;
  v.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    v.push_back(KV::make(rng.next_float() * 100.0f,
                         static_cast<NodeId>(rng.next_below(1 << 20))));
  }
  return v;
}

class BitonicSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BitonicSizes, SortsRandomArrays) {
  const std::size_t n = GetParam();
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    auto data = random_kvs(n, seed * 17);
    auto expect = data;
    std::sort(expect.begin(), expect.end());
    bitonic_sort(std::span<KV>(data));
    EXPECT_TRUE(is_sorted_kv(data)) << "n=" << n << " seed=" << seed;
    // Same multiset: bitonic networks only swap.
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(data[i].key, expect[i].key);
    }
  }
}

TEST_P(BitonicSizes, MergeSortedHalves) {
  const std::size_t n = GetParam();
  if (n < 2) return;
  auto lo = random_kvs(n / 2, 7);
  auto hi = random_kvs(n / 2, 8);
  std::sort(lo.begin(), lo.end());
  std::sort(hi.begin(), hi.end());
  std::vector<KV> data;
  data.insert(data.end(), lo.begin(), lo.end());
  data.insert(data.end(), hi.begin(), hi.end());
  merge_sorted_halves(std::span<KV>(data));
  EXPECT_TRUE(is_sorted_kv(data));
}

INSTANTIATE_TEST_SUITE_P(Pow2Sweep, BitonicSizes,
                         ::testing::Values<std::size_t>(1, 2, 4, 8, 32, 128,
                                                        512));

TEST(Bitonic, HandlesDuplicatesAndEmpties) {
  std::vector<KV> data{KV::empty(), KV::make(1.0f, 2), KV::make(1.0f, 2),
                       KV::empty()};
  bitonic_sort(std::span<KV>(data));
  EXPECT_TRUE(is_sorted_kv(data));
  EXPECT_EQ(data[0].id(), 2u);
  EXPECT_TRUE(data[2].is_empty());
}

// ---------------- candidate_list.hpp ----------------

TEST(CandidateList, RejectsNonPow2) {
  EXPECT_THROW(CandidateList(24), std::invalid_argument);
}

TEST(CandidateList, SeedKeepsSorted) {
  CandidateList list(8);
  list.reset();
  list.seed(KV::make(5.0f, 1));
  list.seed(KV::make(2.0f, 2));
  list.seed(KV::make(9.0f, 3));
  EXPECT_EQ(list.at(0).id(), 2u);
  EXPECT_EQ(list.at(1).id(), 1u);
  EXPECT_EQ(list.at(2).id(), 3u);
  EXPECT_TRUE(is_sorted_kv(list.entries()));
}

TEST(CandidateList, FirstUncheckedAndTake) {
  CandidateList list(8);
  list.reset();
  list.seed(KV::make(1.0f, 10));
  list.seed(KV::make(2.0f, 20));
  list.seed(KV::make(3.0f, 30));
  EXPECT_EQ(list.first_unchecked(), 0u);

  std::vector<std::size_t> idx(2);
  EXPECT_EQ(list.take_unchecked(2, idx), 2u);
  EXPECT_EQ(idx[0], 0u);
  EXPECT_EQ(idx[1], 1u);
  EXPECT_EQ(list.first_unchecked(), 2u);
  EXPECT_EQ(list.take_unchecked(2, idx), 1u);
  EXPECT_EQ(list.first_unchecked(), CandidateList::npos);
}

TEST(CandidateList, MergeKeepsBestL) {
  CandidateList list(4);
  list.reset();
  list.seed(KV::make(10.0f, 1));
  list.seed(KV::make(20.0f, 2));
  std::vector<KV> expand{KV::make(5.0f, 3), KV::make(15.0f, 4),
                         KV::make(25.0f, 5), KV::make(30.0f, 6)};
  list.merge_sorted(expand);
  EXPECT_EQ(list.at(0).id(), 3u);
  EXPECT_EQ(list.at(1).id(), 1u);
  EXPECT_EQ(list.at(2).id(), 4u);
  EXPECT_EQ(list.at(3).id(), 2u);  // 25 and 30 fell off the end
}

TEST(CandidateList, MergePreservesCheckedFlags) {
  CandidateList list(4);
  list.reset();
  list.seed(KV::make(10.0f, 1));
  std::vector<std::size_t> idx(1);
  list.take_unchecked(1, idx);  // mark id 1 checked
  std::vector<KV> expand{KV::make(5.0f, 2)};
  list.merge_sorted(expand);
  EXPECT_EQ(list.at(0).id(), 2u);
  EXPECT_FALSE(list.at(0).checked());
  EXPECT_EQ(list.at(1).id(), 1u);
  EXPECT_TRUE(list.at(1).checked());
}

TEST(CandidateList, MergeRejectsOversizedExpand) {
  CandidateList list(4);
  list.reset();
  std::vector<KV> expand(8, KV::make(1.0f, 1));
  EXPECT_THROW(list.merge_sorted(expand), std::invalid_argument);
}

TEST(CandidateList, TopkSkipsNothingWhenFull) {
  CandidateList list(4);
  list.reset();
  for (NodeId i = 0; i < 4; ++i) {
    list.seed(KV::make(static_cast<float>(i), i));
  }
  const auto top2 = list.topk(2);
  ASSERT_EQ(top2.size(), 2u);
  EXPECT_EQ(top2[0].id(), 0u);
  EXPECT_EQ(top2[1].id(), 1u);
  EXPECT_EQ(list.topk(100).size(), 4u);
}

// ---------------- visited.hpp ----------------

TEST(VisitedTable, TestAndSetCounts) {
  VisitedTable v(100);
  EXPECT_FALSE(v.test_and_set(5));
  EXPECT_TRUE(v.test_and_set(5));
  EXPECT_EQ(v.checks(), 2u);
  EXPECT_EQ(v.visited_count(), 1u);
  v.clear();
  EXPECT_EQ(v.checks(), 0u);
  EXPECT_FALSE(v.test(5));
}

// ---------------- intra_cta.hpp ----------------

TEST(IntraCta, NormalizeConfigRaisesListForDegree) {
  SearchConfig cfg;
  cfg.candidate_len = 16;
  cfg.topk = 8;
  const auto norm = normalize_config(cfg, 64);
  EXPECT_GE(norm.candidate_len, 64u);
  EXPECT_TRUE(is_pow2(norm.candidate_len));
}

TEST(IntraCta, NormalizeConfigShrinksBeam) {
  SearchConfig cfg;
  cfg.candidate_len = 64;
  cfg.beam_width = 8;  // 8 * 32 = 256 > 64: must shrink
  const auto norm = normalize_config(cfg, 32);
  EXPECT_LE(next_pow2(norm.beam_width * 32), norm.candidate_len);
  EXPECT_GE(norm.beam_width, 1u);
}

TEST(IntraCta, FindsNearestOnTinyWorld) {
  const auto& world = testing::tiny_world();
  const sim::CostModel cm;
  SearchConfig cfg;
  cfg.topk = 10;
  cfg.candidate_len = 64;
  IntraCtaSearch cta(world.ds, world.nsw, cm, cfg);

  double total_recall = 0.0;
  const std::size_t nq = 50;
  for (std::size_t q = 0; q < nq; ++q) {
    VisitedTable visited(world.ds.num_base());
    cta.reset(world.ds.query(q), world.nsw.entry_point(), &visited);
    StepCost cost;
    while (cta.step(cost)) {
    }
    total_recall += metrics::recall_at_k(world.ds, q, cta.results(), 10);
  }
  EXPECT_GT(total_recall / nq, 0.9);
}

TEST(IntraCta, StatsAccumulate) {
  const auto& world = testing::tiny_world();
  const sim::CostModel cm;
  SearchConfig cfg;
  cfg.candidate_len = 64;
  IntraCtaSearch cta(world.ds, world.nsw, cm, cfg);
  VisitedTable visited(world.ds.num_base());
  cta.reset(world.ds.query(0), world.nsw.entry_point(), &visited);
  StepCost cost;
  while (cta.step(cost)) {
  }
  const auto& st = cta.stats();
  EXPECT_GT(st.rounds, 5u);
  EXPECT_GT(st.expanded_points, 5u);
  EXPECT_GT(st.scored_points, st.expanded_points);
  EXPECT_GT(st.cost.compute_ns, 0.0);
  EXPECT_GT(st.cost.sort_ns, 0.0);
  EXPECT_GT(st.cost.select_ns, 0.0);
}

TEST(IntraCta, TraceRecordsSelectedDistances) {
  const auto& world = testing::tiny_world();
  const sim::CostModel cm;
  SearchConfig cfg;
  cfg.candidate_len = 64;
  IntraCtaSearch cta(world.ds, world.nsw, cm, cfg);
  cta.enable_trace(true);
  VisitedTable visited(world.ds.num_base());
  cta.reset(world.ds.query(3), world.nsw.entry_point(), &visited);
  StepCost cost;
  while (cta.step(cost)) {
  }
  const auto& trace = cta.stats().step_distances;
  ASSERT_EQ(trace.size(), cta.stats().expanded_points);
  // Fig 7 shape: the early phase converges — the last selected distance is
  // well below the entry distance.
  EXPECT_LT(trace.back(), trace.front());
}

TEST(IntraCta, BeamExtendReducesSortRounds) {
  const auto& world = testing::tiny_world();
  const sim::CostModel cm;
  SearchConfig greedy;
  greedy.candidate_len = 128;
  greedy.beam_width = 1;
  SearchConfig beam = greedy;
  beam.beam_width = 4;
  beam.offset_beam = 8;

  std::size_t greedy_rounds = 0, beam_rounds = 0;
  double greedy_sort = 0.0, beam_sort = 0.0;
  for (std::size_t q = 0; q < 30; ++q) {
    {
      IntraCtaSearch cta(world.ds, world.nsw, cm, greedy);
      VisitedTable visited(world.ds.num_base());
      cta.reset(world.ds.query(q), world.nsw.entry_point(), &visited);
      StepCost cost;
      while (cta.step(cost)) {
      }
      greedy_rounds += cta.stats().rounds;
      greedy_sort += cta.stats().cost.sort_ns;
    }
    {
      IntraCtaSearch cta(world.ds, world.nsw, cm, beam);
      VisitedTable visited(world.ds.num_base());
      cta.reset(world.ds.query(q), world.nsw.entry_point(), &visited);
      StepCost cost;
      while (cta.step(cost)) {
      }
      EXPECT_TRUE(cta.in_diffusing_phase());
      beam_rounds += cta.stats().rounds;
      beam_sort += cta.stats().cost.sort_ns;
    }
  }
  EXPECT_LT(beam_rounds, greedy_rounds);
  EXPECT_LT(beam_sort, greedy_sort);
}

TEST(IntraCta, BeamExtendKeepsRecall) {
  const auto& world = testing::tiny_world();
  const sim::CostModel cm;
  SearchConfig beam;
  beam.topk = 10;
  beam.candidate_len = 128;
  beam.beam_width = 4;
  beam.offset_beam = 8;
  double total = 0.0;
  const std::size_t nq = 50;
  for (std::size_t q = 0; q < nq; ++q) {
    IntraCtaSearch cta(world.ds, world.nsw, cm, beam);
    VisitedTable visited(world.ds.num_base());
    cta.reset(world.ds.query(q), world.nsw.entry_point(), &visited);
    StepCost cost;
    while (cta.step(cost)) {
    }
    total += metrics::recall_at_k(world.ds, q, cta.results(), 10);
  }
  EXPECT_GT(total / nq, 0.88);  // §IV-B: "does not significantly impact"
}

TEST(IntraCta, VisitedEntryEndsImmediately) {
  const auto& world = testing::tiny_world();
  const sim::CostModel cm;
  SearchConfig cfg;
  IntraCtaSearch cta(world.ds, world.nsw, cm, cfg);
  VisitedTable visited(world.ds.num_base());
  visited.test_and_set(world.nsw.entry_point());
  cta.reset(world.ds.query(0), world.nsw.entry_point(), &visited);
  EXPECT_TRUE(cta.done());
  StepCost cost;
  EXPECT_FALSE(cta.step(cost));
}

TEST(IntraCta, InvalidEntryEndsImmediately) {
  // A degenerate graph (zero nodes published, guarded entry accessor) hands
  // the search kInvalidNode or an out-of-range id; both must terminate
  // cleanly instead of indexing the adjacency.
  const auto& world = testing::tiny_world();
  const sim::CostModel cm;
  SearchConfig cfg;
  IntraCtaSearch cta(world.ds, world.nsw, cm, cfg);
  VisitedTable visited(world.ds.num_base());
  StepCost cost;
  for (const NodeId entry :
       {kInvalidNode, static_cast<NodeId>(world.nsw.num_nodes())}) {
    cta.reset(world.ds.query(0), entry, &visited);
    EXPECT_TRUE(cta.done());
    EXPECT_FALSE(cta.step(cost));
    EXPECT_TRUE(cta.results().empty());
  }
}

TEST(IntraCta, TombstonesFilterResultsNotRouting) {
  const auto& world = testing::tiny_world();
  const sim::CostModel cm;
  SearchConfig cfg;
  cfg.topk = 10;
  cfg.candidate_len = 64;

  auto run = [&](const SearchConfig& c, std::size_t q) {
    IntraCtaSearch cta(world.ds, world.nsw, cm, c);
    VisitedTable visited(world.ds.num_base());
    cta.reset(world.ds.query(q), world.nsw.entry_point(), &visited);
    StepCost cost;
    while (cta.step(cost)) {
    }
    return std::make_pair(cta.results(), cta.stats().expanded_points);
  };

  for (std::size_t q = 0; q < 10; ++q) {
    const auto [plain, plain_expanded] = run(cfg, q);
    ASSERT_GE(plain.size(), 2u);
    TombstoneSet dead(world.ds.num_base());
    dead.mark(plain[0].id());
    dead.mark(plain[1].id());
    SearchConfig filtered = cfg;
    filtered.accept = AcceptPredicate::deleted_only(&dead);
    const auto [masked, masked_expanded] = run(filtered, q);

    // Routing is untouched: the traversal expanded the same points, and
    // the deleted nodes were still walked through.
    EXPECT_EQ(masked_expanded, plain_expanded);
    // Acceptance is filtered: deleted ids gone, k slots still filled from
    // the candidates behind them.
    EXPECT_EQ(masked.size(), plain.size());
    for (const auto& kv : masked) {
      EXPECT_NE(kv.id(), plain[0].id());
      EXPECT_NE(kv.id(), plain[1].id());
    }
    // The surviving prefix is exactly the plain results minus the dead.
    std::size_t j = 0;
    for (std::size_t i = 2; i < plain.size() && j < masked.size(); ++i) {
      EXPECT_EQ(masked[j].id(), plain[i].id());
      EXPECT_EQ(masked[j].dist, plain[i].dist);
      ++j;
    }
  }
}

// ---------------- topk_merge.hpp ----------------

TEST(TopkMerge, MergesAndDedups) {
  std::vector<KV> concat{
      // run 0
      KV::make(1.0f, 10), KV::make(3.0f, 30), KV::empty(),
      // run 1 (30 duplicated)
      KV::make(2.0f, 20), KV::make(3.0f, 30), KV::make(4.0f, 40)};
  const auto merged = merge_sorted_runs(concat, 2, 3, 4, AcceptPredicate{});
  ASSERT_EQ(merged.size(), 4u);
  EXPECT_EQ(merged[0].id(), 10u);
  EXPECT_EQ(merged[1].id(), 20u);
  EXPECT_EQ(merged[2].id(), 30u);
  EXPECT_EQ(merged[3].id(), 40u);
}

TEST(TopkMerge, StripsCheckedFlags) {
  std::vector<KV> concat{KV::make(1.0f, 10)};
  concat[0].mark_checked();
  const auto merged = merge_sorted_runs(concat, 1, 1, 1, AcceptPredicate{});
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_FALSE(merged[0].checked());
  EXPECT_EQ(merged[0].id(), 10u);
}

TEST(TopkMerge, EmptyRunsAreFine) {
  std::vector<KV> concat(6, KV::empty());
  EXPECT_TRUE(merge_sorted_runs(concat, 2, 3, 4, AcceptPredicate{}).empty());
}

TEST(TopkMerge, EqualDistancesBreakTiesByGlobalId) {
  // Crafted duplicate-distance runs: the cross-shard merge path produces
  // equal distances from different shards routinely (identical rows land
  // in different shards). Output order must be ascending (distance, id),
  // regardless of which run carried which id.
  std::vector<KV> concat{
      // run 0 (higher ids first within the tie distance's shard)
      KV::make(1.0f, 50), KV::make(2.0f, 90), KV::make(2.0f, 91),
      // run 1
      KV::make(1.0f, 40), KV::make(2.0f, 10), KV::make(3.0f, 20),
      // run 2
      KV::make(1.0f, 45), KV::make(2.0f, 60), KV::empty()};
  const auto merged = merge_sorted_runs(concat, 3, 3, 8, AcceptPredicate{});
  ASSERT_EQ(merged.size(), 8u);
  const std::vector<NodeId> want{40, 45, 50, 10, 60, 90, 91, 20};
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(merged[i].id(), want[i]) << "rank " << i;
  }
  // Ranks 0-2 share distance 1.0 and ranks 3-6 share 2.0: within a tie the
  // ids ascend.
  EXPECT_FLOAT_EQ(merged[0].dist, 1.0f);
  EXPECT_FLOAT_EQ(merged[2].dist, 1.0f);
  EXPECT_FLOAT_EQ(merged[3].dist, 2.0f);
  EXPECT_FLOAT_EQ(merged[6].dist, 2.0f);
}

TEST(TopkMerge, FullyEqualHeadsDedupDeterministically) {
  // The same (distance, id) appearing in several runs — a query routed to
  // overlapping shards — must dedup to one entry and never disturb later
  // ordering, independent of run count or layout.
  std::vector<KV> concat{
      KV::make(1.5f, 7), KV::make(2.5f, 8),
      KV::make(1.5f, 7), KV::make(1.5f, 9)};
  const auto merged = merge_sorted_runs(concat, 2, 2, 4, AcceptPredicate{});
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].id(), 7u);
  EXPECT_EQ(merged[1].id(), 9u);
  EXPECT_EQ(merged[2].id(), 8u);
}

TEST(TopkMerge, TombstonedIdsAreSkippedWithoutBurningSlots) {
  std::vector<KV> concat{
      KV::make(1.0f, 10), KV::make(3.0f, 30), KV::empty(),
      KV::make(2.0f, 20), KV::make(4.0f, 40), KV::make(5.0f, 50)};
  TombstoneSet dead(64);
  dead.mark(20);
  dead.mark(40);
  const auto merged =
      merge_sorted_runs(concat, 2, 3, 3, AcceptPredicate::deleted_only(&dead));
  ASSERT_EQ(merged.size(), 3u);  // deleted ids did not consume k slots
  EXPECT_EQ(merged[0].id(), 10u);
  EXPECT_EQ(merged[1].id(), 30u);
  EXPECT_EQ(merged[2].id(), 50u);
  // A null predicate keeps the exact legacy behavior.
  const auto plain = merge_sorted_runs(concat, 2, 3, 3, AcceptPredicate{});
  EXPECT_EQ(plain[1].id(), 20u);
  // Ids past the set's size (e.g. rows published after the set was sized)
  // are never treated as deleted.
  TombstoneSet tiny(15);
  const auto unscreened =
      merge_sorted_runs(concat, 2, 3, 3, AcceptPredicate::deleted_only(&tiny));
  EXPECT_EQ(unscreened[1].id(), 20u);
}

TEST(TopkMerge, MatchesStdSortReference) {
  const std::size_t runs = 4, len = 32;
  std::vector<KV> concat;
  for (std::size_t r = 0; r < runs; ++r) {
    auto run = random_kvs(len, 100 + r);
    std::sort(run.begin(), run.end());
    concat.insert(concat.end(), run.begin(), run.end());
  }
  const auto merged = merge_sorted_runs(concat, runs, len, 10,
                                        AcceptPredicate{});
  auto reference = concat;
  std::sort(reference.begin(), reference.end());
  // No duplicate ids in random data (1M id space) with high probability.
  ASSERT_EQ(merged.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(merged[i].id(), reference[i].id());
  }
}

// ---------------- multi_cta.hpp ----------------

TEST(MultiCta, EntryPointsDistinct) {
  const auto& world = testing::tiny_world();
  const auto entries = select_entry_points(world.nsw, 8, 42, 3);
  ASSERT_EQ(entries.size(), 8u);
  EXPECT_EQ(entries[0], world.nsw.entry_point());
  std::set<NodeId> unique(entries.begin(), entries.end());
  EXPECT_EQ(unique.size(), entries.size());
}

TEST(MultiCta, MoreCtasNeverHurtRecallMuch) {
  const auto& world = testing::tiny_world();
  const sim::CostModel cm;
  SearchConfig cfg;
  cfg.topk = 10;
  cfg.candidate_len = 64;
  double recall1 = 0.0, recall4 = 0.0;
  const std::size_t nq = 40;
  for (std::size_t q = 0; q < nq; ++q) {
    auto r1 = multi_cta_search(world.ds, world.nsw, cm, cfg, 1,
                               world.ds.query(q), q, 7);
    auto r4 = multi_cta_search(world.ds, world.nsw, cm, cfg, 4,
                               world.ds.query(q), q, 7);
    recall1 += metrics::recall_at_k(world.ds, q, r1.topk, 10);
    recall4 += metrics::recall_at_k(world.ds, q, r4.topk, 10);
  }
  EXPECT_GT(recall4 / nq, 0.85);
  EXPECT_GT(recall4 / nq, recall1 / nq - 0.05);
}

TEST(MultiCta, ReportsPerCtaCosts) {
  const auto& world = testing::tiny_world();
  const sim::CostModel cm;
  SearchConfig cfg;
  cfg.candidate_len = 64;
  const auto res = multi_cta_search(world.ds, world.nsw, cm, cfg, 4,
                                    world.ds.query(0), 0, 7);
  ASSERT_EQ(res.per_cta_ns.size(), 4u);
  for (double d : res.per_cta_ns) EXPECT_GT(d, 0.0);
  EXPECT_DOUBLE_EQ(
      res.critical_path_ns,
      *std::max_element(res.per_cta_ns.begin(), res.per_cta_ns.end()));
  EXPECT_EQ(res.run_len, 64u);
}

TEST(MultiCta, SharedVisitedPreventsDuplicateScoring) {
  const auto& world = testing::tiny_world();
  const sim::CostModel cm;
  SearchConfig cfg;
  cfg.candidate_len = 64;
  const auto res = multi_cta_search(world.ds, world.nsw, cm, cfg, 4,
                                    world.ds.query(1), 1, 7);
  // Merged topk must have unique ids (dedup would mask double-scoring, so
  // also check totals: scored points <= dataset size).
  std::set<NodeId> ids;
  for (const auto& kv : res.topk) ids.insert(kv.id());
  EXPECT_EQ(ids.size(), res.topk.size());
  EXPECT_LE(res.per_cta_total.scored_points, world.ds.num_base());
}

// ---------------- greedy.hpp ----------------

TEST(Greedy, MatchesSingleCtaResults) {
  const auto& world = testing::tiny_world();
  const sim::CostModel cm;
  SearchConfig cfg;
  cfg.topk = 10;
  cfg.candidate_len = 64;
  cfg.beam_width = 3;  // greedy_search must override this to 1
  const auto g = greedy_search(world.ds, world.nsw, cm, cfg,
                               world.ds.query(2));
  const auto m = multi_cta_search(world.ds, world.nsw, cm,
                                  [&] {
                                    auto c = cfg;
                                    c.beam_width = 1;
                                    return c;
                                  }(),
                                  1, world.ds.query(2), 2, 7);
  ASSERT_EQ(g.topk.size(), m.topk.size());
  for (std::size_t i = 0; i < g.topk.size(); ++i) {
    EXPECT_EQ(g.topk[i].id(), m.topk[i].id());
  }
  EXPECT_FALSE(g.stats.step_distances.empty());
}

}  // namespace
}  // namespace algas::search
