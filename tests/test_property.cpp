// Property-based and invariant tests across modules: randomized inputs,
// parameterized sweeps, functional invariance of timing-only knobs, and
// failure injection.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>

#include "baselines/batch_runner.hpp"
#include "common/rng.hpp"
#include "core/engine.hpp"
#include "search/bitonic.hpp"
#include "search/candidate_list.hpp"
#include "search/intra_cta.hpp"
#include "search/multi_cta.hpp"
#include "search/topk_merge.hpp"
#include "simgpu/channel.hpp"
#include "test_util.hpp"

namespace algas {
namespace {

// ---------------- candidate list vs std reference ----------------------

class CandidateListProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(CandidateListProperty, MergeSequenceMatchesSortedReference) {
  // Random sequence of merge_sorted calls must leave the list equal to the
  // L best of everything ever inserted.
  Rng rng(GetParam());
  const std::size_t cap = 64;
  search::CandidateList list(cap);
  list.reset();
  std::vector<KV> inserted;
  for (int round = 0; round < 10; ++round) {
    const std::size_t n = 1 + rng.next_below(cap);
    std::vector<KV> expand;
    for (std::size_t i = 0; i < n; ++i) {
      // Unique ids so the reference is unambiguous.
      const auto id = static_cast<NodeId>(inserted.size() + expand.size());
      expand.push_back(KV::make(rng.next_float() * 10.0f, id));
    }
    std::sort(expand.begin(), expand.end());
    list.merge_sorted(expand);
    inserted.insert(inserted.end(), expand.begin(), expand.end());
  }
  std::sort(inserted.begin(), inserted.end());
  for (std::size_t i = 0; i < std::min(cap, inserted.size()); ++i) {
    EXPECT_EQ(list.at(i).id(), inserted[i].id()) << "position " << i;
    EXPECT_FLOAT_EQ(list.at(i).dist, inserted[i].dist);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CandidateListProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

// ---------------- topk merge vs reference -------------------------------

class TopkMergeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TopkMergeProperty, MatchesFlatSortWithDedup) {
  Rng rng(GetParam() * 31 + 7);
  const std::size_t runs = 1 + rng.next_below(6);
  const std::size_t len = 16;
  std::vector<KV> concat;
  for (std::size_t r = 0; r < runs; ++r) {
    std::vector<KV> run;
    for (std::size_t i = 0; i < len; ++i) {
      // Small id space to force duplicates across runs.
      run.push_back(KV::make(rng.next_float(),
                             static_cast<NodeId>(rng.next_below(40))));
    }
    std::sort(run.begin(), run.end());
    concat.insert(concat.end(), run.begin(), run.end());
  }
  const std::size_t k = 1 + rng.next_below(12);
  const auto merged = search::merge_sorted_runs(concat, runs, len, k,
                                                search::AcceptPredicate{});

  // Reference: flat sort + first-occurrence dedup.
  auto flat = concat;
  std::sort(flat.begin(), flat.end());
  std::vector<KV> expected;
  std::set<NodeId> seen;
  for (const auto& kv : flat) {
    if (expected.size() == k) break;
    if (seen.insert(kv.id()).second) expected.push_back(kv);
  }
  ASSERT_EQ(merged.size(), expected.size());
  for (std::size_t i = 0; i < merged.size(); ++i) {
    EXPECT_EQ(merged[i].id(), expected[i].id());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TopkMergeProperty,
                         ::testing::Range<std::uint64_t>(0, 12));

// ---------------- search invariants --------------------------------------

TEST(SearchProperty, ResultsAscendingAndUnique) {
  const auto& world = testing::tiny_world();
  const sim::CostModel cm;
  for (std::size_t L : {32, 64, 128}) {
    for (std::size_t beam : {1, 2, 4}) {
      search::SearchConfig cfg;
      cfg.topk = 16;
      cfg.candidate_len = L;
      cfg.beam_width = beam;
      cfg.offset_beam = 12;
      for (std::size_t q = 0; q < 20; ++q) {
        const auto res = search::multi_cta_search(
            world.ds, world.nsw, cm, cfg, 2, world.ds.query(q), q, 3);
        ASSERT_FALSE(res.topk.empty());
        std::set<NodeId> ids;
        for (std::size_t i = 0; i < res.topk.size(); ++i) {
          EXPECT_TRUE(ids.insert(res.topk[i].id()).second);
          if (i > 0) {
            EXPECT_LE(res.topk[i - 1].dist, res.topk[i].dist);
          }
          // Reported distances must be true distances.
          EXPECT_FLOAT_EQ(res.topk[i].dist,
                          distance(world.ds.metric(), world.ds.query(q),
                                   world.ds.base_vector(res.topk[i].id())));
        }
      }
    }
  }
}

TEST(SearchProperty, DeterministicAcrossRuns) {
  const auto& world = testing::tiny_world();
  const sim::CostModel cm;
  search::SearchConfig cfg;
  cfg.candidate_len = 64;
  cfg.beam_width = 4;
  cfg.offset_beam = 8;
  for (std::size_t q = 0; q < 10; ++q) {
    const auto a = search::multi_cta_search(world.ds, world.nsw, cm, cfg, 4,
                                            world.ds.query(q), q, 9);
    const auto b = search::multi_cta_search(world.ds, world.nsw, cm, cfg, 4,
                                            world.ds.query(q), q, 9);
    ASSERT_EQ(a.topk.size(), b.topk.size());
    for (std::size_t i = 0; i < a.topk.size(); ++i) {
      EXPECT_EQ(a.topk[i].id(), b.topk[i].id());
    }
    EXPECT_DOUBLE_EQ(a.critical_path_ns, b.critical_path_ns);
  }
}

// ---------------- timing-only knobs don't change results ----------------

TEST(EngineProperty, TimingKnobsAreFunctionallyInert) {
  // state mirroring and host thread count change virtual time and traffic,
  // never results: per-query ids must match exactly.
  const auto& world = testing::tiny_world();
  core::AlgasConfig base;
  base.search.topk = 10;
  base.search.candidate_len = 64;
  base.slots = 4;
  base.n_parallel = 4;

  auto run_ids = [&](const core::AlgasConfig& cfg) {
    core::AlgasEngine engine(world.ds, world.nsw, cfg);
    const auto rep = engine.run_closed_loop(40);
    std::vector<std::vector<NodeId>> ids(40);
    for (const auto& r : rep.collector.records()) {
      for (const auto& kv : r.results) ids[r.query_index].push_back(kv.id());
    }
    return ids;
  };

  const auto reference = run_ids(base);
  {
    auto cfg = base;
    cfg.host_sync = core::HostSync::kPollNaive;
    EXPECT_EQ(run_ids(cfg), reference);
  }
  {
    auto cfg = base;
    cfg.host_threads = 4;
    EXPECT_EQ(run_ids(cfg), reference);
  }
  {
    auto cfg = base;
    cfg.cost.pcie_latency_ns *= 10;  // slower wires, same answers
    EXPECT_EQ(run_ids(cfg), reference);
  }
}

// ---------------- engine sweeps -------------------------------------------

class EngineSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(EngineSweep, CompletesAndRecalls) {
  const auto [slots, n_parallel] = GetParam();
  const auto& world = testing::tiny_world();
  core::AlgasConfig cfg;
  cfg.search.topk = 10;
  cfg.search.candidate_len = 64;
  cfg.slots = slots;
  cfg.n_parallel = n_parallel;
  core::AlgasEngine engine(world.ds, world.nsw, cfg);
  const auto rep = engine.run_closed_loop(40);
  EXPECT_EQ(rep.summary.queries, 40u);
  EXPECT_GT(rep.recall, 0.85);
  EXPECT_GT(rep.summary.throughput_qps, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    SlotsByParallel, EngineSweep,
    ::testing::Combine(::testing::Values<std::size_t>(1, 2, 5, 16),
                       ::testing::Values<std::size_t>(1, 3, 8)));

// ---------------- wave scheduling invariants -----------------------------

class WaveProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WaveProperty, ConservationAndBounds) {
  Rng rng(GetParam() * 131);
  const std::size_t queries = 1 + rng.next_below(8);
  const std::size_t ctas_per_query = 1 + rng.next_below(4);
  const std::size_t capacity = 1 + rng.next_below(6);
  std::vector<baselines::CtaTask> tasks;
  double total = 0.0;
  double max_dur = 0.0;
  for (std::size_t q = 0; q < queries; ++q) {
    for (std::size_t t = 0; t < ctas_per_query; ++t) {
      const double dur = 10.0 + rng.next_double() * 100.0;
      tasks.push_back({q, dur});
      total += dur;
      max_dur = std::max(max_dur, dur);
    }
  }
  const auto timing = baselines::wave_schedule(
      tasks, queries, capacity, std::vector<double>(queries, 0.0));
  // Work conservation.
  EXPECT_NEAR(timing.active_ns, total, 1e-6);
  // Makespan bounds: max(total/capacity, longest task) <= end <= total.
  EXPECT_GE(timing.gpu_end_ns + 1e-9,
            std::max(total / static_cast<double>(capacity), max_dur));
  EXPECT_LE(timing.gpu_end_ns, total + 1e-6);
  // Every query finishes within the kernel.
  for (double t : timing.query_final) {
    EXPECT_GT(t, 0.0);
    EXPECT_LE(t, timing.gpu_end_ns + 1e-9);
  }
  EXPECT_GE(timing.idle_ns, -1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WaveProperty,
                         ::testing::Range<std::uint64_t>(0, 10));

// ---------------- channel properties --------------------------------------

TEST(ChannelProperty, UtilizationNeverExceedsOne) {
  sim::CostModel cm;
  sim::Channel ch(cm);
  Rng rng(5);
  double now = 0.0;
  for (int i = 0; i < 200; ++i) {
    now += rng.next_double() * 50.0;
    ch.transfer(now, rng.next_below(4096), sim::Xfer::kBulk);
  }
  // Link busy time can never exceed the span it has been driven over.
  EXPECT_LE(ch.utilization(now + 1e6), 1.0);
  EXPECT_GT(ch.utilization(now + 1e6), 0.0);
}

TEST(ChannelProperty, FifoCompletionOrderForDataTransfers) {
  sim::CostModel cm;
  sim::Channel ch(cm);
  // Back-to-back data posts at the same instant complete in issue order.
  double prev = 0.0;
  for (int i = 0; i < 20; ++i) {
    const double d = ch.post(0.0, 1024, sim::Xfer::kBulk);
    EXPECT_GT(d, prev);
    prev = d;
  }
}

TEST(ChannelProperty, ControlPlanePostsAreConstantTime) {
  sim::CostModel cm;
  sim::Channel ch(cm);
  const double first = ch.post(0.0, 4, sim::Xfer::kStateWrite);
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(ch.post(0.0, 4, sim::Xfer::kStateWrite), first);
  }
  EXPECT_EQ(ch.counters(sim::Xfer::kStateWrite).transactions, 51u);
}

}  // namespace
}  // namespace algas
