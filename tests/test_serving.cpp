// The open-loop serving layer: arrival-process property tests, bounded
// admission, per-query deadlines, and the shed/evict state machine under
// overload. Companion to test_core.cpp (slot protocol) and
// test_sharded.cpp (scatter-gather) — this file covers the workload side.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <vector>

#include "core/engine.hpp"
#include "core/query_manager.hpp"
#include "core/serving_engine.hpp"
#include "core/sharded_engine.hpp"
#include "simgpu/arrival.hpp"
#include "test_util.hpp"

namespace algas::core {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// ---------------- simgpu/arrival.hpp ----------------

sim::ArrivalConfig poisson_cfg(double rate_qps, std::uint64_t seed = 42) {
  sim::ArrivalConfig cfg;
  cfg.kind = sim::ArrivalKind::kPoisson;
  cfg.rate_qps = rate_qps;
  cfg.seed = seed;
  return cfg;
}

sim::ArrivalConfig bursty_cfg(double rate_qps, std::uint64_t seed = 42) {
  sim::ArrivalConfig cfg = poisson_cfg(rate_qps, seed);
  cfg.kind = sim::ArrivalKind::kBursty;
  return cfg;
}

TEST(ArrivalProcess, SeededTraceIsByteIdentical) {
  // The CI serving gate checksums arrival traces across machines and host
  // thread counts: a (config, seed) pair must replay the exact same trace,
  // bit for bit, with no tolerance.
  for (const auto& cfg : {poisson_cfg(5000.0), bursty_cfg(5000.0)}) {
    sim::ArrivalProcess a(cfg);
    sim::ArrivalProcess b(cfg);
    const auto ta = a.generate_ns(2000);
    const auto tb = b.generate_ns(2000);
    ASSERT_EQ(ta.size(), tb.size());
    for (std::size_t i = 0; i < ta.size(); ++i) {
      ASSERT_EQ(ta[i], tb[i]) << "trace diverged at arrival " << i;
    }
  }
}

TEST(ArrivalProcess, DifferentSeedsDiverge) {
  sim::ArrivalProcess a(poisson_cfg(5000.0, 1));
  sim::ArrivalProcess b(poisson_cfg(5000.0, 2));
  EXPECT_NE(a.generate_ns(64), b.generate_ns(64));
}

TEST(ArrivalProcess, GenerateMatchesRepeatedNext) {
  sim::ArrivalProcess batch(bursty_cfg(3000.0));
  sim::ArrivalProcess loop(bursty_cfg(3000.0));
  const auto ts = batch.generate_ns(256);
  for (std::size_t i = 0; i < ts.size(); ++i) {
    EXPECT_EQ(loop.next_arrival_ns(), ts[i]) << i;
  }
}

TEST(ArrivalProcess, ArrivalsNondecreasingAndNonnegative) {
  for (const auto& cfg : {poisson_cfg(20000.0), bursty_cfg(20000.0)}) {
    sim::ArrivalProcess p(cfg);
    double prev = 0.0;
    for (int i = 0; i < 5000; ++i) {
      const double t = p.next_arrival_ns();
      EXPECT_GE(t, prev);
      prev = t;
    }
  }
}

TEST(ArrivalProcess, PoissonEmpiricalMeanMatchesRate) {
  // Inter-arrival mean of an Exp(lambda) stream is 1/lambda. With n = 40000
  // samples the standard error is mean/sqrt(n) ~ 0.5%, so a 3% band is a
  // real distribution check, not a tautology.
  const double rate = 1000.0;  // -> mean gap 1e6 ns
  sim::ArrivalProcess p(poisson_cfg(rate));
  const std::size_t n = 40000;
  const double mean_gap_ns = p.generate_ns(n).back() / static_cast<double>(n);
  EXPECT_NEAR(mean_gap_ns, 1e9 / rate, 0.03 * 1e9 / rate);
}

TEST(ArrivalProcess, BurstyPhaseOccupancyMatchesDwellRatio) {
  // MMPP occupancy: long-run fraction of virtual time in the burst phase is
  // burst_dwell / (base_dwell + burst_dwell) (alternating renewal). The
  // defaults give 500 / 2500 = 0.2; run long enough for ~20k phase cycles.
  sim::ArrivalConfig cfg = bursty_cfg(2000.0);
  sim::ArrivalProcess p(cfg);
  p.generate_ns(200000);
  ASSERT_GT(p.elapsed_ns(), 0.0);
  const double occupancy = p.burst_time_ns() / p.elapsed_ns();
  EXPECT_NEAR(occupancy, cfg.expected_burst_fraction(), 0.02);
  EXPECT_DOUBLE_EQ(cfg.expected_burst_fraction(), 0.2);
}

TEST(ArrivalProcess, BurstyMeanRateSitsBetweenPhaseRates) {
  sim::ArrivalConfig cfg = bursty_cfg(2000.0);
  sim::ArrivalProcess p(cfg);
  const std::size_t n = 100000;
  const double span_s = p.generate_ns(n).back() / 1e9;
  const double mean_rate = static_cast<double>(n) / span_s;
  EXPECT_GT(mean_rate, cfg.rate_qps);
  EXPECT_LT(mean_rate, cfg.effective_burst_rate());
  // Sanity of the occupancy-weighted expectation: 0.8*2000 + 0.2*8000.
  EXPECT_NEAR(mean_rate, 3200.0, 0.05 * 3200.0);
}

TEST(ArrivalProcess, PoissonNeverEntersBurstPhase) {
  sim::ArrivalProcess p(poisson_cfg(1000.0));
  p.generate_ns(1000);
  EXPECT_FALSE(p.in_burst());
  EXPECT_DOUBLE_EQ(p.burst_time_ns(), 0.0);
}

TEST(ArrivalProcess, InvalidConfigThrows) {
  sim::ArrivalConfig zero_rate = poisson_cfg(0.0);
  EXPECT_THROW(sim::ArrivalProcess{zero_rate}, std::invalid_argument);
  sim::ArrivalConfig bad_dwell = bursty_cfg(1000.0);
  bad_dwell.base_dwell_us = 0.0;
  EXPECT_THROW(sim::ArrivalProcess{bad_dwell}, std::invalid_argument);
}

TEST(ArrivalConfig, BurstRateDefaultsToFourTimesBase) {
  sim::ArrivalConfig cfg = bursty_cfg(1500.0);
  EXPECT_DOUBLE_EQ(cfg.effective_burst_rate(), 6000.0);
  cfg.burst_rate_qps = 2000.0;
  EXPECT_DOUBLE_EQ(cfg.effective_burst_rate(), 2000.0);
}

// ---------------- query_manager.hpp: bounded admission ----------------

PendingQuery pq(std::size_t idx, double arrival, std::uint8_t priority = 0,
                double deadline = kInf) {
  PendingQuery q;
  q.query_index = idx;
  q.arrival_ns = arrival;
  q.priority = priority;
  q.deadline_ns = deadline;
  return q;
}

TEST(Admission, UnboundedDefaultNeverSheds) {
  QueryManager qm;
  const AdmissionConfig adm;  // capacity = kUnboundedQueue
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_FALSE(qm.admit(pq(i, static_cast<double>(i)), adm).has_value());
  }
  EXPECT_EQ(qm.pending(), 100u);
}

TEST(Admission, QueueExactlyAtCapacityAdmitsThenSheds) {
  // The boundary case: the admit that FILLS the queue succeeds; the next
  // one is the first to shed.
  QueryManager qm;
  AdmissionConfig adm;
  adm.capacity = 3;
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_FALSE(qm.admit(pq(i, 0.0), adm).has_value()) << i;
  }
  EXPECT_EQ(qm.pending(), 3u);
  const auto victim = qm.admit(pq(3, 0.0), adm);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->query_index, 3u);  // kRejectNew sheds the newcomer
  EXPECT_EQ(qm.pending(), 3u);
}

TEST(Admission, DropOldestEvictsOldestLowestClass) {
  QueryManager qm;
  AdmissionConfig adm;
  adm.capacity = 2;
  adm.policy = ShedPolicy::kDropOldest;
  qm.admit(pq(0, 0.0, /*priority=*/0), adm);
  qm.admit(pq(1, 1.0, /*priority=*/1), adm);
  // Full; a same-class newcomer makes room by dropping the oldest class-0.
  const auto victim = qm.admit(pq(2, 2.0, /*priority=*/1), adm);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->query_index, 0u);
  EXPECT_EQ(qm.pending(), 2u);
  // The survivors are q1 and q2.
  std::set<std::size_t> left;
  while (auto q = qm.pop_ready(10.0)) left.insert(q->query_index);
  EXPECT_EQ(left, (std::set<std::size_t>{1u, 2u}));
}

TEST(Admission, DropOldestProtectsHigherClasses) {
  // A full queue of higher-priority work never makes room for a lower
  // class: the policy falls back to rejecting the newcomer.
  QueryManager qm;
  AdmissionConfig adm;
  adm.capacity = 2;
  adm.policy = ShedPolicy::kDropOldest;
  qm.admit(pq(0, 0.0, /*priority=*/3), adm);
  qm.admit(pq(1, 1.0, /*priority=*/3), adm);
  const auto victim = qm.admit(pq(2, 2.0, /*priority=*/0), adm);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->query_index, 2u);
  EXPECT_EQ(qm.pending(), 2u);
}

TEST(Admission, PopPrefersHighestArrivedClass) {
  QueryManager qm;
  qm.push(pq(0, 0.0, /*priority=*/0));
  qm.push(pq(1, 5.0, /*priority=*/3));
  qm.push(pq(2, 6.0, /*priority=*/0));
  // Before the high-priority arrival only q0 is eligible.
  auto q = qm.pop_ready(1.0);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->query_index, 0u);
  // Once both classes have arrived the class-3 entry pops first even
  // though the class-0 queue is older.
  q = qm.pop_ready(10.0);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->query_index, 1u);
  q = qm.pop_ready(10.0);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->query_index, 2u);
}

TEST(Admission, PriorityClampsIntoRange) {
  QueryManager qm;
  qm.push(pq(0, 0.0, /*priority=*/255));
  const auto q = qm.pop_ready(1.0);
  ASSERT_TRUE(q.has_value());
  EXPECT_LT(q->priority, kPriorityClasses);
}

// ---------------- engine.hpp: serving mode ----------------

AlgasConfig tiny_serving_config() {
  AlgasConfig cfg;
  cfg.search.topk = 10;
  cfg.search.candidate_len = 64;
  cfg.search.beam_width = 2;
  cfg.search.offset_beam = 16;
  cfg.slots = 4;
  cfg.host_threads = 1;
  cfg.device = sim::DeviceProps::rtx_a6000();
  return cfg;
}

std::vector<PendingQuery> spaced_arrivals(std::size_t n, double gap_ns,
                                          double deadline_rel_ns = kInf) {
  std::vector<PendingQuery> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double arrival = static_cast<double>(i) * gap_ns;
    out.push_back(pq(i, arrival, 0, arrival + deadline_rel_ns));
  }
  return out;
}

/// Median service time of the closed-loop tiny world, measured once — the
/// yardstick the deadline tests scale against.
double tiny_p50_service_ns() {
  static const double p50 = [] {
    const auto& world = algas::testing::tiny_world();
    AlgasEngine e(world.ds, world.nsw, tiny_serving_config());
    return e.run_closed_loop(40).summary.p50_service_us * 1000.0;
  }();
  return p50;
}

TEST(EngineServing, BoundedAdmissionWithSlackMatchesUnboundedResults) {
  // A bounded queue that never fills and infinite deadlines must serve the
  // same queries with byte-identical RESULTS as the pre-serving open-loop
  // run: search output is a pure function of (query, graph), independent of
  // when a slot picked the query up. Virtual timing may differ by a poll
  // iteration — the AdmissionActor pushes at the arrival instant, and a
  // worker waking at that same instant can observe the queue one event
  // later than the pre-push path — but it must be deterministic: two
  // bounded runs agree on every timestamp.
  const auto& world = algas::testing::tiny_world();
  const auto arrivals = spaced_arrivals(50, 2000.0);

  AlgasEngine plain(world.ds, world.nsw, tiny_serving_config());
  const auto ref = plain.run(arrivals);

  AlgasConfig bounded_cfg = tiny_serving_config();
  bounded_cfg.admission.capacity = 1u << 20;
  AlgasEngine bounded(world.ds, world.nsw, bounded_cfg);
  const auto got = bounded.run(arrivals);
  AlgasEngine bounded2(world.ds, world.nsw, bounded_cfg);
  const auto again = bounded2.run(arrivals);

  ASSERT_EQ(got.collector.size(), ref.collector.size());
  ASSERT_EQ(again.collector.size(), got.collector.size());
  for (std::size_t i = 0; i < ref.collector.records().size(); ++i) {
    const auto& a = ref.collector.records()[i];
    const auto& b = got.collector.records()[i];
    const auto& c = again.collector.records()[i];
    ASSERT_EQ(a.query_index, b.query_index) << i;
    ASSERT_TRUE(b.served()) << i;
    ASSERT_EQ(a.results.size(), b.results.size()) << i;
    for (std::size_t k = 0; k < a.results.size(); ++k) {
      ASSERT_EQ(a.results[k].dist, b.results[k].dist);
      ASSERT_EQ(a.results[k].key, b.results[k].key);
    }
    // Bounded-vs-bounded is bit-identical including every timestamp.
    ASSERT_EQ(b.dispatch_ns, c.dispatch_ns) << i;
    ASSERT_EQ(b.done_ns, c.done_ns) << i;
  }
  EXPECT_EQ(got.summary.served, got.summary.queries);
  EXPECT_DOUBLE_EQ(got.recall, ref.recall);
}

TEST(EngineServing, DeadlineEqualToArrivalShedsEverything) {
  // deadline == arrival means the query is already late by the time any
  // host worker can look at it (popping costs host-loop time): every query
  // sheds at dispatch, nothing deadlocks, and the run drains cleanly with
  // one record per arrival.
  const auto& world = algas::testing::tiny_world();
  const auto arrivals = spaced_arrivals(30, 1000.0, /*deadline_rel=*/0.0);
  AlgasConfig cfg = tiny_serving_config();
  cfg.admission.capacity = 1u << 20;
  AlgasEngine e(world.ds, world.nsw, cfg);
  const auto rep = e.run(arrivals);
  EXPECT_EQ(rep.summary.queries, 30u);
  EXPECT_EQ(rep.summary.shed_deadline, 30u);
  EXPECT_EQ(rep.summary.served, 0u);
  EXPECT_DOUBLE_EQ(rep.summary.goodput_qps, 0.0);
  EXPECT_DOUBLE_EQ(rep.summary.shed_rate, 1.0);
  for (const auto& r : rep.collector.records()) {
    EXPECT_EQ(r.disposition, metrics::Disposition::kShedDeadline);
    EXPECT_TRUE(r.results.empty());
    EXPECT_EQ(r.slot, metrics::QueryRecord::kNoSlot);
  }
}

TEST(EngineServing, TinyQueueShedsBurstButServesSome) {
  // Everything arrives in one instant-burst against a capacity-2 queue:
  // admission control must shed most of the burst (kShedQueue) while the
  // slots drain what was admitted. Exactly one record per arrival either
  // way — the delivered-records invariant under overload.
  const auto& world = algas::testing::tiny_world();
  const auto arrivals = spaced_arrivals(40, 1.0);  // ~simultaneous
  AlgasConfig cfg = tiny_serving_config();
  cfg.admission.capacity = 2;
  AlgasEngine e(world.ds, world.nsw, cfg);
  const auto rep = e.run(arrivals);
  EXPECT_EQ(rep.summary.queries, 40u);
  EXPECT_GT(rep.summary.shed_queue, 0u);
  EXPECT_GT(rep.summary.served, 0u);
  EXPECT_EQ(rep.summary.served + rep.summary.shed_queue +
                rep.summary.shed_deadline + rep.summary.evicted,
            40u);
  std::set<std::size_t> seen;
  for (const auto& r : rep.collector.records()) {
    EXPECT_TRUE(seen.insert(r.query_index).second);
    if (r.disposition == metrics::Disposition::kShedQueue) {
      EXPECT_TRUE(r.results.empty());
      EXPECT_EQ(r.slot, metrics::QueryRecord::kNoSlot);
    }
  }
  EXPECT_EQ(seen.size(), 40u);
}

TEST(EngineServing, TightDeadlineEvictsFinishedWork) {
  // Deadline at half the median service time, arrivals spaced far apart:
  // every query dispatches (the deadline is still ahead at pop time) but
  // expires mid-flight, so the host evicts the Finish-ed slot instead of
  // fetching results. GPU-side work really happened (scored_points carries
  // over) but no results cross the channel.
  const auto& world = algas::testing::tiny_world();
  const double deadline_rel = 0.5 * tiny_p50_service_ns();
  ASSERT_GT(deadline_rel, 1000.0) << "tiny world service time collapsed; "
                                     "deadline would shed at dispatch";
  const auto arrivals =
      spaced_arrivals(20, 10.0 * tiny_p50_service_ns(), deadline_rel);
  AlgasConfig cfg = tiny_serving_config();
  cfg.admission.capacity = 1u << 20;
  AlgasEngine e(world.ds, world.nsw, cfg);
  const auto rep = e.run(arrivals);
  EXPECT_EQ(rep.summary.queries, 20u);
  EXPECT_GT(rep.summary.evicted, 0u);
  EXPECT_EQ(rep.summary.served, 0u);
  EXPECT_DOUBLE_EQ(rep.summary.goodput_qps, 0.0);
  for (const auto& r : rep.collector.records()) {
    if (r.disposition != metrics::Disposition::kEvicted) continue;
    EXPECT_TRUE(r.results.empty());
    EXPECT_GT(r.scored_points, 0u);
    EXPECT_GE(r.gpu_done_ns, r.dispatch_ns);
  }
}

TEST(EngineServing, DeadlineExpiringDuringFetchIsAServedMiss) {
  // The Finish -> Done decision runs BEFORE the fetch/transfer/merge costs
  // are charged, so a deadline can expire between completion detection and
  // delivery. Such a query still serves (the slot was already committed to
  // the fetch) but must carry its real deadline on the record and count as
  // a deadline miss — this is the K=1 goodput accounting the serving gate
  // measures, and it must agree with the K>1 MergeActor stamping.
  //
  // Construction: calibrate with infinite deadlines, then pin each query's
  // deadline an epsilon short of its calibrated done_ns. A deadline in the
  // detection->delivery window changes no scheduling decision (dispatch
  // and eviction checks both pass), so the timed run replays the
  // calibration byte-identically and the deadline lands in that window by
  // construction (the fetch path costs at least host_io_submit_ns = 1200ns
  // >> epsilon).
  const auto& world = algas::testing::tiny_world();
  const std::size_t n = 10;
  const auto calib_arrivals =
      spaced_arrivals(n, 10.0 * tiny_p50_service_ns());
  AlgasEngine calib(world.ds, world.nsw, tiny_serving_config());
  const auto ref = calib.run(calib_arrivals);
  ASSERT_EQ(ref.summary.served, n);

  std::vector<double> done_of(n, 0.0);
  for (const auto& r : ref.collector.records()) {
    done_of[r.query_index] = r.done_ns;
  }
  auto arrivals = calib_arrivals;
  for (auto& q : arrivals) {
    q.priority = 2;  // must round-trip onto the served record too
    q.deadline_ns = done_of[q.query_index] - 1.0;
    ASSERT_GT(q.deadline_ns, q.arrival_ns);
  }
  AlgasEngine e(world.ds, world.nsw, tiny_serving_config());
  const auto rep = e.run(arrivals);
  EXPECT_EQ(rep.summary.served, n);  // nothing shed, nothing evicted
  EXPECT_EQ(rep.summary.evicted, 0u);
  EXPECT_EQ(rep.summary.deadline_misses, n);
  EXPECT_DOUBLE_EQ(rep.summary.deadline_miss_rate, 1.0);
  EXPECT_DOUBLE_EQ(rep.summary.goodput_qps, 0.0);
  EXPECT_GT(rep.summary.throughput_qps, 0.0);
  for (const auto& r : rep.collector.records()) {
    ASSERT_TRUE(r.served());
    EXPECT_TRUE(std::isfinite(r.deadline_ns)) << "deadline not stamped";
    EXPECT_EQ(r.priority, 2);
    EXPECT_GT(r.done_ns, r.deadline_ns);
    EXPECT_FALSE(r.in_deadline());
    EXPECT_FALSE(r.results.empty());
  }
}

TEST(EngineServing, GenerousDeadlinesAllServedAndInDeadline) {
  const auto& world = algas::testing::tiny_world();
  const double deadline_rel = 50.0 * tiny_p50_service_ns();
  const auto arrivals = spaced_arrivals(30, 5000.0, deadline_rel);
  AlgasConfig cfg = tiny_serving_config();
  cfg.admission.capacity = 64;
  AlgasEngine e(world.ds, world.nsw, cfg);
  const auto rep = e.run(arrivals);
  EXPECT_EQ(rep.summary.served, 30u);
  EXPECT_EQ(rep.summary.deadline_misses, 0u);
  EXPECT_DOUBLE_EQ(rep.summary.goodput_qps, rep.summary.throughput_qps);
  EXPECT_GT(rep.recall, 0.8);
}

TEST(EngineServing, BlockingSyncServesBoundedWorkload) {
  // The serving path composes with every host-sync ablation, not just
  // mirrored polling.
  const auto& world = algas::testing::tiny_world();
  const auto arrivals = spaced_arrivals(20, 2000.0, 1e9);
  AlgasConfig cfg = tiny_serving_config();
  cfg.host_sync = HostSync::kBlocking;
  cfg.admission.capacity = 8;
  AlgasEngine e(world.ds, world.nsw, cfg);
  const auto rep = e.run(arrivals);
  EXPECT_EQ(rep.summary.queries, 20u);
  EXPECT_EQ(rep.summary.served + rep.summary.shed_queue +
                rep.summary.shed_deadline + rep.summary.evicted,
            20u);
}

TEST(EngineServing, MultiHostOverloadDrainsCleanly) {
  // Two host workers against a capacity-2 queue and an instant burst: the
  // run must terminate with every arrival accounted for (the specific
  // shed/serve split legitimately depends on worker interleaving, but the
  // accounting identity does not).
  const auto& world = algas::testing::tiny_world();
  const auto arrivals = spaced_arrivals(40, 1.0);
  AlgasConfig cfg = tiny_serving_config();
  cfg.host_threads = 2;
  cfg.admission.capacity = 2;
  AlgasEngine e(world.ds, world.nsw, cfg);
  const auto rep = e.run(arrivals);
  EXPECT_EQ(rep.summary.queries, 40u);
  EXPECT_EQ(rep.summary.served + rep.summary.shed_queue +
                rep.summary.shed_deadline + rep.summary.evicted,
            40u);
  EXPECT_GT(rep.summary.served, 0u);
}

// ---------------- serving_engine.hpp ----------------

ServingConfig tiny_serving_engine_config() {
  ServingConfig cfg;
  cfg.sharded.base = tiny_serving_config();
  cfg.sharded.base.admission.capacity = 8;
  cfg.sharded.shards = 1;
  cfg.sharded.build.degree = 16;
  cfg.sharded.build.ef_construction = 48;
  cfg.num_queries = 40;
  return cfg;
}

TEST(ServingEngine, PlanWorkloadIsDeterministicAndStamped) {
  const auto& world = algas::testing::tiny_world();
  ServingConfig cfg = tiny_serving_engine_config();
  cfg.arrival = bursty_cfg(20000.0);
  cfg.deadline_us = 150.0;
  cfg.high_priority_fraction = 0.5;
  ServingEngine e(world.ds, cfg);
  const auto a = e.plan_workload();
  const auto b = e.plan_workload();
  ASSERT_EQ(a.size(), 40u);
  std::size_t high = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].query_index, i);
    ASSERT_EQ(a[i].arrival_ns, b[i].arrival_ns);
    ASSERT_EQ(a[i].deadline_ns, b[i].deadline_ns);
    ASSERT_EQ(a[i].priority, b[i].priority);
    EXPECT_DOUBLE_EQ(a[i].deadline_ns, a[i].arrival_ns + 150.0 * 1000.0);
    if (a[i].priority == kPriorityClasses - 1) ++high;
  }
  // Seeded coin at p = 0.5 over 40 draws: both classes must appear.
  EXPECT_GT(high, 0u);
  EXPECT_LT(high, 40u);
}

TEST(ServingEngine, ZeroDeadlineMeansNoDeadline) {
  const auto& world = algas::testing::tiny_world();
  ServingConfig cfg = tiny_serving_engine_config();
  cfg.deadline_us = 0.0;
  ServingEngine e(world.ds, cfg);
  for (const auto& q : e.plan_workload()) {
    EXPECT_TRUE(std::isinf(q.deadline_ns));
  }
}

TEST(ServingEngine, UnderloadServesEverything) {
  const auto& world = algas::testing::tiny_world();
  ServingConfig cfg = tiny_serving_engine_config();
  cfg.arrival = poisson_cfg(2000.0);  // gaps >> tiny-world service time
  cfg.deadline_us = 10000.0;
  ServingEngine e(world.ds, cfg);
  const auto rep = e.run();
  EXPECT_EQ(rep.sharded.merged.summary.queries, 40u);
  EXPECT_DOUBLE_EQ(rep.shed_rate, 0.0);
  EXPECT_DOUBLE_EQ(rep.deadline_miss_rate, 0.0);
  EXPECT_GT(rep.goodput_qps, 0.0);
  EXPECT_GT(rep.offered_qps, 0.0);
  EXPECT_GT(rep.sharded.merged.recall, 0.8);
  EXPECT_GT(rep.p999_latency_us, 0.0);
  EXPECT_GE(rep.p999_latency_us, rep.p99_latency_us);
}

TEST(ServingEngine, OverloadDegradesGracefullyNotToZero) {
  // 2x-saturation shape: a huge offered rate against a capacity-2 queue
  // must shed, but goodput stays positive — overload degrades, it does
  // not cliff to zero.
  const auto& world = algas::testing::tiny_world();
  ServingConfig cfg = tiny_serving_engine_config();
  cfg.sharded.base.admission.capacity = 2;
  cfg.arrival = poisson_cfg(2e6);
  cfg.deadline_us = 10000.0;
  ServingEngine e(world.ds, cfg);
  const auto rep = e.run();
  const auto& s = rep.sharded.merged.summary;
  EXPECT_EQ(s.queries, 40u);
  EXPECT_GT(rep.shed_rate, 0.0);
  EXPECT_GT(rep.goodput_qps, 0.0);
  EXPECT_EQ(s.served + s.shed_queue + s.shed_deadline + s.evicted, 40u);
}

// ---------------- sharded serving ----------------

TEST(ShardedServing, SaturatedShardShedsWhileOthersServe) {
  // K = 2 with selective fanout: flood the shard that owns one routing
  // region with back-to-back arrivals (tiny queue -> it must shed) while
  // the other shard's queries arrive at leisure. The run drains, every
  // arrival gets a record, and the relaxed shard serves everything.
  const auto& world = algas::testing::tiny_world();
  ShardedConfig cfg;
  cfg.base = tiny_serving_config();
  cfg.base.admission.capacity = 2;
  cfg.shards = 2;
  cfg.fanout = 1;
  cfg.build.degree = 16;
  cfg.build.ef_construction = 48;
  ShardedEngine e(world.ds, cfg);

  // Partition the first 60 dataset queries by routed shard.
  std::vector<std::size_t> to0, to1;
  for (std::size_t i = 0; i < 60; ++i) {
    (e.route(i)[0] == 0 ? to0 : to1).push_back(i);
  }
  ASSERT_GT(to0.size(), 4u) << "router sent (almost) nothing to shard 0";
  ASSERT_GT(to1.size(), 1u) << "router sent (almost) nothing to shard 1";

  // Flood shard 0 at t=0 (1ns apart), trickle shard 1 afterwards. Arrival
  // order must be nondecreasing, so the flood comes first.
  std::vector<PendingQuery> arrivals;
  double t = 0.0;
  for (std::size_t idx : to0) arrivals.push_back(pq(idx, t += 1.0));
  for (std::size_t idx : to1) arrivals.push_back(pq(idx, t += 100000.0));

  const auto rep = e.run(arrivals);
  const auto& s = rep.merged.summary;
  EXPECT_EQ(s.queries, arrivals.size());
  EXPECT_EQ(rep.merged.collector.size(), arrivals.size());
  EXPECT_GT(s.shed_queue, 0u);
  EXPECT_GT(s.served, to1.size() - 1);  // at least the relaxed shard's load
  // The relaxed shard's queries all arrive alone against an empty queue.
  std::set<std::size_t> relaxed(to1.begin(), to1.end());
  for (const auto& r : rep.merged.collector.records()) {
    if (relaxed.count(r.query_index)) {
      EXPECT_EQ(r.disposition, metrics::Disposition::kServed)
          << "query " << r.query_index;
      EXPECT_FALSE(r.results.empty());
    }
  }
}

}  // namespace
}  // namespace algas::core
