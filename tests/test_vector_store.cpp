// Property tests for the quantized base-vector storage layer:
// common/half.hpp conversions, the VectorStore codecs, the quantized batch
// kernels, and the Dataset storage plumbing.
//
// Two different contracts are checked with two different comparisons:
//   * parity — a quantized batch distance must BITWISE equal decoding the
//     row to floats and running the plain f32 chain (dequantize-in-register
//     changes nothing), so those tests use bit_cast equality;
//   * accuracy — quantized vs the ORIGINAL floats is lossy by design, so
//     round-trip tests assert analytic error bounds (half-ulp for f16,
//     scale/2 for int8). Recall impact is gated separately by
//     tools/recall_gate + scripts/check_recall.py.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "common/half.hpp"
#include "common/rng.hpp"
#include "dataset/dataset.hpp"
#include "distance/distance.hpp"
#include "distance/kernels.hpp"

namespace algas {
namespace {

std::uint32_t bits(float x) { return std::bit_cast<std::uint32_t>(x); }

// ---------------- half conversion ----------------

TEST(Half, EveryHalfRoundTripsExactly) {
  // half_to_float is exact and float_to_half must invert it: sweeping all
  // 65536 bit patterns proves both directions at once. NaNs only promise
  // to stay NaN (the payload is widened then re-narrowed, sign preserved).
  for (std::uint32_t h = 0; h < 0x10000u; ++h) {
    const auto half = static_cast<std::uint16_t>(h);
    const float f = half_to_float(half);
    if (std::isnan(f)) {
      const std::uint16_t back = float_to_half(f);
      EXPECT_EQ(back & 0x7c00u, 0x7c00u) << "h=" << h;
      EXPECT_NE(back & 0x03ffu, 0u) << "h=" << h;
      EXPECT_EQ(back & 0x8000u, half & 0x8000u) << "h=" << h;
    } else {
      EXPECT_EQ(float_to_half(f), half) << "h=" << h << " f=" << f;
    }
  }
}

TEST(Half, RoundsTiesToEven) {
  // Halfway between 1.0 (mant 0, even) and 1+2^-10 (mant 1, odd): down.
  EXPECT_EQ(float_to_half(1.0f + 0x1p-11f), 0x3c00u);
  // Halfway between 1+2^-10 (odd) and 1+2^-9 (mant 2, even): up.
  EXPECT_EQ(float_to_half(1.0f + 3 * 0x1p-11f), 0x3c02u);
  // Just off the tie goes to nearest regardless of parity.
  EXPECT_EQ(float_to_half(1.0f + 0x1p-11f + 0x1p-20f), 0x3c01u);
  EXPECT_EQ(float_to_half(1.0f + 0x1p-11f - 0x1p-20f), 0x3c00u);
}

TEST(Half, OverflowRoundsToInfinity) {
  EXPECT_EQ(float_to_half(65504.0f), 0x7bffu);   // largest finite half
  EXPECT_EQ(float_to_half(65519.0f), 0x7bffu);   // below the halfway point
  EXPECT_EQ(float_to_half(65520.0f), 0x7c00u);   // tie, 0x3ff is odd: up
  EXPECT_EQ(float_to_half(1e6f), 0x7c00u);
  EXPECT_EQ(float_to_half(-1e6f), 0xfc00u);
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(float_to_half(inf), 0x7c00u);
  EXPECT_EQ(float_to_half(-inf), 0xfc00u);
}

TEST(Half, DenormalBoundaries) {
  EXPECT_EQ(float_to_half(0x1p-24f), 0x0001u);   // smallest half denormal
  EXPECT_EQ(float_to_half(0x1p-25f), 0x0000u);   // tie with zero: even, down
  EXPECT_EQ(float_to_half(3 * 0x1p-26f), 0x0001u);  // above the tie: up
  EXPECT_EQ(float_to_half(0x1p-26f), 0x0000u);   // below the half-ulp
  EXPECT_EQ(float_to_half(0x1p-14f), 0x0400u);   // smallest normal half
  EXPECT_EQ(bits(half_to_float(0x0001u)), bits(0x1p-24f));
  EXPECT_EQ(bits(half_to_float(0x03ffu)), bits(0x1p-14f - 0x1p-24f));
}

TEST(Half, SignedZeroAndNegativesSurvive) {
  EXPECT_EQ(float_to_half(0.0f), 0x0000u);
  EXPECT_EQ(float_to_half(-0.0f), 0x8000u);
  EXPECT_EQ(bits(half_to_float(0x8000u)), bits(-0.0f));
  EXPECT_EQ(float_to_half(-1.0f), 0xbc00u);
  EXPECT_EQ(bits(half_to_float(0xbc00u)), bits(-1.0f));
}

TEST(Half, RandomRoundTripWithinHalfUlp) {
  Rng rng(99);
  for (int i = 0; i < 20000; ++i) {
    const float v = rng.next_gaussian() * 8.0f;
    const float back = half_to_float(float_to_half(v));
    // RNE error bound: half a half-ulp — relative 2^-11 for normals,
    // absolute 2^-25 below the normal range.
    const float tol = std::max(std::fabs(v) * 0x1p-11f, 0x1p-25f);
    EXPECT_LE(std::fabs(back - v), tol) << "v=" << v;
  }
}

// ---------------- VectorStore codecs ----------------

std::vector<float> make_rows(std::size_t rows, std::size_t dim,
                             std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> base(rows * dim, 0.0f);
  // Row 0 all-zero (zero-scale / zero-norm path); the rest gaussian with a
  // few denormal and negative-denormal entries mixed in.
  for (std::size_t i = dim; i < base.size(); ++i) {
    base[i] = rng.next_gaussian();
    if (i % 97 == 0) base[i] = 0x1p-30f;
    if (i % 101 == 0) base[i] = -0x1p-26f;
  }
  return base;
}

TEST(VectorStore, CodecNamesParseAndRoundTrip) {
  for (StorageCodec c : {StorageCodec::kF32, StorageCodec::kF16,
                         StorageCodec::kInt8}) {
    EXPECT_EQ(parse_storage_codec(storage_codec_name(c)), c);
  }
  EXPECT_EQ(storage_elem_bytes(StorageCodec::kF32), 4u);
  EXPECT_EQ(storage_elem_bytes(StorageCodec::kF16), 2u);
  EXPECT_EQ(storage_elem_bytes(StorageCodec::kInt8), 1u);
  EXPECT_THROW(parse_storage_codec("fp16"), std::invalid_argument);
  EXPECT_THROW(parse_storage_codec(""), std::invalid_argument);
}

TEST(VectorStore, F32HoldsNothingAndRefusesDecode) {
  const auto base = make_rows(5, 8, 1);
  VectorStore vs;
  vs.encode(base.data(), 5, 8, StorageCodec::kF32);
  EXPECT_EQ(vs.codec(), StorageCodec::kF32);
  EXPECT_EQ(vs.encoded_bytes(), 0u);
  std::vector<float> out(8);
  EXPECT_THROW(vs.decode_row(0, out), std::logic_error);
}

TEST(VectorStore, Int8PerRowScaleIsMaxAbsOver127) {
  constexpr std::size_t kRows = 9, kDim = 13;
  const auto base = make_rows(kRows, kDim, 2);
  VectorStore vs;
  vs.encode(base.data(), kRows, kDim, StorageCodec::kInt8);
  ASSERT_EQ(vs.i8_scales().size(), kRows);
  EXPECT_EQ(bits(vs.i8_scales()[0]), bits(0.0f));  // all-zero row
  for (std::size_t r = 1; r < kRows; ++r) {
    float max_abs = 0.0f;
    int max_code = 0;
    for (std::size_t d = 0; d < kDim; ++d) {
      max_abs = std::max(max_abs, std::fabs(base[r * kDim + d]));
      max_code = std::max(max_code,
                          std::abs(static_cast<int>(vs.i8_rows()[r * kDim + d])));
    }
    EXPECT_EQ(bits(vs.i8_scales()[r]), bits(max_abs / 127.0f)) << "row " << r;
    // The max-|v| element maps to exactly +-127; nothing exceeds it.
    EXPECT_EQ(max_code, 127) << "row " << r;
  }
}

TEST(VectorStore, RoundTripErrorBoundsAcrossDims) {
  // Sweep dims across the kernel tail boundaries, including the extremes
  // the issue pins (1 and 257).
  for (std::size_t dim : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 16u, 17u, 31u, 32u,
                          33u, 64u, 127u, 128u, 129u, 256u, 257u}) {
    constexpr std::size_t kRows = 7;
    const auto base = make_rows(kRows, dim, dim * 31 + 7);
    for (StorageCodec codec : {StorageCodec::kF16, StorageCodec::kInt8}) {
      VectorStore vs;
      vs.encode(base.data(), kRows, dim, codec);
      EXPECT_EQ(vs.rows(), kRows);
      EXPECT_EQ(vs.dim(), dim);
      std::vector<float> row(dim);
      for (std::size_t r = 0; r < kRows; ++r) {
        vs.decode_row(r, row);
        for (std::size_t d = 0; d < dim; ++d) {
          const float v = base[r * dim + d];
          float tol;
          if (codec == StorageCodec::kF16) {
            tol = std::max(std::fabs(v) * 0x1p-11f, 0x1p-25f);
          } else {
            // Round-to-nearest code: at most half a quantization step.
            tol = vs.i8_scales()[r] * 0.5f;
          }
          EXPECT_LE(std::fabs(row[d] - v), tol)
              << storage_codec_name(codec) << " dim=" << dim << " r=" << r
              << " d=" << d;
        }
        if (r == 0) {  // all-zero row decodes to exactly zero
          for (std::size_t d = 0; d < dim; ++d) {
            EXPECT_EQ(bits(row[d]), bits(0.0f));
          }
        }
      }
    }
  }
}

TEST(VectorStore, EncodedBytesMatchCodecWidth) {
  const auto base = make_rows(6, 10, 3);
  VectorStore vs;
  vs.encode(base.data(), 6, 10, StorageCodec::kF16);
  EXPECT_EQ(vs.encoded_bytes(), 6u * 10u * 2u);
  vs.encode(base.data(), 6, 10, StorageCodec::kInt8);
  EXPECT_EQ(vs.encoded_bytes(), 6u * 10u * 1u + 6u * sizeof(float));
  vs.encode(base.data(), 6, 10, StorageCodec::kF32);
  EXPECT_EQ(vs.encoded_bytes(), 0u);
}

// ---------------- quantized kernels: the parity property ----------------

constexpr Metric kMetrics[] = {Metric::kL2, Metric::kInnerProduct,
                               Metric::kCosine};

/// Materialize the decoded matrix a quantized kernel implicitly scores.
std::vector<float> decoded_matrix(const VectorStore& vs) {
  std::vector<float> out(vs.rows() * vs.dim());
  for (std::size_t r = 0; r < vs.rows(); ++r) {
    vs.decode_row(r, {out.data() + r * vs.dim(), vs.dim()});
  }
  return out;
}

TEST(QuantizedKernels, BatchBitwiseEqualsF32OnDecodedRows) {
  constexpr std::size_t kRows = 67;
  for (std::size_t dim : {1u, 3u, 16u, 33u, 128u, 257u}) {
    const auto base = make_rows(kRows, dim, dim + 41);
    Rng qr(dim);
    std::vector<float> query(dim);
    for (auto& v : query) v = qr.next_gaussian();

    std::vector<NodeId> ids;
    for (std::size_t i = 0; i < kRows; i += 2) {
      ids.push_back(static_cast<NodeId>(i));
    }
    ids.push_back(0);  // duplicate + zero row

    for (StorageCodec codec : {StorageCodec::kF16, StorageCodec::kInt8}) {
      VectorStore vs;
      vs.encode(base.data(), kRows, dim, codec);
      const auto decoded = decoded_matrix(vs);
      for (Metric m : kMetrics) {
        std::vector<float> got(ids.size()), want(ids.size());
        distance_batch(m, query, decoded.data(), dim, ids, want);
        if (codec == StorageCodec::kF16) {
          distance_batch_f16(m, query, vs.f16_rows(), dim, ids, got);
        } else {
          distance_batch_i8(m, query, vs.i8_rows(), vs.i8_scales().data(),
                            dim, ids, got);
        }
        for (std::size_t k = 0; k < ids.size(); ++k) {
          EXPECT_EQ(bits(got[k]), bits(want[k]))
              << storage_codec_name(codec) << " " << metric_name(m)
              << " dim=" << dim << " k=" << k;
        }
        // Per-id scalar chain on the decoded row agrees too.
        for (std::size_t k = 0; k < ids.size(); ++k) {
          const std::span<const float> row{decoded.data() + ids[k] * dim, dim};
          EXPECT_EQ(bits(got[k]), bits(distance(m, query, row)))
              << storage_codec_name(codec) << " " << metric_name(m)
              << " dim=" << dim << " k=" << k;
        }
      }
    }
  }
}

TEST(QuantizedKernels, RangeVariantAndNormTableBitwiseParity) {
  constexpr std::size_t kRows = 41, kDim = 19;
  const auto base = make_rows(kRows, kDim, 77);
  Rng qr(78);
  std::vector<float> query(kDim);
  for (auto& v : query) v = qr.next_gaussian();

  for (StorageCodec codec : {StorageCodec::kF16, StorageCodec::kInt8}) {
    VectorStore vs;
    vs.encode(base.data(), kRows, kDim, codec);
    const auto decoded = decoded_matrix(vs);
    // Cosine norm table = norms of the DECODED rows.
    std::vector<float> norms(kRows);
    for (std::size_t r = 0; r < kRows; ++r) {
      norms[r] = norm({decoded.data() + r * kDim, kDim});
    }
    for (Metric m : kMetrics) {
      const std::size_t starts[] = {0, 1, 5, kRows - 1};
      for (std::size_t first : starts) {
        const std::size_t counts[] = {0, 1, 4, 9, kRows - first};
        for (std::size_t count : counts) {
          if (first + count > kRows) continue;
          std::vector<float> got(count), want(count);
          distance_batch_range(m, query, decoded.data(), kDim, first, count,
                               want, norms);
          if (codec == StorageCodec::kF16) {
            distance_batch_range_f16(m, query, vs.f16_rows(), kDim, first,
                                     count, got, norms);
          } else {
            distance_batch_range_i8(m, query, vs.i8_rows(),
                                    vs.i8_scales().data(), kDim, first,
                                    count, got, norms);
          }
          for (std::size_t k = 0; k < count; ++k) {
            EXPECT_EQ(bits(got[k]), bits(want[k]))
                << storage_codec_name(codec) << " " << metric_name(m)
                << " first=" << first << " count=" << count << " k=" << k;
          }
          // With-table must equal without-table (table entries are the
          // decoded norms the kernel would recompute).
          if (m == Metric::kCosine && count > 0) {
            std::vector<float> no_table(count);
            if (codec == StorageCodec::kF16) {
              distance_batch_range_f16(m, query, vs.f16_rows(), kDim, first,
                                       count, no_table);
            } else {
              distance_batch_range_i8(m, query, vs.i8_rows(),
                                      vs.i8_scales().data(), kDim, first,
                                      count, no_table);
            }
            for (std::size_t k = 0; k < count; ++k) {
              EXPECT_EQ(bits(got[k]), bits(no_table[k]))
                  << storage_codec_name(codec) << " first=" << first
                  << " k=" << k;
            }
          }
        }
      }
    }
  }
}

// ---------------- Dataset plumbing ----------------

Dataset quantizable_dataset(Metric m) {
  Dataset ds("vs-test", 17, m);
  ds.mutable_base() = make_rows(60, 17, 5);
  Rng qr(6);
  std::vector<float> queries(3 * 17);
  for (auto& v : queries) v = qr.next_gaussian();
  ds.mutable_queries() = queries;
  return ds;
}

TEST(DatasetStorage, F32CodecIsTheIdentityPath) {
  for (Metric m : kMetrics) {
    Dataset ds = quantizable_dataset(m);
    Dataset plain = quantizable_dataset(m);
    ds.set_storage(StorageCodec::kF32);
    EXPECT_EQ(ds.storage(), StorageCodec::kF32);
    EXPECT_EQ(ds.elem_bytes(), 4u);
    std::vector<NodeId> ids{0, 7, 7, 59, 13};
    std::vector<float> got(ids.size()), want(ids.size());
    ds.distance_batch(ds.query(0), ids, got);
    plain.distance_batch(plain.query(0), ids, want);
    for (std::size_t k = 0; k < ids.size(); ++k) {
      EXPECT_EQ(bits(got[k]), bits(want[k])) << metric_name(m) << " k=" << k;
      EXPECT_EQ(bits(got[k]), bits(plain.query_distance(0, ids[k])));
    }
  }
}

TEST(DatasetStorage, QuantizedScoreAndBatchAgreeBitwise) {
  for (Metric m : kMetrics) {
    for (StorageCodec codec : {StorageCodec::kF16, StorageCodec::kInt8}) {
      Dataset ds = quantizable_dataset(m);
      ds.set_storage(codec);
      EXPECT_EQ(ds.storage(), codec);
      EXPECT_EQ(ds.elem_bytes(), storage_elem_bytes(codec));
      std::vector<NodeId> ids{0, 1, 7, 7, 59, 13, 0};
      std::vector<float> out(ids.size());
      ds.distance_batch(ds.query(1), ids, out);
      std::vector<float> row(ds.dim());
      for (std::size_t k = 0; k < ids.size(); ++k) {
        // Batch == per-id score == scalar distance on the decoded row.
        EXPECT_EQ(bits(out[k]), bits(ds.score(ds.query(1), ids[k])))
            << storage_codec_name(codec) << " " << metric_name(m);
        ds.vector_store().decode_row(ids[k], row);
        EXPECT_EQ(bits(out[k]),
                  bits(distance(m, ds.query(1),
                                {row.data(), row.size()})))
            << storage_codec_name(codec) << " " << metric_name(m);
      }
    }
  }
}

TEST(DatasetStorage, BaseNormsAreDecodedRowNorms) {
  Dataset ds = quantizable_dataset(Metric::kCosine);
  ds.set_storage(StorageCodec::kInt8);
  const auto norms = ds.base_norms();
  std::vector<float> row(ds.dim());
  for (std::size_t i = 0; i < ds.num_base(); ++i) {
    ds.vector_store().decode_row(i, row);
    EXPECT_EQ(bits(norms[i]), bits(norm({row.data(), row.size()})))
        << "row " << i;
  }
}

TEST(DatasetStorage, MutableBaseInvalidatesScalesAndNorms) {
  Dataset ds = quantizable_dataset(Metric::kCosine);
  ds.set_storage(StorageCodec::kInt8);
  const float scale_before = ds.vector_store().i8_scales()[1];
  const float norm_before = ds.base_norms()[1];

  // Blow up row 1: every cached artifact derived from it is now stale.
  auto& base = ds.mutable_base();
  for (std::size_t d = 0; d < ds.dim(); ++d) {
    base[1 * ds.dim() + d] *= 64.0f;
  }

  const float scale_after = ds.vector_store().i8_scales()[1];
  EXPECT_EQ(bits(scale_after), bits(scale_before * 64.0f));
  const float norm_after = ds.base_norms()[1];
  std::vector<float> row(ds.dim());
  ds.vector_store().decode_row(1, row);
  EXPECT_EQ(bits(norm_after), bits(norm({row.data(), row.size()})));
  EXPECT_NE(bits(norm_after), bits(norm_before));

  // Scoring sees the new encoding immediately.
  std::vector<NodeId> ids{1};
  std::vector<float> out(1);
  ds.distance_batch(ds.query(0), ids, out);
  EXPECT_EQ(bits(out[0]), bits(ds.score(ds.query(0), 1)));
}

TEST(DatasetStorage, DescribeMentionsOnlyQuantizedCodecs) {
  Dataset ds = quantizable_dataset(Metric::kL2);
  EXPECT_EQ(ds.describe().find("storage="), std::string::npos);
  ds.set_storage(StorageCodec::kF16);
  EXPECT_NE(ds.describe().find("storage=f16"), std::string::npos);
}

}  // namespace
}  // namespace algas
