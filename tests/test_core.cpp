#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <set>
#include <string>

#include "core/engine.hpp"
#include "core/protocol_checker.hpp"
#include "core/query_manager.hpp"
#include "core/slot.hpp"
#include "core/state_sync.hpp"
#include "core/tuner.hpp"
#include "simgpu/checker.hpp"
#include "test_util.hpp"

namespace algas::core {
namespace {

// ---------------- slot.hpp ----------------

TEST(Slot, StateNames) {
  EXPECT_STREQ(slot_state_name(SlotState::kNone), "None");
  EXPECT_STREQ(slot_state_name(SlotState::kWork), "Work");
  EXPECT_STREQ(slot_state_name(SlotState::kFinish), "Finish");
  EXPECT_STREQ(slot_state_name(SlotState::kDone), "Done");
  EXPECT_STREQ(slot_state_name(SlotState::kQuit), "Quit");
  EXPECT_STREQ(slot_state_name(SlotState::kExpired), "Expired");
}

TEST(Slot, Fig5TransitionsLegal) {
  EXPECT_TRUE(is_legal_transition(SlotState::kNone, SlotState::kWork));
  EXPECT_TRUE(is_legal_transition(SlotState::kWork, SlotState::kFinish));
  EXPECT_TRUE(is_legal_transition(SlotState::kFinish, SlotState::kDone));
  EXPECT_TRUE(is_legal_transition(SlotState::kDone, SlotState::kWork));
  EXPECT_TRUE(is_legal_transition(SlotState::kDone, SlotState::kQuit));
  EXPECT_TRUE(is_legal_transition(SlotState::kNone, SlotState::kQuit));
  // Serving extension: eviction of a past-deadline query at completion
  // detection. Expired behaves like Done for its outgoing edges.
  EXPECT_TRUE(is_legal_transition(SlotState::kFinish, SlotState::kExpired));
  EXPECT_TRUE(is_legal_transition(SlotState::kExpired, SlotState::kWork));
  EXPECT_TRUE(is_legal_transition(SlotState::kExpired, SlotState::kQuit));
}

TEST(Slot, IllegalTransitionsRejected) {
  EXPECT_FALSE(is_legal_transition(SlotState::kWork, SlotState::kWork));
  EXPECT_FALSE(is_legal_transition(SlotState::kWork, SlotState::kDone));
  EXPECT_FALSE(is_legal_transition(SlotState::kFinish, SlotState::kWork));
  EXPECT_FALSE(is_legal_transition(SlotState::kQuit, SlotState::kWork));
  EXPECT_FALSE(is_legal_transition(SlotState::kNone, SlotState::kFinish));
  // A running CTA cannot be preempted: expiry happens only at completion
  // detection (Finish), never out of Work, and never re-enters Done.
  EXPECT_FALSE(is_legal_transition(SlotState::kWork, SlotState::kExpired));
  EXPECT_FALSE(is_legal_transition(SlotState::kNone, SlotState::kExpired));
  EXPECT_FALSE(is_legal_transition(SlotState::kDone, SlotState::kExpired));
  EXPECT_FALSE(is_legal_transition(SlotState::kExpired, SlotState::kDone));
  EXPECT_FALSE(is_legal_transition(SlotState::kExpired, SlotState::kFinish));
}

TEST(Slot, TransitionMatrixExhaustive) {
  // All 36 (from, to) pairs against the Fig 5 edge list (+ the serving
  // Expired extension): exactly the nine protocol edges are legal,
  // everything else (self-loops included) is not.
  const SlotState all[] = {SlotState::kNone,    SlotState::kWork,
                           SlotState::kFinish,  SlotState::kDone,
                           SlotState::kQuit,    SlotState::kExpired};
  auto fig5 = [](SlotState from, SlotState to) {
    return (from == SlotState::kNone && to == SlotState::kWork) ||
           (from == SlotState::kWork && to == SlotState::kFinish) ||
           (from == SlotState::kFinish && to == SlotState::kDone) ||
           (from == SlotState::kDone && to == SlotState::kWork) ||
           (from == SlotState::kDone && to == SlotState::kQuit) ||
           (from == SlotState::kNone && to == SlotState::kQuit) ||
           (from == SlotState::kFinish && to == SlotState::kExpired) ||
           (from == SlotState::kExpired && to == SlotState::kWork) ||
           (from == SlotState::kExpired && to == SlotState::kQuit);
  };
  int legal = 0;
  for (SlotState from : all) {
    for (SlotState to : all) {
      EXPECT_EQ(is_legal_transition(from, to), fig5(from, to))
          << slot_state_name(from) << " -> " << slot_state_name(to);
      legal += is_legal_transition(from, to) ? 1 : 0;
    }
  }
  EXPECT_EQ(legal, 9);
}

TEST(Slot, Fig9SingleWriterOwnership) {
  // The side allowed to transition a word OUT of each state: host owns
  // None/Finish/Done/Expired, the device owns Work, Quit is terminal.
  EXPECT_EQ(state_owner(SlotState::kNone), Side::kHost);
  EXPECT_EQ(state_owner(SlotState::kWork), Side::kDevice);
  EXPECT_EQ(state_owner(SlotState::kFinish), Side::kHost);
  EXPECT_EQ(state_owner(SlotState::kDone), Side::kHost);
  EXPECT_EQ(state_owner(SlotState::kQuit), Side::kNone);
  EXPECT_EQ(state_owner(SlotState::kExpired), Side::kHost);
  EXPECT_STREQ(side_name(Side::kHost), "host");
  EXPECT_STREQ(side_name(Side::kDevice), "device");
  EXPECT_STREQ(side_name(Side::kNone), "none");
}

// ---------------- tuner.hpp ----------------

sim::SharedMemoryLayout small_layout() {
  sim::SharedMemoryLayout layout;
  layout.candidate_entries = 128;
  layout.expand_entries = 64;
  layout.dim = 128;
  return layout;
}

TEST(Tuner, MaximizesParallelismUnderBlockLimit) {
  TuneInput in;
  in.device = sim::DeviceProps::rtx_a6000();
  in.slots = 16;
  in.layout = small_layout();
  const auto plan = tune(in);
  ASSERT_TRUE(plan.ok) << plan.reason;
  // Block limit alone allows 84*16/16 = 84; shared memory will clamp it.
  EXPECT_GE(plan.n_parallel, 1u);
  EXPECT_LE(plan.n_parallel * in.slots, in.device.max_resident_blocks());
  EXPECT_EQ(plan.total_ctas, plan.n_parallel * in.slots);
  EXPECT_EQ(plan.threads_per_block, 32u);
}

TEST(Tuner, RespectsRequestedParallel) {
  TuneInput in;
  in.device = sim::DeviceProps::rtx_a6000();
  in.slots = 16;
  in.layout = small_layout();
  in.requested_parallel = 4;
  const auto plan = tune(in);
  ASSERT_TRUE(plan.ok);
  EXPECT_EQ(plan.n_parallel, 4u);
}

TEST(Tuner, SharedMemoryConstraintHolds) {
  // Property: for every slot count, the produced plan satisfies
  // M_avail_per_block >= layout AND blocks/SM consistent with total CTAs.
  for (std::size_t slots : {1, 2, 4, 8, 16, 32, 64}) {
    TuneInput in;
    in.device = sim::DeviceProps::rtx_a6000();
    in.slots = slots;
    in.layout = small_layout();
    const auto plan = tune(in);
    ASSERT_TRUE(plan.ok) << "slots=" << slots << ": " << plan.reason;
    EXPECT_GE(plan.avail_per_block, plan.shared_mem_per_block);
    EXPECT_EQ(plan.blocks_per_sm,
              ceil_div(plan.total_ctas, in.device.num_sms));
    const auto occ = sim::check_occupancy(in.device, in.layout,
                                          plan.blocks_per_sm,
                                          plan.reserved_per_block);
    EXPECT_TRUE(occ.fits) << occ.reason;
  }
}

TEST(Tuner, BigLayoutReducesParallelism) {
  // With 64 slots the shared-memory constraint binds for a GIST-sized
  // layout, forcing N_parallel below the auto cap.
  TuneInput small_in;
  small_in.device = sim::DeviceProps::rtx_a6000();
  small_in.slots = 64;
  small_in.layout = small_layout();

  TuneInput big_in = small_in;
  big_in.layout.candidate_entries = 2048;
  big_in.layout.expand_entries = 1024;
  big_in.layout.dim = 960;

  const auto small_plan = tune(small_in);
  const auto big_plan = tune(big_in);
  ASSERT_TRUE(small_plan.ok);
  ASSERT_TRUE(big_plan.ok);
  EXPECT_LT(big_plan.n_parallel, small_plan.n_parallel);
}

TEST(Tuner, FailsWhenNothingFits) {
  TuneInput in;
  in.device = sim::DeviceProps::tiny_test_device();
  in.slots = 4;
  in.layout.candidate_entries = 8192;
  in.layout.expand_entries = 8192;
  in.layout.dim = 960;
  const auto plan = tune(in);
  EXPECT_FALSE(plan.ok);
  EXPECT_FALSE(plan.reason.empty());
}

TEST(Tuner, FailsOnTooManySlots) {
  TuneInput in;
  in.device = sim::DeviceProps::tiny_test_device();  // 16 resident blocks
  in.slots = 17;
  in.layout = small_layout();
  EXPECT_FALSE(tune(in).ok);
}

TEST(Tuner, AutoReservedScalesWithDim) {
  EXPECT_LT(auto_reserved_bytes(128), auto_reserved_bytes(960));
  EXPECT_GE(auto_reserved_bytes(16), 1024u);
}

TEST(Tuner, DescribeMentionsPlan) {
  TuneInput in;
  in.device = sim::DeviceProps::rtx_a6000();
  in.slots = 8;
  in.layout = small_layout();
  const auto plan = tune(in);
  ASSERT_TRUE(plan.ok);
  EXPECT_NE(plan.describe().find("N_parallel="), std::string::npos);
}

// ---------------- state_sync.hpp ----------------

TEST(StateSync, NaivePollsCrossChannel) {
  sim::CostModel cm;
  sim::Channel ch(cm);
  StateSync sync(&ch, cm, 2, 2, /*mirrored=*/false);
  double elapsed = 0.0;
  EXPECT_EQ(sync.host_read(0.0, 0, 0, &elapsed), SlotState::kNone);
  EXPECT_EQ(ch.counters(sim::Xfer::kStatePoll).transactions, 1u);
  EXPECT_GT(elapsed, cm.poll_remote_ns * 0.9);
}

TEST(StateSync, MirroredPollsStayLocal) {
  sim::CostModel cm;
  sim::Channel ch(cm);
  StateSync sync(&ch, cm, 2, 2, /*mirrored=*/true);
  double elapsed = 0.0;
  for (int i = 0; i < 100; ++i) sync.host_read(0.0, 0, 0, &elapsed);
  EXPECT_EQ(ch.counters(sim::Xfer::kStatePoll).transactions, 0u);
  EXPECT_LT(elapsed, 100 * cm.poll_local_ns * 1.5);
  EXPECT_EQ(sync.host_polls(), 100u);
}

TEST(StateSync, WritesCrossOnceInBothModes) {
  sim::CostModel cm;
  for (bool mirrored : {false, true}) {
    sim::Channel ch(cm);
    StateSync sync(&ch, cm, 1, 1, mirrored);
    double elapsed = 0.0;
    sync.host_write(0.0, 0, 0, SlotState::kWork, &elapsed);
    sync.device_write(0.0, 0, 0, SlotState::kFinish, &elapsed);
    // Host write always crosses; device write crosses only when mirrored.
    EXPECT_EQ(ch.counters(sim::Xfer::kStateWrite).transactions,
              mirrored ? 2u : 1u);
  }
}

TEST(StateSync, FullLifecycleAndAllInState) {
  sim::CostModel cm;
  sim::Channel ch(cm);
  StateSync sync(&ch, cm, 1, 3, true);
  double e = 0.0;
  for (std::size_t c = 0; c < 3; ++c) {
    sync.host_write(0.0, 0, c, SlotState::kWork, &e);
  }
  EXPECT_FALSE(sync.host_all_in_state(0.0, 0, SlotState::kFinish, &e));
  for (std::size_t c = 0; c < 3; ++c) {
    sync.device_write(0.0, 0, c, SlotState::kFinish, &e);
  }
  EXPECT_TRUE(sync.host_all_in_state(0.0, 0, SlotState::kFinish, &e));
  EXPECT_EQ(sync.state_transitions(), 6u);
}

TEST(StateSync, IllegalTransitionThrows) {
  sim::CostModel cm;
  sim::Channel ch(cm);
  StateSync sync(&ch, cm, 1, 1, true);
  double e = 0.0;
  EXPECT_THROW(sync.host_write(0.0, 0, 0, SlotState::kFinish, &e),
               std::logic_error);
}

// ---------------- protocol_checker.hpp ----------------

/// StateSync with the full SimCheck/ProtocolChecker stack attached.
struct CheckedSync {
  sim::CostModel cm;
  sim::Channel ch;
  sim::SimCheck check;
  StateSync sync;
  ProtocolChecker protocol;

  CheckedSync(std::size_t slots, std::size_t ctas, bool mirrored)
      : ch(cm),
        sync(&ch, cm, slots, ctas, mirrored),
        protocol(&check, &sync, &ch) {
    sync.set_checker(&protocol);
  }
};

/// Run `fn`, demand a SimCheckError of class `kind`, return its report.
std::string violation_report(const std::function<void()>& fn,
                             const std::string& kind) {
  try {
    fn();
  } catch (const sim::SimCheckError& e) {
    EXPECT_EQ(e.kind(), kind) << e.what();
    return e.what();
  }
  ADD_FAILURE() << "expected a SimCheck violation of kind [" << kind << "]";
  return {};
}

TEST(ProtocolChecker, LegalLifecycleRunsClean) {
  for (bool mirrored : {false, true}) {
    CheckedSync cs(1, 2, mirrored);
    double e = 0.0;
    double t = 0.0;
    for (std::size_t c = 0; c < 2; ++c) {
      cs.sync.host_write(t, 0, c, SlotState::kWork, &e);
      cs.sync.device_read(t += 10, 0, c, &e);
      cs.sync.device_write(t += 10, 0, c, SlotState::kFinish, &e);
      cs.sync.host_read(t += 10, 0, c, &e);
      cs.sync.host_write(t += 10, 0, c, SlotState::kDone, &e);
      cs.sync.host_write(t += 10, 0, c, SlotState::kQuit, &e);
    }
    EXPECT_NO_THROW(cs.protocol.finalize(t));
    EXPECT_EQ(cs.check.violations(), 0u);
    EXPECT_GT(cs.check.checks_performed(), 20u);
    EXPECT_EQ(cs.protocol.writes_observed(), 8u);
  }
}

TEST(ProtocolChecker, DeviceWriteOfHostOwnedWordIsRace) {
  // Mutation: after Finish the word is host-owned; a device Finish->Work
  // write must be reported as a Fig 9 race, with the word's trace attached,
  // BEFORE any state mutation happens.
  CheckedSync cs(1, 1, /*mirrored=*/true);
  double e = 0.0;
  cs.sync.host_write(0.0, 0, 0, SlotState::kWork, &e);
  cs.sync.device_write(10.0, 0, 0, SlotState::kFinish, &e);
  const std::string report = violation_report(
      [&] { cs.sync.device_write(20.0, 0, 0, SlotState::kWork, &e); },
      "ownership");
  EXPECT_NE(report.find("Fig 9 ownership violation"), std::string::npos)
      << report;
  EXPECT_NE(report.find("slot0.cta0"), std::string::npos);
  EXPECT_NE(report.find("device wrote Finish"), std::string::npos)
      << "report must carry the word's event trace:\n" << report;
  EXPECT_EQ(cs.sync.peek(0, 0), SlotState::kFinish)
      << "the racing write must report before mutating the word";
  EXPECT_EQ(cs.check.violations(), 1u);
}

TEST(ProtocolChecker, IllegalHostTransitionReportsBeforeSideEffects) {
  // None is host-owned, so ownership passes; None->Finish is simply not a
  // Fig 5 edge. The report fires before channel traffic or mutation.
  CheckedSync cs(1, 1, /*mirrored=*/true);
  double e = 0.0;
  const auto writes_before =
      cs.ch.counters(sim::Xfer::kStateWrite).transactions;
  const std::string report = violation_report(
      [&] { cs.sync.host_write(0.0, 0, 0, SlotState::kFinish, &e); },
      "illegal-transition");
  EXPECT_NE(report.find("Fig 5 permits"), std::string::npos) << report;
  EXPECT_EQ(cs.sync.peek(0, 0), SlotState::kNone);
  EXPECT_EQ(cs.ch.counters(sim::Xfer::kStateWrite).transactions,
            writes_before)
      << "an illegal write must not issue its write-through";
}

TEST(ProtocolChecker, ExpiredLifecycleRunsClean) {
  // The serving eviction path: Work -> Finish -> Expired (host evicts a
  // past-deadline query), then the slot is reused (Expired -> Work) and
  // finally retired (Expired -> Quit). All legal; finalize stays clean.
  for (bool mirrored : {false, true}) {
    CheckedSync cs(1, 1, mirrored);
    double e = 0.0;
    double t = 0.0;
    cs.sync.host_write(t, 0, 0, SlotState::kWork, &e);
    cs.sync.device_write(t += 10, 0, 0, SlotState::kFinish, &e);
    cs.sync.host_write(t += 10, 0, 0, SlotState::kExpired, &e);
    cs.sync.host_write(t += 10, 0, 0, SlotState::kWork, &e);
    cs.sync.device_write(t += 10, 0, 0, SlotState::kFinish, &e);
    cs.sync.host_write(t += 10, 0, 0, SlotState::kExpired, &e);
    cs.sync.host_write(t += 10, 0, 0, SlotState::kQuit, &e);
    cs.protocol.expect_full_drain(true);
    EXPECT_NO_THROW(cs.protocol.finalize(t + 10));
    EXPECT_EQ(cs.check.violations(), 0u);
  }
}

TEST(ProtocolChecker, DevicePreemptionToExpiredIsIllegalTransition) {
  // Mutation: the device tries to expire a RUNNING query (Work -> Expired).
  // Work is device-owned so ownership passes, but preemption is not a
  // protocol edge — eviction may only happen at completion detection.
  CheckedSync cs(1, 1, /*mirrored=*/true);
  double e = 0.0;
  cs.sync.host_write(0.0, 0, 0, SlotState::kWork, &e);
  const std::string report = violation_report(
      [&] { cs.sync.device_write(10.0, 0, 0, SlotState::kExpired, &e); },
      "illegal-transition");
  EXPECT_NE(report.find("Fig 5 permits"), std::string::npos) << report;
  EXPECT_EQ(cs.sync.peek(0, 0), SlotState::kWork)
      << "the illegal write must report before mutating the word";
}

TEST(ProtocolChecker, ExpiredToDoneIsIllegalTransition) {
  // Mutation: the host tries to "un-evict" (Expired -> Done). Expired is
  // host-owned so ownership passes; the edge itself is not in the matrix
  // (an evicted query's results never reach the collector as served).
  CheckedSync cs(1, 1, /*mirrored=*/true);
  double e = 0.0;
  cs.sync.host_write(0.0, 0, 0, SlotState::kWork, &e);
  cs.sync.device_write(10.0, 0, 0, SlotState::kFinish, &e);
  cs.sync.host_write(20.0, 0, 0, SlotState::kExpired, &e);
  const std::string report = violation_report(
      [&] { cs.sync.host_write(30.0, 0, 0, SlotState::kDone, &e); },
      "illegal-transition");
  EXPECT_NE(report.find("Fig 5 permits"), std::string::npos) << report;
  EXPECT_EQ(cs.sync.peek(0, 0), SlotState::kExpired);
}

TEST(ProtocolChecker, DeviceWriteOutOfExpiredIsRace) {
  // Mutation: Expired is host-owned (like Done, the host decides whether
  // the slot is reused or retired); a device Expired -> Work write is a
  // Fig 9 single-writer race even though the edge itself is legal.
  CheckedSync cs(1, 1, /*mirrored=*/true);
  double e = 0.0;
  cs.sync.host_write(0.0, 0, 0, SlotState::kWork, &e);
  cs.sync.device_write(10.0, 0, 0, SlotState::kFinish, &e);
  cs.sync.host_write(20.0, 0, 0, SlotState::kExpired, &e);
  const std::string report = violation_report(
      [&] { cs.sync.device_write(30.0, 0, 0, SlotState::kWork, &e); },
      "ownership");
  EXPECT_NE(report.find("Fig 9 ownership violation"), std::string::npos)
      << report;
  EXPECT_EQ(cs.sync.peek(0, 0), SlotState::kExpired);
  EXPECT_EQ(cs.check.violations(), 1u);
}

TEST(ProtocolChecker, MirroredPollCrossingChannelIsConservationViolation) {
  // Mutation: fake a buggy mirrored poll by issuing the channel transaction
  // a naive poll would. The next audited access flags the imbalance.
  CheckedSync cs(1, 1, /*mirrored=*/true);
  double e = 0.0;
  EXPECT_NO_THROW(cs.sync.host_read(0.0, 0, 0, &e));
  cs.ch.post(0.0, 4, sim::Xfer::kStatePoll);  // traffic the model forbids
  const std::string report = violation_report(
      [&] { cs.sync.host_read(10.0, 0, 0, &e); }, "channel-conservation");
  EXPECT_NE(report.find("mirrored-mode poll generated channel traffic"),
            std::string::npos)
      << report;
}

TEST(ProtocolChecker, DuplicateWriteThroughCaughtAtFinalize) {
  CheckedSync cs(1, 1, /*mirrored=*/true);
  double e = 0.0;
  cs.sync.host_write(0.0, 0, 0, SlotState::kWork, &e);
  cs.ch.post(0.0, 4, sim::Xfer::kStateWrite);  // write-through issued twice
  const std::string report = violation_report(
      [&] { cs.protocol.finalize(10.0); }, "channel-conservation");
  EXPECT_NE(report.find("issued more than once"), std::string::npos)
      << report;
}

TEST(ProtocolChecker, PrematureDrainReportsStuckWordsWithTraces) {
  // A drain while slot0.cta0 sits in Work (and cta1 never started) is the
  // deadlock signature; the report names every stuck word, its last writer,
  // and dumps its trace.
  CheckedSync cs(1, 2, /*mirrored=*/true);
  double e = 0.0;
  cs.sync.host_write(5.0, 0, 0, SlotState::kWork, &e);
  cs.protocol.expect_full_drain(true);
  const std::string report = violation_report(
      [&] { cs.protocol.on_drain(100.0); }, "deadlock");
  EXPECT_NE(report.find("never reached Quit"), std::string::npos) << report;
  EXPECT_NE(report.find("slot0.cta0: state=Work"), std::string::npos);
  EXPECT_NE(report.find("last written by host"), std::string::npos);
  EXPECT_NE(report.find("slot0.cta1: state=None"), std::string::npos);
  EXPECT_NE(report.find("host wrote Work"), std::string::npos)
      << "report must include the stuck word's trace:\n" << report;
}

TEST(ProtocolChecker, CleanDrainAfterFullRetirementPasses) {
  CheckedSync cs(1, 1, /*mirrored=*/true);
  double e = 0.0;
  cs.sync.host_write(0.0, 0, 0, SlotState::kQuit, &e);
  cs.protocol.expect_full_drain(true);
  EXPECT_NO_THROW(cs.protocol.on_drain(10.0));
  EXPECT_EQ(cs.check.violations(), 0u);
}

// ---------------- query_manager.hpp ----------------

TEST(QueryManager, FifoPopRespectsArrival) {
  QueryManager qm;
  qm.push({0, 10.0});
  qm.push({1, 20.0});
  EXPECT_FALSE(qm.pop_ready(5.0).has_value());
  const auto q = qm.pop_ready(15.0);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->query_index, 0u);
  EXPECT_DOUBLE_EQ(qm.next_arrival(), 20.0);
  EXPECT_EQ(qm.pending(), 1u);
}

TEST(QueryManager, RejectsDecreasingArrivals) {
  QueryManager qm;
  qm.push({0, 10.0});
  EXPECT_THROW(qm.push({1, 5.0}), std::invalid_argument);
}

TEST(QueryManager, CheckedArrivalOrderViolationCarriesTrace) {
  sim::SimCheck check;
  QueryManager qm(&check);
  qm.push({0, 10.0});
  const std::string report = violation_report(
      [&] { qm.push({1, 5.0}); }, "arrival-order");
  EXPECT_NE(report.find("arrivals must be nondecreasing"), std::string::npos)
      << report;
  EXPECT_NE(report.find("push q0 arrival=10ns"), std::string::npos)
      << "report must carry the queue's trace:\n" << report;
}

TEST(QueryManager, EmptyNextArrivalIsInfinite) {
  QueryManager qm;
  EXPECT_TRUE(std::isinf(qm.next_arrival()));
}

// ---------------- engine.hpp ----------------

TEST(VisitedClearWords, NonDivisibleWordCountPinned) {
  // num_base=1001 -> ceil(1001/64) = 16 bitmap words. Split across 4 CTAs
  // each clears ceil(16/4) = 4. The seed formula (16/4 + 1 = 5) charged a
  // phantom extra word whenever n_parallel divided the word count.
  EXPECT_EQ(visited_clear_words(1001, 4), 4u);
  // 17 words over 4 CTAs: the remainder word is charged (ceil, not floor).
  EXPECT_EQ(visited_clear_words(1025, 4), 5u);
  // Degenerate inputs stay sane.
  EXPECT_EQ(visited_clear_words(1, 1), 1u);
  EXPECT_EQ(visited_clear_words(64, 1), 1u);
  EXPECT_EQ(visited_clear_words(65, 1), 2u);
  EXPECT_EQ(visited_clear_words(1000, 0), 16u);  // n_parallel clamped to 1
}

TEST(VisitedClearWords, PerCtaSharesCoverWholeBitmap) {
  // The per-CTA share times the CTA count must cover every bitmap word and
  // never exceed it by more than one partial round of slack.
  for (std::size_t num_base : {63u, 64u, 65u, 1000u, 1001u, 4096u, 100000u}) {
    const std::size_t words = ceil_div(num_base, std::size_t{64});
    for (std::size_t n : {1u, 2u, 3u, 4u, 7u, 16u}) {
      const std::size_t share = visited_clear_words(num_base, n);
      EXPECT_GE(share * n, words) << num_base << "/" << n;
      EXPECT_LT((share - 1) * n, words) << num_base << "/" << n;
    }
  }
}

TEST(VisitedClearWords, ChargedCostMatchesFormula) {
  // The virtual nanoseconds a CTA pays at query start for its bitmap share.
  const sim::CostModel cm;
  const double charged = static_cast<double>(visited_clear_words(1001, 4)) *
                         cm.bitmap_clear_per_word_ns;
  EXPECT_DOUBLE_EQ(charged, 4.0 * cm.bitmap_clear_per_word_ns);
}

AlgasConfig tiny_engine_config() {
  AlgasConfig cfg;
  cfg.search.topk = 10;
  cfg.search.candidate_len = 64;
  cfg.search.beam_width = 2;
  cfg.search.offset_beam = 16;
  cfg.slots = 4;
  cfg.host_threads = 1;
  cfg.device = sim::DeviceProps::rtx_a6000();
  return cfg;
}

TEST(AlgasEngine, CompletesAllQueriesWithGoodRecall) {
  const auto& world = algas::testing::tiny_world();
  AlgasEngine engine(world.ds, world.nsw, tiny_engine_config());
  const auto rep = engine.run_closed_loop(100);
  EXPECT_EQ(rep.summary.queries, 100u);
  EXPECT_GT(rep.recall, 0.9);
  EXPECT_GT(rep.summary.throughput_qps, 0.0);
  EXPECT_GT(rep.summary.mean_service_us, 0.0);
  EXPECT_GT(rep.sim_events, 100u);
}

TEST(AlgasEngine, EveryQueryAnsweredExactlyOnce) {
  const auto& world = algas::testing::tiny_world();
  AlgasEngine engine(world.ds, world.nsw, tiny_engine_config());
  const auto rep = engine.run_closed_loop(60);
  std::set<std::size_t> seen;
  for (const auto& r : rep.collector.records()) {
    EXPECT_TRUE(seen.insert(r.query_index).second);
    EXPECT_GE(r.dispatch_ns, r.arrival_ns);
    EXPECT_GT(r.done_ns, r.dispatch_ns);
    EXPECT_FALSE(r.results.empty());
  }
  EXPECT_EQ(seen.size(), 60u);
}

TEST(AlgasEngine, DeterministicAcrossRuns) {
  const auto& world = algas::testing::tiny_world();
  AlgasEngine a(world.ds, world.nsw, tiny_engine_config());
  AlgasEngine b(world.ds, world.nsw, tiny_engine_config());
  const auto ra = a.run_closed_loop(40);
  const auto rb = b.run_closed_loop(40);
  EXPECT_DOUBLE_EQ(ra.summary.mean_service_us, rb.summary.mean_service_us);
  EXPECT_EQ(ra.sim_events, rb.sim_events);
  EXPECT_DOUBLE_EQ(ra.recall, rb.recall);
}

TEST(AlgasEngine, MirroringEliminatesPollTraffic) {
  const auto& world = algas::testing::tiny_world();
  auto cfg = tiny_engine_config();
  cfg.host_sync = HostSync::kPollMirrored;
  AlgasEngine mirrored(world.ds, world.nsw, cfg);
  cfg.host_sync = HostSync::kPollNaive;
  AlgasEngine naive(world.ds, world.nsw, cfg);
  const auto rm = mirrored.run_closed_loop(50);
  const auto rn = naive.run_closed_loop(50);
  // §V-A: local mirrors remove every cross-channel poll; write-throughs
  // remain in both modes.
  EXPECT_EQ(rm.pcie_state_poll_transactions, 0u);
  EXPECT_GT(rn.pcie_state_poll_transactions, 100u);
  EXPECT_GT(rm.pcie_state_write_transactions, 0u);
  // Cheaper polling lets the host react faster: service latency drops.
  EXPECT_LT(rm.summary.mean_service_us, rn.summary.mean_service_us);
  // Both deliver the same functional results.
  EXPECT_DOUBLE_EQ(rm.recall, rn.recall);
}

TEST(AlgasEngine, BlockingModeCompletesWithInterrupts) {
  const auto& world = algas::testing::tiny_world();
  auto cfg = tiny_engine_config();
  cfg.host_sync = HostSync::kBlocking;
  AlgasEngine engine(world.ds, world.nsw, cfg);
  const auto rep = engine.run_closed_loop(50);
  EXPECT_EQ(rep.summary.queries, 50u);
  EXPECT_GT(rep.recall, 0.9);
  // One completion interrupt per query, zero host poll traffic.
  EXPECT_EQ(rep.interrupts, 50u);
  EXPECT_EQ(rep.pcie_state_poll_transactions, 0u);
}

TEST(AlgasEngine, BlockingModeSlowerThanMirroredPolling) {
  // §V-A: "While using blocking mode can reduce PCIe I/O, its performance
  // is generally not as good as polling."
  const auto& world = algas::testing::tiny_world();
  auto cfg = tiny_engine_config();
  cfg.host_sync = HostSync::kPollMirrored;
  AlgasEngine polling(world.ds, world.nsw, cfg);
  cfg.host_sync = HostSync::kBlocking;
  AlgasEngine blocking(world.ds, world.nsw, cfg);
  const auto rp = polling.run_closed_loop(50);
  const auto rb = blocking.run_closed_loop(50);
  EXPECT_LT(rp.summary.mean_service_us, rb.summary.mean_service_us);
  // Blocking produces less channel traffic than even mirrored polling
  // (no write-throughs from the device side).
  EXPECT_LE(rb.pcie_state_transactions, rp.pcie_state_transactions);
  EXPECT_DOUBLE_EQ(rp.recall, rb.recall);  // functionally identical
}

TEST(AlgasEngine, BlockingModeOpenLoop) {
  const auto& world = algas::testing::tiny_world();
  auto cfg = tiny_engine_config();
  cfg.host_sync = HostSync::kBlocking;
  AlgasEngine engine(world.ds, world.nsw, cfg);
  std::vector<PendingQuery> arrivals;
  for (std::size_t i = 0; i < 20; ++i) {
    arrivals.push_back({i, static_cast<double>(i) * 100000.0});
  }
  const auto rep = engine.run(arrivals);
  EXPECT_EQ(rep.summary.queries, 20u);
  for (const auto& r : rep.collector.records()) {
    EXPECT_GE(r.dispatch_ns, r.arrival_ns);
  }
}

TEST(AlgasEngine, HostSyncNames) {
  EXPECT_STREQ(host_sync_name(HostSync::kPollNaive), "poll-naive");
  EXPECT_STREQ(host_sync_name(HostSync::kPollMirrored), "poll-mirrored");
  EXPECT_STREQ(host_sync_name(HostSync::kBlocking), "blocking");
}

TEST(AlgasEngine, MultipleHostThreadsStillComplete) {
  const auto& world = algas::testing::tiny_world();
  auto cfg = tiny_engine_config();
  cfg.slots = 8;
  cfg.host_threads = 4;
  AlgasEngine engine(world.ds, world.nsw, cfg);
  const auto rep = engine.run_closed_loop(64);
  EXPECT_EQ(rep.summary.queries, 64u);
  EXPECT_GT(rep.recall, 0.9);
}

TEST(AlgasEngine, OpenLoopRespectsArrivals) {
  const auto& world = algas::testing::tiny_world();
  AlgasEngine engine(world.ds, world.nsw, tiny_engine_config());
  std::vector<PendingQuery> arrivals;
  for (std::size_t i = 0; i < 20; ++i) {
    arrivals.push_back({i, static_cast<double>(i) * 50000.0});
  }
  const auto rep = engine.run(arrivals);
  EXPECT_EQ(rep.summary.queries, 20u);
  for (const auto& r : rep.collector.records()) {
    EXPECT_GE(r.dispatch_ns, r.arrival_ns);
  }
}

TEST(AlgasEngine, RejectsUntunableConfig) {
  const auto& world = algas::testing::tiny_world();
  auto cfg = tiny_engine_config();
  cfg.device = sim::DeviceProps::tiny_test_device();
  cfg.slots = 64;  // 64 > 16 resident blocks
  EXPECT_THROW(AlgasEngine(world.ds, world.nsw, cfg),
               std::invalid_argument);
}

TEST(AlgasEngine, UtilizationIsSane) {
  const auto& world = algas::testing::tiny_world();
  AlgasEngine engine(world.ds, world.nsw, tiny_engine_config());
  const auto rep = engine.run_closed_loop(80);
  EXPECT_GT(rep.gpu_utilization, 0.0);
  EXPECT_LE(rep.gpu_utilization, 1.0);
}

// ---------------- engine x SimCheck ----------------

TEST(AlgasEngine, CheckedRunIsCleanInEverySyncMode) {
  // The full engine, run under the complete verification stack: every slot
  // protocol, channel-conservation, drain, and budget invariant holds in
  // all three §V-A synchronization modes.
  const auto& world = algas::testing::tiny_world();
  for (HostSync mode : {HostSync::kPollNaive, HostSync::kPollMirrored,
                        HostSync::kBlocking}) {
    sim::SimCheck check;
    auto cfg = tiny_engine_config();
    cfg.host_sync = mode;
    cfg.checker = &check;
    AlgasEngine engine(world.ds, world.nsw, cfg);
    const auto rep = engine.run_closed_loop(40);
    EXPECT_EQ(rep.summary.queries, 40u) << host_sync_name(mode);
    EXPECT_GT(rep.simcheck_checks, 1000u)
        << host_sync_name(mode) << ": checker silently no-opped";
    EXPECT_EQ(check.violations(), 0u) << host_sync_name(mode);
    EXPECT_GT(check.events_traced(), 0u) << host_sync_name(mode);
  }
}

TEST(AlgasEngine, CheckerNeverPerturbsVirtualTime) {
  // SimCheck is a pure observer: checked and unchecked runs must agree on
  // every virtual-time quantity bit for bit, in every sync mode.
  const auto& world = algas::testing::tiny_world();
  for (HostSync mode : {HostSync::kPollNaive, HostSync::kPollMirrored,
                        HostSync::kBlocking}) {
    auto cfg = tiny_engine_config();
    cfg.host_sync = mode;
    AlgasEngine plain(world.ds, world.nsw, cfg);
    sim::SimCheck check;
    cfg.checker = &check;
    AlgasEngine checked(world.ds, world.nsw, cfg);
    const auto rp = plain.run_closed_loop(30);
    const auto rc = checked.run_closed_loop(30);
    EXPECT_DOUBLE_EQ(rp.summary.mean_service_us, rc.summary.mean_service_us)
        << host_sync_name(mode);
    EXPECT_DOUBLE_EQ(rp.summary.throughput_qps, rc.summary.throughput_qps)
        << host_sync_name(mode);
    EXPECT_EQ(rp.sim_events, rc.sim_events) << host_sync_name(mode);
    EXPECT_DOUBLE_EQ(rp.recall, rc.recall) << host_sync_name(mode);
    EXPECT_EQ(rp.pcie_transactions, rc.pcie_transactions)
        << host_sync_name(mode);
    // Under a default-on build the "plain" engine self-checks too; the
    // virtual-time equalities above are the real assertion either way.
    if (!sim::simcheck_default_enabled()) {
      EXPECT_EQ(rp.simcheck_checks, 0u);
    }
    EXPECT_GT(rc.simcheck_checks, 0u);
  }
}

TEST(AlgasEngine, OneCheckerAuditsManyRuns) {
  const auto& world = algas::testing::tiny_world();
  sim::SimCheck check;
  auto cfg = tiny_engine_config();
  cfg.checker = &check;
  AlgasEngine engine(world.ds, world.nsw, cfg);
  const auto r1 = engine.run_closed_loop(20);
  const auto r2 = engine.run_closed_loop(20);
  EXPECT_GT(r1.simcheck_checks, 0u);
  EXPECT_GT(r2.simcheck_checks, 0u);
  EXPECT_EQ(check.violations(), 0u);
  EXPECT_EQ(check.run_label(), std::string("algas:poll-mirrored"));
}

}  // namespace
}  // namespace algas::core
