#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "dataset/dataset.hpp"
#include "dataset/ground_truth.hpp"
#include "dataset/io.hpp"
#include "dataset/registry.hpp"
#include "dataset/synthetic.hpp"
#include "distance/distance.hpp"

namespace algas {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// ---------------- synthetic.hpp ----------------

TEST(Synthetic, ShapesMatchSpec) {
  SyntheticSpec spec;
  spec.num_base = 500;
  spec.num_queries = 40;
  spec.dim = 24;
  const Dataset ds = make_synthetic(spec);
  EXPECT_EQ(ds.num_base(), 500u);
  EXPECT_EQ(ds.num_queries(), 40u);
  EXPECT_EQ(ds.dim(), 24u);
  EXPECT_EQ(ds.base().size(), 500u * 24);
}

TEST(Synthetic, Deterministic) {
  SyntheticSpec spec;
  spec.num_base = 100;
  spec.dim = 8;
  const Dataset a = make_synthetic(spec);
  const Dataset b = make_synthetic(spec);
  EXPECT_EQ(a.base(), b.base());
  spec.seed += 1;
  const Dataset c = make_synthetic(spec);
  EXPECT_NE(a.base(), c.base());
}

TEST(Synthetic, CosineVectorsNormalized) {
  SyntheticSpec spec = glove_like_spec();
  spec.num_base = 200;
  spec.num_queries = 20;
  const Dataset ds = make_synthetic(spec);
  for (std::size_t i = 0; i < ds.num_base(); ++i) {
    EXPECT_NEAR(norm(ds.base_vector(i)), 1.0f, 1e-4f);
  }
  for (std::size_t i = 0; i < ds.num_queries(); ++i) {
    EXPECT_NEAR(norm(ds.query(i)), 1.0f, 1e-4f);
  }
}

TEST(Synthetic, TableIIISpecsMatchPaper) {
  EXPECT_EQ(sift_like_spec().dim, 128u);
  EXPECT_EQ(sift_like_spec().metric, Metric::kL2);
  EXPECT_EQ(gist_like_spec().dim, 960u);
  EXPECT_EQ(gist_like_spec().metric, Metric::kL2);
  EXPECT_EQ(glove_like_spec().dim, 200u);
  EXPECT_EQ(glove_like_spec().metric, Metric::kCosine);
  EXPECT_EQ(nytimes_like_spec().dim, 256u);
  EXPECT_EQ(nytimes_like_spec().metric, Metric::kCosine);
}

TEST(Synthetic, ClusteredIsNotUniform) {
  // Points drawn from a mixture must be denser near their centers than a
  // uniform draw: mean pairwise distance should be clearly below uniform's.
  SyntheticSpec spec;
  spec.num_base = 400;
  spec.dim = 16;
  spec.clusters = 8;
  spec.spread = 0.02;
  spec.background_fraction = 0.0;  // isolate the mixture's effect
  const Dataset ds = make_synthetic(spec);
  double within = 0.0;
  int pairs = 0;
  for (std::size_t i = 0; i + 1 < 100; ++i) {
    within += l2_sq(ds.base_vector(i), ds.base_vector(i + 1));
    ++pairs;
  }
  // Uniform in [0,1]^16 has expected pair distance^2 = 16/6 ~= 2.67.
  EXPECT_LT(within / pairs, 2.3);
}

// ---------------- ground_truth.hpp ----------------

TEST(GroundTruth, ExactOnTinyData) {
  Dataset ds("tiny", 2, Metric::kL2);
  // Base points on a line: 0, 1, 2, 3, 4 along x.
  for (float x : {0.0f, 1.0f, 2.0f, 3.0f, 4.0f}) {
    ds.mutable_base().push_back(x);
    ds.mutable_base().push_back(0.0f);
  }
  ds.mutable_queries() = {2.2f, 0.0f};
  compute_ground_truth(ds, 3);
  const auto gt = ds.ground_truth(0);
  EXPECT_EQ(gt[0], 2u);
  EXPECT_EQ(gt[1], 3u);
  EXPECT_EQ(gt[2], 1u);
}

TEST(GroundTruth, AscendingByDistance) {
  SyntheticSpec spec;
  spec.num_base = 300;
  spec.num_queries = 10;
  spec.dim = 8;
  Dataset ds = make_synthetic(spec);
  compute_ground_truth(ds, 10);
  for (std::size_t q = 0; q < ds.num_queries(); ++q) {
    const auto gt = ds.ground_truth(q);
    for (std::size_t i = 1; i < gt.size(); ++i) {
      EXPECT_LE(ds.query_distance(q, gt[i - 1]),
                ds.query_distance(q, gt[i]));
    }
  }
}

TEST(GroundTruth, KClampedToBaseSize) {
  SyntheticSpec spec;
  spec.num_base = 5;
  spec.num_queries = 2;
  spec.dim = 4;
  Dataset ds = make_synthetic(spec);
  compute_ground_truth(ds, 100);
  EXPECT_EQ(ds.gt_k(), 5u);
}

// ---------------- io.hpp ----------------

TEST(Io, FvecsRoundTrip) {
  const std::string path = temp_path("algas_test.fvecs");
  const std::vector<float> data{1.0f, 2.0f, 3.0f, 4.0f, 5.0f, 6.0f};
  write_fvecs(path, data, 3);
  std::size_t dim = 0;
  const auto read = read_fvecs(path, dim);
  EXPECT_EQ(dim, 3u);
  EXPECT_EQ(read, data);
  std::remove(path.c_str());
}

TEST(Io, IvecsRoundTrip) {
  const std::string path = temp_path("algas_test.ivecs");
  const std::vector<std::int32_t> data{9, 8, 7, 6};
  write_ivecs(path, data, 2);
  std::size_t dim = 0;
  const auto read = read_ivecs(path, dim);
  EXPECT_EQ(dim, 2u);
  EXPECT_EQ(read, data);
  std::remove(path.c_str());
}

TEST(Io, RejectsBadWrites) {
  EXPECT_THROW(write_fvecs(temp_path("x.fvecs"), {1.0f, 2.0f, 3.0f}, 2),
               std::invalid_argument);
  std::size_t dim = 0;
  EXPECT_THROW(read_fvecs("/nonexistent/nope.fvecs", dim),
               std::runtime_error);
}

TEST(Io, DatasetRoundTripWithGroundTruth) {
  SyntheticSpec spec;
  spec.num_base = 64;
  spec.num_queries = 8;
  spec.dim = 12;
  spec.metric = Metric::kCosine;
  spec.name = "roundtrip";
  Dataset ds = make_synthetic(spec);
  compute_ground_truth(ds, 5);

  const std::string path = temp_path("algas_test.abin");
  save_dataset(ds, path);
  const Dataset loaded = load_dataset(path);
  EXPECT_EQ(loaded.name(), "roundtrip");
  EXPECT_EQ(loaded.dim(), 12u);
  EXPECT_EQ(loaded.metric(), Metric::kCosine);
  EXPECT_EQ(loaded.base(), ds.base());
  EXPECT_EQ(loaded.queries(), ds.queries());
  EXPECT_EQ(loaded.gt_k(), 5u);
  EXPECT_EQ(loaded.ground_truth_flat(), ds.ground_truth_flat());
  std::remove(path.c_str());
}

TEST(Io, TexmexTripleLoads) {
  const std::string base_p = temp_path("algas_base.fvecs");
  const std::string query_p = temp_path("algas_query.fvecs");
  const std::string gt_p = temp_path("algas_gt.ivecs");
  // 4 base vectors in 2-d, 2 queries, gt depth 2.
  write_fvecs(base_p, {1.0f, 0.0f, 0.0f, 2.0f, 3.0f, 0.0f, 0.0f, 4.0f}, 2);
  write_fvecs(query_p, {1.1f, 0.0f, 0.0f, 3.9f}, 2);
  write_ivecs(gt_p, {0, 2, 3, 1}, 2);

  const Dataset ds =
      load_texmex("texmex-test", base_p, query_p, gt_p, Metric::kCosine);
  EXPECT_EQ(ds.num_base(), 4u);
  EXPECT_EQ(ds.num_queries(), 2u);
  EXPECT_EQ(ds.dim(), 2u);
  EXPECT_EQ(ds.gt_k(), 2u);
  EXPECT_EQ(ds.ground_truth(0)[0], 0u);
  EXPECT_EQ(ds.ground_truth(1)[0], 3u);
  // Cosine load normalizes.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(norm(ds.base_vector(i)), 1.0f, 1e-5f);
  }
  std::remove(base_p.c_str());
  std::remove(query_p.c_str());
  std::remove(gt_p.c_str());
}

TEST(Io, TexmexRejectsMismatch) {
  const std::string base_p = temp_path("algas_base2.fvecs");
  const std::string query_p = temp_path("algas_query2.fvecs");
  write_fvecs(base_p, {1.0f, 2.0f}, 2);
  write_fvecs(query_p, {1.0f, 2.0f, 3.0f}, 3);
  EXPECT_THROW(load_texmex("bad", base_p, query_p, "", Metric::kL2),
               std::runtime_error);
  std::remove(base_p.c_str());
  std::remove(query_p.c_str());
}

TEST(Io, TexmexGtOutOfRangeRejected) {
  const std::string base_p = temp_path("algas_base3.fvecs");
  const std::string query_p = temp_path("algas_query3.fvecs");
  const std::string gt_p = temp_path("algas_gt3.ivecs");
  write_fvecs(base_p, {1.0f, 0.0f}, 2);
  write_fvecs(query_p, {1.0f, 0.0f}, 2);
  write_ivecs(gt_p, {5}, 1);  // id 5 out of range for 1 base vector
  EXPECT_THROW(load_texmex("bad", base_p, query_p, gt_p, Metric::kL2),
               std::runtime_error);
  std::remove(base_p.c_str());
  std::remove(query_p.c_str());
  std::remove(gt_p.c_str());
}

TEST(Io, RejectsWrongMagic) {
  const std::string path = temp_path("algas_bad.abin");
  write_fvecs(path, {1.0f, 2.0f}, 2);
  EXPECT_THROW(load_dataset(path), std::runtime_error);
  std::remove(path.c_str());
}

// ---------------- registry.hpp ----------------

TEST(Registry, NamesAndUnknown) {
  const auto names = bench_dataset_names();
  ASSERT_EQ(names.size(), 4u);
  EXPECT_EQ(names[0], "sift");
  EXPECT_THROW(
      load_bench_dataset_sized("not-a-dataset", 10, 2, 1, false),
      std::invalid_argument);
}

TEST(Registry, SizedLoadWithoutCache) {
  const Dataset ds = load_bench_dataset_sized("nytimes", 300, 10, 8, false);
  EXPECT_EQ(ds.num_base(), 300u);
  EXPECT_EQ(ds.num_queries(), 10u);
  EXPECT_EQ(ds.dim(), 256u);
  EXPECT_EQ(ds.metric(), Metric::kCosine);
  EXPECT_EQ(ds.gt_k(), 8u);
}

TEST(Dataset, DescribeMentionsKeyFacts) {
  const Dataset ds = load_bench_dataset_sized("sift", 100, 4, 2, false);
  const std::string d = ds.describe();
  EXPECT_NE(d.find("n=100"), std::string::npos);
  EXPECT_NE(d.find("d=128"), std::string::npos);
  EXPECT_NE(d.find("L2"), std::string::npos);
}

// ---------------- streaming appends ----------------

/// Two-cluster toy rows so appended vectors are distinguishable.
Dataset two_part_ds(Metric metric, std::size_t head, std::size_t tail,
                    std::vector<float>* tail_rows) {
  SyntheticSpec spec;
  spec.name = "append";
  spec.num_base = head + tail;
  spec.num_queries = 4;
  spec.dim = 8;
  spec.metric = metric;
  spec.seed = 77;
  const Dataset full = make_synthetic(spec);
  tail_rows->assign(full.base().begin() +
                        static_cast<std::ptrdiff_t>(head * full.dim()),
                    full.base().end());
  Dataset ds(full.name(), full.dim(), full.metric());
  ds.mutable_queries() = full.queries();
  ds.append_base({full.base().data(), head * full.dim()});
  return ds;
}

TEST(DatasetAppend, ExtendsNormCacheBitIdentically) {
  // The norm cache must be extended per-row at append time (the exclusive
  // half of the insert epoch hand-off), never lazily rebuilt by a later
  // concurrent reader — and extension must equal a from-scratch build.
  std::vector<float> tail;
  Dataset ds = two_part_ds(Metric::kCosine, 60, 40, &tail);
  const auto before = ds.base_norms();  // built at the publish point
  ASSERT_EQ(before.size(), 60u);
  ds.append_base(tail);
  const auto after = ds.base_norms();
  ASSERT_EQ(after.size(), 100u);

  Dataset oneshot("oneshot", ds.dim(), ds.metric());
  std::vector<float> all(ds.base());
  oneshot.append_base(all);
  const auto reference = oneshot.base_norms();
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(after[i], reference[i]) << "norm " << i;
  }
}

TEST(DatasetAppend, ReencodesQuantizedStoreEagerly) {
  std::vector<float> tail;
  Dataset ds = two_part_ds(Metric::kL2, 50, 30, &tail);
  ds.set_storage(StorageCodec::kInt8);
  (void)ds.vector_store();  // encode the head
  ds.append_base(tail);
  // Scores over appended rows must match a dataset quantized in one shot.
  Dataset oneshot("oneshot", ds.dim(), ds.metric());
  std::vector<float> all(ds.base());
  oneshot.append_base(all);
  oneshot.set_storage(StorageCodec::kInt8);
  const auto q = ds.query(0);
  for (NodeId v = 0; v < 80; ++v) {
    EXPECT_EQ(ds.score(q, v), oneshot.score(q, v)) << "row " << v;
  }
}

TEST(DatasetAppend, DropsStaleGroundTruthAndValidatesShape) {
  std::vector<float> tail;
  Dataset ds = two_part_ds(Metric::kL2, 40, 20, &tail);
  compute_ground_truth(ds, 4);
  ASSERT_TRUE(ds.has_ground_truth());
  ds.append_base(tail);
  EXPECT_FALSE(ds.has_ground_truth());  // exact only for the old row set
  EXPECT_EQ(ds.num_base(), 60u);

  EXPECT_THROW(ds.append_base({tail.data(), 3}), std::invalid_argument);
  Dataset dimless;
  EXPECT_THROW(dimless.append_base(tail), std::invalid_argument);
}

}  // namespace
}  // namespace algas
