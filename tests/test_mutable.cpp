// MutableIndex: streaming insert/delete/compact under live queries.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <stdexcept>
#include <thread>

#include "core/mutable_index.hpp"
#include "dataset/ground_truth.hpp"
#include "dataset/synthetic.hpp"
#include "graph/builder.hpp"
#include "test_util.hpp"

namespace algas {
namespace {

using core::MutableIndex;
using core::MutationChecker;

Dataset small_ds(Metric metric = Metric::kL2, std::size_t n = 400) {
  SyntheticSpec spec;
  spec.name = metric == Metric::kL2 ? "mut-l2" : "mut-cos";
  spec.num_base = n;
  spec.num_queries = 30;
  spec.dim = 8;
  spec.metric = metric;
  spec.clusters = 8;
  spec.spread = 0.2;
  spec.seed = 99;
  return make_synthetic(spec);
}

BuildConfig small_cfg() {
  BuildConfig cfg;
  cfg.degree = 8;
  cfg.ef_construction = 24;
  cfg.insert_batch = 128;  // several batches over small_ds
  cfg.threads = 1;
  return cfg;
}

/// Empty dataset sharing `src`'s shape and queries — the streaming start.
Dataset empty_like(const Dataset& src) {
  Dataset ds(src.name(), src.dim(), src.metric());
  ds.mutable_queries() = src.queries();
  return ds;
}

core::AlgasConfig serve_cfg() {
  core::AlgasConfig cfg;
  cfg.search.topk = 10;
  cfg.search.candidate_len = 64;
  cfg.search.beam_width = 2;
  cfg.search.offset_beam = 16;
  cfg.slots = 4;
  cfg.host_threads = 1;
  return cfg;
}

void expect_same_graph(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.degree(), b.degree());
  EXPECT_EQ(a.entry_point(), b.entry_point());
  EXPECT_EQ(a.adjacency(), b.adjacency());
}

// ---------------- insert ----------------

TEST(MutableInsert, FromEmptyMatchesOfflineBuild) {
  const Dataset full = small_ds();
  const BuildConfig cfg = small_cfg();
  const Graph offline = build_graph(GraphKind::kNsw, full, cfg).graph;

  MutableIndex idx(empty_like(full), cfg);
  const auto rep = idx.insert(full.base());
  EXPECT_EQ(rep.inserted, full.num_base());
  EXPECT_GT(rep.batches, 1u);
  EXPECT_EQ(idx.published(), full.num_base());
  EXPECT_EQ(idx.pending(), 0u);
  expect_same_graph(idx.graph(), offline);
}

TEST(MutableInsert, ServingBetweenPhasesChangesNothing) {
  const Dataset full = small_ds();
  const BuildConfig cfg = small_cfg();

  MutableIndex plain(empty_like(full), cfg);
  plain.insert(full.base());

  // Same rows, but a serve() wedged between every batch's prepare (phase 1)
  // and apply (phase 2) — the live-query interleaving must never leak into
  // the published bytes.
  MutableIndex live(empty_like(full), cfg);
  live.stage(full.base());
  std::uint64_t last_epoch = live.epoch();
  while (live.pending() > 0) {
    core::StagedBatch batch = live.prepare_next();
    if (live.published() > 0) {
      const auto rep = live.serve(serve_cfg(), 8);
      EXPECT_EQ(rep.summary.queries, 8u);
    }
    live.apply(batch);
    EXPECT_EQ(live.epoch(), last_epoch + 1);
    last_epoch = live.epoch();
  }
  expect_same_graph(live.graph(), plain.graph());
}

TEST(MutableInsert, ThreadCountNeverChangesBytes) {
  const Dataset full = small_ds();
  BuildConfig cfg = small_cfg();
  MutableIndex serial(empty_like(full), cfg);
  serial.insert(full.base());
  cfg.threads = 4;
  MutableIndex parallel(empty_like(full), cfg);
  parallel.insert(full.base());
  expect_same_graph(serial.graph(), parallel.graph());
}

TEST(MutableInsert, AdoptedGraphExtends) {
  const Dataset full = small_ds();
  const BuildConfig cfg = small_cfg();
  const std::size_t head = 300;

  Dataset prefix = empty_like(full);
  prefix.append_base({full.base().data(), head * full.dim()});
  const Graph g = build_graph(GraphKind::kNsw, prefix, cfg).graph;

  MutableIndex idx(std::move(prefix), g, cfg);
  EXPECT_EQ(idx.published(), head);
  idx.insert({full.base().data() + head * full.dim(),
              (full.num_base() - head) * full.dim()});
  EXPECT_EQ(idx.published(), full.num_base());
  // Every appended row is linked and in range.
  for (NodeId v = static_cast<NodeId>(head); v < idx.graph().num_nodes();
       ++v) {
    EXPECT_GT(idx.graph().valid_degree(v), 0u);
    for (NodeId u : idx.graph().neighbors(v)) {
      if (u != kInvalidNode) EXPECT_LT(u, idx.graph().num_nodes());
    }
  }
}

TEST(MutableInsert, RejectsBadRowsAndStaleBatches) {
  const Dataset full = small_ds();
  MutableIndex idx(empty_like(full), small_cfg());
  EXPECT_THROW(idx.stage({full.base().data(), 3}), std::invalid_argument);

  idx.stage({full.base().data(), 256 * full.dim()});
  core::StagedBatch a = idx.prepare_next();
  core::StagedBatch b = idx.prepare_next();  // same rows: not yet applied
  EXPECT_EQ(a.first, b.first);
  idx.apply(a);
  EXPECT_THROW(idx.apply(b), std::logic_error);  // now stale
  EXPECT_THROW(idx.apply(a), std::logic_error);  // already applied
  while (idx.pending() > 0) {
    core::StagedBatch batch = idx.prepare_next();
    idx.apply(batch);
  }
}

// ---------------- delete ----------------

TEST(MutableDelete, TombstonedNodeLeavesResultsButRoutes) {
  const Dataset full = small_ds();
  MutableIndex idx(empty_like(full), small_cfg());
  idx.insert(full.base());

  const auto before = idx.serve(serve_cfg(), 10);
  ASSERT_FALSE(before.collector.records().empty());
  const auto& rec = before.collector.records().front();
  ASSERT_FALSE(rec.results.empty());
  const NodeId top = rec.results.front().id();

  EXPECT_TRUE(idx.remove(top));
  EXPECT_FALSE(idx.remove(top));  // already dead
  EXPECT_THROW(idx.remove(static_cast<NodeId>(idx.published())),
               std::out_of_range);
  EXPECT_EQ(idx.live(), idx.published() - 1);

  const auto after = idx.serve(serve_cfg(), 10);
  for (const auto& r : after.collector.records()) {
    EXPECT_EQ(r.results.size(), serve_cfg().search.topk);
    for (const auto& kv : r.results) EXPECT_NE(kv.id(), top);
  }
}

TEST(MutableDelete, NoTombstonesMeansIdenticalResults) {
  const Dataset full = small_ds();
  const BuildConfig bcfg = small_cfg();
  MutableIndex idx(empty_like(full), bcfg);
  idx.insert(full.base());

  // serve() wires the (empty) tombstone set into the engine; a plain engine
  // run without one must produce byte-identical result lists.
  core::AlgasEngine engine(idx.dataset(), idx.graph(), serve_cfg());
  const auto plain = engine.run_closed_loop(20);
  const auto served = idx.serve(serve_cfg(), 20);
  ASSERT_EQ(plain.collector.records().size(),
            served.collector.records().size());
  for (std::size_t i = 0; i < plain.collector.records().size(); ++i) {
    const auto& a = plain.collector.records()[i].results;
    const auto& b = served.collector.records()[i].results;
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t j = 0; j < a.size(); ++j) {
      EXPECT_EQ(a[j].key, b[j].key);
      EXPECT_EQ(a[j].dist, b[j].dist);
    }
  }
}

// ---------------- compact ----------------

TEST(MutableCompact, ReclaimsAndRemapsInOrder) {
  const Dataset full = small_ds();
  MutableIndex idx(empty_like(full), small_cfg());
  idx.insert(full.base());

  std::set<NodeId> dead;
  for (NodeId v = 7; v < 200; v += 13) {
    idx.remove(v);
    dead.insert(v);
  }
  const std::uint64_t epoch = idx.epoch();
  const auto rep = idx.compact();
  EXPECT_EQ(rep.dropped, dead.size());
  EXPECT_EQ(rep.survivors, full.num_base() - dead.size());
  EXPECT_EQ(idx.published(), rep.survivors);
  EXPECT_EQ(idx.live(), rep.survivors);
  EXPECT_TRUE(idx.tombstones().empty());
  EXPECT_EQ(idx.epoch(), epoch + 1);

  // Survivors keep their original vectors, in id order.
  std::size_t old_id = 0;
  for (NodeId v = 0; static_cast<std::size_t>(v) < rep.survivors; ++v) {
    while (dead.count(static_cast<NodeId>(old_id))) ++old_id;
    const auto now = idx.dataset().base_vector(v);
    const auto was = full.base_vector(old_id);
    for (std::size_t d = 0; d < now.size(); ++d) EXPECT_EQ(now[d], was[d]);
    ++old_id;
  }
  // And the graph references only surviving ids.
  for (NodeId v = 0; v < idx.graph().num_nodes(); ++v) {
    for (NodeId u : idx.graph().neighbors(v)) {
      if (u != kInvalidNode) EXPECT_LT(u, idx.graph().num_nodes());
    }
  }
  // Searches over the compacted index still find close neighbors.
  const auto served = idx.serve(serve_cfg(), 10);
  EXPECT_FALSE(served.collector.records().empty());

  // A second compact with nothing dead is a no-op.
  const auto again = idx.compact();
  EXPECT_EQ(again.dropped, 0u);
  EXPECT_EQ(idx.epoch(), epoch + 1);
}

TEST(MutableCompact, RefusesWithStagedRows) {
  const Dataset full = small_ds();
  MutableIndex idx(empty_like(full), small_cfg());
  idx.insert({full.base().data(), 300 * full.dim()});
  idx.remove(5);
  idx.stage({full.base().data() + 300 * full.dim(), 50 * full.dim()});
  EXPECT_THROW(idx.compact(), std::logic_error);
}

TEST(MutableChurn, FullLifecycleIsThreadCountInvariant) {
  const Dataset full = small_ds();
  auto churn = [&](std::size_t threads) {
    BuildConfig cfg = small_cfg();
    cfg.threads = threads;
    MutableIndex idx(empty_like(full), cfg);
    idx.insert({full.base().data(), 300 * full.dim()});
    for (NodeId v = 2; v < 290; v += 7) idx.remove(v);
    idx.insert({full.base().data() + 300 * full.dim(),
                (full.num_base() - 300) * full.dim()});
    idx.compact();
    return idx;
  };
  const MutableIndex a = churn(1);
  const MutableIndex b = churn(4);
  expect_same_graph(a.graph(), b.graph());
  EXPECT_EQ(a.dataset().base(), b.dataset().base());
}

// ---------------- snapshots ----------------

TEST(MutableSnapshot, RoundTripsGraphTombstonesEpoch) {
  const Dataset full = small_ds();
  MutableIndex idx(empty_like(full), small_cfg());
  idx.insert(full.base());
  idx.remove(3);
  idx.remove(111);
  const auto path =
      (std::filesystem::temp_directory_path() / "algas_mx.amx").string();
  idx.save(path);

  MutableIndex loaded = MutableIndex::load(path, idx.dataset(), small_cfg());
  expect_same_graph(loaded.graph(), idx.graph());
  EXPECT_EQ(loaded.epoch(), idx.epoch());
  EXPECT_EQ(loaded.tombstones().ids(), idx.tombstones().ids());
  EXPECT_EQ(loaded.live(), idx.live());
  std::remove(path.c_str());
}

TEST(MutableSnapshot, RejectsGarbageTruncationAndMismatch) {
  const Dataset full = small_ds();
  MutableIndex idx(empty_like(full), small_cfg());
  idx.insert(full.base());
  idx.remove(8);
  const auto dir = std::filesystem::temp_directory_path();
  const auto path = (dir / "algas_mx_ok.amx").string();
  idx.save(path);

  {
    const auto bad = (dir / "algas_mx_bad.amx").string();
    std::ofstream out(bad);
    out << "not a snapshot at all";
    out.close();
    EXPECT_THROW(MutableIndex::load(bad, idx.dataset(), small_cfg()),
                 std::runtime_error);
    std::remove(bad.c_str());
  }
  {
    // Truncate the valid snapshot mid-graph.
    std::ifstream in(path, std::ios::binary);
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    in.close();
    const auto cut = (dir / "algas_mx_cut.amx").string();
    std::ofstream out(cut, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
    out.close();
    EXPECT_THROW(MutableIndex::load(cut, idx.dataset(), small_cfg()),
                 std::runtime_error);
    // Trailing bytes after a complete snapshot are also an error.
    const auto fat = (dir / "algas_mx_fat.amx").string();
    std::ofstream out2(fat, std::ios::binary);
    out2.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out2 << "junk";
    out2.close();
    EXPECT_THROW(MutableIndex::load(fat, idx.dataset(), small_cfg()),
                 std::runtime_error);
    std::remove(cut.c_str());
    std::remove(fat.c_str());
  }
  {
    // The paired dataset must cover exactly the snapshot's nodes.
    Dataset shorter = empty_like(full);
    shorter.append_base({full.base().data(), 100 * full.dim()});
    EXPECT_THROW(MutableIndex::load(path, shorter, small_cfg()),
                 std::invalid_argument);
  }
  std::remove(path.c_str());
}

TEST(MutableSnapshot, RefusesWithStagedRows) {
  const Dataset full = small_ds();
  MutableIndex idx(empty_like(full), small_cfg());
  idx.insert({full.base().data(), 300 * full.dim()});
  idx.stage({full.base().data() + 300 * full.dim(), 10 * full.dim()});
  EXPECT_THROW(idx.save("/tmp/never_written.amx"), std::logic_error);
}

// ---------------- protocol ----------------

TEST(MutationCheckerRules, WritersAreExclusive) {
  MutationChecker c;
  c.reader_enter("r1");
  c.reader_enter("r2");  // readers may overlap
  EXPECT_THROW(c.writer_enter("w"), std::logic_error);
  c.reader_exit();
  c.reader_exit();
  c.writer_enter("w");
  EXPECT_THROW(c.writer_enter("w2"), std::logic_error);
  EXPECT_THROW(c.reader_enter("r"), std::logic_error);
  c.writer_exit();
  c.reader_enter("r");  // fine again
  c.reader_exit();
}

// The reader/reader overlap the protocol allows: phase-1 prepare on one
// thread while queries serve on another. Runs under TSan in CI; the cosine
// metric makes it exercise the base_norms cache that used to lazily build
// on first use.
TEST(MutableChurn, PrepareConcurrentWithServe) {
  const Dataset full = small_ds(Metric::kCosine, 500);
  BuildConfig cfg = small_cfg();
  cfg.insert_batch = 100;
  MutableIndex idx(empty_like(full), cfg);
  idx.insert({full.base().data(), 400 * full.dim()});
  idx.stage({full.base().data() + 400 * full.dim(), 100 * full.dim()});

  core::StagedBatch batch;
  std::thread preparer([&] { batch = idx.prepare_next(); });
  const auto rep = idx.serve(serve_cfg(), 20);
  preparer.join();
  EXPECT_EQ(rep.summary.queries, 20u);
  EXPECT_EQ(batch.count, 100u);
  idx.apply(batch);
  EXPECT_EQ(idx.published(), 500u);

  // Same bytes as the fully serial path.
  MutableIndex serial(empty_like(full), cfg);
  serial.insert({full.base().data(), 400 * full.dim()});
  serial.insert({full.base().data() + 400 * full.dim(), 100 * full.dim()});
  expect_same_graph(idx.graph(), serial.graph());
}

// ---------------- degenerate sizes ----------------

TEST(MutableEdges, EmptyAndSingleAndBelowDegree) {
  const Dataset full = small_ds();
  const BuildConfig cfg = small_cfg();

  MutableIndex idx(empty_like(full), cfg);
  EXPECT_EQ(idx.published(), 0u);
  EXPECT_EQ(idx.graph().entry_point(), kInvalidNode);
  const auto rep0 = idx.serve(serve_cfg(), 5);  // nothing published yet
  EXPECT_EQ(rep0.summary.queries, 0u);

  idx.insert({full.base().data(), full.dim()});  // n = 1
  EXPECT_EQ(idx.published(), 1u);
  EXPECT_EQ(idx.graph().entry_point(), 0u);
  const auto rep1 = idx.serve(serve_cfg(), 5);
  for (const auto& r : rep1.collector.records()) {
    ASSERT_EQ(r.results.size(), 1u);
    EXPECT_EQ(r.results[0].id(), 0u);
  }

  idx.insert({full.base().data() + full.dim(), 3 * full.dim()});  // n < degree
  EXPECT_EQ(idx.published(), 4u);
  const auto rep4 = idx.serve(serve_cfg(), 5);
  for (const auto& r : rep4.collector.records()) {
    EXPECT_EQ(r.results.size(), 4u);
  }
}

}  // namespace
}  // namespace algas
