// Property tests for the batched distance kernels (distance/kernels.hpp)
// and the generation-stamped VisitedTable epochs.
//
// The batched kernels promise BITWISE-identical results to per-point
// distance() calls, so every comparison here is on the float's bit pattern
// (EXPECT_EQ via bit_cast), never EXPECT_NEAR.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "dataset/dataset.hpp"
#include "distance/distance.hpp"
#include "distance/kernels.hpp"
#include "search/visited.hpp"

namespace algas {
namespace {

std::uint32_t bits(float x) { return std::bit_cast<std::uint32_t>(x); }

/// Deterministic base matrix of `n` rows x `dim`; row 0 is all-zero to
/// exercise the cosine zero-norm guard.
std::vector<float> make_base(std::size_t n, std::size_t dim,
                             std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> base(n * dim, 0.0f);
  for (std::size_t i = dim; i < base.size(); ++i) {
    base[i] = rng.next_gaussian();
  }
  return base;
}

std::vector<float> make_query(std::size_t dim, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> q(dim);
  for (auto& v : q) v = rng.next_gaussian();
  return q;
}

constexpr Metric kMetrics[] = {Metric::kL2, Metric::kInnerProduct,
                               Metric::kCosine};

// Sweep dims around every tail-handling boundary (odd sizes, powers of two,
// one off either side) and batch sizes across the 4-wide ILP groups.
constexpr std::size_t kDims[] = {1,  2,  3,  4,   5,   7,   8,   9,
                                 15, 16, 17, 31,  32,  33,  63,  64,
                                 65, 96, 127, 128, 129, 255, 256, 257};
constexpr std::size_t kBatchSizes[] = {0,  1,  2,  3,  4,   5,   7,  8,
                                       9,  15, 16, 17, 31,  32,  33, 63,
                                       64, 65, 127, 128, 129};

TEST(DistanceBatch, BitwiseMatchesScalarAcrossDimsMetricsAndBatches) {
  constexpr std::size_t kRows = 129;
  for (std::size_t dim : kDims) {
    const auto base = make_base(kRows, dim, /*seed=*/dim);
    const auto query = make_query(dim, /*seed=*/dim * 7919 + 1);
    for (Metric m : kMetrics) {
      for (std::size_t count : kBatchSizes) {
        // Random ids with natural duplicates; always include the zero row
        // and a forced duplicate pair when the batch is big enough.
        Rng rng(dim * 131 + count);
        std::vector<NodeId> ids(count);
        for (auto& id : ids) {
          id = static_cast<NodeId>(rng.next_below(kRows));
        }
        if (count >= 2) {
          ids[0] = 0;  // zero row: cosine guard
          ids[1] = ids[count - 1];  // explicit duplicate
        }
        std::vector<float> out(count, -1.0f);
        distance_batch(m, query, base.data(), dim, ids, out);
        for (std::size_t k = 0; k < count; ++k) {
          const std::span<const float> row{base.data() + ids[k] * dim, dim};
          EXPECT_EQ(bits(out[k]), bits(distance(m, query, row)))
              << "metric=" << metric_name(m) << " dim=" << dim
              << " count=" << count << " k=" << k << " id=" << ids[k];
        }
      }
    }
  }
}

TEST(DistanceBatch, RangeVariantBitwiseMatchesScalar) {
  constexpr std::size_t kRows = 129;
  for (std::size_t dim : {1u, 3u, 32u, 129u}) {
    const auto base = make_base(kRows, dim, /*seed=*/dim + 17);
    const auto query = make_query(dim, /*seed=*/dim + 18);
    for (Metric m : kMetrics) {
      // Ranges covering start, interior, tail, and the whole matrix.
      const std::size_t starts[] = {0, 1, 5, kRows - 1};
      const std::size_t counts[] = {0, 1, 4, 7, kRows};
      for (std::size_t first : starts) {
        for (std::size_t count : counts) {
          if (first + count > kRows) continue;
          std::vector<float> out(count, -1.0f);
          distance_batch_range(m, query, base.data(), dim, first, count, out);
          for (std::size_t k = 0; k < count; ++k) {
            const std::span<const float> row{base.data() + (first + k) * dim,
                                             dim};
            EXPECT_EQ(bits(out[k]), bits(distance(m, query, row)))
                << "metric=" << metric_name(m) << " dim=" << dim
                << " first=" << first << " count=" << count << " k=" << k;
          }
        }
      }
    }
  }
}

TEST(DistanceBatch, EmptySpansAreNoOps) {
  const auto base = make_base(4, 8, 3);
  const auto query = make_query(8, 4);
  distance_batch(Metric::kL2, query, base.data(), 8, {}, {});
  distance_batch_range(Metric::kCosine, query, base.data(), 8, 2, 0, {});
  // out larger than ids: only the first ids.size() entries are written.
  std::vector<float> out(3, -7.0f);
  std::vector<NodeId> one_id{2};
  distance_batch(Metric::kL2, query, base.data(), 8, one_id, out);
  EXPECT_EQ(out[1], -7.0f);
  EXPECT_EQ(out[2], -7.0f);
}

TEST(DistanceBatch, NormTableMatchesRecomputedCosine) {
  constexpr std::size_t kRows = 37;
  constexpr std::size_t kDim = 33;
  const auto base = make_base(kRows, kDim, 5);
  const auto query = make_query(kDim, 6);
  std::vector<float> norms(kRows);
  for (std::size_t i = 0; i < kRows; ++i) {
    norms[i] = norm({base.data() + i * kDim, kDim});
  }
  std::vector<NodeId> ids(kRows);
  for (std::size_t i = 0; i < kRows; ++i) ids[i] = static_cast<NodeId>(i);
  std::vector<float> with_table(kRows), without(kRows);
  distance_batch(Metric::kCosine, query, base.data(), kDim, ids, with_table,
                 norms);
  distance_batch(Metric::kCosine, query, base.data(), kDim, ids, without);
  for (std::size_t i = 0; i < kRows; ++i) {
    EXPECT_EQ(bits(with_table[i]), bits(without[i])) << "row " << i;
  }
}

TEST(DatasetBatch, MemberBatchBitwiseMatchesQueryDistance) {
  for (Metric m : kMetrics) {
    Dataset ds("t", 17, m);
    ds.mutable_base() = make_base(50, 17, 11);
    ds.mutable_queries() = make_query(17, 12);
    std::vector<NodeId> ids{0, 3, 3, 49, 7, 0};
    std::vector<float> out(ids.size());
    ds.distance_batch(ds.query(0), ids, out);
    for (std::size_t k = 0; k < ids.size(); ++k) {
      EXPECT_EQ(bits(out[k]), bits(ds.query_distance(0, ids[k])))
          << metric_name(m) << " k=" << k;
    }
  }
}

TEST(DatasetBatch, NormCacheInvalidatesOnMutableBase) {
  Dataset ds("t", 4, Metric::kCosine);
  ds.mutable_base() = {1.0f, 0.0f, 0.0f, 0.0f, 0.0f, 2.0f, 0.0f, 0.0f};
  EXPECT_EQ(bits(ds.base_norms()[1]), bits(2.0f));
  ds.mutable_base()[4] = 3.0f;  // row 1 becomes (3, 2, 0, 0)
  const auto norms = ds.base_norms();  // must have been recomputed
  EXPECT_EQ(bits(norms[1]), bits(norm(ds.base_vector(1))));
  std::vector<NodeId> ids{1};
  std::vector<float> out(1);
  ds.distance_batch(ds.base_vector(0), ids, out);
  EXPECT_EQ(bits(out[0]),
            bits(distance(Metric::kCosine, ds.base_vector(0),
                          ds.base_vector(1))));
}

// ---------------- VisitedTable epochs ----------------

TEST(VisitedEpochs, ClearStartsANewGenerationWithoutTouchingStamps) {
  search::VisitedTable vt(8);
  EXPECT_FALSE(vt.test_and_set(3));
  EXPECT_TRUE(vt.test_and_set(3));
  EXPECT_TRUE(vt.test(3));
  EXPECT_EQ(vt.visited_count(), 1u);
  EXPECT_EQ(vt.checks(), 2u);

  const auto gen_before = vt.generation();
  vt.clear();
  EXPECT_EQ(vt.generation(), gen_before + 1);
  EXPECT_EQ(vt.checks(), 0u);
  EXPECT_FALSE(vt.test(3));  // old stamp, new epoch
  EXPECT_EQ(vt.visited_count(), 0u);

  // Second generation behaves like a fresh table.
  EXPECT_FALSE(vt.test_and_set(3));
  EXPECT_FALSE(vt.test_and_set(5));
  EXPECT_TRUE(vt.test_and_set(5));
  EXPECT_EQ(vt.visited_count(), 2u);

  // Third generation: nodes from both prior epochs read unvisited.
  vt.clear();
  EXPECT_FALSE(vt.test(3));
  EXPECT_FALSE(vt.test(5));
  EXPECT_FALSE(vt.test_and_set(5));
}

TEST(VisitedEpochs, WraparoundForcesFullStampReset) {
  search::VisitedTable vt(4);
  EXPECT_FALSE(vt.test_and_set(2));  // stamped with generation 1

  // Drive the 16-bit generation all the way around. After 65535 clears the
  // counter would hit 0; the table must fully reset stamps and restart at
  // generation 1 without node 2's stale stamp reading as visited.
  const std::uint32_t kClears = 65535;
  for (std::uint32_t i = 0; i < kClears; ++i) vt.clear();
  EXPECT_EQ(vt.generation(), 1u);
  EXPECT_FALSE(vt.test(2));
  EXPECT_EQ(vt.visited_count(), 0u);
  EXPECT_FALSE(vt.test_and_set(2));
  EXPECT_TRUE(vt.test(2));
}

TEST(VisitedEpochs, GrowPreservesTheCurrentEpoch) {
  // Streaming inserts grow the table on every publish; the live epoch must
  // survive so mid-flight marks stay valid and the grow is O(new nodes).
  search::VisitedTable vt(4);
  vt.clear();
  vt.clear();  // generation 3
  vt.test_and_set(1);
  vt.test_and_set(3);
  vt.resize(10);
  EXPECT_EQ(vt.size(), 10u);
  EXPECT_EQ(vt.generation(), 3u);
  EXPECT_TRUE(vt.test(1));
  EXPECT_TRUE(vt.test(3));
  EXPECT_EQ(vt.visited_count(), 2u);
  // Appended nodes start unvisited in this and every later generation.
  for (std::size_t i = 4; i < 10; ++i) EXPECT_FALSE(vt.test(i));
  vt.clear();
  for (std::size_t i = 0; i < 10; ++i) EXPECT_FALSE(vt.test(i));
}

TEST(VisitedEpochs, ShrinkOrSameSizeResetsEverything) {
  // A shrink follows a compaction remap — the surviving prefix's stamps are
  // for the OLD ids, so the historical full-reset semantics stay.
  for (const std::size_t new_size : {3u, 4u}) {
    search::VisitedTable vt(4);
    vt.test_and_set(1);
    vt.clear();
    vt.clear();
    vt.resize(new_size);
    EXPECT_EQ(vt.size(), new_size);
    EXPECT_EQ(vt.generation(), 1u);
    EXPECT_EQ(vt.checks(), 0u);
    EXPECT_EQ(vt.visited_count(), 0u);
    for (std::size_t i = 0; i < new_size; ++i) EXPECT_FALSE(vt.test(i));
  }
}

TEST(VisitedEpochs, WraparoundStaysCorrectAcrossAGrow) {
  // Property: after any interleaving of clears and grows, a node marked in
  // a PRIOR epoch never reads visited, including across the 16-bit
  // generation wraparound. Node 2 is stamped just before the counter
  // wraps; the grown nodes' zero stamps must also survive the reset.
  search::VisitedTable vt(4);
  for (std::uint32_t i = 0; i < 65533; ++i) vt.clear();  // generation 65534
  vt.test_and_set(2);
  vt.resize(8);  // grow mid-epoch
  EXPECT_EQ(vt.generation(), 65534u);
  EXPECT_TRUE(vt.test(2));
  EXPECT_FALSE(vt.test(6));
  vt.clear();  // 65535
  vt.test_and_set(6);
  vt.clear();  // wraps: full stamp reset, back to generation 1
  EXPECT_EQ(vt.generation(), 1u);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_FALSE(vt.test(i));
  EXPECT_FALSE(vt.test_and_set(2));
  EXPECT_TRUE(vt.test(2));
}

}  // namespace
}  // namespace algas
