// SimTrace tests: schema-valid JSON, span nesting, state-transition
// legality, flow pairing, and — the load-bearing guarantee — that tracing
// on/off leaves virtual time, sim_events, and the per-query TSV content
// byte-identical across all three host-sync modes.
#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "baselines/ganns_engine.hpp"
#include "baselines/static_engine.hpp"
#include "core/engine.hpp"
#include "core/slot.hpp"
#include "metrics/collector.hpp"
#include "simgpu/channel.hpp"
#include "simgpu/trace.hpp"
#include "test_util.hpp"

namespace algas::sim {
namespace {

// ---------------- minimal JSON syntax validator ----------------
//
// A recursive-descent checker for the JSON grammar — enough to guarantee
// Perfetto's parser will not reject the file outright. CI additionally
// runs scripts/check_trace.py (python stdlib json) for schema checks.
class JsonValidator {
 public:
  explicit JsonValidator(const std::string& s) : s_(s) {}

  bool valid() {
    ws();
    if (!value()) return false;
    ws();
    return i_ == s_.size();
  }

 private:
  void ws() {
    while (i_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[i_]))) {
      ++i_;
    }
  }
  bool consume(char c) {
    if (i_ < s_.size() && s_[i_] == c) {
      ++i_;
      return true;
    }
    return false;
  }
  bool literal(const char* lit) {
    const std::size_t n = std::char_traits<char>::length(lit);
    if (s_.compare(i_, n, lit) != 0) return false;
    i_ += n;
    return true;
  }
  bool string_() {
    if (!consume('"')) return false;
    while (i_ < s_.size()) {
      const char c = s_[i_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (i_ >= s_.size()) return false;
        const char e = s_[i_++];
        if (e == 'u') {
          for (int k = 0; k < 4; ++k) {
            if (i_ >= s_.size() ||
                !std::isxdigit(static_cast<unsigned char>(s_[i_]))) {
              return false;
            }
            ++i_;
          }
        } else if (std::string("\"\\/bfnrt").find(e) == std::string::npos) {
          return false;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;
      }
    }
    return false;
  }
  bool number() {
    const std::size_t start = i_;
    if (i_ < s_.size() && s_[i_] == '-') ++i_;
    while (i_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[i_])) ||
            s_[i_] == '.' || s_[i_] == 'e' || s_[i_] == 'E' ||
            s_[i_] == '+' || s_[i_] == '-')) {
      ++i_;
    }
    return i_ > start;
  }
  bool object() {
    if (!consume('{')) return false;
    ws();
    if (consume('}')) return true;
    while (true) {
      ws();
      if (!string_()) return false;
      ws();
      if (!consume(':')) return false;
      ws();
      if (!value()) return false;
      ws();
      if (consume('}')) return true;
      if (!consume(',')) return false;
    }
  }
  bool array() {
    if (!consume('[')) return false;
    ws();
    if (consume(']')) return true;
    while (true) {
      ws();
      if (!value()) return false;
      ws();
      if (consume(']')) return true;
      if (!consume(',')) return false;
    }
  }
  bool value() {
    if (i_ >= s_.size()) return false;
    switch (s_[i_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string_();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  const std::string& s_;
  std::size_t i_ = 0;
};

std::string to_json(const Tracer& t) {
  std::ostringstream out;
  t.write_json(out);
  return out.str();
}

// ---------------- shared run helpers ----------------

core::AlgasConfig traced_engine_config(core::HostSync sync) {
  core::AlgasConfig cfg;
  cfg.search.topk = 10;
  cfg.search.candidate_len = 64;
  cfg.search.beam_width = 2;
  cfg.search.offset_beam = 16;
  cfg.slots = 4;
  cfg.host_threads = 2;
  cfg.host_sync = sync;
  return cfg;
}

/// Every per-query measurement, formatted bit-faithfully — the content the
/// bench TSVs derive from. Byte-equality here means TSV byte-equality.
std::string records_tsv(const metrics::Collector& c) {
  std::ostringstream out;
  out.precision(17);
  for (const auto& r : c.records()) {
    out << r.query_index << '\t' << r.slot << '\t' << r.arrival_ns << '\t'
        << r.dispatch_ns << '\t' << r.gpu_done_ns << '\t' << r.done_ns
        << '\t' << r.steps << '\t' << r.rounds << '\n';
  }
  return out.str();
}

core::SlotState parse_state(const std::string& s) {
  if (s == "None") return core::SlotState::kNone;
  if (s == "Work") return core::SlotState::kWork;
  if (s == "Finish") return core::SlotState::kFinish;
  if (s == "Done") return core::SlotState::kDone;
  if (s == "Quit") return core::SlotState::kQuit;
  ADD_FAILURE() << "unknown state name in trace: " << s;
  return core::SlotState::kNone;
}

// ---------------- Tracer unit behaviour ----------------

TEST(Tracer, LaneAndProcessRegistrationEmitsMetadata) {
  Tracer t;
  const int pid = t.begin_process("engine");
  const int a = t.lane(pid, "lane-a");
  const int b = t.lane(pid, "lane-b");
  EXPECT_NE(a, b);
  const int pid2 = t.begin_process("other");
  EXPECT_NE(pid, pid2);
  // Each begin_process/lane call emits name + sort_index metadata.
  EXPECT_EQ(t.events_recorded(), 8u);
  for (const auto& e : t.events()) {
    EXPECT_EQ(e.ph, TracePhase::kMetadata);
  }
}

TEST(Tracer, JsonIsSyntacticallyValid) {
  Tracer t;
  const int pid = t.begin_process("p \"quoted\"\n");
  const int tid = t.lane(pid, "lane\t1");
  TraceArgs args;
  args.add("str", "va\"lue");
  args.add("num", 1.5);
  args.add("count", std::uint64_t{7});
  t.complete(pid, tid, "span", 100.0, 50.0, std::move(args));
  t.instant(pid, tid, "mark", 120.0);
  t.counter(pid, "ctr", 130.0, 2.0);
  const std::uint64_t id = t.new_flow_id();
  t.flow_begin(pid, tid, "f", id, 100.0);
  t.flow_end(pid, tid, "f", id, 150.0);
  const std::string json = to_json(t);
  EXPECT_TRUE(JsonValidator(json).valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ns\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos);
}

TEST(Tracer, TimestampsSerializeAsFixedMicroseconds) {
  Tracer t;
  const int pid = t.begin_process("p");
  const int tid = t.lane(pid, "l");
  t.complete(pid, tid, "s", 1500.0, 250.0);  // 1.5us for 0.25us
  const std::string json = to_json(t);
  EXPECT_NE(json.find("\"ts\":1.500"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":0.250"), std::string::npos);
}

TEST(Tracer, SaveRejectsUnwritablePath) {
  Tracer t;
  t.begin_process("p");
  EXPECT_THROW(t.save("/nonexistent-dir/trace.json"), std::runtime_error);
}

TEST(Tracer, ClearResetsEverything) {
  Tracer t;
  const int pid = t.begin_process("p");
  t.counter(pid, "c", 0.0, 1.0);
  t.clear();
  EXPECT_EQ(t.events_recorded(), 0u);
  EXPECT_EQ(t.begin_process("again"), 1);
}

// ---------------- Channel + StateSync emission ----------------

TEST(ChannelTrace, DataPlaneTransfersEmitLinkSpansAndFlows) {
  const CostModel cm;
  Channel ch(cm);
  Tracer t;
  const int pid = t.begin_process("chan");
  const int tid = t.lane(pid, "pcie link");
  ch.set_tracer(&t, pid, tid);
  ch.post(0.0, 4096, Xfer::kBulk);       // data plane: span + flow pair
  ch.post(10.0, 4, Xfer::kStateWrite);   // control plane: counter only
  std::size_t spans = 0, begins = 0, ends = 0, counters = 0;
  for (const auto& e : t.events()) {
    if (e.ph == TracePhase::kComplete) ++spans;
    if (e.ph == TracePhase::kFlowBegin) ++begins;
    if (e.ph == TracePhase::kFlowEnd) ++ends;
    if (e.ph == TracePhase::kCounter) ++counters;
  }
  EXPECT_EQ(spans, 1u);
  EXPECT_EQ(begins, 1u);
  EXPECT_EQ(ends, 1u);
  EXPECT_EQ(counters, 2u);  // one cumulative-bytes sample per post
}

TEST(ChannelTrace, TracingDoesNotChangeCosts) {
  const CostModel cm;
  Channel plain(cm);
  Channel traced(cm);
  Tracer t;
  const int pid = t.begin_process("chan");
  traced.set_tracer(&t, pid, t.lane(pid, "link"));
  for (int i = 0; i < 8; ++i) {
    const double at = 100.0 * i;
    EXPECT_DOUBLE_EQ(plain.post(at, 4096, Xfer::kBulk),
                     traced.post(at, 4096, Xfer::kBulk));
    EXPECT_DOUBLE_EQ(plain.transfer(at, 4, Xfer::kStatePoll),
                     traced.transfer(at, 4, Xfer::kStatePoll));
  }
  EXPECT_EQ(plain.total().bytes, traced.total().bytes);
  EXPECT_DOUBLE_EQ(plain.utilization(1000.0), traced.utilization(1000.0));
}

// ---------------- traced ALGAS runs ----------------

struct TracedRun {
  Tracer tracer;
  core::EngineReport report;
};

TracedRun traced_algas_run(core::HostSync sync, std::size_t queries = 40) {
  const auto& world = algas::testing::tiny_world();
  TracedRun out;
  auto cfg = traced_engine_config(sync);
  cfg.tracer = &out.tracer;
  core::AlgasEngine engine(world.ds, world.nsw, cfg);
  out.report = engine.run_closed_loop(queries);
  return out;
}

TEST(EngineTrace, TracedRunRecordsAllEventKinds) {
  const auto run = traced_algas_run(core::HostSync::kPollMirrored);
  EXPECT_GT(run.report.trace_events, 0u);
  EXPECT_EQ(run.report.trace_events, run.tracer.events_recorded());
  bool has_span = false, has_instant = false, has_counter = false,
       has_flow = false;
  for (const auto& e : run.tracer.events()) {
    has_span |= e.ph == TracePhase::kComplete;
    has_instant |= e.ph == TracePhase::kInstant;
    has_counter |= e.ph == TracePhase::kCounter;
    has_flow |= e.ph == TracePhase::kFlowBegin;
  }
  EXPECT_TRUE(has_span);
  EXPECT_TRUE(has_instant);
  EXPECT_TRUE(has_counter);
  EXPECT_TRUE(has_flow);
  const std::string json = to_json(run.tracer);
  EXPECT_TRUE(JsonValidator(json).valid());
}

TEST(EngineTrace, StateInstantsAreLegalFig5Transitions) {
  const auto run = traced_algas_run(core::HostSync::kPollMirrored);
  std::size_t seen = 0;
  for (const auto& e : run.tracer.events()) {
    if (e.ph != TracePhase::kInstant || e.cat != "state") continue;
    ++seen;
    const auto arrow = e.name.find("->");
    ASSERT_NE(arrow, std::string::npos) << e.name;
    const auto from = parse_state(e.name.substr(0, arrow));
    const auto to = parse_state(e.name.substr(arrow + 2));
    EXPECT_TRUE(core::is_legal_transition(from, to)) << e.name;
  }
  // Every query drives each CTA state word through Work/Finish/Done, plus
  // the final Quit round: state instants must be plentiful.
  EXPECT_GT(seen, 100u);
}

TEST(EngineTrace, SpansNestWithinEachLane) {
  const auto run = traced_algas_run(core::HostSync::kPollMirrored);
  // Group complete-spans per lane; within a lane spans must be properly
  // nested (the DES actors are serial: a lane never partially overlaps).
  std::map<std::pair<int, int>, std::vector<std::pair<double, double>>> lanes;
  for (const auto& e : run.tracer.events()) {
    if (e.ph != TracePhase::kComplete) continue;
    EXPECT_GE(e.dur_ns, 0.0);
    lanes[{e.pid, e.tid}].emplace_back(e.ts_ns, e.ts_ns + e.dur_ns);
  }
  EXPECT_GT(lanes.size(), 1u);
  constexpr double kEps = 1e-6;
  for (auto& [lane, spans] : lanes) {
    std::sort(spans.begin(), spans.end(),
              [](const auto& a, const auto& b) {
                return a.first != b.first ? a.first < b.first
                                          : a.second > b.second;
              });
    std::vector<double> open;  // stack of enclosing span ends
    for (const auto& [start, end] : spans) {
      while (!open.empty() && open.back() <= start + kEps) open.pop_back();
      if (!open.empty()) {
        EXPECT_LE(end, open.back() + kEps)
            << "partial overlap in lane (" << lane.first << ","
            << lane.second << ")";
      }
      open.push_back(end);
    }
  }
}

TEST(EngineTrace, FlowArrowsPairUp) {
  const auto run = traced_algas_run(core::HostSync::kPollMirrored);
  std::map<std::uint64_t, int> balance;
  for (const auto& e : run.tracer.events()) {
    if (e.ph == TracePhase::kFlowBegin) ++balance[e.flow_id];
    if (e.ph == TracePhase::kFlowEnd) --balance[e.flow_id];
  }
  EXPECT_FALSE(balance.empty());
  for (const auto& [id, b] : balance) {
    EXPECT_EQ(b, 0) << "unpaired flow id " << id;
  }
}

TEST(EngineTrace, DeterministicAcrossIdenticalRuns) {
  const auto a = traced_algas_run(core::HostSync::kPollMirrored);
  const auto b = traced_algas_run(core::HostSync::kPollMirrored);
  EXPECT_EQ(to_json(a.tracer), to_json(b.tracer));
}

TEST(EngineTrace, TracingPreservesVirtualTimeAndTsvAllSyncModes) {
  const auto& world = algas::testing::tiny_world();
  for (core::HostSync sync :
       {core::HostSync::kPollMirrored, core::HostSync::kPollNaive,
        core::HostSync::kBlocking}) {
    auto cfg = traced_engine_config(sync);
    core::AlgasEngine plain(world.ds, world.nsw, cfg);
    const auto rp = plain.run_closed_loop(40);

    Tracer tracer;
    cfg.tracer = &tracer;
    core::AlgasEngine traced(world.ds, world.nsw, cfg);
    const auto rt = traced.run_closed_loop(40);

    const char* mode = core::host_sync_name(sync);
    EXPECT_EQ(rp.sim_events, rt.sim_events) << mode;
    EXPECT_EQ(rp.pcie_transactions, rt.pcie_transactions) << mode;
    EXPECT_EQ(rp.pcie_bytes, rt.pcie_bytes) << mode;
    EXPECT_EQ(rp.host_polls, rt.host_polls) << mode;
    EXPECT_EQ(rp.summary.span_ns, rt.summary.span_ns) << mode;
    EXPECT_EQ(rp.summary.mean_service_us, rt.summary.mean_service_us)
        << mode;
    EXPECT_EQ(rp.summary.p99_latency_us, rt.summary.p99_latency_us) << mode;
    EXPECT_EQ(records_tsv(rp.collector), records_tsv(rt.collector)) << mode;
    EXPECT_EQ(rp.trace_events, 0u);
    EXPECT_GT(rt.trace_events, 0u) << mode;
  }
}

// Tracing and SimCheck must stay pure observers under every storage codec:
// a traced+checked run produces the same virtual time, PCIe accounting,
// and per-query TSV as a bare run of the same quantized dataset, and the
// trace itself is deterministic. Quantized runs are labeled with the codec
// suffix; the f32 label keeps its historical spelling.
TEST(EngineTrace, TracedCheckedRunsByteIdenticalPerStorageCodec) {
  const auto& world = algas::testing::tiny_world();
  for (StorageCodec codec : {StorageCodec::kF32, StorageCodec::kF16,
                             StorageCodec::kInt8}) {
    Dataset ds = world.ds;  // copy: the shared fixture must stay f32
    ds.set_storage(codec);
    auto cfg = traced_engine_config(core::HostSync::kPollMirrored);
    core::AlgasEngine plain(ds, world.nsw, cfg);
    const auto rp = plain.run_closed_loop(40);

    auto run_traced_checked = [&] {
      TracedRun out;
      auto tcfg = traced_engine_config(core::HostSync::kPollMirrored);
      tcfg.tracer = &out.tracer;
      SimCheck checker;
      tcfg.checker = &checker;
      core::AlgasEngine engine(ds, world.nsw, tcfg);
      out.report = engine.run_closed_loop(40);
      EXPECT_EQ(checker.run_label(),
                codec == StorageCodec::kF32
                    ? std::string("algas:poll-mirrored")
                    : std::string("algas:poll-mirrored:") +
                          storage_codec_name(codec));
      return out;
    };
    const auto rt = run_traced_checked();
    const auto rt2 = run_traced_checked();

    const char* name = storage_codec_name(codec);
    // (No assertion that the plain run is unchecked: ALGAS_SIMCHECK
    // builds check every run by default, and checking is free anyway.)
    EXPECT_GT(rt.report.simcheck_checks, 0u) << name;
    EXPECT_EQ(rp.sim_events, rt.report.sim_events) << name;
    EXPECT_EQ(rp.pcie_transactions, rt.report.pcie_transactions) << name;
    EXPECT_EQ(rp.pcie_bytes, rt.report.pcie_bytes) << name;
    EXPECT_EQ(rp.summary.span_ns, rt.report.summary.span_ns) << name;
    EXPECT_EQ(records_tsv(rp.collector), records_tsv(rt.report.collector))
        << name;
    // Same codec, same run: the trace JSON is byte-identical.
    EXPECT_EQ(to_json(rt.tracer), to_json(rt2.tracer)) << name;
  }
}

// Narrower rows move fewer PCIe bytes for the same query stream — the
// storage codec must show up in the modeled transfer sizes.
TEST(EngineTrace, QuantizedRunsMoveFewerModeledBytes) {
  const auto& world = algas::testing::tiny_world();
  std::map<StorageCodec, std::uint64_t> bytes;
  for (StorageCodec codec : {StorageCodec::kF32, StorageCodec::kF16,
                             StorageCodec::kInt8}) {
    Dataset ds = world.ds;
    ds.set_storage(codec);
    auto cfg = traced_engine_config(core::HostSync::kPollMirrored);
    core::AlgasEngine engine(ds, world.nsw, cfg);
    bytes[codec] = engine.run_closed_loop(40).pcie_bytes;
  }
  EXPECT_LT(bytes[StorageCodec::kF16], bytes[StorageCodec::kF32]);
  EXPECT_LT(bytes[StorageCodec::kInt8], bytes[StorageCodec::kF16]);
}

// ---------------- traced baselines ----------------

TEST(BaselineTrace, StaticBatchShowsTheFig4Bubble) {
  const auto& world = algas::testing::tiny_world();
  baselines::StaticConfig cfg;
  cfg.search.topk = 10;
  cfg.search.candidate_len = 64;
  cfg.batch_size = 8;
  cfg.n_parallel = 2;
  Tracer tracer;
  cfg.tracer = &tracer;
  baselines::StaticBatchEngine engine(world.ds, world.cagra, cfg);
  const auto rep = engine.run_closed_loop(32);
  EXPECT_EQ(rep.trace_events, tracer.events_recorded());
  std::size_t bubbles = 0, query_spans = 0, batch_spans = 0;
  for (const auto& e : tracer.events()) {
    if (e.ph != TracePhase::kComplete) continue;
    if (e.cat == "bubble") {
      ++bubbles;
      EXPECT_GT(e.dur_ns, 0.0);
    }
    if (e.cat == "cta") ++query_spans;
    if (e.cat == "batch") ++batch_spans;
  }
  // All but each batch's slowest query wait at the barrier: with 8-query
  // batches the majority of queries must show a bubble span.
  EXPECT_GT(bubbles, 32u / 2);
  EXPECT_EQ(query_spans, 32u);
  EXPECT_EQ(batch_spans, 32u / 8);
  EXPECT_TRUE(JsonValidator(to_json(tracer)).valid());
}

TEST(BaselineTrace, AlgasSlotLanesHaveNoBubbleSpans) {
  const auto run = traced_algas_run(core::HostSync::kPollMirrored);
  for (const auto& e : run.tracer.events()) {
    EXPECT_NE(e.cat, "bubble");
  }
}

TEST(BaselineTrace, TracedAndUntracedStaticRunsAgree) {
  const auto& world = algas::testing::tiny_world();
  baselines::StaticConfig cfg;
  cfg.search.topk = 10;
  cfg.search.candidate_len = 64;
  cfg.batch_size = 8;
  cfg.n_parallel = 2;
  baselines::StaticBatchEngine plain(world.ds, world.cagra, cfg);
  const auto rp = plain.run_closed_loop(32);
  Tracer tracer;
  cfg.tracer = &tracer;
  baselines::StaticBatchEngine traced(world.ds, world.cagra, cfg);
  const auto rt = traced.run_closed_loop(32);
  EXPECT_EQ(rp.pcie_transactions, rt.pcie_transactions);
  EXPECT_EQ(rp.pcie_bytes, rt.pcie_bytes);
  EXPECT_EQ(rp.summary.span_ns, rt.summary.span_ns);
  EXPECT_EQ(records_tsv(rp.collector), records_tsv(rt.collector));
}

TEST(BaselineTrace, GannsEngineTracesUnderItsOwnLabel) {
  const auto& world = algas::testing::tiny_world();
  baselines::GannsConfig cfg;
  cfg.search.topk = 10;
  cfg.search.candidate_len = 64;
  cfg.batch_size = 8;
  Tracer tracer;
  cfg.tracer = &tracer;
  baselines::GannsEngine engine(world.ds, world.nsw, cfg);
  const auto rep = engine.run_closed_loop(16);
  EXPECT_EQ(rep.summary.queries, 16u);
  EXPECT_GT(rep.trace_events, 0u);
  EXPECT_NE(to_json(tracer).find("\"name\":\"ganns\""), std::string::npos);
}

// Two engines into one tracer: separate process groups, shared file — the
// side-by-side comparison the acceptance criterion asks for.
TEST(BaselineTrace, DynamicAndStaticShareOneTraceFile) {
  const auto& world = algas::testing::tiny_world();
  Tracer tracer;

  auto acfg = traced_engine_config(core::HostSync::kPollMirrored);
  acfg.tracer = &tracer;
  core::AlgasEngine dynamic(world.ds, world.nsw, acfg);
  dynamic.run_closed_loop(24);

  baselines::StaticConfig scfg;
  scfg.search.topk = 10;
  scfg.search.candidate_len = 64;
  scfg.batch_size = 8;
  scfg.n_parallel = 2;
  scfg.tracer = &tracer;
  baselines::StaticBatchEngine static_engine(world.ds, world.nsw, scfg);
  static_engine.run_closed_loop(24);

  std::vector<int> pids;
  for (const auto& e : tracer.events()) {
    if (e.ph == TracePhase::kMetadata && e.name == "process_name") {
      pids.push_back(e.pid);
    }
  }
  ASSERT_EQ(pids.size(), 2u);
  EXPECT_NE(pids[0], pids[1]);
  const std::string json = to_json(tracer);
  EXPECT_TRUE(JsonValidator(json).valid());
  EXPECT_NE(json.find("algas:poll-mirrored"), std::string::npos);
  EXPECT_NE(json.find("static-batch"), std::string::npos);
}

}  // namespace
}  // namespace algas::sim
