// Fig 4 — "Static Batching vs Dynamic Batching", reproduced as measured
// timeline data instead of an illustration: for the same 64-query workload
// (batch/slot count 8), one row per query with its slot (or batch), service
// start and end in virtual microseconds. Rendering rows as a Gantt chart
// gives exactly the paper's picture — static batching leaves idle "bubble"
// space at every batch boundary; dynamic slots repack it.
#include <iostream>

#include "baselines/static_engine.hpp"
#include "bench_common.hpp"
#include "core/engine.hpp"

using namespace algas;

int main() {
  bench::print_header("fig4_timeline",
                      "Fig 4: measured slot-occupancy timeline, "
                      "static vs dynamic batching");

  metrics::TsvTable table({"mode", "query", "lane", "start_us", "end_us",
                           "service_us"});

  const std::string name = bench::selected_datasets().front();
  const Dataset& ds = bench::dataset(name);
  const Graph& g = bench::graph(name, GraphKind::kCagra);
  const std::size_t nq = std::min<std::size_t>(64, ds.num_queries());
  metrics::print_meta(std::cout, "dataset", ds.describe());

  constexpr std::size_t kLanes = 8;
  constexpr std::size_t kList = 128;

  {
    core::AlgasEngine engine(ds, g, bench::algas_config(kLanes, kList));
    const auto rep = engine.run_closed_loop(nq);
    for (const auto& r : rep.collector.records()) {
      table.row()
          .cell(std::string("dynamic"))
          .cell(r.query_index)
          .cell(r.slot)
          .cell(r.dispatch_ns / 1000.0, 1)
          .cell(r.done_ns / 1000.0, 1)
          .cell(r.service_ns() / 1000.0, 1);
    }
  }
  {
    baselines::StaticConfig cfg;
    cfg.search.candidate_len = kList;
    cfg.batch_size = kLanes;
    cfg.n_parallel = 4;
    baselines::StaticBatchEngine engine(ds, g, cfg);
    const auto rep = engine.run_closed_loop(nq);
    for (const auto& r : rep.collector.records()) {
      table.row()
          .cell(std::string("static"))
          .cell(r.query_index)
          .cell(r.slot)
          .cell(r.dispatch_ns / 1000.0, 1)
          .cell(r.done_ns / 1000.0, 1)
          .cell(r.service_ns() / 1000.0, 1);
    }
  }

  std::cout << "# expected: dynamic rows in the same lane tile densely; "
               "static rows share batch boundaries (bubbles)\n";
  table.print(std::cout);
  return 0;
}
