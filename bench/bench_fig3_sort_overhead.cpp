// Fig 3 — percentage of intra-CTA search time spent on distance
// calculation vs candidate-list sorting (greedy extend). The paper reports
// sorting at 19.9%-33.9%.
#include <iostream>

#include "bench_common.hpp"
#include "search/greedy.hpp"

using namespace algas;

int main() {
  bench::print_header("fig3_sort_overhead",
                      "Fig 3: calculation vs sorting time split");

  metrics::TsvTable table({"dataset", "calc_pct", "sort_pct", "other_pct"});

  const sim::CostModel cm;
  for (const auto& name : bench::selected_datasets()) {
    const Dataset& ds = bench::dataset(name);
    const Graph& g = bench::graph(name, GraphKind::kNsw);
    const std::size_t nq = bench::query_budget(ds, 300);

    search::SearchConfig cfg;
    cfg.topk = 16;
    // Candidate lists sized for comparable recall: high-dimensional
    // datasets need wider lists, which also raises their sorting share.
    cfg.candidate_len = ds.dim() >= 512 ? 256 : 128;

    search::StepCost total;
    for (std::size_t q = 0; q < nq; ++q) {
      const auto res = search::greedy_search(ds, g, cm, cfg, ds.query(q));
      total += res.stats.cost;
    }
    const double sum = total.total_ns();
    table.row()
        .cell(name)
        .cell(100.0 * total.compute_ns / sum, 1)
        .cell(100.0 * total.sort_ns / sum, 1)
        .cell(100.0 * (total.select_ns + total.gather_ns) / sum, 1);
  }

  std::cout << "# paper claim: sorting overhead 19.9%-33.9%\n";
  table.print(std::cout);
  return 0;
}
