// Host wall-clock performance harness (not a paper figure).
//
// Every other bench reports *virtual* time from the cost model; this one
// measures how fast the functional hot path actually executes on the build
// machine, so perf PRs carry a real before/after trajectory. Four sections:
//
//   scalar    per-call distance() loop — control; the per-eval cost of the
//             unbatched kernel entry.
//   bulk      brute_force_topk() scans — the batched gather/score path.
//   search    greedy graph searches — gather-then-score + visited table.
//   engine    AlgasEngine closed loop on the Fig 10/11 configuration
//             (batch 16, TopK 16, L 128, 4 CTAs, beam extend) — end-to-end
//             queries/s and DES events/s.
//   construction  deterministic batched NSW build on a capped corpus —
//             insertions/s at threads=1 (gated) plus the parallel speedup
//             at the default thread count (informational; CI machines have
//             unpredictable core counts).
//
// Prints a TSV block (like every bench) and writes a JSON summary to
// ALGAS_WALLTIME_OUT (default "BENCH_walltime.json") for CI regression
// checks (scripts/check_walltime.py).
#include <chrono>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>

#include "bench_common.hpp"
#include "common/env.hpp"
#include "core/engine.hpp"
#include "dataset/ground_truth.hpp"
#include "dataset/registry.hpp"
#include "distance/distance.hpp"
#include "metrics/table.hpp"
#include "search/greedy.hpp"

using namespace algas;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  const auto dt = std::chrono::steady_clock::now() - t0;
  return std::chrono::duration<double>(dt).count();
}

struct Section {
  std::string name;
  double evals_per_s = 0.0;    // distance evaluations per second (0 = n/a)
  double queries_per_s = 0.0;  // queries per second (0 = n/a)
  double wall_s = 0.0;
};

}  // namespace

int main() {
  bench::print_header("walltime",
                      "host wall-clock throughput of the functional hot path "
                      "(not a paper figure; virtual time is unaffected)");

  const std::string ds_name = bench::selected_datasets().front();
  const Dataset& ds = bench::dataset(ds_name);
  const Graph& g = bench::graph(ds_name, GraphKind::kCagra);
  const std::size_t n = ds.num_base();

  std::vector<Section> sections;

  // --- scalar control: one distance() call per point --------------------
  {
    const std::size_t nq = std::min<std::size_t>(
        bench::query_budget(ds, 8), std::max<std::size_t>(1, ds.num_queries()));
    const auto t0 = std::chrono::steady_clock::now();
    float sink = 0.0f;
    for (std::size_t q = 0; q < nq; ++q) {
      const auto query = ds.query(q);
      for (std::size_t i = 0; i < n; ++i) {
        sink += ds.score(query, static_cast<NodeId>(i));
      }
    }
    Section s{"scalar"};
    s.wall_s = seconds_since(t0);
    s.evals_per_s = static_cast<double>(nq * n) / s.wall_s;
    sections.push_back(s);
    if (sink == 42.0f) std::cerr << "";  // keep the loop observable
  }

  // --- bulk scans: brute-force TopK over the whole base -----------------
  {
    const std::size_t nq = std::min<std::size_t>(
        bench::query_budget(ds, 8), std::max<std::size_t>(1, ds.num_queries()));
    const auto t0 = std::chrono::steady_clock::now();
    std::size_t found = 0;
    for (std::size_t q = 0; q < nq; ++q) {
      found += brute_force_topk(ds, ds.query(q), 10).size();
    }
    Section s{"bulk"};
    s.wall_s = seconds_since(t0);
    s.evals_per_s = static_cast<double>(nq * n) / s.wall_s;
    sections.push_back(s);
    if (found == 0) throw std::runtime_error("bulk scan found nothing");
  }

  // --- graph search: sequential greedy sweeps ---------------------------
  {
    const std::size_t nq = bench::query_budget(ds, 100);
    search::SearchConfig cfg;
    cfg.topk = 16;
    cfg.candidate_len = 128;
    sim::CostModel cm;
    std::size_t scored = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t q = 0; q < nq; ++q) {
      const auto res = search::greedy_search(ds, g, cm, cfg, ds.query(q));
      scored += res.stats.scored_points;
    }
    Section s{"search"};
    s.wall_s = seconds_since(t0);
    s.evals_per_s = static_cast<double>(scored) / s.wall_s;
    s.queries_per_s = static_cast<double>(nq) / s.wall_s;
    sections.push_back(s);
  }

  // --- end-to-end engine: Fig 10/11 configuration -----------------------
  double sim_events_per_s = 0.0;
  double engine_recall = 0.0;
  {
    const std::size_t nq = bench::query_budget(ds, 200);
    core::AlgasEngine engine(ds, g, bench::algas_config(16, 128, 16));
    const auto t0 = std::chrono::steady_clock::now();
    const auto rep = engine.run_closed_loop(nq);
    Section s{"engine"};
    s.wall_s = seconds_since(t0);
    s.queries_per_s = static_cast<double>(nq) / s.wall_s;
    sim_events_per_s = static_cast<double>(rep.sim_events) / s.wall_s;
    engine_recall = rep.recall;
    sections.push_back(s);
  }

  // --- graph construction: deterministic batched NSW build --------------
  // The serial (threads=1) run is the gated number — insertions/s on one
  // core is machine-comparable. The default-thread run only feeds the
  // informational speedup (CI core counts vary); byte-identity of the two
  // graphs is pinned by tests, not here.
  double construction_ips = 0.0;
  double construction_speedup = 0.0;
  double construction_parallel_wall_s = 0.0;
  {
    const Dataset build_ds =
        load_bench_dataset_sized(ds_name, 10000, 10, 32, /*use_cache=*/true);
    BuildConfig cfg = bench::bench_build_config();
    cfg.threads = 1;
    const BuildReport serial = build_graph(GraphKind::kNsw, build_ds, cfg);
    Section s{"construction"};
    s.wall_s = serial.wall_build_s;
    s.evals_per_s = static_cast<double>(serial.scored_points) / s.wall_s;
    construction_ips = static_cast<double>(build_ds.num_base()) / s.wall_s;
    sections.push_back(s);

    cfg.threads = 0;  // default: ALGAS_BUILD_THREADS, then hardware
    const BuildReport parallel = build_graph(GraphKind::kNsw, build_ds, cfg);
    construction_parallel_wall_s = parallel.wall_build_s;
    construction_speedup = serial.wall_build_s / parallel.wall_build_s;
  }

  metrics::TsvTable table(
      {"section", "wall_s", "distance_evals_per_s", "queries_per_s"});
  for (const auto& s : sections) {
    table.row()
        .cell(s.name)
        .cell(s.wall_s, 3)
        .cell(s.evals_per_s, 0)
        .cell(s.queries_per_s, 1);
  }
  table.print(std::cout);

  const std::string out_path = RuntimeOptions::from_env().walltime_out;
  std::ofstream out(out_path, std::ios::trunc);
  if (!out) throw std::runtime_error("cannot write " + out_path);
  out.setf(std::ios::fixed);
  out.precision(4);  // enough for scale fractions and sub-second walls
  out << "{\n"
      << "  \"bench\": \"walltime\",\n"
      << "  \"dataset\": \"" << ds_name << "\",\n"
      << "  \"n_base\": " << n << ",\n"
      << "  \"dim\": " << ds.dim() << ",\n"
      << "  \"storage\": \"" << storage_codec_name(ds.storage()) << "\",\n"
      << "  \"scale\": " << dataset_scale() << ",\n"
      << "  \"engine_recall\": " << engine_recall << ",\n"
      << "  \"sim_events_per_s\": " << sim_events_per_s << ",\n"
      << "  \"construction_insertions_per_s\": " << construction_ips << ",\n"
      << "  \"construction_speedup\": " << construction_speedup << ",\n"
      << "  \"construction_parallel_wall_s\": " << construction_parallel_wall_s
      << ",\n";
  for (std::size_t i = 0; i < sections.size(); ++i) {
    const auto& s = sections[i];
    out << "  \"" << s.name << "_wall_s\": " << s.wall_s << ",\n";
    if (s.evals_per_s > 0.0) {
      out << "  \"" << s.name
          << "_distance_evals_per_s\": " << s.evals_per_s << ",\n";
    }
    if (s.queries_per_s > 0.0) {
      out << "  \"" << s.name << "_queries_per_s\": " << s.queries_per_s
          << ",\n";
    }
  }
  out << "  \"end\": true\n}\n";
  std::cerr << "[bench] wrote " << out_path << "\n";
  return 0;
}
