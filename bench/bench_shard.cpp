// bench_shard — scatter-gather scaling across simulated device shards.
//
// Sweeps shard count x slots x fan-out over the first two bench datasets
// and reports the modeled serving numbers: recall@10, service latency,
// queries/s, shared-host-bus occupancy and the serial merge-thread load.
// The headline claim this bench gates is that sharding the base set across
// K devices raises modeled throughput monotonically at fixed slot count —
// each shard searches a smaller graph while K searches run concurrently,
// and the host-side k-way merge + bus contention it buys stays cheap.
//
// CI gates three things off the JSON (scripts on bench/shard_baseline.json):
//   * recall: the full-fanout variant must match the baseline exactly
//     (deterministic chain), the selective variant may trail the same-run
//     full recall by a pinned epsilon (check_recall.py --exact full
//     --eps selective=...).
//   * determinism: the bench runs twice with ALGAS_SHARD_HOSTS=1 and =4;
//     the per-variant results_checksum (FNV-1a over merged per-query
//     results, sorted by query index) must be byte-identical — host
//     thread count must never leak into merged results.
//   * wall clock: sharded_distance_evals_per_s gates through
//     check_walltime.py (the sharded serving path is a real host hot loop).
//
// Knobs (environment, same semantics as the other benches):
//   ALGAS_SCALE        dataset size multiplier (CI gate uses 0.05)
//   ALGAS_QUERIES      queries per configuration (CI: 40)
//   ALGAS_DATASETS     first two names are swept (default sift,gist)
//   ALGAS_SHARD_HOSTS  host worker threads per shard engine (default 1)
//   ALGAS_SHARD_OUT    output JSON path (default "BENCH_shard.json")
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/env.hpp"
#include "core/sharded_engine.hpp"
#include "metrics/table.hpp"

using namespace algas;

namespace {

constexpr std::size_t kTopk = 10;
constexpr std::size_t kCandidateLen = 1024;

core::ShardedConfig sharded_config(std::size_t shards, std::size_t slots,
                                   std::size_t fanout,
                                   std::size_t host_threads) {
  core::ShardedConfig cfg;
  cfg.base.search.topk = kTopk;
  cfg.base.search.candidate_len = kCandidateLen;
  cfg.base.search.beam_width = 4;
  cfg.base.search.offset_beam = 24;
  cfg.base.slots = slots;
  cfg.base.n_parallel = 4;
  cfg.base.host_threads = host_threads;
  cfg.base.host_sync = core::HostSync::kPollMirrored;
  cfg.shards = shards;
  cfg.fanout = fanout;
  cfg.build = bench::bench_build_config();
  return cfg;
}

/// FNV-1a 64 over the merged per-query results in query-index order — the
/// byte-identity fingerprint CI compares across ALGAS_SHARD_HOSTS values.
std::uint64_t results_checksum(const metrics::Collector& c) {
  std::vector<const metrics::QueryRecord*> recs;
  recs.reserve(c.size());
  for (const auto& r : c.records()) recs.push_back(&r);
  std::sort(recs.begin(), recs.end(),
            [](const metrics::QueryRecord* a, const metrics::QueryRecord* b) {
              return a->query_index < b->query_index;
            });
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffULL;
      h *= 0x100000001b3ULL;
    }
  };
  for (const auto* r : recs) {
    mix(r->query_index);
    mix(r->results.size());
    for (const KV& kv : r->results) {
      mix(kv.id());
      std::uint32_t bits;
      static_assert(sizeof(bits) == sizeof(kv.dist));
      std::memcpy(&bits, &kv.dist, sizeof(bits));
      mix(bits);
    }
  }
  return h;
}

struct Row {
  std::string dataset;
  std::size_t shards, slots, fanout;
  core::ShardedReport rep;
  double wall_s = 0.0;
};

double seconds_since(std::chrono::steady_clock::time_point t0) {
  const auto dt = std::chrono::steady_clock::now() - t0;
  return std::chrono::duration<double>(dt).count();
}

}  // namespace

int main() {
  bench::print_header(
      "shard",
      "scatter-gather scaling: shards x slots x fan-out, host-side k-way "
      "merge priced against a shared host bus");

  const RuntimeOptions opts = RuntimeOptions::from_env();
  const std::size_t host_threads = opts.shard_hosts;

  auto names = bench::selected_datasets();
  if (names.size() > 2) names.resize(2);  // shard scaling needs two datasets

  // The sweep: shard scaling at fixed slots (the monotonicity gate), a
  // slot halving at K=4, and a selective fan-out point.
  struct Config {
    std::size_t shards, slots, fanout;
  };
  const std::vector<Config> sweep = {
      {1, 16, 0}, {2, 16, 0}, {4, 16, 0}, {4, 8, 0}, {4, 16, 2},
  };

  std::vector<Row> rows;
  for (const auto& name : names) {
    const Dataset& ds = bench::dataset(name);
    const std::size_t nq = bench::query_budget(ds, 100);
    for (const auto& c : sweep) {
      core::ShardedEngine engine(
          ds, sharded_config(c.shards, c.slots, c.fanout, host_threads));
      const auto t0 = std::chrono::steady_clock::now();
      Row row{name, c.shards, c.slots, c.fanout,
              engine.run_closed_loop(nq), 0.0};
      row.wall_s = seconds_since(t0);
      rows.push_back(std::move(row));
    }
  }

  metrics::TsvTable table({"dataset", "shards", "slots", "fanout",
                           "recall_at_10", "mean_service_us",
                           "p99_service_us", "qps", "bus_busy_pct",
                           "merge_busy_us"});
  for (const auto& r : rows) {
    table.row()
        .cell(r.dataset)
        .cell(r.shards)
        .cell(r.slots)
        .cell(r.fanout)
        .cell(r.rep.merged.recall, 4)
        .cell(r.rep.merged.summary.mean_service_us, 1)
        .cell(r.rep.merged.summary.p99_service_us, 1)
        .cell(r.rep.merged.summary.throughput_qps, 0)
        .cell(100.0 * r.rep.bus_utilization, 1)
        .cell(r.rep.merge_busy_ns / 1e3, 1);
  }
  table.print(std::cout);

  // Shard-scaling check: at slots=16, full fan-out, modeled queries/s must
  // rise monotonically 1 -> 2 -> 4 shards on every swept dataset.
  struct Scaling {
    std::string dataset;
    std::vector<double> qps;
    bool monotonic = true;
  };
  std::vector<Scaling> scaling;
  for (const auto& name : names) {
    Scaling s{name, {}, true};
    for (const std::size_t k : {1u, 2u, 4u}) {
      for (const auto& r : rows) {
        if (r.dataset == name && r.shards == k && r.slots == 16 &&
            r.fanout == 0) {
          s.qps.push_back(r.rep.merged.summary.throughput_qps);
        }
      }
    }
    for (std::size_t i = 1; i < s.qps.size(); ++i) {
      if (s.qps[i] <= s.qps[i - 1]) s.monotonic = false;
    }
    std::printf("# scaling %s slots=16: qps %.0f -> %.0f -> %.0f %s\n",
                name.c_str(), s.qps[0], s.qps[1], s.qps[2],
                s.monotonic ? "(monotonic)" : "(NOT monotonic)");
    scaling.push_back(std::move(s));
  }

  // Gate dataset (first name): the full-fanout K=4 point doubles as the
  // recall/determinism variant and the wall-clock measurement; the
  // selective point is the eps-gated variant.
  const Row* full = nullptr;
  const Row* selective = nullptr;
  for (const auto& r : rows) {
    if (r.dataset != names.front() || r.slots != 16) continue;
    if (r.shards == 4 && r.fanout == 0) full = &r;
    if (r.shards == 4 && r.fanout == 2) selective = &r;
  }
  if (full == nullptr || selective == nullptr) {
    throw std::logic_error("gate configurations missing from sweep");
  }
  double full_scored = 0.0;
  for (const auto& rec : full->rep.merged.collector.records()) {
    full_scored += static_cast<double>(rec.scored_points);
  }
  const double evals_per_s = full_scored / full->wall_s;

  const Dataset& gate_ds = bench::dataset(names.front());
  const std::size_t nq = bench::query_budget(gate_ds, 100);
  char full_hex[17], sel_hex[17];
  std::snprintf(full_hex, sizeof(full_hex), "%016llx",
                static_cast<unsigned long long>(
                    results_checksum(full->rep.merged.collector)));
  std::snprintf(sel_hex, sizeof(sel_hex), "%016llx",
                static_cast<unsigned long long>(
                    results_checksum(selective->rep.merged.collector)));

  const std::string out_path = opts.shard_out;
  std::ofstream out(out_path, std::ios::trunc);
  if (!out) throw std::runtime_error("cannot write " + out_path);
  out.setf(std::ios::fixed);
  out.precision(10);
  out << "{\n"
      << "  \"bench\": \"bench_shard\",\n"
      << "  \"dataset\": \"" << names.front() << "\",\n"
      << "  \"n_base\": " << gate_ds.num_base() << ",\n"
      << "  \"dim\": " << gate_ds.dim() << ",\n"
      << "  \"queries\": " << nq << ",\n"
      << "  \"topk\": " << kTopk << ",\n"
      << "  \"candidate_len\": " << kCandidateLen << ",\n"
      << "  \"shards\": 4,\n"
      << "  \"shard_hosts\": " << host_threads << ",\n"
      << "  \"sharded_distance_evals_per_s\": " << evals_per_s << ",\n"
      << "  \"variants\": {\n"
      << "    \"full\": {\n"
      << "      \"recall_at_10\": " << full->rep.merged.recall << ",\n"
      << "      \"mean_latency_us\": "
      << full->rep.merged.summary.mean_service_us << ",\n"
      << "      \"results_checksum\": \"" << full_hex << "\"\n"
      << "    },\n"
      << "    \"selective\": {\n"
      << "      \"recall_at_10\": " << selective->rep.merged.recall << ",\n"
      << "      \"mean_latency_us\": "
      << selective->rep.merged.summary.mean_service_us << ",\n"
      << "      \"results_checksum\": \"" << sel_hex << "\"\n"
      << "    }\n"
      << "  },\n"
      << "  \"scaling\": [\n";
  for (std::size_t i = 0; i < scaling.size(); ++i) {
    const auto& s = scaling[i];
    out << "    {\"dataset\": \"" << s.dataset << "\", \"slots\": 16, "
        << "\"qps\": [";
    for (std::size_t j = 0; j < s.qps.size(); ++j) {
      out << s.qps[j] << (j + 1 < s.qps.size() ? ", " : "");
    }
    out << "], \"monotonic\": " << (s.monotonic ? "true" : "false") << "}"
        << (i + 1 < scaling.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"end\": true\n}\n";
  std::fprintf(stderr, "[bench] wrote %s\n", out_path.c_str());
  return 0;
}
