// Table I — the qualitative batch/throughput/latency matrix, reproduced
// quantitatively: CAGRA on single queries, CAGRA on a large batch, ALGAS
// on a small batch, and GANNS on a large batch, all at the same search
// configuration. Ratios against the best column reproduce the paper's
// good/moderate/bad labels.
#include <algorithm>
#include <iostream>
#include <vector>

#include "baselines/ganns_engine.hpp"
#include "baselines/static_engine.hpp"
#include "bench_common.hpp"
#include "core/engine.hpp"

using namespace algas;

namespace {

const char* grade(double value, double best, bool higher_is_better) {
  // Bands span the orders-of-magnitude gap between single-query and
  // saturated-batch operation, like the paper's qualitative labels:
  // throughput within ~an order of magnitude of the best is "good";
  // latency within 1.6x of the best is "good", beyond 2.6x "bad".
  if (higher_is_better) {
    const double ratio = value / best;
    if (ratio >= 0.11) return "good";
    if (ratio >= 0.004) return "moderate";
    return "bad";
  }
  const double ratio = value / best;
  if (ratio <= 1.6) return "good";
  if (ratio <= 2.6) return "moderate";
  return "bad";
}

}  // namespace

int main() {
  bench::print_header("table1_summary",
                      "Table I: batch regime vs throughput vs latency");

  metrics::TsvTable table({"system", "batch", "throughput_qps",
                           "mean_latency_us", "throughput_grade",
                           "latency_grade"});

  constexpr std::size_t kList = 128;
  const std::string name = bench::selected_datasets().front();
  const Dataset& ds = bench::dataset(name);
  const Graph& g = bench::graph(name, GraphKind::kCagra);
  const std::size_t nq = bench::query_budget(ds, 512);
  metrics::print_meta(std::cout, "dataset", ds.describe());

  struct Row {
    std::string system;
    std::size_t batch;
    double qps;
    double lat;
  };
  std::vector<Row> rows;

  {
    baselines::StaticConfig cfg;
    cfg.search.candidate_len = kList;
    cfg.batch_size = 1;
    cfg.n_parallel = 8;  // single query gets many CTAs
    baselines::StaticBatchEngine engine(ds, g, cfg);
    const auto rep = engine.run_closed_loop(nq);
    rows.push_back({"CAGRA-single", 1, rep.summary.throughput_qps,
                    rep.summary.mean_service_us});
  }
  {
    baselines::StaticConfig cfg;
    cfg.search.candidate_len = kList;
    cfg.batch_size = 512;
    cfg.n_parallel = 2;
    baselines::StaticBatchEngine engine(ds, g, cfg);
    const auto rep = engine.run_closed_loop(nq);
    rows.push_back({"CAGRA-large-batch", 512, rep.summary.throughput_qps,
                    rep.summary.mean_service_us});
  }
  {
    core::AlgasEngine engine(ds, g, bench::algas_config(16, kList));
    const auto rep = engine.run_closed_loop(nq);
    rows.push_back({"ALGAS-small-batch", 16, rep.summary.throughput_qps,
                    rep.summary.mean_service_us});
  }
  {
    baselines::GannsConfig cfg;
    cfg.search.candidate_len = kList;
    cfg.batch_size = 512;
    baselines::GannsEngine engine(ds, g, cfg);
    const auto rep = engine.run_closed_loop(nq);
    rows.push_back({"GANNS-large-batch", 512, rep.summary.throughput_qps,
                    rep.summary.mean_service_us});
  }

  double best_qps = 0.0, best_lat = 1e300;
  for (const auto& r : rows) {
    best_qps = std::max(best_qps, r.qps);
    best_lat = std::min(best_lat, r.lat);
  }
  for (const auto& r : rows) {
    table.row()
        .cell(r.system)
        .cell(r.batch)
        .cell(r.qps, 0)
        .cell(r.lat, 1)
        .cell(std::string(grade(r.qps, best_qps, true)))
        .cell(std::string(grade(r.lat, best_lat, false)));
  }

  std::cout << "# paper Table I: CAGRA-single (moderate,good), CAGRA-large "
               "(good,bad), ALGAS-small (good,good), GANNS-large "
               "(moderate,bad)\n";
  table.print(std::cout);
  return 0;
}
