// Graph construction study (substrate for the paper's "NSW-GANNS graph"):
// GANNS-style batched GPU construction vs one-CTA serial construction, per
// dataset — host wall time, modeled (virtual) build time, speedup, batches,
// and the quality of the resulting index (recall at a fixed search setting).
//
// Both times come from the one BuildReport of a single build, so the wall
// and virtual columns always describe the same graph (the old bench timed
// only virtual time and could not show host-side construction throughput).
#include <iostream>

#include "bench_common.hpp"
#include "dataset/registry.hpp"
#include "metrics/recall.hpp"
#include "search/multi_cta.hpp"

using namespace algas;

int main() {
  bench::print_header("construction",
                      "GANNS-style batched GPU construction vs serial");

  metrics::TsvTable table({"dataset", "insert_batch", "batches", "wall_ms",
                           "insertions_per_s", "gpu_build_ms",
                           "serial_build_ms", "speedup", "recall_at_64"});

  const sim::CostModel cm;
  for (const auto& name : bench::selected_datasets()) {
    // Construction is rebuilt per configuration (no cache), so cap the
    // corpus at 20k points to keep the sweep tractable.
    const Dataset ds =
        load_bench_dataset_sized(name, 20000, 100, 32, /*use_cache=*/true);
    const std::size_t nq = std::min<std::size_t>(100, ds.num_queries());

    for (std::size_t batch : {512, 4096}) {
      BuildConfig cfg = bench::bench_build_config();
      cfg.insert_batch = batch;
      const BuildReport result = build_graph(GraphKind::kNsw, ds, cfg);

      search::SearchConfig scfg;
      scfg.topk = 16;
      scfg.candidate_len = 64;
      double recall = 0.0;
      for (std::size_t q = 0; q < nq; ++q) {
        const auto r = search::multi_cta_search(ds, result.graph, cm, scfg,
                                                4, ds.query(q), q, 1);
        recall += metrics::recall_at_k(ds, q, r.topk, 16);
      }

      const double wall_s = result.wall_build_s;
      const double ips =
          wall_s > 0.0 ? static_cast<double>(ds.num_base()) / wall_s : 0.0;
      table.row()
          .cell(name)
          .cell(batch)
          .cell(result.batches)
          .cell(wall_s * 1e3, 2)
          .cell(ips, 0)
          .cell(result.virtual_build_ns / 1e6, 2)
          .cell(result.serial_build_ns / 1e6, 2)
          .cell(result.speedup(), 1)
          .cell(recall / static_cast<double>(nq), 4);
    }
  }

  std::cout << "# expected: speedup near the device's concurrent-CTA "
               "capacity; quality flat across batch sizes\n";
  table.print(std::cout);
  return 0;
}
