// Fig 1 — distribution of greedy-search step counts over the query set,
// per dataset. Also prints the paper's §III-A claim numbers: the slowest
// queries reach 147.9%-190.2% of the average step count.
#include <iostream>

#include "bench_common.hpp"
#include "common/stats.hpp"
#include "search/greedy.hpp"

using namespace algas;

int main() {
  bench::print_header("fig1_step_distribution",
                      "Fig 1: query step distribution per dataset");

  metrics::TsvTable table({"dataset", "bin_lo_steps", "bin_hi_steps",
                           "queries", "fraction"});
  metrics::TsvTable claims({"dataset", "avg_steps", "p99_steps", "max_steps",
                            "max_over_avg_pct"});

  const sim::CostModel cm;
  for (const auto& name : bench::selected_datasets()) {
    const Dataset& ds = bench::dataset(name);
    const Graph& g = bench::graph(name, GraphKind::kNsw);
    const std::size_t nq = bench::query_budget(ds, 400);

    search::SearchConfig cfg;
    cfg.topk = 16;
    cfg.candidate_len = 128;

    SampleStats steps;
    for (std::size_t q = 0; q < nq; ++q) {
      const auto res = search::greedy_search(ds, g, cm, cfg, ds.query(q));
      steps.add(static_cast<double>(res.stats.expanded_points));
    }

    Histogram hist(steps.min(), steps.max() + 1.0, 16);
    for (double v : steps.raw()) hist.add(v);
    for (std::size_t b = 0; b < hist.bins(); ++b) {
      table.row()
          .cell(name)
          .cell(hist.bin_lo(b), 1)
          .cell(hist.bin_hi(b), 1)
          .cell(hist.bin_count(b))
          .cell(hist.total() == 0
                    ? 0.0
                    : static_cast<double>(hist.bin_count(b)) /
                          static_cast<double>(hist.total()),
                4);
    }
    claims.row()
        .cell(name)
        .cell(steps.mean(), 1)
        .cell(steps.percentile(99), 1)
        .cell(steps.max(), 1)
        .cell(steps.mean() > 0.0 ? 100.0 * steps.max() / steps.mean() : 0.0,
              1);
  }

  table.print(std::cout);
  std::cout << "\n# paper claim: max steps reach 147.9%-190.2% of average\n";
  claims.print(std::cout);
  return 0;
}
