// Ablations for the design decisions DESIGN.md calls out, beyond the
// paper's own figures. One dataset (first selected), batch 16, TopK 16:
//
//   A. TopK merge placement: GPU divide-and-conquer (CAGRA) vs host
//      offload (§IV-B's GPU-CPU cooperation), same static engine.
//   B. Beam width sweep {1,2,4,8} at fixed offset_beam.
//   C. offset_beam sweep {4,24,64,128}: when the diffusing phase starts.
//   D. N_parallel sweep {1,2,4,8}: CTAs per query under dynamic batching.
#include <iostream>

#include "baselines/static_engine.hpp"
#include "bench_common.hpp"
#include "core/engine.hpp"

using namespace algas;

int main() {
  bench::print_header("ablation_design",
                      "design ablations: merge placement, beam width, "
                      "offset_beam, N_parallel");

  const std::string name = bench::selected_datasets().front();
  const Dataset& ds = bench::dataset(name);
  const Graph& g = bench::graph(name, GraphKind::kCagra);
  const std::size_t nq = bench::query_budget(ds, 200);
  metrics::print_meta(std::cout, "dataset", ds.describe());

  constexpr std::size_t kBatch = 16;
  constexpr std::size_t kList = 128;

  std::cout << "\n# A. merge placement (static multi-CTA engine)\n"
               "# note: under a batch barrier, host offload trades the\n"
               "# per-query GPU merge for a bulk candidate-list transfer and\n"
               "# serial host merging, so the two are close here. The offload\n"
               "# pays off in ALGAS's dynamic batching, where per-slot host\n"
               "# merges overlap with other slots' GPU search and never\n"
               "# interrupt the persistent kernel (SIV-B) - compare the\n"
               "# ALGAS rows of fig10/11 against CAGRA.\n";
  {
    metrics::TsvTable t({"merge", "recall", "mean_latency_us",
                         "throughput_qps"});
    for (auto mode : {baselines::MergeMode::kGpuDivideConquer,
                      baselines::MergeMode::kHost}) {
      baselines::StaticConfig cfg;
      cfg.search.candidate_len = kList;
      cfg.batch_size = kBatch;
      cfg.n_parallel = 4;
      cfg.merge = mode;
      baselines::StaticBatchEngine engine(ds, g, cfg);
      const auto rep = engine.run_closed_loop(nq);
      t.row()
          .cell(std::string(mode == baselines::MergeMode::kHost
                                ? "host-offload"
                                : "gpu-divide-conquer"))
          .cell(rep.recall, 4)
          .cell(rep.summary.mean_service_us, 1)
          .cell(rep.summary.throughput_qps, 0);
    }
    t.print(std::cout);
  }

  std::cout << "\n# B. beam width (offset_beam=24)\n";
  {
    metrics::TsvTable t({"beam_width", "recall", "mean_latency_us",
                         "throughput_qps", "sort_fraction"});
    for (std::size_t beam : {1, 2, 4, 8}) {
      core::AlgasEngine engine(
          ds, g, bench::algas_config(kBatch, kList, 16, 4, beam));
      const auto rep = engine.run_closed_loop(nq);
      t.row()
          .cell(beam)
          .cell(rep.recall, 4)
          .cell(rep.summary.mean_service_us, 1)
          .cell(rep.summary.throughput_qps, 0)
          .cell(rep.summary.sort_fraction, 3);
    }
    t.print(std::cout);
  }

  std::cout << "\n# C. offset_beam (beam_width=4)\n";
  {
    metrics::TsvTable t({"offset_beam", "recall", "mean_latency_us",
                         "throughput_qps"});
    for (std::size_t offset : {4, 24, 64, 128}) {
      auto cfg = bench::algas_config(kBatch, kList, 16, 4, 4);
      cfg.search.offset_beam = offset;
      core::AlgasEngine engine(ds, g, cfg);
      const auto rep = engine.run_closed_loop(nq);
      t.row()
          .cell(offset)
          .cell(rep.recall, 4)
          .cell(rep.summary.mean_service_us, 1)
          .cell(rep.summary.throughput_qps, 0);
    }
    t.print(std::cout);
  }

  std::cout << "\n# E. host synchronization (SV-A: polling vs blocking)\n";
  {
    metrics::TsvTable t({"host_sync", "mean_latency_us", "throughput_qps",
                         "state_txns", "interrupts"});
    for (auto mode : {core::HostSync::kPollNaive,
                      core::HostSync::kPollMirrored,
                      core::HostSync::kBlocking}) {
      auto cfg = bench::algas_config(kBatch, kList);
      cfg.host_sync = mode;
      core::AlgasEngine engine(ds, g, cfg);
      const auto rep = engine.run_closed_loop(nq);
      t.row()
          .cell(std::string(core::host_sync_name(mode)))
          .cell(rep.summary.mean_service_us, 1)
          .cell(rep.summary.throughput_qps, 0)
          .cell(rep.pcie_state_transactions)
          .cell(rep.interrupts);
    }
    t.print(std::cout);
  }

  std::cout << "\n# D. N_parallel (CTAs per query)\n";
  {
    metrics::TsvTable t({"n_parallel", "recall", "mean_latency_us",
                         "throughput_qps", "gpu_utilization"});
    for (std::size_t np : {1, 2, 4, 8}) {
      core::AlgasEngine engine(ds, g,
                               bench::algas_config(kBatch, kList, 16, np));
      const auto rep = engine.run_closed_loop(nq);
      t.row()
          .cell(np)
          .cell(rep.recall, 4)
          .cell(rep.summary.mean_service_us, 1)
          .cell(rep.summary.throughput_qps, 0)
          .cell(rep.gpu_utilization, 3);
    }
    t.print(std::cout);
  }
  return 0;
}
