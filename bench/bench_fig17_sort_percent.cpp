// Fig 17 — percentage of GPU search time spent sorting, before vs after
// the beam extend optimization (paper: sorting drops ~14.2%-25% of search
// time). Measured from the engine's per-query cost breakdown at the
// high-recall setting where the diffusing phase dominates.
#include <iostream>

#include "bench_common.hpp"
#include "core/engine.hpp"

using namespace algas;

int main() {
  bench::print_header("fig17_sort_percent",
                      "Fig 17: sorting share before/after beam extend");

  metrics::TsvTable table({"dataset", "greedy_sort_pct", "beam_sort_pct",
                           "search_time_saved_pct"});

  constexpr std::size_t kBatch = 16;
  constexpr std::size_t kList = 256;

  for (const auto& name : bench::selected_datasets()) {
    const Dataset& ds = bench::dataset(name);
    const Graph& g = bench::graph(name, GraphKind::kCagra);
    const std::size_t nq = bench::query_budget(ds, 200);

    core::AlgasEngine greedy(ds, g,
                             bench::algas_config(kBatch, kList, 16, 4, 1));
    core::AlgasEngine beam(ds, g,
                           bench::algas_config(kBatch, kList, 16, 4, 4));
    const auto rg = greedy.run_closed_loop(nq);
    const auto rb = beam.run_closed_loop(nq);

    double greedy_total = 0.0, greedy_sort = 0.0;
    for (const auto& r : rg.collector.records()) {
      greedy_total += r.gpu_cost.total_ns();
      greedy_sort += r.gpu_cost.sort_ns;
    }
    double beam_total = 0.0, beam_sort = 0.0;
    for (const auto& r : rb.collector.records()) {
      beam_total += r.gpu_cost.total_ns();
      beam_sort += r.gpu_cost.sort_ns;
    }
    table.row()
        .cell(name)
        .cell(100.0 * greedy_sort / greedy_total, 1)
        .cell(100.0 * beam_sort / beam_total, 1)
        .cell(100.0 * (greedy_total - beam_total) / greedy_total, 1);
  }

  std::cout << "# paper claim: search time reduced ~14.2%-25%\n";
  table.print(std::cout);
  return 0;
}
