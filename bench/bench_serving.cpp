// bench_serving — open-loop serving: offered load vs goodput under
// deadlines and admission control.
//
// Per dataset the bench first calibrates a closed-loop saturation
// throughput (unbounded queue, no deadlines), then sweeps an open-loop
// Poisson arrival process from underload to 2x saturation — plus a bursty
// MMPP point at saturation — against a bounded host queue (kCapacity
// entries, reject-new) and a per-query deadline pinned at kDeadlineP99Mult
// times the calibrated p99 service latency. The headline claim this bench
// gates is GRACEFUL
// degradation: past saturation the engine sheds load at admission and
// evicts expired slots instead of collapsing, so goodput at 2x offered
// load stays within a constant factor of the peak instead of cliffing to
// zero.
//
// CI gates three things off the JSON (serving-gate on
// bench/serving_baseline.json):
//   * determinism: the bench runs with ALGAS_SERVING_HOSTS=1 and =4; the
//     arrival_checksum (FNV-1a over every gate variant's workload trace)
//     and the underload variant's results_checksum must be byte-identical
//     — the workload is a pure function of the config, and a workload that
//     serves everything must not depend on host thread count. Overload
//     outcomes legitimately depend on virtual timing (hence on
//     host_threads), so they are NOT checksum-gated.
//   * graceful flag: goodput(2x) > 0 and >= 0.3 x peak goodput at hosts=1.
//   * floors: serving_goodput_qps (virtual, 1x point) and
//     serving_distance_evals_per_s (wall clock) through check_walltime.py.
//
// Knobs (environment, same semantics as the other benches):
//   ALGAS_SCALE          dataset size multiplier (CI gate uses 0.05)
//   ALGAS_QUERIES        queries per configuration (CI: 40)
//   ALGAS_DATASETS       all selected names get scenario rows; the first
//                        is the gate dataset with the full load sweep
//   ALGAS_SERVING_HOSTS  host worker threads (default 1)
//   ALGAS_SERVING_OUT    output JSON path (default "BENCH_serving.json")
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/env.hpp"
#include "core/serving_engine.hpp"
#include "metrics/table.hpp"

using namespace algas;

namespace {

constexpr std::size_t kTopk = 10;
constexpr std::size_t kCandidateLen = 1024;
constexpr std::size_t kSlots = 16;
/// Bounded host queue: small enough that the 2x-saturation point actually
/// sheds at CI scale (40 queries), large enough that the underload
/// determinism variant never does (its steady-state in-flight count sits
/// well under the slot count, so the queue stays near empty).
constexpr std::size_t kCapacity = 4;
/// Per-query deadline = this multiple of the calibrated closed-loop p99
/// service latency: comfortable at underload, binding in the overload tail.
constexpr double kDeadlineP99Mult = 2.0;

core::ShardedConfig engine_config(bool bounded, std::size_t host_threads) {
  core::ShardedConfig cfg;
  cfg.base.search.topk = kTopk;
  cfg.base.search.candidate_len = kCandidateLen;
  cfg.base.search.beam_width = 4;
  cfg.base.search.offset_beam = 24;
  cfg.base.slots = kSlots;
  cfg.base.n_parallel = 4;
  cfg.base.host_threads = host_threads;
  cfg.base.host_sync = core::HostSync::kPollMirrored;
  cfg.shards = 1;
  cfg.build = bench::bench_build_config();
  if (bounded) {
    cfg.base.admission.capacity = kCapacity;
    cfg.base.admission.policy = core::ShedPolicy::kRejectNew;
  }
  return cfg;
}

/// FNV-1a 64 helpers shared by both checksums (same mixing as bench_shard,
/// so the gates compare like with like).
struct Fnv {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffULL;
      h *= 0x100000001b3ULL;
    }
  }
  void mix_double(double d) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(d));
    std::memcpy(&bits, &d, sizeof(bits));
    mix(bits);
  }
};

/// Workload fingerprint: query index, arrival instant, deadline, priority
/// of every generated arrival — identical across hosts by construction.
void mix_arrivals(Fnv& f, const std::vector<core::PendingQuery>& arrivals) {
  for (const auto& a : arrivals) {
    f.mix(a.query_index);
    f.mix_double(a.arrival_ns);
    f.mix_double(a.deadline_ns);
    f.mix(a.priority);
  }
}

/// Served-results fingerprint in query-index order (bench_shard's scheme,
/// plus the disposition byte so a served/shed flip cannot cancel out).
std::uint64_t results_checksum(const metrics::Collector& c) {
  std::vector<const metrics::QueryRecord*> recs;
  recs.reserve(c.size());
  for (const auto& r : c.records()) recs.push_back(&r);
  std::sort(recs.begin(), recs.end(),
            [](const metrics::QueryRecord* a, const metrics::QueryRecord* b) {
              return a->query_index < b->query_index;
            });
  Fnv f;
  for (const auto* r : recs) {
    f.mix(r->query_index);
    f.mix(static_cast<std::uint64_t>(r->disposition));
    f.mix(r->results.size());
    for (const KV& kv : r->results) {
      f.mix(kv.id());
      std::uint32_t bits;
      static_assert(sizeof(bits) == sizeof(kv.dist));
      std::memcpy(&bits, &kv.dist, sizeof(bits));
      f.mix(bits);
    }
  }
  return f.h;
}

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return std::string(buf);
}

struct Variant {
  std::string name;
  double mult;           ///< offered rate as a multiple of sat_qps
  sim::ArrivalKind kind;
};

struct Row {
  std::string dataset;
  Variant v;
  double rate_qps = 0.0;
  core::ServingReport rep;
};

double seconds_since(std::chrono::steady_clock::time_point t0) {
  const auto dt = std::chrono::steady_clock::now() - t0;
  return std::chrono::duration<double>(dt).count();
}

sim::ArrivalConfig arrival_config(const Variant& v, double sat_qps) {
  sim::ArrivalConfig a;
  a.kind = v.kind;
  a.rate_qps = v.mult * sat_qps;
  a.seed = 42;
  return a;
}

}  // namespace

int main() {
  bench::print_header(
      "serving",
      "open-loop serving: Poisson/MMPP arrivals vs goodput under per-query "
      "deadlines, bounded admission, and Expired-slot eviction");

  const RuntimeOptions opts = RuntimeOptions::from_env();
  const auto names = bench::selected_datasets();

  const std::vector<Variant> gate_sweep = {
      {"x025", 0.25, sim::ArrivalKind::kPoisson},
      {"x050", 0.50, sim::ArrivalKind::kPoisson},
      {"x075", 0.75, sim::ArrivalKind::kPoisson},
      {"x100", 1.00, sim::ArrivalKind::kPoisson},
      {"x150", 1.50, sim::ArrivalKind::kPoisson},
      {"x200", 2.00, sim::ArrivalKind::kPoisson},
      {"bursty100", 1.00, sim::ArrivalKind::kBursty},
  };
  const std::vector<Variant> scenario_sweep = {
      {"x075", 0.75, sim::ArrivalKind::kPoisson},
      {"x200", 2.00, sim::ArrivalKind::kPoisson},
  };

  std::vector<Row> rows;
  double gate_sat_qps = 0.0, gate_deadline_us = 0.0;
  double gate_goodput_1x = 0.0, gate_evals_per_s = 0.0;
  Fnv arrival_hash;
  std::uint64_t underload_checksum = 0;
  bool graceful = true;

  for (std::size_t d = 0; d < names.size(); ++d) {
    const std::string& name = names[d];
    const bool is_gate = d == 0;
    const Dataset& ds = bench::dataset(name);
    const std::size_t nq = bench::query_budget(ds, 100);

    // Closed-loop calibration (unbounded queue, no deadlines): saturation
    // throughput and the service tail the deadline is pinned against.
    // ALWAYS at host_threads=1 — calibration defines the workload (rates,
    // deadline), and the workload must be a pure function of the config so
    // the arrival checksum stays identical across ALGAS_SERVING_HOSTS.
    core::ShardedEngine calib(ds, engine_config(/*bounded=*/false, 1));
    const auto calib_rep = calib.run_closed_loop(nq);
    const double sat_qps = calib_rep.merged.summary.throughput_qps;
    const double deadline_us =
        kDeadlineP99Mult * calib_rep.merged.summary.p99_service_us;

    core::ServingConfig scfg;
    scfg.sharded = engine_config(/*bounded=*/true, opts.serving_hosts);
    scfg.deadline_us = deadline_us;
    scfg.high_priority_fraction = 0.25;
    scfg.num_queries = nq;
    core::ServingEngine serving(ds, scfg);

    const auto& sweep = is_gate ? gate_sweep : scenario_sweep;
    for (const Variant& v : sweep) {
      const sim::ArrivalConfig a = arrival_config(v, sat_qps);
      const auto t0 = std::chrono::steady_clock::now();
      Row row{name, v, a.rate_qps, serving.run(a, deadline_us)};
      const double wall_s = seconds_since(t0);
      if (is_gate) {
        mix_arrivals(arrival_hash, row.rep.arrivals);
        if (v.name == "x025") {
          underload_checksum =
              results_checksum(row.rep.sharded.merged.collector);
          if (row.rep.shed_rate > 0.0) {
            std::fprintf(stderr,
                         "# WARNING: underload variant shed %.1f%% — the "
                         "determinism gate expects everything served\n",
                         100.0 * row.rep.shed_rate);
          }
        }
        if (v.name == "x100") {
          gate_goodput_1x = row.rep.goodput_qps;
          double scored = 0.0;
          for (const auto& rec :
               row.rep.sharded.merged.collector.records()) {
            scored += static_cast<double>(rec.scored_points);
          }
          gate_evals_per_s = scored / wall_s;
        }
      }
      rows.push_back(std::move(row));
    }
    if (is_gate) {
      gate_sat_qps = sat_qps;
      gate_deadline_us = deadline_us;
      double peak = 0.0, at_2x = 0.0;
      for (const auto& r : rows) {
        if (r.dataset != name || r.v.kind != sim::ArrivalKind::kPoisson) {
          continue;
        }
        peak = std::max(peak, r.rep.goodput_qps);
        if (r.v.name == "x200") at_2x = r.rep.goodput_qps;
      }
      graceful = at_2x > 0.0 && at_2x >= 0.3 * peak;
      std::printf("# graceful %s: goodput peak %.0f qps, at 2x %.0f qps %s\n",
                  name.c_str(), peak, at_2x, graceful ? "(ok)" : "(CLIFF)");
    }
  }

  metrics::TsvTable table({"dataset", "variant", "rate_qps", "offered_qps",
                           "served", "shed_queue", "shed_deadline", "evicted",
                           "goodput_qps", "shed_rate", "p99_latency_us",
                           "p999_latency_us"});
  for (const auto& r : rows) {
    const auto& s = r.rep.sharded.merged.summary;
    table.row()
        .cell(r.dataset)
        .cell(r.v.name)
        .cell(r.rate_qps, 0)
        .cell(r.rep.offered_qps, 0)
        .cell(s.served)
        .cell(s.shed_queue)
        .cell(s.shed_deadline)
        .cell(s.evicted)
        .cell(s.goodput_qps, 0)
        .cell(s.shed_rate, 3)
        .cell(s.p99_latency_us, 1)
        .cell(s.p999_latency_us, 1);
  }
  table.print(std::cout);

  const Dataset& gate_ds = bench::dataset(names.front());
  const std::size_t gate_nq = bench::query_budget(gate_ds, 100);

  const std::string out_path = opts.serving_out;
  std::ofstream out(out_path, std::ios::trunc);
  if (!out) throw std::runtime_error("cannot write " + out_path);
  out.setf(std::ios::fixed);
  out.precision(10);
  out << "{\n"
      << "  \"bench\": \"bench_serving\",\n"
      << "  \"dataset\": \"" << names.front() << "\",\n"
      << "  \"n_base\": " << gate_ds.num_base() << ",\n"
      << "  \"dim\": " << gate_ds.dim() << ",\n"
      << "  \"queries\": " << gate_nq << ",\n"
      << "  \"topk\": " << kTopk << ",\n"
      << "  \"slots\": " << kSlots << ",\n"
      << "  \"capacity\": " << kCapacity << ",\n"
      << "  \"serving_hosts\": " << opts.serving_hosts << ",\n"
      << "  \"sat_qps\": " << gate_sat_qps << ",\n"
      << "  \"deadline_us\": " << gate_deadline_us << ",\n"
      << "  \"graceful\": " << (graceful ? "true" : "false") << ",\n"
      << "  \"arrival_checksum\": \"" << hex64(arrival_hash.h) << "\",\n"
      << "  \"underload_results_checksum\": \"" << hex64(underload_checksum)
      << "\",\n"
      << "  \"serving_goodput_qps\": " << gate_goodput_1x << ",\n"
      << "  \"serving_distance_evals_per_s\": " << gate_evals_per_s << ",\n"
      << "  \"variants\": {\n";
  bool first = true;
  for (const auto& r : rows) {
    if (r.dataset != names.front()) continue;
    if (!first) out << ",\n";
    first = false;
    out << "    \"" << r.v.name << "\": {\n"
        << "      \"rate_qps\": " << r.rate_qps << ",\n"
        << "      \"offered_qps\": " << r.rep.offered_qps << ",\n"
        << "      \"goodput_qps\": " << r.rep.goodput_qps << ",\n"
        << "      \"shed_rate\": " << r.rep.shed_rate << ",\n"
        << "      \"deadline_miss_rate\": " << r.rep.deadline_miss_rate
        << ",\n"
        << "      \"p99_latency_us\": " << r.rep.p99_latency_us << "\n"
        << "    }";
  }
  out << "\n  },\n"
      << "  \"scenarios\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    const auto& s = r.rep.sharded.merged.summary;
    out << "    {\"dataset\": \"" << r.dataset << "\", \"variant\": \""
        << r.v.name << "\", \"goodput_qps\": " << s.goodput_qps
        << ", \"shed_rate\": " << s.shed_rate << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"end\": true\n}\n";
  std::fprintf(stderr, "[bench] wrote %s\n", out_path.c_str());
  return 0;
}
