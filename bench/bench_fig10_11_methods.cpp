// Figs 10 & 11 — latency and throughput of {ALGAS, CAGRA, GANNS, IVF} on
// both graph types (CAGRA graph and NSW-GANNS graph), batch size 16,
// TopK 16, recall controlled by the candidate-list length (nprobe for IVF).
// Each row is one (dataset, graph, method, knob) point carrying recall,
// mean latency, and throughput — the series both figures plot.
#include <iostream>

#include "baselines/ganns_engine.hpp"
#include "baselines/ivf.hpp"
#include "baselines/static_engine.hpp"
#include "bench_common.hpp"
#include "core/engine.hpp"

using namespace algas;

namespace {

constexpr std::size_t kBatch = 16;
constexpr std::size_t kTopk = 16;

void emit(metrics::TsvTable& table, const std::string& ds_name,
          const std::string& graph_name, const std::string& method,
          std::size_t knob, const core::EngineReport& rep) {
  table.row()
      .cell(ds_name)
      .cell(graph_name)
      .cell(method)
      .cell(knob)
      .cell(rep.recall, 4)
      .cell(rep.summary.mean_service_us, 1)
      .cell(rep.summary.p99_service_us, 1)
      .cell(rep.summary.throughput_qps, 0);
}

}  // namespace

int main() {
  bench::print_header("fig10_11_methods",
                      "Figs 10+11: latency & throughput across methods and "
                      "graphs (batch=16, topk=16)");

  metrics::TsvTable table({"dataset", "graph", "method", "knob", "recall",
                           "mean_latency_us", "p99_latency_us",
                           "throughput_qps"});

  const std::vector<std::size_t> list_lens{32, 64, 128, 256};
  const std::vector<std::size_t> nprobes{2, 4, 8, 16, 32};

  for (const auto& name : bench::selected_datasets()) {
    const Dataset& ds = bench::dataset(name);
    const std::size_t nq = bench::query_budget(ds, 200);

    for (GraphKind kind : {GraphKind::kCagra, GraphKind::kNsw}) {
      const Graph& g = bench::graph(name, kind);
      const std::string gname = graph_kind_name(kind);

      for (std::size_t L : list_lens) {
        {
          core::AlgasEngine engine(ds, g,
                                   bench::algas_config(kBatch, L, kTopk));
          emit(table, name, gname, "ALGAS", L,
               engine.run_closed_loop(nq));
        }
        {
          baselines::StaticConfig cfg;
          cfg.search.topk = kTopk;
          cfg.search.candidate_len = L;
          cfg.batch_size = kBatch;
          cfg.n_parallel = 4;
          baselines::StaticBatchEngine engine(ds, g, cfg);
          emit(table, name, gname, "CAGRA", L,
               engine.run_closed_loop(nq));
        }
        {
          baselines::GannsConfig cfg;
          cfg.search.topk = kTopk;
          cfg.search.candidate_len = L;
          cfg.batch_size = kBatch;
          baselines::GannsEngine engine(ds, g, cfg);
          emit(table, name, gname, "GANNS", L,
               engine.run_closed_loop(nq));
        }
      }
    }

    // IVF is graph-independent; build its index once per dataset.
    baselines::IvfConfig ivf_cfg;
    ivf_cfg.topk = kTopk;
    ivf_cfg.batch_size = kBatch;
    const auto ivf_index = baselines::IvfIndex::build(ds, ivf_cfg.build);
    for (std::size_t nprobe : nprobes) {
      ivf_cfg.nprobe = nprobe;
      baselines::IvfEngine engine(ds, ivf_cfg, ivf_index);
      emit(table, name, "-", "IVF", nprobe, engine.run_closed_loop(nq));
    }
  }

  std::cout << "# paper claim: ALGAS cuts latency 21.9%-35.4% and lifts "
               "throughput 27.8%-55.2% vs CAGRA\n";
  table.print(std::cout);
  return 0;
}
