// Fig 2 — step distribution *within* batches (batch size 32, 8 batches per
// dataset) plus the §III-A waste-rate claim: idle CTA-time at the batch
// barrier is 22.9%-33.7% of active time.
#include <algorithm>
#include <iostream>
#include <vector>

#include "baselines/static_engine.hpp"
#include "bench_common.hpp"
#include "common/stats.hpp"
#include "search/greedy.hpp"

using namespace algas;

int main() {
  bench::print_header("fig2_batch_steps",
                      "Fig 2: per-batch step spread (batch=32); "
                      "SIII-A waste rate");

  metrics::TsvTable table({"dataset", "batch", "min_steps", "avg_steps",
                           "max_steps", "slowest_over_fastest_pct"});
  metrics::TsvTable waste({"dataset", "bubble_waste_pct"});

  const sim::CostModel cm;
  constexpr std::size_t kBatch = 32;
  constexpr std::size_t kBatches = 8;

  for (const auto& name : bench::selected_datasets()) {
    const Dataset& ds = bench::dataset(name);
    const Graph& g = bench::graph(name, GraphKind::kNsw);
    const std::size_t nq =
        std::min(ds.num_queries(), kBatch * kBatches);

    search::SearchConfig cfg;
    cfg.topk = 16;
    cfg.candidate_len = 128;

    // The paper excludes outlier queries from this figure ("we excluded
    // certain outliers from the dataset"); do the same — measure steps for
    // all queries, then form batches from the non-outlier population.
    std::vector<double> all_steps(nq, 0.0);
    double step_sum = 0.0;
    for (std::size_t q = 0; q < nq; ++q) {
      const auto res = search::greedy_search(ds, g, cm, cfg, ds.query(q));
      all_steps[q] = static_cast<double>(res.stats.expanded_points);
      step_sum += all_steps[q];
    }
    const double step_mean = step_sum / static_cast<double>(nq);
    std::vector<std::size_t> kept;
    for (std::size_t q = 0; q < nq; ++q) {
      if (all_steps[q] <= 1.5 * step_mean) kept.push_back(q);
    }

    for (std::size_t b = 0; b * kBatch + kBatch <= kept.size(); ++b) {
      SampleStats steps;
      for (std::size_t i = 0; i < kBatch; ++i) {
        steps.add(all_steps[kept[b * kBatch + i]]);
      }
      table.row()
          .cell(name)
          .cell(b)
          .cell(steps.min(), 0)
          .cell(steps.mean(), 1)
          .cell(steps.max(), 0)
          .cell(steps.min() > 0.0 ? 100.0 * steps.max() / steps.min() : 0.0,
                1);
    }

    // Waste rate: batch-synchronous engine over the same non-outlier
    // queries, one CTA per query so the idle time measures exactly the
    // query-length skew §III-A describes.
    baselines::StaticConfig scfg;
    scfg.search = cfg;
    scfg.batch_size = kBatch;
    scfg.n_parallel = 1;
    scfg.merge = baselines::MergeMode::kNone;
    baselines::StaticBatchEngine engine(ds, g, scfg);
    std::vector<core::PendingQuery> arrivals;
    for (std::size_t q : kept) arrivals.push_back({q, 0.0});
    const auto rep = engine.run(arrivals);
    waste.row().cell(name).cell(100.0 * rep.summary.bubble_waste, 1);
  }

  table.print(std::cout);
  std::cout << "\n# paper claim: waste rate 22.9%-33.7%; "
               "slowest query up to 132.4% of fastest (GIST1M)\n";
  waste.print(std::cout);
  return 0;
}
