// Microbenchmarks (google-benchmark) for the hot primitives: distance
// kernels across the Table III dimensions, bitonic sort/merge across list
// sizes, candidate-list maintenance, host TopK merge, and the DES core's
// event throughput. These are *wall-clock* numbers for the functional
// implementations (not virtual time) — they bound how fast the simulator
// itself runs.
#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.hpp"
#include "distance/distance.hpp"
#include "search/bitonic.hpp"
#include "search/candidate_list.hpp"
#include "search/topk_merge.hpp"
#include "simgpu/simulation.hpp"

namespace {

using namespace algas;

std::vector<float> random_vec(std::size_t dim, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(dim);
  for (auto& x : v) x = rng.next_gaussian();
  return v;
}

void BM_DistanceL2(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  const auto a = random_vec(dim, 1);
  const auto b = random_vec(dim, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(l2_sq(a, b));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * dim);
}
BENCHMARK(BM_DistanceL2)->Arg(128)->Arg(200)->Arg(256)->Arg(960);

void BM_DistanceCosine(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  const auto a = random_vec(dim, 3);
  const auto b = random_vec(dim, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        distance(Metric::kCosine, a, b));
  }
}
BENCHMARK(BM_DistanceCosine)->Arg(200)->Arg(256);

std::vector<KV> random_kvs(std::size_t n) {
  Rng rng(n * 977);
  std::vector<KV> v(n);
  for (auto& kv : v) {
    kv = KV::make(rng.next_float(),
                          static_cast<NodeId>(rng.next_below(1 << 20)));
  }
  return v;
}

void BM_BitonicSort(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto base = random_kvs(n);
  std::vector<KV> work(n);
  for (auto _ : state) {
    work = base;
    search::bitonic_sort(std::span<KV>(work));
    benchmark::DoNotOptimize(work.data());
  }
}
BENCHMARK(BM_BitonicSort)->Arg(32)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void BM_CandidateListMerge(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  search::CandidateList list(n);
  auto expand = random_kvs(n / 2);
  std::sort(expand.begin(), expand.end());
  for (auto _ : state) {
    list.reset();
    list.merge_sorted(expand);
    benchmark::DoNotOptimize(list.entries().data());
  }
}
BENCHMARK(BM_CandidateListMerge)->Arg(64)->Arg(128)->Arg(256);

void BM_HostTopkMerge(benchmark::State& state) {
  const auto runs = static_cast<std::size_t>(state.range(0));
  const std::size_t len = 128;
  std::vector<KV> concat;
  for (std::size_t r = 0; r < runs; ++r) {
    auto run = random_kvs(len);
    std::sort(run.begin(), run.end());
    concat.insert(concat.end(), run.begin(), run.end());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        search::merge_sorted_runs(concat, runs, len, 16,
                                  search::AcceptPredicate{}));
  }
}
BENCHMARK(BM_HostTopkMerge)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

class PingActor : public sim::Actor {
 public:
  void step(sim::Simulation& sim) override {
    if (remaining-- > 0) sim.schedule(this, sim.now() + 10.0);
  }
  int remaining = 0;
};

void BM_SimulationEvents(benchmark::State& state) {
  const auto actors = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulation sim;
    std::vector<PingActor> pool(actors);
    for (auto& a : pool) {
      a.remaining = 100;
      sim.schedule(&a, 0.0);
    }
    sim.run();
    benchmark::DoNotOptimize(sim.events_processed());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(actors) * 101);
}
BENCHMARK(BM_SimulationEvents)->Arg(16)->Arg(64)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
