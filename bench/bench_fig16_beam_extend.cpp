// Fig 16 — beam extend vs greedy extend with 8 CTAs in parallel:
// throughput-recall curves per dataset. Beam extend wins at high recall
// (large candidate lists) where the diffusing phase dominates.
#include <iostream>

#include "bench_common.hpp"
#include "core/engine.hpp"

using namespace algas;

int main() {
  bench::print_header("fig16_beam_extend",
                      "Fig 16: beam vs greedy extend, 8 CTAs");

  metrics::TsvTable table({"dataset", "mode", "candidate_len", "recall",
                           "mean_latency_us", "throughput_qps"});

  constexpr std::size_t kBatch = 16;
  constexpr std::size_t kCtas = 8;  // the paper's Fig 16 setting

  for (const auto& name : bench::selected_datasets()) {
    const Dataset& ds = bench::dataset(name);
    const Graph& g = bench::graph(name, GraphKind::kCagra);
    const std::size_t nq = bench::query_budget(ds, 200);

    for (std::size_t L : {128, 256, 512}) {
      for (bool beam : {false, true}) {
        auto cfg = bench::algas_config(kBatch, L, 16, kCtas,
                                       beam ? 4 : 1);
        core::AlgasEngine engine(ds, g, cfg);
        const auto rep = engine.run_closed_loop(nq);
        table.row()
            .cell(name)
            .cell(std::string(beam ? "BeamExtend" : "GreedyExtend"))
            .cell(L)
            .cell(rep.recall, 4)
            .cell(rep.summary.mean_service_us, 1)
            .cell(rep.summary.throughput_qps, 0);
      }
    }
  }

  std::cout << "# expected: beam extend wins at high recall (large L)\n";
  table.print(std::cout);
  return 0;
}
