// Figs 14 & 15 — throughput and latency vs batch size at fixed recall
// (fixed candidate list). ALGAS vs CAGRA vs GANNS. The paper reports ALGAS
// +18.8%-145.9% throughput and -17.7%-61.8% latency vs CAGRA across batch
// sizes.
#include <iostream>

#include "baselines/ganns_engine.hpp"
#include "baselines/static_engine.hpp"
#include "bench_common.hpp"
#include "core/engine.hpp"

using namespace algas;

int main() {
  bench::print_header("fig14_15_batch_sweep",
                      "Figs 14+15: throughput & latency vs batch size");

  metrics::TsvTable table({"dataset", "batch", "method", "recall",
                           "mean_latency_us", "throughput_qps"});

  constexpr std::size_t kList = 128;
  constexpr std::size_t kTopk = 16;

  for (const auto& name : bench::selected_datasets()) {
    const Dataset& ds = bench::dataset(name);
    const Graph& g = bench::graph(name, GraphKind::kCagra);
    const std::size_t nq = bench::query_budget(ds, 200);

    for (std::size_t batch : {1, 4, 16, 64}) {
      {
        // Keep total CTA pressure sane as slots grow: the tuner would do
        // this too, but pin the small-batch value the paper tunes to.
        const std::size_t n_parallel = batch <= 16 ? 4 : 2;
        core::AlgasEngine engine(
            ds, g, bench::algas_config(batch, kList, kTopk, n_parallel));
        const auto rep = engine.run_closed_loop(nq);
        table.row()
            .cell(name)
            .cell(batch)
            .cell(std::string("ALGAS"))
            .cell(rep.recall, 4)
            .cell(rep.summary.mean_service_us, 1)
            .cell(rep.summary.throughput_qps, 0);
      }
      {
        baselines::StaticConfig cfg;
        cfg.search.topk = kTopk;
        cfg.search.candidate_len = kList;
        cfg.batch_size = batch;
        cfg.n_parallel = batch <= 16 ? 4 : 2;
        baselines::StaticBatchEngine engine(ds, g, cfg);
        const auto rep = engine.run_closed_loop(nq);
        table.row()
            .cell(name)
            .cell(batch)
            .cell(std::string("CAGRA"))
            .cell(rep.recall, 4)
            .cell(rep.summary.mean_service_us, 1)
            .cell(rep.summary.throughput_qps, 0);
      }
      {
        baselines::GannsConfig cfg;
        cfg.search.topk = kTopk;
        cfg.search.candidate_len = kList;
        cfg.batch_size = batch;
        baselines::GannsEngine engine(ds, g, cfg);
        const auto rep = engine.run_closed_loop(nq);
        table.row()
            .cell(name)
            .cell(batch)
            .cell(std::string("GANNS"))
            .cell(rep.recall, 4)
            .cell(rep.summary.mean_service_us, 1)
            .cell(rep.summary.throughput_qps, 0);
      }
    }
  }

  std::cout << "# paper claim: vs CAGRA, ALGAS throughput +18.8%-145.9%, "
               "latency -17.7%-61.8%\n";
  table.print(std::cout);
  return 0;
}
