// Fig 7 — distance of the selected candidate vs search step: sharp descent
// in the early (localization) phase, convergence in the late (diffusing)
// phase. Distances are normalized per query (d_step / d_entry) and averaged
// across queries at each step index.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "search/greedy.hpp"

using namespace algas;

int main() {
  bench::print_header("fig7_distance_curve",
                      "Fig 7: selected-candidate distance vs step");

  metrics::TsvTable table(
      {"dataset", "step", "norm_distance_mean", "queries_alive"});

  const sim::CostModel cm;
  for (const auto& name : bench::selected_datasets()) {
    const Dataset& ds = bench::dataset(name);
    const Graph& g = bench::graph(name, GraphKind::kNsw);
    const std::size_t nq = bench::query_budget(ds, 200);

    search::SearchConfig cfg;
    cfg.topk = 16;
    cfg.candidate_len = 128;

    std::vector<double> sums;
    std::vector<std::size_t> counts;
    for (std::size_t q = 0; q < nq; ++q) {
      const auto res = search::greedy_search(ds, g, cm, cfg, ds.query(q));
      const auto& trace = res.stats.step_distances;
      if (trace.empty() || trace.front() <= 0.0f) continue;
      const double d0 = trace.front();
      if (trace.size() > sums.size()) {
        sums.resize(trace.size(), 0.0);
        counts.resize(trace.size(), 0);
      }
      for (std::size_t s = 0; s < trace.size(); ++s) {
        sums[s] += trace[s] / d0;
        ++counts[s];
      }
    }
    for (std::size_t s = 0; s < sums.size(); ++s) {
      if (counts[s] < nq / 20) break;  // tail too sparse to average
      table.row()
          .cell(name)
          .cell(s)
          .cell(sums[s] / static_cast<double>(counts[s]), 4)
          .cell(counts[s]);
    }
  }

  std::cout << "# expected shape: steep early descent, late convergence\n";
  table.print(std::cout);
  return 0;
}
