// Fig 18 — host-side parallel processing (§V-B) and the state-copy
// optimization (§V-A): throughput with host threads in {1, 2, 4}, with and
// without GDRCopy-style local state mirrors, at batch 32 where a single
// host thread struggles. Low-dimensional datasets (SIFT) benefit most.
#include <iostream>

#include "bench_common.hpp"
#include "core/engine.hpp"

using namespace algas;

int main() {
  bench::print_header("fig18_host_parallel",
                      "Fig 18: host threads x state mirroring");

  metrics::TsvTable table({"dataset", "host_threads", "state_mirroring",
                           "recall", "mean_latency_us", "throughput_qps",
                           "state_poll_txns"});

  constexpr std::size_t kBatch = 32;
  constexpr std::size_t kList = 128;

  for (const auto& name : bench::selected_datasets()) {
    const Dataset& ds = bench::dataset(name);
    const Graph& g = bench::graph(name, GraphKind::kCagra);
    const std::size_t nq = bench::query_budget(ds, 200);

    for (std::size_t hosts : {1, 2, 4}) {
      for (bool mirrored : {false, true}) {
        auto cfg = bench::algas_config(kBatch, kList, 16, 2);
        cfg.host_threads = hosts;
        cfg.host_sync = mirrored ? core::HostSync::kPollMirrored : core::HostSync::kPollNaive;
        core::AlgasEngine engine(ds, g, cfg);
        const auto rep = engine.run_closed_loop(nq);
        table.row()
            .cell(name)
            .cell(hosts)
            .cell(std::string(mirrored ? "on" : "off"))
            .cell(rep.recall, 4)
            .cell(rep.summary.mean_service_us, 1)
            .cell(rep.summary.throughput_qps, 0)
            .cell(rep.pcie_state_poll_transactions);
      }
    }
  }

  std::cout << "# expected: more host threads help, mirroring helps, "
               "low-dim datasets gain most\n";
  table.print(std::cout);
  return 0;
}
