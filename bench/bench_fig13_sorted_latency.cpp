// Fig 13 — per-query latencies sorted ascending, dynamic batching (ALGAS)
// vs static batching (same search work, batch 16): dynamic lets fast
// queries return early instead of waiting at the batch barrier.
#include <iostream>

#include "baselines/static_engine.hpp"
#include "bench_common.hpp"
#include "core/engine.hpp"

using namespace algas;

int main() {
  bench::print_header("fig13_sorted_latency",
                      "Fig 13: sorted per-query latency, dynamic vs static");

  // Service time (dispatch -> completion) is the figure's series: this is a
  // closed-loop workload, so end-to-end latency is dominated by the
  // artificial submit-everything-at-t0 queueing. Both are reported; the
  // former *_us columns were service times mislabeled by the old
  // sorted_latencies_us() (which returned service despite its name).
  metrics::TsvTable table({"dataset", "rank", "dynamic_service_us",
                           "static_service_us", "dynamic_latency_us",
                           "static_latency_us"});

  constexpr std::size_t kBatch = 16;
  constexpr std::size_t kList = 128;
  for (const auto& name : bench::selected_datasets()) {
    const Dataset& ds = bench::dataset(name);
    const Graph& g = bench::graph(name, GraphKind::kCagra);
    const std::size_t nq = bench::query_budget(ds, 200);

    core::AlgasEngine dynamic(ds, g, bench::algas_config(kBatch, kList));
    const auto rd = dynamic.run_closed_loop(nq);

    baselines::StaticConfig scfg;
    scfg.search.topk = 16;
    scfg.search.candidate_len = kList;
    scfg.batch_size = kBatch;
    scfg.n_parallel = 4;
    baselines::StaticBatchEngine static_engine(ds, g, scfg);
    const auto rs = static_engine.run_closed_loop(nq);

    const auto dyn = rd.collector.sorted_service_us();
    const auto sta = rs.collector.sorted_service_us();
    const auto dyn_lat = rd.collector.sorted_latencies_us();
    const auto sta_lat = rs.collector.sorted_latencies_us();
    for (std::size_t i = 0; i < dyn.size() && i < sta.size(); ++i) {
      table.row()
          .cell(name)
          .cell(i)
          .cell(dyn[i], 1)
          .cell(sta[i], 1)
          .cell(dyn_lat[i], 1)
          .cell(sta_lat[i], 1);
    }
  }

  std::cout << "# expected: dynamic strictly below static over most ranks\n";
  table.print(std::cout);
  return 0;
}
