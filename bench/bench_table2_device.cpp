// Table II — the modeled RTX A6000 device properties, plus the adaptive
// tuner's plans (§IV-C) across slot counts and search configurations:
// the occupancy math every other bench relies on.
#include <iostream>

#include "bench_common.hpp"
#include "core/tuner.hpp"
#include "simgpu/device_props.hpp"

using namespace algas;

int main() {
  bench::print_header("table2_device",
                      "Table II: device properties + adaptive tuning plans");

  const auto dev = sim::DeviceProps::rtx_a6000();
  metrics::TsvTable props({"property", "value"});
  props.row().cell(std::string("Name")).cell(dev.name);
  props.row().cell(std::string("Shared memory per block"))
      .cell(dev.shared_mem_per_block);
  props.row().cell(std::string("Shared memory per multiprocessor"))
      .cell(dev.shared_mem_per_sm);
  props.row().cell(std::string("Reserved shared memory per block"))
      .cell(dev.reserved_shared_mem_per_block);
  props.row().cell(std::string("sharedMemPerBlockOptin"))
      .cell(dev.shared_mem_per_block_optin);
  props.row().cell(std::string("Number of SMs")).cell(dev.num_sms);
  props.row().cell(std::string("Max blocks of SM"))
      .cell(dev.max_blocks_per_sm);
  props.row().cell(std::string("Max threads per block"))
      .cell(dev.max_threads_per_block);
  props.row().cell(std::string("Warp size")).cell(dev.warp_size);
  props.print(std::cout);

  std::cout << "\n# adaptive tuning plans (SIV-C)\n";
  metrics::TsvTable plans({"slots", "candidate_len", "dim", "ok",
                           "n_parallel", "blocks_per_sm", "smem_per_block",
                           "avail_per_block", "reserved"});
  for (std::size_t slots : {1, 8, 16, 32, 64, 128}) {
    for (std::size_t L : {64, 128, 256, 512}) {
      for (std::size_t dim : {128, 960}) {
        core::TuneInput in;
        in.device = dev;
        in.slots = slots;
        in.layout.candidate_entries = L;
        in.layout.expand_entries = 128;
        in.layout.dim = dim;
        const auto plan = core::tune(in);
        plans.row()
            .cell(slots)
            .cell(L)
            .cell(dim)
            .cell(std::string(plan.ok ? "yes" : "no"))
            .cell(plan.n_parallel)
            .cell(plan.blocks_per_sm)
            .cell(plan.shared_mem_per_block)
            .cell(plan.avail_per_block)
            .cell(plan.reserved_per_block);
      }
    }
  }
  plans.print(std::cout);
  return 0;
}
