// Fig 12 — average latency vs TopK (the red numbers in the paper are the
// recall at each point). ALGAS vs CAGRA, batch 16, candidate list scaled
// with TopK so recall stays in the high regime.
#include <algorithm>
#include <iostream>

#include "baselines/static_engine.hpp"
#include "bench_common.hpp"
#include "core/engine.hpp"

using namespace algas;

int main() {
  bench::print_header("fig12_topk", "Fig 12: latency vs TopK (recall labels)");

  metrics::TsvTable table({"dataset", "topk", "method", "recall",
                           "mean_latency_us", "throughput_qps"});

  constexpr std::size_t kBatch = 16;
  for (const auto& name : bench::selected_datasets()) {
    const Dataset& ds = bench::dataset(name);
    const Graph& g = bench::graph(name, GraphKind::kCagra);
    const std::size_t nq = bench::query_budget(ds, 200);

    for (std::size_t topk : {8, 16, 32, 64}) {
      const std::size_t L = std::max<std::size_t>(128, 2 * topk);
      {
        core::AlgasEngine engine(ds, g,
                                 bench::algas_config(kBatch, L, topk));
        const auto rep = engine.run_closed_loop(nq);
        table.row()
            .cell(name)
            .cell(topk)
            .cell(std::string("ALGAS"))
            .cell(rep.recall, 4)
            .cell(rep.summary.mean_service_us, 1)
            .cell(rep.summary.throughput_qps, 0);
      }
      {
        baselines::StaticConfig cfg;
        cfg.search.topk = topk;
        cfg.search.candidate_len = L;
        cfg.batch_size = kBatch;
        cfg.n_parallel = 4;
        baselines::StaticBatchEngine engine(ds, g, cfg);
        const auto rep = engine.run_closed_loop(nq);
        table.row()
            .cell(name)
            .cell(topk)
            .cell(std::string("CAGRA"))
            .cell(rep.recall, 4)
            .cell(rep.summary.mean_service_us, 1)
            .cell(rep.summary.throughput_qps, 0);
      }
    }
  }

  table.print(std::cout);
  return 0;
}
